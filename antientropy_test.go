// Anti-entropy integration tests: Merkle trees detect replica
// divergence, scoped repairs ship only the divergent hash-token ranges,
// seeded bit-rot corruption escalates to a full resync, and in every
// case the group re-converges to byte-identical replicas serving
// oracle-identical answers with zero acknowledged-write loss.
package rankjoin

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

// gateNodeFault mirrors the kvstore fault-matrix gating: with
// NODE_FAULT_SCHEDULE set, only the named schedule's tests run, so a
// CI hang pins itself to one failure family. Unset, everything runs.
func gateNodeFault(t *testing.T, name string) {
	if env := os.Getenv("NODE_FAULT_SCHEDULE"); env != "" && env != name {
		t.Skipf("schedule %q not selected (NODE_FAULT_SCHEDULE=%s)", name, env)
	}
}

// TestFaultScheduleReplicaDiskErrors: one replica's SSTable reads fail
// persistently with EIO. The node types its failures unavailable, so
// every executor keeps serving oracle-exact answers from the replicas
// whose disks work, point reads keep serving, and the anti-entropy pass
// reports — rather than hides — that it cannot converge the broken
// replica.
func TestFaultScheduleReplicaDiskErrors(t *testing.T) {
	gateNodeFault(t, "eio-read")
	left, right := distTuples(150)
	db, q := oracleDB(t, left, right)

	base := t.TempDir()
	ffs := faultfs.New(nil)
	d, err := OpenDistributed(Config{Topology: &Topology{Nodes: []NodeSpec{
		{Name: "node0", Dir: filepath.Join(base, "n0")},
		{Name: "node1", Dir: filepath.Join(base, "n1")},
		{Name: "node2", Dir: filepath.Join(base, "n2"), VFS: ffs},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	dq := loadCluster(t, d, left, right)
	for _, name := range d.Nodes() {
		if err := d.NodeDB(name).Cluster().FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	ffs.AddRule(faultfs.Rule{PathContains: ".sst", Op: faultfs.OpRead,
		Mode: faultfs.ModeErr})

	// Three rounds so round-robin dispatch lands every executor on the
	// broken replica at least once; each must fail over and stay exact.
	for round := 0; round < 3; round++ {
		assertExecutorsMatchOracle(t, d, dq, db, q)
	}
	if _, ok, err := d.Relation("left").Get(left[0].RowKey); err != nil || !ok {
		t.Fatalf("point read did not fail over: %v (found=%v)", err, ok)
	}

	// The pass must surface the unconvergeable replica, not mask it.
	rep, err := d.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converged || len(rep.Failures) == 0 {
		t.Fatalf("repair with a dead disk reported converged=%v failures=%v",
			rep.Converged, rep.Failures)
	}
}

// TestFaultScheduleReplicaTornWAL: one replica's next WAL append tears
// mid-record (power-cut shape) while a quorum write lands. The write
// still acks on the surviving majority, the torn replica is quarantined
// as dirty, and one anti-entropy pass re-converges and re-admits it
// with the write intact everywhere.
func TestFaultScheduleReplicaTornWAL(t *testing.T) {
	gateNodeFault(t, "torn-write")
	left, right := distTuples(150)
	db, q := oracleDB(t, left, right)

	base := t.TempDir()
	ffs := faultfs.New(nil)
	d, err := OpenDistributed(Config{Topology: &Topology{Nodes: []NodeSpec{
		{Name: "node0", Dir: filepath.Join(base, "n0")},
		{Name: "node1", Dir: filepath.Join(base, "n1")},
		{Name: "node2", Dir: filepath.Join(base, "n2"), VFS: ffs},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	dq := loadCluster(t, d, left, right)

	ffs.AddRule(faultfs.Rule{PathContains: ".wal", Op: faultfs.OpWrite,
		Nth: 1, Count: 1, Mode: faultfs.ModeTornWrite})
	if err := d.Relation("left").Insert("dltw1", "j1", 0.93); err != nil {
		t.Fatalf("write with 2/3 healthy replicas failed: %v", err)
	}
	if err := db.Relation("left").Insert("dltw1", "j1", 0.93); err != nil {
		t.Fatal(err)
	}

	dirty := false
	for _, st := range d.Status() {
		if st.Name == "node2" && st.Dirty {
			dirty = true
		}
	}
	if !dirty {
		t.Fatal("replica that tore its WAL append not quarantined as dirty")
	}

	rep, err := d.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("repair did not converge: %+v", rep.Failures)
	}
	cleared := false
	for _, n := range rep.Cleared {
		cleared = cleared || n == "node2"
	}
	if !cleared {
		t.Fatalf("torn replica not re-admitted: cleared=%v", rep.Cleared)
	}
	if got, ok, err := d.Relation("left").Get("dltw1"); err != nil || !ok || got.Score != 0.93 {
		t.Fatalf("acked write lost after torn-WAL repair: %+v, %v, %v", got, ok, err)
	}
	assertExecutorsMatchOracle(t, d, dq, db, q)
	for _, table := range d.NodeDB("node0").Cluster().TableNames() {
		assertReplicasByteIdentical(t, d, table)
	}
}

// TestAntiEntropyRepairsBitRot is the acceptance scenario: one follower
// of a durable 3-node cluster suffers seeded bit-rot in an SSTable; the
// anti-entropy pass detects it as typed corruption (the replica cannot
// even summarize its table), fully resyncs the damaged table from the
// clean leader, and afterwards all seven executors answer identically
// to an undamaged single-process run over the same data.
func TestAntiEntropyRepairsBitRot(t *testing.T) {
	gateNodeFault(t, "bit-rot")
	left, right := distTuples(200)
	db, q := oracleDB(t, left, right)

	base := t.TempDir()
	ffs := faultfs.New(nil)
	d, err := OpenDistributed(Config{Topology: &Topology{Nodes: []NodeSpec{
		{Name: "node0", Dir: filepath.Join(base, "n0")},
		{Name: "node1", Dir: filepath.Join(base, "n1")},
		{Name: "node2", Dir: filepath.Join(base, "n2"), VFS: ffs},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	dq := loadCluster(t, d, left, right)

	// Flush every node so table scans read real SSTables, then seed one
	// bit of rot into the damaged follower's next SSTable read.
	for _, name := range d.Nodes() {
		if err := d.NodeDB(name).Cluster().FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	ffs.AddRule(faultfs.Rule{PathContains: ".sst", Op: faultfs.OpRead,
		Mode: faultfs.ModeBitRot, Count: 1, Seed: 7})

	rep, err := d.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("repair did not converge: %+v", rep.Failures)
	}
	var full *TableRepair
	for i := range rep.Repairs {
		if rep.Repairs[i].Full && rep.Repairs[i].Target == "node2" {
			full = &rep.Repairs[i]
			break
		}
	}
	if full == nil {
		t.Fatalf("no full resync of node2 in repair report: %+v", rep.Repairs)
	}
	if full.CellsApplied == 0 {
		t.Fatalf("full resync shipped no cells: %+v", *full)
	}

	// Post-repair: oracle-identical on every executor, byte-identical
	// replicas, zero write loss.
	assertExecutorsMatchOracle(t, d, dq, db, q)
	for _, table := range d.NodeDB("node0").Cluster().TableNames() {
		assertReplicasByteIdentical(t, d, table)
	}
}

// TestAntiEntropyScopedRepair: a replica that was down while quorum
// writes landed re-converges through a scoped repair — only the
// divergent Merkle leaves' cells move, base and index tables alike —
// and the pass re-admits the node and loses nothing.
func TestAntiEntropyScopedRepair(t *testing.T) {
	left, right := distTuples(200)
	db, q := oracleDB(t, left, right)
	d := openLoopbackCluster(t, 3)
	dq := loadCluster(t, d, left, right)

	// Take a follower down and land writes it misses.
	if err := d.StopNode("node2"); err != nil {
		t.Fatal(err)
	}
	lh := d.Relation("left")
	olh := db.Relation("left")
	const missed = 25
	for i := 0; i < missed; i++ {
		key, join, score := fmt.Sprintf("dlx%03d", i), fmt.Sprintf("j%d", i%25), float64(i%97)/97
		if err := lh.Insert(key, join, score); err != nil {
			t.Fatalf("write %d with follower down: %v", i, err)
		}
		if err := olh.Insert(key, join, score); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.StartNode("node2"); err != nil {
		t.Fatal(err)
	}

	rep, err := d.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("repair did not converge: %+v", rep.Failures)
	}
	cleared := false
	for _, n := range rep.Cleared {
		if n == "node2" {
			cleared = true
		}
	}
	if !cleared {
		t.Fatalf("node2 not re-admitted by convergent repair: cleared=%v", rep.Cleared)
	}
	shipped := 0
	for _, r := range rep.Repairs {
		if r.Full {
			t.Fatalf("downtime divergence escalated to full resync: %+v", r)
		}
		if r.Target != "node2" {
			t.Fatalf("repair targeted healthy node: %+v", r)
		}
		if len(r.Leaves) == 0 {
			t.Fatalf("scoped repair lists no leaves: %+v", r)
		}
		shipped += r.CellsApplied
	}
	if len(rep.Repairs) < 2 {
		// The missed writes maintain every index of the relation, so the
		// divergence must span the base table AND index tables.
		t.Fatalf("expected repairs across base and index tables, got %+v", rep.Repairs)
	}
	// Scoped economy: far fewer cells than the whole relation's tables.
	total := 0
	repaired := map[string]bool{}
	for _, r := range rep.Repairs {
		repaired[r.Table] = true
	}
	for table := range repaired {
		cells, err := d.NodeDB("node0").Cluster().TableCells(table)
		if err != nil {
			t.Fatal(err)
		}
		total += len(cells)
	}
	if shipped == 0 || shipped >= total {
		t.Fatalf("scoped repair shipped %d of %d cells — no economy", shipped, total)
	}

	// Zero acked-write loss and oracle-identical service afterwards.
	for i := 0; i < missed; i++ {
		key := fmt.Sprintf("dlx%03d", i)
		if _, ok, err := lh.Get(key); err != nil || !ok {
			t.Fatalf("acked write %s lost after repair (%v)", key, err)
		}
	}
	assertExecutorsMatchOracle(t, d, dq, db, q)
	for _, table := range d.NodeDB("node0").Cluster().TableNames() {
		assertReplicasByteIdentical(t, d, table)
	}
}

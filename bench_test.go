// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 7.2). Figures 7 and 8 plot the same runs under
// three metrics — query time (a/d), network bandwidth (b/e), and dollar
// cost (c/f) — for Q1 and Q2 across k; the harness therefore measures
// each (cluster, query) series once and reports the per-figure metric
// from the shared measurements, exactly as the paper derives its plots.
//
// Absolute values are simulated-hardware costs, not wall-clock numbers;
// the claims under reproduction are the relative shapes (see
// EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
//
// For paper-style printed tables use: go run ./cmd/rjbench -fig all
package rankjoin_test

import (
	"sync"
	"testing"

	rankjoin "repro"
	"repro/internal/benchkit"
	"repro/internal/sim"
)

// Bench scale factors: large enough that data costs dominate MR job
// startup (the regime the paper evaluates in), small enough for a
// laptop-scale bench run.
const (
	benchSFEC2 = 0.02
	benchSFLC  = 0.04
)

var (
	envMu    sync.Mutex
	envCache = map[string]*benchkit.Env{}
	serCache = map[string][]benchkit.Cell{}
)

func env(b *testing.B, profile sim.Profile, sf float64) *benchkit.Env {
	b.Helper()
	envMu.Lock()
	defer envMu.Unlock()
	key := profile.Name + itoa(int(sf*100000))
	if e, ok := envCache[key]; ok {
		return e
	}
	e, err := benchkit.Setup(profile, sf, 1)
	if err != nil {
		b.Fatal(err)
	}
	envCache[key] = e
	return e
}

// series computes (once) the shared measurement set behind one figure
// column: all algorithms, all k values, one query.
func series(b *testing.B, e *benchkit.Env, q rankjoin.Query, name string, algos []rankjoin.Algorithm) []benchkit.Cell {
	b.Helper()
	envMu.Lock()
	defer envMu.Unlock()
	if s, ok := serCache[name]; ok {
		return s
	}
	s, err := e.Series(q, algos, benchkit.KValues)
	if err != nil {
		b.Fatal(err)
	}
	serCache[name] = s
	return s
}

// report emits one figure's metric for every (algorithm, k) cell.
func report(b *testing.B, cells []benchkit.Cell, m benchkit.Metric, unit string) {
	for _, c := range cells {
		b.ReportMetric(m.Get(c.Cost), string(c.Algo)+"_k"+itoa(c.K)+"_"+unit)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---- Figure 7: Q1 and Q2 on the EC2 cluster ----

func BenchmarkFig7a_Q1TimeEC2(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q1, "ec2-q1", benchkit.Algorithms)
		report(b, cells, benchkit.MetricTime, "s")
	}
}

func BenchmarkFig7b_Q1BandwidthEC2(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q1, "ec2-q1", benchkit.Algorithms)
		report(b, cells, benchkit.MetricBandwidth, "B")
	}
}

func BenchmarkFig7c_Q1DollarEC2(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q1, "ec2-q1", benchkit.Algorithms)
		report(b, cells, benchkit.MetricDollar, "reads")
	}
}

func BenchmarkFig7d_Q2TimeEC2(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q2, "ec2-q2", benchkit.Algorithms)
		report(b, cells, benchkit.MetricTime, "s")
	}
}

func BenchmarkFig7e_Q2BandwidthEC2(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q2, "ec2-q2", benchkit.Algorithms)
		report(b, cells, benchkit.MetricBandwidth, "B")
	}
}

func BenchmarkFig7f_Q2DollarEC2(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q2, "ec2-q2", benchkit.Algorithms)
		report(b, cells, benchkit.MetricDollar, "reads")
	}
}

// ---- Figure 8: Q1 and Q2 on the lab cluster (larger scale; the paper
// plots ISL/BFHM/DRJN here, omitting the MR trio "for presentation
// clarity" since they trail by orders of magnitude) ----

func BenchmarkFig8a_Q1TimeLC(b *testing.B) {
	e := env(b, sim.LC(), benchSFLC)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q1, "lc-q1", benchkit.LCAlgorithms)
		report(b, cells, benchkit.MetricTime, "s")
	}
}

func BenchmarkFig8b_Q1BandwidthLC(b *testing.B) {
	e := env(b, sim.LC(), benchSFLC)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q1, "lc-q1", benchkit.LCAlgorithms)
		report(b, cells, benchkit.MetricBandwidth, "B")
	}
}

func BenchmarkFig8c_Q1DollarLC(b *testing.B) {
	e := env(b, sim.LC(), benchSFLC)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q1, "lc-q1", benchkit.LCAlgorithms)
		report(b, cells, benchkit.MetricDollar, "reads")
	}
}

func BenchmarkFig8d_Q2TimeLC(b *testing.B) {
	e := env(b, sim.LC(), benchSFLC)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q2, "lc-q2", benchkit.LCAlgorithms)
		report(b, cells, benchkit.MetricTime, "s")
	}
}

func BenchmarkFig8e_Q2BandwidthLC(b *testing.B) {
	e := env(b, sim.LC(), benchSFLC)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q2, "lc-q2", benchkit.LCAlgorithms)
		report(b, cells, benchkit.MetricBandwidth, "B")
	}
}

func BenchmarkFig8f_Q2DollarLC(b *testing.B) {
	e := env(b, sim.LC(), benchSFLC)
	for i := 0; i < b.N; i++ {
		cells := series(b, e, e.Q2, "lc-q2", benchkit.LCAlgorithms)
		report(b, cells, benchkit.MetricDollar, "reads")
	}
}

// ---- Figure 9: indexing time (both profiles) ----

func BenchmarkFig9_IndexingTime(b *testing.B) {
	ec2 := env(b, sim.EC2(), benchSFEC2)
	lc := env(b, sim.LC(), benchSFLC)
	for i := 0; i < b.N; i++ {
		for _, e := range []*benchkit.Env{ec2, lc} {
			for algo, cost := range e.BuildCost {
				b.ReportMetric(cost.SimTime.Seconds(), e.Profile.Name+"_"+string(algo)+"_s")
			}
		}
	}
}

// ---- Section 7.2 index size list ----

func BenchmarkIndexSizes(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	for i := 0; i < b.N; i++ {
		for _, algo := range []rankjoin.Algorithm{rankjoin.AlgoIJLMR, rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoDRJN} {
			b.ReportMetric(float64(e.DB.IndexDiskSize(e.Q1, algo)), string(algo)+"_q1_B")
			b.ReportMetric(float64(e.DB.IndexDiskSize(e.Q2, algo)), string(algo)+"_q2_B")
		}
	}
}

// ---- Section 7.2 online updates: eager write-back overhead < 10% ----

func BenchmarkUpdates_BFHMEagerOverhead(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	for i := 0; i < b.N; i++ {
		overhead, applied, err := e.UpdateExperiment(i + 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(overhead, "overhead_pct")
		b.ReportMetric(float64(applied), "mutations")
	}
}

// ---- Ablations (design choices DESIGN.md calls out) ----

// BenchmarkAblation_ScaleTrendISLvsBFHM shows the mechanism behind the
// paper's EC2 ISL/BFHM crossover: ISL's query time grows with the data
// size (its scan batches are a fixed FRACTION of the score lists), while
// BFHM's scales with k only. At the paper's SF 10+ the lines cross; at
// laptop scale ISL still wins, but the slopes are plainly visible.
func BenchmarkAblation_ScaleTrendISLvsBFHM(b *testing.B) {
	sfs := []float64{0.005, 0.01, 0.02, 0.04}
	for i := 0; i < b.N; i++ {
		for _, sf := range sfs {
			e := env(b, sim.EC2(), sf)
			isl, err := e.Run(e.Q2, rankjoin.AlgoISL, 100)
			if err != nil {
				b.Fatal(err)
			}
			bfhm, err := e.Run(e.Q2, rankjoin.AlgoBFHM, 100)
			if err != nil {
				b.Fatal(err)
			}
			tag := "sf" + itoa(int(sf*1000))
			b.ReportMetric(isl.Cost.SimTime.Seconds()*1000, "isl_"+tag+"_ms")
			b.ReportMetric(bfhm.Cost.SimTime.Seconds()*1000, "bfhm_"+tag+"_ms")
		}
	}
}

// BenchmarkAblation_ISLBatching sweeps the Section 4.2.3 batching knob:
// bigger scanner caches cut RPCs/time but fetch more tuples.
func BenchmarkAblation_ISLBatching(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	for i := 0; i < b.N; i++ {
		for _, batch := range []int{1, 10, e.ISLBatch, e.ISLBatch * 10} {
			res, err := e.DB.TopK(e.Q2.WithK(100), rankjoin.AlgoISL,
				&rankjoin.QueryOptions{ISLBatch: batch})
			if err != nil {
				b.Fatal(err)
			}
			tag := "batch" + itoa(batch)
			b.ReportMetric(res.Cost.SimTime.Seconds()*1000, tag+"_ms")
			b.ReportMetric(float64(res.Cost.KVReads), tag+"_reads")
		}
	}
}

// ---- Concurrent serving: the parallel client read path ----

// BenchmarkParallelReadPath compares simulated turnaround of the
// sequential client read path against the fanned-out one (Parallelism 4)
// for the two coordinator-driven algorithms: BFHM's reverse-mapping
// multi-gets issue per-region RPCs concurrently, and ISL's left/right
// streams prefetch so their round trips overlap.
func BenchmarkParallelReadPath(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	for i := 0; i < b.N; i++ {
		for _, algo := range []rankjoin.Algorithm{rankjoin.AlgoBFHM, rankjoin.AlgoISL} {
			seq, err := e.DB.TopK(e.Q2.WithK(100), algo, &rankjoin.QueryOptions{ISLBatch: e.ISLBatch})
			if err != nil {
				b.Fatal(err)
			}
			par, err := e.DB.TopK(e.Q2.WithK(100), algo, &rankjoin.QueryOptions{
				ISLBatch:    e.ISLBatch,
				Parallelism: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(seq.Cost.SimTime.Seconds()*1000, string(algo)+"_seq_ms")
			b.ReportMetric(par.Cost.SimTime.Seconds()*1000, string(algo)+"_par4_ms")
		}
	}
}

// BenchmarkConcurrentTopKThroughput measures real wall-clock throughput
// of one shared DB serving BFHM top-k queries from all available cores —
// the rjserve workload. Per-query metric isolation keeps the reported
// costs exact under this concurrency.
func BenchmarkConcurrentTopKThroughput(b *testing.B) {
	e := env(b, sim.EC2(), benchSFEC2)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.DB.TopK(e.Q2.WithK(100), rankjoin.AlgoBFHM,
				&rankjoin.QueryOptions{Parallelism: 4}); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkAblation_BFHMBuckets sweeps the histogram resolution (the
// paper evaluates 100 vs 1000 buckets on EC2): more buckets mean tighter
// score bounds (fewer tuples fetched) but more bucket-row fetches.
func BenchmarkAblation_BFHMBuckets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, buckets := range []int{20, 100, 1000} {
			db := mustOpenDB(b)
			lh, err := db.DefineRelation("l")
			if err != nil {
				b.Fatal(err)
			}
			rh, err := db.DefineRelation("r")
			if err != nil {
				b.Fatal(err)
			}
			var lt, rt []rankjoin.Tuple
			for j := 0; j < 4000; j++ {
				lt = append(lt, rankjoin.Tuple{
					RowKey: "l" + itoa(j), JoinValue: "j" + itoa(j%500),
					Score: float64(j%997) / 997,
				})
				rt = append(rt, rankjoin.Tuple{
					RowKey: "r" + itoa(j), JoinValue: "j" + itoa((j*7)%500),
					Score: float64(j%991) / 991,
				})
			}
			if err := lh.BulkLoad(lt); err != nil {
				b.Fatal(err)
			}
			if err := rh.BulkLoad(rt); err != nil {
				b.Fatal(err)
			}
			db.SetIndexConfig(rankjoin.IndexConfig{BFHMBuckets: buckets})
			q, err := db.NewQuery("l", "r", rankjoin.Sum, 100)
			if err != nil {
				b.Fatal(err)
			}
			if err := db.EnsureIndexes(q, rankjoin.AlgoBFHM); err != nil {
				b.Fatal(err)
			}
			res, err := db.TopK(q, rankjoin.AlgoBFHM, nil)
			if err != nil {
				b.Fatal(err)
			}
			tag := "b" + itoa(buckets)
			b.ReportMetric(res.Cost.SimTime.Seconds()*1000, tag+"_ms")
			b.ReportMetric(float64(res.Cost.KVReads), tag+"_reads")
		}
	}
}

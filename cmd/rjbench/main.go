// Command rjbench regenerates the paper's evaluation tables and figures
// (Section 7.2) as printed series, one block per figure:
//
//	rjbench -fig all                 # everything
//	rjbench -fig 7a                  # Q1 query time on EC2
//	rjbench -fig 8f                  # Q2 dollar cost on LC
//	rjbench -fig 9                   # indexing time
//	rjbench -fig sizes               # index disk sizes (Section 7.2 list)
//	rjbench -fig updates             # online-update overhead experiment
//	rjbench -fig mixed               # mixed read/write workload: write
//	                                 # throughput, batched-vs-per-cell
//	                                 # write RPCs, per-executor freshness
//	rjbench -fig storage             # in-memory vs on-disk SSTable
//	                                 # engine: point gets (cold/warm),
//	                                 # scans, merge drain, sustained
//	                                 # load, Q1/Q2 wall-clock
//	rjbench -fig chain               # any-k vs doubling-depth adapter
//	                                 # on 3/4/5-relation band chains at
//	                                 # k in {1,10,100}
//	rjbench -sf 0.05 -lcsf 0.1       # larger scale factors
//
// Figures 7a-7f come from one EC2 measurement set (Q1 and Q2 series);
// figures 8a-8f from one LC set; the three metrics are projections of
// the same runs, exactly as in the paper.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	rankjoin "repro"
	"repro/internal/benchkit"
	"repro/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 7a..7f, 8a..8f, 9, sizes, mem, updates, mixed, paging, storage, distribution, chain, all")
	sfEC2 := flag.Float64("sf", 0.02, "TPC-H scale factor for the EC2 profile runs")
	sfLC := flag.Float64("lcsf", 0.04, "TPC-H scale factor for the LC profile runs")
	distSF := flag.Float64("distsf", 0.005, "TPC-H scale factor for the distribution figure (loaded 3x: once per replica)")
	snapshot := flag.String("snapshot", "", "write the measured Q1/Q2 series as JSON to this file (BENCH_<n>.json)")
	distOut := flag.String("distout", "", "write the distribution figure's comparison as JSON to this file (BENCH_<n>.json)")
	chainRows := flag.Int("chainrows", 2000, "rows per leaf relation for the chain figure")
	chainOut := flag.String("chainout", "", "write the chain figure's any-k vs adapter series as JSON to this file (BENCH_<n>.json)")
	flag.Parse()

	want := func(names ...string) bool {
		if *fig == "all" {
			return true
		}
		for _, n := range names {
			if strings.EqualFold(n, *fig) {
				return true
			}
		}
		return false
	}

	needEC2 := want("7a", "7b", "7c", "7d", "7e", "7f", "9", "sizes", "updates", "paging", "mixed") || *snapshot != ""
	needLC := want("8a", "8b", "8c", "8d", "8e", "8f", "9") || *snapshot != ""

	var ec2Env, lcEnv *benchkit.Env
	var err error
	if needEC2 {
		fmt.Fprintf(os.Stderr, "setting up EC2 environment (SF %g)...\n", *sfEC2)
		ec2Env, err = benchkit.Setup(sim.EC2(), *sfEC2, 1)
		if err != nil {
			log.Fatal(err)
		}
		p, o, l := ec2Env.Counts()
		fmt.Printf("EC2 profile: 1+%d nodes, SF %g (%d parts, %d orders, %d lineitems)\n\n",
			sim.EC2().Nodes, *sfEC2, p, o, l)
	}
	if needLC {
		fmt.Fprintf(os.Stderr, "setting up LC environment (SF %g)...\n", *sfLC)
		lcEnv, err = benchkit.Setup(sim.LC(), *sfLC, 1)
		if err != nil {
			log.Fatal(err)
		}
		p, o, l := lcEnv.Counts()
		fmt.Printf("LC profile: %d nodes, SF %g (%d parts, %d orders, %d lineitems)\n\n",
			sim.LC().Nodes, *sfLC, p, o, l)
	}

	series := map[string][]benchkit.Cell{}
	get := func(e *benchkit.Env, q rankjoin.Query, key string, algos []rankjoin.Algorithm) []benchkit.Cell {
		if s, ok := series[key]; ok {
			return s
		}
		fmt.Fprintf(os.Stderr, "measuring %s...\n", key)
		s, err := e.Series(q, algos, benchkit.KValues)
		if err != nil {
			log.Fatal(err)
		}
		series[key] = s
		return s
	}

	type figSpec struct {
		id     string
		title  string
		isLC   bool
		isQ2   bool
		metric benchkit.Metric
	}
	specs := []figSpec{
		{"7a", "Figure 7(a): Q1 on EC2", false, false, benchkit.MetricTime},
		{"7b", "Figure 7(b): Q1 on EC2", false, false, benchkit.MetricBandwidth},
		{"7c", "Figure 7(c): Q1 on EC2", false, false, benchkit.MetricDollar},
		{"7d", "Figure 7(d): Q2 on EC2", false, true, benchkit.MetricTime},
		{"7e", "Figure 7(e): Q2 on EC2", false, true, benchkit.MetricBandwidth},
		{"7f", "Figure 7(f): Q2 on EC2", false, true, benchkit.MetricDollar},
		{"8a", "Figure 8(a): Q1 on LC", true, false, benchkit.MetricTime},
		{"8b", "Figure 8(b): Q1 on LC", true, false, benchkit.MetricBandwidth},
		{"8c", "Figure 8(c): Q1 on LC", true, false, benchkit.MetricDollar},
		{"8d", "Figure 8(d): Q2 on LC", true, true, benchkit.MetricTime},
		{"8e", "Figure 8(e): Q2 on LC", true, true, benchkit.MetricBandwidth},
		{"8f", "Figure 8(f): Q2 on LC", true, true, benchkit.MetricDollar},
	}
	for _, s := range specs {
		if !want(s.id) {
			continue
		}
		e := ec2Env
		algos := benchkit.Algorithms
		if s.isLC {
			e = lcEnv
			algos = benchkit.LCAlgorithms
		}
		q := e.Q1
		key := e.Profile.Name + "-q1"
		if s.isQ2 {
			q = e.Q2
			key = e.Profile.Name + "-q2"
		}
		cells := get(e, q, key, algos)
		fmt.Println(benchkit.FormatTable(s.title, cells, s.metric))
	}

	if want("9") {
		fmt.Println("Figure 9: indexing time")
		for _, e := range []*benchkit.Env{ec2Env, lcEnv} {
			if e == nil {
				continue
			}
			fmt.Println(e.IndexingReport())
		}
	}
	if want("sizes") && ec2Env != nil && *fig != "all" {
		fmt.Println(ec2Env.IndexingReport())
	}
	if want("updates") && ec2Env != nil {
		fmt.Println("Online updates (Section 7.2): BFHM eager write-back overhead")
		for set := 1; set <= 3; set++ {
			overhead, applied, err := ec2Env.UpdateExperiment(set)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("update set %d: %d mutations applied, query-time overhead %.2f%% (paper: < 10%%)\n",
				set, applied, overhead)
		}
		fmt.Println()
	}
	if want("mixed") && ec2Env != nil {
		report, err := ec2Env.MixedWorkloadReport(400, 50)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report)
	}
	if want("paging") && ec2Env != nil {
		report, err := ec2Env.PagingReport(ec2Env.Q1, []rankjoin.Algorithm{
			rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoDRJN,
		}, 10, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report)
	}
	if want("mem") {
		report, err := benchkit.MemoryReport(sim.LC(), *sfLC/4, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report)
	}
	if want("distribution") {
		fmt.Fprintln(os.Stderr, "measuring distribution (single process vs 3-node replicated cluster)...")
		report, distSnap, err := benchkit.DistributionReport(sim.EC2(), *distSF, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report)
		if *distOut != "" {
			if err := distSnap.WriteFile(*distOut); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote distribution snapshot %s\n", *distOut)
		}
	}
	if want("chain") {
		fmt.Fprintln(os.Stderr, "measuring chain queries (any-k vs doubling-depth adapter)...")
		report, chainSnap, err := benchkit.ChainReport(sim.LC(), *chainRows, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report)
		if *chainOut != "" {
			if err := chainSnap.WriteFile(*chainOut); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote chain snapshot %s\n", *chainOut)
		}
	}
	var storagePoints map[string]benchkit.StoragePoint
	if want("storage") {
		fmt.Fprintln(os.Stderr, "measuring storage engine (memory vs disk)...")
		dir, err := os.MkdirTemp("", "rjbench-storage-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		points, report, err := benchkit.StorageReport(dir, *sfEC2, 1)
		if err != nil {
			log.Fatal(err)
		}
		storagePoints = points
		fmt.Println(report)
	}

	if *snapshot != "" {
		snap := benchkit.NewSnapshot()
		for _, e := range []*benchkit.Env{ec2Env, lcEnv} {
			if e == nil {
				continue
			}
			snap.AddEnv(e)
			algos := benchkit.Algorithms
			if e.Profile.Name == "LC" {
				algos = benchkit.LCAlgorithms
			}
			snap.AddSeries(e.Profile.Name+"-q1", get(e, e.Q1, e.Profile.Name+"-q1", algos))
			snap.AddSeries(e.Profile.Name+"-q2", get(e, e.Q2, e.Profile.Name+"-q2", algos))
		}
		snap.Storage = storagePoints
		if err := snap.WriteFile(*snapshot); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote snapshot %s\n", *snapshot)
	}
}

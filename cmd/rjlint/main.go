// Command rjlint is the repo's multichecker: it runs `go vet` over the
// requested packages, then the three repo-specific analyzers —
// lockcheck, chargecheck, maintcheck — from internal/analysis.
//
// Usage:
//
//	go run ./cmd/rjlint [-v] [-novet] [packages...]
//
// With no packages, ./... is checked. Exit status follows go vet's
// convention: 0 clean, 1 findings, 2 load/run errors. Suppressions
// (//lint:allow <analyzer> <reason>) are honored and counted; a
// suppression without a reason is reported as a finding itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/analysis"
	"repro/internal/analysis/chargecheck"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/maintcheck"
)

var analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	chargecheck.Analyzer,
	maintcheck.Analyzer,
}

func main() {
	verbose := flag.Bool("v", false, "list suppressed findings")
	noVet := flag.Bool("novet", false, "skip the `go vet` pre-pass")
	help := flag.Bool("help", false, "describe the analyzers and exit")
	flag.Parse()

	if *help {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		os.Exit(0)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exit := analysis.ExitClean
	if !*noVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				if code := ee.ExitCode(); code > exit {
					exit = code
				}
			} else {
				fmt.Fprintf(os.Stderr, "rjlint: go vet: %v\n", err)
				exit = analysis.ExitError
			}
		}
	}

	if code := analysis.Run(analyzers, patterns, os.Stdout, *verbose); code > exit {
		exit = code
	}
	os.Exit(exit)
}

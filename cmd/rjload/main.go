// Command rjload generates TPC-H data, loads it into a fresh simulated
// cluster, builds every index, and reports the indexing-time and
// index-size figures — the standalone version of the Fig. 9 experiment.
//
// Usage: rjload [-sf 0.01] [-profile ec2|lc] [-buckets 100]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/benchkit"
	"repro/internal/sim"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	profile := flag.String("profile", "ec2", "hardware profile: ec2 or lc")
	flag.Parse()

	p := sim.EC2()
	if *profile == "lc" {
		p = sim.LC()
	}
	env, err := benchkit.Setup(p, *sf, 1)
	if err != nil {
		log.Fatal(err)
	}
	parts, orders, lineitems := env.Counts()
	fmt.Printf("loaded TPC-H SF %g on %s: %d parts, %d orders, %d lineitems\n\n",
		*sf, p.Name, parts, orders, lineitems)
	fmt.Println(env.IndexingReport())
}

// Command rjload generates TPC-H data, loads it into a fresh simulated
// cluster, builds every index, and reports the indexing-time and
// index-size figures — the standalone version of the Fig. 9 experiment.
//
// Usage: rjload [-sf 0.01] [-profile ec2|lc] [-data DIR]
//
// With -data, the cluster is durable: the first run writes SSTables,
// WALs, and the index catalog under DIR, and later runs (rjload or
// rjserve with the same -data) recover everything from disk instead of
// regenerating and rebuilding.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/benchkit"
	"repro/internal/sim"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	profile := flag.String("profile", "ec2", "hardware profile: ec2 or lc")
	dataDir := flag.String("data", "", "durable data directory (empty = in-memory)")
	flag.Parse()

	p := sim.EC2()
	if *profile == "lc" {
		p = sim.LC()
	}
	var env *benchkit.Env
	var recovered bool
	var err error
	if *dataDir != "" {
		env, recovered, err = benchkit.SetupAt(p, *sf, 1, *dataDir)
	} else {
		env, err = benchkit.Setup(p, *sf, 1)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer env.DB.Close()
	parts, orders, lineitems := env.Counts()
	verb := "loaded"
	if recovered {
		verb = "recovered"
	}
	fmt.Printf("%s TPC-H SF %g on %s: %d parts, %d orders, %d lineitems\n\n",
		verb, *sf, p.Name, parts, orders, lineitems)
	if recovered {
		fmt.Println("indexes restored from the on-disk catalog; nothing rebuilt")
		return
	}
	fmt.Println(env.IndexingReport())
}

// Command rjnode runs one region server: a full single-process engine
// (LSM storage, executors, index maintenance) exposed over the
// length-prefixed TCP transport for a router (rjserve -nodes, or any
// OpenDistributed topology) to replicate relations onto and ship whole
// rank-join queries to — the paper's compute-to-data design at node
// granularity.
//
// Usage:
//
//	rjnode -addr :7070 [-name node0] [-data DIR] [-profile ec2|lc]
//
// With -data the node stores its replicas durably and recovers them on
// restart (it rejoins its topology dirty and is re-admitted once
// anti-entropy verifies it). Without -data the node is memory-backed:
// a restart loses its replicas and anti-entropy re-ships them.
//
// The process serves until SIGINT/SIGTERM.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	rankjoin "repro"
	"repro/internal/sim"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", ":7070", "TCP listen address for the region transport")
	name := flag.String("name", "", "node name reported in health and repair output (default: the listen address)")
	dataDir := flag.String("data", "", "durable data directory (empty = in-memory)")
	profileName := flag.String("profile", "lc", "hardware profile: ec2 or lc")
	flag.Parse()

	profile := sim.LC()
	if strings.EqualFold(*profileName, "ec2") {
		profile = sim.EC2()
	}

	cfg := rankjoin.Config{Profile: &profile, Dir: *dataDir}
	var db *rankjoin.DB
	var err error
	if *dataDir != "" {
		db, err = rankjoin.OpenAt(cfg)
	} else {
		db, err = rankjoin.Open(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	nodeName := *name
	if nodeName == "" {
		nodeName = *addr
	}
	srv, err := transport.ListenAndServe(*addr, rankjoin.NewNodeService(nodeName, db))
	if err != nil {
		log.Fatal(err)
	}
	if rels := db.RelationNames(); len(rels) > 0 {
		log.Printf("node %s recovered relations %v from %s", nodeName, rels, *dataDir)
	}
	log.Printf("region server %s serving on %s (%s profile, durable=%v)",
		nodeName, srv.Addr(), profile.Name, *dataDir != "")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down %s", nodeName)
	_ = srv.Close()
}

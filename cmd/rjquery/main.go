// Command rjquery runs one top-k join query on generated TPC-H data with
// a chosen algorithm and prints the ranked results plus the three paper
// metrics — a one-shot exploration tool.
//
// Usage: rjquery [-q q1|q2] [-algo auto] [-k 10] [-sf 0.005] [-profile ec2|lc]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	rankjoin "repro"
	"repro/internal/benchkit"
	"repro/internal/sim"
)

func main() {
	queryName := flag.String("q", "q1", "query: q1 (Part x Lineitem, product) or q2 (Orders x Lineitem, sum)")
	algoName := flag.String("algo", "auto", "algorithm: auto, hive, pig, ijlmr, isl, bfhm, drjn, naive")
	k := flag.Int("k", 10, "result size")
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	profile := flag.String("profile", "ec2", "hardware profile: ec2 or lc")
	flag.Parse()

	p := sim.EC2()
	if *profile == "lc" {
		p = sim.LC()
	}
	env, err := benchkit.Setup(p, *sf, 1)
	if err != nil {
		log.Fatal(err)
	}
	q := env.Q1
	if strings.EqualFold(*queryName, "q2") {
		q = env.Q2
	}
	algo := rankjoin.Algorithm(strings.ToLower(*algoName))
	res, err := env.Run(q, algo, *k)
	if err != nil {
		log.Fatal(err)
	}
	ran := res.Algorithm
	if algo == rankjoin.AlgoAuto {
		ran = fmt.Sprintf("%s (planner-chosen)", res.Algorithm)
	}
	fmt.Printf("%s via %s, k=%d on %s (SF %g):\n\n", strings.ToUpper(*queryName), ran, *k, p.Name, *sf)
	for i, r := range res.Results {
		fmt.Printf("%3d. %s + %s  (join %s)  score %.6f\n",
			i+1, r.Left.RowKey, r.Right.RowKey, r.Left.JoinValue, r.Score)
	}
	fmt.Printf("\nquery time : %v\n", res.Cost.SimTime)
	fmt.Printf("network    : %d bytes\n", res.Cost.NetworkBytes)
	fmt.Printf("dollar cost: %d KV read units ($%.2f)\n", res.Cost.KVReads, res.Cost.Dollars())
	if res.Estimate != nil {
		fmt.Printf("planned    : est time %v, est net %d bytes, est %d read units\n",
			res.Estimate.SimTime, res.Estimate.NetworkBytes, res.Estimate.KVReads)
	}
}

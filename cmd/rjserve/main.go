// Command rjserve exposes top-k rank-join queries over HTTP as a JSON
// API. In its default mode it serves concurrent clients from one shared
// single-process DB; with -nodes it becomes the router frontend of a
// replicated multi-node topology — every relation replicated across
// region servers, writes resolved and quorum-acknowledged through the
// replication protocol, queries shipped whole to a covering replica
// with automatic failover, and Merkle anti-entropy available on demand.
// Data is generated TPC-H at a configurable scale factor with all index
// families prebuilt.
//
// Usage:
//
//	rjserve [-addr :8080] [-profile ec2|lc] [-sf 0.02] [-parallelism 4] [-data DIR] [-timeout 0]
//	rjserve -nodes node0,node1,node2 [-replication 0]        # loopback cluster
//	rjserve -nodes n0=:7070,n1=:7071,n2=:7072                # TCP region servers (rjnode)
//
// With -data, the single-process server runs on durable storage: the
// first start generates, loads, and indexes into DIR; later starts
// recover the tables and index catalog from disk and are serving in
// milliseconds. Writes accepted via /insert, /update, and /delete
// survive restarts.
//
// With -nodes, each comma-separated entry is either a bare name (an
// in-process loopback region server) or name=addr (an rjnode process
// serving the region transport at addr). -replication sets the
// replicas-per-relation factor (0 = full replication). The router
// loads the TPC-H workload through the replication protocol at
// startup, so every replica holds byte-identical base and index
// tables.
//
// Endpoints:
//
//	GET /topk?query=q1&algo=auto&k=10[&parallelism=4][&objective=time][&page_token=...][&timeout=500ms][&max_read_units=N]
//	GET /topk?tree=<url-encoded JSON tree spec>&...
//	POST /topk      body (JSON): the same fields plus "tree"
//	    Run one query; returns ranked results plus the per-query cost
//	    metrics (simulated time, network bytes, KV read units, dollars).
//	    Instead of a named preset, a request may carry an inline tree
//	    spec describing a general acyclic join-tree query —
//	    {"relations":["a","b","c"],
//	     "edges":[{"a":0,"b":1},{"a":1,"b":2,"kind":"band","band":2}],
//	     "score":"sum","k":10} — covering two-way, star (the multiway
//	    StreamN shape), chain, and mixed shapes; results carry the third
//	    and later leaves' rows in rest_rows. A cyclic or disconnected
//	    tree is rejected with a 400 whose body carries the shape
//	    diagnostic. algo=anyk (or auto) streams tree results in score
//	    order.
//	    algo defaults to "auto": the cost-based planner picks the
//	    executor, and the response carries the chosen algorithm plus
//	    the planner's estimate next to the measured cost. A full page
//	    carries next_page_token; passing it back as page_token resumes
//	    the query server-side (bounded cursor state, marginal cost)
//	    instead of re-running it. In router mode page tokens are sticky
//	    to the node holding the cursor and fail over transparently if
//	    that node dies. timeout (a Go duration, overriding the -timeout
//	    flag) and max_read_units bound the query; queries degrade
//	    gracefully with typed statuses — 408 for a tripped deadline or
//	    canceled request, 507 for an exhausted read budget (both
//	    carrying partial_results/read_units in the error body), 503 for
//	    a storage fault or (router mode) no live replica.
//	GET/POST /stream?query=q1&algo=auto[&limit=100][&k=10]
//	    Accepts the same tree parameter/field as /topk.
//	    Stream results as NDJSON, one result object per line in
//	    descending score order, closing with a summary line carrying
//	    the totals ({"done":true,...}). limit caps the stream (default
//	    100); k is the page-size hint batch-shaped executors
//	    materialize with. POST accepts the same fields as a JSON body.
//	    timeout/max_read_units bound the stream like /topk; a bound
//	    tripped mid-stream ends it with a trailer line carrying the
//	    error, mapped status, and count of rows already delivered. In
//	    router mode the stream pulls pages with failover: a replica
//	    killed mid-stream is survived without a gap or duplicate.
//	POST /explain     Plan a query without running it (single-process
//	    mode only); body (JSON): {"query":"q1","k":10,
//	    "objective":"time","stream":true} — returns every registered
//	    executor ranked by predicted cost.
//	POST /insert      Upsert one tuple with synchronous maintenance of
//	    every index built over the relation (one batched group write);
//	    body: {"relation":"orders","row_key":"o1","join_value":"42",
//	    "score":0.93}. A query issued right after sees the write on
//	    every executor. In router mode the write is resolved at the
//	    leader, stamped once, and applied identically on every replica
//	    (503 with a typed body if the quorum cannot be reached).
//	POST /update      Replace an existing tuple's join value/score,
//	    retiring old index entries under one timestamp; same body.
//	POST /delete      Remove a tuple; body needs relation and row_key
//	    (join_value/score optional — omitted means "read them first").
//	POST /repair      (router mode) Run one Merkle anti-entropy pass:
//	    trees diffed per replica group, divergent leaves re-shipped,
//	    corrupt tables fully resynced; returns the repair report.
//	GET /relations    List defined relations.
//	GET /algorithms   List available algorithms.
//	GET /metrics      Cumulative metrics; in router mode the aggregate
//	    across nodes plus per-node replica status (alive, dirty,
//	    relations, quarantined regions).
//	GET /healthz      Liveness probe; in router mode carries per-node
//	    health and reports "degraded" when replicas are down or dirty.
//
// Examples:
//
//	curl 'localhost:8080/topk?query=q2&k=5'
//	curl 'localhost:8080/stream?query=q1&algo=isl&limit=25'
//	curl -X POST localhost:8080/explain -d '{"query":"q2","k":100,"objective":"dollars"}'
//	curl -X POST localhost:8080/insert -d '{"relation":"orders","row_key":"oNEW","join_value":"999","score":0.99}'
//	curl -X POST localhost:8080/delete -d '{"relation":"orders","row_key":"oNEW"}'
//	curl -X POST localhost:8080/repair
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	rankjoin "repro"
	"repro/internal/benchkit"
	"repro/internal/sim"
)

// server holds the shared query environment: a single-process DB or a
// distributed router, never both.
type server struct {
	db   *rankjoin.DB          // single-process mode
	dist *rankjoin.Distributed // router mode (-nodes)

	q1, q2             rankjoin.Query
	islBatch           int
	defaultParallelism int
	// defaultTimeout bounds every query that doesn't carry its own
	// timeout parameter; zero leaves unparameterized queries unbounded.
	defaultTimeout time.Duration
}

// query resolves a query name.
func (s *server) query(name string) (rankjoin.Query, string, error) {
	switch strings.ToLower(name) {
	case "", "q1":
		return s.q1, "q1", nil
	case "q2":
		return s.q2, "q2", nil
	}
	return rankjoin.Query{}, "", fmt.Errorf("unknown query %q (want q1 or q2)", name)
}

// resolveQuery resolves a request's query: an inline tree spec when one
// was supplied (general acyclic join-tree queries, including the
// multiway star shape StreamN serves in-process), a named preset
// otherwise. Tree specs are validated structurally; a cyclic or
// disconnected shape surfaces as a *rankjoin.ShapeError that
// writeResolveError maps to a 400 carrying the diagnostic.
func (s *server) resolveQuery(name string, tree *rankjoin.TreeSpec) (rankjoin.Query, string, error) {
	if tree == nil {
		return s.query(name)
	}
	var q rankjoin.Query
	var err error
	if s.dist != nil {
		q, err = s.dist.NewTreeQueryFromSpec(tree)
	} else {
		q, err = s.db.NewTreeQueryFromSpec(tree)
	}
	if err != nil {
		return rankjoin.Query{}, "", err
	}
	return q, "tree", nil
}

// ensureTreeIndexes builds a hand-picked executor's index for an
// ad-hoc tree query on first use. Named presets are indexed at
// startup, but a tree arrives with whatever shape the client sent, so
// the server ensures lazily; once built the call is an idempotent
// no-op. Errors are deliberately dropped: execution surfaces a clearer
// one (unsupported shape, missing index) when the build failed.
func (s *server) ensureTreeIndexes(q rankjoin.Query, algo rankjoin.Algorithm) {
	if algo == rankjoin.AlgoAuto {
		return
	}
	if s.dist != nil {
		_ = s.dist.EnsureIndexes(q, algo)
		return
	}
	_ = s.db.EnsureIndexes(q, algo)
}

// writeResolveError reports a query-resolution failure. Bad tree shapes
// get a machine-readable diagnostic next to the error text so clients
// can tell "fix your tree" from "no such preset".
func writeResolveError(w http.ResponseWriter, err error) {
	var se *rankjoin.ShapeError
	if errors.As(err, &se) {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": err.Error(),
			"shape": se.Msg,
		})
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// parseTreeParam decodes an optional tree query parameter (URL-encoded
// JSON tree spec on GET requests).
func parseTreeParam(raw string) (*rankjoin.TreeSpec, error) {
	if raw == "" {
		return nil, nil
	}
	return rankjoin.ParseTreeSpec([]byte(raw))
}

// topK dispatches to whichever engine this server fronts.
func (s *server) topK(q rankjoin.Query, algo rankjoin.Algorithm, opts *rankjoin.QueryOptions) (*rankjoin.Result, error) {
	if s.dist != nil {
		return s.dist.TopK(q, algo, opts)
	}
	return s.db.TopK(q, algo, opts)
}

// rowStream is the iterator surface shared by the single-process Rows
// and the distributed DistRows.
type rowStream interface {
	Next() bool
	Result() rankjoin.JoinResult
	Algorithm() string
	Err() error
	Cost() sim.Snapshot
	Close() error
}

func (s *server) stream(q rankjoin.Query, algo rankjoin.Algorithm, opts *rankjoin.QueryOptions) (rowStream, error) {
	if s.dist != nil {
		return s.dist.Stream(q, algo, opts)
	}
	return s.db.Stream(q, algo, opts)
}

func (s *server) relationNames() []string {
	if s.dist != nil {
		return s.dist.RelationNames()
	}
	return s.db.RelationNames()
}

// costJSON is the wire form of a sim.Snapshot.
type costJSON struct {
	SimTime      string  `json:"sim_time"`
	SimTimeSecs  float64 `json:"sim_time_seconds"`
	NetworkBytes uint64  `json:"network_bytes"`
	KVReads      uint64  `json:"kv_read_units"`
	RPCCalls     uint64  `json:"rpc_calls"`
	Dollars      float64 `json:"dollars"`
}

func toCostJSON(s sim.Snapshot) costJSON {
	return costJSON{
		SimTime:      s.SimTime.String(),
		SimTimeSecs:  s.SimTime.Seconds(),
		NetworkBytes: s.NetworkBytes,
		KVReads:      s.KVReads,
		RPCCalls:     s.RPCCalls,
		Dollars:      s.Dollars(),
	}
}

type resultJSON struct {
	LeftRow   string `json:"left_row"`
	RightRow  string `json:"right_row"`
	JoinValue string `json:"join_value"`
	// RestRows carries the third and later leaves' row keys, in leaf
	// order, for tree queries over more than two relations.
	RestRows []string `json:"rest_rows,omitempty"`
	Score    float64  `json:"score"`
}

func toResultJSON(jr rankjoin.JoinResult) resultJSON {
	out := resultJSON{
		LeftRow:   jr.Left.RowKey,
		RightRow:  jr.Right.RowKey,
		JoinValue: jr.Left.JoinValue,
		Score:     jr.Score,
	}
	for _, t := range jr.Rest {
		out.RestRows = append(out.RestRows, t.RowKey)
	}
	return out
}

type topkResponse struct {
	Query       string       `json:"query"`
	Algorithm   string       `json:"algorithm"`
	K           int          `json:"k"`
	Parallelism int          `json:"parallelism"`
	Results     []resultJSON `json:"results"`
	Cost        costJSON     `json:"cost"`
	// Estimate is the planner's predicted cost (algo=auto only);
	// comparing it with cost gives the per-query estimation error.
	Estimate *estimateJSON `json:"estimate,omitempty"`
	// NextPageToken resumes this query where it stopped: pass it back
	// as page_token to fetch the next k results at marginal cost.
	NextPageToken string `json:"next_page_token,omitempty"`
	WallTime      string `json:"wall_time"`
}

// estimateJSON is the wire form of a planner cost estimate.
type estimateJSON struct {
	SimTime      string  `json:"sim_time"`
	SimTimeSecs  float64 `json:"sim_time_seconds"`
	NetworkBytes uint64  `json:"network_bytes"`
	KVReads      uint64  `json:"kv_read_units"`
	Dollars      float64 `json:"dollars"`
}

func toEstimateJSON(e rankjoin.CostEstimate) *estimateJSON {
	return &estimateJSON{
		SimTime:      e.SimTime.String(),
		SimTimeSecs:  e.SimTime.Seconds(),
		NetworkBytes: e.NetworkBytes,
		KVReads:      e.KVReads,
		Dollars:      e.Dollars(),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// queryStatus maps a failed query's typed error to an HTTP status: a
// tripped deadline or canceled context is 408, an exhausted read
// budget is 507, a storage fault (corruption, I/O) or distribution
// failure (no live replica, lost write quorum) is 503 — the query was
// well-formed in all these cases, so 400 would wrongly tell the client
// to drop it. Anything untyped stays a 400.
func queryStatus(err error) int {
	var be *rankjoin.BudgetExceededError
	switch {
	case errors.Is(err, rankjoin.ErrCanceled):
		return http.StatusRequestTimeout
	case errors.As(err, &be):
		return http.StatusInsufficientStorage
	case errors.Is(err, rankjoin.ErrCorruption):
		return http.StatusServiceUnavailable
	}
	var ioe *rankjoin.IOError
	if errors.As(err, &ioe) {
		return http.StatusServiceUnavailable
	}
	var nre *rankjoin.NoReplicaError
	var rpe *rankjoin.ReplicationError
	if errors.As(err, &nre) || errors.As(err, &rpe) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// writeQueryError reports a failed query, surfacing the degradation
// detail typed errors carry (partial-result count, read-unit spend,
// replica acks) so clients can tell a useful partial answer from a
// dead store.
func writeQueryError(w http.ResponseWriter, err error) {
	body := map[string]any{"error": err.Error()}
	var ce *rankjoin.CanceledError
	var be *rankjoin.BudgetExceededError
	var rpe *rankjoin.ReplicationError
	switch {
	case errors.As(err, &ce):
		body["partial_results"] = len(ce.Partial)
		body["read_units"] = ce.ReadUnits
	case errors.As(err, &be):
		body["partial_results"] = len(be.Partial)
		body["read_unit_limit"] = be.Limit
		body["read_units"] = be.Spent
	case errors.As(err, &rpe):
		body["acked"] = rpe.Acked
		body["quorum"] = rpe.Quorum
	}
	writeJSON(w, queryStatus(err), body)
}

// queryBounds parses the per-request degradation knobs shared by /topk
// and /stream — timeout (Go duration, overriding the -timeout flag)
// and max_read_units — and threads them plus the request's own context
// into opts. A client that disconnects cancels its query's spend.
func (s *server) queryBounds(r *http.Request, timeoutParam, maxReadParam string, opts *rankjoin.QueryOptions) error {
	opts.Context = r.Context()
	timeout := s.defaultTimeout
	if timeoutParam != "" {
		d, err := time.ParseDuration(timeoutParam)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad timeout %q (want a positive Go duration like 500ms)", timeoutParam)
		}
		timeout = d
	}
	if timeout > 0 {
		opts.Deadline = time.Now().Add(timeout)
	}
	if maxReadParam != "" {
		n, err := strconv.ParseUint(maxReadParam, 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("bad max_read_units %q (want a positive integer)", maxReadParam)
		}
		opts.MaxReadUnits = n
	}
	return nil
}

// topkRequest carries /topk parameters (query string on GET, JSON body
// on POST). Tree, when set, replaces the named preset with an inline
// acyclic join-tree query.
type topkRequest struct {
	Query        string             `json:"query"`
	Tree         *rankjoin.TreeSpec `json:"tree"`
	Algo         string             `json:"algo"`
	K            int                `json:"k"`
	Parallelism  *int               `json:"parallelism"`
	Objective    string             `json:"objective"`
	PageToken    string             `json:"page_token"`
	Timeout      string             `json:"timeout"`
	MaxReadUnits uint64             `json:"max_read_units"`
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if r.Method == http.MethodPost {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad topk body: %v", err)
			return
		}
		if req.K < 0 {
			writeError(w, http.StatusBadRequest, "bad k %d", req.K)
			return
		}
		if req.Parallelism != nil && *req.Parallelism < 0 {
			writeError(w, http.StatusBadRequest, "bad parallelism %d", *req.Parallelism)
			return
		}
	} else {
		qv := r.URL.Query()
		req.Query = qv.Get("query")
		req.Algo = qv.Get("algo")
		req.Objective = qv.Get("objective")
		req.PageToken = qv.Get("page_token")
		req.Timeout = qv.Get("timeout")
		if ks := qv.Get("k"); ks != "" {
			n, err := strconv.Atoi(ks)
			if err != nil || n < 1 {
				writeError(w, http.StatusBadRequest, "bad k %q", ks)
				return
			}
			req.K = n
		}
		if ps := qv.Get("parallelism"); ps != "" {
			n, err := strconv.Atoi(ps)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "bad parallelism %q", ps)
				return
			}
			req.Parallelism = &n
		}
		if v := qv.Get("max_read_units"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil || n == 0 {
				writeError(w, http.StatusBadRequest, "bad max_read_units %q", v)
				return
			}
			req.MaxReadUnits = n
		}
		tree, err := parseTreeParam(qv.Get("tree"))
		if err != nil {
			writeResolveError(w, err)
			return
		}
		req.Tree = tree
	}

	q, queryName, err := s.resolveQuery(req.Query, req.Tree)
	if err != nil {
		writeResolveError(w, err)
		return
	}

	// The planner is the default: with no algo parameter, auto picks
	// the cheapest executor whose indexes are built.
	algoName := strings.ToLower(req.Algo)
	if algoName == "" {
		algoName = string(rankjoin.AlgoAuto)
	}
	algo := rankjoin.Algorithm(algoName)

	objective := rankjoin.Objective(strings.ToLower(req.Objective))

	// k precedence: an explicit request k, then the tree spec's own k,
	// then 10 for the named presets.
	k := req.K
	if k == 0 {
		if req.Tree != nil {
			k = q.K()
		} else {
			k = 10
		}
	}

	parallelism := s.defaultParallelism
	if req.Parallelism != nil {
		parallelism = *req.Parallelism
	}

	opts := rankjoin.QueryOptions{
		ISLBatch:     s.islBatch,
		Parallelism:  parallelism,
		Objective:    objective,
		PageToken:    req.PageToken,
		MaxReadUnits: req.MaxReadUnits,
	}
	if err := s.queryBounds(r, req.Timeout, "", &opts); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Tree != nil {
		s.ensureTreeIndexes(q, algo)
	}

	start := time.Now()
	res, err := s.topK(q.WithK(k), algo, &opts)
	if err != nil {
		writeQueryError(w, err)
		return
	}

	resp := topkResponse{
		Query:         queryName,
		Algorithm:     res.Algorithm,
		K:             k,
		Parallelism:   parallelism,
		Results:       make([]resultJSON, 0, len(res.Results)),
		Cost:          toCostJSON(res.Cost),
		NextPageToken: res.NextPageToken,
		WallTime:      time.Since(start).String(),
	}
	if res.Estimate != nil {
		resp.Estimate = toEstimateJSON(*res.Estimate)
	}
	for _, jr := range res.Results {
		resp.Results = append(resp.Results, toResultJSON(jr))
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamRequest carries /stream parameters (query string on GET, JSON
// body on POST).
type streamRequest struct {
	Query string `json:"query"`
	// Tree, when set, replaces the named preset with an inline acyclic
	// join-tree query (same shape as /topk's tree field).
	Tree        *rankjoin.TreeSpec `json:"tree"`
	Algo        string             `json:"algo"`
	K           int                `json:"k"`     // page-size hint (default 10)
	Limit       int                `json:"limit"` // max results to stream (default 100)
	Parallelism *int               `json:"parallelism"`
	// Timeout (a Go duration string) and MaxReadUnits bound the stream;
	// hitting either ends it with a typed error line instead of more
	// results.
	Timeout      string `json:"timeout"`
	MaxReadUnits uint64 `json:"max_read_units"`
}

// streamSummary is the trailing NDJSON line of one /stream response.
type streamSummary struct {
	Done      bool     `json:"done"`
	Query     string   `json:"query"`
	Algorithm string   `json:"algorithm"`
	Count     int      `json:"count"`
	Exhausted bool     `json:"exhausted"`
	Cost      costJSON `json:"cost"`
	WallTime  string   `json:"wall_time"`
}

// handleStream streams one query's results as NDJSON in score order:
// one result object per line, then a summary line. The underlying
// cursor only does the marginal work each emitted result needs, so a
// client that disconnects early stops the spend.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	req := streamRequest{}
	if r.Method == http.MethodPost {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad stream body: %v", err)
			return
		}
		// Shared contract with GET: zero (or omitted) k/limit means
		// "default"; negatives are rejected rather than silently
		// producing an empty 200 stream.
		if req.K < 0 || req.Limit < 0 {
			writeError(w, http.StatusBadRequest, "bad k/limit: must not be negative")
			return
		}
		if req.Parallelism != nil && *req.Parallelism < 0 {
			writeError(w, http.StatusBadRequest, "bad parallelism %d", *req.Parallelism)
			return
		}
	} else {
		qv := r.URL.Query()
		req.Query = qv.Get("query")
		req.Algo = qv.Get("algo")
		for _, p := range []struct {
			name string
			dst  *int
		}{{"k", &req.K}, {"limit", &req.Limit}} {
			if v := qv.Get(p.name); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					writeError(w, http.StatusBadRequest, "bad %s %q", p.name, v)
					return
				}
				*p.dst = n
			}
		}
		if v := qv.Get("parallelism"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "bad parallelism %q", v)
				return
			}
			req.Parallelism = &n
		}
		req.Timeout = qv.Get("timeout")
		if v := qv.Get("max_read_units"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil || n == 0 {
				writeError(w, http.StatusBadRequest, "bad max_read_units %q", v)
				return
			}
			req.MaxReadUnits = n
		}
		tree, err := parseTreeParam(qv.Get("tree"))
		if err != nil {
			writeResolveError(w, err)
			return
		}
		req.Tree = tree
	}

	q, queryName, err := s.resolveQuery(req.Query, req.Tree)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	algoName := strings.ToLower(req.Algo)
	if algoName == "" {
		algoName = string(rankjoin.AlgoAuto)
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	limit := req.Limit
	if limit == 0 {
		limit = 100
	}
	parallelism := s.defaultParallelism
	if req.Parallelism != nil {
		parallelism = *req.Parallelism
	}

	opts := rankjoin.QueryOptions{
		ISLBatch:     s.islBatch,
		Parallelism:  parallelism,
		MaxReadUnits: req.MaxReadUnits,
	}
	if err := s.queryBounds(r, req.Timeout, "", &opts); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Tree != nil {
		s.ensureTreeIndexes(q, rankjoin.Algorithm(algoName))
	}

	start := time.Now()
	rows, err := s.stream(q.WithK(k), rankjoin.Algorithm(algoName), &opts)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	defer rows.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	count := 0
	exhausted := false
	for count < limit {
		if !rows.Next() {
			exhausted = rows.Err() == nil
			break
		}
		jr := rows.Result()
		if err := enc.Encode(toResultJSON(jr)); err != nil {
			return // client went away; Close stops the cursor's spend
		}
		count++
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := rows.Err(); err != nil {
		// Headers are long gone, so the status travels in the trailer
		// line; the rows already streamed are the partial results.
		_ = enc.Encode(map[string]any{
			"error":  err.Error(),
			"status": queryStatus(err),
			"count":  count,
		})
		return
	}
	_ = enc.Encode(streamSummary{
		Done:      true,
		Query:     queryName,
		Algorithm: rows.Algorithm(),
		Count:     count,
		Exhausted: exhausted,
		Cost:      toCostJSON(rows.Cost()),
		WallTime:  time.Since(start).String(),
	})
}

// explainRequest is the POST /explain body. Parallelism is optional
// and defaults to the server's -parallelism flag — pass the same value
// a later /topk will use so the plan matches the execution. Stream
// prices deep enumeration instead of the bounded top-k.
type explainRequest struct {
	Query string `json:"query"`
	// Tree, when set, plans an inline acyclic join-tree query instead
	// of a named preset (same shape as /topk's tree field).
	Tree        *rankjoin.TreeSpec `json:"tree"`
	K           int                `json:"k"`
	Objective   string             `json:"objective"`
	Parallelism *int               `json:"parallelism"`
	Stream      bool               `json:"stream"`
}

// candidateJSON is one ranked plan candidate.
type candidateJSON struct {
	Executor    string       `json:"executor"`
	IndexReady  bool         `json:"index_ready"`
	IndexBytes  uint64       `json:"index_bytes"`
	Incremental bool         `json:"incremental"`
	Estimate    estimateJSON `json:"estimate"`
	// Marginal is the predicted cost of the NEXT page of k results
	// (full re-run for materializing executors).
	Marginal estimateJSON `json:"marginal"`
	// StreamEstimate prices a deep enumeration (stream-mode ranking).
	StreamEstimate estimateJSON `json:"stream_estimate"`
}

type explainResponse struct {
	Query      string          `json:"query"`
	K          int             `json:"k"`
	Objective  string          `json:"objective"`
	Chosen     string          `json:"chosen"`
	Best       string          `json:"best"`
	StatSource string          `json:"stat_source"`
	Candidates []candidateJSON `json:"candidates"`
	Planner    costJSON        `json:"planner_cost"`
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if s.db == nil {
		// Plans are priced against node-local statistics; the router
		// doesn't hold any. Ship the query with algo=auto instead — each
		// node plans it on arrival.
		writeError(w, http.StatusNotImplemented,
			"explain is not served in router mode; run /topk with algo=auto (nodes plan on arrival)")
		return
	}
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad explain body: %v", err)
		return
	}
	q, queryName, err := s.resolveQuery(req.Query, req.Tree)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	k := req.K
	if k == 0 {
		if req.Tree != nil {
			k = q.K()
		} else {
			k = 10
		}
	}
	if k < 1 {
		writeError(w, http.StatusBadRequest, "bad k %d", req.K)
		return
	}

	parallelism := s.defaultParallelism
	if req.Parallelism != nil {
		if *req.Parallelism < 0 {
			writeError(w, http.StatusBadRequest, "bad parallelism %d", *req.Parallelism)
			return
		}
		parallelism = *req.Parallelism
	}

	p, err := s.db.Explain(q.WithK(k), &rankjoin.ExplainOptions{
		Objective: rankjoin.Objective(strings.ToLower(req.Objective)),
		Stream:    req.Stream,
		Query: rankjoin.QueryOptions{
			ISLBatch:    s.islBatch,
			Parallelism: parallelism,
		},
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	resp := explainResponse{
		Query:      queryName,
		K:          k,
		Objective:  string(p.Objective),
		Chosen:     p.Chosen,
		Best:       p.Best,
		StatSource: p.Stats.Source,
		Planner:    toCostJSON(p.PlannerCost),
	}
	for _, cand := range p.Candidates {
		resp.Candidates = append(resp.Candidates, candidateJSON{
			Executor:       cand.Executor,
			IndexReady:     cand.IndexReady,
			IndexBytes:     cand.IndexBytes,
			Incremental:    cand.Incremental,
			Estimate:       *toEstimateJSON(cand.Estimate),
			Marginal:       *toEstimateJSON(cand.Marginal),
			StreamEstimate: *toEstimateJSON(cand.StreamEstimate),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeRequest is the POST /insert, /update, and /delete body.
type writeRequest struct {
	Relation  string   `json:"relation"`
	RowKey    string   `json:"row_key"`
	JoinValue string   `json:"join_value"`
	Score     *float64 `json:"score"`
}

// writeResponse acknowledges one applied write.
type writeResponse struct {
	OK       bool   `json:"ok"`
	Op       string `json:"op"`
	Relation string `json:"relation"`
	RowKey   string `json:"row_key"`
	WallTime string `json:"wall_time"`
}

// distWrite applies one write through the replication protocol:
// resolved at the leader, stamped once, applied with full index
// maintenance on every replica, acknowledged at quorum.
func (s *server) distWrite(op string, req writeRequest, score float64) error {
	rel := s.dist.Relation(req.Relation)
	if rel == nil {
		return fmt.Errorf("unknown relation %q", req.Relation)
	}
	switch op {
	case "insert", "update":
		return rel.Insert(req.RowKey, req.JoinValue, score)
	default:
		return rel.DeleteKey(req.RowKey)
	}
}

// handleWrite serves the write endpoints: each mutation flows through
// the Section 6 maintenance pipeline, so every index built over the
// relation (and the planner's statistics) reflect it before the
// response returns — a query issued next sees the write on every
// executor. In router mode the same pipeline runs on every replica
// with one shared timestamp.
func (s *server) handleWrite(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req writeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad %s body: %v", op, err)
			return
		}
		if req.RowKey == "" {
			writeError(w, http.StatusBadRequest, "%s needs row_key", op)
			return
		}
		score := 0.0
		if req.Score != nil {
			score = *req.Score
			if score < 0 || score > 1 {
				writeError(w, http.StatusBadRequest, "score %v outside the normalized [0,1] domain", score)
				return
			}
		}
		if (op == "insert" || op == "update") && (req.JoinValue == "" || req.Score == nil) {
			writeError(w, http.StatusBadRequest, "%s needs join_value and score", op)
			return
		}
		start := time.Now()
		var err error
		if s.dist != nil {
			if s.dist.Relation(req.Relation) == nil {
				writeError(w, http.StatusBadRequest, "unknown relation %q (want one of %v)",
					req.Relation, s.relationNames())
				return
			}
			err = s.distWrite(op, req, score)
			if err != nil {
				writeQueryError(w, err)
				return
			}
		} else {
			h := s.db.Relation(req.Relation)
			if h == nil {
				writeError(w, http.StatusBadRequest, "unknown relation %q (want one of %v)",
					req.Relation, s.relationNames())
				return
			}
			switch op {
			case "insert", "update":
				if op == "insert" {
					err = h.Insert(req.RowKey, req.JoinValue, score)
				} else {
					err = h.Update(req.RowKey, req.JoinValue, score)
				}
			case "delete":
				// Never trust the client's idea of the tuple's current join
				// value and score: index entries live at those coordinates,
				// and deleting at stale ones strands the real entries as
				// phantoms. Read the live tuple; any supplied value acts only
				// as a precondition against it (each independently — a lone
				// join_value or score is still checked).
				if req.JoinValue != "" || req.Score != nil {
					cur, ok, gerr := h.Get(req.RowKey)
					if gerr != nil {
						writeError(w, http.StatusInternalServerError, "%v", gerr)
						return
					}
					if ok {
						if req.JoinValue != "" && cur.JoinValue != req.JoinValue {
							writeError(w, http.StatusConflict,
								"delete of %q expected join %q but the live tuple has join %q; retry without join_value/score to delete regardless",
								req.RowKey, req.JoinValue, cur.JoinValue)
							return
						}
						if req.Score != nil && cur.Score != score {
							writeError(w, http.StatusConflict,
								"delete of %q expected score %v but the live tuple has score %v; retry without join_value/score to delete regardless",
								req.RowKey, score, cur.Score)
							return
						}
					}
				}
				err = h.DeleteKey(req.RowKey)
			}
			if err != nil {
				// Divergence is a server-side, retryable condition: the base
				// write landed but an index write did not. 400 would tell the
				// client its request was malformed and make it drop the write;
				// 500 signals "re-apply" (the error carries the timestamp).
				var me *rankjoin.MaintenanceError
				if errors.As(err, &me) {
					writeError(w, http.StatusInternalServerError, "%v", err)
					return
				}
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
		writeJSON(w, http.StatusOK, writeResponse{
			OK: true, Op: op, Relation: req.Relation, RowKey: req.RowKey,
			WallTime: time.Since(start).String(),
		})
	}
}

// handleRepair (router mode) runs one anti-entropy pass on demand.
func (s *server) handleRepair(w http.ResponseWriter, _ *http.Request) {
	if s.dist == nil {
		writeError(w, http.StatusNotImplemented, "repair needs router mode (-nodes)")
		return
	}
	start := time.Now()
	rep, err := s.dist.Repair()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"report":    rep,
		"wall_time": time.Since(start).String(),
	})
}

func (s *server) handleRelations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"relations": s.relationNames()})
}

func (s *server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	algos := []string{string(rankjoin.AlgoAuto), string(rankjoin.AlgoNaive)}
	for _, a := range rankjoin.Algorithms() {
		algos = append(algos, string(a))
	}
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": algos})
}

// nodeStatusJSON is one node's replica-status row in /metrics and
// /healthz.
type nodeStatusJSON struct {
	Node        string   `json:"node"`
	Alive       bool     `json:"alive"`
	Dirty       bool     `json:"dirty"`
	DirtyCause  string   `json:"dirty_cause,omitempty"`
	Relations   []string `json:"relations,omitempty"`
	Tables      int      `json:"tables"`
	Quarantined int      `json:"quarantined_regions"`
}

func (s *server) nodeStatuses() []nodeStatusJSON {
	sts := s.dist.Status()
	out := make([]nodeStatusJSON, 0, len(sts))
	for _, st := range sts {
		out = append(out, nodeStatusJSON{
			Node:        st.Name,
			Alive:       st.Alive,
			Dirty:       st.Dirty,
			DirtyCause:  st.DirtyCause,
			Relations:   st.Relations,
			Tables:      st.Tables,
			Quarantined: len(st.Quarantined),
		})
	}
	return out
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.dist != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"cumulative": toCostJSON(s.dist.AggregateCost()),
			"nodes":      s.nodeStatuses(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cumulative": toCostJSON(s.db.Metrics().Snapshot()),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.dist == nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	nodes := s.nodeStatuses()
	status := "ok"
	for _, n := range nodes {
		if !n.Alive || n.Dirty {
			status = "degraded"
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "nodes": nodes})
}

// parseNodes turns the -nodes flag into a topology: "name=addr" is a
// TCP region server (rjnode), a bare name is an in-process loopback
// node, and a bare "host:port" is TCP named after its address.
func parseNodes(spec string) ([]rankjoin.NodeSpec, error) {
	var out []rankjoin.NodeSpec
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		switch {
		case strings.Contains(ent, "="):
			parts := strings.SplitN(ent, "=", 2)
			if parts[0] == "" || parts[1] == "" {
				return nil, fmt.Errorf("bad node entry %q (want name=addr)", ent)
			}
			out = append(out, rankjoin.NodeSpec{Name: parts[0], Addr: parts[1]})
		case strings.Contains(ent, ":"):
			out = append(out, rankjoin.NodeSpec{Name: ent, Addr: ent})
		default:
			out = append(out, rankjoin.NodeSpec{Name: ent})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-nodes %q names no nodes", spec)
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	profileName := flag.String("profile", "lc", "hardware profile: ec2 or lc")
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor")
	seed := flag.Int64("seed", 1, "data generator seed")
	parallelism := flag.Int("parallelism", 4, "default client read-path parallelism")
	timeout := flag.Duration("timeout", 0, "default per-query timeout (0 = unbounded; the timeout request parameter overrides)")
	dataDir := flag.String("data", "", "durable data directory (empty = in-memory, single-process mode only)")
	nodes := flag.String("nodes", "", "router mode: comma-separated region servers (name for loopback, name=addr for rjnode TCP)")
	replication := flag.Int("replication", 0, "router mode: replicas per relation (0 = full replication)")
	flag.Parse()

	profile := sim.LC()
	if strings.EqualFold(*profileName, "ec2") {
		profile = sim.EC2()
	}

	s := &server{defaultParallelism: *parallelism, defaultTimeout: *timeout}
	if *nodes != "" {
		specs, err := parseNodes(*nodes)
		if err != nil {
			log.Fatal(err)
		}
		if *dataDir != "" {
			log.Fatal("-data applies to single-process mode; give rjnode processes their own -data directories")
		}
		log.Printf("router mode: loading TPC-H SF %g onto %d nodes (replication %d, %s profile)...",
			*sf, len(specs), *replication, profile.Name)
		denv, err := benchkit.SetupDistributed(profile, *sf, *seed, &rankjoin.Topology{
			Nodes:       specs,
			Replication: *replication,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer denv.D.Close()
		s.dist, s.q1, s.q2, s.islBatch = denv.D, denv.Q1, denv.Q2, denv.ISLBatch
		p, o, l := denv.Counts()
		log.Printf("cluster ready: %d parts, %d orders, %d lineitems replicated across %v",
			p, o, l, denv.D.Nodes())
	} else {
		var env *benchkit.Env
		var recovered bool
		var err error
		if *dataDir != "" {
			log.Printf("opening durable store at %s (TPC-H SF %g, %s profile)...", *dataDir, *sf, profile.Name)
			env, recovered, err = benchkit.SetupAt(profile, *sf, *seed, *dataDir)
		} else {
			log.Printf("loading TPC-H SF %g on the %s profile and building indexes...", *sf, profile.Name)
			env, err = benchkit.Setup(profile, *sf, *seed)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer env.DB.Close()
		parts, orders, lineitems := env.Counts()
		if recovered {
			log.Printf("recovered tables and index catalog from disk: %d parts, %d orders, %d lineitems",
				parts, orders, lineitems)
		} else {
			log.Printf("ready: %d parts, %d orders, %d lineitems", parts, orders, lineitems)
		}
		s.db, s.q1, s.q2, s.islBatch = env.DB, env.Q1, env.Q2, env.ISLBatch
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /topk", s.handleTopK)
	mux.HandleFunc("POST /topk", s.handleTopK)
	mux.HandleFunc("GET /stream", s.handleStream)
	mux.HandleFunc("POST /stream", s.handleStream)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("POST /insert", s.handleWrite("insert"))
	mux.HandleFunc("POST /update", s.handleWrite("update"))
	mux.HandleFunc("POST /delete", s.handleWrite("delete"))
	mux.HandleFunc("POST /repair", s.handleRepair)
	mux.HandleFunc("GET /relations", s.handleRelations)
	mux.HandleFunc("GET /algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)

	log.Printf("serving top-k rank joins on %s (default parallelism %d)", *addr, *parallelism)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

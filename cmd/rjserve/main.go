// Command rjserve exposes top-k rank-join queries over HTTP as a JSON
// API, serving concurrent clients from one shared DB — the concurrent
// query path DB.TopK's per-query metering enables. Data is generated
// TPC-H at a configurable scale factor with all index families prebuilt.
//
// Usage:
//
//	rjserve [-addr :8080] [-profile ec2|lc] [-sf 0.02] [-parallelism 4]
//
// Endpoints:
//
//	GET /topk?query=q1&algo=bfhm&k=10[&parallelism=4]
//	    Run one query; returns ranked results plus the per-query cost
//	    metrics (simulated time, network bytes, KV read units, dollars).
//	GET /algorithms   List available algorithms.
//	GET /metrics      DB-wide cumulative metrics.
//	GET /healthz      Liveness probe.
//
// Example:
//
//	curl 'localhost:8080/topk?query=q2&algo=isl&k=5'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	rankjoin "repro"
	"repro/internal/benchkit"
	"repro/internal/sim"
)

// server holds the shared query environment.
type server struct {
	env                *benchkit.Env
	defaultParallelism int
}

// costJSON is the wire form of a sim.Snapshot.
type costJSON struct {
	SimTime      string  `json:"sim_time"`
	SimTimeSecs  float64 `json:"sim_time_seconds"`
	NetworkBytes uint64  `json:"network_bytes"`
	KVReads      uint64  `json:"kv_read_units"`
	RPCCalls     uint64  `json:"rpc_calls"`
	Dollars      float64 `json:"dollars"`
}

func toCostJSON(s sim.Snapshot) costJSON {
	return costJSON{
		SimTime:      s.SimTime.String(),
		SimTimeSecs:  s.SimTime.Seconds(),
		NetworkBytes: s.NetworkBytes,
		KVReads:      s.KVReads,
		RPCCalls:     s.RPCCalls,
		Dollars:      s.Dollars(),
	}
}

type resultJSON struct {
	LeftRow   string  `json:"left_row"`
	RightRow  string  `json:"right_row"`
	JoinValue string  `json:"join_value"`
	Score     float64 `json:"score"`
}

type topkResponse struct {
	Query       string       `json:"query"`
	Algorithm   string       `json:"algorithm"`
	K           int          `json:"k"`
	Parallelism int          `json:"parallelism"`
	Results     []resultJSON `json:"results"`
	Cost        costJSON     `json:"cost"`
	WallTime    string       `json:"wall_time"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()

	var q rankjoin.Query
	queryName := strings.ToLower(qv.Get("query"))
	switch queryName {
	case "", "q1":
		q, queryName = s.env.Q1, "q1"
	case "q2":
		q = s.env.Q2
	default:
		writeError(w, http.StatusBadRequest, "unknown query %q (want q1 or q2)", queryName)
		return
	}

	algoName := strings.ToLower(qv.Get("algo"))
	if algoName == "" {
		algoName = string(rankjoin.AlgoBFHM)
	}
	algo := rankjoin.Algorithm(algoName)

	k := 10
	if ks := qv.Get("k"); ks != "" {
		n, err := strconv.Atoi(ks)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad k %q", ks)
			return
		}
		k = n
	}

	parallelism := s.defaultParallelism
	if ps := qv.Get("parallelism"); ps != "" {
		n, err := strconv.Atoi(ps)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad parallelism %q", ps)
			return
		}
		parallelism = n
	}

	start := time.Now()
	res, err := s.env.DB.TopK(q.WithK(k), algo, &rankjoin.QueryOptions{
		ISLBatch:    s.env.ISLBatch,
		Parallelism: parallelism,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	resp := topkResponse{
		Query:       queryName,
		Algorithm:   string(algo),
		K:           k,
		Parallelism: parallelism,
		Results:     make([]resultJSON, 0, len(res.Results)),
		Cost:        toCostJSON(res.Cost),
		WallTime:    time.Since(start).String(),
	}
	for _, jr := range res.Results {
		resp.Results = append(resp.Results, resultJSON{
			LeftRow:   jr.Left.RowKey,
			RightRow:  jr.Right.RowKey,
			JoinValue: jr.Left.JoinValue,
			Score:     jr.Score,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	algos := []string{string(rankjoin.AlgoNaive)}
	for _, a := range rankjoin.Algorithms() {
		algos = append(algos, string(a))
	}
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": algos})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cumulative": toCostJSON(s.env.DB.Metrics().Snapshot()),
	})
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	profileName := flag.String("profile", "lc", "hardware profile: ec2 or lc")
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor")
	seed := flag.Int64("seed", 1, "data generator seed")
	parallelism := flag.Int("parallelism", 4, "default client read-path parallelism")
	flag.Parse()

	profile := sim.LC()
	if strings.EqualFold(*profileName, "ec2") {
		profile = sim.EC2()
	}

	log.Printf("loading TPC-H SF %g on the %s profile and building indexes...", *sf, profile.Name)
	env, err := benchkit.Setup(profile, *sf, *seed)
	if err != nil {
		log.Fatal(err)
	}
	parts, orders, lineitems := env.Counts()
	log.Printf("ready: %d parts, %d orders, %d lineitems", parts, orders, lineitems)

	s := &server{env: env, defaultParallelism: *parallelism}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topk", s.handleTopK)
	mux.HandleFunc("GET /algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	log.Printf("serving top-k rank joins on %s (default parallelism %d)", *addr, *parallelism)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

package rankjoin

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentEnsureIndexesAndSetIndexConfig races index builds
// against config writes — the db.idxCfg read used to happen outside
// db.mu and trip the race detector. Run with -race (CI does).
func TestConcurrentEnsureIndexesAndSetIndexConfig(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 120)
	q, err := db.NewQuery("left", "right", Sum, 5)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			db.SetIndexConfig(IndexConfig{BFHMBuckets: 50 + i, DRJNBuckets: 50 + i})
		}(i)
		go func() {
			defer wg.Done()
			if err := db.EnsureIndexes(q, AlgoBFHM, AlgoDRJN, AlgoISL, AlgoIJLMR); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	if _, err := db.TopK(q, AlgoBFHM, nil); err != nil {
		t.Fatalf("BFHM after concurrent builds: %v", err)
	}
}

// TestConcurrentEnsureIndexesBFHMWidths drives many concurrent
// EnsureIndexes calls over relation pairs sharing one relation. Without
// single-flight build serialization, two racing builders could each see
// "no index", auto-size filters independently, and persist BFHM pairs
// with mismatched widths — which QueryBFHM rejects. With the build
// scopes, every relation ends up with one index and one shared width.
func TestConcurrentEnsureIndexesBFHMWidths(t *testing.T) {
	db := mustOpen(t, Config{})
	names := []string{"shared", "ra", "rb", "rc"}
	for _, n := range names {
		h, err := db.DefineRelation(n)
		if err != nil {
			t.Fatal(err)
		}
		var tuples []Tuple
		for i := 0; i < 150; i++ {
			tuples = append(tuples, Tuple{
				RowKey:    fmt.Sprintf("%s%04d", n, i),
				JoinValue: fmt.Sprintf("j%d", i%25),
				Score:     float64(i%150) / 150,
			})
		}
		if err := h.BulkLoad(tuples); err != nil {
			t.Fatal(err)
		}
	}
	// Three queries all joining against "shared": their BFHM builds
	// must agree on the filter width.
	var queries []Query
	for _, n := range []string{"ra", "rb", "rc"} {
		q, err := db.NewQuery("shared", n, Sum, 5)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}

	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q Query) {
				defer wg.Done()
				if err := db.EnsureIndexes(q, AlgoBFHM); err != nil {
					t.Error(err)
				}
			}(q)
		}
	}
	wg.Wait()

	var width uint64
	for _, n := range names {
		idx, ok := db.store.BFHM(n)
		if !ok {
			t.Fatalf("relation %s has no BFHM index after concurrent builds", n)
		}
		if width == 0 {
			width = idx.MBits
		}
		if idx.MBits != width {
			t.Fatalf("relation %s built with filter width %d, want shared width %d", n, idx.MBits, width)
		}
	}
	// The widths must actually interoperate.
	for _, q := range queries {
		if _, err := db.TopK(q, AlgoBFHM, nil); err != nil {
			t.Fatalf("BFHM query after concurrent builds: %v", err)
		}
	}
}

// Concurrent split/scan/stream exercise (run with -race): one DB serves
// streaming and paginated queries while the underlying tables' regions
// split. Splits move data between regions but never change it, so every
// stream and every page must keep returning the exact reference order.
package rankjoin_test

import (
	"sync"
	"testing"

	rankjoin "repro"
)

// TestConcurrentSplitScanStream drives streams, token-paged queries,
// and batch scans against a shared DB while the base and index tables
// split underneath them.
func TestConcurrentSplitScanStream(t *testing.T) {
	db, q := concurrentDB(t)

	// Reference order, measured quiet.
	ref, err := db.TopK(q.WithK(50), rankjoin.AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	refScores := make([]float64, len(ref.Results))
	for i, r := range ref.Results {
		refScores[i] = r.Score
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Splitter: keep splitting the base tables and the ISL index table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		c := db.Cluster()
		for i := 0; i < 5; i++ {
			for _, tbl := range []string{"rel_cl", "rel_cr", "isl_cl_cr_sum"} {
				regions, err := c.TableRegions(tbl)
				if err != nil || len(regions) == 0 {
					continue
				}
				// Split the largest region at its middle.
				big := regions[0]
				for _, r := range regions {
					if r.DiskSize() > big.DiskSize() {
						big = r
					}
				}
				_ = c.SplitRegion(tbl, big.StartKey()+"\x7f")
			}
		}
	}()

	// Streamers: full-order enumeration must match the reference.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := db.Stream(q.WithK(10), rankjoin.AlgoISL, nil)
				if err != nil {
					t.Errorf("stream %d: %v", g, err)
					return
				}
				for i := 0; i < len(refScores) && rows.Next(); i++ {
					if s := rows.Result().Score; s != refScores[i] {
						t.Errorf("stream %d iter %d: score[%d] = %v, want %v", g, iter, i, s, refScores[i])
						rows.Close()
						return
					}
				}
				if err := rows.Err(); err != nil {
					t.Errorf("stream %d: %v", g, err)
					rows.Close()
					return
				}
				rows.Close()
			}
		}(g)
	}

	// Pager: token-resumed pages must concatenate to the reference.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			opts := &rankjoin.QueryOptions{}
			got := 0
			for got < len(refScores) {
				res, err := db.TopK(q.WithK(10), rankjoin.AlgoISL, opts)
				if err != nil {
					t.Errorf("page at %d: %v", got, err)
					return
				}
				for _, r := range res.Results {
					if got < len(refScores) && r.Score != refScores[got] {
						t.Errorf("page score[%d] = %v, want %v", got, r.Score, refScores[got])
						return
					}
					got++
				}
				if res.NextPageToken == "" {
					break
				}
				opts = &rankjoin.QueryOptions{PageToken: res.NextPageToken}
			}
		}
	}()

	// Scanner: naive full scans see consistent data throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := db.TopK(q.WithK(5), rankjoin.AlgoNaive, nil)
			if err != nil {
				t.Errorf("naive: %v", err)
				return
			}
			for i, r := range res.Results {
				if r.Score != refScores[i] {
					t.Errorf("naive score[%d] = %v, want %v", i, r.Score, refScores[i])
					return
				}
			}
		}
	}()

	wg.Wait()

	// The splits actually happened (the base table started unsplit).
	regions, err := db.Cluster().TableRegions("rel_cl")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) < 2 {
		t.Errorf("rel_cl still has %d region(s); splitter was a no-op", len(regions))
	}
}

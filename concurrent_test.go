// Concurrency tests: one shared DB serving top-k queries from many
// goroutines (run with -race). Per-query metric isolation means every
// execution must report exactly the same deterministic cost it reports
// when run alone, no matter what runs next to it — at row-cache steady
// state, since the first keyed read of a row pays the disk seek that
// later cache hits legitimately avoid.
package rankjoin_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	rankjoin "repro"
)

// mustOpenDB builds a fresh in-memory DB, failing the test on setup
// errors (disk-mode scratch dir creation).
func mustOpenDB(tb testing.TB) *rankjoin.DB {
	tb.Helper()
	db, err := rankjoin.Open(rankjoin.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	return db
}

// concurrentDB builds a shared DB with synthetic relations and all
// indexes the mixed-algorithm workload needs.
func concurrentDB(t *testing.T) (*rankjoin.DB, rankjoin.Query) {
	t.Helper()
	db := mustOpenDB(t)
	lh, err := db.DefineRelation("cl")
	if err != nil {
		t.Fatal(err)
	}
	rh, err := db.DefineRelation("cr")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var lt, rt []rankjoin.Tuple
	for i := 0; i < 1500; i++ {
		lt = append(lt, rankjoin.Tuple{
			RowKey:    fmt.Sprintf("l%05d", i),
			JoinValue: fmt.Sprintf("j%d", rng.Intn(250)),
			Score:     float64(rng.Intn(1000)) / 1000,
		})
		rt = append(rt, rankjoin.Tuple{
			RowKey:    fmt.Sprintf("r%05d", i),
			JoinValue: fmt.Sprintf("j%d", rng.Intn(250)),
			Score:     float64(rng.Intn(1000)) / 1000,
		})
	}
	if err := lh.BulkLoad(lt); err != nil {
		t.Fatal(err)
	}
	if err := rh.BulkLoad(rt); err != nil {
		t.Fatal(err)
	}
	q, err := db.NewQuery("cl", "cr", rankjoin.Sum, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, rankjoin.AlgoIJLMR, rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoDRJN); err != nil {
		t.Fatal(err)
	}
	return db, q
}

// workload is one query configuration of the mixed concurrent run.
type workload struct {
	algo rankjoin.Algorithm
	opts rankjoin.QueryOptions
}

func TestConcurrentTopKMixedAlgorithms(t *testing.T) {
	db, q := concurrentDB(t)

	mix := []workload{
		{algo: rankjoin.AlgoNaive},
		{algo: rankjoin.AlgoISL},
		{algo: rankjoin.AlgoISL, opts: rankjoin.QueryOptions{Parallelism: 4}},
		{algo: rankjoin.AlgoBFHM},
		{algo: rankjoin.AlgoBFHM, opts: rankjoin.QueryOptions{Parallelism: 4}},
		{algo: rankjoin.AlgoDRJN},
		{algo: rankjoin.AlgoIJLMR},
		{algo: rankjoin.AlgoHive},
	}

	// Warm-up pass: the region row cache makes the first keyed read of
	// each row dearer (disk seek) than later reads (cache hit). With no
	// writes in this test the cache reaches steady state after one pass
	// over the mix, restoring per-run cost determinism for the
	// reference and concurrent passes below.
	for _, w := range mix {
		if _, err := db.TopK(q, w.algo, &w.opts); err != nil {
			t.Fatalf("%s warm-up: %v", w.algo, err)
		}
	}

	// Sequential reference pass: per-workload scores and exact costs.
	type expect struct {
		scores []float64
		cost   rankjoin.Result
	}
	expected := make([]expect, len(mix))
	for i, w := range mix {
		res, err := db.TopK(q, w.algo, &w.opts)
		if err != nil {
			t.Fatalf("%s sequential: %v", w.algo, err)
		}
		e := expect{cost: *res}
		for _, r := range res.Results {
			e.scores = append(e.scores, r.Score)
		}
		expected[i] = e
	}

	const goroutines = 8
	const perGoroutine = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perGoroutine)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < perGoroutine; it++ {
				wi := (g*perGoroutine + it) % len(mix)
				w := mix[wi]
				res, err := db.TopK(q, w.algo, &w.opts)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", w.algo, err)
					return
				}
				want := expected[wi]
				if len(res.Results) != len(want.scores) {
					errs <- fmt.Errorf("%s: got %d results, want %d", w.algo, len(res.Results), len(want.scores))
					return
				}
				for i, r := range res.Results {
					if d := r.Score - want.scores[i]; d > 1e-9 || d < -1e-9 {
						errs <- fmt.Errorf("%s: score[%d] = %v, want %v", w.algo, i, r.Score, want.scores[i])
						return
					}
				}
				// Per-query metering is isolated: the cost must equal
				// the sequential run's cost exactly, even while other
				// queries charge the shared DB-wide collector.
				if res.Cost != want.cost.Cost {
					errs <- fmt.Errorf("%s: concurrent cost %+v != sequential %+v", w.algo, res.Cost, want.cost.Cost)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentTopKAccumulatesGlobalMetrics(t *testing.T) {
	db, q := concurrentDB(t)

	before := db.Metrics().Snapshot()
	res, err := db.TopK(q, rankjoin.AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	delta := db.Metrics().Snapshot().Sub(before)
	// A single query folds its cost into the DB-wide collector 1:1.
	if delta != res.Cost {
		t.Errorf("global delta %+v != query cost %+v", delta, res.Cost)
	}

	// Concurrent queries fold their busy time cumulatively.
	before = db.Metrics().Snapshot()
	const n = 6
	var wg sync.WaitGroup
	costs := make([]rankjoin.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := db.TopK(q, rankjoin.AlgoBFHM, &rankjoin.QueryOptions{Parallelism: 2})
			if err == nil {
				costs[i] = *r
			}
		}(i)
	}
	wg.Wait()
	delta = db.Metrics().Snapshot().Sub(before)
	var sum rankjoin.Result
	for i := range costs {
		sum.Cost.SimTime += costs[i].Cost.SimTime
		sum.Cost.KVReads += costs[i].Cost.KVReads
		sum.Cost.NetworkBytes += costs[i].Cost.NetworkBytes
	}
	if delta.SimTime != sum.Cost.SimTime || delta.KVReads != sum.Cost.KVReads || delta.NetworkBytes != sum.Cost.NetworkBytes {
		t.Errorf("global delta %+v != summed per-query costs %+v", delta, sum.Cost)
	}
}

// TestParallelismReducesTurnaround pins the headline property: at
// Parallelism >= 4 the parallel client read path beats the sequential
// one on simulated turnaround for both BFHM and ISL.
func TestParallelismReducesTurnaround(t *testing.T) {
	db, q := concurrentDB(t)
	for _, algo := range []rankjoin.Algorithm{rankjoin.AlgoBFHM, rankjoin.AlgoISL} {
		seq, err := db.TopK(q, algo, nil)
		if err != nil {
			t.Fatal(err)
		}
		par, err := db.TopK(q, algo, &rankjoin.QueryOptions{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.Cost.SimTime >= seq.Cost.SimTime {
			t.Errorf("%s: parallel turnaround %v not below sequential %v", algo, par.Cost.SimTime, seq.Cost.SimTime)
		}
		t.Logf("%s: sequential %v -> parallel(4) %v", algo, seq.Cost.SimTime, par.Cost.SimTime)
	}
}

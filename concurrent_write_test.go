// Concurrent mixed read/write exercise (run with -race): online
// Insert/Update/Delete traffic races TopK and Stream across all seven
// executors on one shared DB. Under concurrent writes exact result sets
// are timing-dependent, so each returned result is checked for
// prefix-consistency instead: every tuple it contains must be a version
// that was live at some prefix of the write history (initial load or a
// planned write — never a torn or invented version), the pair must
// actually join, the aggregate score must be the score function of its
// sides, and the result list must be in descending score order.
package rankjoin_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	rankjoin "repro"
)

// writePlan is one relation's scripted write traffic, precomputed so the
// set of ever-valid tuple versions is known before the race starts.
type writePlan struct {
	inserts []rankjoin.Tuple // fresh keys
	updates []rankjoin.Tuple // new versions of loaded keys
	deletes []string         // loaded keys to remove
}

func planWrites(prefix string, rng *rand.Rand, n int, loaded []rankjoin.Tuple) writePlan {
	var p writePlan
	for i := 0; i < n; i++ {
		p.inserts = append(p.inserts, rankjoin.Tuple{
			RowKey:    fmt.Sprintf("%snew%04d", prefix, i),
			JoinValue: fmt.Sprintf("j%d", rng.Intn(120)),
			Score:     float64(rng.Intn(1000)) / 1000,
		})
		t := loaded[rng.Intn(len(loaded)/2)] // first half: update targets
		p.updates = append(p.updates, rankjoin.Tuple{
			RowKey:    t.RowKey,
			JoinValue: fmt.Sprintf("j%d", rng.Intn(120)),
			Score:     float64(rng.Intn(1000)) / 1000,
		})
		// Second half: delete targets, disjoint from update targets so
		// the scripted writers never conflict on a key.
		p.deletes = append(p.deletes, loaded[len(loaded)/2+rng.Intn(len(loaded)/2)].RowKey)
	}
	return p
}

func versionKey(t rankjoin.Tuple) string {
	return fmt.Sprintf("%s|%s|%v", t.RowKey, t.JoinValue, t.Score)
}

func TestConcurrentWritesVsReads(t *testing.T) {
	db := mustOpenDB(t)
	db.SetIndexConfig(rankjoin.IndexConfig{DRJNBuckets: 10, DRJNJoinParts: 16})
	lh, err := db.DefineRelation("cwl")
	if err != nil {
		t.Fatal(err)
	}
	rh, err := db.DefineRelation("cwr")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	mk := func(prefix string, n int) []rankjoin.Tuple {
		var out []rankjoin.Tuple
		for i := 0; i < n; i++ {
			out = append(out, rankjoin.Tuple{
				RowKey:    fmt.Sprintf("%s%05d", prefix, i),
				JoinValue: fmt.Sprintf("j%d", rng.Intn(120)),
				Score:     float64(rng.Intn(1000)) / 1000,
			})
		}
		return out
	}
	lt, rt := mk("l", 600), mk("r", 600)
	if err := lh.BulkLoad(lt); err != nil {
		t.Fatal(err)
	}
	if err := rh.BulkLoad(rt); err != nil {
		t.Fatal(err)
	}
	q, err := db.NewQuery("cwl", "cwr", rankjoin.Sum, 15)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, rankjoin.Algorithms()...); err != nil {
		t.Fatal(err)
	}

	const writesPerSide = 60
	lPlan := planWrites("l", rng, writesPerSide, lt)
	rPlan := planWrites("r", rng, writesPerSide, rt)

	// Every tuple version that is ever live: the initial load plus every
	// planned insert and update. A read may legitimately return any of
	// them (including just-deleted ones it raced), but nothing else.
	allowed := map[string]bool{}
	for _, set := range [][]rankjoin.Tuple{lt, rt, lPlan.inserts, lPlan.updates, rPlan.inserts, rPlan.updates} {
		for _, tp := range set {
			allowed[versionKey(tp)] = true
		}
	}

	checkResult := func(algo rankjoin.Algorithm, results []rankjoin.JoinResult) error {
		prev := 2.1
		for i, r := range results {
			if r.Score > prev+1e-9 {
				return fmt.Errorf("%s: result %d out of order (%v after %v)", algo, i, r.Score, prev)
			}
			prev = r.Score
			if r.Left.JoinValue != r.Right.JoinValue {
				return fmt.Errorf("%s: non-joining pair %+v", algo, r)
			}
			if d := r.Score - (r.Left.Score + r.Right.Score); d > 1e-9 || d < -1e-9 {
				return fmt.Errorf("%s: score %v != sum of sides %+v", algo, r.Score, r)
			}
			for _, side := range []rankjoin.Tuple{r.Left, r.Right} {
				if !allowed[versionKey(side)] {
					return fmt.Errorf("%s: tuple %+v was never a live version", algo, side)
				}
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	report := func(err error) {
		if err != nil {
			select {
			case errc <- err:
			default:
			}
		}
	}

	// Writers: scripted single-writer-per-key traffic on each side.
	for _, side := range []struct {
		h    *rankjoin.RelationHandle
		plan writePlan
	}{{lh, lPlan}, {rh, rPlan}} {
		wg.Add(1)
		go func(h *rankjoin.RelationHandle, p writePlan) {
			defer wg.Done()
			for i := 0; i < writesPerSide; i++ {
				ins := p.inserts[i]
				if err := h.Insert(ins.RowKey, ins.JoinValue, ins.Score); err != nil {
					report(fmt.Errorf("insert %s: %w", ins.RowKey, err))
					return
				}
				up := p.updates[i]
				if err := h.Update(up.RowKey, up.JoinValue, up.Score); err != nil {
					report(fmt.Errorf("update %s: %w", up.RowKey, err))
					return
				}
				if err := h.DeleteKey(p.deletes[i]); err != nil {
					report(fmt.Errorf("delete %s: %w", p.deletes[i], err))
					return
				}
			}
		}(side.h, side.plan)
	}

	// Readers: every executor keeps querying while the writers run.
	for _, algo := range append(rankjoin.Algorithms(), rankjoin.AlgoNaive) {
		wg.Add(1)
		go func(algo rankjoin.Algorithm) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := db.TopK(q, algo, nil)
				if err != nil {
					report(fmt.Errorf("topk %s: %w", algo, err))
					return
				}
				report(checkResult(algo, res.Results))
			}
		}(algo)
	}

	// A streaming reader with early close: partial drains racing writes
	// must hold the same per-result invariants and must not leak.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			rows, err := db.Stream(q, rankjoin.AlgoISL, nil)
			if err != nil {
				report(fmt.Errorf("stream open: %w", err))
				return
			}
			var got []rankjoin.JoinResult
			for len(got) < 8 && rows.Next() {
				got = append(got, rows.Result())
			}
			report(rows.Err())
			report(checkResult("stream-isl", got))
			report(rows.Close())
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Error(err)
		}
	}
}

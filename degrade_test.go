// Graceful-degradation tests: queries bounded by context, deadline, or
// read budget stop cooperatively with typed errors carrying partial
// results, and storage faults surface through the public TopK/Stream
// API as typed errors — never as silently truncated result sets.
package rankjoin

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// openFaultedDB opens a durable DB at a temp dir through ffs, defines
// and loads two relations, and flushes so reads hit real SSTables.
func openFaultedDB(t *testing.T, ffs *faultfs.FS, n int) *DB {
	t.Helper()
	db, err := OpenAt(Config{Dir: t.TempDir(), VFS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	loadTwoRelations(t, db, n)
	if err := db.cluster.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestTopKContextCanceledTyped(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 100)
	q, err := db.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := db.TopK(q, AlgoNaive, &QueryOptions{Context: ctx})
	if err == nil {
		t.Fatalf("pre-canceled query returned %d results and no error", len(res.Results))
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err %v does not match ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err %v does not unwrap to context.Canceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err is %T, want *CanceledError", err)
	}
}

func TestTopKReadBudgetTyped(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 200)
	q, err := db.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline spend, then cap well below it.
	full, err := db.TopK(q, AlgoNaive, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cost.KVReads < 20 {
		t.Fatalf("baseline spend %d too small to cap", full.Cost.KVReads)
	}
	_, err = db.TopK(q, AlgoNaive, &QueryOptions{MaxReadUnits: full.Cost.KVReads / 4})
	if err == nil {
		t.Fatal("capped query reported success")
	}
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err is %T (%v), want *BudgetExceededError", err, err)
	}
	if be.Limit != full.Cost.KVReads/4 {
		t.Errorf("Limit = %d, want %d", be.Limit, full.Cost.KVReads/4)
	}
	if be.Spent <= be.Limit {
		t.Errorf("Spent = %d, want > limit %d", be.Spent, be.Limit)
	}
}

// TestTopKBudgetPartialResults pins graceful degradation on a streaming
// executor: when the cap fires mid-enumeration, the typed error carries
// the results already produced, in descending score order.
func TestTopKBudgetPartialResults(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 300)
	q, err := db.NewQuery("left", "right", Sum, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, AlgoISL); err != nil {
		t.Fatal(err)
	}
	full, err := db.TopK(q, AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the cap down until it fires mid-drain; ISL streams results
	// incrementally, so a cap between first-result and full spend
	// yields a non-empty partial prefix.
	for cap := full.Cost.KVReads - 1; cap > 0; cap = cap * 3 / 4 {
		_, err := db.TopK(q, AlgoISL, &QueryOptions{MaxReadUnits: cap})
		if err == nil {
			continue
		}
		var be *BudgetExceededError
		if !errors.As(err, &be) {
			t.Fatalf("err is %T (%v), want *BudgetExceededError", err, err)
		}
		if len(be.Partial) == 0 {
			continue // cap fired before the first result; tighten further
		}
		for i, r := range be.Partial {
			if r.Score != full.Results[i].Score {
				t.Fatalf("partial[%d].Score = %v, want the true prefix score %v", i, r.Score, full.Results[i].Score)
			}
		}
		return
	}
	t.Fatal("no cap produced a typed error with a non-empty partial prefix")
}

// TestTopKDeadlineOverSlowStore is the acceptance scenario: a 50ms
// deadline over a faultfs-slowed store returns ErrCanceled within 2x
// the deadline.
func TestTopKDeadlineOverSlowStore(t *testing.T) {
	ffs := faultfs.New(nil)
	db := openFaultedDB(t, ffs, 2000)
	q, err := db.NewQuery("left", "right", Sum, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Every block read now costs 2ms of real wall-clock; at 2000 rows a
	// relation the naive scan needs far more than 25 reads, so the 50ms
	// deadline must fire mid-query.
	ffs.AddRule(faultfs.Rule{Op: faultfs.OpRead, Mode: faultfs.ModeLatency, Latency: 2 * time.Millisecond})

	const deadline = 50 * time.Millisecond
	start := time.Now()
	_, err = db.TopK(q, AlgoNaive, &QueryOptions{Deadline: time.Now().Add(deadline)})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("deadline-bounded query over slowed store reported success")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err %v does not match ErrCanceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err is %T, want *CanceledError", err)
	}
	if elapsed > 2*deadline {
		t.Errorf("query returned after %v, want <= %v (2x deadline)", elapsed, 2*deadline)
	}
	t.Logf("deadline fired after %v with %d partial results, %d read units", elapsed, len(ce.Partial), ce.ReadUnits)
}

// TestStreamCanceledTyped: a canceled stream stops iterating and
// surfaces the typed error through Rows.Err.
func TestStreamCanceledTyped(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 100)
	q, err := db.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := db.Stream(q, AlgoNaive, &QueryOptions{Context: ctx})
	if err != nil {
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("Stream open error %v does not match ErrCanceled", err)
		}
		return
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if rows.Err() == nil {
		t.Fatalf("canceled stream yielded %d rows and a nil Err", n)
	}
	if !errors.Is(rows.Err(), ErrCanceled) {
		t.Fatalf("Rows.Err() = %v, want ErrCanceled match", rows.Err())
	}
}

// TestTopKFaultSurfacesTypedNotTruncated pins the mergedIter.fail
// propagation contract at the public API: a failing storage source
// under TopK surfaces as a typed error, never as a shorter result list.
func TestTopKFaultSurfacesTypedNotTruncated(t *testing.T) {
	ffs := faultfs.New(nil)
	db := openFaultedDB(t, ffs, 200)
	q, err := db.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The rot rule must land before any read: a clean warm-up query
	// would pull every block into the shared block cache and the rotted
	// reads would never reach the VFS. (TestTopKDeadlineOverSlowStore
	// shows an identically built store answers queries when unrotted.)
	ffs.AddRule(faultfs.Rule{PathContains: ".sst", Op: faultfs.OpRead, Mode: faultfs.ModeBitRot, Seed: 7})

	res, err := db.TopK(q, AlgoNaive, nil)
	if err == nil {
		t.Fatalf("TopK over rotting store returned %d results and no error — silent truncation", len(res.Results))
	}
	if !errors.Is(err, ErrCorruption) {
		var ioe *IOError
		if !errors.As(err, &ioe) {
			t.Fatalf("TopK error is %T (%v), want CorruptionError or IOError", err, err)
		}
	}
	var ce *CorruptionError
	if errors.As(err, &ce) && ce.Path == "" {
		t.Error("CorruptionError does not name the file")
	}
}

// TestStreamFaultSurfacesTypedNotTruncated: the same contract for the
// streaming path — Rows.Err reports the typed storage error.
func TestStreamFaultSurfacesTypedNotTruncated(t *testing.T) {
	ffs := faultfs.New(nil)
	db := openFaultedDB(t, ffs, 200)
	q, err := db.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Like the bit-rot test, the rule must precede any read so the block
	// cache cannot mask the fault.
	ffs.AddRule(faultfs.Rule{PathContains: ".sst", Op: faultfs.OpRead, Mode: faultfs.ModeErr})

	rows, err := db.Stream(q, AlgoNaive, nil)
	if err != nil {
		var ioe *IOError
		if !errors.As(err, &ioe) && !errors.Is(err, ErrCorruption) {
			t.Fatalf("Stream open error is %T (%v), want typed", err, err)
		}
		return
	}
	defer rows.Close()
	for rows.Next() {
	}
	err = rows.Err()
	if err == nil {
		t.Fatal("stream over failing store drained cleanly — silent truncation")
	}
	var ioe *IOError
	if !errors.As(err, &ioe) && !errors.Is(err, ErrCorruption) {
		t.Fatalf("Rows.Err() is %T (%v), want typed IOError/CorruptionError", err, err)
	}
}

package rankjoin

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// This file is the distributed front-end: a Distributed handle fronts N
// region servers (in-process loopback nodes, TCP rjnode processes, or a
// mix) behind the transport seam, replicating every relation and
// shipping whole queries to replicas. The single-process DB API stays
// untouched — Distributed mirrors its shape (DefineRelation, NewQuery,
// EnsureIndexes, TopK, Stream) so call sites move over mechanically.

// NodeSpec names one region server of a distributed topology.
type NodeSpec struct {
	// Name identifies the node in status output and repair reports.
	// Empty names default to "node<i>".
	Name string
	// Addr, when set, connects to an rjnode process serving TCP at that
	// address (the node owns its own storage). When empty the node runs
	// in-process (loopback): a full DB inside this process, reached with
	// zero serialization.
	Addr string
	// Dir roots a durable in-process node (ignored with Addr). Empty
	// means memory-backed.
	Dir string
	// VFS overrides the filesystem a durable in-process node opens its
	// files through — fault-injection tests seed faultfs schedules here.
	VFS VFS
}

// Topology configures OpenDistributed.
type Topology struct {
	// Nodes lists the region servers in topology order (order matters:
	// replica groups are contiguous runs, leaders come first).
	Nodes []NodeSpec
	// Replication is the replicas-per-relation factor; 0 = full
	// replication (every node hosts everything, any node serves any
	// query).
	Replication int
	// WriteQuorum is the acks a write needs; 0 = majority.
	WriteQuorum int
	// MerkleLeaves is the anti-entropy tree resolution; 0 = 64.
	MerkleLeaves int
}

// Typed distribution failures, re-exported from the topology layer.
type (
	// NoReplicaError reports a read or query no replica could serve.
	NoReplicaError = topology.NoReplicaError
	// ReplicationError reports a write that failed to reach its quorum.
	ReplicationError = topology.ReplicationError
	// RepairReport summarizes one anti-entropy pass.
	RepairReport = topology.RepairReport
	// TableRepair records one target-table repair within a RepairReport.
	TableRepair = topology.TableRepair
	// NodeStatus is one node's liveness/dirtiness row.
	NodeStatus = topology.NodeStatus
)

// ErrUnavailable matches transport-level node failures via errors.Is.
var ErrUnavailable = transport.ErrUnavailable

// Distributed fronts a replicated topology of region servers as one
// logical rank-join store.
type Distributed struct {
	router *topology.Router
	gates  map[string]*transport.Gate // node name → kill switch (StopNode)
	locals map[string]*DB             // node name → in-process DB (loopback nodes)
	order  []string                   // node names, topology order
}

// OpenDistributed assembles a distributed store from cfg.Topology:
// in-process DBs for loopback nodes, TCP clients for Addr nodes, every
// node behind a Gate (StopNode/StartNode simulate failures uniformly),
// all routed by an internal/topology router. cfg.Profile applies to
// loopback nodes; Dir/VFS in the top-level Config are ignored (set them
// per NodeSpec).
func OpenDistributed(cfg Config) (*Distributed, error) {
	t := cfg.Topology
	if t == nil || len(t.Nodes) == 0 {
		return nil, fmt.Errorf("rankjoin: OpenDistributed needs Config.Topology with at least one node")
	}
	d := &Distributed{gates: map[string]*transport.Gate{}, locals: map[string]*DB{}}
	fail := func(err error) (*Distributed, error) {
		_ = d.Close()
		return nil, err
	}
	var handles []topology.Handle
	for i, spec := range t.Nodes {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("node%d", i)
		}
		var svc transport.RegionService
		if spec.Addr != "" {
			svc = transport.Dial(spec.Addr)
		} else {
			nodeCfg := Config{Profile: cfg.Profile, Dir: spec.Dir, VFS: spec.VFS}
			var db *DB
			var err error
			if spec.Dir != "" {
				db, err = OpenAt(nodeCfg)
			} else {
				db, err = Open(nodeCfg)
			}
			if err != nil {
				return fail(fmt.Errorf("rankjoin: open node %s: %w", name, err))
			}
			d.locals[name] = db
			svc = NewNodeService(name, db)
		}
		g := transport.NewGate(svc)
		d.gates[name] = g
		d.order = append(d.order, name)
		handles = append(handles, topology.Handle{Name: name, Svc: g})
	}
	r, err := topology.New(handles, topology.Config{
		Replication:  t.Replication,
		WriteQuorum:  t.WriteQuorum,
		MerkleLeaves: t.MerkleLeaves,
	})
	if err != nil {
		return fail(err)
	}
	d.router = r
	return d, nil
}

// Close releases every node handle and closes in-process node DBs.
func (d *Distributed) Close() error {
	var first error
	if d.router != nil {
		first = d.router.Close()
	}
	for _, db := range d.locals {
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Router exposes the topology router for advanced use (rjserve reports
// its Status; tests drive targeted repairs).
func (d *Distributed) Router() *topology.Router { return d.router }

// Nodes lists node names in topology order.
func (d *Distributed) Nodes() []string { return append([]string(nil), d.order...) }

// NodeDB returns an in-process node's DB (nil for TCP nodes) — tests
// inspect and damage replica state through it.
func (d *Distributed) NodeDB(name string) *DB { return d.locals[name] }

// StopNode simulates a node crash: every subsequent call to it fails
// unavailable until StartNode. Works uniformly for loopback and TCP
// nodes (the gate sits client-side).
func (d *Distributed) StopNode(name string) error {
	g, ok := d.gates[name]
	if !ok {
		return fmt.Errorf("rankjoin: unknown node %q", name)
	}
	g.Stop()
	return nil
}

// StartNode revives a stopped node. It comes back dirty if it missed
// acked writes; Repair re-admits it.
func (d *Distributed) StartNode(name string) error {
	g, ok := d.gates[name]
	if !ok {
		return fmt.Errorf("rankjoin: unknown node %q", name)
	}
	g.Start()
	return nil
}

// Repair runs one anti-entropy pass over every placed table: Merkle
// trees are diffed per replica group, divergent leaves re-shipped from
// the group's clean source, corrupt tables fully resynced, and
// converged nodes re-admitted to leader duty.
func (d *Distributed) Repair() (*RepairReport, error) { return d.router.RepairAll() }

// Status probes every node: liveness, dirtiness, served relations, and
// quarantined regions — the rjserve /metrics replica-status payload.
func (d *Distributed) Status() []NodeStatus { return d.router.Status() }

// AggregateCost sums the reachable nodes' cumulative metrics — the
// whole topology's consumed resources (loopback and TCP alike, since
// each node meters its own engine).
func (d *Distributed) AggregateCost() sim.Snapshot {
	var total sim.Snapshot
	for _, name := range d.order {
		g := d.gates[name]
		h, err := g.Health()
		if err != nil {
			continue
		}
		c := CostSnapshot(h.Cost)
		total.SimTime += c.SimTime
		total.NetworkBytes += c.NetworkBytes
		total.KVReads += c.KVReads
		total.KVWrites += c.KVWrites
		total.RPCCalls += c.RPCCalls
		total.DiskBytesRead += c.DiskBytesRead
		total.TuplesShipped += c.TuplesShipped
	}
	return total
}

// DistRelation is the distributed counterpart of RelationHandle: every
// write goes through the router's resolve→stamp→replicate protocol.
type DistRelation struct {
	d    *Distributed
	name string
}

// DefineRelation creates a relation on its replica group (idempotent).
func (d *Distributed) DefineRelation(name string) (*DistRelation, error) {
	if err := d.router.DefineRelation(name); err != nil {
		return nil, err
	}
	return &DistRelation{d: d, name: name}, nil
}

// Relation returns a handle for a defined relation, or nil.
func (d *Distributed) Relation(name string) *DistRelation {
	if d.router.ReplicasFor(name) == nil {
		return nil
	}
	return &DistRelation{d: d, name: name}
}

// RelationNames lists defined relations, sorted.
func (d *Distributed) RelationNames() []string { return d.router.Relations() }

// Name returns the relation's name.
func (r *DistRelation) Name() string { return r.name }

// Insert upserts one tuple through the replication protocol: resolved
// at the leader, stamped once, applied with full index maintenance on
// every replica, acknowledged at quorum.
func (r *DistRelation) Insert(rowKey, joinValue string, score float64) error {
	return r.d.router.Upsert(r.name, transport.TupleData{RowKey: rowKey, JoinValue: joinValue, Score: score})
}

// DeleteKey removes a tuple by row key (no-op when absent).
func (r *DistRelation) DeleteKey(rowKey string) error {
	return r.d.router.Delete(r.name, rowKey)
}

// BatchInsert loads many NEW tuples as one replicated group write with
// full index maintenance. Like RelationHandle.BatchInsert it does not
// resolve existing rows — load fresh keys only.
func (r *DistRelation) BatchInsert(tuples []Tuple) error {
	wire := make([]transport.TupleData, len(tuples))
	for i, t := range tuples {
		wire[i] = *TupleData(t)
	}
	return r.d.router.BatchInsert(r.name, wire)
}

// Get resolves the relation's current tuple for a row key, preferring
// the leader and failing over across replicas.
func (r *DistRelation) Get(rowKey string) (Tuple, bool, error) {
	t, err := r.d.router.Get(r.name, rowKey)
	if err != nil {
		return Tuple{}, false, err
	}
	if t == nil {
		return Tuple{}, false, nil
	}
	return tupleOf(t), true, nil
}

// NewQuery builds a two-way query over two defined relations — the same
// Query value the single-process API uses, so Explain output, IDs, and
// page-size semantics carry over.
func (d *Distributed) NewQuery(left, right string, f ScoreFunc, k int) (Query, error) {
	if d.router.ReplicasFor(left) == nil {
		return Query{}, fmt.Errorf("rankjoin: relation %q not defined", left)
	}
	if d.router.ReplicasFor(right) == nil {
		return Query{}, fmt.Errorf("rankjoin: relation %q not defined", right)
	}
	q := core.Query{Left: relationFor(left), Right: relationFor(right), Score: f, K: k}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return Query{t: core.TreeFromQuery(q)}, nil
}

// NewTreeQuery builds a general acyclic tree query over defined
// relations — the distributed counterpart of DB.NewTreeQuery. Tree
// queries route, page, and fail over exactly like two-way queries: the
// same node-pinned tokens, the same deterministic deep-re-run failover.
func (d *Distributed) NewTreeQuery(relations []string, edges []TreeEdge, f NScoreFunc, k int) (Query, error) {
	seen := map[string]bool{}
	rels := make([]core.Relation, 0, len(relations))
	for _, name := range relations {
		if d.router.ReplicasFor(name) == nil {
			return Query{}, fmt.Errorf("rankjoin: relation %q not defined", name)
		}
		if seen[name] {
			return Query{}, fmt.Errorf("rankjoin: relation %q listed twice in tree query", name)
		}
		seen[name] = true
		rels = append(rels, relationFor(name))
	}
	t := &core.JoinTree{
		Relations: rels,
		Edges:     append([]TreeEdge(nil), edges...),
		Score:     f,
		K:         k,
	}
	if err := t.Validate(); err != nil {
		return Query{}, err
	}
	return Query{t: t}, nil
}

// wireShape renders a query's join shape for the seam: binary equi
// trees keep the legacy Left/Right fields (wire compatibility with
// older nodes), everything else ships the explicit tree.
func wireShape(q Query) (left, right, score string, tree *transport.TreeData) {
	if bq, ok := q.t.Binary(); ok {
		return bq.Left.Name, bq.Right.Name, bq.Score.Name, nil
	}
	td := &transport.TreeData{}
	for i := range q.t.Relations {
		td.Relations = append(td.Relations, q.t.Relations[i].Name)
	}
	for _, e := range q.t.Edges {
		td.Edges = append(td.Edges, transport.TreeEdgeData{A: e.A, B: e.B, Kind: string(e.Kind), Band: e.Band})
	}
	return "", "", q.t.Score.Name, td
}

// EnsureIndexes builds the listed algorithms' indexes on every node
// able to serve the query. Each replica builds from its own replicated
// base data; determinism keeps the index tables byte-identical.
func (d *Distributed) EnsureIndexes(q Query, algos ...Algorithm) error {
	names := make([]string, len(algos))
	for i, a := range algos {
		if a == AlgoAuto {
			return fmt.Errorf("rankjoin: %s is a planner mode, not an index family; list concrete algorithms", AlgoAuto)
		}
		names[i] = string(a)
	}
	left, right, score, tree := wireShape(q)
	return d.router.EnsureIndexes(transport.EnsureRequest{
		Left: left, Right: right, Score: score, Tree: tree, Algos: names,
	})
}

// distToken wraps a node-local page token with its serving node and the
// page count already delivered, so a later page can fail over: results
// are deterministic, so a survivor re-runs the query deep enough and
// fast-forwards past what the dead node already served.
func distToken(node string, pages int, token string) string {
	return "dn|" + node + "|" + strconv.Itoa(pages) + "|" + token
}

func parseDistToken(t string) (node string, pages int, token string, err error) {
	parts := strings.SplitN(t, "|", 4)
	if len(parts) != 4 || parts[0] != "dn" {
		return "", 0, "", fmt.Errorf("rankjoin: malformed distributed page token %q", t)
	}
	pages, err = strconv.Atoi(parts[2])
	if err != nil || pages < 1 {
		return "", 0, "", fmt.Errorf("rankjoin: malformed distributed page token %q", t)
	}
	return parts[1], pages, parts[3], nil
}

// wireRequest renders a query + options for the seam.
func wireRequest(q Query, algo Algorithm, o QueryOptions) transport.QueryRequest {
	left, right, score, tree := wireShape(q)
	req := transport.QueryRequest{
		Left:         left,
		Right:        right,
		Score:        score,
		Tree:         tree,
		K:            q.t.K,
		Algo:         string(algo),
		Objective:    string(o.Objective),
		ISLBatch:     o.ISLBatch,
		Parallelism:  o.Parallelism,
		MaxReadUnits: o.MaxReadUnits,
	}
	if !o.Deadline.IsZero() {
		// Ship the remaining budget, clamped to a minimum of 1ns so an
		// already-spent deadline still trips on the node instead of
		// silently dropping the bound.
		req.TimeoutNanos = int64(time.Until(o.Deadline))
		if req.TimeoutNanos <= 0 {
			req.TimeoutNanos = 1
		}
	}
	return req
}

// resultOf converts a wire result back to the public Result shape.
func resultOf(res *transport.ResultData) *Result {
	out := &Result{
		Cost:      CostSnapshot(res.Cost),
		Algorithm: res.Algorithm,
	}
	for _, r := range res.Results {
		jr := JoinResult{Left: tupleOf(&r.Left), Right: tupleOf(&r.Right), Score: r.Score}
		for i := range r.Rest {
			jr.Rest = append(jr.Rest, tupleOf(&r.Rest[i]))
		}
		out.Results = append(out.Results, jr)
	}
	return out
}

// TopK executes the query on one covering replica. First pages rotate
// across replicas and fail over on node loss or corruption; follow-up
// pages (QueryOptions.PageToken) are sticky to the node holding the
// cursor, and if that node died the query re-runs deep enough on a
// survivor to fast-forward past every already-delivered page —
// results are deterministic across replicas, so the caller cannot tell
// the difference (beyond the re-run's cost).
func (d *Distributed) TopK(q Query, algo Algorithm, opts *QueryOptions) (*Result, error) {
	o := QueryOptions{}
	if opts != nil {
		o = *opts
	}
	if o.PageToken != "" {
		return d.nextDistPage(q, algo, o)
	}
	res, node, err := d.router.Query(wireRequest(q, algo, o))
	if err != nil {
		return nil, localizeQueryErr(err, o)
	}
	out := resultOf(res)
	if res.NextPageToken != "" {
		out.NextPageToken = distToken(node, 1, res.NextPageToken)
	}
	return out, nil
}

// localizeQueryErr maps typed wire failures back into the public error
// taxonomy, so router-mode callers handle the same types a local DB
// returns for a tripped bound. Partial results do not cross the seam —
// only the classification (and the caller's own limits) survive.
func localizeQueryErr(err error, o QueryOptions) error {
	var te *transport.Error
	if err == nil || !errors.As(err, &te) {
		return err
	}
	switch te.Kind {
	case transport.KindCanceled:
		return &CanceledError{}
	case transport.KindBudget:
		return &BudgetExceededError{Limit: o.MaxReadUnits, Spent: o.MaxReadUnits}
	}
	return err
}

// nextDistPage serves one follow-up page: sticky dispatch to the node
// holding the cursor, with deterministic fast-forward failover.
func (d *Distributed) nextDistPage(q Query, algo Algorithm, o QueryOptions) (*Result, error) {
	node, pages, token, err := parseDistToken(o.PageToken)
	if err != nil {
		return nil, err
	}
	req := wireRequest(q, algo, o)
	req.PageToken = token
	res, qerr := d.router.QueryOn(node, req)
	if qerr == nil {
		out := resultOf(res)
		if res.NextPageToken != "" {
			out.NextPageToken = distToken(node, pages+1, res.NextPageToken)
		}
		return out, nil
	}
	// The sticky node is gone (or restarted and lost the cursor): fail
	// over by re-running deep on a survivor and slicing off the pages
	// already delivered.
	var te *transport.Error
	lostCursor := errors.As(qerr, &te) && te.Kind == transport.KindInternal &&
		strings.Contains(te.Msg, "page token")
	if !errors.Is(qerr, transport.ErrUnavailable) && !lostCursor {
		return nil, localizeQueryErr(qerr, o)
	}
	k := q.K()
	deep := q.WithK((pages + 1) * k)
	dreq := wireRequest(deep, algo, o)
	dres, survivor, derr := d.router.Query(dreq)
	if derr != nil {
		return nil, localizeQueryErr(derr, o)
	}
	out := resultOf(dres)
	if len(out.Results) > pages*k {
		out.Results = out.Results[pages*k:]
	} else {
		out.Results = nil
	}
	// The deep run's cursor continues where this page ends; keep paging
	// on the survivor.
	if dres.NextPageToken != "" && len(out.Results) == k {
		out.NextPageToken = distToken(survivor, pages+1, dres.NextPageToken)
	}
	return out, nil
}

// DistRows streams one query's results in score order across the
// topology by pulling pages through the failover paging path: closing
// mid-stream, node loss, and resumption all reduce to TopK paging.
// Like Rows, it is not safe for concurrent use.
type DistRows struct {
	d      *Distributed
	q      Query
	algo   Algorithm
	opts   QueryOptions
	buf    []JoinResult
	i      int
	token  string
	res    JoinResult
	err    error
	done   bool
	closed bool
	algoNm string
	cost   sim.Snapshot
}

// Stream starts a streaming enumeration; the query's k is the pull page
// size.
func (d *Distributed) Stream(q Query, algo Algorithm, opts *QueryOptions) (*DistRows, error) {
	o := QueryOptions{}
	if opts != nil {
		o = *opts
	}
	r := &DistRows{d: d, q: q, algo: algo, opts: o}
	if err := r.pull(""); err != nil {
		return nil, err
	}
	return r, nil
}

// pull fetches one page (token "" = first page).
func (r *DistRows) pull(token string) error {
	o := r.opts
	o.PageToken = token
	res, err := r.d.TopK(r.q, r.algo, &o)
	if err != nil {
		return err
	}
	r.buf = res.Results
	r.i = 0
	r.token = res.NextPageToken
	r.algoNm = res.Algorithm
	r.cost.SimTime += res.Cost.SimTime
	r.cost.NetworkBytes += res.Cost.NetworkBytes
	r.cost.KVReads += res.Cost.KVReads
	r.cost.KVWrites += res.Cost.KVWrites
	r.cost.RPCCalls += res.Cost.RPCCalls
	r.cost.DiskBytesRead += res.Cost.DiskBytesRead
	r.cost.TuplesShipped += res.Cost.TuplesShipped
	return nil
}

// Next advances to the next result, pulling pages as needed.
func (r *DistRows) Next() bool {
	if r.closed || r.done || r.err != nil {
		return false
	}
	if r.i >= len(r.buf) {
		if r.token == "" {
			r.done = true
			return false
		}
		if err := r.pull(r.token); err != nil {
			r.err = err
			return false
		}
		if len(r.buf) == 0 {
			r.done = true
			return false
		}
	}
	r.res = r.buf[r.i]
	r.i++
	return true
}

// Result returns the row Next advanced to.
func (r *DistRows) Result() JoinResult { return r.res }

// Algorithm names the executor serving the stream.
func (r *DistRows) Algorithm() string { return r.algoNm }

// Err returns the first error the stream hit.
func (r *DistRows) Err() error { return r.err }

// Cost reports the node-side resources consumed so far.
func (r *DistRows) Cost() sim.Snapshot { return r.cost }

// Close abandons the stream (any node-side cursor expires from its
// cache on its own).
func (r *DistRows) Close() error {
	r.closed = true
	return nil
}

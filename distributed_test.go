// Distributed integration tests: a replicated multi-node topology
// behind the transport seam must serve every executor byte-identically
// to a single-process DB, over both in-process loopback and real TCP,
// with page tokens that survive the death of the node holding the
// cursor.
package rankjoin

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/transport"
)

// distExecutors is every registered executor plus the naive baseline —
// the full set the acceptance criteria require to match across
// deployments.
var distExecutors = []Algorithm{
	AlgoNaive, AlgoHive, AlgoPig, AlgoIJLMR, AlgoISL, AlgoBFHM, AlgoDRJN,
}

// indexedAlgos need EnsureIndexes before they can serve.
var indexedAlgos = []Algorithm{AlgoIJLMR, AlgoISL, AlgoBFHM, AlgoDRJN}

// distTuples builds deterministic synthetic relations for the
// distribution tests.
func distTuples(n int) (left, right []Tuple) {
	rng := rand.New(rand.NewSource(42))
	mk := func(prefix string) []Tuple {
		var out []Tuple
		for i := 0; i < n; i++ {
			out = append(out, Tuple{
				RowKey:    fmt.Sprintf("%s%04d", prefix, i),
				JoinValue: fmt.Sprintf("j%d", rng.Intn(25)),
				Score:     float64(rng.Intn(1000)) / 1000,
			})
		}
		return out
	}
	return mk("dl"), mk("dr")
}

// oracleDB loads the baseline single-process DB with the same data and
// indexes the cluster gets.
func oracleDB(t testing.TB, left, right []Tuple) (*DB, Query) {
	t.Helper()
	db := mustOpen(t, Config{})
	t.Cleanup(func() { db.Close() })
	for _, rel := range []struct {
		name string
		data []Tuple
	}{{"left", left}, {"right", right}} {
		h, err := db.DefineRelation(rel.name)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.BulkLoad(rel.data); err != nil {
			t.Fatal(err)
		}
	}
	q, err := db.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range indexedAlgos {
		if err := db.EnsureIndexes(q, algo); err != nil {
			t.Fatal(err)
		}
	}
	return db, q
}

// loadCluster defines and loads the same relations on a cluster and
// builds every index family on every replica.
func loadCluster(t testing.TB, d *Distributed, left, right []Tuple) Query {
	t.Helper()
	for _, rel := range []struct {
		name string
		data []Tuple
	}{{"left", left}, {"right", right}} {
		h, err := d.DefineRelation(rel.name)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.BatchInsert(rel.data); err != nil {
			t.Fatal(err)
		}
	}
	q, err := d.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnsureIndexes(q, indexedAlgos...); err != nil {
		t.Fatal(err)
	}
	return q
}

// openLoopbackCluster opens an N-node in-process cluster with full
// replication.
func openLoopbackCluster(t testing.TB, n int) *Distributed {
	t.Helper()
	topo := &Topology{}
	for i := 0; i < n; i++ {
		topo.Nodes = append(topo.Nodes, NodeSpec{Name: fmt.Sprintf("node%d", i)})
	}
	d, err := OpenDistributed(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func assertSameResults(t testing.TB, label string, got, want []JoinResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// assertExecutorsMatchOracle runs every executor at k=10 on both
// deployments and requires identical output.
func assertExecutorsMatchOracle(t testing.TB, d *Distributed, dq Query, db *DB, q Query) {
	t.Helper()
	for _, algo := range distExecutors {
		want, err := db.TopK(q, algo, nil)
		if err != nil {
			t.Fatalf("oracle %s: %v", algo, err)
		}
		got, err := d.TopK(dq, algo, nil)
		if err != nil {
			t.Fatalf("cluster %s: %v", algo, err)
		}
		assertSameResults(t, string(algo), got.Results, want.Results)
	}
}

// assertReplicasByteIdentical compares every replica's raw cells for a
// table — base and index tables must match cell-for-cell (row, column,
// timestamp, value) across the group.
func assertReplicasByteIdentical(t testing.TB, d *Distributed, table string) {
	t.Helper()
	type flat struct {
		row, fam, qual string
		ts             int64
		val            []byte
	}
	var ref []flat
	var refNode string
	for _, name := range d.Nodes() {
		db := d.NodeDB(name)
		if db == nil {
			continue
		}
		cells, err := db.Cluster().TableCells(table)
		if err != nil {
			t.Fatalf("%s: TableCells(%s): %v", name, table, err)
		}
		cur := make([]flat, 0, len(cells))
		for _, c := range cells {
			cur = append(cur, flat{c.Row, c.Family, c.Qualifier, c.Timestamp, c.Value})
		}
		sort.Slice(cur, func(i, j int) bool {
			a, b := cur[i], cur[j]
			if a.row != b.row {
				return a.row < b.row
			}
			if a.fam != b.fam {
				return a.fam < b.fam
			}
			if a.qual != b.qual {
				return a.qual < b.qual
			}
			return a.ts < b.ts
		})
		if ref == nil {
			ref, refNode = cur, name
			continue
		}
		if len(cur) != len(ref) {
			t.Fatalf("table %s: %s has %d cells, %s has %d", table, name, len(cur), refNode, len(ref))
		}
		for i := range cur {
			if cur[i].row != ref[i].row || cur[i].fam != ref[i].fam ||
				cur[i].qual != ref[i].qual || cur[i].ts != ref[i].ts ||
				!bytes.Equal(cur[i].val, ref[i].val) {
				t.Fatalf("table %s cell %d differs between %s and %s: %+v vs %+v",
					table, i, name, refNode, cur[i], ref[i])
			}
		}
	}
}

// TestDistributedMatchesSingleNode is the core acceptance check: a
// 3-node fully replicated loopback cluster serves all seven executors
// byte-identically to a single-process DB over the same data, and the
// replicas themselves hold cell-identical base AND index tables.
func TestDistributedMatchesSingleNode(t *testing.T) {
	left, right := distTuples(300)
	db, q := oracleDB(t, left, right)
	d := openLoopbackCluster(t, 3)
	dq := loadCluster(t, d, left, right)

	assertExecutorsMatchOracle(t, d, dq, db, q)

	// Every table the deterministic replication protocol produced must
	// be byte-identical across the group — index tables included.
	node0 := d.NodeDB("node0")
	for _, table := range node0.Cluster().TableNames() {
		assertReplicasByteIdentical(t, d, table)
	}
}

// TestDistributedWritesVisibleEverywhere: a quorum write through the
// router is immediately visible to queries wherever they land, and
// per-replica state stays identical after mixed upserts and deletes.
func TestDistributedWritesVisibleEverywhere(t *testing.T) {
	left, right := distTuples(150)
	d := openLoopbackCluster(t, 3)
	dq := loadCluster(t, d, left, right)

	lh := d.Relation("left")
	rh := d.Relation("right")
	// Plant a top pair, re-score one side, delete a loser.
	if err := lh.Insert("dlfresh", "jfresh", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := rh.Insert("drfresh", "jfresh", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := rh.Insert("drfresh", "jfresh", 1.0); err != nil { // resolved as update
		t.Fatal(err)
	}
	if err := lh.DeleteKey(left[0].RowKey); err != nil {
		t.Fatal(err)
	}

	got, ok, err := rh.Get("drfresh")
	if err != nil || !ok {
		t.Fatalf("Get(drfresh) = %v, %v, %v", got, ok, err)
	}
	if got.Score != 1.0 {
		t.Fatalf("upsert did not resolve: score %v, want 1.0", got.Score)
	}

	// The planted pair must rank first on every executor, every replica.
	for _, algo := range distExecutors {
		res, err := d.TopK(dq, algo, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Results) == 0 || res.Results[0].Score < 2.0-1e-9 {
			t.Fatalf("%s is stale after replicated write: top %+v", algo, res.Results[:min(1, len(res.Results))])
		}
	}
	for _, table := range d.NodeDB("node0").Cluster().TableNames() {
		assertReplicasByteIdentical(t, d, table)
	}
}

// TestDistributedOverTCP runs the same workload against region servers
// reached over the real length-prefixed TCP transport — the rjnode
// deployment shape — and requires the same answers as the oracle.
func TestDistributedOverTCP(t *testing.T) {
	left, right := distTuples(200)
	db, q := oracleDB(t, left, right)

	// Three rjnode-equivalent region servers on loopback TCP.
	var specs []NodeSpec
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("tcp%d", i)
		ndb, err := Open(Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ndb.Close() })
		srv, err := transport.ListenAndServe("127.0.0.1:0", NewNodeService(name, ndb))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		specs = append(specs, NodeSpec{Name: name, Addr: srv.Addr()})
	}
	d, err := OpenDistributed(Config{Topology: &Topology{Nodes: specs}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	dq := loadCluster(t, d, left, right)

	assertExecutorsMatchOracle(t, d, dq, db, q)

	// Round-trip a replicated write over the wire.
	lh := d.Relation("left")
	if err := lh.Insert("dlwire", "jwire", 0.9); err != nil {
		t.Fatal(err)
	}
	got, ok, err := lh.Get("dlwire")
	if err != nil || !ok || got.JoinValue != "jwire" {
		t.Fatalf("Get over TCP = %+v, %v, %v", got, ok, err)
	}
	if err := lh.DeleteKey("dlwire"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := lh.Get("dlwire"); ok {
		t.Fatal("deleted tuple still visible over TCP")
	}
}

// TestDistributedPageTokenFailover: follow-up pages are sticky to the
// node holding the cursor; when that node dies the query re-runs deep
// on a survivor and fast-forwards, so the client sees the exact same
// page sequence as the single-process baseline.
func TestDistributedPageTokenFailover(t *testing.T) {
	left, right := distTuples(300)
	db, q := oracleDB(t, left, right)
	d := openLoopbackCluster(t, 3)
	dq := loadCluster(t, d, left, right)

	const k = 5
	deep, err := db.TopK(q.WithK(4*k), AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(deep.Results) < 4*k {
		t.Fatalf("oracle produced only %d results; need %d", len(deep.Results), 4*k)
	}

	page1, err := d.TopK(dq.WithK(k), AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "page 1", page1.Results, deep.Results[:k])
	if page1.NextPageToken == "" {
		t.Fatal("full first page carries no token")
	}
	serving, pages, _, err := parseDistToken(page1.NextPageToken)
	if err != nil {
		t.Fatal(err)
	}
	if pages != 1 {
		t.Fatalf("token pages = %d, want 1", pages)
	}

	// Kill the node holding the cursor, then keep paging.
	if err := d.StopNode(serving); err != nil {
		t.Fatal(err)
	}
	page2, err := d.TopK(dq.WithK(k), AlgoISL, &QueryOptions{PageToken: page1.NextPageToken})
	if err != nil {
		t.Fatalf("page 2 after killing %s: %v", serving, err)
	}
	assertSameResults(t, "page 2 (failed over)", page2.Results, deep.Results[k:2*k])
	if page2.NextPageToken == "" {
		t.Fatal("failed-over page carries no continuation token")
	}
	survivor, _, _, err := parseDistToken(page2.NextPageToken)
	if err != nil {
		t.Fatal(err)
	}
	if survivor == serving {
		t.Fatalf("continuation token still points at dead node %s", serving)
	}

	// The survivor's cursor serves page 3 at marginal cost.
	page3, err := d.TopK(dq.WithK(k), AlgoISL, &QueryOptions{PageToken: page2.NextPageToken})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "page 3", page3.Results, deep.Results[2*k:3*k])
}

// Package rankjoin is a Go implementation of "Rank Join Queries in NoSQL
// Databases" (Ntarmos, Patlakas, Triantafillou — PVLDB 7(7), 2014): top-k
// join processing over a BigTable/HBase-style NoSQL store, generalized
// from the paper's binary equi-joins to acyclic join trees.
//
// The library bundles an embedded, deterministic NoSQL cluster (sorted
// key-value tables, column families, range-sharded regions, batched
// scans, server-side filters), a locality-aware MapReduce runtime, and
// the paper's full algorithm suite:
//
//   - Naive, Hive-style, and Pig-style baselines (Section 3)
//   - IJLMR — Inverse Join List MapReduce rank join (Section 4.1)
//   - ISL — Inverse Score List rank join over HRJN (Section 4.2)
//   - BFHM — Bloom Filter Histogram Matrix rank join with a guaranteed
//     100% recall (Section 5)
//   - DRJN — the 2-D histogram comparator (Section 7.1)
//   - Any-k — per-tree-node priority queues over partial solutions,
//     enumerating any acyclic join tree in score order with no k
//     fixed up front
//
// plus online index maintenance (Section 6) and a cost model reporting
// the paper's three evaluation metrics for every query: simulated
// turnaround time, network bytes, and dollar cost (key-value read units).
//
// # Quick start
//
//	db := rankjoin.Open(rankjoin.Config{})
//	docs, _ := db.DefineRelation("docs")
//	imgs, _ := db.DefineRelation("imgs")
//	docs.Insert("d1", "apple", 0.9)
//	imgs.Insert("i7", "apple", 0.8)
//	q, _ := db.NewQuery("docs", "imgs", rankjoin.Sum, 10)
//	res, _ := db.TopK(q, rankjoin.AlgoAuto, nil)
//	for _, r := range res.Results {
//	    fmt.Println(r.Left.RowKey, r.Right.RowKey, r.Score)
//	}
//
// # Executors and the planner
//
// Every algorithm implements the core.Executor interface and lives in a
// registry; the old switch-based dispatch (one switch each in TopK,
// EnsureIndexes, and IndexDiskSize) is gone, so adding a strategy means
// registering one executor, not editing three switches. On top of the
// registry sits a cost-based planner: AlgoAuto plans each query against
// live table statistics, DRJN 2-D histograms, and BFHM Bloom-filter
// join estimates, then runs the cheapest strategy whose indexes exist.
// DB.Explain exposes the ranked candidate plans without running the
// query, and planned Results carry the estimate next to the measured
// cost so the estimator's error is visible per query:
//
//	p, _ := db.Explain(q, nil)
//	fmt.Print(p) // ranked candidates with predicted time/bytes/reads
//	res, _ := db.TopK(q, rankjoin.AlgoAuto, nil)
//	fmt.Println(res.Algorithm, res.Estimate.SimTime, res.Cost.SimTime)
//
// # Streaming and pagination
//
// Execution is cursor-based: every executor can open a pull-based
// cursor that yields join results one at a time in descending score
// order, with no k fixed up front, and the bounded TopK is a drain of
// that cursor. DB.Stream exposes the cursor directly as a Rows
// iterator, and TopK paginates through resumable page tokens — a full
// page carries Result.NextPageToken, and passing it back via
// QueryOptions.PageToken drains the next k results from the retained
// cursor instead of re-running the query:
//
//	res, _ := db.TopK(q, rankjoin.AlgoISL, nil)           // page 1
//	opts := &rankjoin.QueryOptions{PageToken: res.NextPageToken}
//	res2, _ := db.TopK(q, rankjoin.AlgoISL, opts)          // page 2, marginal cost
//
//	rows, _ := db.Stream(q, rankjoin.AlgoAuto, nil)        // unbounded enumeration
//	defer rows.Close()
//	for rows.Next() { fmt.Println(rows.Result().Score) }
//
// Which executors stream natively: ISL and DRJN are incremental — their
// sorted-access loops (the HRJN coordinator's batched scans, DRJN's
// histogram band walk) pause at the exact input prefix each emitted
// result needs, so the next page pays only marginal work. Naive, Hive,
// Pig, IJLMR, and BFHM are batch-shaped (their pipelines target a fixed
// k end to end) and stream through a materializing adapter that re-runs
// at doubled depths when drained past the page hint. AlgoAuto knows the
// difference: Stream-mode planning prices deep enumeration — marginal
// per-page cost for incremental cursors, the doubling re-run schedule
// for materializing ones — and can pick a different executor for deep
// pagination than for a one-shot top-k.
//
// # Join trees
//
// The general query shape is an acyclic join tree: relations are the
// leaves, the n-1 edges are join predicates — equi-predicates on the
// join attributes, or band predicates |a-b| <= w over numeric join
// values — and an n-ary monotonic aggregate (SumN, ProductN) scores
// complete matches. NewQuery (binary) and NewMultiQuery (star) build
// the two trivial tree shapes; NewTreeQuery builds chains and general
// acyclic mixes:
//
//	q, _ := db.NewTreeQuery(
//	    []string{"sensors", "readings", "alerts"},
//	    []rankjoin.TreeEdge{
//	        {A: 0, B: 1, Kind: rankjoin.PredEqui},
//	        {A: 1, B: 2, Kind: rankjoin.PredBand, Band: 0.5},
//	    },
//	    rankjoin.SumN, 10)
//	res, _ := db.TopK(q, rankjoin.AlgoAnyK, nil)
//	rows, _ := db.StreamTree(q, rankjoin.AlgoAnyK, nil)
//
// Structurally invalid trees (cyclic, disconnected, self-loops,
// out-of-range endpoints, duplicate edges, non-finite band widths)
// fail with a typed *ShapeError. AlgoAnyK executes every tree shape
// incrementally — per-leaf score-ordered streams feed priority queues
// of partial solutions, and a generalized HRJN threshold releases a
// match only when nothing unseen can beat it — so tree queries
// stream, paginate, and respect budgets exactly like binary ones; the
// other executors answer trees through the materializing adapter.
// ParseTreeSpec and NewTreeQueryFromSpec decode the JSON wire form
// the HTTP server accepts on /topk, /stream, and /explain.
//
// # Online updates
//
// Writes flow through a write-through maintenance pipeline (Section 6):
// every mutation is augmented with the index entries of EVERY structure
// built over the relation — one inverse-list entry per IJLMR, ISL, and
// n-way ISLN index (a relation joined in several queries has several,
// and all are maintained), BFHM mutation records plus reverse mappings,
// and DRJN per-band delta records — and the whole augmented batch ships as one
// group write: a single write RPC with one shared timestamp, instead of
// one round trip per index cell.
//
//	docs.Insert("d9", "pear", 0.7)   // upsert: retires old entries if d9 exists
//	docs.Update("d9", "pear", 0.9)   // explicit re-score, one timestamp
//	docs.Delete("d9", "pear", 0.9)   // or docs.DeleteKey("d9")
//	docs.BatchInsert(tuples)         // maintained load, one RPC per chunk
//
// Freshness guarantees, per executor: Naive, Hive, and Pig scan base
// tables and are trivially fresh. IJLMR and ISL read their inverse
// lists, which the pipeline mutates synchronously. BFHM replays bucket
// mutation records at query time (write-back eager, lazy, or offline
// via WriteBackBFHM). DRJN folds band delta records into its histogram
// counts and observed score bounds, so the band walk sees fresh
// cardinalities and valid pull floors with no offline rebuild. A query
// issued after a write therefore reflects it on every executor.
// Planner statistics and cached plans are keyed on each table's
// mutation sequence, so cost estimates track live data too.
//
// A write that fails part-way (base written, an index write refused)
// surfaces as a core.MaintenanceError naming the divergent index and
// carrying the batch's timestamp; re-applying the same mutation with
// that timestamp is idempotent and converges the store.
//
// # Failure handling and graceful degradation
//
// Queries are boundable: QueryOptions carries a cancellation Context,
// a wall-clock Deadline, and a MaxReadUnits spend cap, and every
// executor checks them cooperatively. A tripped bound returns a typed
// error carrying the partial results collected so far:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	res, err := db.TopK(q, rankjoin.AlgoAuto, &rankjoin.QueryOptions{
//	    Context:      ctx,
//	    MaxReadUnits: 10000,
//	})
//	var ce *rankjoin.CanceledError      // matches rankjoin.ErrCanceled
//	var be *rankjoin.BudgetExceededError
//	switch {
//	case errors.As(err, &ce):
//	    fmt.Println("timed out with", len(ce.Partial), "results")
//	case errors.As(err, &be):
//	    fmt.Println("spent", be.Spent, "of", be.Limit, "read units")
//	}
//
// Storage faults are typed too: a failed checksum surfaces as a
// *CorruptionError (matching ErrCorruption) naming the file and byte
// offset, and an I/O failure as an *IOError naming the file and
// operation — never as a silently truncated result set. Config.VFS
// plugs a custom filesystem under durable stores (internal/faultfs
// injects deterministic faults in the tests), and the underlying
// store's Scrub and Quarantined (via DB.Cluster) verify every on-disk
// checksum proactively, quarantining tables that fail.
//
// # Distribution
//
// OpenDistributed fronts N region servers as one logical store behind
// the transport seam (internal/transport): each node is either an
// in-process DB reached over a zero-copy loopback, or an rjnode
// process reached over length-prefixed TCP — the router cannot tell
// the difference. The seam sits at node granularity, matching the
// paper's compute-to-data design: whole queries ship to a replica and
// execute next to its data; only results come back.
//
//	d, _ := rankjoin.OpenDistributed(rankjoin.Config{Topology: &rankjoin.Topology{
//	    Nodes: []rankjoin.NodeSpec{
//	        {Name: "a"},                          // in-process loopback
//	        {Name: "b", Dir: "/data/b"},          // loopback, durable
//	        {Name: "c", Addr: "10.0.0.3:7070"},   // remote rjnode over TCP
//	    },
//	}})
//	rel, _ := d.DefineRelation("docs")
//	rel.Insert("d1", "apple", 0.9)                // replicated upsert
//	q, _ := d.NewQuery("docs", "imgs", rankjoin.Sum, 10)
//	res, _ := d.TopK(q, rankjoin.AlgoAuto, nil)   // ships to one replica
//
// Replication is deterministic: the router resolves each upsert at the
// replica group's leader, stamps one timestamp, and ships the same
// resolved operation to every replica, where the write-through
// maintenance pipeline applies it at that timestamp. Because the
// store's logical clocks are deterministic under identical operation
// sequences, replicas converge byte-identically — base tables and
// every index — and any replica serves any executor with the exact
// answer a single-process store would give. Writes ack at a quorum
// (majority by default); a write that cannot reach it fails with a
// typed *ReplicationError naming acks received versus required, and a
// read with no live replica fails with a *NoReplicaError matching
// ErrUnavailable. A node that missed acked writes is marked dirty and
// excluded from leader, quorum, and repair-source duty until
// anti-entropy re-converges it.
//
// Distributed.Repair runs Merkle anti-entropy (internal/merkle,
// internal/topology): every table is summarized per replica as a
// Merkle tree over hash-token-range row digests, trees are diffed
// against the group's first clean replica, and only divergent leaves'
// cells ship, applied at their original timestamps. A replica that
// cannot even summarize a table — checksums failing, regions
// quarantined — gets a full resync (drop, recreate, re-ingest),
// since there is no trustworthy local state to diff against.
// Page tokens survive node loss: the composite token pins the serving
// node, and when that node dies the next page is recomputed exactly on
// a survivor (determinism again) at the requested offset.
package rankjoin

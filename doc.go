// Package rankjoin is a Go implementation of "Rank Join Queries in NoSQL
// Databases" (Ntarmos, Patlakas, Triantafillou — PVLDB 7(7), 2014): top-k
// equi-join processing over a BigTable/HBase-style NoSQL store.
//
// The library bundles an embedded, deterministic NoSQL cluster (sorted
// key-value tables, column families, range-sharded regions, batched
// scans, server-side filters), a locality-aware MapReduce runtime, and
// the paper's full algorithm suite:
//
//   - Naive, Hive-style, and Pig-style baselines (Section 3)
//   - IJLMR — Inverse Join List MapReduce rank join (Section 4.1)
//   - ISL — Inverse Score List rank join over HRJN (Section 4.2)
//   - BFHM — Bloom Filter Histogram Matrix rank join with a guaranteed
//     100% recall (Section 5)
//   - DRJN — the 2-D histogram comparator (Section 7.1)
//
// plus online index maintenance (Section 6) and a cost model reporting
// the paper's three evaluation metrics for every query: simulated
// turnaround time, network bytes, and dollar cost (key-value read units).
//
// # Quick start
//
//	db := rankjoin.Open(rankjoin.Config{})
//	docs, _ := db.DefineRelation("docs")
//	imgs, _ := db.DefineRelation("imgs")
//	docs.Insert("d1", "apple", 0.9)
//	imgs.Insert("i7", "apple", 0.8)
//	q, _ := db.NewQuery("docs", "imgs", rankjoin.Sum, 10)
//	res, _ := db.TopK(q, rankjoin.AlgoAuto, nil)
//	for _, r := range res.Results {
//	    fmt.Println(r.Left.RowKey, r.Right.RowKey, r.Score)
//	}
//
// # Executors and the planner
//
// Every algorithm implements the core.Executor interface and lives in a
// registry; the old switch-based dispatch (one switch each in TopK,
// EnsureIndexes, and IndexDiskSize) is gone, so adding a strategy means
// registering one executor, not editing three switches. On top of the
// registry sits a cost-based planner: AlgoAuto plans each query against
// live table statistics, DRJN 2-D histograms, and BFHM Bloom-filter
// join estimates, then runs the cheapest strategy whose indexes exist.
// DB.Explain exposes the ranked candidate plans without running the
// query, and planned Results carry the estimate next to the measured
// cost so the estimator's error is visible per query:
//
//	p, _ := db.Explain(q, nil)
//	fmt.Print(p) // ranked candidates with predicted time/bytes/reads
//	res, _ := db.TopK(q, rankjoin.AlgoAuto, nil)
//	fmt.Println(res.Algorithm, res.Estimate.SimTime, res.Cost.SimTime)
package rankjoin

// Command fulltext runs the paper's second motivating workload
// (Section 1): full-text search over per-keyword posting lists. Each
// posting list — one NoSQL table per keyword, as the paper argues is the
// natural layout for gigabyte-scale lists — holds (document id,
// relevance) entries; finding the most relevant documents for a
// two-keyword query is a rank join on document id with the aggregate
// relevance as the ranking function.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rankjoin "repro"
)

// postingList synthesizes a keyword's posting list: each document that
// contains the keyword appears with a TF-IDF-like relevance.
func postingList(keyword string, docs, hits int, rng *rand.Rand) []rankjoin.Tuple {
	picked := map[int]bool{}
	var out []rankjoin.Tuple
	for len(picked) < hits {
		d := rng.Intn(docs)
		if picked[d] {
			continue
		}
		picked[d] = true
		// Long-tailed relevance: most matches are weak.
		rel := rng.Float64()
		rel = rel * rel
		out = append(out, rankjoin.Tuple{
			RowKey:    fmt.Sprintf("%s-d%06d", keyword, d),
			JoinValue: fmt.Sprintf("doc%06d", d),
			Score:     rel,
		})
	}
	return out
}

func main() {
	db, err := rankjoin.Open(rankjoin.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	const corpus = 20000 // documents in the collection
	lists := map[string]int{
		"database":    4000, // common term: long posting list
		"bloomfilter": 900,  // rarer term
	}
	for kw, hits := range lists {
		h, err := db.DefineRelation("postings_" + kw)
		if err != nil {
			log.Fatal(err)
		}
		if err := h.BulkLoad(postingList(kw, corpus, hits, rng)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded posting list %-12s: %5d entries (%d B on disk)\n",
			kw, hits, h.DiskSize())
	}

	// Query: documents most relevant to "database bloomfilter".
	q, err := db.NewQuery("postings_database", "postings_bloomfilter", rankjoin.Sum, 10)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.EnsureIndexes(q, rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoIJLMR); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nTop-10 documents for \"database bloomfilter\" (%d-doc corpus):\n\n", corpus)
	res, err := db.TopK(q, rankjoin.AlgoBFHM, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.Results {
		fmt.Printf("%2d. %-10s relevance %.4f  (%.4f + %.4f)\n",
			i+1, r.Left.JoinValue, r.Score, r.Left.Score, r.Right.Score)
	}

	fmt.Println("\nCost comparison for the same query:")
	fmt.Printf("%-8s %-14s %-12s %-10s %s\n", "algo", "time", "net bytes", "kv reads", "dollars")
	for _, algo := range []rankjoin.Algorithm{rankjoin.AlgoIJLMR, rankjoin.AlgoISL, rankjoin.AlgoBFHM} {
		r, err := db.TopK(q, algo, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-14v %-12d %-10d $%.2f\n",
			algo, r.Cost.SimTime, r.Cost.NetworkBytes, r.Cost.KVReads, r.Cost.Dollars())
	}
}

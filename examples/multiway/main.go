// Command multiway runs the paper's Section 1 motivating example in its
// full n-way form: "a collection of per-day search engine logs ...
// imagine we wish to find the k most popular phrases appearing in
// SEVERAL of these days. This would be formulated as a rank-join query,
// where the phrase text is the join attribute, and the total popularity
// of each phrase is computed as an aggregate over the per-day
// frequencies." Three days means a 3-way rank join.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rankjoin "repro"
)

func main() {
	db, err := rankjoin.Open(rankjoin.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	const phrases = 2000
	days := []string{"mon", "tue", "wed"}
	for _, day := range days {
		h, err := db.DefineRelation("log_" + day)
		if err != nil {
			log.Fatal(err)
		}
		var tuples []rankjoin.Tuple
		for p := 0; p < phrases; p++ {
			// Persistent popularity with daily noise; some phrases
			// trend only on single days (they cannot win a 3-way join).
			base := 1.0 / (1.0 + float64(p)*0.01)
			freq := base * (0.4 + 0.6*rng.Float64())
			if rng.Intn(50) == 0 {
				freq = 0.9 + 0.1*rng.Float64() // one-day spike
			}
			tuples = append(tuples, rankjoin.Tuple{
				RowKey:    fmt.Sprintf("%s-p%04d", day, p),
				JoinValue: fmt.Sprintf("phrase-%04d", p),
				Score:     freq,
			})
		}
		if err := h.BulkLoad(tuples); err != nil {
			log.Fatal(err)
		}
	}

	q, err := db.NewMultiQuery([]string{"log_mon", "log_tue", "log_wed"}, rankjoin.SumN, 10)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.EnsureMultiIndexes(q); err != nil {
		log.Fatal(err)
	}

	res, err := db.TopKN(q, rankjoin.AlgoISL, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Top-10 phrases by Mon+Tue+Wed popularity (3-way ISL rank join):\n\n")
	for i, r := range res.Results {
		fmt.Printf("%2d. %-14s total %.3f  (%.3f + %.3f + %.3f)\n",
			i+1, r.Tuples[0].JoinValue, r.Score,
			r.Tuples[0].Score, r.Tuples[1].Score, r.Tuples[2].Score)
	}
	fmt.Printf("\ncost: %v, %d B network, %d KV reads ($%.2f)\n",
		res.Cost.SimTime, res.Cost.NetworkBytes, res.Cost.KVReads, res.Cost.Dollars())

	// Cross-check with the naive plan.
	naive, err := db.TopKN(q, rankjoin.AlgoNaive, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive scan for comparison: %d KV reads — ISL read %.1f%% of that\n",
		naive.Cost.KVReads, 100*float64(res.Cost.KVReads)/float64(naive.Cost.KVReads))
}

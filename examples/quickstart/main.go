// Command quickstart runs the paper's running example (Fig. 1): two
// 11-tuple relations joined on a shared attribute, ranked by the sum of
// scores, top-3 — and shows that every algorithm in the suite returns
// the same answer while consuming very different resources.
package main

import (
	"fmt"
	"log"

	rankjoin "repro"
)

func main() {
	db, err := rankjoin.Open(rankjoin.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 1's R1 and R2.
	r1 := []rankjoin.Tuple{
		{RowKey: "r1_1", JoinValue: "d", Score: 0.82},
		{RowKey: "r1_2", JoinValue: "c", Score: 0.93},
		{RowKey: "r1_3", JoinValue: "c", Score: 0.67},
		{RowKey: "r1_4", JoinValue: "d", Score: 0.82},
		{RowKey: "r1_5", JoinValue: "a", Score: 0.73},
		{RowKey: "r1_6", JoinValue: "c", Score: 0.79},
		{RowKey: "r1_7", JoinValue: "b", Score: 0.82},
		{RowKey: "r1_8", JoinValue: "b", Score: 0.70},
		{RowKey: "r1_9", JoinValue: "d", Score: 0.68},
		{RowKey: "r1_10", JoinValue: "a", Score: 1.00},
		{RowKey: "r1_11", JoinValue: "b", Score: 0.64},
	}
	r2 := []rankjoin.Tuple{
		{RowKey: "r2_1", JoinValue: "a", Score: 0.51},
		{RowKey: "r2_2", JoinValue: "b", Score: 0.91},
		{RowKey: "r2_3", JoinValue: "c", Score: 0.64},
		{RowKey: "r2_4", JoinValue: "d", Score: 0.53},
		{RowKey: "r2_5", JoinValue: "d", Score: 0.41},
		{RowKey: "r2_6", JoinValue: "d", Score: 0.50},
		{RowKey: "r2_7", JoinValue: "a", Score: 0.35},
		{RowKey: "r2_8", JoinValue: "a", Score: 0.38},
		{RowKey: "r2_9", JoinValue: "a", Score: 0.37},
		{RowKey: "r2_10", JoinValue: "c", Score: 0.31},
		{RowKey: "r2_11", JoinValue: "b", Score: 0.92},
	}

	relA, err := db.DefineRelation("R1")
	if err != nil {
		log.Fatal(err)
	}
	relB, err := db.DefineRelation("R2")
	if err != nil {
		log.Fatal(err)
	}
	if err := relA.BulkLoad(r1); err != nil {
		log.Fatal(err)
	}
	if err := relB.BulkLoad(r2); err != nil {
		log.Fatal(err)
	}

	q, err := db.NewQuery("R1", "R2", rankjoin.Sum, 3)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.EnsureIndexes(q, rankjoin.Algorithms()...); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Top-3 rank join of the paper's running example (f = sum):")
	fmt.Println()
	for _, algo := range rankjoin.Algorithms() {
		res, err := db.TopK(q, algo, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s:", algo)
		for _, r := range res.Results {
			fmt.Printf("  %s+%s=%.2f", r.Left.RowKey, r.Right.RowKey, r.Score)
		}
		fmt.Printf("\n        time=%-14v net=%-8dB kvReads=%-6d ($%.2f)\n",
			res.Cost.SimTime, res.Cost.NetworkBytes, res.Cost.KVReads, res.Cost.Dollars())
	}
	fmt.Println()
	fmt.Println("Expected top-3: r1_7+r2_11=1.74, r1_7+r2_2=1.73, r1_8+r2_11=1.62")
}

// Command searchlogs runs the paper's first motivating workload
// (Section 1): per-day search-engine logs of (phrase, frequency), one
// relation per day, ranked by total popularity across days. "Imagine we
// wish to find the k most popular phrases appearing in several of these
// days. This would be formulated as a rank-join query, where the phrase
// text is the join attribute, and the total popularity of each phrase is
// computed as an aggregate over the per-day frequencies."
package main

import (
	"fmt"
	"log"
	"math/rand"

	rankjoin "repro"
)

// phrasePool yields a skewed phrase popularity distribution: low-id
// phrases are searched much more often (a Zipf-ish web workload).
func dayLog(day string, phrases int, rng *rand.Rand) []rankjoin.Tuple {
	var out []rankjoin.Tuple
	for p := 0; p < phrases; p++ {
		// Base popularity decays with phrase id; daily jitter on top.
		base := 1.0 / (1.0 + float64(p)*0.05)
		freq := base * (0.5 + rng.Float64()*0.5)
		out = append(out, rankjoin.Tuple{
			RowKey:    fmt.Sprintf("%s-p%04d", day, p),
			JoinValue: fmt.Sprintf("phrase-%04d", p),
			Score:     freq,
		})
	}
	return out
}

func main() {
	db, err := rankjoin.Open(rankjoin.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2014))

	const phrases = 3000
	mon, err := db.DefineRelation("log_monday")
	if err != nil {
		log.Fatal(err)
	}
	tue, err := db.DefineRelation("log_tuesday")
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.BulkLoad(dayLog("mon", phrases, rng)); err != nil {
		log.Fatal(err)
	}
	if err := tue.BulkLoad(dayLog("tue", phrases, rng)); err != nil {
		log.Fatal(err)
	}

	// Top-10 phrases by combined Monday+Tuesday popularity.
	q, err := db.NewQuery("log_monday", "log_tuesday", rankjoin.Sum, 10)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.EnsureIndexes(q, rankjoin.AlgoISL, rankjoin.AlgoBFHM); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Most popular phrases across Monday+Tuesday (%d phrases/day)\n\n", phrases)
	for _, algo := range []rankjoin.Algorithm{rankjoin.AlgoISL, rankjoin.AlgoBFHM} {
		res, err := db.TopK(q, algo, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s  (time %v, %d B network, %d KV reads, $%.2f)\n",
			algo, res.Cost.SimTime, res.Cost.NetworkBytes, res.Cost.KVReads, res.Cost.Dollars())
		for i, r := range res.Results {
			fmt.Printf("%2d. %-14s combined popularity %.3f\n", i+1, r.Left.JoinValue, r.Score)
		}
		fmt.Println()
	}

	// A breaking story shifts the ranking mid-day: online updates flow
	// into every index (Section 6), no rebuild needed.
	fmt.Println("Breaking news: 'phrase-2999' spikes in the evening logs...")
	tueH := db.Relation("log_tuesday")
	if err := tueH.Insert("tue-p2999-pm", "phrase-2999", 1.0); err != nil {
		log.Fatal(err)
	}
	monH := db.Relation("log_monday")
	if err := monH.Insert("mon-p2999-pm", "phrase-2999", 0.99); err != nil {
		log.Fatal(err)
	}
	res, err := db.TopK(q, rankjoin.AlgoBFHM, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("New #1: %s at %.3f (BFHM, %d KV reads)\n",
		res.Results[0].Left.JoinValue, res.Results[0].Score, res.Cost.KVReads)
}

// Command tpch runs the paper's evaluation queries (Section 7.1) on
// generated TPC-H data and prints all algorithms side by side:
//
//	Q1: SELECT * FROM Part P, Lineitem L WHERE P.PartKey = L.PartKey
//	    ORDER BY (P.RetailPrice * L.ExtendedPrice) STOP AFTER k
//	Q2: SELECT * FROM Orders O, Lineitem L WHERE O.OrderKey = L.OrderKey
//	    ORDER BY (O.TotalPrice + L.ExtendedPrice) STOP AFTER k
//
// Usage: tpch [-sf 0.002] [-k 10] [-profile ec2|lc]
package main

import (
	"flag"
	"fmt"
	"log"

	rankjoin "repro"
	"repro/internal/sim"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	k := flag.Int("k", 10, "result size")
	profile := flag.String("profile", "ec2", "hardware profile: ec2 or lc")
	flag.Parse()

	p := sim.EC2()
	if *profile == "lc" {
		p = sim.LC()
	}
	db, err := rankjoin.Open(rankjoin.Config{Profile: &p})
	if err != nil {
		log.Fatal(err)
	}
	data := tpch.Generate(*sf, 1)
	fmt.Printf("TPC-H SF %g on %s: %d parts, %d orders, %d lineitems\n\n",
		*sf, p.Name, len(data.Parts), len(data.Orders), len(data.Lineitems))

	// Load each relation through the public API. The lineitem table is
	// loaded twice with different join attributes (PartKey for Q1,
	// OrderKey for Q2) — the paper indexes each join column separately.
	part, err := db.DefineRelation("part")
	if err != nil {
		log.Fatal(err)
	}
	orders, err := db.DefineRelation("orders")
	if err != nil {
		log.Fatal(err)
	}
	liByPart, err := db.DefineRelation("lineitem_pk")
	if err != nil {
		log.Fatal(err)
	}
	liByOrder, err := db.DefineRelation("lineitem_ok")
	if err != nil {
		log.Fatal(err)
	}

	var pt, ot, lp, lo []rankjoin.Tuple
	for _, r := range data.Parts {
		pt = append(pt, rankjoin.Tuple{RowKey: tpch.RowKeyPart(r.PartKey), JoinValue: fmt.Sprint(r.PartKey), Score: r.Score})
	}
	for _, r := range data.Orders {
		ot = append(ot, rankjoin.Tuple{RowKey: tpch.RowKeyOrder(r.OrderKey), JoinValue: fmt.Sprint(r.OrderKey), Score: r.Score})
	}
	for _, r := range data.Lineitems {
		key := tpch.RowKeyLineitem(r.OrderKey, r.LineNumber)
		lp = append(lp, rankjoin.Tuple{RowKey: key, JoinValue: fmt.Sprint(r.PartKey), Score: r.Score})
		lo = append(lo, rankjoin.Tuple{RowKey: key, JoinValue: fmt.Sprint(r.OrderKey), Score: r.Score})
	}
	for _, ld := range []struct {
		h *rankjoin.RelationHandle
		t []rankjoin.Tuple
	}{{part, pt}, {orders, ot}, {liByPart, lp}, {liByOrder, lo}} {
		if err := ld.h.BulkLoad(ld.t); err != nil {
			log.Fatal(err)
		}
	}

	q1, err := db.NewQuery("part", "lineitem_pk", rankjoin.Product, *k)
	if err != nil {
		log.Fatal(err)
	}
	q2, err := db.NewQuery("orders", "lineitem_ok", rankjoin.Sum, *k)
	if err != nil {
		log.Fatal(err)
	}

	for _, qc := range []struct {
		name string
		q    rankjoin.Query
	}{{"Q1 (Part x Lineitem, product)", q1}, {"Q2 (Orders x Lineitem, sum)", q2}} {
		fmt.Printf("=== %s, k=%d ===\n", qc.name, *k)
		before := db.Metrics().Snapshot()
		if err := db.EnsureIndexes(qc.q, rankjoin.Algorithms()...); err != nil {
			log.Fatal(err)
		}
		build := db.Metrics().Snapshot().Sub(before)
		fmt.Printf("index build: %v, %d KV writes\n", build.SimTime, build.KVWrites)
		fmt.Printf("%-8s %-16s %-12s %-10s %-8s %s\n",
			"algo", "time", "net bytes", "kv reads", "dollars", "top-1 score")
		for _, algo := range rankjoin.Algorithms() {
			res, err := db.TopK(qc.q, algo, nil)
			if err != nil {
				log.Fatal(err)
			}
			top1 := 0.0
			if len(res.Results) > 0 {
				top1 = res.Results[0].Score
			}
			fmt.Printf("%-8s %-16v %-12d %-10d $%-7.2f %.6f\n",
				algo, res.Cost.SimTime, res.Cost.NetworkBytes, res.Cost.KVReads,
				res.Cost.Dollars(), top1)
		}
		fmt.Println()
	}
}

// Freshness under live writes: every executor must see online inserts,
// updates, and deletes immediately — no index rebuilds, no write-backs —
// because the write path maintains every registered index synchronously
// (Section 6 as a write-through pipeline).
package rankjoin

import (
	"fmt"
	"math/rand"
	"testing"
)

// sevenExecutors is every registered strategy, the planner mode excluded.
func sevenExecutors() []Algorithm {
	return append(Algorithms(), AlgoNaive)
}

func assertTopKFresh(t *testing.T, db *DB, q Query, left, right []Tuple, f ScoreFunc, label string) {
	t.Helper()
	want := refTopK(left, right, f, q.K())
	for _, algo := range sevenExecutors() {
		res, err := db.TopK(q, algo, nil)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, algo, err)
		}
		if len(res.Results) != len(want) {
			t.Fatalf("%s/%s: %d results, want %d", label, algo, len(res.Results), len(want))
		}
		for i, r := range res.Results {
			if d := r.Score - want[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("%s/%s: score[%d] = %v, want %v", label, algo, i, r.Score, want[i])
			}
		}
	}
}

// TestMaintainAllIndexesAcrossQueries is the regression for the
// last-match-wins maintainer bug: a relation participating in TWO
// queries has two ISL and two IJLMR index tables, and a write must
// maintain both — the old assembly kept only whichever index the store
// walk visited last, leaving the other query's results stale.
func TestMaintainAllIndexesAcrossQueries(t *testing.T) {
	db := mustOpen(t, Config{})
	rng := rand.New(rand.NewSource(41))
	rels := map[string][]Tuple{"a": nil, "b": nil, "c": nil}
	handles := map[string]*RelationHandle{}
	for _, name := range []string{"a", "b", "c"} {
		h, err := db.DefineRelation(name)
		if err != nil {
			t.Fatal(err)
		}
		handles[name] = h
		var tuples []Tuple
		for i := 0; i < 120; i++ {
			tuples = append(tuples, Tuple{
				RowKey:    fmt.Sprintf("%s%04d", name, i),
				JoinValue: fmt.Sprintf("j%d", rng.Intn(25)),
				Score:     float64(rng.Intn(1000)) / 1000,
			})
		}
		if err := h.BulkLoad(tuples); err != nil {
			t.Fatal(err)
		}
		rels[name] = tuples
	}
	q1, err := db.NewQuery("a", "b", Sum, 8)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := db.NewQuery("a", "c", Sum, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{q1, q2} {
		if err := db.EnsureIndexes(q, AlgoIJLMR, AlgoISL); err != nil {
			t.Fatal(err)
		}
	}

	// One write to "a" must reach q1's AND q2's inverse lists.
	if err := handles["a"].Insert("aHOT", "hotjoin", 1.0); err != nil {
		t.Fatal(err)
	}
	rels["a"] = append(rels["a"], Tuple{RowKey: "aHOT", JoinValue: "hotjoin", Score: 1.0})
	if err := handles["b"].Insert("bHOT", "hotjoin", 0.99); err != nil {
		t.Fatal(err)
	}
	rels["b"] = append(rels["b"], Tuple{RowKey: "bHOT", JoinValue: "hotjoin", Score: 0.99})
	if err := handles["c"].Insert("cHOT", "hotjoin", 0.98); err != nil {
		t.Fatal(err)
	}
	rels["c"] = append(rels["c"], Tuple{RowKey: "cHOT", JoinValue: "hotjoin", Score: 0.98})

	for _, tc := range []struct {
		q           Query
		left, right []Tuple
		label       string
		topScore    float64
	}{
		{q1, rels["a"], rels["b"], "q1", 1.99},
		{q2, rels["a"], rels["c"], "q2", 1.98},
	} {
		want := refTopK(tc.left, tc.right, Sum, tc.q.K())
		if want[0] != tc.topScore {
			t.Fatalf("%s setup broken: oracle top %v", tc.label, want[0])
		}
		for _, algo := range []Algorithm{AlgoIJLMR, AlgoISL} {
			res, err := db.TopK(tc.q, algo, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.label, algo, err)
			}
			if res.Results[0].Score != tc.topScore {
				t.Fatalf("%s/%s: top score %v after insert, want %v (index not maintained)",
					tc.label, algo, res.Results[0].Score, tc.topScore)
			}
		}
	}
}

// TestReinsertChangedScoreNoPhantoms is the regression for the stale
// inverse-score-list entry: inserting over an existing row key with a
// changed score used to leave the old EncodeScoreDesc(oldScore) entry
// live, so the tuple ranked at BOTH scores. Insert now upserts (and
// Update exists for the explicit form), retiring old entries under the
// same timestamp.
func TestReinsertChangedScoreNoPhantoms(t *testing.T) {
	db := mustOpen(t, Config{})
	db.SetIndexConfig(IndexConfig{DRJNBuckets: 10, DRJNJoinParts: 16})
	left, right := loadTwoRelations(t, db, 120)
	q, err := db.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, Algorithms()...); err != nil {
		t.Fatal(err)
	}
	lh := db.Relation("left")

	// Plant a pair at the very top...
	if err := lh.Insert("lPH", "phantom", 0.999); err != nil {
		t.Fatal(err)
	}
	rh := db.Relation("right")
	if err := rh.Insert("rPH", "phantom", 0.999); err != nil {
		t.Fatal(err)
	}
	right = append(right, Tuple{RowKey: "rPH", JoinValue: "phantom", Score: 0.999})

	// ...then re-insert the left side demoted to the bottom. The old
	// 0.999 entry must be gone: if it survives, the pair still ranks
	// first as a phantom.
	if err := lh.Insert("lPH", "phantom", 0.001); err != nil {
		t.Fatal(err)
	}
	left = append(left, Tuple{RowKey: "lPH", JoinValue: "phantom", Score: 0.001})
	assertTopKFresh(t, db, q, left, right, Sum, "reinsert")

	// The explicit Update spelling behaves identically.
	if err := lh.Update("lPH", "phantom2", 0.5); err != nil {
		t.Fatal(err)
	}
	left[len(left)-1] = Tuple{RowKey: "lPH", JoinValue: "phantom2", Score: 0.5}
	assertTopKFresh(t, db, q, left, right, Sum, "update")

	// Updating a missing row is an error; Get reports absence.
	if err := lh.Update("lMISSING", "x", 0.5); err == nil {
		t.Error("Update of a missing row accepted")
	}
	if _, ok, err := lh.Get("lMISSING"); err != nil || ok {
		t.Errorf("Get(lMISSING) = ok=%v err=%v", ok, err)
	}
}

// TestFreshnessOracle is the acceptance oracle: after a randomized
// sequence of online inserts, deletes, updates, and re-inserts, TopK via
// every executor — DRJN included, with NO manual rebuild — must equal a
// from-scratch computation over the live tuples.
func TestFreshnessOracle(t *testing.T) {
	db := mustOpen(t, Config{})
	db.SetIndexConfig(IndexConfig{DRJNBuckets: 12, DRJNJoinParts: 16, BFHMBuckets: 10})
	left, right := loadTwoRelations(t, db, 150)
	q, err := db.NewQuery("left", "right", Sum, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, Algorithms()...); err != nil {
		t.Fatal(err)
	}
	lh, rh := db.Relation("left"), db.Relation("right")

	rng := rand.New(rand.NewSource(2026))
	sides := []struct {
		h      *RelationHandle
		tuples *[]Tuple
		prefix string
	}{{lh, &left, "l"}, {rh, &right, "r"}}
	newKey := 10_000
	for op := 0; op < 80; op++ {
		s := sides[rng.Intn(2)]
		switch k := rng.Intn(10); {
		case k < 4: // insert a fresh key
			tp := Tuple{
				RowKey:    fmt.Sprintf("%s%05d", s.prefix, newKey),
				JoinValue: fmt.Sprintf("j%d", rng.Intn(30)),
				Score:     float64(rng.Intn(1000)) / 1000,
			}
			newKey++
			if err := s.h.Insert(tp.RowKey, tp.JoinValue, tp.Score); err != nil {
				t.Fatal(err)
			}
			*s.tuples = append(*s.tuples, tp)
		case k < 6: // blind re-insert of a live key with new score/join
			i := rng.Intn(len(*s.tuples))
			tp := Tuple{
				RowKey:    (*s.tuples)[i].RowKey,
				JoinValue: fmt.Sprintf("j%d", rng.Intn(30)),
				Score:     float64(rng.Intn(1000)) / 1000,
			}
			if err := s.h.Insert(tp.RowKey, tp.JoinValue, tp.Score); err != nil {
				t.Fatal(err)
			}
			(*s.tuples)[i] = tp
		case k < 8: // explicit update
			i := rng.Intn(len(*s.tuples))
			tp := Tuple{
				RowKey:    (*s.tuples)[i].RowKey,
				JoinValue: (*s.tuples)[i].JoinValue,
				Score:     float64(rng.Intn(1000)) / 1000,
			}
			if err := s.h.Update(tp.RowKey, tp.JoinValue, tp.Score); err != nil {
				t.Fatal(err)
			}
			(*s.tuples)[i] = tp
		default: // delete
			i := rng.Intn(len(*s.tuples))
			tp := (*s.tuples)[i]
			if rng.Intn(2) == 0 {
				err = s.h.Delete(tp.RowKey, tp.JoinValue, tp.Score)
			} else {
				err = s.h.DeleteKey(tp.RowKey)
			}
			if err != nil {
				t.Fatal(err)
			}
			*s.tuples = append((*s.tuples)[:i], (*s.tuples)[i+1:]...)
		}
		// Interleave a spot check so divergence is caught near its op,
		// not only at the end.
		if op%27 == 26 {
			assertTopKFresh(t, db, q, left, right, Sum, fmt.Sprintf("op%d", op))
		}
	}
	assertTopKFresh(t, db, q, left, right, Sum, "final")
}

// TestWriteVisibleImmediately is the CI freshness smoke: a write
// followed by an immediate query must be seen by all seven executors.
func TestWriteVisibleImmediately(t *testing.T) {
	db := mustOpen(t, Config{})
	db.SetIndexConfig(IndexConfig{DRJNBuckets: 10, DRJNJoinParts: 16})
	_, _ = loadTwoRelations(t, db, 100)
	q, err := db.NewQuery("left", "right", Sum, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, Algorithms()...); err != nil {
		t.Fatal(err)
	}
	if err := db.Relation("left").Insert("lFRESH", "freshjoin", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := db.Relation("right").Insert("rFRESH", "freshjoin", 1.0); err != nil {
		t.Fatal(err)
	}
	for _, algo := range sevenExecutors() {
		res, err := db.TopK(q, algo, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Results) == 0 || res.Results[0].Score != 2.0 {
			t.Fatalf("%s: write not visible (top = %+v)", algo, res.Results)
		}
	}
}

// TestBatchedMaintenanceFewerWriteRPCs asserts the group-write economy:
// the maintenance pipeline must issue measurably fewer write RPCs than
// the per-cell puts it replaced (which paid one round trip per written
// cell — KVWrites counts exactly those cells).
func TestBatchedMaintenanceFewerWriteRPCs(t *testing.T) {
	db := mustOpen(t, Config{})
	db.SetIndexConfig(IndexConfig{DRJNBuckets: 10, DRJNJoinParts: 16})
	_, _ = loadTwoRelations(t, db, 100)
	q, err := db.NewQuery("left", "right", Sum, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, Algorithms()...); err != nil {
		t.Fatal(err)
	}
	lh := db.Relation("left")

	// Single maintained upsert: one existence read + one group write.
	before := db.Metrics().Snapshot()
	if err := lh.Insert("lone", "j1", 0.5); err != nil {
		t.Fatal(err)
	}
	d := db.Metrics().Snapshot().Sub(before)
	if d.KVWrites < 6 {
		t.Fatalf("maintained insert wrote %d cells, want >= 6 (base x2, ijlmr, isl, bfhm x2, drjn)", d.KVWrites)
	}
	if d.RPCCalls > 2 {
		t.Errorf("maintained insert cost %d RPCs, want <= 2 (read + one group write); per-cell puts would cost %d",
			d.RPCCalls, d.KVWrites)
	}

	// Batch load with maintenance: one group write per chunk.
	var batch []Tuple
	for i := 0; i < 100; i++ {
		batch = append(batch, Tuple{
			RowKey:    fmt.Sprintf("lbatch%04d", i),
			JoinValue: fmt.Sprintf("j%d", i%30),
			Score:     float64(i%1000) / 1000,
		})
	}
	before = db.Metrics().Snapshot()
	if err := lh.BatchInsert(batch); err != nil {
		t.Fatal(err)
	}
	d = db.Metrics().Snapshot().Sub(before)
	if d.RPCCalls != 1 {
		t.Errorf("BatchInsert(100) cost %d RPCs, want 1", d.RPCCalls)
	}
	if d.KVWrites < 600 {
		t.Errorf("BatchInsert(100) wrote %d cells, want >= 600", d.KVWrites)
	}
	if d.RPCCalls*10 >= d.KVWrites {
		t.Errorf("batched path not measurably cheaper: %d RPCs for %d cells", d.RPCCalls, d.KVWrites)
	}
}

// TestMultiwayISLNMaintained: the n-way ISLN inverse lists are part of
// "every index built over the relation" — a write must reach them too,
// or TopKN silently serves stale results.
func TestMultiwayISLNMaintained(t *testing.T) {
	db := mustOpen(t, Config{})
	rng := rand.New(rand.NewSource(53))
	handles := map[string]*RelationHandle{}
	for _, name := range []string{"ma", "mb", "mc"} {
		h, err := db.DefineRelation(name)
		if err != nil {
			t.Fatal(err)
		}
		handles[name] = h
		var tuples []Tuple
		for i := 0; i < 80; i++ {
			tuples = append(tuples, Tuple{
				RowKey:    fmt.Sprintf("%s%04d", name, i),
				JoinValue: fmt.Sprintf("j%d", rng.Intn(15)),
				Score:     float64(rng.Intn(900)) / 1000, // < 0.9: planted pairs rank first
			})
		}
		if err := h.BulkLoad(tuples); err != nil {
			t.Fatal(err)
		}
	}
	mq, err := db.NewMultiQuery([]string{"ma", "mb", "mc"}, SumN, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureMultiIndexes(mq); err != nil {
		t.Fatal(err)
	}

	// Plant a fresh 3-way top pair: every side written AFTER the index
	// build, visible only if the ISLN lists are maintained.
	for _, name := range []string{"ma", "mb", "mc"} {
		if err := handles[name].Insert(name+"HOT", "hot3", 1.0); err != nil {
			t.Fatal(err)
		}
	}
	for _, algo := range []Algorithm{AlgoISL, AlgoNaive} {
		res, err := db.TopKN(mq, algo, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Results) == 0 || res.Results[0].Score != 3.0 {
			t.Fatalf("%s: planted 3-way pair not visible (top = %+v)", algo, res.Results)
		}
	}

	// Demote one side: the old-score ISLN entry must be retired, or the
	// pair keeps ranking first as a phantom.
	if err := handles["ma"].Update("maHOT", "hot3", 0.0); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoISL, AlgoNaive} {
		res, err := db.TopKN(mq, algo, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Results) > 0 && res.Results[0].Score >= 2.9 {
			t.Fatalf("%s: demoted 3-way pair still ranks first (%+v)", algo, res.Results[0])
		}
	}

	// Delete another side: the join must disappear entirely.
	if err := handles["mb"].DeleteKey("mbHOT"); err != nil {
		t.Fatal(err)
	}
	res, err := db.TopKN(mq, AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		for _, tp := range r.Tuples {
			if tp.RowKey == "mbHOT" {
				t.Fatalf("deleted mbHOT still joined: %+v", r)
			}
		}
	}
}

package rankjoin

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// fuzzCursor is an inert cursor for exercising the page-token
// lifecycle without running a query.
type fuzzCursor struct{}

func (fuzzCursor) Next() (*core.JoinResult, error) { return nil, core.ErrCursorClosed }
func (fuzzCursor) Close() error                    { return nil }

// FuzzPageTokens checks the page-token lifecycle: a put token takes
// exactly once, unknown tokens fail without panicking, and token text
// never collides with a just-issued token.
func FuzzPageTokens(f *testing.F) {
	f.Add("q1", "pt-1-q1")
	f.Add("", "")
	f.Add("query-β", "pt-zz-bogus")
	f.Add("NL:R1:R2:10", "pt-")
	f.Fuzz(func(t *testing.T, queryID, junk string) {
		cc := newCursorCache()
		pc := &pagedCursor{cur: fuzzCursor{}, queryID: queryID}
		token := cc.put(pc)
		if junk != token {
			if _, err := cc.take(junk); err == nil {
				t.Fatalf("take(%q) succeeded but only %q was issued", junk, token)
			}
		}
		got, err := cc.take(token)
		if err != nil {
			t.Fatalf("take of freshly issued token %q failed: %v", token, err)
		}
		if got != pc {
			t.Fatalf("take(%q) returned a different cursor", token)
		}
		if _, err := cc.take(token); err == nil {
			t.Fatalf("second take of single-use token %q succeeded", token)
		}
	})
}

// FuzzTreeQueryDecode feeds hostile JSON to the tree-query wire
// decoder: every input must either produce a typed error or a spec
// that validates into a well-formed acyclic tree — never a panic, and
// never a structurally bad tree sneaking past with a nil error.
func FuzzTreeQueryDecode(f *testing.F) {
	f.Add(`{"relations":["a","b"],"score":"sum","k":10}`)
	f.Add(`{"relations":["a","b","c"],"edges":[{"a":0,"b":1},{"a":1,"b":2,"kind":"band","band":0.5}],"score":"product"}`)
	f.Add(`{"relations":["a","a"],"score":"sum"}`)
	f.Add(`{"relations":["a","b","c"],"edges":[{"a":0,"b":1},{"a":0,"b":1}]}`)
	f.Add(`{"relations":["a","b"],"edges":[{"a":0,"b":7}]}`)
	f.Add(`{"relations":["a","b","c"],"edges":[{"a":1,"b":2,"kind":"band","band":1e999}]}`)
	f.Add(`{"relations":[],"edges":null}`)
	f.Add(`{"k":-3}`)
	f.Add(`not json at all`)
	f.Add(`{"relations":["a","b"],"score":"theta"}`)
	f.Fuzz(func(t *testing.T, data string) {
		spec, err := ParseTreeSpec([]byte(data))
		if err != nil {
			if spec != nil {
				t.Fatalf("ParseTreeSpec returned both a spec and error %v", err)
			}
			var se *ShapeError
			// Non-shape errors (bad JSON, unknown edge kind or score
			// name, undefined-relation shapes) must still be typed
			// enough to carry a message.
			if !errors.As(err, &se) && err.Error() == "" {
				t.Fatalf("error with empty message for input %q", data)
			}
			return
		}
		if spec == nil {
			t.Fatal("nil spec with nil error")
		}
		if len(spec.Relations) < 2 {
			t.Fatalf("accepted spec with %d relations", len(spec.Relations))
		}
		if spec.K < 1 {
			t.Fatalf("accepted spec with k=%d", spec.K)
		}
		// An accepted spec must decode into a query a DB with those
		// relations defined would accept: edges resolve and validate.
		db, err := Open(Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for _, name := range spec.Relations {
			if _, derr := db.DefineRelation(name); derr != nil {
				t.Fatalf("accepted spec has undefinable relation %q: %v", name, derr)
			}
		}
		if _, qerr := db.NewTreeQueryFromSpec(spec); qerr != nil {
			t.Fatalf("validated spec rejected by NewTreeQueryFromSpec: %v", qerr)
		}
	})
}

// FuzzCursorCacheEviction drives many puts through the bounded cache:
// the entry count must stay within maxCachedCursors, every retained
// token must still take successfully, and issued tokens must be unique.
func FuzzCursorCacheEviction(f *testing.F) {
	f.Add(uint16(1), "q")
	f.Add(uint16(200), "same-query")
	f.Add(uint16(64), "")
	f.Fuzz(func(t *testing.T, n uint16, queryID string) {
		cc := newCursorCache()
		count := int(n%200) + 1
		tokens := make([]string, 0, count)
		seen := map[string]bool{}
		for i := 0; i < count; i++ {
			tok := cc.put(&pagedCursor{cur: fuzzCursor{}, queryID: queryID})
			if seen[tok] {
				t.Fatalf("token %q issued twice", tok)
			}
			seen[tok] = true
			tokens = append(tokens, tok)
		}
		cc.mu.Lock()
		live, orderLen := len(cc.entries), len(cc.order)
		cc.mu.Unlock()
		if live > maxCachedCursors {
			t.Fatalf("cache holds %d cursors, cap is %d", live, maxCachedCursors)
		}
		if orderLen != live {
			t.Fatalf("order list (%d) out of sync with entries (%d)", orderLen, live)
		}
		// The newest min(count, cap) tokens must all still be takeable.
		start := count - live
		for _, tok := range tokens[start:] {
			if _, err := cc.take(tok); err != nil {
				t.Fatalf("retained token %q not takeable: %v", tok, err)
			}
		}
	})
}

package rankjoin

import (
	"testing"

	"repro/internal/core"
)

// fuzzCursor is an inert cursor for exercising the page-token
// lifecycle without running a query.
type fuzzCursor struct{}

func (fuzzCursor) Next() (*core.JoinResult, error) { return nil, core.ErrCursorClosed }
func (fuzzCursor) Close() error                    { return nil }

// FuzzPageTokens checks the page-token lifecycle: a put token takes
// exactly once, unknown tokens fail without panicking, and token text
// never collides with a just-issued token.
func FuzzPageTokens(f *testing.F) {
	f.Add("q1", "pt-1-q1")
	f.Add("", "")
	f.Add("query-β", "pt-zz-bogus")
	f.Add("NL:R1:R2:10", "pt-")
	f.Fuzz(func(t *testing.T, queryID, junk string) {
		cc := newCursorCache()
		pc := &pagedCursor{cur: fuzzCursor{}, queryID: queryID}
		token := cc.put(pc)
		if junk != token {
			if _, err := cc.take(junk); err == nil {
				t.Fatalf("take(%q) succeeded but only %q was issued", junk, token)
			}
		}
		got, err := cc.take(token)
		if err != nil {
			t.Fatalf("take of freshly issued token %q failed: %v", token, err)
		}
		if got != pc {
			t.Fatalf("take(%q) returned a different cursor", token)
		}
		if _, err := cc.take(token); err == nil {
			t.Fatalf("second take of single-use token %q succeeded", token)
		}
	})
}

// FuzzCursorCacheEviction drives many puts through the bounded cache:
// the entry count must stay within maxCachedCursors, every retained
// token must still take successfully, and issued tokens must be unique.
func FuzzCursorCacheEviction(f *testing.F) {
	f.Add(uint16(1), "q")
	f.Add(uint16(200), "same-query")
	f.Add(uint16(64), "")
	f.Fuzz(func(t *testing.T, n uint16, queryID string) {
		cc := newCursorCache()
		count := int(n%200) + 1
		tokens := make([]string, 0, count)
		seen := map[string]bool{}
		for i := 0; i < count; i++ {
			tok := cc.put(&pagedCursor{cur: fuzzCursor{}, queryID: queryID})
			if seen[tok] {
				t.Fatalf("token %q issued twice", tok)
			}
			seen[tok] = true
			tokens = append(tokens, tok)
		}
		cc.mu.Lock()
		live, orderLen := len(cc.entries), len(cc.order)
		cc.mu.Unlock()
		if live > maxCachedCursors {
			t.Fatalf("cache holds %d cursors, cap is %d", live, maxCachedCursors)
		}
		if orderLen != live {
			t.Fatalf("order list (%d) out of sync with entries (%d)", orderLen, live)
		}
		// The newest min(count, cap) tokens must all still be takeable.
		start := count - live
		for _, tok := range tokens[start:] {
			if _, err := cc.take(tok); err != nil {
				t.Fatalf("retained token %q not takeable: %v", tok, err)
			}
		}
	})
}

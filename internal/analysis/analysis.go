package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the suite can migrate to the
// upstream framework wholesale if the dependency ever becomes
// available; the container this repo builds in has no module proxy, so
// the driver, loader, and fixture runner are implemented here on the
// standard library's go/ast + go/types instead.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow suppressions.
	Name string
	// Doc is a one-paragraph description shown by `rjlint -help`.
	Doc string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzer applies one analyzer to one loaded package and returns its
// diagnostics in position order, after dropping (and accounting) the
// findings covered by //lint:allow suppressions.
func RunAnalyzer(a *Analyzer, pkg *Package) (kept []Diagnostic, suppressed []SuppressedDiagnostic, err error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	sups := CollectSuppressions(pkg.Fset, pkg.Files)
	kept, suppressed = ApplySuppressions(pkg.Fset, pkg.Files, sups, pass.diags)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, suppressed, nil
}

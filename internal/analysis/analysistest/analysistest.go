// Package analysistest runs an analyzer over fixture packages and
// compares its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the local framework.
//
// Fixtures live under <testdata>/src/<importpath>/ and may import each
// other (and the standard library). A line producing a diagnostic
// carries a trailing comment:
//
//	t.regions = nil // want `without t\.mu held`
//
// The backquoted (or double-quoted) string is a regexp matched against
// the diagnostic message; several expectations may follow one another
// on the same line for multiple diagnostics. Suppressed findings (via
// //lint:allow) are NOT matched against want comments — fixtures assert
// them with `// suppressed` bookkeeping in the test itself if needed.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+((?:[`\"][^`\"]*[`\"]\\s*)+)")
var wantArgRe = regexp.MustCompile("[`\"]([^`\"]*)[`\"]")

// Result is the outcome of running one analyzer over one fixture
// package, for tests that want to assert on suppression accounting.
type Result struct {
	Kept       []analysis.Diagnostic
	Suppressed []analysis.SuppressedDiagnostic
}

// Run loads each named fixture package from testdataDir/src, applies
// the analyzer, and reports mismatches between produced diagnostics and
// // want expectations as test errors.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgPaths ...string) map[string]Result {
	t.Helper()
	root := filepath.Join(testdataDir, "src")
	l := analysis.NewLoader()
	l.FixtureRoot = root
	results := map[string]Result{}
	for _, path := range pkgPaths {
		dir := filepath.Join(root, filepath.FromSlash(path))
		pkg, err := l.LoadDir(path, dir)
		if err != nil {
			t.Errorf("load %s: %v", path, err)
			continue
		}
		kept, suppressed, err := analysis.RunAnalyzer(a, pkg)
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, path, err)
			continue
		}
		results[path] = Result{Kept: kept, Suppressed: suppressed}
		check(t, pkg, kept)
	}
	return results
}

// expectation is one parsed // want regexp with its location.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, am := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(am[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, am[1], err)
						continue
					}
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, re: re, raw: am[1]})
				}
			}
		}
	}
	used := make([]bool, len(wants))
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		matched := false
		for i, w := range wants {
			if used[i] || w.file != p.Filename || w.line != p.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// Format renders diagnostics for debugging test failures.
func Format(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var b strings.Builder
	sorted := append([]analysis.Diagnostic(nil), diags...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pos < sorted[j].Pos })
	for _, d := range sorted {
		fmt.Fprintf(&b, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return b.String()
}

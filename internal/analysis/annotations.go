package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// Machine-readable annotation grammar shared by the analyzers.
//
// Field guards (struct fields and package-level vars):
//
//	mu      sync.RWMutex
//	regions []*Region // guarded by: mu
//
// The mutex is named relative to the annotated declaration: a sibling
// field of the same struct, or a package-level mutex var for
// package-level annotations. The annotation may sit in the trailing
// line comment or in the doc comment directly above the field.
//
// Lock preconditions (functions):
//
//	// regionForLocked is regionFor with t.mu already held.
//	func (t *Table) regionForLocked(row string) *Region
//
// Either the function name carries the `Locked` suffix — asserting the
// receiver's field named `mu` is held — or a doc-comment line
//
//	// locked: r.liveMu
//
// names the held mutexes explicitly (comma-separated, written with the
// function's own receiver name).

var (
	guardedRe = regexp.MustCompile(`(?i)guarded by:?\s+([A-Za-z_][A-Za-z0-9_]*)`)
	lockedRe  = regexp.MustCompile(`^//\s*locked:\s*(.+)$`)
)

// GuardedBy extracts a `guarded by: mu` annotation from the given
// comment groups (a field's line comment and/or doc comment).
func GuardedBy(groups ...*ast.CommentGroup) (string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if m := guardedRe.FindStringSubmatch(c.Text); m != nil {
				return m[1], true
			}
		}
	}
	return "", false
}

// LockedAnnotations extracts the `// locked: a.mu, b.mu` entries from a
// function's doc comment.
func LockedAnnotations(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		m := lockedRe.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		for _, part := range strings.Split(m[1], ",") {
			if p := strings.TrimSpace(part); p != "" {
				out = append(out, p)
			}
		}
	}
	return out
}

// PrintPath renders a selector chain rooted at an identifier — `r`,
// `c.state`, `db.cluster` — as its source text, or "" when the
// expression is not a plain ident/selector path (call results, index
// expressions) and therefore cannot be matched against lock
// acquisitions by name.
func PrintPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return PrintPath(e.X)
	case *ast.SelectorExpr:
		base := PrintPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

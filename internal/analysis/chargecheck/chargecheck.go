// Package chargecheck verifies the kvstore billing discipline: the
// simulated cluster's cost model only works if every operation that
// touches storage (memtable, segments, WAL) charges a sim.Metrics
// counter before reporting success.
//
// A function "touches storage" when it calls a storage primitive: any
// function whose results include kvstore's OpStats type (directly or as
// a struct field, e.g. fetchResult), or one of the named primitives
// (writes: mutateRetry, mutateRow, applyMutation, seedCells,
// closeAndSnapshot; disk: writeSSTable, readDataBlock, readIndexBlock,
// registerSegments — the block readers take OpStats as a parameter
// rather than returning it, so the result heuristic cannot see them).
// A function "charges" when it calls a method on
// sim.Metrics, or a package-local helper that itself always charges
// (computed as a fixpoint, so chargeRPC/chargeWrite wrappers count).
//
// Functions that are themselves primitives — their own results include
// OpStats, or they are on the write-primitive list — are exempt: their
// callers carry the charging obligation.
//
// Only "success returns" are flagged: a return whose final result is a
// nil error literal, any return of a function with no error result, and
// the implicit return at the end of a function body. Error returns may
// skip charging freely.
package chargecheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the chargecheck pass. It only inspects packages named
// "kvstore"; everything else is out of scope by construction.
var Analyzer = &analysis.Analyzer{
	Name: "chargecheck",
	Doc:  "reports kvstore functions that can return success after touching storage without charging sim.Metrics",
	Run:  run,
}

// writePrimitives are storage-touching functions identified by name
// (their signatures do not expose OpStats in their results). The disk
// primitives are included so the on-disk read/write paths carry the
// same billing obligation as the in-memory ones: readDataBlock and
// readIndexBlock accumulate into an OpStats *parameter*, which the
// result-type heuristic cannot see.
var writePrimitives = map[string]bool{
	"mutateRetry":      true,
	"mutateRow":        true,
	"applyMutation":    true,
	"seedCells":        true,
	"closeAndSnapshot": true,
	"writeSSTable":     true,
	"readDataBlock":    true,
	"readIndexBlock":   true,
	"registerSegments": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "kvstore" {
		return nil
	}
	c := &checker{pass: pass, alwaysCharges: map[*types.Func]bool{}}
	c.computeAlwaysCharges()
	c.reporting = true
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if c.isExempt(fd) {
				continue
			}
			c.fn = fd
			st := c.walkStmts(fd.Body.List, pathState{})
			// Implicit return at the end of the body is a success
			// return for functions that can reach it.
			if st != nil && st.touched && !st.charged {
				pass.Reportf(fd.Name.Pos(), "%s touches storage but can fall off the end without charging sim.Metrics", fd.Name.Name)
			}
		}
	}
	return nil
}

type checker struct {
	pass          *analysis.Pass
	alwaysCharges map[*types.Func]bool
	fn            *ast.FuncDecl
	// reporting is false during the always-charges fixpoint, so the
	// pre-pass never emits diagnostics.
	reporting bool
}

// pathState tracks one control-flow path: has it touched storage, and
// has it charged a metrics counter since entry.
type pathState struct {
	touched bool
	charged bool
}

// joinStates merges flowing paths: touched if any path touched, charged
// only if every path charged.
func joinStates(states []*pathState) *pathState {
	var flowing []*pathState
	for _, s := range states {
		if s != nil {
			flowing = append(flowing, s)
		}
	}
	if len(flowing) == 0 {
		return nil
	}
	out := *flowing[0]
	for _, s := range flowing[1:] {
		out.touched = out.touched || s.touched
		out.charged = out.charged && s.charged
	}
	return &out
}

// ---- fixpoint: which package-local functions always charge ----

func (c *checker) computeAlwaysCharges() {
	type fn struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fn
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := c.pass.Info.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fn{obj, fd})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if c.alwaysCharges[f.obj] {
				continue
			}
			if c.fnAlwaysCharges(f.decl) {
				c.alwaysCharges[f.obj] = true
				changed = true
			}
		}
	}
}

// fnAlwaysCharges reports whether every path through fd (success or
// not) charges before returning.
func (c *checker) fnAlwaysCharges(fd *ast.FuncDecl) bool {
	all := true
	var prev *ast.FuncDecl
	prev, c.fn = c.fn, fd
	defer func() { c.fn = prev }()
	var walk func(list []ast.Stmt, st pathState) *pathState
	walk = func(list []ast.Stmt, st pathState) *pathState {
		for _, s := range list {
			out := c.walkStmtGeneric(s, &st, func(ret pathState) {
				if !ret.charged {
					all = false
				}
			}, walk)
			if out == nil {
				return nil
			}
			st = *out
		}
		return &st
	}
	end := walk(fd.Body.List, pathState{})
	if end != nil && !end.charged {
		all = false
	}
	return all
}

// ---- main walk ----

// walkStmts walks a statement list, reporting uncharged success
// returns; returns nil when control cannot reach past the list.
func (c *checker) walkStmts(list []ast.Stmt, st pathState) *pathState {
	for _, s := range list {
		out := c.walkStmtGeneric(s, &st, func(ret pathState) {
			// onReturn is invoked with the state at an explicit return;
			// the caller-specific check lives in walkStmtGeneric's
			// isSuccessReturn handling, so this callback only fires for
			// flagged success returns.
		}, c.walkStmts)
		if out == nil {
			return nil
		}
		st = *out
	}
	return &st
}

// walkStmtGeneric walks one statement. onReturn observes the state at
// every explicit return (used by the fixpoint); the main analysis also
// reports uncharged success returns directly. walkList recurses into
// nested statement lists with the matching reporting behavior.
func (c *checker) walkStmtGeneric(s ast.Stmt, st *pathState, onReturn func(pathState), walkList func([]ast.Stmt, pathState) *pathState) *pathState {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return walkList(s.List, *st)
	case *ast.ExprStmt:
		c.walkExpr(s.X, st)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return nil
			}
		}
		return st
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.walkExpr(r, st)
		}
		for _, l := range s.Lhs {
			c.walkExpr(l, st)
		}
		return st
	case *ast.IncDecStmt:
		c.walkExpr(s.X, st)
		return st
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.walkExpr(v, st)
					}
				}
			}
		}
		return st
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.walkExpr(e, st)
		}
		onReturn(*st)
		if c.reporting && c.isSuccessReturn(s) && st.touched && !st.charged {
			c.pass.Reportf(s.Pos(), "%s touches storage but returns success here without charging sim.Metrics", c.fn.Name.Name)
		}
		return nil
	case *ast.BranchStmt:
		return nil
	case *ast.IfStmt:
		if s.Init != nil {
			if st = c.walkStmtGeneric(s.Init, st, onReturn, walkList); st == nil {
				return nil
			}
		}
		c.walkExpr(s.Cond, st)
		thenOut := walkList(s.Body.List, *st)
		var elseOut *pathState
		if s.Else != nil {
			elseOut = c.walkStmtGeneric(s.Else, clone(st), onReturn, walkList)
		} else {
			elseOut = clone(st)
		}
		return joinStates([]*pathState{thenOut, elseOut})
	case *ast.ForStmt:
		if s.Init != nil {
			if st = c.walkStmtGeneric(s.Init, st, onReturn, walkList); st == nil {
				return nil
			}
		}
		if s.Cond != nil {
			c.walkExpr(s.Cond, st)
		}
		body := walkList(s.Body.List, *st)
		if body != nil && s.Post != nil {
			body = c.walkStmtGeneric(s.Post, body, onReturn, walkList)
		}
		return joinStates([]*pathState{st, body})
	case *ast.RangeStmt:
		c.walkExpr(s.X, st)
		body := walkList(s.Body.List, *st)
		return joinStates([]*pathState{st, body})
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkCases(s, st, onReturn, walkList)
	case *ast.LabeledStmt:
		return c.walkStmtGeneric(s.Stmt, st, onReturn, walkList)
	case *ast.GoStmt:
		// Work handed to a goroutine is billed by whoever consumes it;
		// the spawning path itself neither touches nor charges here.
		for _, a := range s.Call.Args {
			c.walkExpr(a, st)
		}
		return st
	case *ast.DeferStmt:
		// A deferred charge covers every subsequent return.
		sub := pathState{}
		c.walkExpr(s.Call, &sub)
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			inner := pathState{}
			for _, bs := range lit.Body.List {
				ast.Inspect(bs, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						c.applyCall(call, &inner)
					}
					return true
				})
			}
			sub.charged = sub.charged || inner.charged
			sub.touched = sub.touched || inner.touched
		}
		st.charged = st.charged || sub.charged
		st.touched = st.touched || sub.touched
		return st
	case *ast.SendStmt:
		c.walkExpr(s.Chan, st)
		c.walkExpr(s.Value, st)
		return st
	}
	return st
}

func clone(st *pathState) *pathState {
	cp := *st
	return &cp
}

func (c *checker) walkCases(s ast.Stmt, st *pathState, onReturn func(pathState), walkList func([]ast.Stmt, pathState) *pathState) *pathState {
	var body *ast.BlockStmt
	hasDefault := false
	isSelect := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			if st = c.walkStmtGeneric(s.Init, st, onReturn, walkList); st == nil {
				return nil
			}
		}
		if s.Tag != nil {
			c.walkExpr(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			if st = c.walkStmtGeneric(s.Init, st, onReturn, walkList); st == nil {
				return nil
			}
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		isSelect = true
	}
	var outs []*pathState
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.walkExpr(e, st)
			}
			outs = append(outs, walkList(cl.Body, *st))
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			sub := *st
			if cl.Comm != nil {
				if out := c.walkStmtGeneric(cl.Comm, &sub, onReturn, walkList); out == nil {
					continue
				} else {
					sub = *out
				}
			}
			outs = append(outs, walkList(cl.Body, sub))
		}
	}
	if !hasDefault && !isSelect {
		outs = append(outs, st)
	}
	allNil := true
	for _, o := range outs {
		if o != nil {
			allNil = false
		}
	}
	if allNil && len(outs) > 0 {
		return nil
	}
	return joinStates(outs)
}

// walkExpr applies touch/charge transitions for every call inside e.
// Function literals not invoked on the spot are skipped: their bodies
// run later, under someone else's billing.
func (c *checker) walkExpr(e ast.Expr, st *pathState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.applyCall(n, st)
		}
		return true
	})
}

// applyCall updates st for one call expression.
func (c *checker) applyCall(call *ast.CallExpr, st *pathState) {
	if c.isChargingCall(call) {
		st.charged = true
		return
	}
	if c.isTouchingCall(call) {
		st.touched = true
	}
}

// isChargingCall recognizes sim.Metrics method calls and calls to
// package-local always-charging helpers.
func (c *checker) isChargingCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if ok {
		if s, found := c.pass.Info.Selections[sel]; found {
			recv := s.Recv()
			if p, isPtr := recv.(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			if n, isNamed := recv.(*types.Named); isNamed {
				obj := n.Obj()
				if obj.Name() == "Metrics" && obj.Pkg() != nil && obj.Pkg().Name() == "sim" {
					return true
				}
			}
		}
	}
	if fn := c.calleeFunc(call); fn != nil && c.alwaysCharges[fn] {
		return true
	}
	return false
}

// isTouchingCall recognizes storage primitives: OpStats in the callee's
// results (directly or as a struct field), or a write-primitive name.
func (c *checker) isTouchingCall(call *ast.CallExpr) bool {
	fn := c.calleeFunc(call)
	if fn == nil {
		return false
	}
	if writePrimitives[fn.Name()] {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if typeCarriesOpStats(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// isExempt reports whether fd is itself a primitive whose callers bill.
func (c *checker) isExempt(fd *ast.FuncDecl) bool {
	if writePrimitives[fd.Name.Name] {
		return true
	}
	obj, ok := c.pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if typeCarriesOpStats(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function/method object, if static.
func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := c.pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := c.pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// typeCarriesOpStats reports whether t is kvstore's OpStats or a struct
// with an OpStats field (like fetchResult), through one pointer.
func typeCarriesOpStats(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if isOpStatsNamed(n) {
		return true
	}
	s, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		ft := s.Field(i).Type()
		if fn, ok := ft.(*types.Named); ok && isOpStatsNamed(fn) {
			return true
		}
	}
	return false
}

func isOpStatsNamed(n *types.Named) bool {
	obj := n.Obj()
	return obj.Name() == "OpStats" && obj.Pkg() != nil && obj.Pkg().Name() == "kvstore"
}

// isSuccessReturn reports whether ret can represent a successful
// completion: the enclosing function has no final error result, or the
// final returned expression is the nil literal. Returns of named error
// results (bare `return`) and non-literal errors are treated as error
// paths and left unflagged.
func (c *checker) isSuccessReturn(ret *ast.ReturnStmt) bool {
	ft := c.fn.Type
	if ft.Results == nil || ft.Results.NumFields() == 0 {
		return true
	}
	fields := ft.Results.List
	last := fields[len(fields)-1]
	lt := c.pass.Info.Types[last.Type].Type
	if lt == nil || !isErrorType(lt) {
		return true
	}
	if len(ret.Results) == 0 {
		// Naked return with named error result: conservatively treat
		// as an error path.
		return false
	}
	lastExpr := ret.Results[len(ret.Results)-1]
	if id, ok := lastExpr.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	return false
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

package chargecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/chargecheck"
)

func TestChargecheck(t *testing.T) {
	results := analysistest.Run(t, "testdata", chargecheck.Analyzer, "kvstore", "notkv")

	if got := len(results["kvstore"].Suppressed); got != 1 {
		t.Errorf("kvstore: suppressed findings = %d, want 1 (adminRebalance)", got)
	}
	if got := len(results["notkv"].Kept) + len(results["notkv"].Suppressed); got != 0 {
		t.Errorf("notkv: diagnostics = %d, want 0 (analyzer is kvstore-scoped)", got)
	}
}

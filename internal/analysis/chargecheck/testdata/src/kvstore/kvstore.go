// Package kvstore mirrors the real storage package's billing shapes:
// OpStats-returning read primitives, named write primitives, charge
// helpers, and functions that must bill before reporting success.
package kvstore

import "sim"

// OpStats is the per-operation cost record; returning it marks a
// function as a storage primitive.
type OpStats struct{ Reads, Bytes int }

// fetchResult carries OpStats as a field, like the real prefetch path.
type fetchResult struct {
	stats OpStats
	err   error
}

type Region struct {
	metrics *sim.Metrics
}

// scanSegments is a read primitive: callers bill from the stats.
func (r *Region) scanSegments() (OpStats, error) { return OpStats{}, nil }

// fetchOnce is a primitive via the struct-field OpStats.
func (r *Region) fetchOnce() fetchResult { return fetchResult{} }

// mutateRow is a write primitive by name.
func (r *Region) mutateRow(key string) error { return nil }

// chargeRead always charges, so the fixpoint marks it as a charging
// helper.
func (r *Region) chargeRead(st OpStats) {
	r.metrics.AddReadRPC(st.Reads)
	r.metrics.AddDiskRead(st.Bytes)
}

// getViaHelper bills through the local helper: clean.
func (r *Region) getViaHelper(key string) error {
	st, err := r.scanSegments()
	if err != nil {
		return err
	}
	r.chargeRead(st)
	return nil
}

// getDirect bills through sim.Metrics directly: clean.
func (r *Region) getDirect(key string) error {
	st, err := r.scanSegments()
	if err != nil {
		return err
	}
	r.metrics.AddReadRPC(st.Reads)
	return nil
}

// getUnbilled drops the stats on the floor.
func (r *Region) getUnbilled(key string) error {
	_, err := r.scanSegments()
	if err != nil {
		return err
	}
	return nil // want `returns success here without charging sim\.Metrics`
}

// putUnbilled touches via the named write primitive.
func (r *Region) putUnbilled(key string) error {
	if err := r.mutateRow(key); err != nil {
		return err
	}
	return nil // want `returns success here without charging sim\.Metrics`
}

// putBilled charges after the write: clean.
func (r *Region) putBilled(key string) error {
	if err := r.mutateRow(key); err != nil {
		return err
	}
	r.metrics.AddWriteRPC(1)
	return nil
}

// prefetchUnbilled touches via the struct-field primitive.
func (r *Region) prefetchUnbilled() error {
	res := r.fetchOnce()
	if res.err != nil {
		return res.err
	}
	return nil // want `returns success here without charging sim\.Metrics`
}

// warmFallsOff has no results, so its implicit return is a success
// path.
func (r *Region) warmUnbilled() { // want `can fall off the end without charging sim\.Metrics`
	r.scanSegments()
}

// deferredCharge bills via defer, covering every return.
func (r *Region) deferredCharge() error {
	defer r.metrics.AddReadRPC(1)
	if _, err := r.scanSegments(); err != nil {
		return err
	}
	return nil
}

// errorOnlySkips only returns non-nil errors after touching; error
// paths may skip billing.
func (r *Region) errorOnlySkips(key string, fail error) error {
	if err := r.mutateRow(key); err != nil {
		return err
	}
	return fail
}

// branchBilledBothWays charges on every flowing path: clean.
func (r *Region) branchBilledBothWays(key string, wide bool) error {
	if err := r.mutateRow(key); err != nil {
		return err
	}
	if wide {
		r.metrics.AddWriteRPC(2)
	} else {
		r.metrics.AddWriteRPC(1)
	}
	return nil
}

// branchBilledOneWay misses the narrow path.
func (r *Region) branchBilledOneWay(key string, wide bool) error {
	if err := r.mutateRow(key); err != nil {
		return err
	}
	if wide {
		r.metrics.AddWriteRPC(2)
	}
	return nil // want `returns success here without charging sim\.Metrics`
}

// adminRebalance deliberately skips billing; admin operations are free
// in the cost model, and the suppression records that.
func (r *Region) adminRebalance() error {
	if err := r.mutateRow("meta"); err != nil {
		return err
	}
	//lint:allow chargecheck admin rebalance is free in the cost model
	return nil
}

// readDataBlock mirrors the disk read primitive: it accumulates into an
// OpStats parameter instead of returning one, so only the name list
// marks it as storage-touching.
func (r *Region) readDataBlock(io *OpStats, off, length uint64) error { return nil }

// writeSSTable mirrors the disk flush primitive.
func (r *Region) writeSSTable(name string) error { return nil }

// blockReadUnbilled touches disk through the parameter-style primitive
// and drops the measured stats.
func (r *Region) blockReadUnbilled() error {
	var st OpStats
	if err := r.readDataBlock(&st, 0, 0); err != nil {
		return err
	}
	return nil // want `returns success here without charging sim\.Metrics`
}

// blockReadBilled charges the measured block reads: clean.
func (r *Region) blockReadBilled() error {
	var st OpStats
	if err := r.readDataBlock(&st, 0, 0); err != nil {
		return err
	}
	r.metrics.AddDiskRead(st.Bytes)
	return nil
}

// flushUnbilled writes an SSTable without billing.
func (r *Region) flushUnbilled() error {
	if err := r.writeSSTable("000001.sst"); err != nil {
		return err
	}
	return nil // want `returns success here without charging sim\.Metrics`
}

// untouched never touches storage: nothing to bill.
func (r *Region) untouched(key string) error {
	if key == "" {
		return nil
	}
	return nil
}

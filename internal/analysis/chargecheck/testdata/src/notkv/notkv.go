// Package notkv verifies chargecheck scopes itself to packages named
// kvstore: identical shapes here produce no findings.
package notkv

type OpStats struct{ Reads int }

func scan() (OpStats, error) { return OpStats{}, nil }

func getUnbilled() error {
	if _, err := scan(); err != nil {
		return err
	}
	return nil
}

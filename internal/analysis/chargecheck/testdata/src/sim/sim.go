// Package sim stubs the metrics sink for chargecheck fixtures; the
// analyzer matches it by package name.
package sim

type Metrics struct{}

func (m *Metrics) AddReadRPC(n int)      {}
func (m *Metrics) AddWriteRPC(n int)     {}
func (m *Metrics) AddDiskRead(bytes int) {}

// Package analysis is the repo's static-analysis framework: a minimal
// mirror of golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic)
// plus a source-importer-based loader, an annotation grammar, and a
// //lint:allow suppression mechanism. It exists locally because the
// build container has no module proxy; see the Analyzer doc comment.
//
// # Analyzers
//
// Three repo-specific analyzers live in subpackages and are bundled
// into the cmd/rjlint multichecker:
//
//   - lockcheck — verifies `guarded by:` field annotations: every
//     access to an annotated field must hold the named mutex on a
//     dominating path, be inside a `fooLocked`/`// locked:` function,
//     or target a freshly constructed value.
//   - chargecheck — verifies internal/kvstore's billing discipline:
//     a function that touches segment/memtable/WAL data (directly or
//     through an OpStats-returning primitive) must charge a sim.Metrics
//     counter before every success return.
//   - maintcheck — verifies that base-table mutations (Cluster.Put,
//     Delete, MutateRow, BatchPut, GroupWrite) outside package kvstore
//     happen only inside the core.Maintainer write-through pipeline,
//     so derived indexes cannot silently go stale.
//
// # Annotation grammar
//
// Field guards (struct fields or package-level vars; trailing line
// comment or doc comment):
//
//	regions []*Region // guarded by: mu
//
// Lock preconditions (function doc comment, receiver-relative paths,
// comma-separated), or equivalently the `Locked` name suffix for the
// receiver's field named mu:
//
//	// locked: r.mu, r.liveMu
//
// Suppressions — the reason is mandatory and reason-less suppressions
// are themselves reported, so the tree carries zero unexplained ones:
//
//	//lint:allow <analyzer> <reason>
//
// A suppression covers findings on its own line, the line below, or —
// when part of a function's doc comment — the whole function.
//
// # Running
//
//	go run ./cmd/rjlint ./...        # all three analyzers + go vet
//	go run ./cmd/rjlint -v ./...     # also list suppressed findings
//	go run ./cmd/rjlint -novet ./... # skip the go vet pre-pass
//
// rjlint exits 0 when clean, 1 with findings, 2 on load errors.
package analysis

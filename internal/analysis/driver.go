package analysis

import (
	"fmt"
	"io"
)

// Exit codes of Run, mirroring go vet's convention.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Run loads the packages matched by patterns, applies every analyzer to
// each, and prints findings to out as "path:line:col: message [analyzer]".
// Suppressed findings are counted (and listed with -v); suppressions
// missing a reason are promoted back to findings, so the tree can never
// carry an unexplained one.
func Run(analyzers []*Analyzer, patterns []string, out io.Writer, verbose bool) int {
	l := NewLoader()
	pkgs, err := l.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintf(out, "rjlint: %v\n", err)
		return ExitError
	}
	findings := 0
	suppressedCount := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			kept, suppressed, err := RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(out, "rjlint: %v\n", err)
				return ExitError
			}
			for _, d := range kept {
				fmt.Fprintf(out, "%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
				findings++
			}
			for _, s := range suppressed {
				if s.Suppression.Reason == "" {
					fmt.Fprintf(out, "%s: %s [%s] (suppression has no reason — grammar is //lint:allow %s <reason>)\n",
						pkg.Fset.Position(s.Diagnostic.Pos), s.Diagnostic.Message, s.Diagnostic.Analyzer, s.Diagnostic.Analyzer)
					findings++
					continue
				}
				suppressedCount++
				if verbose {
					fmt.Fprintf(out, "%s: suppressed: %s [%s] — %s\n",
						pkg.Fset.Position(s.Diagnostic.Pos), s.Diagnostic.Message, s.Diagnostic.Analyzer, s.Suppression.Reason)
				}
			}
		}
	}
	if suppressedCount > 0 {
		fmt.Fprintf(out, "rjlint: %d finding(s) suppressed by //lint:allow (run with -v to list)\n", suppressedCount)
	}
	if findings > 0 {
		fmt.Fprintf(out, "rjlint: %d finding(s)\n", findings)
		return ExitFindings
	}
	return ExitClean
}

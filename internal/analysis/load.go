package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Dir        string
	ImportPath string
}

// Loader parses and type-checks packages from source. Dependencies —
// standard library and module-local alike — resolve through the
// compiler "source" importer, which needs no export data and no network,
// so the suite runs in a hermetic container. One Loader shares a
// FileSet and an import cache across every package it loads.
//
// FixtureRoot, when set, resolves bare import paths against a fixture
// tree first (testdata/src/<path>), the analysistest layout.
type Loader struct {
	Fset        *token.FileSet
	FixtureRoot string

	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader returns a loader with a fresh file set and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: map[string]*Package{},
	}
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// LoadPatterns resolves go list patterns (e.g. "./...") into loaded
// packages. Test files and testdata are excluded, matching what ships.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.loadFiles(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads every non-test .go file in dir as one package named by
// importPath (the analysistest entry point).
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return l.loadFiles(importPath, dir, files)
}

func (l *Loader) loadFiles(importPath, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: &scopedImporter{l: l, dir: dir}}
	tpkg, err := conf.Check(importPath, l.Fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	pkg := &Package{
		Fset:       l.Fset,
		Files:      asts,
		Types:      tpkg,
		Info:       info,
		Dir:        dir,
		ImportPath: importPath,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// scopedImporter resolves imports for one package under load: fixture
// packages first (when a FixtureRoot is configured), then the shared
// source importer, with srcDir pinned to the importing package's
// directory so module-path imports resolve.
type scopedImporter struct {
	l   *Loader
	dir string
}

func (si *scopedImporter) Import(path string) (*types.Package, error) {
	if si.l.FixtureRoot != "" {
		if fdir := filepath.Join(si.l.FixtureRoot, filepath.FromSlash(path)); dirHasGoFiles(fdir) {
			p, err := si.l.LoadDir(path, fdir)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	return si.l.std.ImportFrom(path, si.dir, 0)
}

func dirHasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Package lockcheck verifies the repo's `guarded by:` annotations: every
// read or write of an annotated struct field (or package-level var) must
// happen while the named mutex is held on a dominating path, inside a
// function that asserts the lock by convention (`fooLocked` name suffix
// or a `// locked: <mu>` doc annotation), or from a freshly constructed
// value no other goroutine can see yet.
//
// The check is flow-sensitive but syntactic about lock identity: a lock
// acquisition `x.y.mu.Lock()` and a field access `x.y.field` match when
// their base selector paths print identically. Branches merge
// conservatively (a lock is held after a join only if every flowing
// branch holds it), and a branch that ends in return/break/continue/
// goto/panic does not flow into the join — so the common
//
//	r.mu.Lock()
//	if r.closed { r.mu.Unlock(); continue }
//	r.node = node // still guarded here
//
// pattern verifies. Writes require the exclusive lock; a write under
// RLock alone is reported. Function literals inherit the lock state at
// their creation point, except goroutine bodies (`go func(){...}()`),
// which start with no locks held.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "reports accesses to `guarded by:`-annotated fields without the named mutex held",
	Run:  run,
}

// guardInfo describes one annotated field or package-level var.
type guardInfo struct {
	mu       string // sibling mutex field name, or package-level mutex var name
	pkgLevel bool
}

func run(pass *analysis.Pass) error {
	guarded := collectGuards(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, guarded: guarded}
			w.fresh = collectFresh(pass, fd.Body)
			st := &state{held: map[string]lockCount{}}
			for _, mu := range initiallyHeld(pass, fd) {
				st.held[mu] = lockCount{r: 1, w: 1}
			}
			w.walkStmts(fd.Body.List, st)
		}
	}
	return nil
}

// collectGuards gathers `guarded by:` annotations from struct fields and
// package-level var specs, validating that the named mutex exists as a
// sibling (field or package var) of mutex-ish type.
func collectGuards(pass *analysis.Pass) map[types.Object]guardInfo {
	out := map[types.Object]guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				mu, ok := analysis.GuardedBy(fld.Doc, fld.Comment)
				if !ok {
					continue
				}
				if !structHasMutex(pass, st, mu) {
					pass.Reportf(fld.Pos(), "guarded by: names %q, which is not a sibling mutex field", mu)
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = guardInfo{mu: mu}
					}
				}
			}
			return true
		})
		// Package-level vars: // guarded by: <pkg-level mutex var>.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				groups := []*ast.CommentGroup{vs.Doc, vs.Comment}
				if len(gd.Specs) == 1 {
					// For `var x = ...` without parens the doc comment
					// attaches to the GenDecl, not the ValueSpec.
					groups = append(groups, gd.Doc)
				}
				mu, ok := analysis.GuardedBy(groups...)
				if !ok {
					continue
				}
				muObj := pass.Pkg.Scope().Lookup(mu)
				if muObj == nil || !isMutexType(muObj.Type()) {
					pass.Reportf(vs.Pos(), "guarded by: names %q, which is not a package-level mutex", mu)
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = guardInfo{mu: mu, pkgLevel: true}
					}
				}
			}
		}
	}
	return out
}

func structHasMutex(pass *analysis.Pass, st *ast.StructType, name string) bool {
	for _, fld := range st.Fields.List {
		for _, n := range fld.Names {
			if n.Name == name {
				if obj := pass.Info.Defs[n]; obj != nil && isMutexType(obj.Type()) {
					return true
				}
			}
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a
// pointer to one.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// initiallyHeld returns the lock paths a function asserts as
// preconditions: `// locked:` doc entries, plus the receiver's `mu`
// field for `fooLocked`-suffixed methods.
func initiallyHeld(pass *analysis.Pass, fd *ast.FuncDecl) []string {
	held := analysis.LockedAnnotations(fd.Doc)
	if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv := fd.Recv.List[0].Names[0]
		if obj := pass.Info.Defs[recv]; obj != nil {
			if hasFieldNamedMu(obj.Type()) {
				held = append(held, recv.Name+".mu")
			}
		}
	}
	return held
}

func hasFieldNamedMu(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		if f := s.Field(i); f.Name() == "mu" && isMutexType(f.Type()) {
			return true
		}
	}
	return false
}

// collectFresh finds local variables initialized from composite
// literals or constructor calls (new*/New*): values no other goroutine
// can reference yet, whose fields may be set without locks. A variable
// later reassigned from any other source loses the exemption.
func collectFresh(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	tainted := map[types.Object]bool{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if rhs != nil && isFreshExpr(rhs) {
			fresh[obj] = true
		} else {
			tainted[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], n.Rhs[i])
				}
			} else if len(n.Rhs) == 1 {
				for _, l := range n.Lhs {
					mark(l, n.Rhs[0])
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							var rhs ast.Expr
							if i < len(vs.Values) {
								rhs = vs.Values[i]
							}
							if rhs != nil {
								mark(name, rhs)
							}
						}
					}
				}
			}
		}
		return true
	})
	for obj := range tainted {
		delete(fresh, obj)
	}
	return fresh
}

// isFreshExpr reports whether e constructs a value: a composite literal,
// &composite literal, new(T), or a call to a new*/New* constructor.
func isFreshExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		var name string
		switch fn := e.Fun.(type) {
		case *ast.Ident:
			name = fn.Name
		case *ast.SelectorExpr:
			name = fn.Sel.Name
		}
		return name == "new" || strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New")
	}
	return false
}

// ---- flow-sensitive walk ----

// lockCount tracks reader/writer hold depth for one lock path.
type lockCount struct{ r, w int }

type state struct {
	held map[string]lockCount
}

func (s *state) clone() *state {
	h := make(map[string]lockCount, len(s.held))
	for k, v := range s.held {
		h[k] = v
	}
	return &state{held: h}
}

// join keeps only locks held in every flowing state.
func join(states ...*state) *state {
	var flowing []*state
	for _, s := range states {
		if s != nil {
			flowing = append(flowing, s)
		}
	}
	if len(flowing) == 0 {
		return &state{held: map[string]lockCount{}}
	}
	out := flowing[0].clone()
	for _, s := range flowing[1:] {
		for k, v := range out.held {
			o := s.held[k]
			if o.r < v.r {
				v.r = o.r
			}
			if o.w < v.w {
				v.w = o.w
			}
			if v.r == 0 && v.w == 0 {
				delete(out.held, k)
			} else {
				out.held[k] = v
			}
		}
	}
	return out
}

type walker struct {
	pass    *analysis.Pass
	guarded map[types.Object]guardInfo
	fresh   map[types.Object]bool
	// reported dedupes diagnostics to one per line/field/lock, so a
	// statement that both reads and writes a field yields one finding.
	reported map[string]bool
}

// walkStmts walks a statement list, returning nil when control cannot
// flow past the end (terminating statement).
func (w *walker) walkStmts(list []ast.Stmt, st *state) *state {
	for _, s := range list {
		if st = w.walkStmt(s, st); st == nil {
			return nil
		}
	}
	return st
}

func (w *walker) walkStmt(s ast.Stmt, st *state) *state {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.ExprStmt:
		w.walkExpr(s.X, st, false)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			return nil
		}
		return st
	case *ast.AssignStmt:
		// Check the write targets first: `t.regions = append(t.regions,
		// x)` reads and writes the same field, and the write diagnostic
		// is the one worth keeping (reads on an already-reported line
		// are deduped by checkHeld).
		for _, l := range s.Lhs {
			w.walkLHS(l, st)
		}
		for _, r := range s.Rhs {
			w.walkExpr(r, st, false)
		}
		return st
	case *ast.IncDecStmt:
		w.walkLHS(s.X, st)
		return st
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, st, false)
					}
				}
			}
		}
		return st
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e, st, false)
		}
		return nil
	case *ast.BranchStmt: // break, continue, goto, fallthrough
		return nil
	case *ast.IfStmt:
		if s.Init != nil {
			if st = w.walkStmt(s.Init, st); st == nil {
				return nil
			}
		}
		w.walkExpr(s.Cond, st, false)
		thenOut := w.walkStmts(s.Body.List, st.clone())
		var elseOut *state
		if s.Else != nil {
			elseOut = w.walkStmt(s.Else, st.clone())
		} else {
			elseOut = st.clone()
		}
		if thenOut == nil && elseOut == nil {
			return nil
		}
		return join(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			if st = w.walkStmt(s.Init, st); st == nil {
				return nil
			}
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, st, false)
		}
		body := w.walkStmts(s.Body.List, st.clone())
		if body != nil && s.Post != nil {
			body = w.walkStmt(s.Post, body)
		}
		if s.Cond == nil && !hasBreak(s.Body) {
			// `for { ... }` with no break never flows past.
			return nil
		}
		return join(st, body)
	case *ast.RangeStmt:
		w.walkExpr(s.X, st, false)
		if s.Key != nil {
			w.walkLHS(s.Key, st)
		}
		if s.Value != nil {
			w.walkLHS(s.Value, st)
		}
		body := w.walkStmts(s.Body.List, st.clone())
		return join(st, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			if st = w.walkStmt(s.Init, st); st == nil {
				return nil
			}
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, st, false)
		}
		return w.walkCases(s.Body, st, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			if st = w.walkStmt(s.Init, st); st == nil {
				return nil
			}
		}
		w.walkStmt(s.Assign, st.clone())
		return w.walkCases(s.Body, st, false)
	case *ast.SelectStmt:
		return w.walkCases(s.Body, st, true)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, a := range s.Call.Args {
				w.walkExpr(a, st, false)
			}
			w.walkStmts(lit.Body.List, &state{held: map[string]lockCount{}})
		} else {
			w.walkExpr(s.Call, st, false)
		}
		return st
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end, so it
		// is deliberately NOT applied to the state. Other deferred
		// calls (including func literals) are walked with the current
		// state as an approximation of the at-return state.
		if path, kind, ok := w.lockCall(s.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
			_ = path
			return st
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, a := range s.Call.Args {
				w.walkExpr(a, st, false)
			}
			w.walkStmts(lit.Body.List, st.clone())
		} else {
			w.walkExpr(s.Call, st, false)
		}
		return st
	case *ast.SendStmt:
		w.walkExpr(s.Chan, st, false)
		w.walkExpr(s.Value, st, false)
		return st
	case *ast.EmptyStmt:
		return st
	}
	return st
}

// walkCases joins the outcomes of a switch/select body's clauses.
func (w *walker) walkCases(body *ast.BlockStmt, st *state, isSelect bool) *state {
	var outs []*state
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.walkExpr(e, st, false)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			sub := st.clone()
			if c.Comm != nil {
				if out := w.walkStmt(c.Comm, sub); out == nil {
					continue
				}
			}
			outs = append(outs, w.walkStmts(c.Body, sub))
			continue
		}
		outs = append(outs, w.walkStmts(stmts, st.clone()))
	}
	if !hasDefault && !isSelect {
		outs = append(outs, st)
	}
	allNil := true
	for _, o := range outs {
		if o != nil {
			allNil = false
		}
	}
	if allNil && len(outs) > 0 {
		return nil
	}
	return join(outs...)
}

// walkLHS checks an assignment target: the core selector being stored
// through is a write access, while inner expressions (indexes, bases)
// are reads.
func (w *walker) walkLHS(e ast.Expr, st *state) {
	switch e := e.(type) {
	case *ast.Ident:
		w.checkIdent(e, st, true)
	case *ast.SelectorExpr:
		w.checkSelector(e, st, true)
		w.walkExpr(e.X, st, false)
	case *ast.IndexExpr:
		// m[k] = v writes the container: charge the core expr as a write.
		w.walkLHS(e.X, st)
		w.walkExpr(e.Index, st, false)
	case *ast.StarExpr:
		w.walkExpr(e.X, st, false)
	case *ast.ParenExpr:
		w.walkLHS(e.X, st)
	default:
		w.walkExpr(e, st, false)
	}
}

// walkExpr visits an expression in evaluation order, applying lock
// transitions and access checks.
func (w *walker) walkExpr(e ast.Expr, st *state, write bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		w.checkIdent(e, st, write)
	case *ast.SelectorExpr:
		w.checkSelector(e, st, write)
		w.walkExpr(e.X, st, false)
	case *ast.CallExpr:
		if path, kind, ok := w.lockCall(e); ok {
			w.applyLock(st, path, kind)
			return
		}
		w.walkExpr(e.Fun, st, false)
		for _, a := range e.Args {
			w.walkExpr(a, st, false)
		}
	case *ast.FuncLit:
		// Closure bodies inherit the lock state at creation.
		w.walkStmts(e.Body.List, st.clone())
	case *ast.BinaryExpr:
		w.walkExpr(e.X, st, false)
		w.walkExpr(e.Y, st, false)
	case *ast.UnaryExpr:
		w.walkExpr(e.X, st, false)
	case *ast.ParenExpr:
		w.walkExpr(e.X, st, write)
	case *ast.IndexExpr:
		w.walkExpr(e.X, st, false)
		w.walkExpr(e.Index, st, false)
	case *ast.IndexListExpr:
		w.walkExpr(e.X, st, false)
		for _, i := range e.Indices {
			w.walkExpr(i, st, false)
		}
	case *ast.SliceExpr:
		w.walkExpr(e.X, st, false)
		w.walkExpr(e.Low, st, false)
		w.walkExpr(e.High, st, false)
		w.walkExpr(e.Max, st, false)
	case *ast.StarExpr:
		w.walkExpr(e.X, st, false)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, st, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.walkExpr(el, st, false)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Key, st, false)
		w.walkExpr(e.Value, st, false)
	}
}

// lockCall recognizes `<path>.Lock()` / `RLock` / `Unlock` / `RUnlock` /
// `TryLock` / `TryRLock` on a sync mutex with a printable base path.
func (w *walker) lockCall(call *ast.CallExpr) (path, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	t := w.pass.Info.Types[sel.X].Type
	if t == nil || !isMutexType(t) {
		return "", "", false
	}
	path = analysis.PrintPath(sel.X)
	if path == "" {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

func (w *walker) applyLock(st *state, path, kind string) {
	lc := st.held[path]
	switch kind {
	case "Lock", "TryLock":
		lc.w++
		lc.r++
	case "RLock", "TryRLock":
		lc.r++
	case "Unlock":
		lc.w--
		lc.r--
	case "RUnlock":
		lc.r--
	}
	if lc.r < 0 {
		lc.r = 0
	}
	if lc.w < 0 {
		lc.w = 0
	}
	if lc.r == 0 && lc.w == 0 {
		delete(st.held, path)
	} else {
		st.held[path] = lc
	}
}

// checkSelector verifies an access to base.field against the guard
// annotations.
func (w *walker) checkSelector(sel *ast.SelectorExpr, st *state, write bool) {
	obj := w.pass.Info.Uses[sel.Sel]
	if obj == nil {
		if s, ok := w.pass.Info.Selections[sel]; ok {
			obj = s.Obj()
		}
	}
	if obj == nil {
		return
	}
	g, ok := w.guarded[obj]
	if !ok {
		return
	}
	base := analysis.PrintPath(sel.X)
	if base == "" {
		// The base is not a plain ident/selector path (call result,
		// index expression); the guarding mutex cannot be matched by
		// name, so the access is out of scope for this syntactic check.
		return
	}
	if id, isID := unwrapIdent(sel.X); isID {
		if o := w.pass.Info.Uses[id]; o != nil && w.fresh[o] && len(strings.Split(base, ".")) == 1 {
			return // freshly constructed local value
		}
	}
	w.checkHeld(sel.Pos(), obj.Name(), base+"."+g.mu, st, write)
}

// checkIdent verifies a bare-identifier access against package-level
// guard annotations.
func (w *walker) checkIdent(id *ast.Ident, st *state, write bool) {
	obj := w.pass.Info.Uses[id]
	if obj == nil {
		return
	}
	g, ok := w.guarded[obj]
	if !ok || !g.pkgLevel {
		return
	}
	w.checkHeld(id.Pos(), obj.Name(), g.mu, st, write)
}

// checkHeld reports the access unless the lock at lockPath is held in
// the needed mode on every path reaching pos.
func (w *walker) checkHeld(pos token.Pos, field, lockPath string, st *state, write bool) {
	lc := st.held[lockPath]
	var msg string
	if write {
		switch {
		case lc.w > 0:
			return
		case lc.r > 0:
			msg = "write to %q requires %s held in write mode, but only a read lock is held"
		default:
			msg = "write to %q without %s held"
		}
	} else {
		if lc.r > 0 || lc.w > 0 {
			return
		}
		msg = "read of %q without %s held"
	}
	p := w.pass.Fset.Position(pos)
	key := p.Filename + ":" + strconv.Itoa(p.Line) + ":" + field + ":" + lockPath
	if w.reported == nil {
		w.reported = map[string]bool{}
	}
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.pass.Reportf(pos, msg, field, lockPath)
}

// hasBreak reports whether the block contains a break that targets the
// enclosing loop (not one inside a nested loop, switch, or select).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				found = true
			}
		case *ast.BlockStmt:
			for _, sub := range s.List {
				walk(sub)
			}
		case *ast.IfStmt:
			walk(s.Body)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.ForStmt, *ast.RangeStmt:
			// break inside these targets them, not our loop; labeled
			// breaks through them are rare enough to ignore here.
		}
	}
	for _, s := range body.List {
		walk(s)
	}
	return found
}

func unwrapIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

package lockcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	results := analysistest.Run(t, "testdata", lockcheck.Analyzer, "lockbasic", "lockregress", "lockreplica")

	// The suppressed snapshot read in lockbasic must be accounted, not
	// silently dropped.
	if got := len(results["lockbasic"].Suppressed); got != 1 {
		t.Errorf("lockbasic: suppressed findings = %d, want 1", got)
	}
	for _, s := range results["lockbasic"].Suppressed {
		if s.Suppression.Reason == "" {
			t.Errorf("suppression without reason survived: %+v", s)
		}
	}

	// The regression fixture must flag both shipped race shapes.
	if got := len(results["lockregress"].Kept); got != 2 {
		t.Errorf("lockregress: findings = %d, want 2 (idxCfg + Table.regions)", got)
	}

	// The replica-map fixture must flag the unlocked dispatch read and
	// cursor bump the distribution layer's router avoids.
	if got := len(results["lockreplica"].Kept); got != 3 {
		t.Errorf("lockreplica: findings = %d, want 3 (relations read + rr bump + rr read)", got)
	}
}

// Package lockbasic exercises lockcheck's core behaviors: guarded
// field accesses, lock modes, flow joins, conventions, and fresh
// values.
package lockbasic

import "sync"

type table struct {
	mu      sync.RWMutex
	regions []int // guarded by: mu
	name    string
}

// ---- unguarded accesses ----

func readBare(t *table) int {
	return len(t.regions) // want `read of "regions" without t\.mu held`
}

func writeBare(t *table) {
	t.regions = nil // want `write to "regions" without t\.mu held`
}

func unguardedFieldOK(t *table) string {
	return t.name // unannotated fields are out of scope
}

// ---- lock modes ----

func readUnderRLock(t *table) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.regions)
}

func writeUnderRLock(t *table) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.regions = nil // want `write to "regions" requires t\.mu held in write mode`
}

func writeUnderLock(t *table) {
	t.mu.Lock()
	t.regions = append(t.regions, 1)
	t.mu.Unlock()
}

func readAfterUnlock(t *table) int {
	t.mu.RLock()
	n := len(t.regions)
	t.mu.RUnlock()
	return n + len(t.regions) // want `read of "regions" without t\.mu held`
}

// ---- flow sensitivity ----

// earlyUnlockContinue mirrors the MoveRegion idiom: the unlock branch
// leaves the loop iteration, so the write below still sees the lock.
func earlyUnlockContinue(ts []*table, closed bool) {
	for _, t := range ts {
		t.mu.Lock()
		if closed {
			t.mu.Unlock()
			continue
		}
		t.regions = append(t.regions, 1)
		t.mu.Unlock()
	}
}

// joinDropsLock: one branch unlocks and flows on, so the merged state
// cannot assume the lock.
func joinDropsLock(t *table, cond bool) {
	t.mu.Lock()
	if cond {
		t.mu.Unlock()
	}
	t.regions = nil // want `write to "regions" without t\.mu held`
	if !cond {
		t.mu.Unlock()
	}
}

func lockInBothBranches(t *table, cond bool) {
	if cond {
		t.mu.Lock()
	} else {
		t.mu.Lock()
	}
	t.regions = nil
	t.mu.Unlock()
}

// ---- conventions ----

// appendLocked carries the Locked suffix: the receiver's mu is a
// precondition.
func (t *table) appendLocked(r int) {
	t.regions = append(t.regions, r)
}

// locked: t.mu
func (t *table) appendAnnotated(r int) {
	t.regions = append(t.regions, r)
}

func (t *table) appendUnannotated(r int) {
	t.regions = append(t.regions, r) // want `write to "regions" without t\.mu held`
}

// ---- closures and goroutines ----

func closureInherits(t *table) {
	t.mu.Lock()
	f := func() { t.regions = nil }
	f()
	t.mu.Unlock()
}

func goroutineDoesNot(t *table) {
	t.mu.Lock()
	go func() {
		t.regions = nil // want `write to "regions" without t\.mu held`
	}()
	t.mu.Unlock()
}

// ---- fresh values ----

func freshLiteral() *table {
	t := &table{}
	t.regions = []int{1} // no other goroutine can see t yet
	return t
}

func newTable() *table { return &table{} }

func freshConstructor() *table {
	t := newTable()
	t.regions = []int{1}
	return t
}

func notFresh(t *table) {
	u := t
	u.regions = nil // want `write to "regions" without u\.mu held`
}

// ---- suppression ----

func suppressedRead(t *table) int {
	//lint:allow lockcheck snapshot read is racy by design and documented
	return len(t.regions)
}

// ---- package-level guards ----

var registryMu sync.RWMutex

// guarded by: registryMu
var registry = map[string]int{}

func lookup(name string) int {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[name]
}

func lookupBare(name string) int {
	return registry[name] // want `read of "registry" without registryMu held`
}

func register(name string) {
	registryMu.Lock()
	registry[name] = 1
	registryMu.Unlock()
}

func registerBare(name string) {
	registry[name] = 1 // want `write to "registry" without registryMu held`
}

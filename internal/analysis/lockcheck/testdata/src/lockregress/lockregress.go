// Package lockregress pins two races this repo actually shipped and
// later fixed, proving lockcheck would have caught both:
//
//   - the idxCfg race: DB.RankJoin read db.idxCfg outside db.mu while
//     ConfigureIndexes wrote it under the lock;
//   - the unguarded Table.regions read: Table.regionFor iterated
//     t.regions without t.mu while SplitRegion rewrote the slice.
//
// If either pattern is reintroduced, these shapes show lockcheck flags
// it.
package lockregress

import "sync"

type indexConfig struct {
	EnableISLN bool
}

type db struct {
	mu     sync.RWMutex
	idxCfg indexConfig // guarded by: mu
}

// configureIndexes is the writer, correctly under the lock.
func (d *db) configureIndexes(cfg indexConfig) {
	d.mu.Lock()
	d.idxCfg = cfg
	d.mu.Unlock()
}

// rankJoinRacy is the shipped bug shape: reading idxCfg with no lock.
func (d *db) rankJoinRacy() bool {
	return d.idxCfg.EnableISLN // want `read of "idxCfg" without d\.mu held`
}

// rankJoinFixed is the shipped fix: snapshot under RLock.
func (d *db) rankJoinFixed() bool {
	d.mu.RLock()
	cfg := d.idxCfg
	d.mu.RUnlock()
	return cfg.EnableISLN
}

type region struct{ start string }

type table struct {
	mu      sync.RWMutex
	regions []*region // guarded by: mu
}

// regionForRacy is the shipped bug shape: scanning regions unlocked
// while SplitRegion swaps the slice.
func (t *table) regionForRacy(row string) *region {
	for _, r := range t.regions { // want `read of "regions" without t\.mu held`
		if r.start <= row {
			return r
		}
	}
	return nil
}

// regionForFixed holds the read lock across the scan.
func (t *table) regionForFixed(row string) *region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.regions {
		if r.start <= row {
			return r
		}
	}
	return nil
}

// splitRegion is the writer side, under the exclusive lock.
func (t *table) splitRegion(at string) {
	t.mu.Lock()
	t.regions = append(t.regions, &region{start: at})
	t.mu.Unlock()
}

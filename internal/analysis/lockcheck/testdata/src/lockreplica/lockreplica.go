// Package lockreplica pins the replica-map read path introduced with
// the distribution layer: a router's relation→replicas map and its
// round-robin dispatch cursor are written under mu at DDL/topology time
// and read on every query dispatch. The racy shapes below are exactly
// what an "it's read-mostly" shortcut would reintroduce; lockcheck must
// flag both, and must accept the copy-under-lock discipline the real
// topology.Router uses.
package lockreplica

import "sync"

type router struct {
	mu        sync.Mutex
	relations map[string][]string // guarded by: mu — relation → replica node names
	rr        uint64              // guarded by: mu — round-robin dispatch cursor
}

// defineRelation is the writer, correctly under the lock.
func (r *router) defineRelation(name string, replicas []string) {
	r.mu.Lock()
	r.relations[name] = replicas
	r.mu.Unlock()
}

// dispatchRacy is the tempting bug shape: picking a replica for a query
// straight off the shared map and bumping the cursor, no lock — races
// with defineRelation rewriting the map and with concurrent dispatches.
func (r *router) dispatchRacy(relation string) string {
	group := r.relations[relation] // want `read of "relations" without r\.mu held`
	if len(group) == 0 {
		return ""
	}
	r.rr++                             // want `write to "rr" without r\.mu held`
	return group[int(r.rr)%len(group)] // want `read of "rr" without r\.mu held`
}

// dispatchFixed is the real router's discipline: snapshot the group and
// advance the cursor under the lock, then dispatch lock-free on the
// private copy.
func (r *router) dispatchFixed(relation string) string {
	r.mu.Lock()
	group := append([]string(nil), r.relations[relation]...)
	r.rr++
	seq := r.rr
	r.mu.Unlock()
	if len(group) == 0 {
		return ""
	}
	return group[int(seq)%len(group)]
}

// Package maintcheck guards the index-maintenance invariant introduced
// by the write-through pipeline: derived indexes (IJLMR, ISL, ISLN,
// BFHM, DRJN) stay consistent only when every base-table mutation flows
// through core.Maintainer, which shreds the write into index deltas and
// applies them in the same group.
//
// The analyzer flags calls to Cluster mutation methods — Put, Delete,
// MutateRow, BatchPut, GroupWrite — anywhere outside (a) package
// kvstore itself, and (b) methods whose receiver is core.Maintainer.
// Deliberate bypasses (bulk loaders that rebuild indexes afterwards, an
// index writing to its own table) carry //lint:allow maintcheck
// suppressions with reasons.
package maintcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the maintcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "maintcheck",
	Doc:  "reports base-table mutations that bypass the core.Maintainer write-through pipeline",
	Run:  run,
}

// mutators are the Cluster methods that change base-table cells.
var mutators = map[string]bool{
	"Put":        true,
	"Delete":     true,
	"MutateRow":  true,
	"BatchPut":   true,
	"GroupWrite": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "kvstore" {
		return nil // the storage layer's own internals are the pipeline's floor
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isMaintainerMethod(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !mutators[sel.Sel.Name] {
					return true
				}
				if !isClusterRecv(pass, sel) {
					return true
				}
				pass.Reportf(call.Pos(), "Cluster.%s mutates a base table outside the core.Maintainer pipeline; derived indexes will go stale", sel.Sel.Name)
				return true
			})
		}
	}
	return nil
}

// isMaintainerMethod reports whether fd is a method on (a pointer to)
// core's Maintainer type.
func isMaintainerMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t := pass.Info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return false
	}
	return isNamed(t, "Maintainer", "core")
}

// isClusterRecv reports whether sel's receiver is kvstore's Cluster.
func isClusterRecv(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	return isNamed(s.Recv(), "Cluster", "kvstore")
}

// isNamed matches a (possibly pointer-to) named type by type name and
// defining package name. Matching by package NAME rather than import
// path lets analysistest fixtures stub the real packages.
func isNamed(t types.Type, name, pkgName string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

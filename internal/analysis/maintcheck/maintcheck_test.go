package maintcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maintcheck"
)

func TestMaintcheck(t *testing.T) {
	results := analysistest.Run(t, "testdata", maintcheck.Analyzer, "core", "client", "kvstore")

	if got := len(results["client"].Suppressed); got != 1 {
		t.Errorf("client: suppressed findings = %d, want 1 (bulkLoad)", got)
	}
	// Package kvstore itself is the pipeline's floor: never flagged.
	if got := len(results["kvstore"].Kept) + len(results["kvstore"].Suppressed); got != 0 {
		t.Errorf("kvstore: diagnostics = %d, want 0", got)
	}
}

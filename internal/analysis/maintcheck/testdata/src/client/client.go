// Package client exercises maintcheck from outside the storage and
// maintenance layers, where every direct mutation is a bypass.
package client

import (
	"core"
	"kvstore"
)

func insertBad(c *kvstore.Cluster) error {
	return c.Put("users", "u1", "v") // want `Cluster\.Put mutates a base table outside the core\.Maintainer pipeline`
}

func deleteBad(c *kvstore.Cluster) error {
	return c.Delete("users", "u1") // want `Cluster\.Delete mutates a base table outside the core\.Maintainer pipeline`
}

func groupBad(c *kvstore.Cluster) error {
	return c.GroupWrite(nil) // want `Cluster\.GroupWrite mutates a base table outside the core\.Maintainer pipeline`
}

// readsAreFine: non-mutating calls are out of scope.
func readsAreFine(c *kvstore.Cluster) error {
	if _, err := c.Get("users", "u1"); err != nil {
		return err
	}
	_, err := c.Scan("users")
	return err
}

// viaMaintainer routes through the pipeline: clean.
func viaMaintainer(m *core.Maintainer) error {
	return m.Apply(nil)
}

// bulkLoad is a sanctioned bypass: it rebuilds every index after
// loading, and the suppression documents that.
func bulkLoad(c *kvstore.Cluster) error {
	//lint:allow maintcheck bulk load rebuilds all indexes afterwards
	return c.BatchPut("users", 1000)
}

// otherPut: same method name on an unrelated type is out of scope.
type sink struct{}

func (s *sink) Put(a, b, c string) error { return nil }

func otherPut(s *sink) error {
	return s.Put("a", "b", "c")
}

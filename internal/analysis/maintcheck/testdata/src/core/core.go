// Package core stubs the maintainer pipeline: its methods are the one
// sanctioned funnel for base-table mutations.
package core

import "kvstore"

type Maintainer struct {
	C *kvstore.Cluster
}

// Apply is the write-through funnel: mutations inside Maintainer
// methods are sanctioned.
func (m *Maintainer) Apply(muts []kvstore.Mutation) error {
	return m.C.GroupWrite(muts)
}

// repairIndex is also a Maintainer method, so direct mutation is fine.
func (m *Maintainer) repairIndex(table, row string) error {
	return m.C.MutateRow(table, row)
}

// RebuildAll is a plain function in core, not a Maintainer method: it
// bypasses the pipeline.
func RebuildAll(c *kvstore.Cluster, table string) error {
	return c.BatchPut(table, 0) // want `outside the core\.Maintainer pipeline`
}

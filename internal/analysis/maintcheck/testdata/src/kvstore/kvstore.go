// Package kvstore stubs the cluster API for maintcheck fixtures; the
// analyzer matches Cluster by type and package name.
package kvstore

type Mutation struct{}

type Cluster struct{}

func (c *Cluster) Put(table, row, val string) error      { return nil }
func (c *Cluster) Delete(table, row string) error        { return nil }
func (c *Cluster) MutateRow(table, row string) error     { return nil }
func (c *Cluster) BatchPut(table string, n int) error    { return nil }
func (c *Cluster) GroupWrite(muts []Mutation) error      { return nil }
func (c *Cluster) Get(table, row string) (string, error) { return "", nil }
func (c *Cluster) Scan(table string) ([]string, error)   { return nil, nil }

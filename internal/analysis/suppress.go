package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression is one parsed //lint:allow comment.
//
// Grammar:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory — a suppression without one is itself
// reported, so every silenced finding carries its justification in the
// tree. A suppression covers findings of the named analyzer that land
// on its own line, on the line directly below it, or anywhere inside
// the function whose doc comment it belongs to.
type Suppression struct {
	Pos      token.Pos
	Analyzer string
	Reason   string
}

// SuppressedDiagnostic pairs a silenced finding with the suppression
// that covered it, so drivers can count and display both.
type SuppressedDiagnostic struct {
	Diagnostic  Diagnostic
	Suppression Suppression
}

var allowRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_-]+)(?:\s+(.*))?$`)

// CollectSuppressions parses every //lint:allow comment in the files.
// Malformed suppressions (no analyzer, or no reason) are returned with
// an empty Reason so the driver can flag them: the suite's contract is
// zero unexplained suppressions.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) []Suppression {
	var out []Suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				out = append(out, Suppression{
					Pos:      c.Pos(),
					Analyzer: m[1],
					Reason:   strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return out
}

// ApplySuppressions splits diags into kept findings and suppressed ones.
// A finding is suppressed when a //lint:allow comment for its analyzer
// is (a) on the same line, (b) on the line directly above, or (c) part
// of the doc comment of the innermost function declaration enclosing
// the finding.
func ApplySuppressions(fset *token.FileSet, files []*ast.File, sups []Suppression, diags []Diagnostic) ([]Diagnostic, []SuppressedDiagnostic) {
	if len(sups) == 0 {
		return diags, nil
	}
	// Index suppressions by (file, line).
	type key struct {
		file string
		line int
	}
	byLine := map[key]Suppression{}
	for _, s := range sups {
		p := fset.Position(s.Pos)
		byLine[key{p.Filename, p.Line}] = s
	}
	// Index function spans whose doc comment carries a suppression.
	type span struct {
		start, end token.Pos
		sup        Suppression
	}
	var funcSpans []span
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				return true
			}
			for _, c := range fd.Doc.List {
				if m := allowRe.FindStringSubmatch(c.Text); m != nil {
					funcSpans = append(funcSpans, span{
						start: fd.Pos(),
						end:   fd.End(),
						sup:   Suppression{Pos: c.Pos(), Analyzer: m[1], Reason: strings.TrimSpace(m[2])},
					})
				}
			}
			return true
		})
	}

	var kept []Diagnostic
	var suppressed []SuppressedDiagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		if s, ok := byLine[key{p.Filename, p.Line}]; ok && s.Analyzer == d.Analyzer {
			suppressed = append(suppressed, SuppressedDiagnostic{d, s})
			continue
		}
		if s, ok := byLine[key{p.Filename, p.Line - 1}]; ok && s.Analyzer == d.Analyzer {
			suppressed = append(suppressed, SuppressedDiagnostic{d, s})
			continue
		}
		covered := false
		for _, fs := range funcSpans {
			if fs.sup.Analyzer == d.Analyzer && d.Pos >= fs.start && d.Pos < fs.end {
				suppressed = append(suppressed, SuppressedDiagnostic{d, fs.sup})
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}

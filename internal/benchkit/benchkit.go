// Package benchkit assembles the paper's evaluation workloads (Section
// 7.1) for the benchmark harness: TPC-H data loaded into a simulated
// cluster, all four index families built with the paper's parameters,
// and runners that regenerate every figure's series — query time,
// network bandwidth, and dollar cost for Q1/Q2 across k, plus indexing
// time (Fig. 9), index sizes, reducer memory, and the online-update
// overhead experiment.
package benchkit

import (
	"fmt"
	"sort"
	"time"

	rankjoin "repro"
	"repro/internal/sim"
	"repro/internal/tpch"
)

// Env is one loaded evaluation environment (cluster + data + indexes).
type Env struct {
	Profile sim.Profile
	SF      float64
	DB      *rankjoin.DB
	Q1      rankjoin.Query // Part x Lineitem ON PartKey, product
	Q2      rankjoin.Query // Orders x Lineitem ON OrderKey, sum
	// ISLBatch is 1% of the lineitem row count (the paper's batching).
	ISLBatch int
	// BuildCost records the indexing cost per algorithm (Fig. 9).
	BuildCost map[rankjoin.Algorithm]sim.Snapshot
	// Data is the generated TPC-H instance (update experiments draw
	// mutations from it).
	Data *tpch.Data

	counts struct{ parts, orders, lineitems int }
}

// KValues are the paper's evaluated result sizes.
var KValues = []int{1, 10, 100, 1000}

// Algorithms in figure order.
var Algorithms = []rankjoin.Algorithm{
	rankjoin.AlgoHive, rankjoin.AlgoPig, rankjoin.AlgoIJLMR,
	rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoDRJN,
}

// LCAlgorithms is the subset the paper plots for the big-scale lab
// cluster runs ("for presentation clarity we omit specific results" for
// IJLMR/PIG/HIVE on LC).
var LCAlgorithms = []rankjoin.Algorithm{
	rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoDRJN,
}

// Setup generates TPC-H data at the scale factor, loads it, and builds
// every index with the paper's parameters (BFHM: 100 buckets, 5% FPP;
// DRJN: 100 score bands; ISL batch = 1%).
func Setup(profile sim.Profile, sf float64, seed int64) (*Env, error) {
	db, err := rankjoin.Open(rankjoin.Config{Profile: &profile})
	if err != nil {
		return nil, err
	}
	return load(db, profile, sf, seed)
}

// SetupAt is Setup against a durable directory. An empty directory is
// generated, loaded, and indexed exactly like Setup (one slow first
// run); a directory that already holds the environment is recovered
// as-is — tables and index descriptors come back from the manifest and
// catalog with no regeneration, reload, or rebuild, so recovered=true
// runs skip the whole build. Pass the same sf and seed as the run that
// populated the directory: the TPC-H instance backing the update
// experiments is regenerated deterministically from them, and BuildCost
// is empty on the recovered path (nothing was built).
func SetupAt(profile sim.Profile, sf float64, seed int64, dir string) (env *Env, recovered bool, err error) {
	db, err := rankjoin.OpenAt(rankjoin.Config{Profile: &profile, Dir: dir})
	if err != nil {
		return nil, false, err
	}
	if len(db.RelationNames()) == 0 {
		env, err = load(db, profile, sf, seed)
		if err != nil {
			_ = db.Close()
			return nil, false, err
		}
		return env, false, nil
	}
	env, err = recoverEnv(db, profile, sf, seed)
	if err != nil {
		_ = db.Close()
		return nil, false, err
	}
	return env, true, nil
}

// recoverEnv reassembles an Env from a recovered DB: the relations,
// tables, and indexes already exist; only the queries, batch sizing,
// and the deterministic TPC-H instance are reconstructed.
func recoverEnv(db *rankjoin.DB, profile sim.Profile, sf float64, seed int64) (*Env, error) {
	for _, name := range []string{"part", "orders", "lineitem_pk", "lineitem_ok"} {
		if db.Relation(name) == nil {
			return nil, fmt.Errorf("benchkit: recovered directory lacks relation %q (relations: %v)",
				name, db.RelationNames())
		}
	}
	data := tpch.Generate(sf, seed)
	env := &Env{
		Profile:   profile,
		SF:        sf,
		DB:        db,
		Data:      data,
		BuildCost: map[rankjoin.Algorithm]sim.Snapshot{},
	}
	env.counts.parts = len(data.Parts)
	env.counts.orders = len(data.Orders)
	env.counts.lineitems = len(data.Lineitems)
	env.ISLBatch = len(data.Lineitems) / 100
	if env.ISLBatch < 1 {
		env.ISLBatch = 1
	}
	var err error
	env.Q1, err = db.NewQuery("part", "lineitem_pk", rankjoin.Product, 10)
	if err != nil {
		return nil, err
	}
	env.Q2, err = db.NewQuery("orders", "lineitem_ok", rankjoin.Sum, 10)
	if err != nil {
		return nil, err
	}
	return env, nil
}

// load populates a fresh DB with the generated TPC-H instance and
// builds every index family.
func load(db *rankjoin.DB, profile sim.Profile, sf float64, seed int64) (*Env, error) {
	data := tpch.Generate(sf, seed)
	env := &Env{
		Profile:   profile,
		SF:        sf,
		DB:        db,
		Data:      data,
		BuildCost: map[rankjoin.Algorithm]sim.Snapshot{},
	}
	env.counts.parts = len(data.Parts)
	env.counts.orders = len(data.Orders)
	env.counts.lineitems = len(data.Lineitems)
	env.ISLBatch = len(data.Lineitems) / 100
	if env.ISLBatch < 1 {
		env.ISLBatch = 1
	}

	// Load the four relation views (lineitem appears under both join
	// attributes, as the paper indexes each join column).
	part, err := db.DefineRelation("part")
	if err != nil {
		return nil, err
	}
	orders, err := db.DefineRelation("orders")
	if err != nil {
		return nil, err
	}
	liPK, err := db.DefineRelation("lineitem_pk")
	if err != nil {
		return nil, err
	}
	liOK, err := db.DefineRelation("lineitem_ok")
	if err != nil {
		return nil, err
	}
	var pt, ot, lp, lo []rankjoin.Tuple
	for i := range data.Parts {
		r := &data.Parts[i]
		pt = append(pt, rankjoin.Tuple{RowKey: tpch.RowKeyPart(r.PartKey), JoinValue: fmt.Sprint(r.PartKey), Score: r.Score})
	}
	for i := range data.Orders {
		r := &data.Orders[i]
		ot = append(ot, rankjoin.Tuple{RowKey: tpch.RowKeyOrder(r.OrderKey), JoinValue: fmt.Sprint(r.OrderKey), Score: r.Score})
	}
	for i := range data.Lineitems {
		r := &data.Lineitems[i]
		key := tpch.RowKeyLineitem(r.OrderKey, r.LineNumber)
		lp = append(lp, rankjoin.Tuple{RowKey: key, JoinValue: fmt.Sprint(r.PartKey), Score: r.Score})
		lo = append(lo, rankjoin.Tuple{RowKey: key, JoinValue: fmt.Sprint(r.OrderKey), Score: r.Score})
	}
	for _, ld := range []struct {
		h *rankjoin.RelationHandle
		t []rankjoin.Tuple
	}{{part, pt}, {orders, ot}, {liPK, lp}, {liOK, lo}} {
		if err := ld.h.BulkLoad(ld.t); err != nil {
			return nil, err
		}
	}

	env.Q1, err = db.NewQuery("part", "lineitem_pk", rankjoin.Product, 10)
	if err != nil {
		return nil, err
	}
	env.Q2, err = db.NewQuery("orders", "lineitem_ok", rankjoin.Sum, 10)
	if err != nil {
		return nil, err
	}

	// Build each index family separately so Fig. 9 gets per-algorithm
	// indexing costs.
	m := db.Metrics()
	for _, algo := range []rankjoin.Algorithm{rankjoin.AlgoIJLMR, rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoDRJN} {
		before := m.Snapshot()
		if err := db.EnsureIndexes(env.Q1, algo); err != nil {
			return nil, err
		}
		if err := db.EnsureIndexes(env.Q2, algo); err != nil {
			return nil, err
		}
		env.BuildCost[algo] = m.Snapshot().Sub(before)
	}
	return env, nil
}

// Counts reports the loaded table cardinalities.
func (e *Env) Counts() (parts, orders, lineitems int) {
	return e.counts.parts, e.counts.orders, e.counts.lineitems
}

// Run executes one query configuration.
func (e *Env) Run(q rankjoin.Query, algo rankjoin.Algorithm, k int) (*rankjoin.Result, error) {
	return e.DB.TopK(q.WithK(k), algo, &rankjoin.QueryOptions{ISLBatch: e.ISLBatch})
}

// Cell is one figure data point.
type Cell struct {
	Algo rankjoin.Algorithm
	K    int
	Cost sim.Snapshot
}

// Series runs a query across algorithms and k values — the underlying
// measurements for one column of Fig. 7/8 (time, bandwidth, and dollar
// cost all come from the same runs, as in the paper).
func (e *Env) Series(q rankjoin.Query, algos []rankjoin.Algorithm, ks []int) ([]Cell, error) {
	var out []Cell
	for _, algo := range algos {
		for _, k := range ks {
			res, err := e.Run(q, algo, k)
			if err != nil {
				return nil, fmt.Errorf("benchkit: %s k=%d: %w", algo, k, err)
			}
			out = append(out, Cell{Algo: algo, K: k, Cost: res.Cost})
		}
	}
	return out, nil
}

// Metric projects one of the paper's three metrics from a snapshot.
type Metric struct {
	Name string
	Unit string
	Get  func(sim.Snapshot) float64
}

// The three figure metrics.
var (
	MetricTime = Metric{Name: "query time", Unit: "s",
		Get: func(s sim.Snapshot) float64 { return s.SimTime.Seconds() }}
	MetricBandwidth = Metric{Name: "network bandwidth", Unit: "bytes",
		Get: func(s sim.Snapshot) float64 { return float64(s.NetworkBytes) }}
	MetricDollar = Metric{Name: "dollar cost (KV read units)", Unit: "reads",
		Get: func(s sim.Snapshot) float64 { return float64(s.KVReads) }}
)

// FormatTable renders a series as a paper-style table: one row per
// algorithm, one column per k.
func FormatTable(title string, cells []Cell, metric Metric) string {
	ks := map[int]bool{}
	algos := map[rankjoin.Algorithm]bool{}
	for _, c := range cells {
		ks[c.K] = true
		algos[c.Algo] = true
	}
	var kList []int
	for k := range ks {
		kList = append(kList, k)
	}
	sort.Ints(kList)
	var algoList []rankjoin.Algorithm
	for _, a := range Algorithms {
		if algos[a] {
			algoList = append(algoList, a)
		}
	}
	out := fmt.Sprintf("%s — %s [%s]\n", title, metric.Name, metric.Unit)
	out += fmt.Sprintf("%-8s", "algo\\k")
	for _, k := range kList {
		out += fmt.Sprintf(" %14d", k)
	}
	out += "\n"
	for _, a := range algoList {
		out += fmt.Sprintf("%-8s", a)
		for _, k := range kList {
			for _, c := range cells {
				if c.Algo == a && c.K == k {
					out += fmt.Sprintf(" %14.4g", metric.Get(c.Cost))
				}
			}
		}
		out += "\n"
	}
	return out
}

// IndexingReport renders Fig. 9 plus the Section 7.2 size/memory lists.
func (e *Env) IndexingReport() string {
	out := fmt.Sprintf("Indexing costs (profile %s, SF %g)\n", e.Profile.Name, e.SF)
	out += fmt.Sprintf("%-8s %-14s %-14s %-12s\n", "index", "build time", "KV writes", "net bytes")
	for _, algo := range []rankjoin.Algorithm{rankjoin.AlgoIJLMR, rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoDRJN} {
		c := e.BuildCost[algo]
		out += fmt.Sprintf("%-8s %-14v %-14d %-12d\n", algo, c.SimTime.Round(time.Millisecond), c.KVWrites, c.NetworkBytes)
	}
	out += fmt.Sprintf("\nIndex disk sizes (bytes)\n%-8s %-12s %-12s\n", "index", "Q1 pair", "Q2 pair")
	for _, algo := range []rankjoin.Algorithm{rankjoin.AlgoIJLMR, rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoDRJN} {
		out += fmt.Sprintf("%-8s %-12d %-12d\n", algo,
			e.DB.IndexDiskSize(e.Q1, algo), e.DB.IndexDiskSize(e.Q2, algo))
	}
	base := 0
	for _, rel := range []string{"part", "orders", "lineitem_pk", "lineitem_ok"} {
		if h := e.DB.Relation(rel); h != nil {
			base += int(h.DiskSize())
		}
	}
	out += fmt.Sprintf("\nBase data on disk: %d bytes\n", base)
	return out
}

// UpdateExperiment reproduces the Section 7.2 online-updates run:
// apply one TPC-H update set through the Section 6 interception path,
// then query with eager write-back; the overhead is reported against the
// same state with blobs written back offline beforehand.
func (e *Env) UpdateExperiment(setNo int) (overheadPct float64, applied int, err error) {
	liOK := e.DB.Relation("lineitem_ok")
	ordersH := e.DB.Relation("orders")
	muts := e.Data.UpdateSet(setNo, 12345)
	for _, mu := range muts {
		switch {
		case mu.Table == "orders" && mu.Order != nil:
			t := rankjoin.Tuple{
				RowKey:    tpch.RowKeyOrder(mu.Order.OrderKey),
				JoinValue: fmt.Sprint(mu.Order.OrderKey),
				Score:     mu.Order.Score,
			}
			if mu.Insert {
				err = ordersH.Insert(t.RowKey, t.JoinValue, t.Score)
			} else {
				err = ordersH.Delete(t.RowKey, t.JoinValue, t.Score)
			}
		case mu.Table == "lineitem" && mu.Lineitem != nil:
			t := rankjoin.Tuple{
				RowKey:    tpch.RowKeyLineitem(mu.Lineitem.OrderKey, mu.Lineitem.LineNumber),
				JoinValue: fmt.Sprint(mu.Lineitem.OrderKey),
				Score:     mu.Lineitem.Score,
			}
			if mu.Insert {
				err = liOK.Insert(t.RowKey, t.JoinValue, t.Score)
			} else {
				err = liOK.Delete(t.RowKey, t.JoinValue, t.Score)
			}
		}
		if err != nil {
			return 0, applied, err
		}
		applied++
	}

	// Measured run: eager write-back pays for reconstruction now.
	res, err := e.DB.TopK(e.Q2.WithK(10), rankjoin.AlgoBFHM, &rankjoin.QueryOptions{
		ISLBatch:      e.ISLBatch,
		BFHMWriteBack: rankjoin.WriteBackEager,
	})
	if err != nil {
		return 0, applied, err
	}
	dirty := res.Cost.SimTime

	// Baseline: same state, blobs already clean.
	res2, err := e.DB.TopK(e.Q2.WithK(10), rankjoin.AlgoBFHM, &rankjoin.QueryOptions{
		ISLBatch: e.ISLBatch,
	})
	if err != nil {
		return 0, applied, err
	}
	clean := res2.Cost.SimTime
	if clean == 0 {
		return 0, applied, nil
	}
	return float64(dirty-clean) / float64(clean) * 100, applied, nil
}

// MixedWorkloadReport runs the mixed read/write experiment: scripted
// online inserts, updates, and deletes flow through the write-through
// maintenance pipeline (every index of the touched relations maintained
// per write, one batched group mutation each) while top-k queries
// interleave. It reports:
//
//   - write throughput (wall mutations/sec and simulated write time),
//   - write-RPC economy: the batched pipeline's round trips against the
//     per-cell baseline it replaced (one RPC per written cell — exactly
//     the KV-writes count),
//   - a freshness probe: a top-ranked pair planted at the end must be
//     the first result of EVERY executor on the immediately following
//     query, DRJN included, with no rebuild.
func (e *Env) MixedWorkloadReport(writes, interleaveEvery int) (string, error) {
	ordersH := e.DB.Relation("orders")
	liOK := e.DB.Relation("lineitem_ok")
	if ordersH == nil || liOK == nil {
		return "", fmt.Errorf("benchkit: orders/lineitem_ok not loaded")
	}

	m := e.DB.Metrics()
	before := m.Snapshot()
	start := time.Now()
	var readTime time.Duration
	var readCost sim.Snapshot
	reads := 0
	applied := 0
	for i := 0; i < writes; i++ {
		var err error
		switch i % 4 {
		case 0: // fresh order
			err = ordersH.Insert(fmt.Sprintf("omix%06d", i), fmt.Sprintf("9%06d", i), float64(i%997)/997)
		case 1: // fresh lineitem joining it
			err = liOK.Insert(fmt.Sprintf("limix%06d", i), fmt.Sprintf("9%06d", i-1), float64(i%883)/883)
		case 2: // re-score the order written two steps ago
			err = ordersH.Update(fmt.Sprintf("omix%06d", i-2), fmt.Sprintf("9%06d", i-2), float64(i%769)/769)
		default: // retire every other cycle's order, re-score lineitems otherwise
			if i%8 == 3 {
				err = ordersH.DeleteKey(fmt.Sprintf("omix%06d", i-3))
			} else {
				err = liOK.Update(fmt.Sprintf("limix%06d", i-2), fmt.Sprintf("9%06d", i-3), float64(i%641)/641)
			}
		}
		if err != nil {
			return "", fmt.Errorf("benchkit: mixed write %d: %w", i, err)
		}
		applied++
		if interleaveEvery > 0 && i%interleaveEvery == interleaveEvery-1 {
			rb := m.Snapshot()
			rs := time.Now()
			if _, err := e.Run(e.Q2, rankjoin.AlgoISL, 10); err != nil {
				return "", fmt.Errorf("benchkit: interleaved read: %w", err)
			}
			readTime += time.Since(rs)
			readCost = readCost.Add(m.Snapshot().Sub(rb))
			reads++
		}
	}
	wall := time.Since(start) - readTime
	d := m.Snapshot().Sub(before).Sub(readCost)

	out := fmt.Sprintf("Mixed read/write workload (profile %s, SF %g)\n", e.Profile.Name, e.SF)
	out += fmt.Sprintf("  %d maintained writes in %v wall (%.0f writes/sec), %d interleaved top-10 reads\n",
		applied, wall.Round(time.Millisecond), float64(applied)/wall.Seconds(), reads)
	out += fmt.Sprintf("  simulated write cost: %v, %d KV cells written\n",
		d.SimTime.Round(time.Microsecond), d.KVWrites)
	writeRPCs := d.RPCCalls - uint64(applied) // upserts pay one existence-read RPC each
	out += fmt.Sprintf("  write RPCs: %d batched group writes vs %d per-cell puts (%.1fx fewer round trips)\n",
		writeRPCs, d.KVWrites, float64(d.KVWrites)/float64(writeRPCs))

	// Freshness probe: plant a pair that must rank first everywhere.
	if err := ordersH.Insert("ofresh", "zfreshmix", 1.0); err != nil {
		return "", err
	}
	if err := liOK.Insert("lifresh", "zfreshmix", 1.0); err != nil {
		return "", err
	}
	out += "  freshness (write -> immediate top-1 query):\n"
	algos := append([]rankjoin.Algorithm{rankjoin.AlgoNaive}, Algorithms...)
	for _, algo := range algos {
		res, err := e.Run(e.Q2, algo, 1)
		if err != nil {
			return "", fmt.Errorf("benchkit: freshness %s: %w", algo, err)
		}
		if len(res.Results) == 0 || res.Results[0].Score < 2.0-1e-9 {
			return "", fmt.Errorf("benchkit: %s is STALE after write (top = %+v)", algo, res.Results)
		}
		out += fmt.Sprintf("    %-6s sees the write (top score %.3f, %v)\n",
			algo, res.Results[0].Score, res.Cost.SimTime.Round(time.Microsecond))
	}
	return out, nil
}

// PagingReport runs the deep-pagination scenario: one top-k query, then
// further pages resumed through page tokens, recording the marginal
// cost of every page. For comparison it also measures what a client
// without tokens pays — re-running TopK at the growing depth for each
// page — so the report shows what resumable cursor state saves.
func (e *Env) PagingReport(q rankjoin.Query, algos []rankjoin.Algorithm, k, pages int) (string, error) {
	out := fmt.Sprintf("Deep pagination: %d pages x k=%d (per-page marginal cost via page tokens)\n", pages, k)
	for _, algo := range algos {
		opts := &rankjoin.QueryOptions{ISLBatch: e.ISLBatch}
		var pageReads []uint64
		var pageTimes []time.Duration
		var totalReads uint64
		var totalTime time.Duration
		got := 0
		for page := 0; page < pages; page++ {
			res, err := e.DB.TopK(q.WithK(k), algo, opts)
			if err != nil {
				return "", fmt.Errorf("%s page %d: %w", algo, page, err)
			}
			got += len(res.Results)
			pageReads = append(pageReads, res.Cost.KVReads)
			pageTimes = append(pageTimes, res.Cost.SimTime)
			totalReads += res.Cost.KVReads
			totalTime += res.Cost.SimTime
			if res.NextPageToken == "" {
				break
			}
			opts = &rankjoin.QueryOptions{ISLBatch: e.ISLBatch, PageToken: res.NextPageToken}
		}

		// The tokenless alternative: re-run at depth i*k per page.
		var rerunReads uint64
		var rerunTime time.Duration
		for i := 1; i <= pages; i++ {
			res, err := e.DB.TopK(q.WithK(k*i), algo, &rankjoin.QueryOptions{ISLBatch: e.ISLBatch})
			if err != nil {
				return "", fmt.Errorf("%s rerun %d: %w", algo, i, err)
			}
			rerunReads += res.Cost.KVReads
			rerunTime += res.Cost.SimTime
		}

		out += fmt.Sprintf("  %-6s %3d results: paged %d read units / %v total",
			algo, got, totalReads, totalTime.Round(time.Microsecond))
		if totalReads > 0 {
			out += fmt.Sprintf("  (vs %d units / %v re-running per page, %.1fx reads saved)",
				rerunReads, rerunTime.Round(time.Microsecond), float64(rerunReads)/float64(totalReads))
		}
		out += "\n    per-page read units:"
		for _, r := range pageReads {
			out += fmt.Sprintf(" %d", r)
		}
		out += "\n"
	}
	return out, nil
}

package benchkit

import (
	"fmt"
	"math"
	"math/rand"

	rankjoin "repro"
	"repro/internal/sim"
)

// Chain evaluation: the any-k executor against the doubling-depth
// adapter on multi-relation chain queries. A chain of n relations joins
// leaf i to leaf i+1 with a band predicate over numeric join values —
// the shape the generalized tree model admits that neither the binary
// nor the star query could express. AlgoAnyK streams results from ISL
// prefixes per leaf; AlgoNaive reaches the same answers through the
// materializing cursor adapter, which re-runs the full-scan tree join
// at doubled depths. The gap between the two read-unit columns is the
// point of the figure: any-k's cost tracks k, the adapter's tracks
// total table size.

// chainBand is the band width of every chain edge. Join values are
// uniform integers in [0, rows), so each tuple expects about
// 3*rows/rows = 3 band partners per neighboring leaf — dense enough
// that every chain has far more than k results, sparse enough that the
// naive tree join stays tractable at five leaves.
const chainBand = 1.0

// ChainKValues are the k points of the chain figure.
var ChainKValues = []int{1, 10, 100}

// ChainLengths are the chain sizes (relation counts) of the figure.
var ChainLengths = []int{3, 4, 5}

// ChainEnv is a loaded chain-benchmark environment: one relation per
// possible leaf and one band-edge chain query per measured length.
type ChainEnv struct {
	Profile sim.Profile
	Rows    int
	DB      *rankjoin.DB
	// Queries maps chain length (relation count) to its tree query.
	Queries map[int]rankjoin.Query
	// ISLBatch mirrors Env: ~1% of the per-leaf row count, min 1.
	ISLBatch int
}

// SetupChain loads max(ChainLengths) relations of rows synthetic
// tuples each and builds the band-edge chain query for every measured
// length, plus the any-k index over each query's leaves.
func SetupChain(profile sim.Profile, rows int, seed int64) (*ChainEnv, error) {
	db, err := rankjoin.Open(rankjoin.Config{Profile: &profile})
	if err != nil {
		return nil, err
	}
	env := &ChainEnv{
		Profile:  profile,
		Rows:     rows,
		DB:       db,
		Queries:  map[int]rankjoin.Query{},
		ISLBatch: rows / 100,
	}
	if env.ISLBatch < 1 {
		env.ISLBatch = 1
	}

	nLeaves := 0
	for _, n := range ChainLengths {
		if n > nLeaves {
			nLeaves = n
		}
	}
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, nLeaves)
	for i := 0; i < nLeaves; i++ {
		names[i] = fmt.Sprintf("c%d", i)
		rel, err := db.DefineRelation(names[i])
		if err != nil {
			return nil, err
		}
		tuples := make([]rankjoin.Tuple, rows)
		for j := range tuples {
			tuples[j] = rankjoin.Tuple{
				RowKey:    fmt.Sprintf("c%d-%06d", i, j),
				JoinValue: fmt.Sprintf("%d", rng.Intn(rows)),
				Score:     math.Round(rng.Float64()*1e6) / 1e6,
			}
		}
		if err := rel.BulkLoad(tuples); err != nil {
			return nil, fmt.Errorf("benchkit: load %s: %w", names[i], err)
		}
	}

	for _, n := range ChainLengths {
		edges := make([]rankjoin.TreeEdge, n-1)
		for i := range edges {
			edges[i] = rankjoin.TreeEdge{A: i, B: i + 1, Kind: rankjoin.PredBand, Band: chainBand}
		}
		q, err := db.NewTreeQuery(names[:n], edges, rankjoin.SumN, 10)
		if err != nil {
			return nil, err
		}
		if err := db.EnsureIndexes(q, rankjoin.AlgoAnyK); err != nil {
			return nil, err
		}
		env.Queries[n] = q
	}
	return env, nil
}

// Close releases the environment's DB.
func (e *ChainEnv) Close() error { return e.DB.Close() }

// ChainSeries measures one chain length across both executors and all
// ChainKValues, checking that the adapter and any-k agree on every
// result score before trusting either cost column.
func (e *ChainEnv) ChainSeries(n int) ([]Cell, error) {
	q, ok := e.Queries[n]
	if !ok {
		return nil, fmt.Errorf("benchkit: no chain query of length %d", n)
	}
	var out []Cell
	for _, algo := range []rankjoin.Algorithm{rankjoin.AlgoAnyK, rankjoin.AlgoNaive} {
		for _, k := range ChainKValues {
			res, err := e.DB.TopK(q.WithK(k), algo, &rankjoin.QueryOptions{ISLBatch: e.ISLBatch})
			if err != nil {
				return nil, fmt.Errorf("benchkit: chain%d %s k=%d: %w", n, algo, k, err)
			}
			out = append(out, Cell{Algo: algo, K: k, Cost: res.Cost})
		}
	}
	if err := e.checkAgreement(n, out); err != nil {
		return nil, err
	}
	return out, nil
}

// checkAgreement re-runs both executors at the largest k and compares
// result scores — a cheap cross-check that the adapter and any-k are
// answering the same query before their costs are compared.
func (e *ChainEnv) checkAgreement(n int, cells []Cell) error {
	q := e.Queries[n]
	k := ChainKValues[len(ChainKValues)-1]
	opts := &rankjoin.QueryOptions{ISLBatch: e.ISLBatch}
	a, err := e.DB.TopK(q.WithK(k), rankjoin.AlgoAnyK, opts)
	if err != nil {
		return err
	}
	b, err := e.DB.TopK(q.WithK(k), rankjoin.AlgoNaive, opts)
	if err != nil {
		return err
	}
	if len(a.Results) != len(b.Results) {
		return fmt.Errorf("benchkit: chain%d disagreement: anyk %d results, adapter %d",
			n, len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if math.Abs(a.Results[i].Score-b.Results[i].Score) > 1e-9 {
			return fmt.Errorf("benchkit: chain%d result %d: anyk score %v, adapter score %v",
				n, i, a.Results[i].Score, b.Results[i].Score)
		}
	}
	return nil
}

// ChainReport runs the full chain figure: every length in ChainLengths
// at every k in ChainKValues under both executors. It returns the
// rendered tables and a snapshot whose series are keyed "chain<n>",
// ready to write as a BENCH_<n>.json trajectory file.
func ChainReport(profile sim.Profile, rows int, seed int64) (string, *Snapshot, error) {
	env, err := SetupChain(profile, rows, seed)
	if err != nil {
		return "", nil, err
	}
	defer env.Close()

	snap := NewSnapshot()
	snap.ScaleFactors["chain-rows-per-leaf"] = float64(rows)
	report := fmt.Sprintf("Chain queries: any-k vs doubling-depth adapter (%d rows/leaf, band %.3g)\n\n",
		rows, chainBand)
	for _, n := range ChainLengths {
		cells, err := env.ChainSeries(n)
		if err != nil {
			return "", nil, err
		}
		snap.AddSeries(fmt.Sprintf("chain%d", n), cells)
		title := fmt.Sprintf("%d-relation band chain", n)
		report += formatChainTable(title, cells, MetricDollar)
		report += formatChainTable(title, cells, MetricTime)
		report += "\n"
	}
	return report, snap, nil
}

// formatChainTable is FormatTable over the chain's two executors
// (AlgoAnyK is not in the figure-7/8 Algorithms list FormatTable
// orders by, so the chain figure keeps its own row order).
func formatChainTable(title string, cells []Cell, metric Metric) string {
	out := fmt.Sprintf("%s — %s [%s]\n", title, metric.Name, metric.Unit)
	out += fmt.Sprintf("%-8s", "algo\\k")
	for _, k := range ChainKValues {
		out += fmt.Sprintf(" %14d", k)
	}
	out += "\n"
	for _, a := range []rankjoin.Algorithm{rankjoin.AlgoAnyK, rankjoin.AlgoNaive} {
		out += fmt.Sprintf("%-8s", a)
		for _, k := range ChainKValues {
			for _, c := range cells {
				if c.Algo == a && c.K == k {
					out += fmt.Sprintf(" %14.4g", metric.Get(c.Cost))
				}
			}
		}
		out += "\n"
	}
	return out
}

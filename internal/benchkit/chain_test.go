package benchkit

import (
	"testing"

	rankjoin "repro"
	"repro/internal/sim"
)

// TestChainAnyKBeatsAdapterReadUnits pins the acceptance criterion of
// the any-k executor: on a 4-relation band chain at k=10 it must spend
// strictly fewer read units than the doubling-depth adapter, because
// any-k touches only the ISL prefixes the top results need while the
// adapter's materializing re-runs scan every leaf in full.
func TestChainAnyKBeatsAdapterReadUnits(t *testing.T) {
	env, err := SetupChain(sim.LC(), 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	cells, err := env.ChainSeries(4)
	if err != nil {
		t.Fatal(err)
	}
	reads := map[rankjoin.Algorithm]uint64{}
	for _, c := range cells {
		if c.K == 10 {
			reads[c.Algo] = c.Cost.KVReads
		}
	}
	anyk, ok := reads[rankjoin.AlgoAnyK]
	if !ok {
		t.Fatal("no anyk cell at k=10")
	}
	adapter, ok := reads[rankjoin.AlgoNaive]
	if !ok {
		t.Fatal("no adapter cell at k=10")
	}
	t.Logf("4-relation chain k=10: anyk=%d read units, adapter=%d", anyk, adapter)
	if anyk >= adapter {
		t.Fatalf("anyk spent %d read units, adapter %d: want anyk strictly fewer", anyk, adapter)
	}
}

// TestChainReportShape runs the full chain figure at a small scale and
// checks the snapshot carries every chain<n> series with both
// executors at every k.
func TestChainReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("chain figure is slow in -short mode")
	}
	report, snap, err := ChainReport(sim.LC(), 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report == "" {
		t.Fatal("empty chain report")
	}
	for _, n := range ChainLengths {
		key := "chain" + string(rune('0'+n))
		pts := snap.Series[key]
		want := 2 * len(ChainKValues)
		if len(pts) != want {
			t.Errorf("series %s has %d points, want %d", key, len(pts), want)
		}
		for _, p := range pts {
			if p.KVReads == 0 {
				t.Errorf("series %s %s k=%d: zero read units", key, p.Algo, p.K)
			}
		}
	}
}

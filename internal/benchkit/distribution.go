package benchkit

import (
	"encoding/json"
	"fmt"
	"os"

	rankjoin "repro"
	"repro/internal/sim"
	"repro/internal/tpch"
)

// Distributed evaluation: the same TPC-H workload served by a
// replicated multi-node topology through the transport seam. The
// distribution figure compares each executor's cost on a 3-node
// replicated cluster against the single-process baseline (replicas are
// byte-identical, so results must match exactly), then measures the
// anti-entropy repair economy: how few cells a scoped Merkle repair
// ships to re-converge a replica that missed writes, against the full
// table a blind resync would copy.

// DistEnv is one loaded distributed evaluation environment.
type DistEnv struct {
	Profile sim.Profile
	SF      float64
	D       *rankjoin.Distributed
	Q1      rankjoin.Query // Part x Lineitem ON PartKey, product
	Q2      rankjoin.Query // Orders x Lineitem ON OrderKey, sum
	// ISLBatch mirrors Env: 1% of the lineitem row count.
	ISLBatch int
	// Data is the generated TPC-H instance.
	Data *tpch.Data

	counts struct{ parts, orders, lineitems int }
}

// distBatch chunks replicated bulk loads: each chunk is one group
// WriteOp on the wire, and TCP frames carry whole chunks, so the size
// keeps frames well under the transport cap while still amortizing the
// replication round trip.
const distBatch = 4000

// SetupDistributed generates TPC-H data at the scale factor, loads it
// through the replication protocol (every replica applies identical
// resolved writes), and builds every index family on every covering
// node — the distributed mirror of Setup.
func SetupDistributed(profile sim.Profile, sf float64, seed int64, topo *rankjoin.Topology) (*DistEnv, error) {
	d, err := rankjoin.OpenDistributed(rankjoin.Config{Profile: &profile, Topology: topo})
	if err != nil {
		return nil, err
	}
	env, err := loadDistributed(d, profile, sf, seed)
	if err != nil {
		_ = d.Close()
		return nil, err
	}
	return env, nil
}

func loadDistributed(d *rankjoin.Distributed, profile sim.Profile, sf float64, seed int64) (*DistEnv, error) {
	data := tpch.Generate(sf, seed)
	env := &DistEnv{Profile: profile, SF: sf, D: d, Data: data}
	env.counts.parts = len(data.Parts)
	env.counts.orders = len(data.Orders)
	env.counts.lineitems = len(data.Lineitems)
	env.ISLBatch = len(data.Lineitems) / 100
	if env.ISLBatch < 1 {
		env.ISLBatch = 1
	}

	var pt, ot, lp, lo []rankjoin.Tuple
	for i := range data.Parts {
		r := &data.Parts[i]
		pt = append(pt, rankjoin.Tuple{RowKey: tpch.RowKeyPart(r.PartKey), JoinValue: fmt.Sprint(r.PartKey), Score: r.Score})
	}
	for i := range data.Orders {
		r := &data.Orders[i]
		ot = append(ot, rankjoin.Tuple{RowKey: tpch.RowKeyOrder(r.OrderKey), JoinValue: fmt.Sprint(r.OrderKey), Score: r.Score})
	}
	for i := range data.Lineitems {
		r := &data.Lineitems[i]
		key := tpch.RowKeyLineitem(r.OrderKey, r.LineNumber)
		lp = append(lp, rankjoin.Tuple{RowKey: key, JoinValue: fmt.Sprint(r.PartKey), Score: r.Score})
		lo = append(lo, rankjoin.Tuple{RowKey: key, JoinValue: fmt.Sprint(r.OrderKey), Score: r.Score})
	}
	for _, ld := range []struct {
		name string
		t    []rankjoin.Tuple
	}{{"part", pt}, {"orders", ot}, {"lineitem_pk", lp}, {"lineitem_ok", lo}} {
		rel, err := d.DefineRelation(ld.name)
		if err != nil {
			return nil, err
		}
		for lo := 0; lo < len(ld.t); lo += distBatch {
			hi := lo + distBatch
			if hi > len(ld.t) {
				hi = len(ld.t)
			}
			if err := rel.BatchInsert(ld.t[lo:hi]); err != nil {
				return nil, fmt.Errorf("benchkit: load %s: %w", ld.name, err)
			}
		}
	}

	var err error
	env.Q1, err = d.NewQuery("part", "lineitem_pk", rankjoin.Product, 10)
	if err != nil {
		return nil, err
	}
	env.Q2, err = d.NewQuery("orders", "lineitem_ok", rankjoin.Sum, 10)
	if err != nil {
		return nil, err
	}
	for _, algo := range []rankjoin.Algorithm{rankjoin.AlgoIJLMR, rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoDRJN} {
		if err := d.EnsureIndexes(env.Q1, algo); err != nil {
			return nil, err
		}
		if err := d.EnsureIndexes(env.Q2, algo); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// Counts reports the loaded table cardinalities.
func (e *DistEnv) Counts() (parts, orders, lineitems int) {
	return e.counts.parts, e.counts.orders, e.counts.lineitems
}

// Run executes one query configuration on the cluster.
func (e *DistEnv) Run(q rankjoin.Query, algo rankjoin.Algorithm, k int) (*rankjoin.Result, error) {
	return e.D.TopK(q.WithK(k), algo, &rankjoin.QueryOptions{ISLBatch: e.ISLBatch})
}

// DistPoint compares one (query, algorithm) cell between the
// single-process baseline and the replicated cluster.
type DistPoint struct {
	Query        string  `json:"query"`
	Algo         string  `json:"algo"`
	K            int     `json:"k"`
	SingleTimeMS float64 `json:"single_sim_time_ms"`
	DistTimeMS   float64 `json:"dist_sim_time_ms"`
	SingleReads  uint64  `json:"single_kv_reads"`
	DistReads    uint64  `json:"dist_kv_reads"`
	// Identical reports whether the cluster returned byte-identical
	// results (rows, join values, scores, order) to the baseline.
	Identical bool `json:"identical"`
}

// RepairEconomy measures one scoped anti-entropy repair against the
// blind alternative.
type RepairEconomy struct {
	// MissedWrites is the number of acked upserts the stopped replica
	// never saw.
	MissedWrites int `json:"missed_writes"`
	// ShippedCells is what the scoped Merkle repair actually moved
	// (summed over repaired tables, base and index).
	ShippedCells int `json:"shipped_cells"`
	// TableCells is what a full resync of the repaired tables would
	// have copied.
	TableCells int `json:"table_cells"`
	// Tables is how many tables the pass repaired.
	Tables int `json:"tables_repaired"`
	// Converged reports post-repair Merkle agreement across the group.
	Converged bool `json:"converged"`
}

// DistributionSnapshot is the BENCH_<n>.json payload for the
// distribution figure.
type DistributionSnapshot struct {
	ScaleFactor float64        `json:"scale_factor"`
	Nodes       int            `json:"nodes"`
	Replication string         `json:"replication"`
	Points      []DistPoint    `json:"points"`
	Repair      *RepairEconomy `json:"repair_economy,omitempty"`
}

// WriteFile writes the snapshot as indented JSON.
func (s *DistributionSnapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// sameResults reports byte-identical result lists.
func sameResults(a, b []rankjoin.JoinResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Left != b[i].Left || a[i].Right != b[i].Right || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// DistributionReport runs the distribution figure: the same generated
// instance loaded into a single-process DB and a 3-node fully
// replicated loopback cluster, every executor run on both and checked
// for identical output, then the repair-economy experiment (stop a
// replica, keep writing, restart, scoped Merkle repair). Returns the
// printed report and the JSON snapshot.
func DistributionReport(profile sim.Profile, sf float64, seed int64) (string, *DistributionSnapshot, error) {
	single, err := Setup(profile, sf, seed)
	if err != nil {
		return "", nil, fmt.Errorf("benchkit: single-node setup: %w", err)
	}
	defer single.DB.Close()
	topo := &rankjoin.Topology{
		Nodes: []rankjoin.NodeSpec{{Name: "node0"}, {Name: "node1"}, {Name: "node2"}},
	}
	dist, err := SetupDistributed(profile, sf, seed, topo)
	if err != nil {
		return "", nil, fmt.Errorf("benchkit: distributed setup: %w", err)
	}
	defer dist.D.Close()

	snap := &DistributionSnapshot{ScaleFactor: sf, Nodes: len(topo.Nodes), Replication: "full"}
	p, o, l := dist.Counts()
	out := fmt.Sprintf("Distribution: 3-node replicated cluster vs single process (profile %s, SF %g: %d parts, %d orders, %d lineitems)\n",
		profile.Name, sf, p, o, l)
	out += fmt.Sprintf("%-5s %-6s %14s %14s %12s %12s  %s\n",
		"query", "algo", "single ms", "cluster ms", "single rd", "cluster rd", "identical")
	algos := append([]rankjoin.Algorithm{rankjoin.AlgoNaive}, Algorithms...)
	for _, qc := range []struct {
		name   string
		sq, dq rankjoin.Query
	}{{"q1", single.Q1, dist.Q1}, {"q2", single.Q2, dist.Q2}} {
		for _, algo := range algos {
			sres, err := single.Run(qc.sq, algo, 10)
			if err != nil {
				return "", nil, fmt.Errorf("benchkit: single %s/%s: %w", qc.name, algo, err)
			}
			dres, err := dist.Run(qc.dq, algo, 10)
			if err != nil {
				return "", nil, fmt.Errorf("benchkit: cluster %s/%s: %w", qc.name, algo, err)
			}
			pt := DistPoint{
				Query:        qc.name,
				Algo:         string(algo),
				K:            10,
				SingleTimeMS: float64(sres.Cost.SimTime.Microseconds()) / 1000,
				DistTimeMS:   float64(dres.Cost.SimTime.Microseconds()) / 1000,
				SingleReads:  sres.Cost.KVReads,
				DistReads:    dres.Cost.KVReads,
				Identical:    sameResults(sres.Results, dres.Results),
			}
			snap.Points = append(snap.Points, pt)
			out += fmt.Sprintf("%-5s %-6s %14.3f %14.3f %12d %12d  %v\n",
				pt.Query, pt.Algo, pt.SingleTimeMS, pt.DistTimeMS, pt.SingleReads, pt.DistReads, pt.Identical)
		}
	}

	econ, err := repairEconomy(dist)
	if err != nil {
		return "", nil, err
	}
	snap.Repair = econ
	out += fmt.Sprintf("\nRepair economy: replica down for %d acked writes; scoped Merkle repair shipped %d cells across %d tables (full resync: %d cells, %.1fx more); converged=%v\n",
		econ.MissedWrites, econ.ShippedCells, econ.Tables, econ.TableCells,
		safeRatio(econ.TableCells, econ.ShippedCells), econ.Converged)
	return out, snap, nil
}

func safeRatio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// repairEconomy stops one replica, applies writes it misses, restarts
// it, and measures what the scoped Merkle repair ships to re-converge
// it versus the full tables a blind resync would copy.
func repairEconomy(e *DistEnv) (*RepairEconomy, error) {
	const missed = 20
	orders := e.D.Relation("orders")
	if orders == nil {
		return nil, fmt.Errorf("benchkit: orders not defined on cluster")
	}
	down := e.D.Nodes()[len(e.D.Nodes())-1]
	if err := e.D.StopNode(down); err != nil {
		return nil, err
	}
	for i := 0; i < missed; i++ {
		if err := orders.Insert(fmt.Sprintf("odist%04d", i), fmt.Sprintf("8%05d", i), float64(i%101)/101); err != nil {
			return nil, fmt.Errorf("benchkit: divergence write %d: %w", i, err)
		}
	}
	if err := e.D.StartNode(down); err != nil {
		return nil, err
	}
	rep, err := e.D.Repair()
	if err != nil {
		return nil, fmt.Errorf("benchkit: repair: %w", err)
	}
	econ := &RepairEconomy{MissedWrites: missed, Converged: rep.Converged}
	repaired := map[string]bool{}
	for _, r := range rep.Repairs {
		econ.ShippedCells += r.CellsApplied
		repaired[r.Table] = true
	}
	econ.Tables = len(repaired)
	// Price the blind alternative: every cell of every repaired table.
	db := e.D.NodeDB(e.D.Nodes()[0])
	if db != nil {
		for t := range repaired {
			cells, err := db.Cluster().TableCells(t)
			if err == nil {
				econ.TableCells += len(cells)
			}
		}
	}
	return econ, nil
}

package benchkit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/tpch"
)

// MemoryReport reproduces the Section 7.2 reducer-memory list: the peak
// memory any single reducer needs while building each index. IJLMR and
// ISL build with map-only jobs ("negligible"); BFHM's reducers buffer a
// bucket's tuples while building its filter; DRJN's buffer a band.
func MemoryReport(profile sim.Profile, sf float64, seed int64) (string, error) {
	c, err := kvstore.NewCluster(profile, nil)
	if err != nil {
		return "", err
	}
	data := tpch.Generate(sf, seed)
	if err := tpch.Load(c, data, "orderkey"); err != nil {
		return "", err
	}
	rel := core.Relation{
		Name:      "lineitem",
		Table:     tpch.LineitemT,
		Family:    tpch.DataFamily,
		JoinQual:  tpch.JoinQual,
		ScoreQual: tpch.ScoreQual,
	}

	out := fmt.Sprintf("Reducer memory during index build (profile %s, SF %g, lineitem: %d rows)\n",
		profile.Name, sf, len(data.Lineitems))
	out += fmt.Sprintf("%-22s %-20s\n", "index build", "peak bucket working set (bytes)")

	peak := func(rs []*mapreduce.Result) uint64 {
		var m uint64
		for _, r := range rs {
			if r.PeakReduceGroup > m {
				m = r.PeakReduceGroup
			}
		}
		return m
	}

	ijRes, err := core.BuildIJLMRRelation(c, rel, mustTable(c, "mem_ijlmr", "lineitem"), "lineitem")
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("%-22s %-20d (map-only: negligible)\n", "ijlmr/lineitem", ijRes.PeakReduceGroup)

	islRes, err := core.BuildISLRelation(c, rel, mustTable(c, "mem_isl", "lineitem"), "lineitem")
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("%-22s %-20d (map-only: negligible)\n", "isl/lineitem", islRes.PeakReduceGroup)

	for _, buckets := range []int{100, 500} {
		bRel := rel
		bRel.Name = fmt.Sprintf("lineitem_m%d", buckets)
		_, rs, err := core.BuildBFHM(c, bRel, core.BFHMOptions{NumBuckets: buckets})
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("%-22s %-20d\n", fmt.Sprintf("bfhm/%d buckets", buckets), peak(rs))
	}
	for _, buckets := range []int{100, 500} {
		dRel := rel
		dRel.Name = fmt.Sprintf("lineitem_d%d", buckets)
		_, res, err := core.BuildDRJN(c, dRel, core.DRJNOptions{NumBuckets: buckets, JoinParts: 64})
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("%-22s %-20d\n", fmt.Sprintf("drjn/%d buckets", buckets), res.PeakReduceGroup)
	}
	out += "\nShape under reproduction: map-only IJLMR/ISL builds buffer nothing at\n" +
		"reducers; BFHM reducer memory shrinks as bucket count grows (the paper\n" +
		"measured 4 GB worst-case at 100 buckets vs 2 GB at 500); DRJN reducers\n" +
		"hold only histogram bands.\n"
	return out, nil
}

func mustTable(c *kvstore.Cluster, name, family string) string {
	if _, err := c.CreateTable(name, []string{family}, nil); err != nil {
		panic(err)
	}
	return name
}

package benchkit

import (
	"encoding/json"
	"os"

	"repro/internal/sim"
)

// SeriesPoint is one (algorithm, k) measurement of a figure series,
// projected onto the paper's three metrics.
type SeriesPoint struct {
	Algo         string  `json:"algo"`
	K            int     `json:"k"`
	SimTimeMS    float64 `json:"sim_time_ms"`
	NetworkBytes uint64  `json:"network_bytes"`
	KVReads      uint64  `json:"kv_reads"`
	Dollars      float64 `json:"dollars"`
}

// Snapshot is a machine-readable dump of the figure series rjbench
// measured, committed as BENCH_<n>.json to track the perf trajectory
// across PRs.
type Snapshot struct {
	// ScaleFactors maps profile name to the TPC-H scale factor used.
	ScaleFactors map[string]float64 `json:"scale_factors"`
	// Series maps a series key ("EC2-q1", "LC-q2", ...) to its points.
	Series map[string][]SeriesPoint `json:"series"`
	// Storage compares wall-clock per operation between the in-memory
	// and on-disk storage engines (rjbench -fig storage).
	Storage map[string]StoragePoint `json:"storage,omitempty"`
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		ScaleFactors: map[string]float64{},
		Series:       map[string][]SeriesPoint{},
	}
}

// AddEnv records an environment's profile and scale factor.
func (s *Snapshot) AddEnv(e *Env) {
	if e != nil {
		s.ScaleFactors[e.Profile.Name] = e.SF
	}
}

// AddSeries records one measured series under the given key.
func (s *Snapshot) AddSeries(key string, cells []Cell) {
	pts := make([]SeriesPoint, 0, len(cells))
	for _, c := range cells {
		pts = append(pts, SeriesPoint{
			Algo:         string(c.Algo),
			K:            c.K,
			SimTimeMS:    float64(c.Cost.SimTime.Microseconds()) / 1000,
			NetworkBytes: c.Cost.NetworkBytes,
			KVReads:      c.Cost.KVReads,
			Dollars:      sim.DollarsForReads(c.Cost.KVReads),
		})
	}
	s.Series[key] = pts
}

// WriteFile writes the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package benchkit

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	rankjoin "repro"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// StoragePoint compares one operation's measured wall-clock across the
// two storage modes. Micros are per-operation for point workloads and
// per-run for bulk workloads; Ratio is disk over memory.
type StoragePoint struct {
	MemoryMicros float64 `json:"memory_micros"`
	DiskMicros   float64 `json:"disk_micros"`
	Ratio        float64 `json:"ratio"`
}

// storageRun holds one mode's measurements, keyed like the report.
type storageRun map[string]float64

// StorageOps lists the report's operations in presentation order.
var StorageOps = []string{
	"point_get", "point_get_warm", "scan_10k", "merge_drain",
	"sustained_load", "q1_topk", "q2_topk",
}

// StorageReport benchmarks the storage engine in both modes — the
// in-memory segments the simulator always had, and the PR-7 on-disk
// SSTable path — and reports real wall-clock per operation:
//
//	point_get       cold point reads (first touch of each data block)
//	point_get_warm  the same reads again (block cache hits)
//	scan_10k        full scan of a compacted 10k-row table
//	merge_drain     full scan across four overlapping un-compacted runs
//	sustained_load  10k puts with periodic flushes (WAL + SSTable writes)
//	q1_topk, q2_topk  end-to-end rank-join queries (ISL) on TPC-H
//
// The disk run lives under dir (wiped per call). sf sizes the TPC-H
// instance backing the query rows.
func StorageReport(dir string, sf float64, seed int64) (map[string]StoragePoint, string, error) {
	mem, err := storageSuite(nil, "")
	if err != nil {
		return nil, "", err
	}
	diskRoot := filepath.Join(dir, "kv")
	if err := os.RemoveAll(diskRoot); err != nil {
		return nil, "", err
	}
	disk, err := storageSuite(nil, diskRoot)
	if err != nil {
		return nil, "", err
	}
	if err := storageQueries(mem, sf, seed, ""); err != nil {
		return nil, "", err
	}
	qdir := filepath.Join(dir, "db")
	if err := os.RemoveAll(qdir); err != nil {
		return nil, "", err
	}
	if err := storageQueries(disk, sf, seed, qdir); err != nil {
		return nil, "", err
	}

	points := map[string]StoragePoint{}
	for _, op := range StorageOps {
		p := StoragePoint{MemoryMicros: mem[op], DiskMicros: disk[op]}
		if p.MemoryMicros > 0 {
			p.Ratio = p.DiskMicros / p.MemoryMicros
		}
		points[op] = p
	}
	return points, FormatStorageTable(points), nil
}

// FormatStorageTable renders the memory-vs-disk comparison.
func FormatStorageTable(points map[string]StoragePoint) string {
	var b strings.Builder
	b.WriteString("Storage engine: in-memory vs on-disk SSTables (wall-clock)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %8s\n", "operation", "memory(us)", "disk(us)", "ratio")
	ops := make([]string, 0, len(points))
	for _, op := range StorageOps {
		if _, ok := points[op]; ok {
			ops = append(ops, op)
		}
	}
	for op := range points {
		if !slicesContains(ops, op) {
			ops = append(ops, op)
		}
	}
	sort.SliceStable(ops, func(i, j int) bool {
		return storageOpRank(ops[i]) < storageOpRank(ops[j])
	})
	for _, op := range ops {
		p := points[op]
		fmt.Fprintf(&b, "%-16s %12.1f %12.1f %7.2fx\n",
			op, p.MemoryMicros, p.DiskMicros, p.Ratio)
	}
	return b.String()
}

func storageOpRank(op string) int {
	for i, o := range StorageOps {
		if o == op {
			return i
		}
	}
	return len(StorageOps)
}

func slicesContains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// storageSuite runs the raw-engine workloads on one cluster mode
// (dir == "" → memory) and fills run with the measurements.
func storageSuite(run storageRun, dir string) (storageRun, error) {
	if run == nil {
		run = storageRun{}
	}
	c, err := openBenchCluster(dir)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	const rows = 10000
	value := make([]byte, 64)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	rowKey := func(i int) string { return fmt.Sprintf("row%06d", i) }
	if _, err := c.CreateTable("bench", []string{"f"}, nil); err != nil {
		return nil, err
	}

	// Sustained load: 10k timestamped puts with a flush every 2500 —
	// in disk mode each flush writes a real SSTable and every put
	// appends to the WAL first.
	start := time.Now()
	for i := 0; i < rows; i++ {
		cell := kvstore.Cell{
			Row: rowKey(i), Family: "f", Qualifier: "q",
			Timestamp: int64(i + 1), Value: value,
		}
		//lint:allow maintcheck raw-engine benchmark table; no relation or index is defined over it
		if err := c.Put("bench", cell); err != nil {
			return nil, err
		}
		if (i+1)%2500 == 0 {
			if err := c.FlushAll(); err != nil {
				return nil, err
			}
		}
	}
	run["sustained_load"] = micros(start)

	// Merge drain: a full scan while the table is still four
	// overlapping runs, so every row goes through the merge iterator.
	start = time.Now()
	if n, err := countRows(c); err != nil {
		return nil, err
	} else if n != rows {
		return nil, fmt.Errorf("merge drain saw %d rows, want %d", n, rows)
	}
	run["merge_drain"] = micros(start)

	// Compact to one run per region, then measure the clean scan.
	regs, err := c.TableRegions("bench")
	if err != nil {
		return nil, err
	}
	for _, r := range regs {
		if err := r.Compact(); err != nil {
			return nil, err
		}
	}
	start = time.Now()
	if n, err := countRows(c); err != nil {
		return nil, err
	} else if n != rows {
		return nil, fmt.Errorf("scan saw %d rows, want %d", n, rows)
	}
	run["scan_10k"] = micros(start)

	// Point gets: 500 pseudo-random rows, cold then warm. The row
	// cache is disabled so the warm pass exercises the block cache
	// (disk) or the plain segment search (memory), not a row-level
	// shortcut above the engine.
	c.SetRowCacheBytes(0)
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = rowKey(rng.Intn(rows))
	}
	get := func() (float64, error) {
		start := time.Now()
		for _, k := range keys {
			row, err := c.Get("bench", k)
			if err != nil {
				return 0, err
			}
			if row == nil {
				return 0, fmt.Errorf("row %s missing", k)
			}
		}
		return micros(start) / float64(len(keys)), nil
	}
	if run["point_get"], err = get(); err != nil {
		return nil, err
	}
	if run["point_get_warm"], err = get(); err != nil {
		return nil, err
	}
	return run, nil
}

// storageQueries times end-to-end Q1/Q2 rank joins (ISL, k=10) over a
// TPC-H environment in one storage mode (dir == "" → memory).
func storageQueries(run storageRun, sf float64, seed int64, dir string) error {
	var env *Env
	var err error
	if dir == "" {
		env, err = Setup(sim.LC(), sf, seed)
	} else {
		env, _, err = SetupAt(sim.LC(), sf, seed, dir)
	}
	if err != nil {
		return err
	}
	defer env.DB.Close()
	if dir != "" {
		// Push everything to SSTables so the queries read disk, not the
		// still-warm memtables the load left behind.
		if err := env.DB.Cluster().FlushAll(); err != nil {
			return err
		}
	}
	for _, q := range []struct {
		key   string
		query rankjoin.Query
	}{{"q1_topk", env.Q1}, {"q2_topk", env.Q2}} {
		start := time.Now()
		if _, err := env.DB.TopK(q.query.WithK(10), rankjoin.AlgoISL,
			&rankjoin.QueryOptions{ISLBatch: env.ISLBatch}); err != nil {
			return err
		}
		run[q.key] = micros(start)
	}
	return nil
}

// openBenchCluster opens a raw cluster in the requested mode.
func openBenchCluster(dir string) (*kvstore.Cluster, error) {
	if dir == "" {
		return kvstore.NewCluster(sim.LC(), nil)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return kvstore.OpenCluster(sim.LC(), nil, dir)
}

// countRows drains a full table scan.
func countRows(c *kvstore.Cluster) (int, error) {
	rows, err := c.ScanAll(kvstore.Scan{Table: "bench", Caching: 512})
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

func micros(start time.Time) float64 {
	return float64(time.Since(start).Nanoseconds()) / 1e3
}

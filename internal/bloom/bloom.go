// Package bloom implements the Bloom-filter family used by the BFHM index
// (Section 5.1 of the paper): a classic k-hash Bloom filter, a counting
// Bloom filter, and the paper's hybrid structure fusing a single-hash-
// function Bloom filter with a hash table of counters, both Golomb-coded
// for storage ("Golomb Compressed Set" + counting filter fusion).
//
// Single-hash filters keep the join-size estimation math simple (the
// count of items mapping to a bit is exactly the counter value, up to hash
// collisions) but need very large bitmaps for a usable false-positive rate,
// which is why compression is an integral part of the design.
package bloom

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Hash64 hashes a byte string to a uint64 using FNV-1a. All filters in
// this package derive their bit positions from this hash so that an item
// maps to the same position in every filter of the same size.
func Hash64(item []byte) uint64 {
	h := fnv.New64a()
	h.Write(item)
	return h.Sum64()
}

// Hash64String is Hash64 for strings without forcing an allocation at the
// call sites that already have strings.
func Hash64String(item string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(item))
	return h.Sum64()
}

// derive produces the i'th hash for double hashing: h1 + i*h2 (Kirsch-
// Mitzenmacher), with h2 forced odd so it is coprime with power-of-two m.
func derive(h uint64, i uint64) uint64 {
	h1 := h & 0xffffffff
	h2 := (h >> 32) | 1
	return h1 + i*h2
}

// Filter is a classic Bloom filter with nhash hash functions over an
// m-bit array.
type Filter struct {
	bits  []uint64
	m     uint64
	nhash int
	n     uint64 // items inserted
}

// NewFilter creates a Bloom filter with m bits (rounded up to a multiple
// of 64) and nhash hash functions.
func NewFilter(m uint64, nhash int) *Filter {
	if m < 64 {
		m = 64
	}
	if nhash < 1 {
		nhash = 1
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, nhash: nhash}
}

// OptimalParams returns the bit count m and hash count k minimizing the
// false positive probability fpp for n expected items.
func OptimalParams(n uint64, fpp float64) (m uint64, nhash int) {
	if n == 0 {
		n = 1
	}
	if fpp <= 0 {
		fpp = 1e-9
	}
	if fpp >= 1 {
		fpp = 0.99
	}
	mf := -float64(n) * math.Log(fpp) / (math.Ln2 * math.Ln2)
	kf := math.Round(mf / float64(n) * math.Ln2)
	if kf < 1 {
		kf = 1
	}
	return uint64(math.Ceil(mf)), int(kf)
}

// SingleHashBits returns the number of bits a single-hash (k=1) Bloom
// filter needs for n items at false-positive probability fpp:
// fpp = 1 - (1-1/m)^n  =>  m = 1 / (1 - (1-fpp)^(1/n)).
func SingleHashBits(n uint64, fpp float64) uint64 {
	if n == 0 {
		n = 1
	}
	if fpp <= 0 {
		fpp = 1e-9
	}
	if fpp >= 1 {
		fpp = 0.99
	}
	m := 1 / (1 - math.Pow(1-fpp, 1/float64(n)))
	if math.IsInf(m, 0) || m < 64 {
		m = 64
	}
	return uint64(math.Ceil(m))
}

// M returns the filter's bit count.
func (f *Filter) M() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.nhash }

// N returns the number of Add calls.
func (f *Filter) N() uint64 { return f.n }

// Add inserts an item.
func (f *Filter) Add(item []byte) {
	f.addHash(Hash64(item))
}

// AddString inserts a string item without forcing a []byte conversion.
func (f *Filter) AddString(item string) {
	f.addHash(Hash64String(item))
}

func (f *Filter) addHash(h uint64) {
	for i := 0; i < f.nhash; i++ {
		pos := derive(h, uint64(i)) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.n++
}

// Contains reports whether item may be in the set (no false negatives).
func (f *Filter) Contains(item []byte) bool {
	return f.containsHash(Hash64(item))
}

// ContainsString is Contains for strings without forcing an allocation.
func (f *Filter) ContainsString(item string) bool {
	return f.containsHash(Hash64String(item))
}

func (f *Filter) containsHash(h uint64) bool {
	for i := 0; i < f.nhash; i++ {
		pos := derive(h, uint64(i)) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (f *Filter) PopCount() uint64 {
	var c uint64
	for _, w := range f.bits {
		c += uint64(popcount(w))
	}
	return c
}

// FPP returns the effective false-positive probability given the current
// fill: (popcount/m)^k.
func (f *Filter) FPP() float64 {
	fill := float64(f.PopCount()) / float64(f.m)
	return math.Pow(fill, float64(f.nhash))
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// MarshalBinary encodes the filter (header + raw bitmap words).
func (f *Filter) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 24+len(f.bits)*8)
	var hdr [24]byte
	binary.BigEndian.PutUint64(hdr[0:8], f.m)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(f.nhash))
	binary.BigEndian.PutUint64(hdr[16:24], f.n)
	buf = append(buf, hdr[:]...)
	var w [8]byte
	for _, word := range f.bits {
		binary.BigEndian.PutUint64(w[:], word)
		buf = append(buf, w[:]...)
	}
	return buf, nil
}

// UnmarshalBinary decodes a filter written by MarshalBinary.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return errTruncated
	}
	f.m = binary.BigEndian.Uint64(data[0:8])
	f.nhash = int(binary.BigEndian.Uint64(data[8:16]))
	f.n = binary.BigEndian.Uint64(data[16:24])
	words := int(f.m / 64)
	if len(data) < 24+words*8 {
		return errTruncated
	}
	f.bits = make([]uint64, words)
	for i := 0; i < words; i++ {
		f.bits[i] = binary.BigEndian.Uint64(data[24+i*8 : 32+i*8])
	}
	return nil
}

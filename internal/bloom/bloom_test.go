package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFilterNoFalseNegatives(t *testing.T) {
	f := NewFilter(1<<12, 3)
	var items [][]byte
	for i := 0; i < 200; i++ {
		items = append(items, []byte(fmt.Sprintf("item-%d", i)))
	}
	for _, it := range items {
		f.Add(it)
	}
	for _, it := range items {
		if !f.Contains(it) {
			t.Fatalf("false negative for %q", it)
		}
	}
}

func TestFilterFalsePositiveRate(t *testing.T) {
	n := uint64(1000)
	m, k := OptimalParams(n, 0.01)
	f := NewFilter(m, k)
	for i := uint64(0); i < n; i++ {
		f.Add([]byte(fmt.Sprintf("present-%d", i)))
	}
	fp := 0
	trials := 10000
	for i := 0; i < trials; i++ {
		if f.Contains([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > 0.03 {
		t.Errorf("false positive rate %.4f exceeds 3x the 1%% target", rate)
	}
}

func TestOptimalParams(t *testing.T) {
	m, k := OptimalParams(1000, 0.01)
	if m < 9000 || m > 10000 {
		t.Errorf("m = %d, want ~9585 for n=1000 fpp=0.01", m)
	}
	if k < 6 || k > 8 {
		t.Errorf("k = %d, want ~7", k)
	}
	// Degenerate inputs must not panic or return zeros.
	m, k = OptimalParams(0, 0)
	if m == 0 || k == 0 {
		t.Error("degenerate params returned zero sizes")
	}
}

func TestSingleHashBits(t *testing.T) {
	// With m bits sized for fpp=0.05 at n items, a single-hash filter's
	// fill must be ~5%.
	n := uint64(2000)
	m := SingleHashBits(n, 0.05)
	// m should be around n/0.0513 ~ 39000
	if m < 30000 || m > 50000 {
		t.Errorf("SingleHashBits(2000, 0.05) = %d, want ~39000", m)
	}
	h := NewHybrid(m)
	for i := uint64(0); i < n; i++ {
		h.Insert(fmt.Sprintf("jv-%d", i))
	}
	if pt := h.PT(); pt > 0.07 {
		t.Errorf("fill %.4f exceeds target 0.05 by too much", pt)
	}
}

func TestFilterMarshalRoundTrip(t *testing.T) {
	f := NewFilter(1<<10, 4)
	for i := 0; i < 100; i++ {
		f.Add([]byte(fmt.Sprintf("x%d", i)))
	}
	buf, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if g.M() != f.M() || g.K() != f.K() || g.N() != f.N() {
		t.Fatalf("header mismatch after round trip: %d/%d/%d vs %d/%d/%d",
			g.M(), g.K(), g.N(), f.M(), f.K(), f.N())
	}
	for i := 0; i < 100; i++ {
		if !g.Contains([]byte(fmt.Sprintf("x%d", i))) {
			t.Fatalf("false negative after round trip")
		}
	}
	if err := g.UnmarshalBinary(buf[:10]); err == nil {
		t.Error("truncated decode should fail")
	}
}

func TestHybridInsertRemove(t *testing.T) {
	h := NewHybrid(1 << 16)
	p1 := h.Insert("a")
	p2 := h.Insert("a")
	if p1 != p2 {
		t.Fatal("same item must map to same bit")
	}
	if h.Counter(p1) != 2 {
		t.Fatalf("counter = %d, want 2", h.Counter(p1))
	}
	if !h.Contains("a") {
		t.Fatal("Contains after insert = false")
	}
	if !h.Remove("a") {
		t.Fatal("Remove returned false")
	}
	if h.Counter(p1) != 1 {
		t.Fatalf("counter after remove = %d, want 1", h.Counter(p1))
	}
	if !h.Remove("a") {
		t.Fatal("second Remove returned false")
	}
	if h.Contains("a") {
		t.Fatal("Contains after full removal = true")
	}
	if h.Remove("a") {
		t.Fatal("Remove of absent item returned true")
	}
}

func TestHybridSetBitsSorted(t *testing.T) {
	h := NewHybrid(1 << 20)
	for i := 0; i < 500; i++ {
		h.Insert(fmt.Sprintf("key-%d", i))
	}
	bits := h.SetBits()
	for i := 1; i < len(bits); i++ {
		if bits[i] <= bits[i-1] {
			t.Fatalf("SetBits not strictly increasing at %d", i)
		}
	}
	if h.PopCount() != uint64(len(bits)) {
		t.Fatalf("PopCount %d != len(SetBits) %d", h.PopCount(), len(bits))
	}
}

func TestHybridEncodeDecodeRoundTrip(t *testing.T) {
	h := NewHybrid(100000)
	for i := 0; i < 700; i++ {
		h.Insert(fmt.Sprintf("join-value-%d", i%311)) // duplicates force counters > 1
	}
	blob, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeHybrid(blob)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != h.M() || g.N() != h.N() || g.PopCount() != h.PopCount() {
		t.Fatalf("header mismatch: m %d/%d n %d/%d pop %d/%d",
			g.M(), h.M(), g.N(), h.N(), g.PopCount(), h.PopCount())
	}
	for _, p := range h.SetBits() {
		if g.Counter(p) != h.Counter(p) {
			t.Fatalf("counter mismatch at %d: %d vs %d", p, g.Counter(p), h.Counter(p))
		}
	}
}

func TestHybridEncodeEmpty(t *testing.T) {
	h := NewHybrid(4096)
	blob, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeHybrid(blob)
	if err != nil {
		t.Fatal(err)
	}
	if g.PopCount() != 0 || g.N() != 0 {
		t.Fatal("empty filter should round-trip empty")
	}
}

func TestHybridCompression(t *testing.T) {
	// 500 distinct join values in a 1M-bit filter: raw bitmap would be
	// 125 kB; the blob must be a few kB at most.
	h := NewHybrid(1 << 20)
	for i := 0; i < 500; i++ {
		h.Insert(fmt.Sprintf("jv%d", i))
	}
	blob, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > 4096 {
		t.Errorf("blob is %d bytes; expected < 4 kB for 500 sparse bits", len(blob))
	}
}

func TestEstimateJoinExactWhenNoCollisions(t *testing.T) {
	// Large m => no collisions => raw estimate is exactly the join size.
	a := NewHybrid(1 << 24)
	b := NewHybrid(1 << 24)
	// 3 common join values; multiplicities 2x3, 1x4, 5x1; plus noise.
	for i := 0; i < 2; i++ {
		a.Insert("common-1")
	}
	for i := 0; i < 3; i++ {
		b.Insert("common-1")
	}
	a.Insert("common-2")
	for i := 0; i < 4; i++ {
		b.Insert("common-2")
	}
	for i := 0; i < 5; i++ {
		a.Insert("common-3")
	}
	b.Insert("common-3")
	a.Insert("only-a")
	b.Insert("only-b")
	est, err := EstimateJoin(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if est == nil {
		t.Fatal("estimate is nil for overlapping filters")
	}
	want := uint64(2*3 + 1*4 + 5*1)
	if est.RawCardinality != want {
		t.Fatalf("raw cardinality = %d, want %d", est.RawCardinality, want)
	}
	if len(est.Bits) != 3 {
		t.Fatalf("common bits = %d, want 3", len(est.Bits))
	}
	if est.Alpha <= 0.99 {
		t.Errorf("alpha = %f, want ~1 for sparse filters", est.Alpha)
	}
}

func TestEstimateJoinDisjoint(t *testing.T) {
	a := NewHybrid(1 << 20)
	b := NewHybrid(1 << 20)
	a.Insert("x")
	b.Insert("y")
	est, err := EstimateJoin(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if est != nil {
		t.Fatal("disjoint filters should estimate nil")
	}
}

func TestEstimateJoinSizeMismatch(t *testing.T) {
	a := NewHybrid(64)
	b := NewHybrid(128)
	if _, err := EstimateJoin(a, b); err == nil {
		t.Fatal("mismatched sizes must error")
	}
}

func TestEstimateJoinNeverUnderestimatesUnderCollisions(t *testing.T) {
	// Lemma 1: the intersected filter represents a superset of the true
	// join; raw counter products can only overestimate.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := uint64(256) // small filter to force collisions
		a := NewHybrid(m)
		b := NewHybrid(m)
		countA := map[string]int{}
		countB := map[string]int{}
		for i := 0; i < 300; i++ {
			v := fmt.Sprintf("v%d", rng.Intn(80))
			a.Insert(v)
			countA[v]++
		}
		for i := 0; i < 300; i++ {
			v := fmt.Sprintf("v%d", rng.Intn(80))
			b.Insert(v)
			countB[v]++
		}
		trueJoin := uint64(0)
		for v, ca := range countA {
			trueJoin += uint64(ca * countB[v])
		}
		est, err := EstimateJoin(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var raw uint64
		if est != nil {
			raw = est.RawCardinality
		}
		if raw < trueJoin {
			t.Fatalf("trial %d: raw estimate %d below true join size %d (violates Lemma 1)",
				trial, raw, trueJoin)
		}
	}
}

func TestHybridPTMonotone(t *testing.T) {
	h := NewHybrid(1 << 12)
	prev := h.PT()
	for i := 0; i < 1000; i++ {
		h.Insert(fmt.Sprintf("it%d", i))
		pt := h.PT()
		if pt < prev {
			t.Fatal("PT decreased on insert")
		}
		prev = pt
	}
	if th := h.TheoreticalPT(); th <= 0 || th >= 1 {
		t.Errorf("theoretical PT = %f out of (0,1)", th)
	}
}

func TestHybridCloneIndependent(t *testing.T) {
	h := NewHybrid(1 << 10)
	h.Insert("a")
	c := h.Clone()
	c.Insert("b")
	if h.Contains("b") {
		t.Fatal("mutating clone affected original")
	}
	if !c.Contains("a") {
		t.Fatal("clone lost original contents")
	}
}

func TestHybridRoundTripProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		h := NewHybrid(1 << 18)
		for _, k := range keys {
			h.Insert(fmt.Sprintf("k%d", k))
		}
		blob, err := h.Encode()
		if err != nil {
			return false
		}
		g, err := DecodeHybrid(blob)
		if err != nil {
			return false
		}
		if g.PopCount() != h.PopCount() || g.N() != h.N() {
			return false
		}
		for _, p := range h.SetBits() {
			if g.Counter(p) != h.Counter(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeHybridCorrupt(t *testing.T) {
	if _, err := DecodeHybrid([]byte{1, 2, 3}); err == nil {
		t.Error("short blob must fail")
	}
	h := NewHybrid(1024)
	h.Insert("a")
	blob, _ := h.Encode()
	if _, err := DecodeHybrid(blob[:len(blob)-1]); err == nil {
		// Truncation may still decode if the last byte was padding;
		// chop harder.
		if _, err := DecodeHybrid(blob[:49]); err == nil {
			t.Error("badly truncated blob must fail")
		}
	}
}

func BenchmarkHybridInsert(b *testing.B) {
	h := NewHybrid(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Insert("key-12345")
	}
}

func BenchmarkHybridEncode500(b *testing.B) {
	h := NewHybrid(1 << 20)
	for i := 0; i < 500; i++ {
		h.Insert(fmt.Sprintf("jv%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateJoin(b *testing.B) {
	a := NewHybrid(1 << 20)
	c := NewHybrid(1 << 20)
	for i := 0; i < 500; i++ {
		a.Insert(fmt.Sprintf("jv%d", i))
		c.Insert(fmt.Sprintf("jv%d", i+250))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateJoin(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

package bloom

import "fmt"

// This file implements the enabling primitive for the paper's stated
// future work ("the adoption of dynamic Bloom filters to further improve
// the time and bandwidth performance of BFHM Rank Join", Section 8):
// filter FOLDING. A single-hash filter of width m can be reduced to any
// divisor width m' by summing counters at congruent positions (bit i
// maps to i mod m'). Folding preserves the no-false-negative property —
// an item's bit at width m' is exactly (its bit at width m) mod m' when
// m' divides m — so two hybrid filters built with different power-of-two
// widths can still be intersected after folding the wider one down.
// With folding, each BFHM bucket can size its filter for its own
// population instead of the global heaviest bucket, cutting blob bytes
// for sparse buckets without breaking bucket joins.

// Fold returns a copy of the filter reduced to width newM, which must
// evenly divide M. Counters at positions congruent mod newM are summed.
func (h *Hybrid) Fold(newM uint64) (*Hybrid, error) {
	if newM == 0 || h.m%newM != 0 {
		return nil, fmt.Errorf("bloom: cannot fold width %d to %d (not a divisor)", h.m, newM)
	}
	out := NewHybrid(newM)
	out.n = h.n
	for pos, c := range h.counters {
		out.counters[pos%newM] += c
	}
	return out, nil
}

// CommonWidth returns the largest width both filters can be folded to:
// the smaller of the two when it divides the larger, else an error
// (power-of-two widths always fold).
func CommonWidth(a, b *Hybrid) (uint64, error) {
	small, large := a.m, b.m
	if small > large {
		small, large = large, small
	}
	if large%small != 0 {
		return 0, fmt.Errorf("bloom: widths %d and %d share no fold target", a.m, b.m)
	}
	return small, nil
}

// EstimateJoinFolded intersects two hybrid filters of possibly different
// widths by folding the wider one first. The returned estimate is in the
// narrower filter's bit space.
func EstimateJoinFolded(a, b *Hybrid) (*JoinEstimate, error) {
	if a.m == b.m {
		return EstimateJoin(a, b)
	}
	w, err := CommonWidth(a, b)
	if err != nil {
		return nil, err
	}
	fa, fb := a, b
	if a.m != w {
		if fa, err = a.Fold(w); err != nil {
			return nil, err
		}
	}
	if b.m != w {
		if fb, err = b.Fold(w); err != nil {
			return nil, err
		}
	}
	return EstimateJoin(fa, fb)
}

// NextPow2 returns the smallest power of two >= n (and >= 64).
func NextPow2(n uint64) uint64 {
	m := uint64(64)
	for m < n {
		m <<= 1
	}
	return m
}

package bloom

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestFoldPreservesMembership(t *testing.T) {
	h := NewHybrid(1 << 14)
	var items []string
	for i := 0; i < 300; i++ {
		it := fmt.Sprintf("item-%d", i)
		items = append(items, it)
		h.Insert(it)
	}
	for _, newM := range []uint64{1 << 13, 1 << 10, 1 << 7} {
		f, err := h.Fold(newM)
		if err != nil {
			t.Fatal(err)
		}
		if f.M() != newM {
			t.Fatalf("folded width = %d", f.M())
		}
		if f.N() != h.N() {
			t.Fatalf("folded n = %d, want %d", f.N(), h.N())
		}
		for _, it := range items {
			if !f.Contains(it) {
				t.Fatalf("fold to %d lost item %q (false negative)", newM, it)
			}
		}
	}
}

func TestFoldCounterConservation(t *testing.T) {
	h := NewHybrid(1 << 12)
	for i := 0; i < 500; i++ {
		h.Insert(fmt.Sprintf("x%d", i%97))
	}
	f, err := h.Fold(1 << 8)
	if err != nil {
		t.Fatal(err)
	}
	var before, after uint64
	for _, p := range h.SetBits() {
		before += uint64(h.Counter(p))
	}
	for _, p := range f.SetBits() {
		after += uint64(f.Counter(p))
	}
	if before != after {
		t.Fatalf("counters not conserved: %d -> %d", before, after)
	}
}

func TestFoldRejectsNonDivisor(t *testing.T) {
	h := NewHybrid(1000)
	if _, err := h.Fold(300); err == nil {
		t.Error("non-divisor fold accepted")
	}
	if _, err := h.Fold(0); err == nil {
		t.Error("zero fold accepted")
	}
}

func TestCommonWidth(t *testing.T) {
	a := NewHybrid(1 << 10)
	b := NewHybrid(1 << 14)
	w, err := CommonWidth(a, b)
	if err != nil || w != 1<<10 {
		t.Fatalf("CommonWidth = %d, %v", w, err)
	}
	c := NewHybrid(768)
	if _, err := CommonWidth(a, c); err == nil {
		t.Error("incompatible widths accepted")
	}
}

func TestEstimateJoinFoldedNeverUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		a := NewHybrid(1 << uint(10+trial%4)) // widths differ per trial
		b := NewHybrid(1 << 12)
		countA := map[string]int{}
		countB := map[string]int{}
		for i := 0; i < 200; i++ {
			v := fmt.Sprintf("v%d", rng.Intn(60))
			a.Insert(v)
			countA[v]++
		}
		for i := 0; i < 200; i++ {
			v := fmt.Sprintf("v%d", rng.Intn(60))
			b.Insert(v)
			countB[v]++
		}
		var trueJoin uint64
		for v, ca := range countA {
			trueJoin += uint64(ca * countB[v])
		}
		est, err := EstimateJoinFolded(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var raw uint64
		if est != nil {
			raw = est.RawCardinality
		}
		if raw < trueJoin {
			t.Fatalf("trial %d: folded estimate %d < true join %d", trial, raw, trueJoin)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[uint64]uint64{0: 64, 1: 64, 64: 64, 65: 128, 1000: 1024, 1 << 20: 1 << 20}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFoldedBlobSmallerForSparseBuckets(t *testing.T) {
	// The future-work payoff: a sparse bucket individually sized at the
	// next power of two needs far fewer blob bytes than one sized for
	// the heaviest bucket.
	heavy := SingleHashBits(50000, 0.05)
	sparse := NewHybrid(NextPow2(SingleHashBits(50, 0.05)))
	big := NewHybrid(NextPow2(heavy))
	for i := 0; i < 50; i++ {
		v := fmt.Sprintf("jv%d", i)
		sparse.Insert(v)
		big.Insert(v)
	}
	sb, err := sparse.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := big.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(sb) >= len(bb) {
		t.Errorf("individually sized blob (%d B) not smaller than heaviest-bucket sizing (%d B)",
			len(sb), len(bb))
	}
}

package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/golomb"
)

var errTruncated = errors.New("bloom: truncated encoding")

// Hybrid is the paper's fusion of a single-hash-function Bloom filter with
// a counting Bloom filter: an m-bit membership bitmap plus a hash table of
// per-bit counters for the non-zero bits (Fig. 4). Both parts are Golomb-
// compressed by Encode; in memory the structure stays materialized for
// speed.
//
// Because a single hash function is used, an item's join-value maps to
// exactly one bit, so the counter at that bit is the (collision-inflated)
// number of tuples with join values hashing there. The product of two
// filters' counters at a common bit estimates the join cardinality
// contributed by that bit (Algorithm 7).
type Hybrid struct {
	m        uint64
	n        uint64            // total insertions (non-distinct)
	counters map[uint64]uint32 // bit position -> count of inserted items
}

// NewHybrid creates a hybrid filter with an m-bit logical bitmap.
func NewHybrid(m uint64) *Hybrid {
	if m < 1 {
		m = 1
	}
	return &Hybrid{m: m, counters: make(map[uint64]uint32)}
}

// M returns the logical bitmap width in bits.
func (h *Hybrid) M() uint64 { return h.m }

// N returns the number of items inserted (including duplicates).
func (h *Hybrid) N() uint64 { return h.n }

// BitPos returns the bit position item maps to.
func (h *Hybrid) BitPos(item string) uint64 {
	return Hash64String(item) % h.m
}

// Insert adds an item and returns the bit position it mapped to, which the
// BFHM index build records as the reverse-mapping key (Algorithm 5).
func (h *Hybrid) Insert(item string) uint64 {
	pos := h.BitPos(item)
	h.counters[pos]++
	h.n++
	return pos
}

// Remove decrements the counter for item's bit. It reports whether the
// counter existed; removing below zero is a no-op that returns false.
func (h *Hybrid) Remove(item string) bool {
	pos := h.BitPos(item)
	c, ok := h.counters[pos]
	if !ok {
		return false
	}
	if c <= 1 {
		delete(h.counters, pos)
	} else {
		h.counters[pos] = c - 1
	}
	h.n--
	return true
}

// Contains reports whether some inserted item maps to item's bit.
func (h *Hybrid) Contains(item string) bool {
	_, ok := h.counters[h.BitPos(item)]
	return ok
}

// Counter returns the counter at bit position pos (0 if unset).
func (h *Hybrid) Counter(pos uint64) uint32 { return h.counters[pos] }

// SetBits returns the sorted non-zero bit positions.
func (h *Hybrid) SetBits() []uint64 {
	out := make([]uint64, 0, len(h.counters))
	for p := range h.counters {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PopCount returns the number of distinct set bits.
func (h *Hybrid) PopCount() uint64 { return uint64(len(h.counters)) }

// PT returns the probability that an arbitrary bit is set after the
// observed insertions: PT = 1 - (1 - 1/m)^n for the single-hash filter
// (Section 5.3). It is computed from the actual fill when available,
// which is exact rather than probabilistic.
func (h *Hybrid) PT() float64 {
	if h.m == 0 {
		return 0
	}
	return float64(len(h.counters)) / float64(h.m)
}

// TheoreticalPT returns 1 - (1-1/m)^n, the a-priori fill probability the
// paper's analysis uses.
func (h *Hybrid) TheoreticalPT() float64 {
	if h.m == 0 {
		return 0
	}
	return 1 - math.Pow(1-1/float64(h.m), float64(h.n))
}

// JoinEstimate holds the outcome of intersecting two hybrid filters.
type JoinEstimate struct {
	// Bits lists the bit positions set in both filters, sorted.
	Bits []uint64
	// Cardinality is the compensated join size estimate:
	// sum over common bits of cA*cB, scaled by Alpha.
	Cardinality float64
	// RawCardinality is the uncompensated sum of counter products.
	RawCardinality uint64
	// Alpha is the false-positive compensation factor
	// (1-PT_A)*(1-PT_B) from Section 5.3.
	Alpha float64
}

// EstimateJoin intersects two hybrid filters (they must share m) and
// returns the join-size estimate of Algorithm 7, or nil when the
// intersection is empty.
func EstimateJoin(a, b *Hybrid) (*JoinEstimate, error) {
	if a.m != b.m {
		return nil, fmt.Errorf("bloom: mismatched filter sizes %d vs %d", a.m, b.m)
	}
	// Iterate over the smaller counter set.
	small, large := a, b
	if len(b.counters) < len(a.counters) {
		small, large = b, a
	}
	var bits []uint64
	var raw uint64
	for pos, cs := range small.counters {
		if cl, ok := large.counters[pos]; ok {
			bits = append(bits, pos)
			raw += uint64(cs) * uint64(cl)
		}
	}
	if len(bits) == 0 {
		return nil, nil
	}
	sort.Slice(bits, func(i, j int) bool { return bits[i] < bits[j] })
	alpha := (1 - a.PT()) * (1 - b.PT())
	if alpha <= 0 {
		alpha = 1e-9
	}
	card := float64(raw) * alpha
	if card < 1 {
		// An intersection with at least one common bit represents at
		// least a potential result; never round the estimate to zero.
		card = 1
	}
	return &JoinEstimate{Bits: bits, Cardinality: card, RawCardinality: raw, Alpha: alpha}, nil
}

// Encode serializes the hybrid filter as the paper's bucket "blob":
// a small header, the Golomb-compressed sorted bit positions (GCS), and
// the Golomb-compressed counters minus one (counters are >= 1 by
// construction). The Golomb parameters are chosen from the observed
// densities and stored in the header.
func (h *Hybrid) Encode() ([]byte, error) {
	bits := h.SetBits()
	nbits := uint64(len(bits))
	// Gap distribution parameter: p = nbits/m.
	mposParam := golomb.OptimalM(float64(nbits) / float64(h.m))
	posBuf, err := golomb.EncodeSortedSet(bits, mposParam)
	if err != nil {
		return nil, err
	}
	// Counter distribution parameter: mean counter value.
	var sum uint64
	counts := make([]uint64, nbits)
	for i, p := range bits {
		c := uint64(h.counters[p])
		counts[i] = c - 1
		sum += c
	}
	cntParam := uint64(1)
	if nbits > 0 {
		mean := float64(sum) / float64(nbits)
		if mean > 1 {
			cntParam = golomb.OptimalM(1 / mean)
		}
	}
	cntBuf := golomb.EncodeAll(counts, cntParam)

	out := make([]byte, 0, 48+len(posBuf)+len(cntBuf))
	var hdr [48]byte
	binary.BigEndian.PutUint64(hdr[0:8], h.m)
	binary.BigEndian.PutUint64(hdr[8:16], h.n)
	binary.BigEndian.PutUint64(hdr[16:24], nbits)
	binary.BigEndian.PutUint64(hdr[24:32], mposParam)
	binary.BigEndian.PutUint64(hdr[32:40], cntParam)
	binary.BigEndian.PutUint64(hdr[40:48], uint64(len(posBuf)))
	out = append(out, hdr[:]...)
	out = append(out, posBuf...)
	out = append(out, cntBuf...)
	return out, nil
}

// DecodeHybrid reverses Encode.
func DecodeHybrid(data []byte) (*Hybrid, error) {
	if len(data) < 48 {
		return nil, errTruncated
	}
	m := binary.BigEndian.Uint64(data[0:8])
	n := binary.BigEndian.Uint64(data[8:16])
	nbits := binary.BigEndian.Uint64(data[16:24])
	mposParam := binary.BigEndian.Uint64(data[24:32])
	cntParam := binary.BigEndian.Uint64(data[32:40])
	posLen := binary.BigEndian.Uint64(data[40:48])
	if uint64(len(data)) < 48+posLen {
		return nil, errTruncated
	}
	bits, err := golomb.DecodeSortedSet(data[48:48+posLen], mposParam, int(nbits))
	if err != nil {
		return nil, fmt.Errorf("bloom: decoding positions: %w", err)
	}
	counts, err := golomb.DecodeAll(data[48+posLen:], cntParam, int(nbits))
	if err != nil {
		return nil, fmt.Errorf("bloom: decoding counters: %w", err)
	}
	h := NewHybrid(m)
	h.n = n
	for i, p := range bits {
		if p >= m {
			return nil, fmt.Errorf("bloom: bit position %d out of range %d", p, m)
		}
		h.counters[p] = uint32(counts[i]) + 1
	}
	return h, nil
}

// Clone returns a deep copy.
func (h *Hybrid) Clone() *Hybrid {
	c := NewHybrid(h.m)
	c.n = h.n
	for k, v := range h.counters {
		c.counters[k] = v
	}
	return c
}

package core

import (
	"fmt"
	"testing"

	"repro/internal/kvstore"
)

// runAll executes every algorithm against the loaded cluster and checks
// each one's top-k scores against the in-memory oracle.
func runAll(t *testing.T, c *kvstore.Cluster, q Query, left, right []Tuple, skipMR bool) {
	t.Helper()
	want := scoresOf(oracleTopK(left, right, q.Score, q.K))
	label := func(name string) string {
		return fmt.Sprintf("%s k=%d f=%s", name, q.K, q.Score.Name)
	}

	naive, err := NaiveTopK(c, q)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, label("naive"), scoresOf(naive.Results), want)
	verifyResultsAreRealJoins(t, label("naive"), naive.Results, q.Score)

	if !skipMR {
		hive, err := QueryHive(c, q)
		if err != nil {
			t.Fatal(err)
		}
		assertScoresEqual(t, label("hive"), scoresOf(hive.Results), want)
		verifyResultsAreRealJoins(t, label("hive"), hive.Results, q.Score)

		pig, err := QueryPig(c, q)
		if err != nil {
			t.Fatal(err)
		}
		assertScoresEqual(t, label("pig"), scoresOf(pig.Results), want)
		verifyResultsAreRealJoins(t, label("pig"), pig.Results, q.Score)
	}

	ijlmrIdx, _, err := BuildIJLMR(c, q)
	if err != nil {
		t.Fatal(err)
	}
	ijlmr, err := QueryIJLMR(c, q, ijlmrIdx)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, label("ijlmr"), scoresOf(ijlmr.Results), want)
	verifyResultsAreRealJoins(t, label("ijlmr"), ijlmr.Results, q.Score)

	islIdx, _, err := BuildISL(c, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 100} {
		isl, err := QueryISL(c, q, islIdx, ISLOptions{BatchLeft: batch, BatchRight: batch})
		if err != nil {
			t.Fatal(err)
		}
		assertScoresEqual(t, label(fmt.Sprintf("isl/batch%d", batch)), scoresOf(isl.Results), want)
		verifyResultsAreRealJoins(t, label("isl"), isl.Results, q.Score)
	}

	for _, buckets := range []int{4, 16} {
		bfhmA, _, err := BuildBFHM(c, q.Left, BFHMOptions{NumBuckets: buckets, FPP: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		bfhmB, _, err := BuildBFHM(c, q.Right, BFHMOptions{NumBuckets: buckets, FPP: 0.05, MBits: bfhmA.MBits})
		if err != nil {
			t.Fatal(err)
		}
		bfhm, err := QueryBFHM(c, q, bfhmA, bfhmB, BFHMQueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		lbl := label(fmt.Sprintf("bfhm/%db", buckets))
		assertScoresEqual(t, lbl, scoresOf(bfhm.Results), want)
		verifyResultsAreRealJoins(t, lbl, bfhm.Results, q.Score)
		if err := c.DropTable(bfhmA.Table); err != nil {
			t.Fatal(err)
		}
		if err := c.DropTable(bfhmB.Table); err != nil {
			t.Fatal(err)
		}
	}

	drjnA, _, err := BuildDRJN(c, q.Left, DRJNOptions{NumBuckets: 8, JoinParts: 16})
	if err != nil {
		t.Fatal(err)
	}
	drjnB, _, err := BuildDRJN(c, q.Right, DRJNOptions{NumBuckets: 8, JoinParts: 16})
	if err != nil {
		t.Fatal(err)
	}
	drjn, err := QueryDRJN(c, q, drjnA, drjnB)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, label("drjn"), scoresOf(drjn.Results), want)
	verifyResultsAreRealJoins(t, label("drjn"), drjn.Results, q.Score)

	// Clean up the per-query index tables so runAll can be re-invoked.
	for _, tbl := range []string{ijlmrIdx.Table, islIdx.Table, drjnA.Table, drjnB.Table} {
		if err := c.DropTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllAlgorithmsPaperExample(t *testing.T) {
	c := newTestCluster()
	relL := loadRelation(t, c, "R1", paperR1)
	relR := loadRelation(t, c, "R2", paperR2)
	for _, k := range []int{1, 3, 5, 100} {
		runAll(t, c, paperQuery(relL, relR, k), paperR1, paperR2, false)
	}
}

func TestAllAlgorithmsRandomWorkloads(t *testing.T) {
	configs := []struct {
		n, joinCard int
		dist        string
		f           ScoreFunc
	}{
		{200, 20, "uniform", Sum},
		{200, 20, "uniform", Product},
		{300, 60, "zipfish", Sum},
		{150, 5, "uniform", Sum},       // heavy fan-out joins
		{250, 200, "zipfish", Product}, // sparse joins
		{300, 400, "squared", Sum},     // sparse joins, low-concentrated scores
	}
	for ci, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%d_%s_%s", ci, cfg.dist, cfg.f.Name), func(t *testing.T) {
			c := newTestCluster()
			left := synthTuples("l", cfg.n, cfg.joinCard, cfg.dist, int64(ci*17+1))
			right := synthTuples("r", cfg.n, cfg.joinCard, cfg.dist, int64(ci*31+2))
			relL := loadRelation(t, c, "L", left)
			relR := loadRelation(t, c, "R", right)
			for _, k := range []int{1, 10, 50} {
				q := Query{Left: relL, Right: relR, Score: cfg.f, K: k}
				runAll(t, c, q, left, right, k != 10) // MR baselines once per config
			}
		})
	}
}

// TestBFHMRecallUnderCollisions forces tiny Bloom filters (massive false
// positive rates) and verifies the Section 5.3 guarantee: recall stays
// 100% regardless.
func TestBFHMRecallUnderCollisions(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		c := newTestCluster()
		left := synthTuples("l", 150, 30, "uniform", seed)
		right := synthTuples("r", 150, 30, "uniform", seed+100)
		relL := loadRelation(t, c, "L", left)
		relR := loadRelation(t, c, "R", right)
		q := Query{Left: relL, Right: relR, Score: Sum, K: 10}
		// MBits=8: nearly every bit is set, collisions everywhere.
		bfhmA, _, err := BuildBFHM(c, q.Left, BFHMOptions{NumBuckets: 6, MBits: 8})
		if err != nil {
			t.Fatal(err)
		}
		bfhmB, _, err := BuildBFHM(c, q.Right, BFHMOptions{NumBuckets: 6, MBits: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := QueryBFHM(c, q, bfhmA, bfhmB, BFHMQueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := oracleTopK(left, right, Sum, q.K)
		assertScoresEqual(t, fmt.Sprintf("bfhm-collisions seed=%d", seed),
			scoresOf(got.Results), scoresOf(want))
		verifyResultsAreRealJoins(t, "bfhm-collisions", got.Results, Sum)
	}
}

// TestBFHMFewerResultsThanK exercises the k' < k repair path.
func TestBFHMFewerResultsThanK(t *testing.T) {
	c := newTestCluster()
	left := []Tuple{
		{RowKey: "l1", JoinValue: "x", Score: 0.9},
		{RowKey: "l2", JoinValue: "y", Score: 0.5},
		{RowKey: "l3", JoinValue: "zz", Score: 0.2},
	}
	right := []Tuple{
		{RowKey: "r1", JoinValue: "x", Score: 0.8},
		{RowKey: "r2", JoinValue: "y", Score: 0.1},
		{RowKey: "r3", JoinValue: "ww", Score: 0.95},
	}
	relL := loadRelation(t, c, "L", left)
	relR := loadRelation(t, c, "R", right)
	q := Query{Left: relL, Right: relR, Score: Sum, K: 10}
	bfhmA, _, err := BuildBFHM(c, q.Left, BFHMOptions{NumBuckets: 10})
	if err != nil {
		t.Fatal(err)
	}
	bfhmB, _, err := BuildBFHM(c, q.Right, BFHMOptions{NumBuckets: 10, MBits: bfhmA.MBits})
	if err != nil {
		t.Fatal(err)
	}
	got, err := QueryBFHM(c, q, bfhmA, bfhmB, BFHMQueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopK(left, right, Sum, q.K)
	if len(got.Results) != 2 || len(want) != 2 {
		t.Fatalf("results = %d, oracle = %d, want 2", len(got.Results), len(want))
	}
	assertScoresEqual(t, "bfhm-short", scoresOf(got.Results), scoresOf(want))
}

// TestISLIndexLayout pins the Fig. 3 index structure: keys are negated
// scores, scanning ascending keys yields descending scores, and tuples
// with equal scores share one index row.
func TestISLIndexLayout(t *testing.T) {
	c := newTestCluster()
	relL := loadRelation(t, c, "R1", paperR1)
	relR := loadRelation(t, c, "R2", paperR2)
	q := paperQuery(relL, relR, 3)
	idx, _, err := BuildISL(c, q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.ScanAll(kvstore.Scan{Table: idx.Table, Caching: 100})
	if err != nil {
		t.Fatal(err)
	}
	// First row must be the single highest score (1.00 -> {r1_10, a}).
	first := rows[0]
	s, err := kvstore.DecodeScoreDesc(first.Key)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1.00 {
		t.Fatalf("first index score = %g, want 1.00", s)
	}
	if len(first.Cells) != 1 || first.Cells[0].Qualifier != "r1_10" || string(first.Cells[0].Value) != "a" {
		t.Fatalf("first index row = %+v", first.Cells)
	}
	// The 0.82 row must hold r1_1, r1_4, r1_7 together (Fig. 3).
	found := false
	for _, r := range rows {
		sc, _ := kvstore.DecodeScoreDesc(r.Key)
		if sc == 0.82 {
			found = true
			if len(r.FamilyCells("R1")) != 3 {
				t.Fatalf("0.82 row has %d R1 entries, want 3", len(r.FamilyCells("R1")))
			}
		}
	}
	if !found {
		t.Fatal("no 0.82 index row")
	}
	// Scores must descend as keys ascend.
	prev := 2.0
	for _, r := range rows {
		sc, err := kvstore.DecodeScoreDesc(r.Key)
		if err != nil {
			t.Fatal(err)
		}
		if sc > prev {
			t.Fatalf("scores not descending: %g after %g", sc, prev)
		}
		prev = sc
	}
}

// TestIJLMRIndexLayout pins the Fig. 2 structure: one row per join
// value, entries split by relation family.
func TestIJLMRIndexLayout(t *testing.T) {
	c := newTestCluster()
	relL := loadRelation(t, c, "R1", paperR1)
	relR := loadRelation(t, c, "R2", paperR2)
	q := paperQuery(relL, relR, 3)
	idx, _, err := BuildIJLMR(c, q)
	if err != nil {
		t.Fatal(err)
	}
	row, err := c.Get(idx.Table, "a")
	if err != nil {
		t.Fatal(err)
	}
	if row == nil {
		t.Fatal("no index row for join value a")
	}
	// Fig. 2: a -> R1 {r1_10: 1.00, r1_5: 0.73}; R2 {r2_1, r2_7, r2_8, r2_9}.
	if got := len(row.FamilyCells("R1")); got != 2 {
		t.Errorf("R1 entries for a = %d, want 2", got)
	}
	if got := len(row.FamilyCells("R2")); got != 4 {
		t.Errorf("R2 entries for a = %d, want 4", got)
	}
	cell := row.Cell("R1", "r1_10")
	if cell == nil {
		t.Fatal("missing entry r1_10")
	}
	if s, _ := kvstore.ParseFloatValue(cell.Value); s != 1.00 {
		t.Errorf("score of r1_10 = %g", s)
	}
}

// TestDeterministicResults ensures two identical runs return identical
// result sets (ordering included).
func TestDeterministicResults(t *testing.T) {
	run := func() []JoinResult {
		c := newTestCluster()
		left := synthTuples("l", 200, 25, "uniform", 7)
		right := synthTuples("r", 200, 25, "uniform", 8)
		relL := loadRelation(t, c, "L", left)
		relR := loadRelation(t, c, "R", right)
		q := Query{Left: relL, Right: relR, Score: Sum, K: 20}
		bfhmA, _, err := BuildBFHM(c, q.Left, BFHMOptions{NumBuckets: 10})
		if err != nil {
			t.Fatal(err)
		}
		bfhmB, _, err := BuildBFHM(c, q.Right, BFHMOptions{NumBuckets: 10, MBits: bfhmA.MBits})
		if err != nil {
			t.Fatal(err)
		}
		res, err := QueryBFHM(c, q, bfhmA, bfhmB, BFHMQueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Results
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("two identical BFHM runs differ")
	}
}

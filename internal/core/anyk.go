package core

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/kvstore"
)

// This file implements the any-k executor: ranked enumeration over an
// acyclic join tree with no k fixed up front (the ANYK/QUICK family of
// Tziavelis et al., adapted to the paper's inverse-score-list storage).
// Each leaf's tuples arrive in descending score order from its inverse
// score list; arriving tuples join against the already-seen tuples of
// neighboring leaves (so every complete result is assembled exactly
// once, when its last tuple arrives), and a priority queue releases a
// result only once its score provably precedes every result not yet
// assembled — the same threshold bound HRJN uses, generalized over the
// tree's leaves.

// EnsureISLN idempotently builds the shared n-way inverse-score-list
// index for a tree's leaf set: one table keyed by LeafID with one
// column family per relation. Edge predicates never change the indexed
// content, so every tree over the same leaves and aggregate shares one
// physical index (and the star ISLN executor reads the same table).
func EnsureISLN(c *kvstore.Cluster, t *JoinTree, store *IndexStore) error {
	leafID := t.LeafID()
	lock := store.BuildScope("isln/" + leafID)
	lock.Lock()
	defer lock.Unlock()
	if _, ok := store.ISLN(leafID); ok {
		return nil
	}
	star := MultiQuery{Relations: t.Relations, Score: t.Score, K: t.K}
	if star.K < 1 {
		star.K = 1
	}
	idx, _, err := BuildISLN(c, star)
	if err != nil {
		return err
	}
	store.PutISLN(leafID, idx)
	return nil
}

// anykExec is the registry executor behind AlgoAnyK. It supports every
// valid tree shape, including band predicates.
type anykExec struct{}

func (anykExec) Name() string                        { return "anyk" }
func (anykExec) NeedsIndex() bool                    { return true }
func (anykExec) Incremental() bool                   { return true }
func (anykExec) Supports(t *JoinTree) bool           { return true }
func (anykExec) Estimate(st *PlanStats) CostEstimate { return estimateAnyK(st) }

func (anykExec) EnsureIndex(c *kvstore.Cluster, t *JoinTree, store *IndexStore, _ IndexBuildConfig) error {
	if err := t.Validate(); err != nil {
		return err
	}
	return EnsureISLN(c, t, store)
}

func (anykExec) HasIndex(t *JoinTree, store *IndexStore) bool {
	_, ok := store.ISLN(t.LeafID())
	return ok
}

func (anykExec) IndexSize(c *kvstore.Cluster, t *JoinTree, store *IndexStore) uint64 {
	idx, ok := store.ISLN(t.LeafID())
	if !ok {
		return 0
	}
	return tableSize(c, idx.Table)
}

func (anykExec) Run(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (*Result, error) {
	return RunCursor(c, t.K, func() (Cursor, error) { return anykExec{}.Open(c, t, store, opts) })
}

func (anykExec) Open(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (Cursor, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	idx, ok := store.ISLN(t.LeafID())
	if !ok {
		return nil, fmt.Errorf("rankjoin: no any-k index for %s; call EnsureIndexes first", t.LeafID())
	}
	if len(idx.Families) != len(t.Relations) {
		return nil, fmt.Errorf("core: any-k index for %s has %d families, tree has %d leaves",
			t.LeafID(), len(idx.Families), len(t.Relations))
	}
	opts = opts.WithDefaults()
	streams := make([]*islStream, len(t.Relations))
	for i := range t.Relations {
		s, err := newISLStream(c, idx.Table, idx.Families[i], opts.ISLBatch, opts.Parallelism >= 2)
		if err != nil {
			return nil, err
		}
		streams[i] = s
	}
	cur := &anyKCursor{op: newAnyKOp(t), streams: streams, batch: opts.ISLBatch}
	return WrapBudget(cur, opts.Budget), nil
}

// anyKOp is the tree-generalized ranked-enumeration operator.
type anyKOp struct {
	tree   *JoinTree
	n      int
	orders [][]walkStep // expansion order rooted at each leaf
	seen   []*leafIndex // per-leaf tuples pulled so far
	ready  nresultHeap  // assembled results awaiting release
	maxS   []float64    // first (highest) score seen per leaf
	minS   []float64    // last (lowest) score seen per leaf
	got    []bool       // leaf has yielded at least one tuple
	done   []bool       // leaf's list is exhausted
	combo  []Tuple      // scratch assignment during assembly
	scores []float64    // scratch score vector
}

func newAnyKOp(t *JoinTree) *anyKOp {
	n := len(t.Relations)
	op := &anyKOp{
		tree:   t,
		n:      n,
		orders: make([][]walkStep, n),
		seen:   make([]*leafIndex, n),
		maxS:   make([]float64, n),
		minS:   make([]float64, n),
		got:    make([]bool, n),
		done:   make([]bool, n),
		combo:  make([]Tuple, n),
		scores: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		op.orders[i] = t.walkOrder(i)
		op.seen[i] = newLeafIndex(t, i)
		op.maxS[i] = math.Inf(-1)
		op.minS[i] = math.Inf(1)
	}
	return op
}

// push feeds one tuple from leaf i into the operator and assembles
// every new complete result it closes. Rooting the expansion at the
// arriving leaf means a result is formed exactly once — by the last of
// its tuples to arrive.
func (o *anyKOp) push(i int, t Tuple) {
	o.got[i] = true
	if t.Score > o.maxS[i] {
		o.maxS[i] = t.Score
	}
	if t.Score < o.minS[i] {
		o.minS[i] = t.Score
	}
	o.seen[i].add(t)
	o.combo[i] = t
	o.assemble(o.orders[i], 0)
}

func (o *anyKOp) assemble(steps []walkStep, d int) {
	if d == len(steps) {
		for j := 0; j < o.n; j++ {
			o.scores[j] = o.combo[j].Score
		}
		heap.Push(&o.ready, NJoinResult{
			Tuples: append([]Tuple(nil), o.combo...),
			Score:  o.tree.Score.Fn(o.scores),
		})
		return
	}
	s := steps[d]
	for _, cand := range o.seen[s.leaf].candidates(s.edge, o.combo[s.from].JoinValue) {
		o.combo[s.leaf] = cand
		o.assemble(steps, d+1)
	}
}

// exhaust marks leaf i's inverse score list drained.
func (o *anyKOp) exhaust(i int) { o.done[i] = true }

func (o *anyKOp) allDone() bool {
	for _, d := range o.done {
		if !d {
			return false
		}
	}
	return true
}

// threshold bounds the score of every result not yet assembled: any
// such result takes its next tuple from some non-exhausted leaf i at
// score <= minS[i] and every other leaf at score <= maxS[j]; monotonic
// aggregation makes f over that vector an upper bound, maximized over
// the candidate leaves (the HRJN bound, over n lists).
func (o *anyKOp) threshold() float64 {
	allDone := true
	for i := 0; i < o.n; i++ {
		if !o.done[i] {
			allDone = false
		}
		if !o.got[i] {
			if o.done[i] {
				// An empty leaf means no complete result can exist.
				return math.Inf(-1)
			}
			// An unseen leaf could still hold arbitrarily good tuples.
			return math.Inf(1)
		}
	}
	if allDone {
		return math.Inf(-1)
	}
	best := math.Inf(-1)
	for i := 0; i < o.n; i++ {
		if o.done[i] {
			continue
		}
		for j := 0; j < o.n; j++ {
			if j == i {
				o.scores[j] = o.minS[j]
			} else {
				o.scores[j] = o.maxS[j]
			}
		}
		if s := o.tree.Score.Fn(o.scores); s > best {
			best = s
		}
	}
	return best
}

// releasable reports whether the best assembled result may be emitted:
// strictly above the threshold (a tied future result could tie-break
// earlier, so ties wait) or anything once every list is exhausted.
func (o *anyKOp) releasable() bool {
	if o.ready.Len() == 0 {
		return false
	}
	th := o.threshold()
	return o.ready.rs[0].Score > th || math.IsInf(th, -1)
}

// pop releases the best result if releasable.
func (o *anyKOp) pop() (NJoinResult, bool) {
	if !o.releasable() {
		return NJoinResult{}, false
	}
	return heap.Pop(&o.ready).(NJoinResult), true
}

// anyKCursor drives the operator from the per-leaf inverse score
// lists, pulling batches round-robin from the non-exhausted leaves.
type anyKCursor struct {
	op      *anyKOp
	streams []*islStream
	batch   int
	next    int // round-robin position
	closed  bool
}

// Next implements Cursor.
func (a *anyKCursor) Next() (*JoinResult, error) {
	if a.closed {
		return nil, ErrCursorClosed
	}
	for {
		if r, ok := a.op.pop(); ok {
			jr := toJoinResult(r)
			return &jr, nil
		}
		if a.op.allDone() {
			return nil, nil
		}
		if err := a.fill(); err != nil {
			return nil, err
		}
	}
}

// fill pulls up to one batch from the next non-exhausted leaf,
// stopping early the moment a result becomes releasable so the cursor
// never consumes read units past what the next result needs.
func (a *anyKCursor) fill() error {
	n := len(a.streams)
	for tries := 0; tries < n; tries++ {
		i := a.next % n
		a.next++
		if a.op.done[i] {
			continue
		}
		for pulled := 0; pulled < a.batch; pulled++ {
			t, err := a.streams[i].Next()
			if err != nil {
				return err
			}
			if t == nil {
				a.op.exhaust(i)
				break
			}
			a.op.push(i, *t)
			if a.op.releasable() {
				return nil
			}
		}
		return nil
	}
	return nil
}

// Close implements Cursor. An early close abandons the scanners, so no
// further read units accrue.
func (a *anyKCursor) Close() error {
	a.closed = true
	return nil
}

// nresultHeap orders assembled results best-first under the n-way
// result precedence (score descending, row keys ascending in leaf
// order for ties).
type nresultHeap struct {
	rs []NJoinResult
}

func (h *nresultHeap) Len() int           { return len(h.rs) }
func (h *nresultHeap) Less(i, j int) bool { return h.rs[i].less(&h.rs[j]) }
func (h *nresultHeap) Swap(i, j int)      { h.rs[i], h.rs[j] = h.rs[j], h.rs[i] }
func (h *nresultHeap) Push(x any)         { h.rs = append(h.rs, x.(NJoinResult)) }
func (h *nresultHeap) Pop() any {
	old := h.rs
	n := len(old)
	r := old[n-1]
	old[n-1] = NJoinResult{}
	h.rs = old[:n-1]
	return r
}

package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bloom"
	"repro/internal/histogram"
	"repro/internal/kvstore"
	"repro/internal/mapreduce"
)

// This file implements BFHM — the Bloom Filter Histogram Matrix rank join
// (Section 5). Per relation, the index is an equi-width histogram over
// the score axis whose buckets each carry (i) the observed min/max score,
// (ii) a Golomb-compressed single-hash Bloom filter over the bucket's
// join values, and (iii) compressed per-bit counters (the hybrid filter of
// Fig. 4), plus reverse-mapping rows from (bucket, bit) back to the
// tuples that set the bit (Fig. 5).
//
// Query processing is two-phase (Section 5.2): an estimation phase joins
// bucket filters pairwise (Algorithm 7) inside the Algorithm 6 loop, and
// a reverse-mapping phase fetches only the tuples behind the surviving
// estimated results and joins them exactly. The Section 5.3 repair loop
// re-opens estimation when the exact phase comes up short, which makes
// the algorithm's recall 100% regardless of Bloom false positives — a
// property the test suite checks against the naive oracle.

// BFHM index storage layout (per Fig. 5):
//
//	table "bfhm_<relation>", family bfhmFamily
//	  row BucketKey(b):
//	    "blob" -> hybrid filter encoding
//	    "min", "max" -> observed score bounds
//	    "i:<rowKey>" / "d:<rowKey>" -> pending mutation records (Sec. 6)
//	  row ReverseMapKey(b, bit):
//	    "<tuple rowKey>" -> EncodeTuple
const (
	bfhmFamily   = "m"
	bfhmBlobQual = "blob"
	bfhmMinQual  = "min"
	bfhmMaxQual  = "max"
	bfhmInsPfx   = "i:"
	bfhmDelPfx   = "d:"
)

// BFHMIndex locates one relation's BFHM.
type BFHMIndex struct {
	Table  string
	Layout histogram.Layout
	// MBits is the shared single-hash Bloom filter width (every bucket
	// uses the same width so filters can be intersected).
	MBits uint64
}

// BFHMOptions configures index construction.
type BFHMOptions struct {
	// NumBuckets is the histogram resolution (paper: 100-1000).
	NumBuckets int
	// FPP is the false-positive target used to size the filters for the
	// most heavily populated bucket (paper: 5%).
	FPP float64
	// MBits overrides the filter width directly; when zero it is
	// computed from the heaviest bucket via a counting pass.
	MBits uint64
}

func (o *BFHMOptions) defaults() {
	if o.NumBuckets < 1 {
		o.NumBuckets = 100
	}
	if o.FPP <= 0 || o.FPP >= 1 {
		o.FPP = 0.05
	}
}

// BFHMTableName derives a relation's index table name.
func BFHMTableName(rel *Relation) string { return "bfhm_" + rel.Name }

// BuildBFHM builds one relation's BFHM index with the MapReduce job of
// Algorithm 5. When opts.MBits is zero, a counting job first finds the
// heaviest bucket and sizes the filters for opts.FPP (Section 7.1: "all
// Bloom filters were configured to contain the most heavily populated of
// the buckets with a false positive probability of 5%").
func BuildBFHM(c *kvstore.Cluster, rel Relation, opts BFHMOptions) (*BFHMIndex, []*mapreduce.Result, error) {
	opts.defaults()
	layout, err := histogram.NewLayout(0, 1, opts.NumBuckets)
	if err != nil {
		return nil, nil, err
	}
	var results []*mapreduce.Result

	mbits := opts.MBits
	if mbits == 0 {
		counts, res, err := bfhmCountBuckets(c, rel, layout)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, res)
		var heaviest uint64
		for _, n := range counts {
			if n > heaviest {
				heaviest = n
			}
		}
		mbits = bloom.SingleHashBits(heaviest, opts.FPP)
	}

	idx := &BFHMIndex{Table: BFHMTableName(&rel), Layout: layout, MBits: mbits}
	splits := make([]string, 0, c.Nodes()-1)
	for i := 1; i < c.Nodes(); i++ {
		splits = append(splits, kvstore.BucketKey(opts.NumBuckets*i/c.Nodes()))
	}
	if _, err := c.CreateTable(idx.Table, []string{bfhmFamily}, splits); err != nil {
		return nil, nil, err
	}

	// Algorithm 5: map partitions tuples into buckets; each reduce call
	// handles one bucket, building its hybrid filter and emitting the
	// reverse mappings and the blob row.
	res, err := mapreduce.Run(&mapreduce.Job{
		Name:    "bfhm-index-" + rel.Name,
		Cluster: c,
		Input:   kvstore.Scan{Table: rel.Table, Families: []string{rel.Family}},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			t, ok := TupleFromRow(&rel, row)
			if !ok {
				ctx.Counter("skipped", 1)
				return nil
			}
			bucket := layout.BucketOf(t.Score)
			ctx.Emit(kvstore.BucketKey(bucket), EncodeTuple(t))
			return nil
		}),
		Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, ctx mapreduce.Context) error {
			filter := bloom.NewHybrid(mbits)
			minScore, maxScore := math.Inf(1), math.Inf(-1)
			for _, v := range values {
				t, err := DecodeTuple(v)
				if err != nil {
					return err
				}
				bitPos := filter.Insert(t.JoinValue)
				if t.Score < minScore {
					minScore = t.Score
				}
				if t.Score > maxScore {
					maxScore = t.Score
				}
				bucketNo, err := bucketFromKey(key)
				if err != nil {
					return err
				}
				// Reverse mapping entry (Algorithm 5 line 17).
				ctx.WriteCell(idx.Table, kvstore.Cell{
					Row:       kvstore.ReverseMapKey(bucketNo, bitPos),
					Family:    bfhmFamily,
					Qualifier: t.RowKey,
					Value:     EncodeTuple(t),
				})
			}
			blob, err := filter.Encode()
			if err != nil {
				return err
			}
			// Bucket blob row (Algorithm 5 line 19).
			ctx.WriteCell(idx.Table, kvstore.Cell{Row: key, Family: bfhmFamily, Qualifier: bfhmBlobQual, Value: blob})
			ctx.WriteCell(idx.Table, kvstore.Cell{Row: key, Family: bfhmFamily, Qualifier: bfhmMinQual, Value: kvstore.FloatValue(minScore)})
			ctx.WriteCell(idx.Table, kvstore.Cell{Row: key, Family: bfhmFamily, Qualifier: bfhmMaxQual, Value: kvstore.FloatValue(maxScore)})
			ctx.Counter("buckets", 1)
			return nil
		}),
		NumReducers: c.Nodes(),
	})
	if err != nil {
		return nil, nil, err
	}
	results = append(results, res)
	return idx, results, nil
}

// bfhmCountBuckets runs the counting pass sizing the filters.
func bfhmCountBuckets(c *kvstore.Cluster, rel Relation, layout histogram.Layout) (map[int]uint64, *mapreduce.Result, error) {
	res, err := mapreduce.Run(&mapreduce.Job{
		Name:    "bfhm-count-" + rel.Name,
		Cluster: c,
		Input:   kvstore.Scan{Table: rel.Table, Families: []string{rel.Family}},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			t, ok := TupleFromRow(&rel, row)
			if !ok {
				return nil
			}
			ctx.Emit(kvstore.BucketKey(layout.BucketOf(t.Score)), []byte{1})
			return nil
		}),
		Combiner: countReducer(),
		Reducer:  countReducer(),
	})
	if err != nil {
		return nil, nil, err
	}
	counts := map[int]uint64{}
	for _, kv := range res.Output {
		b, err := bucketFromKey(kv.Key)
		if err != nil {
			return nil, nil, err
		}
		counts[b] += decodeCount(kv.Value)
	}
	return counts, res, nil
}

func countReducer() mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values [][]byte, ctx mapreduce.Context) error {
		var n uint64
		for _, v := range values {
			n += decodeCount(v)
		}
		ctx.Emit(key, encodeCount(n))
		return nil
	})
}

// encodeCount/decodeCount serialize partial counts on the MapReduce
// shuffle path; strconv instead of fmt.Sprintf/Sscanf because they run
// once per emitted pair.
func encodeCount(n uint64) []byte {
	var buf [20]byte
	return strconv.AppendUint(buf[:0], n, 10)
}

func decodeCount(b []byte) uint64 {
	if len(b) == 1 && b[0] == 1 {
		return 1
	}
	n, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// bucketFromKey parses the leading decimal digits of a bucket row key
// (zero-padded bucket number, possibly followed by a key separator).
func bucketFromKey(key string) (int, error) {
	end := 0
	for end < len(key) && key[end] >= '0' && key[end] <= '9' {
		end++
	}
	if end == 0 {
		return 0, fmt.Errorf("bfhm: bad bucket key %q", key)
	}
	b, err := strconv.Atoi(key[:end])
	if err != nil {
		return 0, fmt.Errorf("bfhm: bad bucket key %q: %w", key, err)
	}
	return b, nil
}

// bfhmBucket is a fetched, decoded bucket.
type bfhmBucket struct {
	No       int
	Min, Max float64
	Filter   *bloom.Hybrid
	Empty    bool
	// Dirty reports pending mutation records were replayed into Filter.
	Dirty bool
	// LatestMutTS is the newest replayed mutation timestamp.
	LatestMutTS int64
	// mutQuals lists the replayed mutation record qualifiers (for
	// write-back purging).
	mutQuals []string
}

// WriteBackMode selects when reconstructed BFHM blobs are persisted
// (Section 6: eagerly, lazily, or offline).
type WriteBackMode int

// Write-back policies.
const (
	// WriteBackOff never persists replayed blobs (queries still see
	// fresh data by replaying mutation records in memory).
	WriteBackOff WriteBackMode = iota
	// WriteBackEager persists a reconstructed blob as soon as a dirty
	// bucket is fetched, before query processing continues.
	WriteBackEager
	// WriteBackLazy persists reconstructed blobs after the query's
	// results are computed.
	WriteBackLazy
)

// BFHMQueryOptions tunes query processing.
type BFHMQueryOptions struct {
	WriteBack WriteBackMode
	// Parallelism >= 2 fans the reverse-mapping multi-get batches out
	// over that many concurrent lanes (per-region RPCs, grouped by
	// node), instead of issuing them strictly sequentially.
	Parallelism int
}

// fetchBFHMBucket reads and decodes bucket b, replaying any pending
// mutation records (insertion/tombstone cells) in timestamp order.
func fetchBFHMBucket(c *kvstore.Cluster, idx *BFHMIndex, b int) (*bfhmBucket, error) {
	row, err := c.Get(idx.Table, kvstore.BucketKey(b))
	if err != nil {
		return nil, err
	}
	if row == nil {
		return &bfhmBucket{No: b, Empty: true}, nil
	}
	out := &bfhmBucket{No: b, Min: math.Inf(1), Max: math.Inf(-1)}
	var blob []byte
	type mut struct {
		ins  bool
		t    Tuple
		ts   int64
		qual string
	}
	var muts []mut
	for i := range row.Cells {
		cell := &row.Cells[i]
		switch {
		case cell.Qualifier == bfhmBlobQual:
			blob = cell.Value
		case cell.Qualifier == bfhmMinQual:
			if v, ok := kvstore.ParseFloatValue(cell.Value); ok {
				out.Min = v
			}
		case cell.Qualifier == bfhmMaxQual:
			if v, ok := kvstore.ParseFloatValue(cell.Value); ok {
				out.Max = v
			}
		case strings.HasPrefix(cell.Qualifier, bfhmInsPfx), strings.HasPrefix(cell.Qualifier, bfhmDelPfx):
			t, err := DecodeTuple(cell.Value)
			if err != nil {
				return nil, fmt.Errorf("bfhm: bad mutation record %q: %w", cell.Qualifier, err)
			}
			muts = append(muts, mut{
				ins:  strings.HasPrefix(cell.Qualifier, bfhmInsPfx),
				t:    t,
				ts:   cell.Timestamp,
				qual: cell.Qualifier,
			})
		}
	}
	if blob == nil {
		if len(muts) == 0 {
			return &bfhmBucket{No: b, Empty: true}, nil
		}
		// Bucket created purely by online inserts: start empty.
		out.Filter = bloom.NewHybrid(idx.MBits)
	} else {
		f, err := bloom.DecodeHybrid(blob)
		if err != nil {
			return nil, fmt.Errorf("bfhm: bucket %d blob: %w", b, err)
		}
		out.Filter = f
	}
	// Replay mutations in timestamp order (Section 6: "replay all row
	// mutations in timestamp order and reconstruct the up-to-date blob").
	// At equal timestamps, deletions apply first: an update ships its
	// old-tuple tombstone and new-tuple insertion under one shared
	// timestamp, and must net to "replaced", not "removed".
	sort.SliceStable(muts, func(i, j int) bool {
		if muts[i].ts != muts[j].ts {
			return muts[i].ts < muts[j].ts
		}
		return !muts[i].ins && muts[j].ins
	})
	// Per-row-key presence tracking makes replay idempotent under
	// repeated records: record qualifiers are timestamp-suffixed, so a
	// retried Delete (or a blind double Insert) appends a SECOND record
	// for the same key — applying both would double-decrement counting-
	// filter bits shared with live tuples.
	const (
		keyPresent = 1
		keyAbsent  = 2
	)
	keyState := map[string]int{}
	for _, m := range muts {
		st := keyState[m.t.RowKey]
		if m.ins {
			if st != keyPresent {
				keyState[m.t.RowKey] = keyPresent
				out.Filter.Insert(m.t.JoinValue)
				if m.t.Score < out.Min {
					out.Min = m.t.Score
				}
				if m.t.Score > out.Max {
					out.Max = m.t.Score
				}
			}
		} else if st != keyAbsent {
			keyState[m.t.RowKey] = keyAbsent
			out.Filter.Remove(m.t.JoinValue)
			// Deletions keep Min/Max conservative (cannot shrink
			// without a rebuild).
		}
		out.Dirty = true
		if m.ts > out.LatestMutTS {
			out.LatestMutTS = m.ts
		}
		out.mutQuals = append(out.mutQuals, m.qual)
	}
	if out.Filter.N() == 0 && out.Filter.PopCount() == 0 && blob == nil {
		out.Empty = true
	}
	return out, nil
}

// FetchBucketFilter reads one BFHM bucket and returns its hybrid filter
// with any pending online mutations replayed (nil when the bucket is
// empty). The query planner's statistics walk uses it; the read is
// metered like any other client access.
func FetchBucketFilter(c *kvstore.Cluster, idx *BFHMIndex, b int) (*bloom.Hybrid, error) {
	bk, err := fetchBFHMBucket(c, idx, b)
	if err != nil {
		return nil, err
	}
	if bk.Empty || bk.Filter == nil {
		return nil, nil
	}
	return bk.Filter, nil
}

// writeBackBucket persists a reconstructed blob and purges the replayed
// mutation records in one atomic row mutation (Section 6).
func writeBackBucket(c *kvstore.Cluster, idx *BFHMIndex, b *bfhmBucket) error {
	if !b.Dirty || b.Filter == nil {
		return nil
	}
	blob, err := b.Filter.Encode()
	if err != nil {
		return err
	}
	ts := b.LatestMutTS
	cells := []kvstore.Cell{
		{Row: kvstore.BucketKey(b.No), Family: bfhmFamily, Qualifier: bfhmBlobQual, Value: blob, Timestamp: ts},
		{Row: kvstore.BucketKey(b.No), Family: bfhmFamily, Qualifier: bfhmMinQual, Value: kvstore.FloatValue(b.Min), Timestamp: ts},
		{Row: kvstore.BucketKey(b.No), Family: bfhmFamily, Qualifier: bfhmMaxQual, Value: kvstore.FloatValue(b.Max), Timestamp: ts},
	}
	for _, q := range b.mutQuals {
		cells = append(cells, kvstore.Cell{
			Row: kvstore.BucketKey(b.No), Family: bfhmFamily, Qualifier: q,
			Timestamp: ts, Tombstone: true,
		})
	}
	//lint:allow maintcheck writes the BFHM index's own bucket table, not a maintained base relation
	if err := c.MutateRow(idx.Table, cells); err != nil {
		return err
	}
	b.Dirty = false
	b.mutQuals = nil
	return nil
}

// estimatedResult is one row of the Fig. 6(c) estimation table: a joined
// bucket pair.
type estimatedResult struct {
	bucketA, bucketB int
	bits             []uint64
	cardinality      float64
	minScore         float64
	maxScore         float64
}

// bfhmState carries the query's working state across the repair loop.
type bfhmState struct {
	c          *kvstore.Cluster
	q          *Query
	idxA, idxB *BFHMIndex
	opts       BFHMQueryOptions

	bucketsA []*bfhmBucket // fetched, in fetch order (desc score)
	bucketsB []*bfhmBucket
	nextA    int // next bucket number to fetch
	nextB    int
	est      []estimatedResult
	estCard  float64

	revCache map[string][]Tuple // "<rel>|<bucket>|<bit>" -> tuples
	dirty    []*bfhmBucket      // buckets awaiting lazy write-back
	top      *TopKList
}

// QueryBFHM runs the two-phase BFHM rank join with the 100%-recall
// repair loop of Section 5.3.
func QueryBFHM(c *kvstore.Cluster, q Query, idxA, idxB *BFHMIndex, opts BFHMQueryOptions) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if idxA.MBits != idxB.MBits {
		return nil, fmt.Errorf("bfhm: filter widths differ (%d vs %d); indexes must be built with matching MBits",
			idxA.MBits, idxB.MBits)
	}
	before := c.Metrics().Snapshot()
	st := &bfhmState{
		c: c, q: &q, idxA: idxA, idxB: idxB, opts: opts,
		revCache: map[string][]Tuple{},
		top:      NewTopKList(q.K),
	}

	target := q.K
	shortRounds := 0
	for round := 0; ; round++ {
		if round > 2*(idxA.Layout.Buckets+idxB.Layout.Buckets)+64 {
			return nil, fmt.Errorf("bfhm: repair loop failed to converge")
		}
		fetched, err := st.estimationPhase(target)
		if err != nil {
			return nil, err
		}
		if err := st.reverseMappingPhase(target); err != nil {
			return nil, err
		}
		if bfhmDebug {
			fmt.Printf("DBG round=%d target=%d fetched=%d nextA=%d nextB=%d est=%d estCard=%.1f top=%d\n",
				round, target, fetched, st.nextA, st.nextB, len(st.est), st.estCard, st.top.Len())
		}
		// Section 5.3 repair checks.
		if st.top.Len() < q.K && !st.exhausted() {
			// k' < k results produced: resume the query processing
			// algorithm, now looking for the top k + (k - k'). The
			// raised target loosens BOTH the estimation termination
			// and the phase-2 purge threshold. Inflated cardinality
			// estimates can keep k' stagnant, so the increment grows
			// geometrically with consecutive short rounds.
			deficit := q.K - st.top.Len()
			if shortRounds < 24 {
				target += deficit << uint(shortRounds)
			} else {
				target *= 2
			}
			shortRounds++
			if fetched == 0 {
				// Estimation believes it is done (cardinality
				// overestimates); force real progress.
				if err := st.forceFetchNext(); err != nil {
					return nil, err
				}
			}
			continue
		}
		if st.top.Len() >= q.K {
			// k or more actual results: compare the k'th actual score
			// with the max attainable score of unfetched buckets; any
			// bucket above it must be examined too.
			kth := st.top.KthScore()
			if st.maxUnfetchedScore() > kth {
				n, err := st.fetchBeyond(kth)
				if err != nil {
					return nil, err
				}
				if n > 0 {
					continue // redo the exact phase with new buckets
				}
			}
		}
		break
	}
	if opts.WriteBack == WriteBackLazy {
		for _, b := range st.dirty {
			if err := writeBackBucket(c, st.idxFor(b), b); err != nil {
				return nil, err
			}
		}
	}
	return &Result{Results: st.top.Results(), Cost: c.Metrics().Snapshot().Sub(before)}, nil
}

func (st *bfhmState) idxFor(b *bfhmBucket) *BFHMIndex {
	for _, fb := range st.bucketsA {
		if fb == b {
			return st.idxA
		}
	}
	return st.idxB
}

func (st *bfhmState) exhausted() bool {
	return st.nextA >= st.idxA.Layout.Buckets && st.nextB >= st.idxB.Layout.Buckets
}

// maxUnfetchedScore bounds the best join score any unexamined bucket
// combination could produce, using bucket-boundary bounds as in the
// worked example of Section 5.2.
func (st *bfhmState) maxUnfetchedScore() float64 {
	f := st.q.Score.Fn
	best := math.Inf(-1)
	if st.nextA < st.idxA.Layout.Buckets {
		s := f(st.idxA.Layout.MaxScore(st.nextA), st.idxB.Layout.Hi)
		if s > best {
			best = s
		}
	}
	if st.nextB < st.idxB.Layout.Buckets {
		s := f(st.idxA.Layout.Hi, st.idxB.Layout.MaxScore(st.nextB))
		if s > best {
			best = s
		}
	}
	return best
}

// kthEstimate walks the estimated results in descending max-score order,
// accumulating cardinalities, and returns the (maxScore, minScore) of the
// result containing the k'th estimated tuple. ok is false while fewer
// than k tuples are estimated.
func (st *bfhmState) kthEstimate(k int) (maxScore, minScore float64, ok bool) {
	if st.estCard < float64(k) {
		return 0, 0, false
	}
	idxs := make([]int, len(st.est))
	for i := range idxs {
		idxs[i] = i
	}
	sort.Slice(idxs, func(a, b int) bool {
		ea, eb := &st.est[idxs[a]], &st.est[idxs[b]]
		if ea.maxScore != eb.maxScore {
			return ea.maxScore > eb.maxScore
		}
		return ea.minScore > eb.minScore
	})
	var acc float64
	for _, i := range idxs {
		acc += st.est[i].cardinality
		if acc >= float64(k) {
			return st.est[i].maxScore, st.est[i].minScore, true
		}
	}
	return 0, 0, false
}

// fetchNext fetches the next bucket of one relation and joins it against
// the other relation's fetched buckets.
func (st *bfhmState) fetchNext(isA bool) error {
	if isA {
		b, err := st.fetchBucket(st.idxA, st.nextA)
		if err != nil {
			return err
		}
		st.nextA++
		st.bucketsA = append(st.bucketsA, b)
		if !b.Empty {
			return st.joinBucketAgainst(b, true)
		}
		return nil
	}
	b, err := st.fetchBucket(st.idxB, st.nextB)
	if err != nil {
		return err
	}
	st.nextB++
	st.bucketsB = append(st.bucketsB, b)
	if !b.Empty {
		return st.joinBucketAgainst(b, false)
	}
	return nil
}

// forceFetchNext pulls one more bucket from each non-exhausted relation.
func (st *bfhmState) forceFetchNext() error {
	if st.nextA < st.idxA.Layout.Buckets {
		if err := st.fetchNext(true); err != nil {
			return err
		}
	}
	if st.nextB < st.idxB.Layout.Buckets {
		if err := st.fetchNext(false); err != nil {
			return err
		}
	}
	return nil
}

// fetchBeyond fetches every remaining bucket whose best attainable join
// score exceeds threshold, returning how many were fetched.
func (st *bfhmState) fetchBeyond(threshold float64) (int, error) {
	f := st.q.Score.Fn
	n := 0
	for {
		progressed := false
		if st.nextA < st.idxA.Layout.Buckets &&
			f(st.idxA.Layout.MaxScore(st.nextA), st.idxB.Layout.Hi) > threshold {
			if err := st.fetchNext(true); err != nil {
				return n, err
			}
			n++
			progressed = true
		}
		if st.nextB < st.idxB.Layout.Buckets &&
			f(st.idxA.Layout.Hi, st.idxB.Layout.MaxScore(st.nextB)) > threshold {
			if err := st.fetchNext(false); err != nil {
				return n, err
			}
			n++
			progressed = true
		}
		if !progressed {
			return n, nil
		}
	}
}

// estimationPhase implements Algorithm 6: fetch buckets alternately,
// join each new bucket against the other relation's fetched buckets, and
// stop once k tuples are estimated and no unexamined combination can
// exceed the k'th estimated tuple's score. It returns the number of
// buckets fetched in this invocation.
func (st *bfhmState) estimationPhase(k int) (int, error) {
	fetched := 0
	// Resume termination check first — the repair loop may re-enter with
	// a higher k after estimation already terminated once.
	if done := st.estimationDone(k); done {
		return fetched, nil
	}
	cur := 0
	if len(st.bucketsA) > len(st.bucketsB) {
		cur = 1
	}
	for {
		if cur == 0 && st.nextA < st.idxA.Layout.Buckets {
			if err := st.fetchNext(true); err != nil {
				return fetched, err
			}
			fetched++
		} else if cur == 1 && st.nextB < st.idxB.Layout.Buckets {
			if err := st.fetchNext(false); err != nil {
				return fetched, err
			}
			fetched++
		}
		if done := st.estimationDone(k); done {
			return fetched, nil
		}
		if st.exhausted() {
			return fetched, nil
		}
		cur = 1 - cur
	}
}

// estimationDone checks the Algorithm 6 termination condition for target
// k: at least k estimated tuples and no unexamined bucket combination
// above the k'th estimated tuple's score.
func (st *bfhmState) estimationDone(k int) bool {
	if st.exhausted() {
		return true
	}
	kthMax, _, ok := st.kthEstimate(k)
	if !ok {
		return false
	}
	return st.maxUnfetchedScore() <= kthMax
}

// fetchBucket fetches and (per the write-back policy) reconstructs one
// bucket.
func (st *bfhmState) fetchBucket(idx *BFHMIndex, no int) (*bfhmBucket, error) {
	b, err := fetchBFHMBucket(st.c, idx, no)
	if err != nil {
		return nil, err
	}
	if b.Dirty {
		switch st.opts.WriteBack {
		case WriteBackEager:
			if err := writeBackBucket(st.c, idx, b); err != nil {
				return nil, err
			}
		case WriteBackLazy:
			st.dirty = append(st.dirty, b)
		}
	}
	return b, nil
}

// joinBucketAgainst joins a newly fetched bucket with every fetched
// bucket of the other relation (Algorithm 6 lines 19-29, Algorithm 7).
func (st *bfhmState) joinBucketAgainst(nb *bfhmBucket, newIsA bool) error {
	others := st.bucketsB
	if !newIsA {
		others = st.bucketsA
	}
	for _, ob := range others {
		if ob.Empty {
			continue
		}
		var a, b *bfhmBucket
		if newIsA {
			a, b = nb, ob
		} else {
			a, b = ob, nb
		}
		est, err := bloom.EstimateJoin(a.Filter, b.Filter)
		if err != nil {
			return err
		}
		if est == nil {
			continue // empty bitmap intersection (Algorithm 7 line 5)
		}
		st.est = append(st.est, estimatedResult{
			bucketA:     a.No,
			bucketB:     b.No,
			bits:        est.Bits,
			cardinality: est.Cardinality,
			minScore:    st.q.Score.Fn(a.Min, b.Min),
			maxScore:    st.q.Score.Fn(a.Max, b.Max),
		})
		st.estCard += est.Cardinality
	}
	return nil
}

// reverseMappingPhase implements phase 2 (Section 5.2): purge estimated
// results that cannot reach the target'th estimated tuple's minimum
// score, fetch the reverse mappings behind the survivors, and join
// exactly. The purge threshold combines the estimation-side bound (which
// inflated cardinalities can push too high — hence the repair target)
// with the previous round's k'th ACTUAL score, whichever admits more.
func (st *bfhmState) reverseMappingPhase(target int) error {
	if len(st.est) == 0 {
		return nil
	}
	kthMin := math.Inf(-1)
	if _, m, ok := st.kthEstimate(target); ok {
		kthMin = m
	}
	if st.top.Full() {
		// A full top-k from the previous round bounds the final k'th
		// score from below; keeping everything above it is always
		// recall-safe and never tighter than the true final threshold.
		if ka := st.top.KthScore(); ka < kthMin {
			kthMin = ka
		}
	}
	// Collect the surviving pairs and batch-fetch their reverse-mapping
	// rows (one multi-get RPC per batch — the per-row read units are
	// unchanged, but round trips amortize, as with HBase batched Gets).
	var cands []*estimatedResult
	for i := range st.est {
		er := &st.est[i]
		if er.maxScore < kthMin {
			continue // purged (Section 5.3 keep rule)
		}
		cands = append(cands, er)
	}
	if err := st.prefetchReverse(cands); err != nil {
		return err
	}
	st.top = NewTopKList(st.q.K)
	for _, er := range cands {
		for _, bit := range er.bits {
			tuplesA := st.revCache[revCacheKey("A", er.bucketA, bit)]
			tuplesB := st.revCache[revCacheKey("B", er.bucketB, bit)]
			for _, ta := range tuplesA {
				for _, tb := range tuplesB {
					if ta.JoinValue != tb.JoinValue {
						continue // Bloom bit collision, not a join
					}
					st.top.Add(JoinResult{
						Left:  ta,
						Right: tb,
						Score: st.q.Score.Fn(ta.Score, tb.Score),
					})
				}
			}
		}
	}
	return nil
}

func revCacheKey(tag string, bucket int, bit uint64) string {
	return fmt.Sprintf("%s|%d|%d", tag, bucket, bit)
}

// revBatchSize rows per multi-get RPC during reverse-mapping fetch.
const revBatchSize = 128

// prefetchReverse multi-gets every not-yet-cached reverse-mapping row
// the candidate pairs need.
func (st *bfhmState) prefetchReverse(cands []*estimatedResult) error {
	type want struct {
		cacheKey string
		rowKey   string
	}
	var needA, needB []want
	seen := map[string]bool{}
	for _, er := range cands {
		for _, bit := range er.bits {
			ka := revCacheKey("A", er.bucketA, bit)
			if _, ok := st.revCache[ka]; !ok && !seen[ka] {
				seen[ka] = true
				needA = append(needA, want{ka, kvstore.ReverseMapKey(er.bucketA, bit)})
			}
			kb := revCacheKey("B", er.bucketB, bit)
			if _, ok := st.revCache[kb]; !ok && !seen[kb] {
				seen[kb] = true
				needB = append(needB, want{kb, kvstore.ReverseMapKey(er.bucketB, bit)})
			}
		}
	}
	fetch := func(idx *BFHMIndex, need []want) error {
		for start := 0; start < len(need); start += revBatchSize {
			end := start + revBatchSize
			if end > len(need) {
				end = len(need)
			}
			keys := make([]string, 0, end-start)
			for _, w := range need[start:end] {
				keys = append(keys, w.rowKey)
			}
			rows, err := st.c.ParallelMultiGet(idx.Table, keys, st.opts.Parallelism)
			if err != nil {
				return err
			}
			for i, row := range rows {
				var out []Tuple
				if row != nil {
					for j := range row.Cells {
						t, err := DecodeTuple(row.Cells[j].Value)
						if err != nil {
							return fmt.Errorf("bfhm: bad reverse mapping in %s: %w", row.Key, err)
						}
						out = append(out, t)
					}
				}
				st.revCache[need[start+i].cacheKey] = out
			}
		}
		return nil
	}
	if err := fetch(st.idxA, needA); err != nil {
		return err
	}
	return fetch(st.idxB, needB)
}

// bfhmDebug enables repair-loop tracing in tests.
var bfhmDebug = false

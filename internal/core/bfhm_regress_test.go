package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestBFHMSquaredScoreDistribution reproduces a regression found by the
// fulltext example: relevance-like scores (rel^2, concentrated near 0,
// sparse near 1) with large relation-size asymmetry made BFHM return
// fewer than k results. Guards the repair loop against aggressive
// phase-2 purging.
func TestBFHMSquaredScoreDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	posting := func(prefix string, docs, hits int) []Tuple {
		picked := map[int]bool{}
		var out []Tuple
		for len(picked) < hits {
			d := rng.Intn(docs)
			if picked[d] {
				continue
			}
			picked[d] = true
			rel := rng.Float64()
			rel = rel * rel
			out = append(out, Tuple{
				RowKey:    fmt.Sprintf("%s-d%06d", prefix, d),
				JoinValue: fmt.Sprintf("doc%06d", d),
				Score:     rel,
			})
		}
		return out
	}
	left := posting("a", 20000, 4000)
	right := posting("b", 20000, 900)

	c := newTestCluster()
	relL := loadRelation(t, c, "L", left)
	relR := loadRelation(t, c, "R", right)
	q := Query{Left: relL, Right: relR, Score: Sum, K: 10}
	bfhmL, _, err := BuildBFHM(c, relL, BFHMOptions{NumBuckets: 100})
	if err != nil {
		t.Fatal(err)
	}
	bfhmR, _, err := BuildBFHM(c, relR, BFHMOptions{NumBuckets: 100, MBits: bfhmL.MBits})
	if err != nil {
		t.Fatal(err)
	}
	got, err := QueryBFHM(c, q, bfhmL, bfhmR, BFHMQueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopK(left, right, Sum, q.K)
	assertScoresEqual(t, "bfhm-squared-scores", scoresOf(got.Results), scoresOf(want))
	verifyResultsAreRealJoins(t, "bfhm-squared-scores", got.Results, Sum)
}

package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/kvstore"
	"repro/internal/sim"
)

// ErrCanceled is the sentinel every cancellation-shaped failure matches
// via errors.Is: context cancellation, context deadline, and explicit
// QueryOptions deadlines all surface as a *CanceledError wrapping it.
var ErrCanceled = fmt.Errorf("rankjoin: query canceled")

// CanceledError reports a query stopped by its context or deadline. It
// carries whatever results were already in descending-score order when
// the budget fired — a best-effort prefix of the true top-k, usable for
// graceful degradation — plus the read units spent producing them.
type CanceledError struct {
	// Cause is context.Canceled, context.DeadlineExceeded, or nil for
	// a QueryOptions.Deadline that elapsed without a context.
	Cause error
	// Partial holds the results accumulated before cancellation.
	Partial []JoinResult
	// ReadUnits is the read-unit spend at the moment the query stopped.
	ReadUnits uint64
}

func (e *CanceledError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("rankjoin: query canceled after %d results, %d read units: %v", len(e.Partial), e.ReadUnits, e.Cause)
	}
	return fmt.Sprintf("rankjoin: query deadline exceeded after %d results, %d read units", len(e.Partial), e.ReadUnits)
}

// Is makes errors.Is(err, ErrCanceled) — and, when the cause is a
// context error, errors.Is(err, context.DeadlineExceeded) via Unwrap —
// both work.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

func (e *CanceledError) Unwrap() error { return e.Cause }

// BudgetExceededError reports a query stopped by its MaxReadUnits cap.
// Like CanceledError it carries the partial results, so a caller can
// choose to serve them with a degraded-quality marker.
type BudgetExceededError struct {
	Limit   uint64 // the configured MaxReadUnits
	Spent   uint64 // read units consumed when the cap fired
	Partial []JoinResult
}

func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("rankjoin: read budget exceeded: %d read units spent of %d allowed (%d results collected)", e.Spent, e.Limit, len(e.Partial))
}

// Budget bounds one query's execution: wall-clock (context + absolute
// deadline) and resource spend (read units, measured on the query's
// metrics lane). A nil *Budget is valid and never trips — the zero-cost
// path for unbounded queries.
//
// Check is called from two kinds of places: the kvstore guard seam
// (every metered RPC, covering work that happens inside index builds,
// materialization, and MapReduce jobs) and the per-result cursor wrap
// in each executor. Both run on the query's goroutine.
type Budget struct {
	Ctx          context.Context
	Deadline     time.Time // zero = none
	MaxReadUnits uint64    // 0 = unlimited

	lane      *sim.Metrics
	baseReads uint64
}

// NewBudget builds a budget from the query options' raw fields,
// returning nil when nothing is bounded.
func NewBudget(ctx context.Context, deadline time.Time, maxReadUnits uint64) *Budget {
	if ctx == nil && deadline.IsZero() && maxReadUnits == 0 {
		return nil
	}
	return &Budget{Ctx: ctx, Deadline: deadline, MaxReadUnits: maxReadUnits}
}

// Attach binds the budget to the metrics lane its read-unit spend is
// measured on, baselining at the lane's current count. Nil-safe.
func (b *Budget) Attach(lane *sim.Metrics) {
	if b == nil || lane == nil {
		return
	}
	b.lane = lane
	b.baseReads = lane.KVReads()
}

// Rebind points the budget at a resuming page's bounds: the context
// and deadline of the new request replace the originals — which may
// have expired with the request that opened the cursor — and the
// read-unit cap re-baselines at the lane's current spend, so it caps
// this page rather than the cursor's lifetime. Nil-safe; a cursor
// opened with no budget stays unbounded (there is nothing to rebind
// the guard seam to).
func (b *Budget) Rebind(ctx context.Context, deadline time.Time, maxReadUnits uint64) {
	if b == nil {
		return
	}
	b.Ctx = ctx
	b.Deadline = deadline
	b.MaxReadUnits = maxReadUnits
	if b.lane != nil {
		b.baseReads = b.lane.KVReads()
	}
}

// Spent returns the read units consumed since Attach. Nil-safe.
func (b *Budget) Spent() uint64 {
	if b == nil || b.lane == nil {
		return 0
	}
	return b.lane.KVReads() - b.baseReads
}

// Check returns nil while the query may continue, or the typed error
// that should stop it: *CanceledError for context/deadline,
// *BudgetExceededError for the read-unit cap. Nil-safe; partial results
// are attached by the query layer, which alone knows them.
func (b *Budget) Check() error {
	if b == nil {
		return nil
	}
	if b.Ctx != nil {
		if err := b.Ctx.Err(); err != nil {
			return &CanceledError{Cause: err, ReadUnits: b.Spent()}
		}
	}
	if !b.Deadline.IsZero() && !time.Now().Before(b.Deadline) {
		return &CanceledError{ReadUnits: b.Spent()}
	}
	if b.MaxReadUnits > 0 {
		if spent := b.Spent(); spent > b.MaxReadUnits {
			return &BudgetExceededError{Limit: b.MaxReadUnits, Spent: spent}
		}
	}
	return nil
}

// Guard adapts Check to the kvstore.Cluster guard seam. Nil-safe: a nil
// budget returns a nil func so the cluster skips the indirection.
func (b *Budget) Guard() func() error {
	if b == nil {
		return nil
	}
	return b.Check
}

// GuardedView returns c with the budget's guard installed (and its
// spend baselined on c's metrics lane). A nil budget returns c
// unchanged.
func (b *Budget) GuardedView(c *kvstore.Cluster) *kvstore.Cluster {
	if b == nil {
		return c
	}
	b.Attach(c.Metrics())
	return c.WithGuard(b.Check)
}

// budgetCursor enforces the budget between results: executors wrap
// their cursor in Open so even a fully-materialized plan stops handing
// out rows once the query is over budget.
type budgetCursor struct {
	src Cursor
	b   *Budget
}

// WrapBudget applies the budget to a cursor; nil budgets pass the
// cursor through untouched.
func WrapBudget(c Cursor, b *Budget) Cursor {
	if b == nil {
		return c
	}
	return &budgetCursor{src: c, b: b}
}

func (c *budgetCursor) Next() (*JoinResult, error) {
	if err := c.b.Check(); err != nil {
		return nil, err
	}
	return c.src.Next()
}

func (c *budgetCursor) Close() error { return c.src.Close() }

package core

package core

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// costSetup loads a moderately sized workload on an EC2-profile cluster
// and builds all indexes, returning per-algorithm query costs.
type costResults struct {
	naive, hive, pig, ijlmr, isl, bfhm, drjn sim.Snapshot
}

func measureCosts(t *testing.T, k int) costResults {
	t.Helper()
	p := sim.EC2()
	c := mustCluster(t, p)
	// Large enough that data costs dominate MR job startup — the regime
	// the paper evaluates in (its smallest dataset is 60M rows).
	left := synthTuples("l", 2000, 20, "uniform", 11)
	right := synthTuples("r", 2000, 20, "uniform", 12)
	relL := loadRelation(t, c, "L", left)
	relR := loadRelation(t, c, "R", right)
	q := Query{Left: relL, Right: relR, Score: Sum, K: k}

	ijlmrIdx, _, err := BuildIJLMR(c, q)
	if err != nil {
		t.Fatal(err)
	}
	islIdx, _, err := BuildISL(c, q)
	if err != nil {
		t.Fatal(err)
	}
	bfhmL, _, err := BuildBFHM(c, relL, BFHMOptions{NumBuckets: 100})
	if err != nil {
		t.Fatal(err)
	}
	bfhmR, _, err := BuildBFHM(c, relR, BFHMOptions{NumBuckets: 100, MBits: bfhmL.MBits})
	if err != nil {
		t.Fatal(err)
	}
	drjnL, _, err := BuildDRJN(c, relL, DRJNOptions{NumBuckets: 100, JoinParts: 64})
	if err != nil {
		t.Fatal(err)
	}
	drjnR, _, err := BuildDRJN(c, relR, DRJNOptions{NumBuckets: 100, JoinParts: 64})
	if err != nil {
		t.Fatal(err)
	}

	var out costResults
	res, err := NaiveTopK(c, q)
	if err != nil {
		t.Fatal(err)
	}
	out.naive = res.Cost
	res, err = QueryHive(c, q)
	if err != nil {
		t.Fatal(err)
	}
	out.hive = res.Cost
	res, err = QueryPig(c, q)
	if err != nil {
		t.Fatal(err)
	}
	out.pig = res.Cost
	res, err = QueryIJLMR(c, q, ijlmrIdx)
	if err != nil {
		t.Fatal(err)
	}
	out.ijlmr = res.Cost
	res, err = QueryISL(c, q, islIdx, ISLOptions{BatchLeft: 8, BatchRight: 8})
	if err != nil {
		t.Fatal(err)
	}
	out.isl = res.Cost
	res, err = QueryBFHM(c, q, bfhmL, bfhmR, BFHMQueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out.bfhm = res.Cost
	res, err = QueryDRJN(c, q, drjnL, drjnR)
	if err != nil {
		t.Fatal(err)
	}
	out.drjn = res.Cost
	return out
}

// TestCostShapes checks the paper's headline relative results
// (Section 7.2) hold in the cost model:
//
//   - query time: HIVE > PIG > IJLMR > {ISL, BFHM}; DRJN way behind
//     ISL/BFHM
//   - network: IJLMR ships only top-k lists (must beat Hive by a lot);
//     ISL and BFHM ship far less than the MR baselines
//   - dollar cost (KV reads): BFHM beats ISL; both beat the full-scan
//     approaches by orders of magnitude
func TestCostShapes(t *testing.T) {
	costs := measureCosts(t, 10)

	// ---- Query processing time (Fig. 7a/7d shape). ----
	if !(costs.hive.SimTime > costs.pig.SimTime) {
		t.Errorf("time: HIVE (%v) must exceed PIG (%v)", costs.hive.SimTime, costs.pig.SimTime)
	}
	if !(costs.pig.SimTime > costs.ijlmr.SimTime) {
		t.Errorf("time: PIG (%v) must exceed IJLMR (%v)", costs.pig.SimTime, costs.ijlmr.SimTime)
	}
	if !(costs.ijlmr.SimTime > costs.isl.SimTime) {
		t.Errorf("time: IJLMR (%v) must exceed ISL (%v)", costs.ijlmr.SimTime, costs.isl.SimTime)
	}
	if !(costs.ijlmr.SimTime > costs.bfhm.SimTime) {
		t.Errorf("time: IJLMR (%v) must exceed BFHM (%v)", costs.ijlmr.SimTime, costs.bfhm.SimTime)
	}
	if !(costs.drjn.SimTime > 5*costs.bfhm.SimTime) {
		t.Errorf("time: DRJN (%v) must trail BFHM (%v) badly", costs.drjn.SimTime, costs.bfhm.SimTime)
	}
	if !(costs.drjn.SimTime > 5*costs.isl.SimTime) {
		t.Errorf("time: DRJN (%v) must trail ISL (%v) badly", costs.drjn.SimTime, costs.isl.SimTime)
	}

	// ---- Network bandwidth (Fig. 7b/7e shape). ----
	if !(costs.hive.NetworkBytes > 10*costs.ijlmr.NetworkBytes) {
		t.Errorf("net: HIVE (%d) must dwarf IJLMR (%d)", costs.hive.NetworkBytes, costs.ijlmr.NetworkBytes)
	}
	if !(costs.naive.NetworkBytes > 10*costs.bfhm.NetworkBytes) {
		t.Errorf("net: naive (%d) must dwarf BFHM (%d)", costs.naive.NetworkBytes, costs.bfhm.NetworkBytes)
	}
	if !(costs.pig.NetworkBytes > costs.bfhm.NetworkBytes) {
		t.Errorf("net: PIG (%d) must exceed BFHM (%d)", costs.pig.NetworkBytes, costs.bfhm.NetworkBytes)
	}

	// ---- Dollar cost / KV reads (Fig. 7c/7f shape). ----
	if !(costs.bfhm.KVReads < costs.isl.KVReads) {
		t.Errorf("cost: BFHM (%d reads) must beat ISL (%d reads)", costs.bfhm.KVReads, costs.isl.KVReads)
	}
	if !(costs.isl.KVReads*5 < costs.hive.KVReads) {
		t.Errorf("cost: ISL (%d) must be far below HIVE (%d)", costs.isl.KVReads, costs.hive.KVReads)
	}
	if !(costs.bfhm.KVReads*10 < costs.drjn.KVReads) {
		t.Errorf("cost: BFHM (%d) must be orders below DRJN (%d)", costs.bfhm.KVReads, costs.drjn.KVReads)
	}
	// MapReduce approaches scan everything: dollar cost ~ input size.
	if !(costs.ijlmr.KVReads > 1000) {
		t.Errorf("cost: IJLMR reads = %d; expected full index scan", costs.ijlmr.KVReads)
	}
}

// TestISLBatchingTradeoff verifies Section 4.2.3: larger scan batches cut
// query time (fewer RPCs) but fetch more tuples (bandwidth/dollar cost).
func TestISLBatchingTradeoff(t *testing.T) {
	p := sim.EC2()
	c := mustCluster(t, p)
	left := synthTuples("l", 1000, 50, "uniform", 21)
	right := synthTuples("r", 1000, 50, "uniform", 22)
	relL := loadRelation(t, c, "L", left)
	relR := loadRelation(t, c, "R", right)
	q := Query{Left: relL, Right: relR, Score: Sum, K: 5}
	idx, _, err := BuildISL(c, q)
	if err != nil {
		t.Fatal(err)
	}
	small, err := QueryISL(c, q, idx, ISLOptions{BatchLeft: 1, BatchRight: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := QueryISL(c, q, idx, ISLOptions{BatchLeft: 200, BatchRight: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !(large.Cost.RPCCalls < small.Cost.RPCCalls) {
		t.Errorf("RPCs: batch=200 (%d) must be below batch=1 (%d)",
			large.Cost.RPCCalls, small.Cost.RPCCalls)
	}
	if !(large.Cost.SimTime < small.Cost.SimTime) {
		t.Errorf("time: batch=200 (%v) must beat batch=1 (%v)",
			large.Cost.SimTime, small.Cost.SimTime)
	}
	if !(large.Cost.KVReads >= small.Cost.KVReads) {
		t.Errorf("reads: batch=200 (%d) must fetch at least batch=1 (%d)",
			large.Cost.KVReads, small.Cost.KVReads)
	}
}

// TestIndexingCostShape verifies the Fig. 9 relationships: map-only
// IJLMR/ISL index builds beat BFHM's (which adds a shuffle + reduce), and
// index build + query stays at or below a PIG query (Section 7.2: "we can
// afford to build our indices just before executing a query").
func TestIndexingCostShape(t *testing.T) {
	p := sim.EC2()
	c := mustCluster(t, p)
	left := synthTuples("l", 800, 100, "uniform", 31)
	right := synthTuples("r", 800, 100, "uniform", 32)
	relL := loadRelation(t, c, "L", left)
	relR := loadRelation(t, c, "R", right)
	q := Query{Left: relL, Right: relR, Score: Sum, K: 10}

	m := c.Metrics()
	before := m.Snapshot()
	islIdx, _, err := BuildISL(c, q)
	if err != nil {
		t.Fatal(err)
	}
	islBuild := m.Snapshot().Sub(before)

	before = m.Snapshot()
	bfhmL, _, err := BuildBFHM(c, relL, BFHMOptions{NumBuckets: 100})
	if err != nil {
		t.Fatal(err)
	}
	bfhmR, _, err := BuildBFHM(c, relR, BFHMOptions{NumBuckets: 100, MBits: bfhmL.MBits})
	if err != nil {
		t.Fatal(err)
	}
	bfhmBuild := m.Snapshot().Sub(before)

	if !(islBuild.SimTime < bfhmBuild.SimTime) {
		t.Errorf("indexing: ISL (%v) must build faster than BFHM (%v)", islBuild.SimTime, bfhmBuild.SimTime)
	}

	pig, err := QueryPig(c, q)
	if err != nil {
		t.Fatal(err)
	}
	isl, err := QueryISL(c, q, islIdx, ISLOptions{BatchLeft: 8, BatchRight: 8})
	if err != nil {
		t.Fatal(err)
	}
	buildPlusQuery := islBuild.SimTime + isl.Cost.SimTime
	if !(buildPlusQuery <= pig.Cost.SimTime*3/2) {
		t.Errorf("ISL build+query (%v) should be on par or below PIG query (%v)",
			buildPlusQuery, pig.Cost.SimTime)
	}
	bfhm, err := QueryBFHM(c, q, bfhmL, bfhmR, BFHMQueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(bfhmBuild.SimTime+bfhm.Cost.SimTime <= pig.Cost.SimTime*2) {
		t.Errorf("BFHM build+query (%v) should be comparable to PIG query (%v)",
			bfhmBuild.SimTime+bfhm.Cost.SimTime, pig.Cost.SimTime)
	}
}

// TestUpdateOverheadUnder10Percent reproduces the Section 7.2 online-
// updates result. Both runs apply the SAME update set, so the final data
// is identical; the baseline run write-backs the blobs offline before
// querying, while the measured run leaves the mutation records pending
// and pays for eager reconstruction during the query ("a worst-case
// scenario with regard to the query processing time overhead"). The
// paper reports < 10% overall time overhead.
func TestUpdateOverheadUnder10Percent(t *testing.T) {
	mk := func(eagerDuringQuery bool) (queryTime int64) {
		c := mustCluster(t, sim.EC2())
		left := synthTuples("l", 800, 100, "uniform", 41)
		right := synthTuples("r", 800, 100, "uniform", 42)
		relL := loadRelation(t, c, "L", left)
		relR := loadRelation(t, c, "R", right)
		q := Query{Left: relL, Right: relR, Score: Sum, K: 10}
		bfhmL, _, err := BuildBFHM(c, relL, BFHMOptions{NumBuckets: 100})
		if err != nil {
			t.Fatal(err)
		}
		bfhmR, _, err := BuildBFHM(c, relR, BFHMOptions{NumBuckets: 100, MBits: bfhmL.MBits})
		if err != nil {
			t.Fatal(err)
		}
		mnt := &Maintainer{C: c, Rel: relL, BFHM: bfhmL}
		for i := 0; i < 100; i++ {
			if err := mnt.InsertTuple(Tuple{
				RowKey:    tkey("u", i),
				JoinValue: fmt.Sprintf("j%d", i%100),
				Score:     float64(i%100) / 100,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if !eagerDuringQuery {
			// Offline write-back: the query starts from clean blobs.
			if _, err := mnt.WriteBackAll(); err != nil {
				t.Fatal(err)
			}
		}
		// Flush so both runs query storage-resident data, and disable the
		// block cache so every random read pays its seek (the assumption
		// behind the paper's experiment and the memory-mode cost model).
		// In disk mode a memtable-only or fully cached read measures zero
		// block fetches, which would erase the seek component of the
		// baseline and inflate the relative overhead; in memory mode both
		// calls change nothing.
		if err := c.FlushAll(); err != nil {
			t.Fatal(err)
		}
		c.SetBlockCacheBytes(0)
		res, err := QueryBFHM(c, q, bfhmL, bfhmR, BFHMQueryOptions{WriteBack: WriteBackEager})
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Cost.SimTime)
	}
	baseline := mk(false)
	updated := mk(true)
	overhead := float64(updated-baseline) / float64(baseline)
	if overhead > 0.10 {
		t.Errorf("eager write-back overhead = %.1f%%, paper reports < 10%%", overhead*100)
	}
	if overhead < 0 {
		t.Errorf("overhead = %.1f%%; eager reconstruction cannot be free", overhead*100)
	}
	t.Logf("eager update overhead: %.2f%% (baseline %v)", overhead*100, baseline)
}

package core

import (
	"fmt"

	"repro/internal/kvstore"
)

// This file defines the streaming execution layer: every executor can
// open a pull-based Cursor that yields join results one at a time in
// descending score order, without fixing k up front. Rank-join
// algorithms with a sorted-access loop (ISL's HRJN coordinator, DRJN's
// band walk) enumerate natively — each Next() does only the marginal
// work the next result needs — while batch-shaped algorithms (naive,
// Hive, Pig, IJLMR, BFHM) are adapted through a materializing cursor
// that re-runs the bounded query at doubling depths. The batch TopK
// path is a thin drain of the same cursor, so the two APIs can never
// disagree on results.

// Cursor is a pull-based stream of join results in descending score
// order (ties broken on row keys, like every batch result list).
//
// Next returns the next result, or (nil, nil) when the join is
// exhausted. Close releases the cursor; a closed cursor performs no
// further store reads, so abandoning a stream early never charges for
// results that were not consumed.
//
// Cursors are not safe for concurrent use. Cost attribution follows the
// cluster view the cursor was opened on: meter a private lane (see
// kvstore.Cluster.WithMetrics) to isolate one stream's spend.
type Cursor interface {
	Next() (*JoinResult, error)
	Close() error
}

// ErrCursorClosed is returned by Next after Close.
var ErrCursorClosed = fmt.Errorf("core: cursor is closed")

// RunCursor executes a bounded top-k as a drain of a streaming cursor:
// open, pull k results, close, and report the metrics delta as the
// query's cost. Every executor's Run is this.
func RunCursor(c *kvstore.Cluster, k int, open func() (Cursor, error)) (*Result, error) {
	before := c.Metrics().Snapshot()
	cur, err := open()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	out := make([]JoinResult, 0, k)
	for len(out) < k {
		r, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		out = append(out, *r)
	}
	return &Result{Results: out, Cost: c.Metrics().Snapshot().Sub(before)}, nil
}

// Pager is the doubling-depth schedule every materializing adapter
// shares: run the bounded computation at an initial depth (the page
// hint), and when drained past it, re-run at doubled depths until a
// run comes back short (the result set is exhausted). Deterministic
// tie-breaking makes each deeper run a strict prefix extension of the
// previous one, so the emitted stream is consistent across re-runs —
// but every deepening pays the full batch cost again, which is exactly
// the penalty the planner charges non-incremental executors for deep
// pagination. The two-way materializedCursor and the public n-way
// stream are both thin wrappers over this one state machine.
type Pager[T any] struct {
	run     func(k int) ([]T, error)
	results []T
	pos     int
	depth   int
	hint    int
	done    bool // the last run came back short: nothing deeper exists
}

// NewPager creates a doubling pager over a bounded run function. hint
// is the initial depth (minimum 1).
func NewPager[T any](hint int, run func(k int) ([]T, error)) *Pager[T] {
	if hint < 1 {
		hint = 1
	}
	return &Pager[T]{run: run, hint: hint}
}

// Next returns the next result, or nil at exhaustion.
func (p *Pager[T]) Next() (*T, error) {
	for p.pos >= len(p.results) {
		if p.done {
			return nil, nil
		}
		if p.depth == 0 {
			p.depth = p.hint
		} else {
			p.depth *= 2
		}
		results, err := p.run(p.depth)
		if err != nil {
			return nil, err
		}
		p.results = results
		if len(p.results) < p.depth {
			p.done = true
		}
	}
	r := &p.results[p.pos]
	p.pos++
	return r, nil
}

// Release drops the buffered results.
func (p *Pager[T]) Release() { p.results = nil }

// materializedCursor adapts a batch-shaped executor to the Cursor
// interface via the doubling Pager.
type materializedCursor struct {
	pager  *Pager[JoinResult]
	closed bool
}

// NewMaterializedCursor wraps a bounded batch run (run(k) returns the
// top-k) as a streaming cursor. hint is the initial materialization
// depth (minimum 1).
func NewMaterializedCursor(hint int, run func(k int) (*Result, error)) Cursor {
	return &materializedCursor{pager: NewPager(hint, func(k int) ([]JoinResult, error) {
		res, err := run(k)
		if err != nil {
			return nil, err
		}
		return res.Results, nil
	})}
}

// Next implements Cursor.
func (m *materializedCursor) Next() (*JoinResult, error) {
	if m.closed {
		return nil, ErrCursorClosed
	}
	return m.pager.Next()
}

// Close implements Cursor.
func (m *materializedCursor) Close() error {
	m.closed = true
	m.pager.Release()
	return nil
}

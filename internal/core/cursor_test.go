package core

import (
	"fmt"
	"testing"

	"repro/internal/kvstore"
)

// newCursorEnv loads synthetic relations, builds every index family,
// and returns what the executor-level cursor tests need.
func newCursorEnv(t *testing.T, n, joinCard, k int, seed int64) (*kvstore.Cluster, Query, *IndexStore) {
	t.Helper()
	c := newTestCluster()
	left := synthTuples("l", n, joinCard, "uniform", seed)
	right := synthTuples("r", n, joinCard, "uniform", seed+77)
	relL := loadRelation(t, c, "CL", left)
	relR := loadRelation(t, c, "CR", right)
	q := Query{Left: relL, Right: relR, Score: Sum, K: k}
	store := NewIndexStore()
	cfg := IndexBuildConfig{BFHMBuckets: 8, DRJNBuckets: 8, DRJNJoinParts: 16}.WithDefaults()
	for _, ex := range Executors() {
		if ex.NeedsIndex() {
			if err := ex.EnsureIndex(c, TreeFromQuery(q), store, cfg); err != nil {
				t.Fatalf("%s: EnsureIndex: %v", ex.Name(), err)
			}
		}
	}
	return c, q, store
}

// drainPages pulls total results from cur in pages of pageSize,
// returning the concatenation.
func drainPages(t *testing.T, cur Cursor, pageSize, total int) []JoinResult {
	t.Helper()
	var out []JoinResult
	for len(out) < total {
		got := 0
		for got < pageSize && len(out) < total {
			r, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if r == nil {
				return out
			}
			out = append(out, *r)
			got++
		}
		if got < pageSize {
			return out
		}
	}
	return out
}

// TestCursorPagesMatchBatch: for every registered executor, draining a
// single cursor in small pages must concatenate to exactly the batch
// TopK(n) result — same pairs, same order.
func TestCursorPagesMatchBatch(t *testing.T) {
	const page, total = 3, 21
	c, q, store := newCursorEnv(t, 120, 12, page, 42)
	opts := ExecOptions{ISLBatch: 7}.WithDefaults()

	for _, ex := range Executors() {
		batchQ := q
		batchQ.K = total
		batch, err := ex.Run(c, TreeFromQuery(batchQ), store, opts)
		if err != nil {
			t.Fatalf("%s: Run: %v", ex.Name(), err)
		}

		cur, err := ex.Open(c, TreeFromQuery(q), store, opts) // q.K = page hint
		if err != nil {
			t.Fatalf("%s: Open: %v", ex.Name(), err)
		}
		paged := drainPages(t, cur, page, total)
		if err := cur.Close(); err != nil {
			t.Fatalf("%s: Close: %v", ex.Name(), err)
		}

		if len(paged) != len(batch.Results) {
			t.Fatalf("%s: paged %d results, batch %d", ex.Name(), len(paged), len(batch.Results))
		}
		for i := range paged {
			b := batch.Results[i]
			if paged[i].Left.RowKey != b.Left.RowKey || paged[i].Right.RowKey != b.Right.RowKey || paged[i].Score != b.Score {
				t.Fatalf("%s: page result %d = (%s,%s,%.4f), batch = (%s,%s,%.4f)",
					ex.Name(), i,
					paged[i].Left.RowKey, paged[i].Right.RowKey, paged[i].Score,
					b.Left.RowKey, b.Right.RowKey, b.Score)
			}
		}
		verifyResultsAreRealJoins(t, ex.Name()+"/paged", paged, q.Score)
	}
}

// TestCursorDrainsToExhaustion: draining past the full join must
// terminate with the complete ordered result set for every executor.
func TestCursorDrainsToExhaustion(t *testing.T) {
	c, q, store := newCursorEnv(t, 40, 6, 5, 7)
	// The oracle needs the raw tuples; regenerate them identically.
	left := synthTuples("l", 40, 6, "uniform", 7)
	right := synthTuples("r", 40, 6, "uniform", 7+77)
	full := oracleTopK(left, right, q.Score, 1<<30)

	opts := ExecOptions{}.WithDefaults()
	for _, ex := range Executors() {
		cur, err := ex.Open(c, TreeFromQuery(q), store, opts)
		if err != nil {
			t.Fatalf("%s: Open: %v", ex.Name(), err)
		}
		var got []JoinResult
		for {
			r, err := cur.Next()
			if err != nil {
				t.Fatalf("%s: Next: %v", ex.Name(), err)
			}
			if r == nil {
				break
			}
			got = append(got, *r)
		}
		cur.Close()
		assertScoresEqual(t, ex.Name()+"/exhaust", scoresOf(got), scoresOf(full))
	}
}

// TestCursorEarlyCloseChargesNothing: a closed cursor must stop
// consuming read units — abandoning a stream early never bills for
// results that were not pulled.
func TestCursorEarlyCloseChargesNothing(t *testing.T) {
	c, q, store := newCursorEnv(t, 200, 10, 3, 99)
	opts := ExecOptions{ISLBatch: 5}.WithDefaults()
	for _, ex := range Executors() {
		cur, err := ex.Open(c, TreeFromQuery(q), store, opts)
		if err != nil {
			t.Fatalf("%s: Open: %v", ex.Name(), err)
		}
		if _, err := cur.Next(); err != nil {
			t.Fatalf("%s: Next: %v", ex.Name(), err)
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("%s: Close: %v", ex.Name(), err)
		}
		before := c.Metrics().Snapshot()
		if _, err := cur.Next(); err != ErrCursorClosed {
			t.Fatalf("%s: Next after Close = %v, want ErrCursorClosed", ex.Name(), err)
		}
		delta := c.Metrics().Snapshot().Sub(before)
		if delta.KVReads != 0 || delta.NetworkBytes != 0 {
			t.Fatalf("%s: closed cursor charged reads=%d net=%d", ex.Name(), delta.KVReads, delta.NetworkBytes)
		}
	}
}

// TestHRJNStreamMatchesBounded: the incremental operator drained k deep
// must agree with the bounded RunHRJN on the top-k scores.
func TestHRJNStreamMatchesBounded(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		left := descending(synthTuples("l", 80, 8, "uniform", seed))
		right := descending(synthTuples("r", 80, 8, "uniform", seed+5))
		for _, k := range []int{1, 5, 17} {
			want, err := RunHRJN(k, Sum, &SliceSource{Tuples: left}, &SliceSource{Tuples: right})
			if err != nil {
				t.Fatal(err)
			}
			cur := OpenHRJNStream(Sum, &SliceSource{Tuples: left}, &SliceSource{Tuples: right})
			var got []JoinResult
			for len(got) < k {
				r, err := cur.Next()
				if err != nil {
					t.Fatal(err)
				}
				if r == nil {
					break
				}
				got = append(got, *r)
			}
			cur.Close()
			assertScoresEqual(t, fmt.Sprintf("hrjn-stream k=%d seed=%d", k, seed),
				scoresOf(got), scoresOf(want))
		}
	}
}

// TestHRJNStreamResumeCheaperThanRerun: pulling k then k more from one
// stream must consume fewer input tuples than running the bounded
// operator from scratch at k and then at 2k — the marginal-cost claim
// at the operator level.
func TestHRJNStreamResumeCheaperThanRerun(t *testing.T) {
	const k = 10
	left := descending(synthTuples("l", 400, 20, "uniform", 11))
	right := descending(synthTuples("r", 400, 20, "uniform", 12))

	pulls := func(k int) int {
		a, b := &SliceSource{Tuples: left}, &SliceSource{Tuples: right}
		h := NewHRJN(k, Sum)
		pullA := true
		for !h.Done() {
			var src TupleSource
			if (pullA && !h.doneA) || h.doneB {
				src = a
			} else {
				src = b
			}
			tp, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if tp == nil {
				if src == a {
					h.ExhaustA()
				} else {
					h.ExhaustB()
				}
			} else if src == a {
				h.PushA(*tp)
			} else {
				h.PushB(*tp)
			}
			pullA = !pullA
		}
		return h.TuplesPulled()
	}
	rerun := pulls(k) + pulls(2*k)

	scur := OpenHRJNStream(Sum, &SliceSource{Tuples: left}, &SliceSource{Tuples: right}).(*hrjnSourceCursor)
	for i := 0; i < 2*k; i++ {
		r, err := scur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
	}
	streamed := scur.h.TuplesPulled()
	if streamed >= rerun {
		t.Fatalf("streaming 2k pulled %d tuples, re-running k then 2k pulled %d — streaming should be cheaper", streamed, rerun)
	}
	t.Logf("tuples pulled: stream(2k)=%d vs rerun(k)+rerun(2k)=%d", streamed, rerun)
}

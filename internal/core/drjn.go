package core

import (
	"fmt"
	"math"

	"repro/internal/histogram"
	"repro/internal/kvstore"
	"repro/internal/mapreduce"
)

// This file implements DRJN, the comparator from Doulkeridis et al. [8]
// ("Processing of rank joins in highly distributed systems", ICDE 2012)
// as the paper adapts it to a NoSQL store (Section 7.1):
//
//   - The index is a 2-D equi-width histogram: join-value partitions on
//     the x-axis, score bands on the y-axis. All cells of one score band
//     are stored as columns of a single row, so one Get fetches a band.
//   - Query processing loops: (i) fetch band rows in decreasing score
//     order, (ii) "join" bands (dot product of partition vectors) to
//     estimate the result cardinality, (iii) once the cumulative estimate
//     reaches k, pull every tuple scoring above the last fetched bands'
//     lower bounds — a map-only job with a server-side filter writing to
//     a temp table the coordinator then reads — and join exactly,
//     (iv) stop when the k'th actual score beats the max attainable score
//     of unexamined bands, else loop.
//
// The pull step's full scans are what make DRJN's dollar cost huge (the
// paper measures up to five orders of magnitude worse than BFHM) even
// though its histogram rows are tiny.

// DRJNIndex locates one relation's DRJN histogram.
type DRJNIndex struct {
	Table     string
	Layout    histogram.Layout
	JoinParts int
}

// DRJNOptions configures index construction.
type DRJNOptions struct {
	// NumBuckets is the score-axis resolution (paper: 100-500).
	NumBuckets int
	// JoinParts is the join-value-axis resolution.
	JoinParts int
}

func (o *DRJNOptions) defaults() {
	if o.NumBuckets < 1 {
		o.NumBuckets = 100
	}
	if o.JoinParts < 1 {
		o.JoinParts = 64
	}
}

const (
	drjnFamily   = "m"
	drjnBandQual = "band"
)

// DRJNTableName derives a relation's index table name.
func DRJNTableName(rel *Relation) string { return "drjn_" + rel.Name }

// BuildDRJN builds one relation's DRJN matrix with a MapReduce job: the
// mapper assigns tuples to score bands, each reducer assembles one band's
// partition vector and writes it as a single index row.
func BuildDRJN(c *kvstore.Cluster, rel Relation, opts DRJNOptions) (*DRJNIndex, *mapreduce.Result, error) {
	opts.defaults()
	layout, err := histogram.NewLayout(0, 1, opts.NumBuckets)
	if err != nil {
		return nil, nil, err
	}
	idx := &DRJNIndex{Table: DRJNTableName(&rel), Layout: layout, JoinParts: opts.JoinParts}
	if _, err := c.CreateTable(idx.Table, []string{drjnFamily}, nil); err != nil {
		return nil, nil, err
	}
	res, err := mapreduce.Run(&mapreduce.Job{
		Name:    "drjn-index-" + rel.Name,
		Cluster: c,
		Input:   kvstore.Scan{Table: rel.Table, Families: []string{rel.Family}},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			t, ok := TupleFromRow(&rel, row)
			if !ok {
				ctx.Counter("skipped", 1)
				return nil
			}
			ctx.Emit(kvstore.BucketKey(layout.BucketOf(t.Score)), EncodeTuple(t))
			return nil
		}),
		Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, ctx mapreduce.Context) error {
			cells := make([]uint64, opts.JoinParts)
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range values {
				t, err := DecodeTuple(v)
				if err != nil {
					return err
				}
				cells[histogram.PartitionOf(t.JoinValue, opts.JoinParts)]++
				if t.Score < lo {
					lo = t.Score
				}
				if t.Score > hi {
					hi = t.Score
				}
			}
			ctx.WriteCell(idx.Table, kvstore.Cell{
				Row:       key,
				Family:    drjnFamily,
				Qualifier: drjnBandQual,
				Value:     histogram.MarshalBandData(cells, lo, hi, true),
			})
			return nil
		}),
		NumReducers: c.Nodes(),
	})
	if err != nil {
		return nil, nil, err
	}
	return idx, res, nil
}

// drjnBand is one fetched band row.
type drjnBand struct {
	no   int
	data *histogram.BandData
	// floor is the band's pull threshold: its observed lower bound.
	floor float64
}

// fetchDRJNBand fetches band b (nil data if the band row is missing).
func fetchDRJNBand(c *kvstore.Cluster, idx *DRJNIndex, b int) (*drjnBand, error) {
	row, err := c.Get(idx.Table, kvstore.BucketKey(b))
	if err != nil {
		return nil, err
	}
	out := &drjnBand{no: b, floor: idx.Layout.MinScore(b)}
	if row == nil {
		return out, nil
	}
	cell := row.Cell(drjnFamily, drjnBandQual)
	if cell == nil {
		return out, nil
	}
	bd, err := histogram.UnmarshalBand(cell.Value)
	if err != nil {
		return nil, fmt.Errorf("drjn: band %d: %w", b, err)
	}
	out.data = bd
	if bd.NonEmpty {
		out.floor = bd.Lo
	}
	return out, nil
}

// FetchAllBands scans the whole DRJN index table — Layout.Buckets tiny
// rows — and returns the decoded bands indexed by band number (nil for
// empty bands). One batched scan replaces per-band point reads when a
// caller (the planner's statistics walk) wants the full matrix; the
// scan is metered like any other client access.
func FetchAllBands(c *kvstore.Cluster, idx *DRJNIndex) ([]*histogram.BandData, error) {
	rows, err := c.ScanAll(kvstore.Scan{
		Table:    idx.Table,
		Families: []string{drjnFamily},
		Caching:  256,
	})
	if err != nil {
		return nil, err
	}
	out := make([]*histogram.BandData, idx.Layout.Buckets)
	for i := range rows {
		no, err := bucketFromKey(rows[i].Key)
		if err != nil || no < 0 || no >= len(out) {
			continue
		}
		cell := rows[i].Cell(drjnFamily, drjnBandQual)
		if cell == nil {
			continue
		}
		bd, err := histogram.UnmarshalBand(cell.Value)
		if err != nil {
			return nil, fmt.Errorf("drjn: band %d: %w", no, err)
		}
		out[no] = bd
	}
	return out, nil
}

// drjnPull runs the map-only pull job: every tuple of rel with score >=
// bound is written to tmpTable (server-side filtered scan; the scan reads
// everything, the network carries only matches).
func drjnPull(c *kvstore.Cluster, rel Relation, tmpTable string, bound float64) error {
	_, err := mapreduce.Run(&mapreduce.Job{
		Name:    "drjn-pull-" + rel.Name,
		Cluster: c,
		Input: kvstore.Scan{
			Table:    rel.Table,
			Families: []string{rel.Family},
			Filter: kvstore.FloatColumnMinFilter{
				Family:    rel.Family,
				Qualifier: rel.ScoreQual,
				Min:       bound,
			},
		},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			t, ok := TupleFromRow(&rel, row)
			if !ok {
				return nil
			}
			ctx.WriteCell(tmpTable, kvstore.Cell{
				Row:       t.RowKey,
				Family:    drjnFamily,
				Qualifier: "t",
				Value:     EncodeTuple(t),
			})
			return nil
		}),
	})
	return err
}

// readPulled drains a pull temp table at the coordinator.
func readPulled(c *kvstore.Cluster, tmpTable string) ([]Tuple, error) {
	rows, err := c.ScanAll(kvstore.Scan{Table: tmpTable, Caching: 1024})
	if err != nil {
		return nil, err
	}
	out := make([]Tuple, 0, len(rows))
	for i := range rows {
		cell := rows[i].Cell(drjnFamily, "t")
		if cell == nil {
			continue
		}
		t, err := DecodeTuple(cell.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// QueryDRJN runs the DRJN rank join.
func QueryDRJN(c *kvstore.Cluster, q Query, idxA, idxB *DRJNIndex) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if idxA.JoinParts != idxB.JoinParts {
		return nil, fmt.Errorf("drjn: partition counts differ (%d vs %d)", idxA.JoinParts, idxB.JoinParts)
	}
	before := c.Metrics().Snapshot()
	f := q.Score.Fn

	var bandsA, bandsB []*drjnBand
	nextA, nextB := 0, 0
	var estCard uint64
	top := NewTopKList(q.K)
	round := 0

	exhausted := func() bool {
		return nextA >= idxA.Layout.Buckets && nextB >= idxB.Layout.Buckets
	}
	// Max attainable score of tuples NOT yet pulled: anything below the
	// current pull floors.
	maxUnpulled := func() float64 {
		floorA, floorB := 1.0, 1.0
		if len(bandsA) > 0 {
			floorA = bandsA[len(bandsA)-1].floor
		}
		if len(bandsB) > 0 {
			floorB = bandsB[len(bandsB)-1].floor
		}
		if nextA >= idxA.Layout.Buckets {
			floorA = 0
		}
		if nextB >= idxB.Layout.Buckets {
			floorB = 0
		}
		return math.Max(f(floorA, idxB.Layout.Hi), f(idxA.Layout.Hi, floorB))
	}

	for {
		round++
		if round > idxA.Layout.Buckets+idxB.Layout.Buckets+4 {
			return nil, fmt.Errorf("drjn: failed to converge")
		}
		// (i)+(ii): fetch bands alternately until the estimate covers k.
		for estCard < uint64(q.K) && !exhausted() {
			if nextA <= nextB && nextA < idxA.Layout.Buckets || nextB >= idxB.Layout.Buckets {
				nb, err := fetchDRJNBand(c, idxA, nextA)
				if err != nil {
					return nil, err
				}
				nextA++
				bandsA = append(bandsA, nb)
				if nb.data != nil {
					for _, ob := range bandsB {
						if ob.data == nil {
							continue
						}
						n, err := histogram.DotProduct(nb.data, ob.data)
						if err != nil {
							return nil, err
						}
						estCard += n
					}
				}
			} else {
				nb, err := fetchDRJNBand(c, idxB, nextB)
				if err != nil {
					return nil, err
				}
				nextB++
				bandsB = append(bandsB, nb)
				if nb.data != nil {
					for _, ob := range bandsA {
						if ob.data == nil {
							continue
						}
						n, err := histogram.DotProduct(ob.data, nb.data)
						if err != nil {
							return nil, err
						}
						estCard += n
					}
				}
			}
		}
		// (iii): pull all tuples above the current floors and join.
		floorA, floorB := 0.0, 0.0
		if len(bandsA) > 0 {
			floorA = bandsA[len(bandsA)-1].floor
		}
		if len(bandsB) > 0 {
			floorB = bandsB[len(bandsB)-1].floor
		}
		tmpA := fmt.Sprintf("tmp_drjn_%s_a_%d_%d", q.ID(), round, c.Now())
		tmpB := fmt.Sprintf("tmp_drjn_%s_b_%d_%d", q.ID(), round, c.Now())
		if _, err := c.CreateTable(tmpA, []string{drjnFamily}, nil); err != nil {
			return nil, err
		}
		if _, err := c.CreateTable(tmpB, []string{drjnFamily}, nil); err != nil {
			return nil, err
		}
		if err := drjnPull(c, q.Left, tmpA, floorA); err != nil {
			return nil, err
		}
		if err := drjnPull(c, q.Right, tmpB, floorB); err != nil {
			return nil, err
		}
		pulledA, err := readPulled(c, tmpA)
		if err != nil {
			return nil, err
		}
		pulledB, err := readPulled(c, tmpB)
		if err != nil {
			return nil, err
		}
		_ = c.DropTable(tmpA)
		_ = c.DropTable(tmpB)

		top = NewTopKList(q.K)
		byJoin := map[string][]Tuple{}
		for _, t := range pulledA {
			byJoin[t.JoinValue] = append(byJoin[t.JoinValue], t)
		}
		for _, tb := range pulledB {
			for _, ta := range byJoin[tb.JoinValue] {
				top.Add(JoinResult{Left: ta, Right: tb, Score: f(ta.Score, tb.Score)})
			}
		}
		// (iv): terminate or loop with more bands.
		if top.Len() >= q.K && top.KthScore() >= maxUnpulled() {
			break
		}
		if exhausted() {
			break
		}
		// Fetch at least one more band per relation and re-estimate.
		estCard = 0 // force the fetch loop to deepen
		if nextA < idxA.Layout.Buckets {
			nb, err := fetchDRJNBand(c, idxA, nextA)
			if err != nil {
				return nil, err
			}
			nextA++
			bandsA = append(bandsA, nb)
		}
		if nextB < idxB.Layout.Buckets {
			nb, err := fetchDRJNBand(c, idxB, nextB)
			if err != nil {
				return nil, err
			}
			nextB++
			bandsB = append(bandsB, nb)
		}
		estCard = uint64(q.K) // bands already fetched; go straight to pull
	}
	return &Result{Results: top.Results(), Cost: c.Metrics().Snapshot().Sub(before)}, nil
}

package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/histogram"
	"repro/internal/kvstore"
	"repro/internal/mapreduce"
)

// This file implements DRJN, the comparator from Doulkeridis et al. [8]
// ("Processing of rank joins in highly distributed systems", ICDE 2012)
// as the paper adapts it to a NoSQL store (Section 7.1):
//
//   - The index is a 2-D equi-width histogram: join-value partitions on
//     the x-axis, score bands on the y-axis. All cells of one score band
//     are stored as columns of a single row, so one Get fetches a band.
//   - Query processing loops: (i) fetch band rows in decreasing score
//     order, (ii) "join" bands (dot product of partition vectors) to
//     estimate the result cardinality, (iii) once the cumulative estimate
//     reaches k, pull every tuple scoring above the last fetched bands'
//     lower bounds — a map-only job with a server-side filter writing to
//     a temp table the coordinator then reads — and join exactly,
//     (iv) stop when the k'th actual score beats the max attainable score
//     of unexamined bands, else loop.
//
// The pull step's full scans are what make DRJN's dollar cost huge (the
// paper measures up to five orders of magnitude worse than BFHM) even
// though its histogram rows are tiny.

// DRJNIndex locates one relation's DRJN histogram.
type DRJNIndex struct {
	Table     string
	Layout    histogram.Layout
	JoinParts int
}

// DRJNOptions configures index construction.
type DRJNOptions struct {
	// NumBuckets is the score-axis resolution (paper: 100-500).
	NumBuckets int
	// JoinParts is the join-value-axis resolution.
	JoinParts int
}

func (o *DRJNOptions) defaults() {
	if o.NumBuckets < 1 {
		o.NumBuckets = 100
	}
	if o.JoinParts < 1 {
		o.JoinParts = 64
	}
}

const (
	drjnFamily   = "m"
	drjnBandQual = "band"
	// Online maintenance appends per-tuple delta records to band rows
	// (Section 6 applied to the DRJN matrix): readers fold them into the
	// band's partition counts and observed score bounds, so the band
	// walk sees fresh cardinalities without an offline rebuild.
	drjnInsPfx = "i:"
	drjnDelPfx = "d:"
)

// drjnInsertRecord builds the insertion delta record for one tuple. The
// qualifier is timestamp-suffixed (see mutRecordQual) so repeated
// mutations of one row key never shadow each other's records.
func drjnInsertRecord(idx *DRJNIndex, t Tuple, ts int64) kvstore.Cell {
	return kvstore.Cell{
		Row:       kvstore.BucketKey(idx.Layout.BucketOf(t.Score)),
		Family:    drjnFamily,
		Qualifier: mutRecordQual(drjnInsPfx, t.RowKey, ts),
		Value:     EncodeTuple(t),
		Timestamp: ts,
	}
}

// drjnDeleteRecord builds the deletion delta record for one tuple.
func drjnDeleteRecord(idx *DRJNIndex, t Tuple, ts int64) kvstore.Cell {
	return kvstore.Cell{
		Row:       kvstore.BucketKey(idx.Layout.BucketOf(t.Score)),
		Family:    drjnFamily,
		Qualifier: mutRecordQual(drjnDelPfx, t.RowKey, ts),
		Value:     EncodeTuple(t),
		Timestamp: ts,
	}
}

// writeBackDRJNBand consolidates one band row: its delta records are
// replayed into a fresh band blob and purged in one atomic row mutation
// (the DRJN analogue of BFHM's offline blob write-back). Without this,
// band rows grow with every online write and each fetch replays the
// full history. It reports whether the band had anything to fold.
func writeBackDRJNBand(c *kvstore.Cluster, idx *DRJNIndex, b int) (bool, error) {
	row, err := c.Get(idx.Table, kvstore.BucketKey(b))
	if err != nil || row == nil {
		return false, err
	}
	var recQuals []string
	var latest int64
	for i := range row.Cells {
		q := row.Cells[i].Qualifier
		if strings.HasPrefix(q, drjnInsPfx) || strings.HasPrefix(q, drjnDelPfx) {
			recQuals = append(recQuals, q)
			if row.Cells[i].Timestamp > latest {
				latest = row.Cells[i].Timestamp
			}
		}
	}
	if len(recQuals) == 0 {
		return false, nil
	}
	bd, err := decodeBandRow(idx, b, row)
	if err != nil {
		return false, err
	}
	cells := []kvstore.Cell{{
		Row: kvstore.BucketKey(b), Family: drjnFamily, Qualifier: drjnBandQual,
		Value:     histogram.MarshalBandData(bd.Cells, bd.Lo, bd.Hi, bd.NonEmpty),
		Timestamp: latest,
	}}
	for _, q := range recQuals {
		cells = append(cells, kvstore.Cell{
			Row: kvstore.BucketKey(b), Family: drjnFamily, Qualifier: q,
			Timestamp: latest, Tombstone: true,
		})
	}
	//lint:allow maintcheck writes the DRJN index's own band table, not a maintained base relation
	return true, c.MutateRow(idx.Table, cells)
}

// replayBandRecords folds a band row's online delta records into its
// decoded band data (bd may be nil for a band with no built blob) in
// timestamp order, deletions first at equal timestamps — an update ships
// old-tuple deletion and new-tuple insertion under one timestamp and
// must net to "replaced". Insertions widen the band's observed score
// bounds so pull floors track fresh data; deletions leave the bounds
// conservative, exactly like an in-memory DRJNMatrix.Remove.
func replayBandRecords(idx *DRJNIndex, row *kvstore.Row, bd *histogram.BandData) (*histogram.BandData, error) {
	type mut struct {
		ins bool
		t   Tuple
		ts  int64
	}
	var muts []mut
	for i := range row.Cells {
		cell := &row.Cells[i]
		if cell.Family != drjnFamily {
			continue
		}
		ins := strings.HasPrefix(cell.Qualifier, drjnInsPfx)
		if !ins && !strings.HasPrefix(cell.Qualifier, drjnDelPfx) {
			continue
		}
		t, err := DecodeTuple(cell.Value)
		if err != nil {
			return nil, fmt.Errorf("drjn: bad delta record %q: %w", cell.Qualifier, err)
		}
		muts = append(muts, mut{ins: ins, t: t, ts: cell.Timestamp})
	}
	if len(muts) == 0 {
		return bd, nil
	}
	if bd == nil {
		bd = &histogram.BandData{Cells: make([]uint64, idx.JoinParts)}
	}
	sort.SliceStable(muts, func(i, j int) bool {
		if muts[i].ts != muts[j].ts {
			return muts[i].ts < muts[j].ts
		}
		return !muts[i].ins && muts[j].ins
	})
	// Mirror the BFHM replay's per-row-key presence tracking: records
	// are timestamp-suffixed, so a retried delete (or blind double
	// insert) leaves a second record that must not double-apply.
	const (
		keyPresent = 1
		keyAbsent  = 2
	)
	keyState := map[string]int{}
	for _, m := range muts {
		p := histogram.PartitionOf(m.t.JoinValue, idx.JoinParts)
		if p >= len(bd.Cells) {
			continue
		}
		st := keyState[m.t.RowKey]
		if m.ins {
			if st == keyPresent {
				continue
			}
			keyState[m.t.RowKey] = keyPresent
			bd.Cells[p]++
			if !bd.NonEmpty {
				bd.Lo, bd.Hi = m.t.Score, m.t.Score
				bd.NonEmpty = true
			} else {
				if m.t.Score < bd.Lo {
					bd.Lo = m.t.Score
				}
				if m.t.Score > bd.Hi {
					bd.Hi = m.t.Score
				}
			}
		} else {
			if st == keyAbsent {
				continue
			}
			keyState[m.t.RowKey] = keyAbsent
			if bd.Cells[p] > 0 {
				bd.Cells[p]--
			}
		}
	}
	return bd, nil
}

// DRJNTableName derives a relation's index table name.
func DRJNTableName(rel *Relation) string { return "drjn_" + rel.Name }

// BuildDRJN builds one relation's DRJN matrix with a MapReduce job: the
// mapper assigns tuples to score bands, each reducer assembles one band's
// partition vector and writes it as a single index row.
func BuildDRJN(c *kvstore.Cluster, rel Relation, opts DRJNOptions) (*DRJNIndex, *mapreduce.Result, error) {
	opts.defaults()
	layout, err := histogram.NewLayout(0, 1, opts.NumBuckets)
	if err != nil {
		return nil, nil, err
	}
	idx := &DRJNIndex{Table: DRJNTableName(&rel), Layout: layout, JoinParts: opts.JoinParts}
	if _, err := c.CreateTable(idx.Table, []string{drjnFamily}, nil); err != nil {
		return nil, nil, err
	}
	res, err := mapreduce.Run(&mapreduce.Job{
		Name:    "drjn-index-" + rel.Name,
		Cluster: c,
		Input:   kvstore.Scan{Table: rel.Table, Families: []string{rel.Family}},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			t, ok := TupleFromRow(&rel, row)
			if !ok {
				ctx.Counter("skipped", 1)
				return nil
			}
			ctx.Emit(kvstore.BucketKey(layout.BucketOf(t.Score)), EncodeTuple(t))
			return nil
		}),
		Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, ctx mapreduce.Context) error {
			cells := make([]uint64, opts.JoinParts)
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range values {
				t, err := DecodeTuple(v)
				if err != nil {
					return err
				}
				cells[histogram.PartitionOf(t.JoinValue, opts.JoinParts)]++
				if t.Score < lo {
					lo = t.Score
				}
				if t.Score > hi {
					hi = t.Score
				}
			}
			ctx.WriteCell(idx.Table, kvstore.Cell{
				Row:       key,
				Family:    drjnFamily,
				Qualifier: drjnBandQual,
				Value:     histogram.MarshalBandData(cells, lo, hi, true),
			})
			return nil
		}),
		NumReducers: c.Nodes(),
	})
	if err != nil {
		return nil, nil, err
	}
	return idx, res, nil
}

// drjnBand is one fetched band row.
type drjnBand struct {
	no   int
	data *histogram.BandData
	// floor is the band's pull threshold: its observed lower bound.
	floor float64
}

// decodeBandRow decodes a band row's stored blob (if any) and folds in
// its online delta records — the one shared read path for single-band
// fetches, the full-matrix scan, and write-back consolidation.
func decodeBandRow(idx *DRJNIndex, no int, row *kvstore.Row) (*histogram.BandData, error) {
	var bd *histogram.BandData
	var err error
	if cell := row.Cell(drjnFamily, drjnBandQual); cell != nil {
		if bd, err = histogram.UnmarshalBand(cell.Value); err != nil {
			return nil, fmt.Errorf("drjn: band %d: %w", no, err)
		}
	}
	if bd, err = replayBandRecords(idx, row, bd); err != nil {
		return nil, fmt.Errorf("drjn: band %d: %w", no, err)
	}
	return bd, nil
}

// fetchDRJNBand fetches band b (nil data if the band row is missing),
// folding in any online delta records so the returned counts and floor
// describe the live relation.
func fetchDRJNBand(c *kvstore.Cluster, idx *DRJNIndex, b int) (*drjnBand, error) {
	row, err := c.Get(idx.Table, kvstore.BucketKey(b))
	if err != nil {
		return nil, err
	}
	out := &drjnBand{no: b, floor: idx.Layout.MinScore(b)}
	if row == nil {
		return out, nil
	}
	bd, err := decodeBandRow(idx, b, row)
	if err != nil {
		return nil, err
	}
	out.data = bd
	if bd != nil && bd.NonEmpty {
		out.floor = bd.Lo
	}
	return out, nil
}

// FetchAllBands scans the whole DRJN index table — Layout.Buckets tiny
// rows — and returns the decoded bands indexed by band number (nil for
// empty bands). One batched scan replaces per-band point reads when a
// caller (the planner's statistics walk) wants the full matrix; the
// scan is metered like any other client access.
func FetchAllBands(c *kvstore.Cluster, idx *DRJNIndex) ([]*histogram.BandData, error) {
	rows, err := c.ScanAll(kvstore.Scan{
		Table:    idx.Table,
		Families: []string{drjnFamily},
		Caching:  256,
	})
	if err != nil {
		return nil, err
	}
	out := make([]*histogram.BandData, idx.Layout.Buckets)
	for i := range rows {
		no, err := bucketFromKey(rows[i].Key)
		if err != nil || no < 0 || no >= len(out) {
			continue
		}
		bd, err := decodeBandRow(idx, no, &rows[i])
		if err != nil {
			return nil, err
		}
		out[no] = bd
	}
	return out, nil
}

// drjnPull runs the map-only pull job: every tuple of rel with score >=
// bound is written to tmpTable (server-side filtered scan; the scan reads
// everything, the network carries only matches).
func drjnPull(c *kvstore.Cluster, rel Relation, tmpTable string, bound float64) error {
	_, err := mapreduce.Run(&mapreduce.Job{
		Name:    "drjn-pull-" + rel.Name,
		Cluster: c,
		Input: kvstore.Scan{
			Table:    rel.Table,
			Families: []string{rel.Family},
			Filter: kvstore.FloatColumnMinFilter{
				Family:    rel.Family,
				Qualifier: rel.ScoreQual,
				Min:       bound,
			},
		},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			t, ok := TupleFromRow(&rel, row)
			if !ok {
				return nil
			}
			ctx.WriteCell(tmpTable, kvstore.Cell{
				Row:       t.RowKey,
				Family:    drjnFamily,
				Qualifier: "t",
				Value:     EncodeTuple(t),
			})
			return nil
		}),
	})
	return err
}

// readPulled drains a pull temp table at the coordinator.
func readPulled(c *kvstore.Cluster, tmpTable string) ([]Tuple, error) {
	rows, err := c.ScanAll(kvstore.Scan{Table: tmpTable, Caching: 1024})
	if err != nil {
		return nil, err
	}
	out := make([]Tuple, 0, len(rows))
	for i := range rows {
		cell := rows[i].Cell(drjnFamily, "t")
		if cell == nil {
			continue
		}
		t, err := DecodeTuple(cell.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// drjnCursor streams the DRJN rank join: the same fetch-bands /
// estimate / pull / join rounds as the bounded run, but held as
// resumable state. A result is released as soon as its score reaches
// the max attainable score of the unexamined bands; when the buffered
// results run dry the cursor deepens by two bands and re-pulls with
// lower floors. Previously released results always outrank anything a
// deeper pull can add (new tuples score below the old floors), so the
// emitted stream stays in global score order across rounds.
type drjnCursor struct {
	c          *kvstore.Cluster
	q          Query
	idxA, idxB *DRJNIndex
	f          func(a, b float64) float64

	bandsA, bandsB []*drjnBand
	nextA, nextB   int
	estCard        uint64
	round          int
	pulledOnce     bool

	// results is the complete join of the pulled prefix, sorted
	// descending; emitted indexes the released prefix. Each re-pull
	// rebuilds results as a superset and re-locates the last released
	// result in it, so emission resumes exactly after it.
	results     []JoinResult
	emitted     int
	lastEmitted JoinResult
	hasEmitted  bool
	closed      bool
}

// OpenDRJN starts a streaming DRJN execution over built indexes. q.K is
// only a sizing hint for the first round's band-fetch target.
func OpenDRJN(c *kvstore.Cluster, q Query, idxA, idxB *DRJNIndex) (Cursor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if idxA.JoinParts != idxB.JoinParts {
		return nil, fmt.Errorf("drjn: partition counts differ (%d vs %d)", idxA.JoinParts, idxB.JoinParts)
	}
	return &drjnCursor{c: c, q: q, idxA: idxA, idxB: idxB, f: q.Score.Fn}, nil
}

func (cu *drjnCursor) exhausted() bool {
	return cu.nextA >= cu.idxA.Layout.Buckets && cu.nextB >= cu.idxB.Layout.Buckets
}

// maxUnpulled is the max attainable score of tuples NOT yet pulled:
// anything below the current pull floors.
func (cu *drjnCursor) maxUnpulled() float64 {
	floorA, floorB := 1.0, 1.0
	if len(cu.bandsA) > 0 {
		floorA = cu.bandsA[len(cu.bandsA)-1].floor
	}
	if len(cu.bandsB) > 0 {
		floorB = cu.bandsB[len(cu.bandsB)-1].floor
	}
	if cu.nextA >= cu.idxA.Layout.Buckets {
		floorA = 0
	}
	if cu.nextB >= cu.idxB.Layout.Buckets {
		floorB = 0
	}
	return math.Max(cu.f(floorA, cu.idxB.Layout.Hi), cu.f(cu.idxA.Layout.Hi, floorB))
}

// fetchBands fetches index bands alternately until the pairwise dot
// products estimate at least target join results (steps (i)+(ii)).
func (cu *drjnCursor) fetchBands(target uint64) error {
	for cu.estCard < target && !cu.exhausted() {
		if cu.nextA <= cu.nextB && cu.nextA < cu.idxA.Layout.Buckets || cu.nextB >= cu.idxB.Layout.Buckets {
			nb, err := fetchDRJNBand(cu.c, cu.idxA, cu.nextA)
			if err != nil {
				return err
			}
			cu.nextA++
			cu.bandsA = append(cu.bandsA, nb)
			if nb.data != nil {
				for _, ob := range cu.bandsB {
					if ob.data == nil {
						continue
					}
					n, err := histogram.DotProduct(nb.data, ob.data)
					if err != nil {
						return err
					}
					cu.estCard += n
				}
			}
		} else {
			nb, err := fetchDRJNBand(cu.c, cu.idxB, cu.nextB)
			if err != nil {
				return err
			}
			cu.nextB++
			cu.bandsB = append(cu.bandsB, nb)
			if nb.data != nil {
				for _, ob := range cu.bandsA {
					if ob.data == nil {
						continue
					}
					n, err := histogram.DotProduct(ob.data, nb.data)
					if err != nil {
						return err
					}
					cu.estCard += n
				}
			}
		}
	}
	return nil
}

// pullAndJoin pulls every tuple above the current floors and joins
// exactly (step (iii)), replacing results with the full sorted join of
// the pulled prefix.
func (cu *drjnCursor) pullAndJoin() error {
	floorA, floorB := 0.0, 0.0
	if len(cu.bandsA) > 0 {
		floorA = cu.bandsA[len(cu.bandsA)-1].floor
	}
	if len(cu.bandsB) > 0 {
		floorB = cu.bandsB[len(cu.bandsB)-1].floor
	}
	c, q := cu.c, cu.q
	tmpA := fmt.Sprintf("tmp_drjn_%s_a_%d_%d", q.ID(), cu.round, c.Now())
	tmpB := fmt.Sprintf("tmp_drjn_%s_b_%d_%d", q.ID(), cu.round, c.Now())
	if _, err := c.CreateTable(tmpA, []string{drjnFamily}, nil); err != nil {
		return err
	}
	if _, err := c.CreateTable(tmpB, []string{drjnFamily}, nil); err != nil {
		return err
	}
	if err := drjnPull(c, q.Left, tmpA, floorA); err != nil {
		return err
	}
	if err := drjnPull(c, q.Right, tmpB, floorB); err != nil {
		return err
	}
	pulledA, err := readPulled(c, tmpA)
	if err != nil {
		return err
	}
	pulledB, err := readPulled(c, tmpB)
	if err != nil {
		return err
	}
	_ = c.DropTable(tmpA)
	_ = c.DropTable(tmpB)

	byJoin := map[string][]Tuple{}
	for _, t := range pulledA {
		byJoin[t.JoinValue] = append(byJoin[t.JoinValue], t)
	}
	// Fresh slice each round: pointers returned by Next alias the old
	// backing array and must stay valid.
	var out []JoinResult
	for _, tb := range pulledB {
		for _, ta := range byJoin[tb.JoinValue] {
			out = append(out, JoinResult{Left: ta, Right: tb, Score: cu.f(ta.Score, tb.Score)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(&out[j]) })
	cu.results = out
	cu.pulledOnce = true
	// Resume emission strictly after the last released result (join
	// pairs are unique, so it re-forms at one position in the superset).
	cu.emitted = 0
	if cu.hasEmitted {
		cu.emitted = sort.Search(len(out), func(i int) bool {
			return cu.lastEmitted.less(&out[i])
		})
	}
	return nil
}

// Next implements Cursor.
func (cu *drjnCursor) Next() (*JoinResult, error) {
	if cu.closed {
		return nil, ErrCursorClosed
	}
	for {
		// (iv): release the next buffered result once it beats the
		// ceiling of everything not yet pulled.
		if cu.emitted < len(cu.results) &&
			(cu.exhausted() || cu.results[cu.emitted].Score >= cu.maxUnpulled()) {
			r := &cu.results[cu.emitted]
			cu.emitted++
			cu.lastEmitted = *r
			cu.hasEmitted = true
			return r, nil
		}
		if cu.pulledOnce && cu.exhausted() {
			return nil, nil // everything pulled, everything released
		}
		cu.round++
		if cu.round > cu.idxA.Layout.Buckets+cu.idxB.Layout.Buckets+4 {
			return nil, fmt.Errorf("drjn: failed to converge")
		}
		if !cu.pulledOnce {
			// First round: fetch bands until the estimate covers the
			// query's k (or one result, for a pure stream).
			target := uint64(cu.q.K)
			if target < 1 {
				target = 1
			}
			if err := cu.fetchBands(target); err != nil {
				return nil, err
			}
		} else {
			// Deepen: at least one more band per relation.
			if cu.nextA < cu.idxA.Layout.Buckets {
				nb, err := fetchDRJNBand(cu.c, cu.idxA, cu.nextA)
				if err != nil {
					return nil, err
				}
				cu.nextA++
				cu.bandsA = append(cu.bandsA, nb)
			}
			if cu.nextB < cu.idxB.Layout.Buckets {
				nb, err := fetchDRJNBand(cu.c, cu.idxB, cu.nextB)
				if err != nil {
					return nil, err
				}
				cu.nextB++
				cu.bandsB = append(cu.bandsB, nb)
			}
		}
		if err := cu.pullAndJoin(); err != nil {
			return nil, err
		}
	}
}

// Close implements Cursor.
func (cu *drjnCursor) Close() error {
	cu.closed = true
	cu.results = nil
	return nil
}

// QueryDRJN runs the DRJN rank join as a bounded drain of the streaming
// cursor.
func QueryDRJN(c *kvstore.Cluster, q Query, idxA, idxB *DRJNIndex) (*Result, error) {
	return RunCursor(c, q.K, func() (Cursor, error) { return OpenDRJN(c, q, idxA, idxB) })
}

package core

import (
	"time"

	"repro/internal/sim"
)

// This file holds the per-executor cost estimators behind
// Executor.Estimate: closed-form predictions of the paper's three
// metrics (simulated time, network bytes, KV read units) built from the
// same hardware profile the simulator charges, the planner's table
// statistics, and the DRJN/BFHM-derived join-cardinality and
// termination-depth estimates in PlanStats.
//
// The formulas mirror the charging paths in internal/kvstore and
// internal/mapreduce: client scans pay per-batch RPC latency plus disk
// and transfer time, keyed reads pay a seek, MapReduce jobs pay job and
// task startup plus region-parallel scan makespans, and every examined
// cell is one KV read unit. Estimates do not need to be exact — the
// planner only needs the relative ordering (and the stamped estimate
// makes the residual error measurable per query).

// Wire-size approximations (bytes). Tuples carry short row keys and
// join values; these mirror EncodeTuple/EncodeJoinResult overheads.
const (
	estTupleWire = 40 // one encoded tuple incl. length prefixes
	estPairWire  = 88 // one encoded join pair
	estCellMeta  = 30 // stored-cell key/family/qualifier overhead
	estRPCOver   = 64 // fixed RPC request overhead (kvstore)
	estScanBatch = 1024
)

// estAccum accumulates one candidate plan's predicted cost.
type estAccum struct {
	p     sim.Profile
	t     time.Duration
	net   uint64
	reads uint64
}

func (a *estAccum) est() CostEstimate {
	return CostEstimate{SimTime: a.t, NetworkBytes: a.net, KVReads: a.reads}
}

// clientScan models a batched client-side table scan returning all
// cells: per-batch RPC latency, sequential disk read, and transfer.
func (a *estAccum) clientScan(rows, bytes, cells uint64) {
	batches := rows/estScanBatch + 1
	net := bytes + batches*estRPCOver
	a.reads += cells
	a.net += net
	a.t += time.Duration(batches)*a.p.RPCLatency +
		a.p.ScanTime(bytes) + a.p.TransferTime(net) + a.p.CPUTime(cells)
}

// gets models n keyed point reads of ~rowBytes each, fanned out over
// `lanes` concurrent lanes (1 = sequential).
func (a *estAccum) gets(n, rowBytes uint64, lanes int) {
	if n == 0 {
		return
	}
	if lanes < 1 {
		lanes = 1
	}
	per := a.p.SeekLatency + a.p.RPCLatency + a.p.TransferTime(rowBytes+estRPCOver)
	a.reads += n // ballpark: one cell per fetched row
	a.net += n * (rowBytes + estRPCOver)
	a.t += time.Duration((n + uint64(lanes) - 1) / uint64(lanes) * uint64(per))
}

// mapPhase models the map wave of one MR job: one task per region,
// scheduled round-robin over the cluster's nodes.
func (a *estAccum) mapPhase(bytes, cells, emitted uint64, regions int) {
	if regions < 1 {
		regions = 1
	}
	workers := a.p.Nodes
	if workers < 1 {
		workers = 1
	}
	waves := (regions + workers - 1) / workers
	perTask := a.p.MRTaskStartup +
		a.p.ScanTime(bytes/uint64(regions)) +
		a.p.CPUTime((cells+emitted)/uint64(regions))
	a.reads += cells
	a.t += time.Duration(waves) * perTask
}

// shuffle models moving bytes from mappers to reducers.
func (a *estAccum) shuffle(bytes uint64) {
	a.net += bytes
	a.t += a.p.TransferTime(bytes)
}

// reducePhase models numReducers reduce tasks over inputCells inputs
// writing writeBytes back to the store.
func (a *estAccum) reducePhase(inputCells, writeBytes uint64, numReducers int) {
	if numReducers < 1 {
		numReducers = 1
	}
	workers := a.p.Nodes
	if workers < 1 {
		workers = 1
	}
	if numReducers < workers {
		workers = numReducers
	}
	waves := (numReducers + workers - 1) / workers
	a.t += time.Duration(waves) * (a.p.MRTaskStartup + a.p.CPUTime(inputCells/uint64(numReducers)))
	a.net += writeBytes
	a.t += a.p.TransferTime(writeBytes)
}

// jobStart charges one MR job scheduling overhead.
func (a *estAccum) jobStart() { a.t += a.p.MRJobStartup }

// ---- Per-executor estimators ----

func estimateNaive(st *PlanStats) CostEstimate {
	a := estAccum{p: st.Profile}
	leaves := st.Leaves
	if len(leaves) == 0 {
		leaves = []RelStats{st.Left, st.Right}
	}
	var tuples uint64
	for _, l := range leaves {
		a.clientScan(l.Rows, l.Bytes, 2*l.Rows)
		tuples += l.Rows
	}
	// Coordinator hash join over everything.
	a.t += a.p.CPUTime(tuples + uint64(st.JoinPairs))
	return a.est()
}

func estimateHive(st *PlanStats) CostEstimate {
	a := estAccum{p: st.Profile}
	tuples := st.Left.Rows + st.Right.Rows
	j := uint64(st.JoinPairs)
	// Hive drags unprojected SELECT * rows (~1 KB padding) through both
	// shuffles and the materialized join (hivePadding in hive.go).
	pairBytes := uint64(estPairWire + estCellMeta + 1024)

	// Job 1: repartition join of both base tables.
	a.jobStart()
	a.mapPhase(st.Left.Bytes, 2*st.Left.Rows, st.Left.Rows, st.Left.Regions)
	a.mapPhase(st.Right.Bytes, 2*st.Right.Rows, st.Right.Rows, st.Right.Regions)
	a.shuffle(tuples * (estTupleWire + 10))
	a.reducePhase(tuples+j, j*pairBytes, a.p.Nodes)

	// Job 2: score + total order (single reducer).
	a.jobStart()
	a.mapPhase(j*pairBytes, j, j, a.p.Nodes)
	a.shuffle(j * pairBytes)
	a.reducePhase(j, j*pairBytes, 1)

	// Stage 3: fetch the k best rows.
	a.gets(uint64(st.K), pairBytes, 1)
	return a.est()
}

func estimatePig(st *PlanStats) CostEstimate {
	a := estAccum{p: st.Profile}
	tuples := st.Left.Rows + st.Right.Rows
	j := uint64(st.JoinPairs)
	pairBytes := uint64(estPairWire + estCellMeta) // early projection: no padding

	// Job 1: repartition join (projected).
	a.jobStart()
	a.mapPhase(st.Left.Bytes, 2*st.Left.Rows, st.Left.Rows, st.Left.Regions)
	a.mapPhase(st.Right.Bytes, 2*st.Right.Rows, st.Right.Rows, st.Right.Regions)
	a.shuffle(tuples * (estTupleWire + 10))
	a.reducePhase(tuples+j, j*pairBytes, a.p.Nodes)

	// Job 2: ORDER BY sampling pass over the join result.
	a.jobStart()
	a.mapPhase(j*pairBytes, j, j/100, a.p.Nodes)
	a.shuffle(j / 100 * 16)
	a.reducePhase(j/100, 0, 1)

	// Job 3: top-k push-down — mappers emit local top-k lists only.
	a.jobStart()
	localK := uint64(a.p.Nodes * st.K)
	a.mapPhase(j*pairBytes, j, localK, a.p.Nodes)
	a.shuffle(localK * estPairWire)
	a.reducePhase(localK, 0, 1)
	a.net += uint64(st.K) * estPairWire // final output to the client
	return a.est()
}

func estimateIJLMR(st *PlanStats) CostEstimate {
	a := estAccum{p: st.Profile}
	tuples := st.Left.Rows + st.Right.Rows
	idxBytes := st.IndexBytes
	if idxBytes == 0 {
		idxBytes = tuples * estCellMeta // index not built yet: extrapolate
	}
	// One map-only-style job over the inverse join list: each row holds
	// one join value's tuples from both sides; mappers pay the per-row
	// cartesian product, then a single reducer merges local top-k lists.
	a.jobStart()
	localK := uint64(a.p.Nodes * st.K)
	a.mapPhase(idxBytes, tuples+uint64(st.JoinPairs), localK, a.p.Nodes)
	a.shuffle(localK * estPairWire)
	a.reducePhase(localK, 0, 1)
	a.net += uint64(st.K) * estPairWire
	return a.est()
}

func estimateISL(st *PlanStats) CostEstimate {
	if len(st.LeafDepths) > 2 {
		// The n-way coordinator has the any-k cost shape: one batched
		// inverse-score-list scan per leaf down to its termination depth.
		return estimateAnyK(st)
	}
	a := estAccum{p: st.Profile}
	batch := uint64(st.Exec.WithDefaults().ISLBatch)
	dL, dR := uint64(st.LeftDepth), uint64(st.RightDepth)
	// The coordinator consumes depth tuples per side in batched scans of
	// the inverse score lists (~one index cell per tuple).
	cellBytes := uint64(estCellMeta + 10)
	batchesL := dL/batch + 1
	batchesR := dR/batch + 1
	batches := batchesL + batchesR
	seq := time.Duration(batches) * (a.p.RPCLatency +
		a.p.ScanTime(batch*cellBytes) +
		a.p.TransferTime(batch*cellBytes+estRPCOver))
	if st.Exec.Parallelism >= 2 {
		// Prefetching overlaps the two sides' round trips.
		half := batchesL
		if batchesR > half {
			half = batchesR
		}
		seq = time.Duration(half) * (a.p.RPCLatency +
			a.p.ScanTime(batch*cellBytes) +
			a.p.TransferTime(batch*cellBytes+estRPCOver))
	}
	a.t += seq
	a.reads += dL + dR
	a.net += (dL+dR)*cellBytes + batches*estRPCOver
	// HRJN hash-join work: every consumed tuple probes, ~k pairs form.
	a.t += a.p.CPUTime(dL + dR + uint64(st.K))
	return a.est()
}

// estimateAnyK prices the any-k tree executor: one batched
// inverse-score-list scan per leaf down to its estimated termination
// depth (the per-node queue depths of PlanStats.LeafDepths), plus the
// per-tuple probe and candidate-queue CPU.
func estimateAnyK(st *PlanStats) CostEstimate {
	a := estAccum{p: st.Profile}
	batch := uint64(st.Exec.WithDefaults().ISLBatch)
	cellBytes := uint64(estCellMeta + 10)
	depths := st.LeafDepths
	if len(depths) == 0 {
		depths = []float64{st.LeftDepth, st.RightDepth}
	}
	var total, batches, maxBatches uint64
	for _, d := range depths {
		du := uint64(d)
		b := du/batch + 1
		total += du
		batches += b
		if b > maxBatches {
			maxBatches = b
		}
	}
	perBatch := a.p.RPCLatency +
		a.p.ScanTime(batch*cellBytes) +
		a.p.TransferTime(batch*cellBytes+estRPCOver)
	seqBatches := batches
	if st.Exec.Parallelism >= 2 {
		// Prefetching overlaps the leaves' round trips; the slowest
		// stream dominates.
		seqBatches = maxBatches
	}
	a.t += time.Duration(seqBatches) * perBatch
	a.reads += total
	a.net += total*cellBytes + batches*estRPCOver
	// Each consumed tuple probes its neighbor leaves' seen sets; each
	// released result pays heap assembly over n leaves.
	a.t += a.p.CPUTime(total + uint64(st.K)*uint64(len(depths)))
	return a.est()
}

func estimateBFHM(st *PlanStats) CostEstimate {
	a := estAccum{p: st.Profile}
	buckets := st.BFHMBuckets
	if buckets < 1 {
		buckets = 100
	}
	// Estimation phase: fetch leading buckets of both histograms until
	// the estimated cardinality covers k (the StatBands walk), each a
	// keyed read of one Golomb-compressed blob row.
	fetches := uint64(2 * max(2, st.StatBands))
	rowsPerBucket := (st.Left.Rows + st.Right.Rows) / 2 / uint64(buckets)
	if rowsPerBucket < 1 {
		rowsPerBucket = 1
	}
	blobBytes := rowsPerBucket*2 + 64 // ~1.5 bytes/element after GCS
	a.gets(fetches, blobBytes, 1)
	a.reads += 2 * fetches // blob rows carry blob+min+max cells
	// Filter intersections: proportional to the set bits touched.
	a.t += a.p.CPUTime(fetches * rowsPerBucket)

	// Reverse-mapping phase: ~2 keyed reads per surviving estimated
	// result (one per side), fanned out over the parallelism lanes.
	cands := uint64(2 * st.K)
	lanes := st.Exec.Parallelism
	if lanes < 1 {
		lanes = 1
	}
	a.gets(cands, estTupleWire+estCellMeta, lanes)
	a.t += a.p.CPUTime(cands + uint64(st.K))
	return a.est()
}

func estimateDRJN(st *PlanStats) CostEstimate {
	a := estAccum{p: st.Profile}
	parts := st.DRJNJoinParts
	if parts < 1 {
		parts = 64
	}
	bands := uint64(2 * max(2, st.StatBands))
	bandBytes := uint64(25 + 8*parts)
	a.gets(bands, bandBytes, 1)

	// Pull phase: one map-only filtered scan per relation and per
	// round — the full table is examined server-side every time
	// (DRJN's dollar-cost blowup), only tuples above the band floors
	// are materialized into a temp table the coordinator reads back.
	// The loop deepens by ~two bands per round until the k'th actual
	// score beats the unexamined bands' ceiling, so the statistics
	// walk's band count approximates the round count.
	rounds := max(1, (max(2, st.StatBands)+1)/2)
	if rounds > 16 {
		rounds = 16
	}
	pulledL, pulledR := uint64(st.LeftDepth), uint64(st.RightDepth)
	pulledBytes := (pulledL + pulledR) * (estTupleWire + estCellMeta)
	for r := 0; r < rounds; r++ {
		a.jobStart()
		a.mapPhase(st.Left.Bytes, 2*st.Left.Rows, 0, st.Left.Regions)
		a.jobStart()
		a.mapPhase(st.Right.Bytes, 2*st.Right.Rows, 0, st.Right.Regions)
		a.net += pulledBytes // temp-table writes cross the network
		a.t += a.p.TransferTime(pulledBytes)
		// Coordinator reads the pulled tuples back and joins exactly.
		a.clientScan(pulledL+pulledR, pulledBytes, pulledL+pulledR)
	}
	a.t += a.p.CPUTime(pulledL + pulledR + uint64(st.K))
	return a.est()
}

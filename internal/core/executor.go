package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/kvstore"
	"repro/internal/sim"
)

// This file defines the executor layer: every rank-join strategy sits
// behind one Executor interface and is held in a process-wide registry.
// The public API dispatches through registry lookups instead of the
// per-call switch statements the library grew up with, and the planner
// (internal/plan) walks the same registry to cost candidate plans.

// DefaultISLBatch is the ISL scanner caching default — the single
// source for the public QueryOptions, the executor layer, and the
// planner's estimates.
const DefaultISLBatch = 100

// ExecOptions tunes one query execution (the executor-layer mirror of
// the public QueryOptions).
type ExecOptions struct {
	// ISLBatch is the scanner caching size for ISL (default
	// DefaultISLBatch).
	ISLBatch int
	// BFHMWriteBack selects the blob write-back policy (default off).
	BFHMWriteBack WriteBackMode
	// Parallelism fans the client read path out (see QueryOptions).
	Parallelism int
	// Budget bounds the query's wall-clock and read-unit spend (nil =
	// unbounded). Executors wrap their cursors with it in Open and run
	// against a budget-guarded cluster view, so cancellation fires both
	// between results and inside long scans.
	Budget *Budget
}

// WithDefaults fills unset fields.
func (o ExecOptions) WithDefaults() ExecOptions {
	if o.ISLBatch < 1 {
		o.ISLBatch = DefaultISLBatch
	}
	return o
}

// IndexBuildConfig tunes index construction in EnsureIndex.
type IndexBuildConfig struct {
	// BFHMBuckets is the histogram resolution (default 100).
	BFHMBuckets int
	// BFHMFPP is the Bloom false-positive target (default 0.05).
	BFHMFPP float64
	// DRJNBuckets is the DRJN score-band count (default 100).
	DRJNBuckets int
	// DRJNJoinParts is the DRJN join-partition count (default 64).
	DRJNJoinParts int
}

// WithDefaults fills unset fields.
func (c IndexBuildConfig) WithDefaults() IndexBuildConfig {
	if c.BFHMBuckets == 0 {
		c.BFHMBuckets = 100
	}
	if c.BFHMFPP == 0 {
		c.BFHMFPP = 0.05
	}
	if c.DRJNBuckets == 0 {
		c.DRJNBuckets = 100
	}
	if c.DRJNJoinParts == 0 {
		c.DRJNJoinParts = 64
	}
	return c
}

// RelStats summarizes one input relation for the planner.
type RelStats struct {
	// Rows is the tuple count of the base table.
	Rows uint64
	// Bytes is the base table's stored size.
	Bytes uint64
	// Regions is the base table's region count.
	Regions int
}

// AvgRowBytes returns the mean stored bytes per tuple.
func (r RelStats) AvgRowBytes() float64 {
	if r.Rows == 0 {
		return 0
	}
	return float64(r.Bytes) / float64(r.Rows)
}

// PlanStats is everything the planner knows when costing one query
// instance: live cluster table statistics plus join-cardinality and
// termination-depth estimates derived from whatever statistics
// structures exist (DRJN 2-D histograms first, BFHM hybrid filters
// second, uniform assumptions as a last resort).
type PlanStats struct {
	Profile sim.Profile
	K       int
	Left    RelStats
	Right   RelStats
	// Leaves holds the statistics of every tree leaf in leaf order;
	// for two-way queries it mirrors {Left, Right}.
	Leaves []RelStats

	// JoinPairs estimates the full join-result cardinality.
	JoinPairs float64
	// LeftDepth / RightDepth estimate how many tuples each side must
	// surface in descending-score order before a top-k is provably
	// complete (the HRJN early-termination depth).
	LeftDepth  float64
	RightDepth float64
	// LeafDepths generalizes the termination depths over every tree
	// leaf (any-k per-node queue depths); for two-way queries it
	// mirrors {LeftDepth, RightDepth}.
	LeafDepths []float64
	// StatBands is how many leading histogram bands per side the stats
	// walk consumed to cover k; it drives DRJN/BFHM fetch-count
	// estimates. Zero when no histogram statistics were available.
	StatBands int
	// Source names the statistics origin: "drjn", "bfhm", or "uniform".
	Source string
	// BFHMBuckets / DRJNJoinParts describe built (or default) index
	// geometry the estimators size fetches with.
	BFHMBuckets   int
	DRJNJoinParts int

	// Per-candidate context, set by the planner before calling
	// Estimate on each executor:

	// IndexReady reports whether this executor's index is already
	// built for the query.
	IndexReady bool
	// IndexBytes is the stored size of that index (0 if absent).
	IndexBytes uint64
	// Exec carries the query options that shape runtime costs.
	Exec ExecOptions
}

// CostEstimate is a predicted query cost in the paper's three metrics.
type CostEstimate struct {
	SimTime      time.Duration
	NetworkBytes uint64
	KVReads      uint64
}

// Dollars prices the estimated read units per the paper's DynamoDB
// model (footnote 1), through the same formula measured costs use.
func (e CostEstimate) Dollars() float64 {
	return sim.DollarsForReads(e.KVReads)
}

// RelativeError returns |est-actual|/actual for one pair of values (the
// estimated-vs-actual error a Result's stamped estimate makes
// measurable per query). actual == 0 yields 0 when est is also 0, else 1.
func RelativeError(est, actual float64) float64 {
	if actual == 0 {
		if est == 0 {
			return 0
		}
		return 1
	}
	d := est - actual
	if d < 0 {
		d = -d
	}
	return d / actual
}

// Executor is one rank-join strategy behind the registry. Every
// executor consumes the JoinTree query form; two-way-only strategies
// project the tree back to a binary Query via JoinTree.Binary and
// reject other shapes (see Supports).
type Executor interface {
	// Name is the stable identifier ("isl", "bfhm", ...), matching the
	// public Algorithm constants.
	Name() string
	// NeedsIndex reports whether Run requires a prior EnsureIndex.
	NeedsIndex() bool
	// Supports reports whether this executor can run the tree's shape
	// (leaf count and edge predicates). The planner skips unsupported
	// candidates; direct dispatch surfaces a shape error instead.
	Supports(t *JoinTree) bool
	// EnsureIndex idempotently builds the executor's index structures
	// for the tree. Concurrent calls for overlapping scopes serialize
	// (single-flight): exactly one caller builds, the rest observe the
	// finished index.
	EnsureIndex(c *kvstore.Cluster, t *JoinTree, store *IndexStore, cfg IndexBuildConfig) error
	// HasIndex reports whether Run's index requirements are met.
	HasIndex(t *JoinTree, store *IndexStore) bool
	// IndexSize returns the stored bytes of the executor's index(es)
	// for the tree (0 for index-free executors or unbuilt indexes).
	IndexSize(c *kvstore.Cluster, t *JoinTree, store *IndexStore) uint64
	// Estimate predicts the query's execution cost from planner
	// statistics. It must return non-zero costs for any non-empty
	// input, whether or not the index exists yet.
	Estimate(st *PlanStats) CostEstimate
	// Run executes the bounded query (a drain of Open's cursor to t.K
	// results).
	Run(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (*Result, error)
	// Open starts a streaming execution: the cursor yields join results
	// one at a time in descending score order, with no fixed k. For
	// incremental executors t.K is irrelevant beyond validation; for
	// materializing ones it is the initial batch depth (the page-size
	// hint), with deeper pulls re-running at doubled depths.
	Open(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (Cursor, error)
	// Incremental reports whether Open enumerates natively — each Next
	// pays only marginal work — as opposed to materializing bounded
	// re-runs. The planner charges materializing executors the re-run
	// penalty when costing deep pagination.
	Incremental() bool
}

// ---- Registry ----

var (
	registryMu sync.RWMutex
	registry   = map[string]Executor{} // guarded by: registryMu
	// registryOrder preserves registration order (the paper's
	// evaluation order) for deterministic iteration.
	// guarded by: registryMu
	registryOrder []string
)

// Register adds an executor to the registry. Registering a duplicate
// name panics: names are the dispatch keys of the public API.
func Register(e Executor) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.Name()]; dup {
		panic(fmt.Sprintf("core: executor %q registered twice", e.Name()))
	}
	registry[e.Name()] = e
	registryOrder = append(registryOrder, e.Name())
}

// Lookup returns the executor registered under name.
func Lookup(name string) (Executor, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Executors returns every registered executor in registration order.
func Executors() []Executor {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Executor, 0, len(registryOrder))
	for _, n := range registryOrder {
		out = append(out, registry[n])
	}
	return out
}

package core

import (
	"fmt"

	"repro/internal/kvstore"
)

// The paper's seven algorithms plus the any-k tree executor as registry
// executors. This file is the single dispatch surface: what used to be
// three parallel switch statements (TopK, EnsureIndexes, IndexDiskSize)
// is now one Executor implementation per strategy. Every executor
// consumes the JoinTree form; the two-way-only strategies project it
// back to a binary Query through requireBinary.

func init() {
	Register(naiveExec{})
	Register(hiveExec{})
	Register(pigExec{})
	Register(ijlmrExec{})
	Register(islExec{})
	Register(bfhmExec{})
	Register(drjnExec{})
	Register(anykExec{})
}

// tableSize returns a table's stored bytes, 0 when it does not exist.
func tableSize(c *kvstore.Cluster, table string) uint64 {
	sz, _ := c.TableDiskSize(table)
	return sz
}

// unsupportedShape is the dispatch error for a hand-picked executor
// that cannot run the tree's shape.
func unsupportedShape(name string, t *JoinTree) error {
	return fmt.Errorf("rankjoin: algorithm %q does not support join shape %s (try %s or %s)",
		name, t.ID(), "naive", "anyk")
}

// requireBinary projects the tree onto the two-way Query form the
// binary-only executors consume, or fails with a shape diagnostic.
func requireBinary(name string, t *JoinTree) (Query, error) {
	q, ok := t.Binary()
	if !ok {
		return Query{}, unsupportedShape(name, t)
	}
	return q, nil
}

// isBinary reports the two-leaf all-equi shape.
func isBinary(t *JoinTree) bool {
	_, ok := t.Binary()
	return ok
}

// materialize adapts a batch-shaped top-k function to Open's streaming
// contract: the cursor materializes the top t.K, then re-runs at
// doubled depths when drained deeper. The budget wrap makes Next
// enforce the query's deadline/read cap between results; the budget
// also fires inside run itself via the cluster guard, since a
// materializing executor does nearly all its work there.
func materialize(t *JoinTree, b *Budget, run func(k int) (*Result, error)) (Cursor, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return WrapBudget(NewMaterializedCursor(t.K, run), b), nil
}

// ---- Naive ----

type naiveExec struct{}

func (naiveExec) Name() string            { return "naive" }
func (naiveExec) NeedsIndex() bool        { return false }
func (naiveExec) Supports(*JoinTree) bool { return true }
func (naiveExec) EnsureIndex(*kvstore.Cluster, *JoinTree, *IndexStore, IndexBuildConfig) error {
	return nil
}
func (naiveExec) HasIndex(*JoinTree, *IndexStore) bool                      { return true }
func (naiveExec) IndexSize(*kvstore.Cluster, *JoinTree, *IndexStore) uint64 { return 0 }
func (naiveExec) Estimate(st *PlanStats) CostEstimate                       { return estimateNaive(st) }
func (naiveExec) Incremental() bool                                         { return false }
func (naiveExec) Run(c *kvstore.Cluster, t *JoinTree, _ *IndexStore, _ ExecOptions) (*Result, error) {
	if q, ok := t.Binary(); ok {
		return NaiveTopK(c, q)
	}
	return NaiveTreeTopK(c, t)
}
func (naiveExec) Open(c *kvstore.Cluster, t *JoinTree, _ *IndexStore, opts ExecOptions) (Cursor, error) {
	return materialize(t, opts.Budget, func(k int) (*Result, error) {
		tt := *t
		tt.K = k
		if q, ok := tt.Binary(); ok {
			return NaiveTopK(c, q)
		}
		return NaiveTreeTopK(c, &tt)
	})
}

// ---- Hive ----

type hiveExec struct{}

func (hiveExec) Name() string              { return "hive" }
func (hiveExec) NeedsIndex() bool          { return false }
func (hiveExec) Supports(t *JoinTree) bool { return isBinary(t) }
func (hiveExec) EnsureIndex(_ *kvstore.Cluster, t *JoinTree, _ *IndexStore, _ IndexBuildConfig) error {
	if !isBinary(t) {
		return unsupportedShape("hive", t)
	}
	return nil
}
func (hiveExec) HasIndex(t *JoinTree, _ *IndexStore) bool                  { return isBinary(t) }
func (hiveExec) IndexSize(*kvstore.Cluster, *JoinTree, *IndexStore) uint64 { return 0 }
func (hiveExec) Estimate(st *PlanStats) CostEstimate                       { return estimateHive(st) }
func (hiveExec) Incremental() bool                                         { return false }
func (hiveExec) Run(c *kvstore.Cluster, t *JoinTree, _ *IndexStore, _ ExecOptions) (*Result, error) {
	q, err := requireBinary("hive", t)
	if err != nil {
		return nil, err
	}
	return QueryHive(c, q)
}
func (hiveExec) Open(c *kvstore.Cluster, t *JoinTree, _ *IndexStore, opts ExecOptions) (Cursor, error) {
	q, err := requireBinary("hive", t)
	if err != nil {
		return nil, err
	}
	return materialize(t, opts.Budget, func(k int) (*Result, error) {
		qq := q
		qq.K = k
		return QueryHive(c, qq)
	})
}

// ---- Pig ----

type pigExec struct{}

func (pigExec) Name() string              { return "pig" }
func (pigExec) NeedsIndex() bool          { return false }
func (pigExec) Supports(t *JoinTree) bool { return isBinary(t) }
func (pigExec) EnsureIndex(_ *kvstore.Cluster, t *JoinTree, _ *IndexStore, _ IndexBuildConfig) error {
	if !isBinary(t) {
		return unsupportedShape("pig", t)
	}
	return nil
}
func (pigExec) HasIndex(t *JoinTree, _ *IndexStore) bool                  { return isBinary(t) }
func (pigExec) IndexSize(*kvstore.Cluster, *JoinTree, *IndexStore) uint64 { return 0 }
func (pigExec) Estimate(st *PlanStats) CostEstimate                       { return estimatePig(st) }
func (pigExec) Incremental() bool                                         { return false }
func (pigExec) Run(c *kvstore.Cluster, t *JoinTree, _ *IndexStore, _ ExecOptions) (*Result, error) {
	q, err := requireBinary("pig", t)
	if err != nil {
		return nil, err
	}
	return QueryPig(c, q)
}
func (pigExec) Open(c *kvstore.Cluster, t *JoinTree, _ *IndexStore, opts ExecOptions) (Cursor, error) {
	q, err := requireBinary("pig", t)
	if err != nil {
		return nil, err
	}
	return materialize(t, opts.Budget, func(k int) (*Result, error) {
		qq := q
		qq.K = k
		return QueryPig(c, qq)
	})
}

// ---- IJLMR ----

type ijlmrExec struct{}

func (ijlmrExec) Name() string              { return "ijlmr" }
func (ijlmrExec) NeedsIndex() bool          { return true }
func (ijlmrExec) Supports(t *JoinTree) bool { return isBinary(t) }

func (ijlmrExec) EnsureIndex(c *kvstore.Cluster, t *JoinTree, store *IndexStore, _ IndexBuildConfig) error {
	q, err := requireBinary("ijlmr", t)
	if err != nil {
		return err
	}
	lock := store.BuildScope("ijlmr/" + q.ID())
	lock.Lock()
	defer lock.Unlock()
	if _, ok := store.IJLMR(q.ID()); ok {
		return nil
	}
	idx, _, err := BuildIJLMR(c, q)
	if err != nil {
		return err
	}
	store.PutIJLMR(q.ID(), idx)
	return nil
}

func (ijlmrExec) HasIndex(t *JoinTree, store *IndexStore) bool {
	q, ok := t.Binary()
	if !ok {
		return false
	}
	_, ok = store.IJLMR(q.ID())
	return ok
}

func (ijlmrExec) IndexSize(c *kvstore.Cluster, t *JoinTree, store *IndexStore) uint64 {
	q, ok := t.Binary()
	if !ok {
		return 0
	}
	idx, ok := store.IJLMR(q.ID())
	if !ok {
		return 0
	}
	return tableSize(c, idx.Table)
}

func (ijlmrExec) Estimate(st *PlanStats) CostEstimate { return estimateIJLMR(st) }
func (ijlmrExec) Incremental() bool                   { return false }

func (ijlmrExec) Run(c *kvstore.Cluster, t *JoinTree, store *IndexStore, _ ExecOptions) (*Result, error) {
	q, err := requireBinary("ijlmr", t)
	if err != nil {
		return nil, err
	}
	idx, ok := store.IJLMR(q.ID())
	if !ok {
		return nil, fmt.Errorf("rankjoin: no IJLMR index for %s; call EnsureIndexes first", q.ID())
	}
	return QueryIJLMR(c, q, idx)
}

func (ijlmrExec) Open(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (Cursor, error) {
	q, err := requireBinary("ijlmr", t)
	if err != nil {
		return nil, err
	}
	idx, ok := store.IJLMR(q.ID())
	if !ok {
		return nil, fmt.Errorf("rankjoin: no IJLMR index for %s; call EnsureIndexes first", q.ID())
	}
	return materialize(t, opts.Budget, func(k int) (*Result, error) {
		qq := q
		qq.K = k
		return QueryIJLMR(c, qq, idx)
	})
}

// ---- ISL ----

// islExec runs the binary inverse-score-list coordinator for two-way
// trees and the n-way ISLN generalization for larger all-equi trees
// (any connected all-equi tree is semantically a star). Band-predicate
// trees are out of scope — use any-k.
type islExec struct{}

func (islExec) Name() string              { return "isl" }
func (islExec) NeedsIndex() bool          { return true }
func (islExec) Supports(t *JoinTree) bool { return t.AllEqui() }

func (islExec) EnsureIndex(c *kvstore.Cluster, t *JoinTree, store *IndexStore, _ IndexBuildConfig) error {
	if q, ok := t.Binary(); ok {
		lock := store.BuildScope("isl/" + q.ID())
		lock.Lock()
		defer lock.Unlock()
		if _, ok := store.ISL(q.ID()); ok {
			return nil
		}
		idx, _, err := BuildISL(c, q)
		if err != nil {
			return err
		}
		store.PutISL(q.ID(), idx)
		return nil
	}
	if !t.AllEqui() {
		return unsupportedShape("isl", t)
	}
	return EnsureISLN(c, t, store)
}

func (islExec) HasIndex(t *JoinTree, store *IndexStore) bool {
	if q, ok := t.Binary(); ok {
		_, ok = store.ISL(q.ID())
		return ok
	}
	if !t.AllEqui() {
		return false
	}
	_, ok := store.ISLN(t.LeafID())
	return ok
}

func (islExec) IndexSize(c *kvstore.Cluster, t *JoinTree, store *IndexStore) uint64 {
	if q, ok := t.Binary(); ok {
		idx, ok := store.ISL(q.ID())
		if !ok {
			return 0
		}
		return tableSize(c, idx.Table)
	}
	idx, ok := store.ISLN(t.LeafID())
	if !ok {
		return 0
	}
	return tableSize(c, idx.Table)
}

func (islExec) Estimate(st *PlanStats) CostEstimate { return estimateISL(st) }
func (islExec) Incremental() bool                   { return true }

func (islExec) Run(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (*Result, error) {
	return RunCursor(c, t.K, func() (Cursor, error) { return islExec{}.Open(c, t, store, opts) })
}

func (islExec) Open(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (Cursor, error) {
	opts = opts.WithDefaults()
	if q, ok := t.Binary(); ok {
		idx, ok := store.ISL(q.ID())
		if !ok {
			return nil, fmt.Errorf("rankjoin: no ISL index for %s; call EnsureIndexes first", q.ID())
		}
		cur, err := OpenISL(c, q, idx, ISLOptions{
			BatchLeft:   opts.ISLBatch,
			BatchRight:  opts.ISLBatch,
			Parallelism: opts.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		return WrapBudget(cur, opts.Budget), nil
	}
	star, ok := t.Star()
	if !ok {
		return nil, unsupportedShape("isl", t)
	}
	idx, ok := store.ISLN(t.LeafID())
	if !ok {
		return nil, fmt.Errorf("rankjoin: no n-way ISL index for %s; call EnsureMultiIndexes first", t.LeafID())
	}
	// The n-ary coordinator targets a fixed k, so the stream
	// materializes pages through the doubling schedule.
	return materialize(t, opts.Budget, func(k int) (*Result, error) {
		s := star
		s.K = k
		nres, err := QueryISLN(c, s, idx, opts.ISLBatch)
		if err != nil {
			return nil, err
		}
		return &Result{Results: treeResults(nres.Results), Cost: nres.Cost, Algorithm: "isl"}, nil
	})
}

// ---- BFHM ----

type bfhmExec struct{}

func (bfhmExec) Name() string              { return "bfhm" }
func (bfhmExec) NeedsIndex() bool          { return true }
func (bfhmExec) Supports(t *JoinTree) bool { return isBinary(t) }

// EnsureIndex builds both relations' BFHM indexes with a shared filter
// width (intersection requires equal widths; the first build auto-sizes
// from its heaviest bucket, the second inherits). All BFHM builds
// serialize on one family-wide scope: concurrent EnsureIndex calls for
// overlapping relation pairs would otherwise race the width handshake
// and persist filters that can never be intersected.
func (bfhmExec) EnsureIndex(c *kvstore.Cluster, t *JoinTree, store *IndexStore, cfg IndexBuildConfig) error {
	q, err := requireBinary("bfhm", t)
	if err != nil {
		return err
	}
	cfg = cfg.WithDefaults()
	lock := store.BuildScope("bfhm")
	lock.Lock()
	defer lock.Unlock()
	var shared uint64
	if idx, ok := store.BFHM(q.Left.Name); ok {
		shared = idx.MBits
	} else if idx, ok := store.BFHM(q.Right.Name); ok {
		shared = idx.MBits
	}
	for _, rel := range []Relation{q.Left, q.Right} {
		if _, ok := store.BFHM(rel.Name); ok {
			continue
		}
		idx, _, err := BuildBFHM(c, rel, BFHMOptions{
			NumBuckets: cfg.BFHMBuckets,
			FPP:        cfg.BFHMFPP,
			MBits:      shared,
		})
		if err != nil {
			return err
		}
		shared = idx.MBits
		store.PutBFHM(rel.Name, idx)
	}
	return nil
}

func (bfhmExec) HasIndex(t *JoinTree, store *IndexStore) bool {
	q, ok := t.Binary()
	if !ok {
		return false
	}
	_, okA := store.BFHM(q.Left.Name)
	_, okB := store.BFHM(q.Right.Name)
	return okA && okB
}

func (bfhmExec) IndexSize(c *kvstore.Cluster, t *JoinTree, store *IndexStore) uint64 {
	q, ok := t.Binary()
	if !ok {
		return 0
	}
	var total uint64
	for _, name := range []string{q.Left.Name, q.Right.Name} {
		if idx, ok := store.BFHM(name); ok {
			total += tableSize(c, idx.Table)
		}
	}
	return total
}

func (bfhmExec) Estimate(st *PlanStats) CostEstimate { return estimateBFHM(st) }
func (bfhmExec) Incremental() bool                   { return false }

func (bfhmExec) Run(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (*Result, error) {
	q, err := requireBinary("bfhm", t)
	if err != nil {
		return nil, err
	}
	idxA, okA := store.BFHM(q.Left.Name)
	idxB, okB := store.BFHM(q.Right.Name)
	if !okA || !okB {
		return nil, fmt.Errorf("rankjoin: missing BFHM index for %s; call EnsureIndexes first", q.ID())
	}
	return QueryBFHM(c, q, idxA, idxB, BFHMQueryOptions{
		WriteBack:   opts.BFHMWriteBack,
		Parallelism: opts.Parallelism,
	})
}

// Open materializes: BFHM's estimation/reverse-mapping pipeline is
// k-driven end to end (the histogram walk targets the k'th estimate),
// so deeper pulls re-run the bounded query at doubled k.
func (bfhmExec) Open(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (Cursor, error) {
	q, err := requireBinary("bfhm", t)
	if err != nil {
		return nil, err
	}
	idxA, okA := store.BFHM(q.Left.Name)
	idxB, okB := store.BFHM(q.Right.Name)
	if !okA || !okB {
		return nil, fmt.Errorf("rankjoin: missing BFHM index for %s; call EnsureIndexes first", q.ID())
	}
	return materialize(t, opts.Budget, func(k int) (*Result, error) {
		qq := q
		qq.K = k
		return QueryBFHM(c, qq, idxA, idxB, BFHMQueryOptions{
			WriteBack:   opts.BFHMWriteBack,
			Parallelism: opts.Parallelism,
		})
	})
}

// ---- DRJN ----

type drjnExec struct{}

func (drjnExec) Name() string              { return "drjn" }
func (drjnExec) NeedsIndex() bool          { return true }
func (drjnExec) Supports(t *JoinTree) bool { return isBinary(t) }

func (drjnExec) EnsureIndex(c *kvstore.Cluster, t *JoinTree, store *IndexStore, cfg IndexBuildConfig) error {
	q, err := requireBinary("drjn", t)
	if err != nil {
		return err
	}
	cfg = cfg.WithDefaults()
	// One family-wide scope: both relations' matrices must agree on the
	// join-partition count for the band dot products.
	lock := store.BuildScope("drjn")
	lock.Lock()
	defer lock.Unlock()
	for _, rel := range []Relation{q.Left, q.Right} {
		if _, ok := store.DRJN(rel.Name); ok {
			continue
		}
		idx, _, err := BuildDRJN(c, rel, DRJNOptions{
			NumBuckets: cfg.DRJNBuckets,
			JoinParts:  cfg.DRJNJoinParts,
		})
		if err != nil {
			return err
		}
		store.PutDRJN(rel.Name, idx)
	}
	return nil
}

func (drjnExec) HasIndex(t *JoinTree, store *IndexStore) bool {
	q, ok := t.Binary()
	if !ok {
		return false
	}
	_, okA := store.DRJN(q.Left.Name)
	_, okB := store.DRJN(q.Right.Name)
	return okA && okB
}

func (drjnExec) IndexSize(c *kvstore.Cluster, t *JoinTree, store *IndexStore) uint64 {
	q, ok := t.Binary()
	if !ok {
		return 0
	}
	var total uint64
	for _, name := range []string{q.Left.Name, q.Right.Name} {
		if idx, ok := store.DRJN(name); ok {
			total += tableSize(c, idx.Table)
		}
	}
	return total
}

func (drjnExec) Estimate(st *PlanStats) CostEstimate { return estimateDRJN(st) }
func (drjnExec) Incremental() bool                   { return true }

func (drjnExec) Run(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (*Result, error) {
	return RunCursor(c, t.K, func() (Cursor, error) { return drjnExec{}.Open(c, t, store, opts) })
}

func (drjnExec) Open(c *kvstore.Cluster, t *JoinTree, store *IndexStore, opts ExecOptions) (Cursor, error) {
	q, err := requireBinary("drjn", t)
	if err != nil {
		return nil, err
	}
	idxA, okA := store.DRJN(q.Left.Name)
	idxB, okB := store.DRJN(q.Right.Name)
	if !okA || !okB {
		return nil, fmt.Errorf("rankjoin: missing DRJN index for %s; call EnsureIndexes first", q.ID())
	}
	cur, err := OpenDRJN(c, q, idxA, idxB)
	if err != nil {
		return nil, err
	}
	return WrapBudget(cur, opts.Budget), nil
}

package core

import (
	"fmt"
	"testing"
)

// Failure-injection tests: topology changes (region splits, moves) and
// crash recovery must not change query answers.

func TestQueriesSurviveRegionSplits(t *testing.T) {
	c := newTestCluster()
	left := synthTuples("l", 300, 40, "uniform", 71)
	right := synthTuples("r", 300, 40, "uniform", 72)
	relL := loadRelation(t, c, "L", left)
	relR := loadRelation(t, c, "R", right)
	q := Query{Left: relL, Right: relR, Score: Sum, K: 15}

	islIdx, _, err := BuildISL(c, q)
	if err != nil {
		t.Fatal(err)
	}
	bfhmL, _, err := BuildBFHM(c, relL, BFHMOptions{NumBuckets: 10})
	if err != nil {
		t.Fatal(err)
	}
	bfhmR, _, err := BuildBFHM(c, relR, BFHMOptions{NumBuckets: 10, MBits: bfhmL.MBits})
	if err != nil {
		t.Fatal(err)
	}

	// Split base tables and index tables, several times.
	for _, tbl := range []string{relL.Table, relR.Table, islIdx.Table, bfhmL.Table, bfhmR.Table} {
		if err := c.SplitRegion(tbl, ""); err != nil {
			t.Fatalf("split %s: %v", tbl, err)
		}
		if err := c.SplitRegion(tbl, ""); err != nil {
			t.Fatalf("second split %s: %v", tbl, err)
		}
	}

	want := scoresOf(oracleTopK(left, right, Sum, q.K))
	isl, err := QueryISL(c, q, islIdx, ISLOptions{BatchLeft: 16, BatchRight: 16})
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "isl-after-splits", scoresOf(isl.Results), want)
	bf, err := QueryBFHM(c, q, bfhmL, bfhmR, BFHMQueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "bfhm-after-splits", scoresOf(bf.Results), want)
	nv, err := NaiveTopK(c, q)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "naive-after-splits", scoresOf(nv.Results), want)
}

func TestQueriesSurviveRegionMoves(t *testing.T) {
	c := newTestCluster()
	left := synthTuples("l", 200, 30, "uniform", 81)
	right := synthTuples("r", 200, 30, "uniform", 82)
	relL := loadRelation(t, c, "L", left)
	relR := loadRelation(t, c, "R", right)
	q := Query{Left: relL, Right: relR, Score: Product, K: 10}
	ijlmrIdx, _, err := BuildIJLMR(c, q)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle every region to a different node; MR locality changes but
	// results must not.
	for _, tbl := range []string{relL.Table, relR.Table, ijlmrIdx.Table} {
		regs, err := c.TableRegions(tbl)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range regs {
			row := r.StartKey()
			if row == "" {
				row = "\x01"
			}
			if err := c.MoveRegion(tbl, row, (r.Node()+i+1)%c.Nodes()); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := scoresOf(oracleTopK(left, right, Product, q.K))
	res, err := QueryIJLMR(c, q, ijlmrIdx)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "ijlmr-after-moves", scoresOf(res.Results), want)
}

func TestSplitDuringMaintenanceWorkload(t *testing.T) {
	s := newMaintSetup(t, 91)
	// Interleave splits with online updates.
	for i := 0; i < 20; i++ {
		s.insertLeft(t, Tuple{
			RowKey:    fmt.Sprintf("lsp%03d", i),
			JoinValue: fmt.Sprintf("j%d", i%20),
			Score:     float64((i*97)%1000) / 1000,
		})
		if i == 7 {
			if err := s.c.SplitRegion(s.q.Left.Table, ""); err != nil {
				t.Fatal(err)
			}
		}
		if i == 13 {
			if err := s.c.SplitRegion(s.bfhmL.Table, ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.checkAll(t, WriteBackEager)
}

package core

import (
	"fmt"

	"repro/internal/kvstore"
	"repro/internal/mapreduce"
)

// This file implements the Hive baseline (Section 3.1): rank-join as two
// MapReduce jobs plus a final fetch stage.
//
//	Job 1 computes and materializes the full join result set.
//	Job 2 computes each join tuple's score and stores the set sorted on
//	      score (a single reducer gives the total order Hive's ORDER BY
//	      produces).
//	Stage 3 (non-MapReduce) fetches the k highest-ranked rows.
//
// Hive performs no early projection or top-k push-down, so the full join
// result — with the untrimmed row payloads — crosses the shuffle twice.

const (
	hiveTagLeft  = 'L'
	hiveTagRight = 'R'
	tmpFamily    = "t"
	// hivePadding models the unprojected SELECT * row payload Hive
	// drags through its pipeline (the paper's Section 1: "rows now
	// contain typically lots of data useless to most queries"; two
	// unprojected TPC-H rows are on the order of a kilobyte).
	hivePadding = 1024
)

// tagTuple prefixes an encoded tuple with its relation tag.
func tagTuple(tag byte, t Tuple) []byte {
	return append([]byte{tag}, EncodeTuple(t)...)
}

// splitTagged decodes a tagged tuple.
func splitTagged(v []byte) (byte, Tuple, error) {
	if len(v) < 1 {
		return 0, Tuple{}, fmt.Errorf("core: empty tagged tuple")
	}
	t, err := DecodeTuple(v[1:])
	return v[0], t, err
}

// joinJob runs the repartition-join job shared by Hive and Pig: both
// relations map into a shuffle keyed by join value; reducers emit the
// cartesian product per join value into tmpTable. pad appends filler
// bytes to every materialized pair (Hive's missing projection).
func joinJob(c *kvstore.Cluster, q *Query, name, tmpTable string, pad int) (*mapreduce.Result, error) {
	if _, err := c.CreateTable(tmpTable, []string{tmpFamily}, hashSplits(c.Nodes())); err != nil {
		return nil, err
	}
	mkMapper := func(rel Relation, tag byte) mapreduce.Mapper {
		return mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			t, ok := TupleFromRow(&rel, row)
			if !ok {
				return nil
			}
			ctx.Emit(t.JoinValue, tagTuple(tag, t))
			return nil
		})
	}
	return mapreduce.Run(&mapreduce.Job{
		Name:    name,
		Cluster: c,
		Inputs: []mapreduce.TableInput{
			{Scan: kvstore.Scan{Table: q.Left.Table, Families: []string{q.Left.Family}}, Mapper: mkMapper(q.Left, hiveTagLeft)},
			{Scan: kvstore.Scan{Table: q.Right.Table, Families: []string{q.Right.Family}}, Mapper: mkMapper(q.Right, hiveTagRight)},
		},
		Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, ctx mapreduce.Context) error {
			var left, right []Tuple
			for _, v := range values {
				tag, t, err := splitTagged(v)
				if err != nil {
					return err
				}
				if tag == hiveTagLeft {
					left = append(left, t)
				} else {
					right = append(right, t)
				}
			}
			for _, lt := range left {
				for _, rt := range right {
					pair := JoinResult{Left: lt, Right: rt} // score filled by job 2
					val := EncodeJoinResult(pair)
					if pad > 0 {
						val = append(val, make([]byte, pad)...)
					}
					ctx.WriteCell(tmpTable, kvstore.Cell{
						Row:       fmt.Sprintf("%s%c%s", lt.RowKey, '+', rt.RowKey),
						Family:    tmpFamily,
						Qualifier: "p",
						Value:     val,
					})
					ctx.Counter("join_results", 1)
				}
			}
			return nil
		}),
		NumReducers: c.Nodes(),
	})
}

// QueryHive runs the Hive baseline.
func QueryHive(c *kvstore.Cluster, q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	before := c.Metrics().Snapshot()
	uniq := c.Now()
	tmpJoin := fmt.Sprintf("tmp_hive_join_%s_%d", q.ID(), uniq)
	tmpSorted := fmt.Sprintf("tmp_hive_sorted_%s_%d", q.ID(), uniq)
	defer func() {
		_ = c.DropTable(tmpJoin)
		_ = c.DropTable(tmpSorted)
	}()

	// Job 1: materialize the join result.
	if _, err := joinJob(c, &q, "hive-join-"+q.ID(), tmpJoin, hivePadding); err != nil {
		return nil, err
	}

	// Job 2: score and totally order the join result (single reducer).
	if _, err := c.CreateTable(tmpSorted, []string{tmpFamily}, nil); err != nil {
		return nil, err
	}
	if _, err := mapreduce.Run(&mapreduce.Job{
		Name:    "hive-sort-" + q.ID(),
		Cluster: c,
		Input:   kvstore.Scan{Table: tmpJoin},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			cell := row.Cell(tmpFamily, "p")
			if cell == nil {
				return nil
			}
			// The decoder ignores the trailing SELECT * padding.
			pair, err := DecodeJoinResult(cell.Value)
			if err != nil {
				return err
			}
			pair.Score = q.Score.Fn(pair.Left.Score, pair.Right.Score)
			// Hive's ORDER BY drags the full unprojected rows through
			// the shuffle too.
			val := append(EncodeJoinResult(pair), make([]byte, hivePadding)...)
			ctx.Emit(kvstore.EncodeScoreDesc(pair.Score)+"|"+row.Key, val)
			return nil
		}),
		Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, ctx mapreduce.Context) error {
			for i, v := range values {
				ctx.WriteCell(tmpSorted, kvstore.Cell{
					Row:       fmt.Sprintf("%s#%d", key, i),
					Family:    tmpFamily,
					Qualifier: "p",
					Value:     v,
				})
			}
			return nil
		}),
		NumReducers: 1,
	}); err != nil {
		return nil, err
	}

	// Stage 3: fetch the k best rows from the sorted table.
	top := NewTopKList(q.K)
	sc, err := c.OpenScanner(kvstore.Scan{Table: tmpSorted, Caching: q.K})
	if err != nil {
		return nil, err
	}
	for n := 0; n < q.K; n++ {
		row, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		cell := row.Cell(tmpFamily, "p")
		if cell == nil {
			continue
		}
		pair, err := DecodeJoinResult(cell.Value)
		if err != nil {
			return nil, err
		}
		top.Add(pair)
	}
	return &Result{Results: top.Results(), Cost: c.Metrics().Snapshot().Sub(before)}, nil
}

package core

import "math"

// This file implements the HRJN rank-join operator of Ilyas et al.
// (Section 4.2.1) in its two-way form. HRJN pulls tuples from two
// score-descending streams, joins each new tuple against everything seen
// from the other stream, and stops when the k'th best join score reaches
// the threshold
//
//	S = max( f(sMinA, sMaxB), f(sMaxA, sMinB) )
//
// — the best score any future join result could attain. The ISL
// algorithm (Section 4.2.3) is HRJN with the streams backed by batched
// scans of the inverse score lists.

// TupleSource is a score-descending stream of tuples. Next returns nil
// when the stream is exhausted.
type TupleSource interface {
	Next() (*Tuple, error)
}

// SliceSource adapts an in-memory slice (already sorted descending by
// score) to TupleSource; tests and the quickstart example use it.
type SliceSource struct {
	Tuples []Tuple
	pos    int
}

// Next implements TupleSource.
func (s *SliceSource) Next() (*Tuple, error) {
	if s.pos >= len(s.Tuples) {
		return nil, nil
	}
	t := &s.Tuples[s.pos]
	s.pos++
	return t, nil
}

// HRJN is the pull/bound rank-join operator state.
type HRJN struct {
	score ScoreFunc
	k     int

	seenA map[string][]Tuple // join value -> tuples pulled from A
	seenB map[string][]Tuple
	top   *TopKList

	maxA, minA float64 // highest/lowest score pulled from A
	maxB, minB float64
	gotA, gotB bool
	doneA      bool
	doneB      bool

	pulled int
}

// NewHRJN creates an operator for top-k with aggregate f.
func NewHRJN(k int, f ScoreFunc) *HRJN {
	return &HRJN{
		score: f,
		k:     k,
		seenA: map[string][]Tuple{},
		seenB: map[string][]Tuple{},
		top:   NewTopKList(k),
		minA:  math.Inf(1), maxA: math.Inf(-1),
		minB: math.Inf(1), maxB: math.Inf(-1),
	}
}

// PushA feeds one tuple pulled from stream A (descending order is the
// caller's contract). It joins the tuple against all B tuples seen.
func (h *HRJN) PushA(t Tuple) {
	h.pulled++
	h.gotA = true
	if t.Score > h.maxA {
		h.maxA = t.Score
	}
	if t.Score < h.minA {
		h.minA = t.Score
	}
	h.seenA[t.JoinValue] = append(h.seenA[t.JoinValue], t)
	for _, other := range h.seenB[t.JoinValue] {
		h.top.Add(JoinResult{Left: t, Right: other, Score: h.score.Fn(t.Score, other.Score)})
	}
}

// PushB feeds one tuple pulled from stream B.
func (h *HRJN) PushB(t Tuple) {
	h.pulled++
	h.gotB = true
	if t.Score > h.maxB {
		h.maxB = t.Score
	}
	if t.Score < h.minB {
		h.minB = t.Score
	}
	h.seenB[t.JoinValue] = append(h.seenB[t.JoinValue], t)
	for _, other := range h.seenA[t.JoinValue] {
		h.top.Add(JoinResult{Left: other, Right: t, Score: h.score.Fn(other.Score, t.Score)})
	}
}

// ExhaustA marks stream A as drained.
func (h *HRJN) ExhaustA() { h.doneA = true }

// ExhaustB marks stream B as drained.
func (h *HRJN) ExhaustB() { h.doneB = true }

// Threshold returns the best join score any future result could have:
// max(f(minA, maxB), f(maxA, minB)). Before both streams have produced a
// tuple the threshold is +Inf (nothing can be ruled out).
func (h *HRJN) Threshold() float64 {
	if !h.gotA || !h.gotB {
		if h.doneA || h.doneB {
			return math.Inf(-1) // one stream empty: no joins can exist
		}
		return math.Inf(1)
	}
	// If a stream is exhausted its "future" contribution is bounded by
	// the lowest score it produced; otherwise by the last (lowest) seen.
	tA := h.score.Fn(h.minA, h.maxB)
	tB := h.score.Fn(h.maxA, h.minB)
	if h.doneA && h.doneB {
		return math.Inf(-1)
	}
	if h.doneA {
		return tB // only B can produce new tuples
	}
	if h.doneB {
		return tA
	}
	if tA > tB {
		return tA
	}
	return tB
}

// Done reports whether the operator can stop: k results are held and the
// k'th score is at least the threshold.
func (h *HRJN) Done() bool {
	if h.doneA && h.doneB {
		return true
	}
	if !h.top.Full() {
		return false
	}
	return h.top.KthScore() >= h.Threshold()
}

// Results returns the current top-k, best first.
func (h *HRJN) Results() []JoinResult { return h.top.Results() }

// TuplesPulled returns how many tuples were fed in (the paper's
// "tuples transferred" cost driver for ISL).
func (h *HRJN) TuplesPulled() int { return h.pulled }

// RunHRJN drives the operator over two sources with single-tuple
// alternating pulls (classic HRJN) and returns the top-k.
func RunHRJN(k int, f ScoreFunc, a, b TupleSource) ([]JoinResult, error) {
	h := NewHRJN(k, f)
	pullA := true
	for !h.Done() {
		var src TupleSource
		if (pullA && !h.doneA) || h.doneB {
			src = a
		} else {
			src = b
		}
		t, err := src.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			if src == a {
				h.ExhaustA()
			} else {
				h.ExhaustB()
			}
		} else if src == a {
			h.PushA(*t)
		} else {
			h.PushB(*t)
		}
		pullA = !pullA
	}
	return h.Results(), nil
}

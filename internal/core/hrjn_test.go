package core

import (
	"sort"
	"testing"
)

// descending sorts tuples by score descending (HRJN input contract).
func descending(ts []Tuple) []Tuple {
	out := append([]Tuple(nil), ts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].RowKey < out[j].RowKey
	})
	return out
}

func TestHRJNPaperExample(t *testing.T) {
	// Running example (Fig. 1), f = sum, k = 3. Exact answer:
	// 1.74 (r1_7 b + r2_11), 1.73 (r1_7 b + r2_2), 1.62 (r1_8 b + r2_11).
	got, err := RunHRJN(3, Sum,
		&SliceSource{Tuples: descending(paperR1)},
		&SliceSource{Tuples: descending(paperR2)})
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopK(paperR1, paperR2, Sum, 3)
	assertScoresEqual(t, "hrjn-paper", scoresOf(got), scoresOf(want))
	verifyResultsAreRealJoins(t, "hrjn-paper", got, Sum)
	if got[0].Score != 1.74 || got[1].Score != 1.73 {
		t.Fatalf("top scores = %v, want [1.74 1.73 1.62]", scoresOf(got))
	}
	if got[0].Left.RowKey != "r1_7" || got[0].Right.RowKey != "r2_11" {
		t.Fatalf("top pair = %s+%s", got[0].Left.RowKey, got[0].Right.RowKey)
	}
}

func TestHRJNMatchesOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		left := synthTuples("l", 150, 25, "uniform", seed)
		right := synthTuples("r", 150, 25, "uniform", seed+1000)
		for _, k := range []int{1, 5, 30} {
			for _, f := range []ScoreFunc{Sum, Product} {
				got, err := RunHRJN(k, f,
					&SliceSource{Tuples: descending(left)},
					&SliceSource{Tuples: descending(right)})
				if err != nil {
					t.Fatal(err)
				}
				want := oracleTopK(left, right, f, k)
				assertScoresEqual(t, "hrjn-random", scoresOf(got), scoresOf(want))
				verifyResultsAreRealJoins(t, "hrjn-random", got, f)
			}
		}
	}
}

func TestHRJNEarlyTermination(t *testing.T) {
	// With a huge score gap after the top tuples, HRJN must stop long
	// before exhausting the inputs.
	var left, right []Tuple
	left = append(left, Tuple{RowKey: "L0", JoinValue: "hot", Score: 1.0})
	right = append(right, Tuple{RowKey: "R0", JoinValue: "hot", Score: 1.0})
	for i := 0; i < 1000; i++ {
		left = append(left, Tuple{RowKey: tkey("L", i), JoinValue: "cold", Score: 0.01})
		right = append(right, Tuple{RowKey: tkey("R", i), JoinValue: "cold", Score: 0.01})
	}
	h := NewHRJN(1, Sum)
	a := &SliceSource{Tuples: descending(left)}
	b := &SliceSource{Tuples: descending(right)}
	pulls := 0
	for !h.Done() {
		var src *SliceSource
		if pulls%2 == 0 {
			src = a
		} else {
			src = b
		}
		tp, _ := src.Next()
		if tp == nil {
			break
		}
		if src == a {
			h.PushA(*tp)
		} else {
			h.PushB(*tp)
		}
		pulls++
	}
	if pulls > 10 {
		t.Errorf("HRJN pulled %d tuples; expected early termination after a handful", pulls)
	}
	rs := h.Results()
	if len(rs) != 1 || rs[0].Score != 2.0 {
		t.Fatalf("results = %v", rs)
	}
}

func tkey(p string, i int) string {
	return p + string(rune('a'+i/26/26%26)) + string(rune('a'+i/26%26)) + string(rune('a'+i%26))
}

func TestHRJNEmptyInputs(t *testing.T) {
	got, err := RunHRJN(5, Sum, &SliceSource{}, &SliceSource{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty inputs produced %v", got)
	}
	// One-sided emptiness.
	got, err = RunHRJN(5, Sum,
		&SliceSource{Tuples: []Tuple{{RowKey: "a", JoinValue: "x", Score: 1}}},
		&SliceSource{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("one-sided input produced %v", got)
	}
}

func TestHRJNFewerThanKResults(t *testing.T) {
	left := []Tuple{{RowKey: "a", JoinValue: "x", Score: 0.9}}
	right := []Tuple{{RowKey: "b", JoinValue: "x", Score: 0.8}}
	got, err := RunHRJN(10, Sum, &SliceSource{Tuples: left}, &SliceSource{Tuples: right})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d results, want 1", len(got))
	}
}

func TestHRJNThresholdMath(t *testing.T) {
	h := NewHRJN(1, Sum)
	if th := h.Threshold(); th != h.Threshold() || !(th > 1e308) {
		t.Fatalf("initial threshold = %g, want +Inf", th)
	}
	near := func(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }
	h.PushA(Tuple{RowKey: "a1", JoinValue: "x", Score: 0.9})
	h.PushB(Tuple{RowKey: "b1", JoinValue: "y", Score: 0.8})
	// threshold = max(f(minA, maxB), f(maxA, minB)) = max(1.7, 1.7).
	if th := h.Threshold(); !near(th, 1.7) {
		t.Fatalf("threshold = %g, want 1.7", th)
	}
	h.PushA(Tuple{RowKey: "a2", JoinValue: "x", Score: 0.5})
	// max(f(0.5, 0.8), f(0.9, 0.8)) = max(1.3, 1.7) = 1.7.
	if th := h.Threshold(); !near(th, 1.7) {
		t.Fatalf("threshold = %g, want 1.7", th)
	}
	h.PushB(Tuple{RowKey: "b2", JoinValue: "y", Score: 0.2})
	// max(f(0.5, 0.8), f(0.9, 0.2)) = max(1.3, 1.1) = 1.3.
	if th := h.Threshold(); !near(th, 1.3) {
		t.Fatalf("threshold = %g, want 1.3", th)
	}
	if h.TuplesPulled() != 4 {
		t.Fatalf("pulled = %d", h.TuplesPulled())
	}
}

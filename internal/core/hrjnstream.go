package core

import (
	"container/heap"
	"math"
)

// This file implements the incremental (ranked-enumeration) form of the
// HRJN operator: instead of maintaining a bounded top-k list, it buffers
// every formed join result in a max-heap and releases one as soon as its
// score reaches the HRJN threshold — the best score any future result
// could attain. The k-bounded operator in hrjn.go stops when the k'th
// best buffered score beats the threshold; this one emits under exactly
// the same bound, one result at a time, so draining it k results deep
// consumes the same input prefix as the bounded run. Tziavelis et al.
// ("Ranked Enumeration for Database Queries") call this any-k
// enumeration; it is what makes pagination pay marginal rather than
// from-scratch cost.

// resultHeap is a max-heap of join results under the deterministic
// descending order of JoinResult.less.
type resultHeap []JoinResult

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[i].less(&h[j]) }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(JoinResult)) }
func (h *resultHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}

// HRJNStream is the incremental HRJN operator state. Feed it tuples in
// descending score order per side (PushA/PushB), mark sides exhausted,
// and pop results with PopReady as they become provably next in the
// global score order.
type HRJNStream struct {
	score ScoreFunc

	seenA map[string][]Tuple // join value -> tuples pulled from A
	seenB map[string][]Tuple
	buf   resultHeap // formed, not yet released results

	maxA, minA float64
	maxB, minB float64
	gotA, gotB bool
	doneA      bool
	doneB      bool

	pulled int
}

// NewHRJNStream creates an incremental operator for aggregate f.
func NewHRJNStream(f ScoreFunc) *HRJNStream {
	return &HRJNStream{
		score: f,
		seenA: map[string][]Tuple{},
		seenB: map[string][]Tuple{},
		minA:  math.Inf(1), maxA: math.Inf(-1),
		minB: math.Inf(1), maxB: math.Inf(-1),
	}
}

// PushA feeds one tuple pulled from stream A (descending order is the
// caller's contract), joining it against every B tuple seen.
func (h *HRJNStream) PushA(t Tuple) {
	h.pulled++
	h.gotA = true
	if t.Score > h.maxA {
		h.maxA = t.Score
	}
	if t.Score < h.minA {
		h.minA = t.Score
	}
	h.seenA[t.JoinValue] = append(h.seenA[t.JoinValue], t)
	for _, other := range h.seenB[t.JoinValue] {
		heap.Push(&h.buf, JoinResult{Left: t, Right: other, Score: h.score.Fn(t.Score, other.Score)})
	}
}

// PushB feeds one tuple pulled from stream B.
func (h *HRJNStream) PushB(t Tuple) {
	h.pulled++
	h.gotB = true
	if t.Score > h.maxB {
		h.maxB = t.Score
	}
	if t.Score < h.minB {
		h.minB = t.Score
	}
	h.seenB[t.JoinValue] = append(h.seenB[t.JoinValue], t)
	for _, other := range h.seenA[t.JoinValue] {
		heap.Push(&h.buf, JoinResult{Left: other, Right: t, Score: h.score.Fn(other.Score, t.Score)})
	}
}

// ExhaustA marks stream A as drained.
func (h *HRJNStream) ExhaustA() { h.doneA = true }

// ExhaustB marks stream B as drained.
func (h *HRJNStream) ExhaustB() { h.doneB = true }

// ExhaustedA reports whether side A was marked drained.
func (h *HRJNStream) ExhaustedA() bool { return h.doneA }

// ExhaustedB reports whether side B was marked drained.
func (h *HRJNStream) ExhaustedB() bool { return h.doneB }

// Exhausted reports whether both inputs are drained.
func (h *HRJNStream) Exhausted() bool { return h.doneA && h.doneB }

// Threshold returns the best join score any future result could have
// (identical to the bounded operator's bound).
func (h *HRJNStream) Threshold() float64 {
	if !h.gotA || !h.gotB {
		if h.doneA || h.doneB {
			return math.Inf(-1) // one stream empty: no joins can exist
		}
		return math.Inf(1)
	}
	tA := h.score.Fn(h.minA, h.maxB)
	tB := h.score.Fn(h.maxA, h.minB)
	if h.doneA && h.doneB {
		return math.Inf(-1)
	}
	if h.doneA {
		return tB
	}
	if h.doneB {
		return tA
	}
	if tA > tB {
		return tA
	}
	return tB
}

// PopReady releases the best buffered result if it is provably next in
// the global order — its score is at least the threshold (matching the
// bounded operator's >= stopping test), or both inputs are exhausted.
// It returns nil when more input is needed (or nothing is left).
func (h *HRJNStream) PopReady() *JoinResult {
	if h.buf.Len() == 0 {
		return nil
	}
	if !h.Exhausted() && h.buf[0].Score < h.Threshold() {
		return nil
	}
	r := heap.Pop(&h.buf).(JoinResult)
	return &r
}

// Buffered returns how many formed results await release.
func (h *HRJNStream) Buffered() int { return h.buf.Len() }

// TuplesPulled returns how many tuples were fed in (the paper's
// "tuples transferred" cost driver for ISL).
func (h *HRJNStream) TuplesPulled() int { return h.pulled }

// hrjnSourceCursor drives an HRJNStream over two TupleSources with
// single-tuple alternating pulls — the streaming form of RunHRJN.
type hrjnSourceCursor struct {
	h      *HRJNStream
	a, b   TupleSource
	pullA  bool
	closed bool
}

// OpenHRJNStream returns a cursor enumerating the rank join of two
// score-descending sources in score order, pulling only as much input
// as each emitted result requires.
func OpenHRJNStream(f ScoreFunc, a, b TupleSource) Cursor {
	return &hrjnSourceCursor{h: NewHRJNStream(f), a: a, b: b, pullA: true}
}

// Next implements Cursor.
func (cu *hrjnSourceCursor) Next() (*JoinResult, error) {
	if cu.closed {
		return nil, ErrCursorClosed
	}
	for {
		if r := cu.h.PopReady(); r != nil {
			return r, nil
		}
		if cu.h.Exhausted() {
			return nil, nil
		}
		var src TupleSource
		fromA := (cu.pullA && !cu.h.doneA) || cu.h.doneB
		if fromA {
			src = cu.a
		} else {
			src = cu.b
		}
		t, err := src.Next()
		if err != nil {
			return nil, err
		}
		switch {
		case t == nil && fromA:
			cu.h.ExhaustA()
		case t == nil:
			cu.h.ExhaustB()
		case fromA:
			cu.h.PushA(*t)
		default:
			cu.h.PushB(*t)
		}
		cu.pullA = !cu.pullA
	}
}

// Close implements Cursor.
func (cu *hrjnSourceCursor) Close() error {
	cu.closed = true
	return nil
}

package core

import (
	"fmt"

	"repro/internal/kvstore"
	"repro/internal/mapreduce"
)

// This file implements IJLMR — Inverse Join List MapReduce rank join
// (Section 4.1). The index is an inverted list keyed by join value: one
// index row per join value, holding {tuple row key -> score} entries in a
// column family per indexed relation (Fig. 2). Because both relations'
// entries for the same join value live in the same row, a single map-only
// pass over the index computes every join pair, and each mapper only
// ships its local top-k list to the lone reducer.

// IJLMRIndex locates a built IJLMR index.
type IJLMRIndex struct {
	// Table is the shared index table ("one big table", Section 4.1.1).
	Table string
	// LeftFamily / RightFamily are the per-relation column families.
	LeftFamily  string
	RightFamily string
}

// IJLMRTableName derives the index table name for a query.
func IJLMRTableName(q *Query) string { return "ijlmr_" + q.ID() }

// BuildIJLMRRelation indexes one relation into family fam of the index
// table with the map-only job of Algorithm 1. The index table must
// already exist with that family.
func BuildIJLMRRelation(c *kvstore.Cluster, rel Relation, indexTable, fam string) (*mapreduce.Result, error) {
	return mapreduce.Run(&mapreduce.Job{
		Name:    "ijlmr-index-" + rel.Name,
		Cluster: c,
		Input:   kvstore.Scan{Table: rel.Table, Families: []string{rel.Family}},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			t, ok := TupleFromRow(&rel, row)
			if !ok {
				ctx.Counter("skipped", 1)
				return nil
			}
			// emit(joinValue: rowKey, score) — Algorithm 1 line 5.
			ctx.WriteCell(indexTable, kvstore.Cell{
				Row:       t.JoinValue,
				Family:    fam,
				Qualifier: t.RowKey,
				Value:     kvstore.FloatValue(t.Score),
			})
			ctx.Counter("indexed", 1)
			return nil
		}),
	})
}

// BuildIJLMR creates the index table (pre-split across nodes) and indexes
// both relations. It returns the index handle and the two build results.
func BuildIJLMR(c *kvstore.Cluster, q Query) (*IJLMRIndex, []*mapreduce.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	idx := &IJLMRIndex{
		Table:       IJLMRTableName(&q),
		LeftFamily:  q.Left.Name,
		RightFamily: q.Right.Name,
	}
	if _, err := c.CreateTable(idx.Table, []string{idx.LeftFamily, idx.RightFamily}, hashSplits(c.Nodes())); err != nil {
		return nil, nil, err
	}
	left, err := BuildIJLMRRelation(c, q.Left, idx.Table, idx.LeftFamily)
	if err != nil {
		return nil, nil, err
	}
	right, err := BuildIJLMRRelation(c, q.Right, idx.Table, idx.RightFamily)
	if err != nil {
		return nil, nil, err
	}
	return idx, []*mapreduce.Result{left, right}, nil
}

// hashSplits pre-splits a table whose row keys are arbitrary strings into
// roughly node-count regions using single-character boundaries.
func hashSplits(nodes int) []string {
	if nodes < 2 {
		return nil
	}
	// Printable key space ~ '0'..'z'; carve it evenly.
	const lo, hi = byte('0'), byte('z')
	var out []string
	for i := 1; i < nodes; i++ {
		out = append(out, string([]byte{lo + byte(int(hi-lo)*i/nodes)}))
	}
	return out
}

// ijlmrMapper is the stateful Algorithm 2 mapper: it scans index rows,
// joins the two families' entries per row, and keeps only its local
// top-k, emitted when input is exhausted.
type ijlmrMapper struct {
	idx   *IJLMRIndex
	score ScoreFunc
	top   *TopKList
}

// Map implements mapreduce.Mapper (Algorithm 2 lines 4-20).
func (m *ijlmrMapper) Map(row *kvstore.Row, ctx mapreduce.Context) error {
	joinValue := row.Key
	var left, right []Tuple
	for i := range row.Cells {
		c := &row.Cells[i]
		score, ok := kvstore.ParseFloatValue(c.Value)
		if !ok {
			return fmt.Errorf("ijlmr: bad score cell %s", c.String())
		}
		t := Tuple{RowKey: c.Qualifier, JoinValue: joinValue, Score: score}
		switch c.Family {
		case m.idx.LeftFamily:
			left = append(left, t)
		case m.idx.RightFamily:
			right = append(right, t)
		}
	}
	// Cartesian product of the row's two sides (the join for this
	// join value), trimmed to k as we go.
	for _, lt := range left {
		for _, rt := range right {
			m.top.Add(JoinResult{Left: lt, Right: rt, Score: m.score.Fn(lt.Score, rt.Score)})
		}
	}
	ctx.Counter("rows_joined", 1)
	return nil
}

// Finish implements mapreduce.Finisher (Algorithm 2 line 21).
func (m *ijlmrMapper) Finish(ctx mapreduce.Context) error {
	for _, r := range m.top.Results() {
		ctx.Emit("topk", EncodeJoinResult(r))
	}
	return nil
}

// QueryIJLMR runs the single-job rank join of Algorithm 2.
func QueryIJLMR(c *kvstore.Cluster, q Query, idx *IJLMRIndex) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	before := c.Metrics().Snapshot()
	res, err := mapreduce.Run(&mapreduce.Job{
		Name:    "ijlmr-query-" + q.ID(),
		Cluster: c,
		Input:   kvstore.Scan{Table: idx.Table},
		MapperFactory: func() mapreduce.Mapper {
			return &ijlmrMapper{idx: idx, score: q.Score, top: NewTopKList(q.K)}
		},
		// Algorithm 2 lines 22-28: a single reducer merges the local
		// top-k lists.
		Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, ctx mapreduce.Context) error {
			top, err := mergeTopK(q.K, values)
			if err != nil {
				return err
			}
			for _, r := range top.Results() {
				ctx.Emit("final", EncodeJoinResult(r))
			}
			return nil
		}),
		NumReducers: 1,
	})
	if err != nil {
		return nil, err
	}
	top := NewTopKList(q.K)
	for _, kv := range res.Output {
		r, err := DecodeJoinResult(kv.Value)
		if err != nil {
			return nil, err
		}
		top.Add(r)
	}
	return &Result{Results: top.Results(), Cost: c.Metrics().Snapshot().Sub(before)}, nil
}

package core

import "sync"

// IndexStore holds every index built over one cluster, keyed the way
// each index family needs: per-query for IJLMR and ISL (their tables
// bind two relations and a score function), per-relation for BFHM and
// DRJN (their tables describe one relation and are shared by every
// query touching it).
//
// The store also owns the build serialization that makes EnsureIndex
// single-flight: each index family locks a build scope before its
// check-then-build sequence, so two concurrent EnsureIndex calls can
// never both observe "no index" and build twice — the race that used
// to let a pair of BFHM builds auto-size mismatched filter widths.
type IndexStore struct {
	mu    sync.Mutex
	ijlmr map[string]*IJLMRIndex // query ID -> index; guarded by: mu
	isl   map[string]*ISLIndex   // query ID -> index; guarded by: mu
	bfhm  map[string]*BFHMIndex  // relation name -> index; guarded by: mu
	drjn  map[string]*DRJNIndex  // relation name -> index; guarded by: mu
	isln  map[string]*ISLNIndex  // tree leaf ID -> index; guarded by: mu

	buildMu sync.Mutex
	builds  map[string]*sync.Mutex // build scope -> serialization lock; guarded by: buildMu
}

// NewIndexStore returns an empty store.
func NewIndexStore() *IndexStore {
	return &IndexStore{
		ijlmr:  map[string]*IJLMRIndex{},
		isl:    map[string]*ISLIndex{},
		bfhm:   map[string]*BFHMIndex{},
		drjn:   map[string]*DRJNIndex{},
		isln:   map[string]*ISLNIndex{},
		builds: map[string]*sync.Mutex{},
	}
}

// BuildScope returns the mutex serializing index builds for one scope
// (e.g. "isl/<queryID>", or the family-wide "bfhm" scope whose builds
// share a filter width). Callers hold it across their check-then-build
// sequence.
func (s *IndexStore) BuildScope(scope string) *sync.Mutex {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	mu, ok := s.builds[scope]
	if !ok {
		mu = &sync.Mutex{}
		s.builds[scope] = mu
	}
	return mu
}

// IJLMR returns the IJLMR index for a query ID.
func (s *IndexStore) IJLMR(queryID string) (*IJLMRIndex, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, ok := s.ijlmr[queryID]
	return idx, ok
}

// PutIJLMR stores an IJLMR index.
func (s *IndexStore) PutIJLMR(queryID string, idx *IJLMRIndex) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ijlmr[queryID] = idx
}

// ISL returns the ISL index for a query ID.
func (s *IndexStore) ISL(queryID string) (*ISLIndex, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, ok := s.isl[queryID]
	return idx, ok
}

// PutISL stores an ISL index.
func (s *IndexStore) PutISL(queryID string, idx *ISLIndex) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.isl[queryID] = idx
}

// BFHM returns the BFHM index for a relation.
func (s *IndexStore) BFHM(relation string) (*BFHMIndex, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, ok := s.bfhm[relation]
	return idx, ok
}

// PutBFHM stores a BFHM index.
func (s *IndexStore) PutBFHM(relation string, idx *BFHMIndex) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bfhm[relation] = idx
}

// DRJN returns the DRJN index for a relation.
func (s *IndexStore) DRJN(relation string) (*DRJNIndex, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, ok := s.drjn[relation]
	return idx, ok
}

// PutDRJN stores a DRJN index.
func (s *IndexStore) PutDRJN(relation string, idx *DRJNIndex) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drjn[relation] = idx
}

// ISLN returns the n-way inverse-score-list index for a tree leaf ID
// (JoinTree.LeafID — trees over the same leaves share one index).
func (s *IndexStore) ISLN(leafID string) (*ISLNIndex, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, ok := s.isln[leafID]
	return idx, ok
}

// PutISLN stores an n-way inverse-score-list index.
func (s *IndexStore) PutISLN(leafID string, idx *ISLNIndex) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.isln[leafID] = idx
}

// EachIJLMR calls f for every stored IJLMR index (snapshot; f runs
// without the store lock held).
func (s *IndexStore) EachIJLMR(f func(queryID string, idx *IJLMRIndex)) {
	s.mu.Lock()
	cp := make(map[string]*IJLMRIndex, len(s.ijlmr))
	for k, v := range s.ijlmr {
		cp[k] = v
	}
	s.mu.Unlock()
	for k, v := range cp {
		f(k, v)
	}
}

// EachISL calls f for every stored ISL index (snapshot).
func (s *IndexStore) EachISL(f func(queryID string, idx *ISLIndex)) {
	s.mu.Lock()
	cp := make(map[string]*ISLIndex, len(s.isl))
	for k, v := range s.isl {
		cp[k] = v
	}
	s.mu.Unlock()
	for k, v := range cp {
		f(k, v)
	}
}

// EachBFHM calls f for every stored BFHM index (snapshot).
func (s *IndexStore) EachBFHM(f func(relation string, idx *BFHMIndex)) {
	s.mu.Lock()
	cp := make(map[string]*BFHMIndex, len(s.bfhm))
	for k, v := range s.bfhm {
		cp[k] = v
	}
	s.mu.Unlock()
	for k, v := range cp {
		f(k, v)
	}
}

// EachDRJN calls f for every stored DRJN index (snapshot).
func (s *IndexStore) EachDRJN(f func(relation string, idx *DRJNIndex)) {
	s.mu.Lock()
	cp := make(map[string]*DRJNIndex, len(s.drjn))
	for k, v := range s.drjn {
		cp[k] = v
	}
	s.mu.Unlock()
	for k, v := range cp {
		f(k, v)
	}
}

// EachISLN calls f for every stored n-way index (snapshot).
func (s *IndexStore) EachISLN(f func(leafID string, idx *ISLNIndex)) {
	s.mu.Lock()
	cp := make(map[string]*ISLNIndex, len(s.isln))
	for k, v := range s.isln {
		cp[k] = v
	}
	s.mu.Unlock()
	for k, v := range cp {
		f(k, v)
	}
}

package core

import (
	"fmt"

	"repro/internal/kvstore"
	"repro/internal/mapreduce"
)

// This file implements ISL — Inverse Score List rank join (Section 4.2).
// The index inverts each relation on its (negated) score: one index row
// per distinct score value, holding {tuple row key -> join value} entries
// (Fig. 3). A coordinator drives the HRJN operator over the two lists,
// scanning them alternately in batches (HBase scanner caching), and stops
// at the HRJN threshold.

// ISLIndex locates a built ISL index.
type ISLIndex struct {
	// Table is the shared index table.
	Table string
	// LeftFamily / RightFamily are the per-relation column families.
	LeftFamily  string
	RightFamily string
}

// ISLTableName derives the index table name for a query.
func ISLTableName(q *Query) string { return "isl_" + q.ID() }

// BuildISLRelation indexes one relation (Algorithm 3): a map-only job
// writing {negated-score: rowKey, joinValue} cells.
func BuildISLRelation(c *kvstore.Cluster, rel Relation, indexTable, fam string) (*mapreduce.Result, error) {
	return mapreduce.Run(&mapreduce.Job{
		Name:    "isl-index-" + rel.Name,
		Cluster: c,
		Input:   kvstore.Scan{Table: rel.Table, Families: []string{rel.Family}},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			t, ok := TupleFromRow(&rel, row)
			if !ok {
				ctx.Counter("skipped", 1)
				return nil
			}
			// emit(score: rowKey, joinValue) — Algorithm 3 line 5,
			// with the negated-score key encoding of Section 4.2.2.
			ctx.WriteCell(indexTable, kvstore.Cell{
				Row:       kvstore.EncodeScoreDesc(t.Score),
				Family:    fam,
				Qualifier: t.RowKey,
				Value:     []byte(t.JoinValue),
			})
			ctx.Counter("indexed", 1)
			return nil
		}),
	})
}

// BuildISL creates the index table and indexes both relations.
func BuildISL(c *kvstore.Cluster, q Query) (*ISLIndex, []*mapreduce.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	idx := &ISLIndex{
		Table:       ISLTableName(&q),
		LeftFamily:  q.Left.Name,
		RightFamily: q.Right.Name,
	}
	// Score keys are uniform hex; split the key space evenly per node.
	if _, err := c.CreateTable(idx.Table, []string{idx.LeftFamily, idx.RightFamily}, scoreKeySplits(c.Nodes())); err != nil {
		return nil, nil, err
	}
	left, err := BuildISLRelation(c, q.Left, idx.Table, idx.LeftFamily)
	if err != nil {
		return nil, nil, err
	}
	right, err := BuildISLRelation(c, q.Right, idx.Table, idx.RightFamily)
	if err != nil {
		return nil, nil, err
	}
	return idx, []*mapreduce.Result{left, right}, nil
}

// scoreKeySplits pre-splits the negated-score hex key space. Scores in
// [0,1] negate into a narrow band of the float key space; splitting on
// the first hex digits of that band spreads regions across nodes.
func scoreKeySplits(nodes int) []string {
	if nodes < 2 {
		return nil
	}
	// Keys for scores in (0,1] range from EncodeFloat(-1) to
	// EncodeFloat(0); sample boundary scores to build the splits.
	var out []string
	for i := 1; i < nodes; i++ {
		s := 1 - float64(i)/float64(nodes) // descending score boundaries
		out = append(out, kvstore.EncodeScoreDesc(s))
	}
	return out
}

// ISLOptions tunes the coordinator's batched scans.
type ISLOptions struct {
	// BatchLeft / BatchRight are the scanner caching sizes C_A and C_B
	// of Algorithm 4 (index rows per RPC). The paper configures them as
	// a fraction of the score domain (1%, 0.1%, ...).
	BatchLeft  int
	BatchRight int
	// Parallelism >= 2 refills the left and right streams concurrently:
	// each stream prefetches its next batch while the coordinator
	// consumes, so the two sides' RPC round trips overlap instead of
	// strictly alternating.
	Parallelism int
}

// islStream adapts a batched scan over one index family to the HRJN
// operator's pull interface, expanding index rows (one per distinct
// score) into tuples.
type islStream struct {
	scanner *kvstore.Scanner
	buf     []Tuple
	pos     int
	done    bool
}

func newISLStream(c *kvstore.Cluster, table, family string, batch int, prefetch bool) (*islStream, error) {
	if batch < 1 {
		batch = 1
	}
	sc, err := c.OpenScanner(kvstore.Scan{
		Table:    table,
		Families: []string{family},
		Caching:  batch,
		Prefetch: prefetch,
	})
	if err != nil {
		return nil, err
	}
	return &islStream{scanner: sc}, nil
}

// Next implements TupleSource.
func (s *islStream) Next() (*Tuple, error) {
	for s.pos >= len(s.buf) {
		if s.done {
			return nil, nil
		}
		row, err := s.scanner.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			s.done = true
			return nil, nil
		}
		score, err := kvstore.DecodeScoreDesc(row.Key)
		if err != nil {
			return nil, fmt.Errorf("isl: bad score key %q: %w", row.Key, err)
		}
		s.buf = s.buf[:0]
		s.pos = 0
		for i := range row.Cells {
			c := &row.Cells[i]
			s.buf = append(s.buf, Tuple{
				RowKey:    c.Qualifier,
				JoinValue: string(c.Value),
				Score:     score,
			})
		}
	}
	t := &s.buf[s.pos]
	s.pos++
	return t, nil
}

// QueryISL runs the coordinator rank join of Algorithm 4: batched,
// alternating scans of the two inverse score lists feeding HRJN until the
// threshold test passes.
func QueryISL(c *kvstore.Cluster, q Query, idx *ISLIndex, opts ISLOptions) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if opts.BatchLeft < 1 {
		opts.BatchLeft = 100
	}
	if opts.BatchRight < 1 {
		opts.BatchRight = opts.BatchLeft
	}
	before := c.Metrics().Snapshot()

	// With Parallelism >= 2 both streams read ahead asynchronously; the
	// shared collector's clock-progress accounting overlaps the two
	// sides' RPCs (Section 4.2.3's batched scans, now pipelined).
	prefetch := opts.Parallelism >= 2
	left, err := newISLStream(c, idx.Table, idx.LeftFamily, opts.BatchLeft, prefetch)
	if err != nil {
		return nil, err
	}
	right, err := newISLStream(c, idx.Table, idx.RightFamily, opts.BatchRight, prefetch)
	if err != nil {
		return nil, err
	}

	h := NewHRJN(q.K, q.Score)
	cur := 0 // 0 = left, 1 = right (Algorithm 4's CurrentRelation)
	for !h.Done() {
		var batch int
		var src *islStream
		if cur == 0 {
			src, batch = left, opts.BatchLeft
		} else {
			src, batch = right, opts.BatchRight
		}
		if (cur == 0 && left.done && left.pos >= len(left.buf)) ||
			(cur == 1 && right.done && right.pos >= len(right.buf)) {
			// This side is exhausted; flip to the other, and if both
			// are drained HRJN.Done will fire via Exhaust marks.
			if cur == 0 {
				h.ExhaustA()
			} else {
				h.ExhaustB()
			}
			cur = 1 - cur
			if h.doneA && h.doneB {
				break
			}
			continue
		}
		// Consume one batch worth of tuples from the current side,
		// testing termination after every tuple (Algorithm 4 line 20).
		for i := 0; i < batch && !h.Done(); i++ {
			t, err := src.Next()
			if err != nil {
				return nil, err
			}
			if t == nil {
				if cur == 0 {
					h.ExhaustA()
				} else {
					h.ExhaustB()
				}
				break
			}
			if cur == 0 {
				h.PushA(*t)
			} else {
				h.PushB(*t)
			}
		}
		cur = 1 - cur
	}
	return &Result{Results: h.Results(), Cost: c.Metrics().Snapshot().Sub(before)}, nil
}

package core

import (
	"fmt"

	"repro/internal/kvstore"
	"repro/internal/mapreduce"
)

// This file implements ISL — Inverse Score List rank join (Section 4.2).
// The index inverts each relation on its (negated) score: one index row
// per distinct score value, holding {tuple row key -> join value} entries
// (Fig. 3). A coordinator drives the HRJN operator over the two lists,
// scanning them alternately in batches (HBase scanner caching), and stops
// at the HRJN threshold.

// ISLIndex locates a built ISL index.
type ISLIndex struct {
	// Table is the shared index table.
	Table string
	// LeftFamily / RightFamily are the per-relation column families.
	LeftFamily  string
	RightFamily string
}

// ISLTableName derives the index table name for a query.
func ISLTableName(q *Query) string { return "isl_" + q.ID() }

// BuildISLRelation indexes one relation (Algorithm 3): a map-only job
// writing {negated-score: rowKey, joinValue} cells.
func BuildISLRelation(c *kvstore.Cluster, rel Relation, indexTable, fam string) (*mapreduce.Result, error) {
	return mapreduce.Run(&mapreduce.Job{
		Name:    "isl-index-" + rel.Name,
		Cluster: c,
		Input:   kvstore.Scan{Table: rel.Table, Families: []string{rel.Family}},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			t, ok := TupleFromRow(&rel, row)
			if !ok {
				ctx.Counter("skipped", 1)
				return nil
			}
			// emit(score: rowKey, joinValue) — Algorithm 3 line 5,
			// with the negated-score key encoding of Section 4.2.2.
			ctx.WriteCell(indexTable, kvstore.Cell{
				Row:       kvstore.EncodeScoreDesc(t.Score),
				Family:    fam,
				Qualifier: t.RowKey,
				Value:     []byte(t.JoinValue),
			})
			ctx.Counter("indexed", 1)
			return nil
		}),
	})
}

// BuildISL creates the index table and indexes both relations.
func BuildISL(c *kvstore.Cluster, q Query) (*ISLIndex, []*mapreduce.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	idx := &ISLIndex{
		Table:       ISLTableName(&q),
		LeftFamily:  q.Left.Name,
		RightFamily: q.Right.Name,
	}
	// Score keys are uniform hex; split the key space evenly per node.
	if _, err := c.CreateTable(idx.Table, []string{idx.LeftFamily, idx.RightFamily}, scoreKeySplits(c.Nodes())); err != nil {
		return nil, nil, err
	}
	left, err := BuildISLRelation(c, q.Left, idx.Table, idx.LeftFamily)
	if err != nil {
		return nil, nil, err
	}
	right, err := BuildISLRelation(c, q.Right, idx.Table, idx.RightFamily)
	if err != nil {
		return nil, nil, err
	}
	return idx, []*mapreduce.Result{left, right}, nil
}

// scoreKeySplits pre-splits the negated-score hex key space. Scores in
// [0,1] negate into a narrow band of the float key space; splitting on
// the first hex digits of that band spreads regions across nodes.
func scoreKeySplits(nodes int) []string {
	if nodes < 2 {
		return nil
	}
	// Keys for scores in (0,1] range from EncodeFloat(-1) to
	// EncodeFloat(0); sample boundary scores to build the splits.
	var out []string
	for i := 1; i < nodes; i++ {
		s := 1 - float64(i)/float64(nodes) // descending score boundaries
		out = append(out, kvstore.EncodeScoreDesc(s))
	}
	return out
}

// ISLOptions tunes the coordinator's batched scans.
type ISLOptions struct {
	// BatchLeft / BatchRight are the scanner caching sizes C_A and C_B
	// of Algorithm 4 (index rows per RPC). The paper configures them as
	// a fraction of the score domain (1%, 0.1%, ...).
	BatchLeft  int
	BatchRight int
	// Parallelism >= 2 refills the left and right streams concurrently:
	// each stream prefetches its next batch while the coordinator
	// consumes, so the two sides' RPC round trips overlap instead of
	// strictly alternating.
	Parallelism int
}

// islStream adapts a batched scan over one index family to the HRJN
// operator's pull interface, expanding index rows (one per distinct
// score) into tuples.
type islStream struct {
	scanner *kvstore.Scanner
	buf     []Tuple
	pos     int
	done    bool
}

func newISLStream(c *kvstore.Cluster, table, family string, batch int, prefetch bool) (*islStream, error) {
	if batch < 1 {
		batch = 1
	}
	sc, err := c.OpenScanner(kvstore.Scan{
		Table:    table,
		Families: []string{family},
		Caching:  batch,
		Prefetch: prefetch,
	})
	if err != nil {
		return nil, err
	}
	return &islStream{scanner: sc}, nil
}

// Next implements TupleSource.
func (s *islStream) Next() (*Tuple, error) {
	for s.pos >= len(s.buf) {
		if s.done {
			return nil, nil
		}
		row, err := s.scanner.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			s.done = true
			return nil, nil
		}
		score, err := kvstore.DecodeScoreDesc(row.Key)
		if err != nil {
			return nil, fmt.Errorf("isl: bad score key %q: %w", row.Key, err)
		}
		s.buf = s.buf[:0]
		s.pos = 0
		for i := range row.Cells {
			c := &row.Cells[i]
			s.buf = append(s.buf, Tuple{
				RowKey:    c.Qualifier,
				JoinValue: string(c.Value),
				Score:     score,
			})
		}
	}
	t := &s.buf[s.pos]
	s.pos++
	return t, nil
}

// islCursor is the streaming form of Algorithm 4's coordinator: the
// same batched, alternating scans of the two inverse score lists, but
// feeding the incremental HRJN operator and pausing the moment the
// next-ranked result is provably complete. Pulling k results consumes
// exactly the input prefix the bounded run consumes; pulling k more
// resumes mid-batch instead of rescanning from the top of the lists.
type islCursor struct {
	left, right *islStream
	batchLeft   int
	batchRight  int
	h           *HRJNStream
	cur         int // 0 = left, 1 = right (Algorithm 4's CurrentRelation)
	i           int // progress within the current side's batch
	closed      bool
}

// OpenISL starts a streaming ISL execution over a built index. The
// query's k is irrelevant to the cursor (enumeration is unbounded); it
// only shapes the drain in QueryISL.
func OpenISL(c *kvstore.Cluster, q Query, idx *ISLIndex, opts ISLOptions) (Cursor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if opts.BatchLeft < 1 {
		opts.BatchLeft = 100
	}
	if opts.BatchRight < 1 {
		opts.BatchRight = opts.BatchLeft
	}
	// With Parallelism >= 2 both streams read ahead asynchronously; the
	// shared collector's clock-progress accounting overlaps the two
	// sides' RPCs (Section 4.2.3's batched scans, now pipelined).
	prefetch := opts.Parallelism >= 2
	left, err := newISLStream(c, idx.Table, idx.LeftFamily, opts.BatchLeft, prefetch)
	if err != nil {
		return nil, err
	}
	right, err := newISLStream(c, idx.Table, idx.RightFamily, opts.BatchRight, prefetch)
	if err != nil {
		return nil, err
	}
	return &islCursor{
		left: left, right: right,
		batchLeft: opts.BatchLeft, batchRight: opts.BatchRight,
		h: NewHRJNStream(q.Score),
	}, nil
}

// Next implements Cursor.
func (cu *islCursor) Next() (*JoinResult, error) {
	if cu.closed {
		return nil, ErrCursorClosed
	}
	for {
		if r := cu.h.PopReady(); r != nil {
			return r, nil
		}
		if cu.h.Exhausted() {
			return nil, nil
		}
		if err := cu.pullOne(); err != nil {
			return nil, err
		}
	}
}

// pullOne feeds exactly one tuple (or an exhaustion mark) into the
// operator, following Algorithm 4's batch alternation: consume a batch
// from the current side, flip, repeat — with exhausted sides skipped.
func (cu *islCursor) pullOne() error {
	for {
		if cu.h.Exhausted() {
			return nil
		}
		var src *islStream
		var batch int
		var done bool
		if cu.cur == 0 {
			src, batch, done = cu.left, cu.batchLeft, cu.h.ExhaustedA()
		} else {
			src, batch, done = cu.right, cu.batchRight, cu.h.ExhaustedB()
		}
		if done || (src.done && src.pos >= len(src.buf)) {
			// This side is drained; mark it and flip to the other.
			if cu.cur == 0 {
				cu.h.ExhaustA()
			} else {
				cu.h.ExhaustB()
			}
			cu.cur = 1 - cu.cur
			cu.i = 0
			continue
		}
		t, err := src.Next()
		if err != nil {
			return err
		}
		if t == nil {
			if cu.cur == 0 {
				cu.h.ExhaustA()
			} else {
				cu.h.ExhaustB()
			}
			cu.cur = 1 - cu.cur
			cu.i = 0
			continue
		}
		if cu.cur == 0 {
			cu.h.PushA(*t)
		} else {
			cu.h.PushB(*t)
		}
		cu.i++
		if cu.i >= batch {
			cu.cur = 1 - cu.cur
			cu.i = 0
		}
		return nil
	}
}

// Close implements Cursor.
func (cu *islCursor) Close() error {
	cu.closed = true
	return nil
}

// QueryISL runs the coordinator rank join of Algorithm 4 as a bounded
// drain of the streaming cursor: batched, alternating scans of the two
// inverse score lists feeding the incremental HRJN operator until k
// results have been released.
func QueryISL(c *kvstore.Cluster, q Query, idx *ISLIndex, opts ISLOptions) (*Result, error) {
	return RunCursor(c, q.K, func() (Cursor, error) { return OpenISL(c, q, idx, opts) })
}

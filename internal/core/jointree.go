package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/kvstore"
)

// This file defines the acyclic join-tree query model. A JoinTree
// generalizes the paper's two shapes — the binary Query and the star
// MultiQuery — into one representation: relations are leaves, join
// predicates are tree edges (equality or numeric band), and one
// monotonic aggregate ranks complete assignments over all leaves.
// Binary and star queries are trivial trees (see TreeFromQuery /
// TreeFromMulti), so every executor runs against trees and the legacy
// shapes survive as views.

// PredKind names a join-edge predicate family.
type PredKind string

const (
	// PredEqui joins two leaves whose join values are equal strings.
	PredEqui PredKind = "equi"
	// PredBand joins two leaves whose join values both parse as
	// numbers within Band of each other (|a-b| <= Band). Unparseable
	// values never band-match; Band 0 is exact numeric equality.
	PredBand PredKind = "band"
)

// TreeEdge is one join predicate between the leaves at indexes A and B.
type TreeEdge struct {
	A, B int
	Kind PredKind
	// Band is the half-width of a PredBand predicate; ignored for equi.
	Band float64
}

// Match evaluates the edge predicate over two join values.
func (e *TreeEdge) Match(va, vb string) bool {
	if e.Kind != PredBand {
		return va == vb
	}
	fa, errA := strconv.ParseFloat(va, 64)
	fb, errB := strconv.ParseFloat(vb, 64)
	if errA != nil || errB != nil {
		return false
	}
	d := fa - fb
	if d < 0 {
		d = -d
	}
	return d <= e.Band
}

// ShapeError reports a join-tree whose shape is malformed — cyclic,
// disconnected, self-looping, or referencing leaves that don't exist.
// Serving layers map it to a client error (HTTP 400) since retrying
// cannot help.
type ShapeError struct {
	Msg string
}

func (e *ShapeError) Error() string { return "core: bad join tree: " + e.Msg }

// NewShapeError builds a ShapeError for layers above core that
// validate tree shapes before a JoinTree exists (e.g. JSON decoding).
func NewShapeError(msg string) error { return &ShapeError{Msg: msg} }

func shapeErrf(format string, args ...any) error {
	return &ShapeError{Msg: fmt.Sprintf(format, args...)}
}

// JoinTree is a top-k rank join over an acyclic tree of relations:
// len(Relations) leaves joined pairwise by exactly len(Relations)-1
// edges forming a connected acyclic graph, ranked by the monotonic
// aggregate Score over every leaf's score, keeping K results.
type JoinTree struct {
	Relations []Relation
	Edges     []TreeEdge
	Score     NScoreFunc
	K         int

	// score2, when non-nil, is the two-way aggregate this tree was
	// lifted from; Binary() hands it back unwrapped so the binary
	// executors' hot loops skip the slice-building shim.
	score2 *ScoreFunc
}

// Validate checks the tree is well-formed, returning a *ShapeError for
// structural problems (wrong edge count, out-of-range or duplicate
// edges, disconnection) and plain errors for parameter problems.
func (t *JoinTree) Validate() error {
	if t.K < 1 {
		return fmt.Errorf("core: k = %d, want >= 1", t.K)
	}
	if t.Score.Fn == nil {
		return fmt.Errorf("core: join tree has no score function")
	}
	n := len(t.Relations)
	if n < 2 {
		return shapeErrf("%d relations, want >= 2", n)
	}
	for i := range t.Relations {
		r := &t.Relations[i]
		if r.Name == "" || r.Table == "" || r.Family == "" || r.JoinQual == "" || r.ScoreQual == "" {
			return fmt.Errorf("core: relation %q underspecified", r.Name)
		}
	}
	if len(t.Edges) != n-1 {
		return shapeErrf("%d edges for %d relations; an acyclic connected tree needs exactly %d",
			len(t.Edges), n, n-1)
	}
	seen := map[[2]int]bool{}
	uf := newUnionFind(n)
	for i := range t.Edges {
		e := &t.Edges[i]
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			return shapeErrf("edge %d joins leaves (%d, %d), want both in [0, %d)", i, e.A, e.B, n)
		}
		if e.A == e.B {
			return shapeErrf("edge %d is a self-loop on leaf %d", i, e.A)
		}
		switch e.Kind {
		case PredEqui, "":
		case PredBand:
			if e.Band < 0 || math.IsNaN(e.Band) || math.IsInf(e.Band, 0) {
				return shapeErrf("edge %d has band width %v, want a finite value >= 0", i, e.Band)
			}
		default:
			return shapeErrf("edge %d has unknown predicate kind %q (want %s or %s)", i, e.Kind, PredEqui, PredBand)
		}
		key := [2]int{e.A, e.B}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if seen[key] {
			return shapeErrf("duplicate edge between leaves %d and %d", key[0], key[1])
		}
		seen[key] = true
		uf.union(e.A, e.B)
	}
	for i := 1; i < n; i++ {
		if uf.find(i) != uf.find(0) {
			return shapeErrf("leaf %d (%s) is disconnected from leaf 0 — the edge set forms a cycle elsewhere",
				i, t.Relations[i].Name)
		}
	}
	return nil
}

// AllEqui reports whether every edge is an equality predicate. Since a
// tuple carries a single join value, a connected all-equi tree forces
// one shared value across every leaf — semantically a star — so tree
// shape only matters once a band edge appears.
func (t *JoinTree) AllEqui() bool {
	for i := range t.Edges {
		if t.Edges[i].Kind == PredBand {
			return false
		}
	}
	return true
}

// LeafID identifies the tree's leaf set and aggregate, ignoring edge
// predicates. Index content (inverse score lists per leaf) depends only
// on the leaves, so trees sharing a LeafID share physical indexes.
func (t *JoinTree) LeafID() string {
	var b strings.Builder
	for i := range t.Relations {
		b.WriteString(t.Relations[i].Name)
		b.WriteByte('_')
	}
	b.WriteString(t.Score.Name)
	return b.String()
}

// ID returns the tree's deterministic identifier. All-equi trees take
// the legacy form (it matches Query.ID() / MultiQuery.ID(), and every
// connected all-equi edge set over the same leaves is semantically
// identical); trees with band edges append a canonical sorted edge
// list, so shapes that can return different results can never share a
// planner-cache or page-token entry.
func (t *JoinTree) ID() string {
	if t.AllEqui() {
		return t.LeafID()
	}
	descs := make([]string, 0, len(t.Edges))
	for i := range t.Edges {
		e := &t.Edges[i]
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		if e.Kind == PredBand {
			descs = append(descs, fmt.Sprintf("b%d-%d~%s", a, b, strconv.FormatFloat(e.Band, 'g', -1, 64)))
		} else {
			descs = append(descs, fmt.Sprintf("e%d-%d", a, b))
		}
	}
	sort.Strings(descs)
	return t.LeafID() + "@" + strings.Join(descs, ".")
}

// TreeFromQuery lifts a two-way query into its tree form.
func TreeFromQuery(q Query) *JoinTree {
	f := q.Score
	return &JoinTree{
		Relations: []Relation{q.Left, q.Right},
		Edges:     []TreeEdge{{A: 0, B: 1, Kind: PredEqui}},
		Score: NScoreFunc{
			Name: f.Name,
			Fn:   func(s []float64) float64 { return f.Fn(s[0], s[1]) },
		},
		K:      q.K,
		score2: &f,
	}
}

// TreeFromMulti lifts an n-way star query into its tree form.
func TreeFromMulti(q MultiQuery) *JoinTree {
	edges := make([]TreeEdge, 0, len(q.Relations)-1)
	for i := 1; i < len(q.Relations); i++ {
		edges = append(edges, TreeEdge{A: 0, B: i, Kind: PredEqui})
	}
	return &JoinTree{
		Relations: append([]Relation(nil), q.Relations...),
		Edges:     edges,
		Score:     q.Score,
		K:         q.K,
	}
}

// Binary projects a two-leaf all-equi tree back onto the Query form the
// paper's two-way executors consume; ok is false for any other shape.
func (t *JoinTree) Binary() (Query, bool) {
	if len(t.Relations) != 2 || !t.AllEqui() {
		return Query{}, false
	}
	q := Query{Left: t.Relations[0], Right: t.Relations[1], K: t.K}
	if t.score2 != nil {
		q.Score = *t.score2
	} else {
		f := t.Score
		q.Score = ScoreFunc{
			Name: f.Name,
			Fn:   func(a, b float64) float64 { return f.Fn([]float64{a, b}) },
		}
	}
	return q, true
}

// Star projects an all-equi tree onto the MultiQuery form (any
// connected all-equi tree is semantically a star — one shared join
// value); ok is false once a band edge appears.
func (t *JoinTree) Star() (MultiQuery, bool) {
	if !t.AllEqui() {
		return MultiQuery{}, false
	}
	return MultiQuery{
		Relations: append([]Relation(nil), t.Relations...),
		Score:     t.Score,
		K:         t.K,
	}, true
}

// ---- Tree walking ----

// walkStep assigns one leaf during result assembly: leaf is matched
// through edge against the join value already bound at from.
type walkStep struct {
	leaf int
	from int
	edge *TreeEdge
}

// walkOrder computes a breadth-first expansion order rooted at the
// given leaf. Because the graph is a tree, each later leaf attaches to
// the already-assigned prefix through exactly one edge.
func (t *JoinTree) walkOrder(root int) []walkStep {
	n := len(t.Relations)
	adj := make([][]int, n)
	for ei := range t.Edges {
		e := &t.Edges[ei]
		adj[e.A] = append(adj[e.A], ei)
		adj[e.B] = append(adj[e.B], ei)
	}
	steps := make([]walkStep, 0, n-1)
	used := make([]bool, n)
	used[root] = true
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ei := range adj[u] {
			e := &t.Edges[ei]
			v := e.A + e.B - u
			if used[v] {
				continue
			}
			used[v] = true
			steps = append(steps, walkStep{leaf: v, from: u, edge: e})
			queue = append(queue, v)
		}
	}
	return steps
}

// leafIndex holds one leaf's available tuples, indexed for the
// predicates of its incident edges: a hash map on the join value for
// equi probes and a value-sorted list for band range probes.
type leafIndex struct {
	hasEqui bool
	hasBand bool
	byJoin  map[string][]Tuple
	nums    []numTuple // ascending by (value, RowKey)
}

type numTuple struct {
	v float64
	t Tuple
}

// newLeafIndex prepares the index structures leaf needs given the
// predicates that can probe it.
func newLeafIndex(t *JoinTree, leaf int) *leafIndex {
	li := &leafIndex{}
	for i := range t.Edges {
		e := &t.Edges[i]
		if e.A != leaf && e.B != leaf {
			continue
		}
		if e.Kind == PredBand {
			li.hasBand = true
		} else {
			li.hasEqui = true
		}
	}
	if li.hasEqui {
		li.byJoin = map[string][]Tuple{}
	}
	return li
}

// add indexes one tuple. Tuples whose join value does not parse as a
// number stay out of the band structure — they can never band-match.
func (li *leafIndex) add(t Tuple) {
	if li.hasEqui {
		li.byJoin[t.JoinValue] = append(li.byJoin[t.JoinValue], t)
	}
	if li.hasBand {
		v, err := strconv.ParseFloat(t.JoinValue, 64)
		if err != nil {
			return
		}
		pos := sort.Search(len(li.nums), func(i int) bool {
			if li.nums[i].v != v {
				return li.nums[i].v > v
			}
			return li.nums[i].t.RowKey > t.RowKey
		})
		li.nums = append(li.nums, numTuple{})
		copy(li.nums[pos+1:], li.nums[pos:])
		li.nums[pos] = numTuple{v: v, t: t}
	}
}

// candidates returns this leaf's indexed tuples matching edge e against
// the join value v bound at the edge's other endpoint.
func (li *leafIndex) candidates(e *TreeEdge, v string) []Tuple {
	if e.Kind != PredBand {
		return li.byJoin[v]
	}
	fv, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return nil
	}
	lo := sort.Search(len(li.nums), func(i int) bool { return li.nums[i].v >= fv-e.Band })
	hi := sort.Search(len(li.nums), func(i int) bool { return li.nums[i].v > fv+e.Band })
	if lo >= hi {
		return nil
	}
	out := make([]Tuple, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, li.nums[i].t)
	}
	return out
}

// toJoinResult projects an n-way result onto the JoinResult shape: the
// first two leaves fill Left/Right, later leaves Rest.
func toJoinResult(r NJoinResult) JoinResult {
	jr := JoinResult{Left: r.Tuples[0], Right: r.Tuples[1], Score: r.Score}
	if len(r.Tuples) > 2 {
		jr.Rest = append([]Tuple(nil), r.Tuples[2:]...)
	}
	return jr
}

// treeResults converts a ranked n-way result list.
func treeResults(rs []NJoinResult) []JoinResult {
	out := make([]JoinResult, 0, len(rs))
	for _, r := range rs {
		out = append(out, toJoinResult(r))
	}
	return out
}

// NaiveTreeTopK is the reference executor for arbitrary join trees: it
// scans every leaf in full, indexes each for its incident predicates,
// enumerates every assignment over the tree edges, and ranks exactly.
// It is the oracle the any-k executor is checked against and the base
// of the doubling-depth streaming adapter.
func NaiveTreeTopK(c *kvstore.Cluster, t *JoinTree) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	before := c.Metrics().Snapshot()
	n := len(t.Relations)
	idx := make([]*leafIndex, n)
	var roots []Tuple
	for i := 0; i < n; i++ {
		tuples, err := scanRelation(c, &t.Relations[i])
		if err != nil {
			return nil, fmt.Errorf("core: tree scan of %s: %w", t.Relations[i].Name, err)
		}
		if i == 0 {
			roots = tuples
			continue
		}
		li := newLeafIndex(t, i)
		for _, tp := range tuples {
			li.add(tp)
		}
		idx[i] = li
	}
	steps := t.walkOrder(0)
	top := NewNTopKList(t.K)
	combo := make([]Tuple, n)
	scores := make([]float64, n)
	var rec func(d int)
	rec = func(d int) {
		if d == len(steps) {
			for j := 0; j < n; j++ {
				scores[j] = combo[j].Score
			}
			score := t.Score.Fn(scores)
			if top.Full() && score < top.KthScore() {
				return
			}
			top.Add(NJoinResult{Tuples: append([]Tuple(nil), combo...), Score: score})
			return
		}
		s := steps[d]
		for _, cand := range idx[s.leaf].candidates(s.edge, combo[s.from].JoinValue) {
			combo[s.leaf] = cand
			rec(d + 1)
		}
	}
	for _, rt := range roots {
		combo[0] = rt
		rec(0)
	}
	return &Result{Results: treeResults(top.Results()), Cost: c.Metrics().Snapshot().Sub(before)}, nil
}

// ---- Small helpers ----

// unionFind is the connectivity check behind Validate.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

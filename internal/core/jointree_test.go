package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"repro/internal/kvstore"
)

// numTuples generates n tuples whose join values are numeric strings —
// usable by both equi and band predicates.
func numTuples(prefix string, n, joinCard int, rng *rand.Rand) []Tuple {
	out := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		score := float64(rng.Intn(1000)) / 1000
		out = append(out, Tuple{
			RowKey:    fmt.Sprintf("%s%05d", prefix, i),
			JoinValue: strconv.Itoa(rng.Intn(joinCard)),
			Score:     score,
		})
	}
	return out
}

// randomTreeEnv builds a random acyclic tree over 2-5 leaves with mixed
// equi/band edges, loads its relations, and returns the raw tuples for
// independent recomputation.
func randomTreeEnv(t *testing.T, c *kvstore.Cluster, rng *rand.Rand, k int) (*JoinTree, [][]Tuple) {
	t.Helper()
	n := 2 + rng.Intn(4)
	rels := make([]Relation, n)
	tuples := make([][]Tuple, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("jt%d", i)
		tuples[i] = numTuples(name, 20+rng.Intn(30), 6, rng)
		rels[i] = loadRelation(t, c, name, tuples[i])
	}
	// Random tree shape: each later leaf attaches to a random earlier
	// one, which generates chains, stars, and everything between.
	edges := make([]TreeEdge, 0, n-1)
	for i := 1; i < n; i++ {
		e := TreeEdge{A: rng.Intn(i), B: i, Kind: PredEqui}
		if rng.Intn(2) == 0 {
			e.Kind = PredBand
			e.Band = []float64{0, 1, 2}[rng.Intn(3)]
		}
		edges = append(edges, e)
	}
	tr := &JoinTree{Relations: rels, Edges: edges, Score: SumN, K: k}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr, tuples
}

// bruteForceTreeTopK recomputes a tree query's exact answer from raw
// tuples with full cartesian enumeration and a plain sort — sharing no
// code with NaiveTreeTopK or the any-k operator (no walk orders, no
// leaf indexes, an independently-written predicate check).
func bruteForceTreeTopK(tr *JoinTree, tuples [][]Tuple, k int) []NJoinResult {
	n := len(tuples)
	holds := func(e *TreeEdge, va, vb string) bool {
		if e.Kind != PredBand {
			return va == vb
		}
		fa, errA := strconv.ParseFloat(va, 64)
		fb, errB := strconv.ParseFloat(vb, 64)
		if errA != nil || errB != nil {
			return false
		}
		return math.Abs(fa-fb) <= e.Band
	}
	var all []NJoinResult
	combo := make([]Tuple, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			for ei := range tr.Edges {
				e := &tr.Edges[ei]
				if !holds(e, combo[e.A].JoinValue, combo[e.B].JoinValue) {
					return
				}
			}
			scores := make([]float64, n)
			for j, tp := range combo {
				scores[j] = tp.Score
			}
			all = append(all, NJoinResult{
				Tuples: append([]Tuple(nil), combo...),
				Score:  tr.Score.Fn(scores),
			})
			return
		}
		for _, tp := range tuples[i] {
			combo[i] = tp
			rec(i + 1)
		}
	}
	rec(0)
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score > all[b].Score
		}
		for i := range all[a].Tuples {
			if all[a].Tuples[i].RowKey != all[b].Tuples[i].RowKey {
				return all[a].Tuples[i].RowKey < all[b].Tuples[i].RowKey
			}
		}
		return false
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// assertTreeResultsByteMatch requires got to equal want tuple-for-tuple:
// same row keys, join values, scores, and aggregate, in the same order.
func assertTreeResultsByteMatch(t *testing.T, label string, got []JoinResult, want []NJoinResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		g := append([]Tuple{got[i].Left, got[i].Right}, got[i].Rest...)
		w := want[i].Tuples
		if len(g) != len(w) {
			t.Fatalf("%s: result %d has %d tuples, want %d", label, i, len(g), len(w))
		}
		for j := range g {
			if g[j] != w[j] {
				t.Fatalf("%s: result %d leaf %d = %+v, want %+v", label, i, j, g[j], w[j])
			}
		}
		if d := got[i].Score - want[i].Score; d > 1e-12 || d < -1e-12 {
			t.Fatalf("%s: result %d score %v, want %v", label, i, got[i].Score, want[i].Score)
		}
	}
}

// TestAnyKMatchesOracleRandomTrees: the randomized join-tree oracle.
// Any-k over random acyclic trees — chains, stars, and mixed shapes
// with equi and band edges — must byte-match an independent
// materialize-and-sort recompute, as must the naive tree reference.
func TestAnyKMatchesOracleRandomTrees(t *testing.T) {
	ex, ok := Lookup("anyk")
	if !ok {
		t.Fatal("anyk executor not registered")
	}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := newTestCluster()
		k := []int{1, 7, 25}[rng.Intn(3)]
		tr, tuples := randomTreeEnv(t, c, rng, k)
		want := bruteForceTreeTopK(tr, tuples, k)

		naive, err := NaiveTreeTopK(c, tr)
		if err != nil {
			t.Fatalf("seed %d: NaiveTreeTopK: %v", seed, err)
		}
		assertTreeResultsByteMatch(t, fmt.Sprintf("seed %d naive", seed), naive.Results, want)

		store := NewIndexStore()
		if err := ex.EnsureIndex(c, tr, store, IndexBuildConfig{}.WithDefaults()); err != nil {
			t.Fatalf("seed %d: EnsureIndex: %v", seed, err)
		}
		res, err := ex.Run(c, tr, store, ExecOptions{ISLBatch: 5}.WithDefaults())
		if err != nil {
			t.Fatalf("seed %d: anyk Run: %v", seed, err)
		}
		assertTreeResultsByteMatch(t, fmt.Sprintf("seed %d anyk (n=%d)", seed, len(tr.Relations)), res.Results, want)
	}
}

// TestAnyKTreePagesMatchBatch: draining one any-k cursor in small pages
// over a mixed-shape tree must concatenate to exactly the batch result.
func TestAnyKTreePagesMatchBatch(t *testing.T) {
	const page, total = 3, 21
	rng := rand.New(rand.NewSource(99))
	c := newTestCluster()
	tr, tuples := randomTreeEnv(t, c, rng, page)
	store := NewIndexStore()
	ex, _ := Lookup("anyk")
	if err := ex.EnsureIndex(c, tr, store, IndexBuildConfig{}.WithDefaults()); err != nil {
		t.Fatal(err)
	}
	opts := ExecOptions{ISLBatch: 7}.WithDefaults()

	batchT := *tr
	batchT.K = total
	batch, err := ex.Run(c, &batchT, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ex.Open(c, tr, store, opts) // K = page hint
	if err != nil {
		t.Fatal(err)
	}
	paged := drainPages(t, cur, page, total)
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if len(paged) != len(batch.Results) {
		t.Fatalf("paged %d results, batch %d", len(paged), len(batch.Results))
	}
	want := bruteForceTreeTopK(tr, tuples, len(paged))
	assertTreeResultsByteMatch(t, "paged", paged, want)
	assertTreeResultsByteMatch(t, "batch", batch.Results[:len(paged)], want)
}

// TestAnyKTreeEarlyCloseChargesNothing: closing an any-k tree cursor
// stops its read-unit spend — the early-close billing contract every
// two-way cursor honors extends to tree queries.
func TestAnyKTreeEarlyCloseChargesNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := newTestCluster()
	tr, _ := randomTreeEnv(t, c, rng, 3)
	store := NewIndexStore()
	ex, _ := Lookup("anyk")
	if err := ex.EnsureIndex(c, tr, store, IndexBuildConfig{}.WithDefaults()); err != nil {
		t.Fatal(err)
	}
	cur, err := ex.Open(c, tr, store, ExecOptions{ISLBatch: 5}.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics().Snapshot()
	if _, err := cur.Next(); err != ErrCursorClosed {
		t.Fatalf("Next after Close = %v, want ErrCursorClosed", err)
	}
	delta := c.Metrics().Snapshot().Sub(before)
	if delta.KVReads != 0 || delta.NetworkBytes != 0 {
		t.Fatalf("closed cursor charged reads=%d net=%d", delta.KVReads, delta.NetworkBytes)
	}
}

// TestTreeIDDistinctness: the satellite audit of derived-query IDs.
// Legacy shapes keep their legacy IDs (so existing indexes and cache
// entries stay valid), while any two tree shapes that can produce
// different results must never share an ID — planner-cache and
// page-token entries key on it.
func TestTreeIDDistinctness(t *testing.T) {
	mk := func(name string) Relation {
		return Relation{Name: name, Table: "tbl_" + name, Family: "d", JoinQual: "join", ScoreQual: "score"}
	}
	a, b, c3 := mk("a"), mk("b"), mk("c")

	q := Query{Left: a, Right: b, Score: Sum, K: 10}
	if got := TreeFromQuery(q).ID(); got != q.ID() {
		t.Errorf("binary tree ID %q != legacy Query ID %q", got, q.ID())
	}
	mq := MultiQuery{Relations: []Relation{a, b, c3}, Score: SumN, K: 10}
	star := TreeFromMulti(mq)
	if got := star.ID(); got != mq.ID() {
		t.Errorf("star tree ID %q != legacy MultiQuery ID %q", got, mq.ID())
	}

	// An all-equi chain is semantically the star (one shared join
	// value), so sharing the ID — and the cache entries — is correct.
	equiChain := &JoinTree{
		Relations: []Relation{a, b, c3},
		Edges:     []TreeEdge{{A: 0, B: 1}, {A: 1, B: 2}},
		Score:     SumN, K: 10,
	}
	if equiChain.ID() != star.ID() {
		t.Errorf("all-equi chain ID %q != star ID %q (semantically identical shapes)", equiChain.ID(), star.ID())
	}

	// A band edge changes semantics: the ID must diverge.
	bandChain := &JoinTree{
		Relations: []Relation{a, b, c3},
		Edges:     []TreeEdge{{A: 0, B: 1}, {A: 1, B: 2, Kind: PredBand, Band: 0.5}},
		Score:     SumN, K: 10,
	}
	if bandChain.ID() == star.ID() {
		t.Errorf("band chain shares ID %q with the equi star", star.ID())
	}
	// Different band widths are different predicates.
	wider := *bandChain
	wider.Edges = append([]TreeEdge(nil), bandChain.Edges...)
	wider.Edges[1].Band = 1.5
	if wider.ID() == bandChain.ID() {
		t.Errorf("band widths 0.5 and 1.5 share ID %q", wider.ID())
	}
	// Same predicates listed in a different order canonicalize to the
	// same ID (same semantics, same cache entry).
	reordered := &JoinTree{
		Relations: []Relation{a, b, c3},
		Edges:     []TreeEdge{{A: 2, B: 1, Kind: PredBand, Band: 0.5}, {A: 1, B: 0}},
		Score:     SumN, K: 10,
	}
	if reordered.ID() != bandChain.ID() {
		t.Errorf("reordered edges change ID: %q vs %q", reordered.ID(), bandChain.ID())
	}
	// The leaf set alone (the physical-index key) ignores predicates.
	if bandChain.LeafID() != star.LeafID() {
		t.Errorf("band chain leaf ID %q != star leaf ID %q (shared physical index)", bandChain.LeafID(), star.LeafID())
	}
}

// TestJoinTreeValidateShapes: malformed shapes must come back as typed
// *ShapeError values carrying a diagnostic, never panic.
func TestJoinTreeValidateShapes(t *testing.T) {
	mk := func(name string) Relation {
		return Relation{Name: name, Table: "tbl_" + name, Family: "d", JoinQual: "join", ScoreQual: "score"}
	}
	rels := []Relation{mk("a"), mk("b"), mk("c"), mk("d")}
	cases := []struct {
		name  string
		edges []TreeEdge
	}{
		{"cycle", []TreeEdge{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 0}}},
		{"disconnected", []TreeEdge{{A: 0, B: 1}, {A: 2, B: 3}, {A: 3, B: 2, Kind: PredBand, Band: 1}}},
		{"too-few-edges", []TreeEdge{{A: 0, B: 1}}},
		{"self-loop", []TreeEdge{{A: 0, B: 0}, {A: 1, B: 2}, {A: 2, B: 3}}},
		{"out-of-range", []TreeEdge{{A: 0, B: 9}, {A: 1, B: 2}, {A: 2, B: 3}}},
		{"duplicate-edge", []TreeEdge{{A: 0, B: 1}, {A: 1, B: 0}, {A: 2, B: 3}}},
		{"bad-kind", []TreeEdge{{A: 0, B: 1, Kind: "theta"}, {A: 1, B: 2}, {A: 2, B: 3}}},
		{"bad-band", []TreeEdge{{A: 0, B: 1, Kind: PredBand, Band: math.NaN()}, {A: 1, B: 2}, {A: 2, B: 3}}},
	}
	for _, tc := range cases {
		tr := &JoinTree{Relations: rels, Edges: tc.edges, Score: SumN, K: 5}
		err := tr.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if _, ok := err.(*ShapeError); !ok {
			t.Errorf("%s: error %T (%v), want *ShapeError", tc.name, err, err)
		}
	}
}

package core

import (
	"fmt"
	"strconv"

	"repro/internal/bloom"
	"repro/internal/kvstore"
)

// bloomBitPos mirrors bloom.Hybrid.BitPos for callers that maintain a
// filter they cannot decode (the mutation path never reads the blob).
func bloomBitPos(mbits uint64, joinValue string) uint64 {
	return bloom.Hash64String(joinValue) % mbits
}

// mutRecordQual builds a mutation-record qualifier (BFHM bucket rows,
// DRJN band rows). The timestamp suffix makes every mutation's record a
// distinct column: row-key-only qualifiers let a later mutation of the
// same key shadow an earlier, not-yet-replayed record (reads return one
// version per column), silently corrupting replayed counts. Re-applying
// the same mutation with the same timestamp still lands on the same
// qualifier, keeping recovery idempotent.
func mutRecordQual(pfx, rowKey string, ts int64) string {
	return pfx + rowKey + "@" + strconv.FormatInt(ts, 36)
}

// This file implements Section 6 — online updates and index maintenance.
// Base-data insertions and deletions are intercepted at the caller level
// and augmented to mutate the indexes as well, reusing the original
// mutation's timestamp everywhere so replicas converge (the paper's
// eventual-consistency treatment: "key-value timestamps are used to
// discern between fresh and stale tuples").
//
//   - IJLMR and ISL indexes are inverted lists, so a tuple mutation maps
//     to one index-cell mutation each — per index: a relation joined in
//     several queries has several IJLMR/ISL tables, and every one of
//     them is maintained.
//   - BFHM blobs cannot be updated in place; mutations append insertion
//     or tombstone records to the bucket row (same timestamp as the base
//     mutation) and maintain the reverse mappings directly. Readers
//     replay the records over the blob; the write-back of reconstructed
//     blobs happens eagerly, lazily, or offline (see bfhm.go).
//   - DRJN band rows receive the same record treatment: inserts and
//     deletes append per-tuple delta records that readers fold into the
//     band's partition counts and observed score bounds, so the band
//     walk prices (and bounds) fresh cardinalities with no offline
//     rebuild.
//
// The augmented mutation ships as ONE kvstore.GroupWrite: base table
// plus every index table in a single batched write RPC (one latency
// charge, bytes summed) instead of one round trip per index cell.

// BoundIJLMR attaches one built IJLMR index to the column family this
// relation writes in it.
type BoundIJLMR struct {
	Idx    *IJLMRIndex
	Family string
}

// BoundISL attaches one built ISL index to the column family this
// relation writes in it.
type BoundISL struct {
	Idx    *ISLIndex
	Family string
}

// BoundISLN attaches one built n-way ISLN index to the column family
// this relation writes in it. The per-relation cell shape is identical
// to ISL's (BuildISLN indexes each relation with BuildISLRelation), so
// maintenance is too.
type BoundISLN struct {
	Idx    *ISLNIndex
	Family string
}

// Maintainer intercepts tuple-level mutations for one relation and keeps
// ALL of its registered indexes synchronized. IJLMR and ISL bind
// per-query, so they are slices: a relation participating in two queries
// has two inverse-list tables, and a mutation maintains both (the old
// single-pointer fields silently kept only the last registered index).
type Maintainer struct {
	C   *kvstore.Cluster
	Rel Relation
	// Any subset of the following may be populated.
	IJLMR []BoundIJLMR
	ISL   []BoundISL
	ISLN  []BoundISLN
	BFHM  *BFHMIndex
	DRJN  *DRJNIndex
}

// MaintenanceError reports a write-through maintenance batch that failed
// part-way: the base table and the Applied index tables hold the
// mutation, the structure named by Index does not — base and indexes
// have diverged. Re-applying the same logical mutation with the carried
// Timestamp (InsertTupleAt / DeleteTupleAt / UpdateTupleAt) is
// idempotent — already-applied cells rewrite identically — and converges
// the store once the failure cause is gone.
type MaintenanceError struct {
	// Relation names the maintained relation.
	Relation string
	// Index names the divergent structure: "base", "ijlmr", "isl",
	// "bfhm", or "drjn".
	Index string
	// Table is the failed structure's backing table.
	Table string
	// Timestamp is the batch's shared mutation timestamp; reuse it to
	// re-apply idempotently.
	Timestamp int64
	// Applied lists the tables the batch fully reached before failing.
	// Empty means nothing landed and the store is still consistent.
	Applied []string
	// Err is the underlying write error.
	Err error
}

func (e *MaintenanceError) Error() string {
	return fmt.Sprintf("core: index maintenance for relation %q diverged at %s (table %q, ts %d, applied %v): %v",
		e.Relation, e.Index, e.Table, e.Timestamp, e.Applied, e.Err)
}

func (e *MaintenanceError) Unwrap() error { return e.Err }

// indexMutation is one structure's share of a maintenance batch.
type indexMutation struct {
	index string
	kvstore.TableMutation
}

// apply ships a maintenance batch as one group write and wraps partial
// failures in a MaintenanceError naming the divergent structure.
func (m *Maintainer) apply(muts []indexMutation, ts int64) error {
	group := make([]kvstore.TableMutation, len(muts))
	for i := range muts {
		group[i] = muts[i].TableMutation
	}
	err := m.C.GroupWrite(group)
	if err == nil {
		return nil
	}
	me := &MaintenanceError{Relation: m.Rel.Name, Index: "base", Timestamp: ts, Err: err}
	if gwe, ok := err.(*kvstore.GroupWriteError); ok {
		me.Table = gwe.Table
		me.Applied = gwe.Applied
		me.Err = gwe.Err
		for i := range muts {
			if muts[i].Table == gwe.Table {
				me.Index = muts[i].index
				break
			}
		}
	}
	return me
}

// appendInverseLists appends one mutation per bound ISL and ISLN index,
// with cells built for that index's family — the two families share one
// inverse-list cell shape, so every caller supplies it exactly once.
func (m *Maintainer) appendInverseLists(muts []indexMutation, cells func(family string) []kvstore.Cell) []indexMutation {
	for _, b := range m.ISL {
		muts = append(muts, indexMutation{index: "isl", TableMutation: kvstore.TableMutation{
			Table: b.Idx.Table, Cells: cells(b.Family)}})
	}
	for _, b := range m.ISLN {
		muts = append(muts, indexMutation{index: "isln", TableMutation: kvstore.TableMutation{
			Table: b.Idx.Table, Cells: cells(b.Family)}})
	}
	return muts
}

// insertMutations assembles the augmented mutation batch for one tuple
// insertion, every cell stamped ts.
func (m *Maintainer) insertMutations(t Tuple, ts int64, extraCells []kvstore.Cell) []indexMutation {
	base := []kvstore.Cell{
		{Row: t.RowKey, Family: m.Rel.Family, Qualifier: m.Rel.JoinQual, Value: []byte(t.JoinValue), Timestamp: ts},
		{Row: t.RowKey, Family: m.Rel.Family, Qualifier: m.Rel.ScoreQual, Value: kvstore.FloatValue(t.Score), Timestamp: ts},
	}
	for _, c := range extraCells {
		c.Row = t.RowKey
		c.Timestamp = ts
		base = append(base, c)
	}
	muts := []indexMutation{{index: "base", TableMutation: kvstore.TableMutation{Table: m.Rel.Table, Cells: base}}}
	for _, b := range m.IJLMR {
		muts = append(muts, indexMutation{index: "ijlmr", TableMutation: kvstore.TableMutation{
			Table: b.Idx.Table,
			Cells: []kvstore.Cell{{Row: t.JoinValue, Family: b.Family, Qualifier: t.RowKey,
				Value: kvstore.FloatValue(t.Score), Timestamp: ts}},
		}})
	}
	muts = m.appendInverseLists(muts, func(fam string) []kvstore.Cell {
		return []kvstore.Cell{{Row: kvstore.EncodeScoreDesc(t.Score), Family: fam, Qualifier: t.RowKey,
			Value: []byte(t.JoinValue), Timestamp: ts}}
	})
	if m.BFHM != nil {
		muts = append(muts, indexMutation{index: "bfhm", TableMutation: kvstore.TableMutation{
			Table: m.BFHM.Table, Cells: m.bfhmInsertCells(t, ts),
		}})
	}
	if m.DRJN != nil {
		muts = append(muts, indexMutation{index: "drjn", TableMutation: kvstore.TableMutation{
			Table: m.DRJN.Table, Cells: []kvstore.Cell{drjnInsertRecord(m.DRJN, t, ts)},
		}})
	}
	return muts
}

// deleteMutations assembles the augmented mutation batch for one tuple
// deletion.
func (m *Maintainer) deleteMutations(t Tuple, ts int64) []indexMutation {
	base := []kvstore.Cell{
		{Row: t.RowKey, Family: m.Rel.Family, Qualifier: m.Rel.JoinQual, Timestamp: ts, Tombstone: true},
		{Row: t.RowKey, Family: m.Rel.Family, Qualifier: m.Rel.ScoreQual, Timestamp: ts, Tombstone: true},
	}
	muts := []indexMutation{{index: "base", TableMutation: kvstore.TableMutation{Table: m.Rel.Table, Cells: base}}}
	for _, b := range m.IJLMR {
		muts = append(muts, indexMutation{index: "ijlmr", TableMutation: kvstore.TableMutation{
			Table: b.Idx.Table,
			Cells: []kvstore.Cell{{Row: t.JoinValue, Family: b.Family, Qualifier: t.RowKey,
				Timestamp: ts, Tombstone: true}},
		}})
	}
	muts = m.appendInverseLists(muts, func(fam string) []kvstore.Cell {
		return []kvstore.Cell{{Row: kvstore.EncodeScoreDesc(t.Score), Family: fam, Qualifier: t.RowKey,
			Timestamp: ts, Tombstone: true}}
	})
	if m.BFHM != nil {
		muts = append(muts, indexMutation{index: "bfhm", TableMutation: kvstore.TableMutation{
			Table: m.BFHM.Table, Cells: m.bfhmDeleteCells(t, ts),
		}})
	}
	if m.DRJN != nil {
		muts = append(muts, indexMutation{index: "drjn", TableMutation: kvstore.TableMutation{
			Table: m.DRJN.Table, Cells: []kvstore.Cell{drjnDeleteRecord(m.DRJN, t, ts)},
		}})
	}
	return muts
}

// updateMutations assembles the batch replacing old with new (same row
// key) under one timestamp. Index entries whose coordinates change get a
// tombstone at the old position and a fresh entry at the new one; those
// whose coordinates are unchanged are simply overwritten — writing a
// tombstone AND a value at one (row, family, qualifier, timestamp) would
// be ambiguous.
func (m *Maintainer) updateMutations(old, new Tuple, ts int64) []indexMutation {
	base := []kvstore.Cell{
		{Row: new.RowKey, Family: m.Rel.Family, Qualifier: m.Rel.JoinQual, Value: []byte(new.JoinValue), Timestamp: ts},
		{Row: new.RowKey, Family: m.Rel.Family, Qualifier: m.Rel.ScoreQual, Value: kvstore.FloatValue(new.Score), Timestamp: ts},
	}
	muts := []indexMutation{{index: "base", TableMutation: kvstore.TableMutation{Table: m.Rel.Table, Cells: base}}}
	for _, b := range m.IJLMR {
		cells := []kvstore.Cell{{Row: new.JoinValue, Family: b.Family, Qualifier: new.RowKey,
			Value: kvstore.FloatValue(new.Score), Timestamp: ts}}
		if old.JoinValue != new.JoinValue {
			cells = append(cells, kvstore.Cell{Row: old.JoinValue, Family: b.Family, Qualifier: old.RowKey,
				Timestamp: ts, Tombstone: true})
		}
		muts = append(muts, indexMutation{index: "ijlmr", TableMutation: kvstore.TableMutation{Table: b.Idx.Table, Cells: cells}})
	}
	oldScoreKey, newScoreKey := kvstore.EncodeScoreDesc(old.Score), kvstore.EncodeScoreDesc(new.Score)
	muts = m.appendInverseLists(muts, func(fam string) []kvstore.Cell {
		cells := []kvstore.Cell{{Row: newScoreKey, Family: fam, Qualifier: new.RowKey,
			Value: []byte(new.JoinValue), Timestamp: ts}}
		if oldScoreKey != newScoreKey {
			cells = append(cells, kvstore.Cell{Row: oldScoreKey, Family: fam, Qualifier: old.RowKey,
				Timestamp: ts, Tombstone: true})
		}
		return cells
	})
	if m.BFHM != nil {
		oldKey := kvstore.ReverseMapKey(m.BFHM.Layout.BucketOf(old.Score), bloomBitPos(m.BFHM.MBits, old.JoinValue))
		newKey := kvstore.ReverseMapKey(m.BFHM.Layout.BucketOf(new.Score), bloomBitPos(m.BFHM.MBits, new.JoinValue))
		cells := []kvstore.Cell{{Row: newKey, Family: bfhmFamily, Qualifier: new.RowKey,
			Value: EncodeTuple(new), Timestamp: ts}}
		if oldKey != newKey {
			cells = append(cells, kvstore.Cell{Row: oldKey, Family: bfhmFamily, Qualifier: old.RowKey,
				Timestamp: ts, Tombstone: true})
		}
		// The bucket rows always get a delete record for the old tuple
		// and an insertion record for the new one; same-timestamp replay
		// applies deletions first, so a same-bucket update nets to
		// "replaced".
		cells = append(cells,
			kvstore.Cell{Row: kvstore.BucketKey(m.BFHM.Layout.BucketOf(old.Score)), Family: bfhmFamily,
				Qualifier: mutRecordQual(bfhmDelPfx, old.RowKey, ts), Value: EncodeTuple(old), Timestamp: ts},
			kvstore.Cell{Row: kvstore.BucketKey(m.BFHM.Layout.BucketOf(new.Score)), Family: bfhmFamily,
				Qualifier: mutRecordQual(bfhmInsPfx, new.RowKey, ts), Value: EncodeTuple(new), Timestamp: ts},
		)
		muts = append(muts, indexMutation{index: "bfhm", TableMutation: kvstore.TableMutation{Table: m.BFHM.Table, Cells: cells}})
	}
	if m.DRJN != nil {
		muts = append(muts, indexMutation{index: "drjn", TableMutation: kvstore.TableMutation{
			Table: m.DRJN.Table,
			Cells: []kvstore.Cell{drjnDeleteRecord(m.DRJN, old, ts), drjnInsertRecord(m.DRJN, new, ts)},
		}})
	}
	return muts
}

// InsertTuple writes a new base tuple and its index entries — all
// registered indexes, all stamped with one fresh timestamp, shipped as
// one group write. The row key must be new; inserting over an existing
// key with a different score or join value strands the old index
// entries (use UpdateTuple, which retires them).
func (m *Maintainer) InsertTuple(t Tuple, extraCells ...kvstore.Cell) error {
	if t.RowKey == "" || t.JoinValue == "" {
		return fmt.Errorf("core: insert needs row key and join value")
	}
	return m.InsertTupleAt(t, m.C.Now(), extraCells...)
}

// InsertTupleAt is InsertTuple with a caller-supplied timestamp: re-apply
// a MaintenanceError's batch with its carried Timestamp to converge a
// diverged store idempotently.
func (m *Maintainer) InsertTupleAt(t Tuple, ts int64, extraCells ...kvstore.Cell) error {
	if t.RowKey == "" || t.JoinValue == "" {
		return fmt.Errorf("core: insert needs row key and join value")
	}
	return m.apply(m.insertMutations(t, ts, extraCells), ts)
}

// DeleteTuple removes a base tuple and its index entries. The caller
// supplies the tuple's current join value and score (the paper's
// interception point has them at hand).
func (m *Maintainer) DeleteTuple(t Tuple) error {
	return m.DeleteTupleAt(t, m.C.Now())
}

// DeleteTupleAt is DeleteTuple with a caller-supplied timestamp (see
// InsertTupleAt).
func (m *Maintainer) DeleteTupleAt(t Tuple, ts int64) error {
	return m.apply(m.deleteMutations(t, ts), ts)
}

// UpdateTuple replaces a tuple's join value and/or score in place: the
// old index entries are retired and the new ones written under ONE
// shared timestamp, in one group write. This is the safe form of
// "insert over an existing row key" — a blind re-insert leaves the old
// score's inverse-list entries live, producing phantom results.
func (m *Maintainer) UpdateTuple(old, new Tuple) error {
	if err := validateUpdate(old, new); err != nil {
		return err
	}
	return m.UpdateTupleAt(old, new, m.C.Now())
}

// UpdateTupleAt is UpdateTuple with a caller-supplied timestamp (see
// InsertTupleAt).
func (m *Maintainer) UpdateTupleAt(old, new Tuple, ts int64) error {
	if err := validateUpdate(old, new); err != nil {
		return err
	}
	return m.apply(m.updateMutations(old, new, ts), ts)
}

func validateUpdate(old, new Tuple) error {
	if new.RowKey == "" || new.JoinValue == "" {
		return fmt.Errorf("core: update needs row key and join value")
	}
	if old.RowKey != new.RowKey {
		return fmt.Errorf("core: update must keep the row key (%q != %q)", old.RowKey, new.RowKey)
	}
	return nil
}

// insertBatchChunk bounds how many tuples one InsertBatch group write
// carries.
const insertBatchChunk = 256

// InsertBatch inserts many NEW tuples with full index maintenance,
// batching up to insertBatchChunk tuples' augmented mutations into each
// group write (one write RPC per chunk instead of one per tuple). Like
// InsertTuple it does not retire previous index entries for reused row
// keys. Tuples within a chunk share one timestamp.
func (m *Maintainer) InsertBatch(tuples []Tuple) error {
	return m.insertBatch(tuples, m.C.Now, insertBatchChunk)
}

// InsertBatchAt is InsertBatch with ONE caller-supplied timestamp for
// the whole batch, applied in a single group write. Replicated
// topologies use it to apply a router-stamped bulk load identically on
// every replica: same cells, same timestamps, byte-identical tables.
func (m *Maintainer) InsertBatchAt(tuples []Tuple, ts int64) error {
	return m.insertBatch(tuples, func() int64 { return ts }, len(tuples))
}

func (m *Maintainer) insertBatch(tuples []Tuple, stamp func() int64, chunk int) error {
	// Validate the whole batch before ANY chunk applies: a bad tuple in
	// a later chunk must not leave the earlier chunks silently committed
	// behind a plain error.
	for i := range tuples {
		if tuples[i].RowKey == "" || tuples[i].JoinValue == "" {
			return fmt.Errorf("core: insert batch tuple %d needs row key and join value", i)
		}
	}
	if chunk < 1 {
		chunk = 1
	}
	for start := 0; start < len(tuples); start += chunk {
		end := start + chunk
		if end > len(tuples) {
			end = len(tuples)
		}
		ts := stamp()
		// Merge the per-tuple batches per table so the chunk stays one
		// TableMutation per structure.
		merged := map[string]*indexMutation{}
		var order []string
		for _, t := range tuples[start:end] {
			for _, mu := range m.insertMutations(t, ts, nil) {
				got, ok := merged[mu.Table]
				if !ok {
					cp := mu
					merged[mu.Table] = &cp
					order = append(order, mu.Table)
					continue
				}
				got.Cells = append(got.Cells, mu.Cells...)
			}
		}
		batch := make([]indexMutation, 0, len(order))
		for _, tbl := range order {
			batch = append(batch, *merged[tbl])
		}
		if err := m.apply(batch, ts); err != nil {
			return err
		}
	}
	return nil
}

// bfhmInsertCells appends an insertion record to the bucket row and adds
// the reverse mapping (Section 6: "each tuple insertion ... will result
// in an insertion record being added to the bucket row, in addition to an
// entry being added in the corresponding reverse mapping row").
func (m *Maintainer) bfhmInsertCells(t Tuple, ts int64) []kvstore.Cell {
	bucket := m.BFHM.Layout.BucketOf(t.Score)
	bitPos := bloomBitPos(m.BFHM.MBits, t.JoinValue)
	return []kvstore.Cell{
		{Row: kvstore.ReverseMapKey(bucket, bitPos), Family: bfhmFamily, Qualifier: t.RowKey,
			Value: EncodeTuple(t), Timestamp: ts},
		{Row: kvstore.BucketKey(bucket), Family: bfhmFamily, Qualifier: mutRecordQual(bfhmInsPfx, t.RowKey, ts),
			Value: EncodeTuple(t), Timestamp: ts},
	}
}

// bfhmDeleteCells adds a tombstone record to the bucket row and deletes
// the reverse mapping directly (Section 6).
func (m *Maintainer) bfhmDeleteCells(t Tuple, ts int64) []kvstore.Cell {
	bucket := m.BFHM.Layout.BucketOf(t.Score)
	bitPos := bloomBitPos(m.BFHM.MBits, t.JoinValue)
	return []kvstore.Cell{
		{Row: kvstore.ReverseMapKey(bucket, bitPos), Family: bfhmFamily, Qualifier: t.RowKey,
			Timestamp: ts, Tombstone: true},
		{Row: kvstore.BucketKey(bucket), Family: bfhmFamily, Qualifier: mutRecordQual(bfhmDelPfx, t.RowKey, ts),
			Value: EncodeTuple(t), Timestamp: ts},
	}
}

// WriteBackAll runs the offline write-back pass — the "off-line (by a
// thread periodically probing bucket rows for mutation records)" mode of
// Section 6: every dirty BFHM bucket is reconstructed and persisted, and
// every DRJN band carrying delta records is consolidated into a fresh
// blob with its records purged (bounding band-row growth under sustained
// write traffic). It returns how many structures were rewritten.
func (m *Maintainer) WriteBackAll() (int, error) {
	n := 0
	if m.BFHM != nil {
		for b := 0; b < m.BFHM.Layout.Buckets; b++ {
			bucket, err := fetchBFHMBucket(m.C, m.BFHM, b)
			if err != nil {
				return n, err
			}
			if bucket.Dirty {
				if err := writeBackBucket(m.C, m.BFHM, bucket); err != nil {
					return n, err
				}
				n++
			}
		}
	}
	if m.DRJN != nil {
		for b := 0; b < m.DRJN.Layout.Buckets; b++ {
			folded, err := writeBackDRJNBand(m.C, m.DRJN, b)
			if err != nil {
				return n, err
			}
			if folded {
				n++
			}
		}
	}
	return n, nil
}

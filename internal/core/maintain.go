package core

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/kvstore"
)

// bloomBitPos mirrors bloom.Hybrid.BitPos for callers that maintain a
// filter they cannot decode (the mutation path never reads the blob).
func bloomBitPos(mbits uint64, joinValue string) uint64 {
	return bloom.Hash64String(joinValue) % mbits
}

// This file implements Section 6 — online updates and index maintenance.
// Base-data insertions and deletions are intercepted at the caller level
// and augmented to mutate the indexes as well, reusing the original
// mutation's timestamp everywhere so replicas converge (the paper's
// eventual-consistency treatment: "key-value timestamps are used to
// discern between fresh and stale tuples").
//
//   - IJLMR and ISL indexes are inverted lists, so a tuple mutation maps
//     to one index-cell mutation each.
//   - BFHM blobs cannot be updated in place; mutations append insertion
//     or tombstone records to the bucket row (same timestamp as the base
//     mutation) and maintain the reverse mappings directly. Readers
//     replay the records over the blob; the write-back of reconstructed
//     blobs happens eagerly, lazily, or offline (see bfhm.go).

// Maintainer intercepts tuple-level mutations for one relation and keeps
// its indexes synchronized.
type Maintainer struct {
	C   *kvstore.Cluster
	Rel Relation
	// Any subset of the following may be set.
	IJLMR       *IJLMRIndex
	IJLMRFamily string
	ISL         *ISLIndex
	ISLFamily   string
	BFHM        *BFHMIndex
}

// InsertTuple writes a new base tuple and its index entries, all stamped
// with one fresh timestamp.
func (m *Maintainer) InsertTuple(t Tuple, extraCells ...kvstore.Cell) error {
	if t.RowKey == "" || t.JoinValue == "" {
		return fmt.Errorf("core: insert needs row key and join value")
	}
	ts := m.C.Now()

	// Base data first (the paper's augmented mutation).
	base := []kvstore.Cell{
		{Row: t.RowKey, Family: m.Rel.Family, Qualifier: m.Rel.JoinQual, Value: []byte(t.JoinValue), Timestamp: ts},
		{Row: t.RowKey, Family: m.Rel.Family, Qualifier: m.Rel.ScoreQual, Value: kvstore.FloatValue(t.Score), Timestamp: ts},
	}
	for _, c := range extraCells {
		c.Row = t.RowKey
		c.Timestamp = ts
		base = append(base, c)
	}
	if err := m.C.MutateRow(m.Rel.Table, base); err != nil {
		return err
	}

	if m.IJLMR != nil {
		if err := m.C.Put(m.IJLMR.Table, kvstore.Cell{
			Row: t.JoinValue, Family: m.IJLMRFamily, Qualifier: t.RowKey,
			Value: kvstore.FloatValue(t.Score), Timestamp: ts,
		}); err != nil {
			return err
		}
	}
	if m.ISL != nil {
		if err := m.C.Put(m.ISL.Table, kvstore.Cell{
			Row: kvstore.EncodeScoreDesc(t.Score), Family: m.ISLFamily, Qualifier: t.RowKey,
			Value: []byte(t.JoinValue), Timestamp: ts,
		}); err != nil {
			return err
		}
	}
	if m.BFHM != nil {
		if err := m.bfhmInsert(t, ts); err != nil {
			return err
		}
	}
	return nil
}

// DeleteTuple removes a base tuple and its index entries. The caller
// supplies the tuple's current join value and score (the paper's
// interception point has them at hand).
func (m *Maintainer) DeleteTuple(t Tuple) error {
	ts := m.C.Now()
	if err := m.C.Delete(m.Rel.Table, t.RowKey, m.Rel.Family, m.Rel.JoinQual, ts); err != nil {
		return err
	}
	if err := m.C.Delete(m.Rel.Table, t.RowKey, m.Rel.Family, m.Rel.ScoreQual, ts); err != nil {
		return err
	}
	if m.IJLMR != nil {
		if err := m.C.Delete(m.IJLMR.Table, t.JoinValue, m.IJLMRFamily, t.RowKey, ts); err != nil {
			return err
		}
	}
	if m.ISL != nil {
		if err := m.C.Delete(m.ISL.Table, kvstore.EncodeScoreDesc(t.Score), m.ISLFamily, t.RowKey, ts); err != nil {
			return err
		}
	}
	if m.BFHM != nil {
		if err := m.bfhmDelete(t, ts); err != nil {
			return err
		}
	}
	return nil
}

// bfhmInsert appends an insertion record to the bucket row and adds the
// reverse mapping (Section 6: "each tuple insertion ... will result in an
// insertion record being added to the bucket row, in addition to an entry
// being added in the corresponding reverse mapping row").
func (m *Maintainer) bfhmInsert(t Tuple, ts int64) error {
	bucket := m.BFHM.Layout.BucketOf(t.Score)
	bitPos := bloomBitPos(m.BFHM.MBits, t.JoinValue)
	// Reverse mapping entry.
	if err := m.C.Put(m.BFHM.Table, kvstore.Cell{
		Row:       kvstore.ReverseMapKey(bucket, bitPos),
		Family:    bfhmFamily,
		Qualifier: t.RowKey,
		Value:     EncodeTuple(t),
		Timestamp: ts,
	}); err != nil {
		return err
	}
	// Insertion record on the bucket row.
	return m.C.Put(m.BFHM.Table, kvstore.Cell{
		Row:       kvstore.BucketKey(bucket),
		Family:    bfhmFamily,
		Qualifier: bfhmInsPfx + t.RowKey,
		Value:     EncodeTuple(t),
		Timestamp: ts,
	})
}

// bfhmDelete adds a tombstone record to the bucket row and deletes the
// reverse mapping directly (Section 6).
func (m *Maintainer) bfhmDelete(t Tuple, ts int64) error {
	bucket := m.BFHM.Layout.BucketOf(t.Score)
	bitPos := bloomBitPos(m.BFHM.MBits, t.JoinValue)
	if err := m.C.Delete(m.BFHM.Table, kvstore.ReverseMapKey(bucket, bitPos), bfhmFamily, t.RowKey, ts); err != nil {
		return err
	}
	return m.C.Put(m.BFHM.Table, kvstore.Cell{
		Row:       kvstore.BucketKey(bucket),
		Family:    bfhmFamily,
		Qualifier: bfhmDelPfx + t.RowKey,
		Value:     EncodeTuple(t),
		Timestamp: ts,
	})
}

// WriteBackAll reconstructs and persists every dirty BFHM bucket — the
// "off-line (by a thread periodically probing bucket rows for mutation
// records)" write-back mode of Section 6.
func (m *Maintainer) WriteBackAll() (int, error) {
	if m.BFHM == nil {
		return 0, nil
	}
	n := 0
	for b := 0; b < m.BFHM.Layout.Buckets; b++ {
		bucket, err := fetchBFHMBucket(m.C, m.BFHM, b)
		if err != nil {
			return n, err
		}
		if bucket.Dirty {
			if err := writeBackBucket(m.C, m.BFHM, bucket); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

package core

import (
	"fmt"
	"testing"

	"repro/internal/kvstore"
)

// maintSetup builds a cluster with all indexes and a Maintainer per
// relation.
type maintSetup struct {
	c      *kvstore.Cluster
	q      Query
	ijlmr  *IJLMRIndex
	isl    *ISLIndex
	bfhmL  *BFHMIndex
	bfhmR  *BFHMIndex
	mL, mR *Maintainer
	left   []Tuple
	right  []Tuple
}

func newMaintSetup(t *testing.T, seed int64) *maintSetup {
	t.Helper()
	c := newTestCluster()
	left := synthTuples("l", 120, 20, "uniform", seed)
	right := synthTuples("r", 120, 20, "uniform", seed+500)
	relL := loadRelation(t, c, "L", left)
	relR := loadRelation(t, c, "R", right)
	q := Query{Left: relL, Right: relR, Score: Sum, K: 10}

	ijlmr, _, err := BuildIJLMR(c, q)
	if err != nil {
		t.Fatal(err)
	}
	isl, _, err := BuildISL(c, q)
	if err != nil {
		t.Fatal(err)
	}
	bfhmL, _, err := BuildBFHM(c, relL, BFHMOptions{NumBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	bfhmR, _, err := BuildBFHM(c, relR, BFHMOptions{NumBuckets: 8, MBits: bfhmL.MBits})
	if err != nil {
		t.Fatal(err)
	}
	return &maintSetup{
		c: c, q: q, ijlmr: ijlmr, isl: isl, bfhmL: bfhmL, bfhmR: bfhmR,
		mL: &Maintainer{C: c, Rel: relL, IJLMR: ijlmr, IJLMRFamily: ijlmr.LeftFamily,
			ISL: isl, ISLFamily: isl.LeftFamily, BFHM: bfhmL},
		mR: &Maintainer{C: c, Rel: relR, IJLMR: ijlmr, IJLMRFamily: ijlmr.RightFamily,
			ISL: isl, ISLFamily: isl.RightFamily, BFHM: bfhmR},
		left: left, right: right,
	}
}

// checkAll verifies every index-based algorithm against the oracle for
// the current logical contents.
func (s *maintSetup) checkAll(t *testing.T, wb WriteBackMode) {
	t.Helper()
	want := scoresOf(oracleTopK(s.left, s.right, s.q.Score, s.q.K))

	ij, err := QueryIJLMR(s.c, s.q, s.ijlmr)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "ijlmr-after-updates", scoresOf(ij.Results), want)

	isl, err := QueryISL(s.c, s.q, s.isl, ISLOptions{BatchLeft: 10, BatchRight: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "isl-after-updates", scoresOf(isl.Results), want)

	bf, err := QueryBFHM(s.c, s.q, s.bfhmL, s.bfhmR, BFHMQueryOptions{WriteBack: wb})
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "bfhm-after-updates", scoresOf(bf.Results), want)
}

func (s *maintSetup) insertLeft(t *testing.T, tp Tuple) {
	t.Helper()
	if err := s.mL.InsertTuple(tp); err != nil {
		t.Fatal(err)
	}
	s.left = append(s.left, tp)
}

func (s *maintSetup) insertRight(t *testing.T, tp Tuple) {
	t.Helper()
	if err := s.mR.InsertTuple(tp); err != nil {
		t.Fatal(err)
	}
	s.right = append(s.right, tp)
}

func (s *maintSetup) deleteLeft(t *testing.T, i int) {
	t.Helper()
	tp := s.left[i]
	if err := s.mL.DeleteTuple(tp); err != nil {
		t.Fatal(err)
	}
	s.left = append(s.left[:i], s.left[i+1:]...)
}

func TestMaintenanceInsertions(t *testing.T) {
	s := newMaintSetup(t, 1)
	// Insert tuples that land at the very top of the ranking — the
	// queries MUST see them.
	s.insertLeft(t, Tuple{RowKey: "lnew1", JoinValue: "j3", Score: 0.999})
	s.insertRight(t, Tuple{RowKey: "rnew1", JoinValue: "j3", Score: 0.998})
	s.insertLeft(t, Tuple{RowKey: "lnew2", JoinValue: "j7", Score: 0.42})
	s.checkAll(t, WriteBackOff)
}

func TestMaintenanceDeletions(t *testing.T) {
	s := newMaintSetup(t, 2)
	// Delete the tuples participating in the current top result.
	want := oracleTopK(s.left, s.right, s.q.Score, 1)
	if len(want) == 0 {
		t.Skip("no joins in workload")
	}
	for i, tp := range s.left {
		if tp.RowKey == want[0].Left.RowKey {
			s.deleteLeft(t, i)
			break
		}
	}
	s.checkAll(t, WriteBackOff)
}

func TestMaintenanceMixedWorkload(t *testing.T) {
	s := newMaintSetup(t, 3)
	for i := 0; i < 30; i++ {
		s.insertLeft(t, Tuple{
			RowKey:    fmt.Sprintf("lmix%03d", i),
			JoinValue: fmt.Sprintf("j%d", i%20),
			Score:     float64((i*37)%1000) / 1000,
		})
		if i%3 == 0 && len(s.left) > 5 {
			s.deleteLeft(t, i%len(s.left))
		}
		if i%4 == 0 {
			s.insertRight(t, Tuple{
				RowKey:    fmt.Sprintf("rmix%03d", i),
				JoinValue: fmt.Sprintf("j%d", (i*3)%20),
				Score:     float64((i*53)%1000) / 1000,
			})
		}
	}
	for _, wb := range []WriteBackMode{WriteBackOff, WriteBackEager, WriteBackLazy} {
		s.checkAll(t, wb)
	}
}

func TestBFHMWriteBackPurgesMutationRecords(t *testing.T) {
	s := newMaintSetup(t, 4)
	tp := Tuple{RowKey: "lwb", JoinValue: "j1", Score: 0.95}
	s.insertLeft(t, tp)

	bucket := s.bfhmL.Layout.BucketOf(tp.Score)
	countMutCells := func() int {
		row, err := s.c.Get(s.bfhmL.Table, kvstore.BucketKey(bucket))
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			return 0
		}
		n := 0
		for _, cell := range row.Cells {
			if len(cell.Qualifier) > 2 && (cell.Qualifier[:2] == bfhmInsPfx || cell.Qualifier[:2] == bfhmDelPfx) {
				n++
			}
		}
		return n
	}
	if countMutCells() == 0 {
		t.Fatal("insertion record missing before write-back")
	}
	// Eager query must write back and purge the records.
	if _, err := QueryBFHM(s.c, s.q, s.bfhmL, s.bfhmR, BFHMQueryOptions{WriteBack: WriteBackEager}); err != nil {
		t.Fatal(err)
	}
	if n := countMutCells(); n != 0 {
		t.Fatalf("%d mutation records survive eager write-back", n)
	}
	// Results must still be correct after the write-back.
	s.checkAll(t, WriteBackOff)
}

func TestBFHMOfflineWriteBack(t *testing.T) {
	s := newMaintSetup(t, 5)
	for i := 0; i < 10; i++ {
		s.insertLeft(t, Tuple{
			RowKey:    fmt.Sprintf("loff%02d", i),
			JoinValue: fmt.Sprintf("j%d", i%20),
			Score:     float64(i) / 10,
		})
	}
	n, err := s.mL.WriteBackAll()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("offline write-back found no dirty buckets")
	}
	// Second pass: everything clean.
	n, err = s.mL.WriteBackAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("second write-back still found %d dirty buckets", n)
	}
	s.checkAll(t, WriteBackOff)
}

func TestMaintenanceTimestampsShared(t *testing.T) {
	// The base row and the index entries of one insertion must carry the
	// same timestamp (Section 6's consistency treatment).
	s := newMaintSetup(t, 6)
	tp := Tuple{RowKey: "lts", JoinValue: "j2", Score: 0.5}
	s.insertLeft(t, tp)

	baseRow, err := s.c.Get(s.q.Left.Table, tp.RowKey)
	if err != nil || baseRow == nil {
		t.Fatalf("base row: %v %v", baseRow, err)
	}
	baseTS := baseRow.Cells[0].Timestamp

	idxRow, err := s.c.Get(s.ijlmr.Table, tp.JoinValue)
	if err != nil || idxRow == nil {
		t.Fatalf("ijlmr row: %v %v", idxRow, err)
	}
	cell := idxRow.Cell(s.ijlmr.LeftFamily, tp.RowKey)
	if cell == nil {
		t.Fatal("ijlmr entry missing")
	}
	if cell.Timestamp != baseTS {
		t.Fatalf("ijlmr ts %d != base ts %d", cell.Timestamp, baseTS)
	}

	islRow, err := s.c.Get(s.isl.Table, kvstore.EncodeScoreDesc(tp.Score))
	if err != nil || islRow == nil {
		t.Fatalf("isl row: %v %v", islRow, err)
	}
	icell := islRow.Cell(s.isl.LeftFamily, tp.RowKey)
	if icell == nil || icell.Timestamp != baseTS {
		t.Fatalf("isl ts mismatch: %+v vs %d", icell, baseTS)
	}
}

func TestMaintainerValidation(t *testing.T) {
	s := newMaintSetup(t, 7)
	if err := s.mL.InsertTuple(Tuple{}); err == nil {
		t.Error("empty tuple accepted")
	}
}

package core

import (
	"fmt"
	"testing"

	"repro/internal/histogram"
	"repro/internal/kvstore"
)

// maintSetup builds a cluster with all indexes and a Maintainer per
// relation.
type maintSetup struct {
	c      *kvstore.Cluster
	q      Query
	ijlmr  *IJLMRIndex
	isl    *ISLIndex
	bfhmL  *BFHMIndex
	bfhmR  *BFHMIndex
	drjnL  *DRJNIndex
	drjnR  *DRJNIndex
	mL, mR *Maintainer
	left   []Tuple
	right  []Tuple
}

func newMaintSetup(t *testing.T, seed int64) *maintSetup {
	t.Helper()
	c := newTestCluster()
	left := synthTuples("l", 120, 20, "uniform", seed)
	right := synthTuples("r", 120, 20, "uniform", seed+500)
	relL := loadRelation(t, c, "L", left)
	relR := loadRelation(t, c, "R", right)
	q := Query{Left: relL, Right: relR, Score: Sum, K: 10}

	ijlmr, _, err := BuildIJLMR(c, q)
	if err != nil {
		t.Fatal(err)
	}
	isl, _, err := BuildISL(c, q)
	if err != nil {
		t.Fatal(err)
	}
	bfhmL, _, err := BuildBFHM(c, relL, BFHMOptions{NumBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	bfhmR, _, err := BuildBFHM(c, relR, BFHMOptions{NumBuckets: 8, MBits: bfhmL.MBits})
	if err != nil {
		t.Fatal(err)
	}
	drjnL, _, err := BuildDRJN(c, relL, DRJNOptions{NumBuckets: 8, JoinParts: 16})
	if err != nil {
		t.Fatal(err)
	}
	drjnR, _, err := BuildDRJN(c, relR, DRJNOptions{NumBuckets: 8, JoinParts: 16})
	if err != nil {
		t.Fatal(err)
	}
	return &maintSetup{
		c: c, q: q, ijlmr: ijlmr, isl: isl, bfhmL: bfhmL, bfhmR: bfhmR,
		drjnL: drjnL, drjnR: drjnR,
		mL: &Maintainer{C: c, Rel: relL,
			IJLMR: []BoundIJLMR{{Idx: ijlmr, Family: ijlmr.LeftFamily}},
			ISL:   []BoundISL{{Idx: isl, Family: isl.LeftFamily}},
			BFHM:  bfhmL, DRJN: drjnL},
		mR: &Maintainer{C: c, Rel: relR,
			IJLMR: []BoundIJLMR{{Idx: ijlmr, Family: ijlmr.RightFamily}},
			ISL:   []BoundISL{{Idx: isl, Family: isl.RightFamily}},
			BFHM:  bfhmR, DRJN: drjnR},
		left: left, right: right,
	}
}

// checkAll verifies every index-based algorithm against the oracle for
// the current logical contents — DRJN included, with no rebuild: its
// delta records must keep the band walk converging on fresh data.
func (s *maintSetup) checkAll(t *testing.T, wb WriteBackMode) {
	t.Helper()
	want := scoresOf(oracleTopK(s.left, s.right, s.q.Score, s.q.K))

	ij, err := QueryIJLMR(s.c, s.q, s.ijlmr)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "ijlmr-after-updates", scoresOf(ij.Results), want)

	isl, err := QueryISL(s.c, s.q, s.isl, ISLOptions{BatchLeft: 10, BatchRight: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "isl-after-updates", scoresOf(isl.Results), want)

	bf, err := QueryBFHM(s.c, s.q, s.bfhmL, s.bfhmR, BFHMQueryOptions{WriteBack: wb})
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "bfhm-after-updates", scoresOf(bf.Results), want)

	dr, err := QueryDRJN(s.c, s.q, s.drjnL, s.drjnR)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "drjn-after-updates", scoresOf(dr.Results), want)
}

func (s *maintSetup) insertLeft(t *testing.T, tp Tuple) {
	t.Helper()
	if err := s.mL.InsertTuple(tp); err != nil {
		t.Fatal(err)
	}
	s.left = append(s.left, tp)
}

func (s *maintSetup) insertRight(t *testing.T, tp Tuple) {
	t.Helper()
	if err := s.mR.InsertTuple(tp); err != nil {
		t.Fatal(err)
	}
	s.right = append(s.right, tp)
}

func (s *maintSetup) deleteLeft(t *testing.T, i int) {
	t.Helper()
	tp := s.left[i]
	if err := s.mL.DeleteTuple(tp); err != nil {
		t.Fatal(err)
	}
	s.left = append(s.left[:i], s.left[i+1:]...)
}

func TestMaintenanceInsertions(t *testing.T) {
	s := newMaintSetup(t, 1)
	// Insert tuples that land at the very top of the ranking — the
	// queries MUST see them.
	s.insertLeft(t, Tuple{RowKey: "lnew1", JoinValue: "j3", Score: 0.999})
	s.insertRight(t, Tuple{RowKey: "rnew1", JoinValue: "j3", Score: 0.998})
	s.insertLeft(t, Tuple{RowKey: "lnew2", JoinValue: "j7", Score: 0.42})
	s.checkAll(t, WriteBackOff)
}

func TestMaintenanceDeletions(t *testing.T) {
	s := newMaintSetup(t, 2)
	// Delete the tuples participating in the current top result.
	want := oracleTopK(s.left, s.right, s.q.Score, 1)
	if len(want) == 0 {
		t.Skip("no joins in workload")
	}
	for i, tp := range s.left {
		if tp.RowKey == want[0].Left.RowKey {
			s.deleteLeft(t, i)
			break
		}
	}
	s.checkAll(t, WriteBackOff)
}

func TestMaintenanceMixedWorkload(t *testing.T) {
	s := newMaintSetup(t, 3)
	for i := 0; i < 30; i++ {
		s.insertLeft(t, Tuple{
			RowKey:    fmt.Sprintf("lmix%03d", i),
			JoinValue: fmt.Sprintf("j%d", i%20),
			Score:     float64((i*37)%1000) / 1000,
		})
		if i%3 == 0 && len(s.left) > 5 {
			s.deleteLeft(t, i%len(s.left))
		}
		if i%4 == 0 {
			s.insertRight(t, Tuple{
				RowKey:    fmt.Sprintf("rmix%03d", i),
				JoinValue: fmt.Sprintf("j%d", (i*3)%20),
				Score:     float64((i*53)%1000) / 1000,
			})
		}
	}
	for _, wb := range []WriteBackMode{WriteBackOff, WriteBackEager, WriteBackLazy} {
		s.checkAll(t, wb)
	}
}

func TestBFHMWriteBackPurgesMutationRecords(t *testing.T) {
	s := newMaintSetup(t, 4)
	tp := Tuple{RowKey: "lwb", JoinValue: "j1", Score: 0.95}
	s.insertLeft(t, tp)

	bucket := s.bfhmL.Layout.BucketOf(tp.Score)
	countMutCells := func() int {
		row, err := s.c.Get(s.bfhmL.Table, kvstore.BucketKey(bucket))
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			return 0
		}
		n := 0
		for _, cell := range row.Cells {
			if len(cell.Qualifier) > 2 && (cell.Qualifier[:2] == bfhmInsPfx || cell.Qualifier[:2] == bfhmDelPfx) {
				n++
			}
		}
		return n
	}
	if countMutCells() == 0 {
		t.Fatal("insertion record missing before write-back")
	}
	// Eager query must write back and purge the records.
	if _, err := QueryBFHM(s.c, s.q, s.bfhmL, s.bfhmR, BFHMQueryOptions{WriteBack: WriteBackEager}); err != nil {
		t.Fatal(err)
	}
	if n := countMutCells(); n != 0 {
		t.Fatalf("%d mutation records survive eager write-back", n)
	}
	// Results must still be correct after the write-back.
	s.checkAll(t, WriteBackOff)
}

func TestBFHMOfflineWriteBack(t *testing.T) {
	s := newMaintSetup(t, 5)
	for i := 0; i < 10; i++ {
		s.insertLeft(t, Tuple{
			RowKey:    fmt.Sprintf("loff%02d", i),
			JoinValue: fmt.Sprintf("j%d", i%20),
			Score:     float64(i) / 10,
		})
	}
	n, err := s.mL.WriteBackAll()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("offline write-back found no dirty buckets")
	}
	// Second pass: everything clean.
	n, err = s.mL.WriteBackAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("second write-back still found %d dirty buckets", n)
	}
	s.checkAll(t, WriteBackOff)
}

func TestMaintenanceTimestampsShared(t *testing.T) {
	// The base row and the index entries of one insertion must carry the
	// same timestamp (Section 6's consistency treatment).
	s := newMaintSetup(t, 6)
	tp := Tuple{RowKey: "lts", JoinValue: "j2", Score: 0.5}
	s.insertLeft(t, tp)

	baseRow, err := s.c.Get(s.q.Left.Table, tp.RowKey)
	if err != nil || baseRow == nil {
		t.Fatalf("base row: %v %v", baseRow, err)
	}
	baseTS := baseRow.Cells[0].Timestamp

	idxRow, err := s.c.Get(s.ijlmr.Table, tp.JoinValue)
	if err != nil || idxRow == nil {
		t.Fatalf("ijlmr row: %v %v", idxRow, err)
	}
	cell := idxRow.Cell(s.ijlmr.LeftFamily, tp.RowKey)
	if cell == nil {
		t.Fatal("ijlmr entry missing")
	}
	if cell.Timestamp != baseTS {
		t.Fatalf("ijlmr ts %d != base ts %d", cell.Timestamp, baseTS)
	}

	islRow, err := s.c.Get(s.isl.Table, kvstore.EncodeScoreDesc(tp.Score))
	if err != nil || islRow == nil {
		t.Fatalf("isl row: %v %v", islRow, err)
	}
	icell := islRow.Cell(s.isl.LeftFamily, tp.RowKey)
	if icell == nil || icell.Timestamp != baseTS {
		t.Fatalf("isl ts mismatch: %+v vs %d", icell, baseTS)
	}
}

func TestMaintainerValidation(t *testing.T) {
	s := newMaintSetup(t, 7)
	if err := s.mL.InsertTuple(Tuple{}); err == nil {
		t.Error("empty tuple accepted")
	}
}

func (s *maintSetup) updateLeft(t *testing.T, i int, joinValue string, score float64) {
	t.Helper()
	old := s.left[i]
	new := Tuple{RowKey: old.RowKey, JoinValue: joinValue, Score: score}
	if err := s.mL.UpdateTuple(old, new); err != nil {
		t.Fatal(err)
	}
	s.left[i] = new
}

func TestMaintenanceUpdates(t *testing.T) {
	s := newMaintSetup(t, 8)
	// Score-only update within the same band, a cross-band score jump,
	// a join-value change, and a change of both.
	s.updateLeft(t, 0, s.left[0].JoinValue, s.left[0].Score) // no-op overwrite
	s.updateLeft(t, 1, s.left[1].JoinValue, 0.997)           // to the very top
	s.updateLeft(t, 2, "j3", 0.001)                          // to the bottom, new join
	s.updateLeft(t, 3, "j7", s.left[3].Score)                // join only
	// Repeated mutations of ONE online-inserted key within one BFHM
	// bucket / DRJN band (8 buckets, width 0.125): the later records
	// must not shadow the earlier, not-yet-replayed ones.
	s.insertLeft(t, Tuple{RowKey: "lup9", JoinValue: "j1", Score: 0.55})
	s.updateLeft(t, len(s.left)-1, "j2", 0.56)
	s.updateLeft(t, len(s.left)-1, "j1", 0.57)
	s.checkAll(t, WriteBackOff)
	for _, wb := range []WriteBackMode{WriteBackEager, WriteBackLazy} {
		s.checkAll(t, wb)
	}
}

func TestUpdatePurgesOldISLEntry(t *testing.T) {
	// A re-scored tuple must not survive at its old inverse-score-list
	// position: that stale entry is what used to produce phantom results
	// when callers re-inserted an existing row key with a new score.
	s := newMaintSetup(t, 9)
	old := s.left[0]
	s.updateLeft(t, 0, old.JoinValue, old.Score/2+0.001)

	row, err := s.c.Get(s.isl.Table, kvstore.EncodeScoreDesc(old.Score))
	if err != nil {
		t.Fatal(err)
	}
	if row != nil {
		if cell := row.Cell(s.isl.LeftFamily, old.RowKey); cell != nil && !cell.Tombstone {
			t.Fatalf("stale ISL entry for %s survives at old score %v", old.RowKey, old.Score)
		}
	}
	s.checkAll(t, WriteBackOff)
}

func TestMaintenanceErrorNamesDivergentIndex(t *testing.T) {
	s := newMaintSetup(t, 10)
	// Inject an index-write failure AFTER the base write: retire the
	// DRJN index table out from under the maintainer.
	if err := s.c.DropTable(s.drjnL.Table); err != nil {
		t.Fatal(err)
	}
	tp := Tuple{RowKey: "ldiv", JoinValue: "j5", Score: 0.77}
	err := s.mL.InsertTuple(tp)
	me, ok := err.(*MaintenanceError)
	if !ok {
		t.Fatalf("error %v (%T), want *MaintenanceError", err, err)
	}
	if me.Index != "drjn" || me.Table != s.drjnL.Table {
		t.Fatalf("diverged at %s/%s, want drjn/%s", me.Index, me.Table, s.drjnL.Table)
	}
	if me.Timestamp == 0 {
		t.Fatal("MaintenanceError carries no timestamp for re-apply")
	}
	// The divergence is real: base and the earlier indexes got the write.
	found := false
	for _, tbl := range me.Applied {
		if tbl == s.q.Left.Table {
			found = true
		}
	}
	if !found {
		t.Fatalf("applied %v does not include the base table", me.Applied)
	}

	// Heal the cause, re-apply the same logical mutation with the same
	// timestamp: idempotent for what already landed, completes the rest.
	if _, err := s.c.CreateTable(s.drjnL.Table, []string{drjnFamily}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.mL.InsertTupleAt(tp, me.Timestamp); err != nil {
		t.Fatalf("re-apply: %v", err)
	}
	s.left = append(s.left, tp)
	// Everything converged — every executor (DRJN queries the recreated,
	// record-only table and must still be exact) agrees with the oracle.
	s.checkAll(t, WriteBackOff)

	// The re-apply reused the timestamp: base and ISL agree on it.
	row, err := s.c.Get(s.q.Left.Table, tp.RowKey)
	if err != nil || row == nil {
		t.Fatalf("base row: %v %v", row, err)
	}
	if ts := row.Cells[0].Timestamp; ts != me.Timestamp {
		t.Errorf("base ts %d != re-applied ts %d", ts, me.Timestamp)
	}
}

func TestDRJNDeltaCountsMatchRebuild(t *testing.T) {
	s := newMaintSetup(t, 11)
	// Mixed online workload: inserts (including into empty bands),
	// deletes, and updates.
	s.insertLeft(t, Tuple{RowKey: "ld1", JoinValue: "j2", Score: 0.999})
	s.insertLeft(t, Tuple{RowKey: "ld2", JoinValue: "j4", Score: 0.0001})
	s.deleteLeft(t, 5)
	s.updateLeft(t, 7, "j9", 0.42)
	s.insertLeft(t, Tuple{RowKey: "ld3", JoinValue: "j2", Score: 0.5})
	s.deleteLeft(t, len(s.left)-1)
	// Collision scenarios: repeated mutations of one row key whose
	// records all land on the same band row (8 bands, width 0.125) —
	// a row-key-only record qualifier would let each later record
	// shadow the earlier one and corrupt the replayed counts.
	s.insertLeft(t, Tuple{RowKey: "ldc", JoinValue: "j2", Score: 0.50})
	s.updateLeft(t, len(s.left)-1, "j9", 0.52)
	s.insertLeft(t, Tuple{RowKey: "ldd", JoinValue: "j5", Score: 0.30})
	s.deleteLeft(t, len(s.left)-1)
	s.insertLeft(t, Tuple{RowKey: "ldd", JoinValue: "j6", Score: 0.31})

	// Oracle: the matrix a from-scratch build over the live tuples
	// would produce.
	want, err := histogram.NewDRJNMatrix(s.drjnL.Layout, s.drjnL.JoinParts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range s.left {
		want.Add(tp.JoinValue, tp.Score)
	}

	got, err := FetchAllBands(s.c, s.drjnL)
	if err != nil {
		t.Fatal(err)
	}
	for band := 0; band < s.drjnL.Layout.Buckets; band++ {
		wantCells := want.Band(band)
		for part := 0; part < s.drjnL.JoinParts; part++ {
			var g uint64
			if got[band] != nil {
				g = got[band].Cells[part]
			}
			if g != wantCells[part] {
				t.Errorf("band %d part %d: online count %d, rebuild %d", band, part, g, wantCells[part])
			}
		}
	}
}

func TestMaintenanceSingleWriteRPC(t *testing.T) {
	// The write-through pipeline ships a tuple's base + every-index
	// mutation as ONE batched write RPC; the per-cell path used to pay
	// one round trip per cell (base row + IJLMR + ISL + BFHM x2 + DRJN
	// = 6+ RPCs for this setup).
	s := newMaintSetup(t, 12)
	before := s.c.Metrics().Snapshot()
	s.insertLeft(t, Tuple{RowKey: "lrpc", JoinValue: "j1", Score: 0.5})
	d := s.c.Metrics().Snapshot().Sub(before)
	if d.RPCCalls != 1 {
		t.Errorf("maintained insert cost %d RPCs, want 1", d.RPCCalls)
	}
	if d.KVWrites < 6 {
		t.Errorf("maintained insert wrote %d cells, want >= 6 (base x2, ijlmr, isl, bfhm x2, drjn)", d.KVWrites)
	}
	s.checkAll(t, WriteBackOff)
}

func TestInsertBatchMaintainsAllIndexes(t *testing.T) {
	s := newMaintSetup(t, 13)
	var batch []Tuple
	for i := 0; i < 40; i++ {
		batch = append(batch, Tuple{
			RowKey:    fmt.Sprintf("lb%03d", i),
			JoinValue: fmt.Sprintf("j%d", i%20),
			Score:     float64((i*61)%1000) / 1000,
		})
	}
	before := s.c.Metrics().Snapshot()
	if err := s.mL.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	d := s.c.Metrics().Snapshot().Sub(before)
	// 40 tuples fit one chunk: one group write, not 40.
	if d.RPCCalls != 1 {
		t.Errorf("InsertBatch cost %d RPCs, want 1", d.RPCCalls)
	}
	s.left = append(s.left, batch...)
	s.checkAll(t, WriteBackOff)
}

func TestDRJNWriteBackConsolidatesDeltaRecords(t *testing.T) {
	s := newMaintSetup(t, 14)
	s.insertLeft(t, Tuple{RowKey: "lwc1", JoinValue: "j2", Score: 0.97})
	s.insertLeft(t, Tuple{RowKey: "lwc2", JoinValue: "j4", Score: 0.21})
	s.updateLeft(t, len(s.left)-1, "j5", 0.22)
	s.deleteLeft(t, 3)

	countRecords := func() int {
		rows, err := s.c.ScanAll(kvstore.Scan{Table: s.drjnL.Table})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := range rows {
			for _, cell := range rows[i].Cells {
				if len(cell.Qualifier) > 2 && (cell.Qualifier[:2] == drjnInsPfx || cell.Qualifier[:2] == drjnDelPfx) {
					n++
				}
			}
		}
		return n
	}
	if countRecords() == 0 {
		t.Fatal("no delta records before write-back")
	}
	n, err := s.mL.WriteBackAll()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("write-back folded nothing")
	}
	if got := countRecords(); got != 0 {
		t.Fatalf("%d delta records survive consolidation", got)
	}
	// The consolidated blobs must equal a from-scratch rebuild.
	want, err := histogram.NewDRJNMatrix(s.drjnL.Layout, s.drjnL.JoinParts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range s.left {
		want.Add(tp.JoinValue, tp.Score)
	}
	got, err := FetchAllBands(s.c, s.drjnL)
	if err != nil {
		t.Fatal(err)
	}
	for band := 0; band < s.drjnL.Layout.Buckets; band++ {
		for part := 0; part < s.drjnL.JoinParts; part++ {
			var g uint64
			if got[band] != nil {
				g = got[band].Cells[part]
			}
			if g != want.Band(band)[part] {
				t.Errorf("band %d part %d: consolidated %d, rebuild %d", band, part, g, want.Band(band)[part])
			}
		}
	}
	// Second pass: nothing left to fold.
	if n, err = s.mL.WriteBackAll(); err != nil || n != 0 {
		t.Fatalf("second write-back folded %d structures (%v)", n, err)
	}
	s.checkAll(t, WriteBackOff)
}

func TestRepeatedDeleteReplaysOnce(t *testing.T) {
	// Record qualifiers are timestamp-suffixed, so a retried Delete of
	// the same tuple leaves TWO delete records; replay must apply the
	// deletion once, not decrement counting-filter bits and band counts
	// a second time (they are shared with live tuples).
	s := newMaintSetup(t, 15)
	// Two live tuples share a join value; delete one of them twice.
	keep := Tuple{RowKey: "lkeep", JoinValue: "jdup", Score: 0.61}
	gone := Tuple{RowKey: "lgone", JoinValue: "jdup", Score: 0.62} // same BFHM bucket / DRJN band as keep
	s.insertLeft(t, keep)
	s.insertLeft(t, gone)
	s.insertRight(t, Tuple{RowKey: "rdup", JoinValue: "jdup", Score: 0.99})
	s.deleteLeft(t, len(s.left)-1)
	if err := s.mL.DeleteTuple(gone); err != nil { // the retry
		t.Fatal(err)
	}
	// keep must still join on jdup everywhere (a double-applied Remove
	// would clear its shared filter bit), and DRJN counts must match a
	// rebuild (a double decrement would corrupt the shared band cell).
	s.checkAll(t, WriteBackOff)
	want, err := histogram.NewDRJNMatrix(s.drjnL.Layout, s.drjnL.JoinParts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range s.left {
		want.Add(tp.JoinValue, tp.Score)
	}
	got, err := FetchAllBands(s.c, s.drjnL)
	if err != nil {
		t.Fatal(err)
	}
	band := s.drjnL.Layout.BucketOf(keep.Score)
	part := histogram.PartitionOf(keep.JoinValue, s.drjnL.JoinParts)
	if got[band] == nil || got[band].Cells[part] != want.Band(band)[part] {
		var g uint64
		if got[band] != nil {
			g = got[band].Cells[part]
		}
		t.Fatalf("band %d part %d: online count %d after repeated delete, rebuild %d", band, part, g, want.Band(band)[part])
	}
	// Same invariant after write-back consolidation.
	if _, err := s.mL.WriteBackAll(); err != nil {
		t.Fatal(err)
	}
	s.checkAll(t, WriteBackOff)
}

package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/kvstore"
	"repro/internal/mapreduce"
	"repro/internal/sim"
)

// This file extends the two-way algorithms to n-way rank joins, the
// generalization Section 3 declares straightforward: all n relations
// equi-join on a common attribute and the result score is a monotonic
// aggregate of the n tuple scores —
//
//	SELECT * FROM R1, ..., Rn WHERE R1.join = ... = Rn.join
//	ORDER BY f(R1.score, ..., Rn.score) STOP AFTER k
//
// The HRJN operator generalizes directly (Section 4.2.1 presents it for
// n inputs): the threshold becomes
//
//	S = max_i f(smax_1, ..., smin_i, ..., smax_n)
//
// and ISL drives it with one inverse-score-list scan per relation.

// NScoreFunc is a monotonic aggregate over n tuple scores.
type NScoreFunc struct {
	Name string
	Fn   func(scores []float64) float64
}

// SumN adds all scores.
var SumN = NScoreFunc{Name: "sum", Fn: func(s []float64) float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}}

// ProductN multiplies all scores (monotonic on [0,1] inputs).
var ProductN = NScoreFunc{Name: "product", Fn: func(s []float64) float64 {
	t := 1.0
	for _, v := range s {
		t *= v
	}
	return t
}}

// MultiQuery is an n-way top-k equi-join.
type MultiQuery struct {
	Relations []Relation
	Score     NScoreFunc
	K         int
}

// Validate rejects malformed queries.
func (q *MultiQuery) Validate() error {
	if len(q.Relations) < 2 {
		return fmt.Errorf("core: multi-way join needs >= 2 relations, got %d", len(q.Relations))
	}
	if q.K < 1 {
		return fmt.Errorf("core: k = %d, want >= 1", q.K)
	}
	if q.Score.Fn == nil {
		return fmt.Errorf("core: multi-way query needs a score function")
	}
	for i := range q.Relations {
		r := &q.Relations[i]
		if r.Table == "" || r.Family == "" || r.JoinQual == "" || r.ScoreQual == "" {
			return fmt.Errorf("core: relation %q underspecified", r.Name)
		}
	}
	return nil
}

// ID derives the query's identifier.
func (q *MultiQuery) ID() string {
	id := ""
	for i := range q.Relations {
		id += q.Relations[i].Name + "_"
	}
	return id + q.Score.Name
}

// NJoinResult is one n-way join result.
type NJoinResult struct {
	Tuples []Tuple // one per relation, in query order
	Score  float64
}

func (a *NJoinResult) less(b *NJoinResult) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	for i := range a.Tuples {
		if i >= len(b.Tuples) {
			return false
		}
		if a.Tuples[i].RowKey != b.Tuples[i].RowKey {
			return a.Tuples[i].RowKey < b.Tuples[i].RowKey
		}
	}
	return false
}

// NTopKList keeps the k best n-way results.
type NTopKList struct {
	k    int
	list []NJoinResult
}

// NewNTopKList returns an empty list with capacity k.
func NewNTopKList(k int) *NTopKList { return &NTopKList{k: k} }

// Add inserts a result, keeping only the top k.
func (t *NTopKList) Add(r NJoinResult) bool {
	pos := sort.Search(len(t.list), func(i int) bool { return r.less(&t.list[i]) })
	if pos >= t.k {
		return false
	}
	t.list = append(t.list, NJoinResult{})
	copy(t.list[pos+1:], t.list[pos:])
	t.list[pos] = r
	if len(t.list) > t.k {
		t.list = t.list[:t.k]
	}
	return true
}

// Len returns the current size.
func (t *NTopKList) Len() int { return len(t.list) }

// Full reports whether k results are held.
func (t *NTopKList) Full() bool { return len(t.list) >= t.k }

// KthScore returns the k'th score, or -Inf while not full.
func (t *NTopKList) KthScore() float64 {
	if !t.Full() {
		return math.Inf(-1)
	}
	return t.list[len(t.list)-1].Score
}

// Results returns the held results, best first.
func (t *NTopKList) Results() []NJoinResult {
	return append([]NJoinResult(nil), t.list...)
}

// NResult is an executed multi-way query.
type NResult struct {
	Results []NJoinResult
	Cost    sim.Snapshot
}

// HRJNN is the n-way HRJN operator.
type HRJNN struct {
	score NScoreFunc
	n     int
	seen  []map[string][]Tuple
	top   *NTopKList
	maxS  []float64
	minS  []float64
	got   []bool
	done  []bool
}

// NewHRJNN creates an n-way operator.
func NewHRJNN(k, n int, f NScoreFunc) *HRJNN {
	h := &HRJNN{
		score: f,
		n:     n,
		seen:  make([]map[string][]Tuple, n),
		top:   NewNTopKList(k),
		maxS:  make([]float64, n),
		minS:  make([]float64, n),
		got:   make([]bool, n),
		done:  make([]bool, n),
	}
	for i := range h.seen {
		h.seen[i] = map[string][]Tuple{}
		h.maxS[i] = math.Inf(-1)
		h.minS[i] = math.Inf(1)
	}
	return h
}

// Push feeds one tuple pulled from relation i (descending score order is
// the caller's contract) and joins it against all combinations of seen
// tuples from the other relations sharing its join value.
func (h *HRJNN) Push(i int, t Tuple) {
	h.got[i] = true
	if t.Score > h.maxS[i] {
		h.maxS[i] = t.Score
	}
	if t.Score < h.minS[i] {
		h.minS[i] = t.Score
	}
	h.seen[i][t.JoinValue] = append(h.seen[i][t.JoinValue], t)

	// Enumerate the cross product of the other relations' matches.
	combo := make([]Tuple, h.n)
	combo[i] = t
	h.enumerate(0, i, t.JoinValue, combo)
}

func (h *HRJNN) enumerate(rel, fixed int, joinValue string, combo []Tuple) {
	if rel == h.n {
		scores := make([]float64, h.n)
		tuples := make([]Tuple, h.n)
		for j := range combo {
			scores[j] = combo[j].Score
			tuples[j] = combo[j]
		}
		h.top.Add(NJoinResult{Tuples: tuples, Score: h.score.Fn(scores)})
		return
	}
	if rel == fixed {
		h.enumerate(rel+1, fixed, joinValue, combo)
		return
	}
	for _, other := range h.seen[rel][joinValue] {
		combo[rel] = other
		h.enumerate(rel+1, fixed, joinValue, combo)
	}
}

// Exhaust marks relation i's stream as drained.
func (h *HRJNN) Exhaust(i int) { h.done[i] = true }

// Threshold returns max_i f(max_1, ..., min_i, ..., max_n).
func (h *HRJNN) Threshold() float64 {
	allDone := true
	for i := 0; i < h.n; i++ {
		if !h.done[i] {
			allDone = false
		}
		if !h.got[i] {
			if h.done[i] {
				return math.Inf(-1) // an empty stream: no joins exist
			}
			return math.Inf(1)
		}
	}
	if allDone {
		return math.Inf(-1)
	}
	best := math.Inf(-1)
	scores := make([]float64, h.n)
	for i := 0; i < h.n; i++ {
		if h.done[i] {
			continue // relation i produces no further tuples
		}
		for j := 0; j < h.n; j++ {
			if j == i {
				scores[j] = h.minS[j]
			} else {
				scores[j] = h.maxS[j]
			}
		}
		if s := h.score.Fn(scores); s > best {
			best = s
		}
	}
	return best
}

// Done reports whether the operator can stop.
func (h *HRJNN) Done() bool {
	all := true
	for i := range h.done {
		if !h.done[i] {
			all = false
			break
		}
	}
	if all {
		return true
	}
	if !h.top.Full() {
		return false
	}
	return h.top.KthScore() >= h.Threshold()
}

// Results returns the current top-k.
func (h *HRJNN) Results() []NJoinResult { return h.top.Results() }

// RunHRJNN drives the operator over n sources with round-robin pulls.
func RunHRJNN(k int, f NScoreFunc, sources []TupleSource) ([]NJoinResult, error) {
	h := NewHRJNN(k, len(sources), f)
	for !h.Done() {
		progressed := false
		for i, src := range sources {
			if h.done[i] {
				continue
			}
			t, err := src.Next()
			if err != nil {
				return nil, err
			}
			if t == nil {
				h.Exhaust(i)
			} else {
				h.Push(i, *t)
				progressed = true
			}
			if h.Done() {
				break
			}
		}
		if !progressed {
			allDone := true
			for i := range h.done {
				if !h.done[i] {
					allDone = false
				}
			}
			if allDone {
				break
			}
		}
	}
	return h.Results(), nil
}

// NaiveTopKN is the n-way reference: full scans, hash join on the common
// attribute, exact ranking.
func NaiveTopKN(c *kvstore.Cluster, q MultiQuery) (*NResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	before := c.Metrics().Snapshot()
	byJoin := make([]map[string][]Tuple, len(q.Relations))
	for i := range q.Relations {
		tuples, err := scanRelation(c, &q.Relations[i])
		if err != nil {
			return nil, err
		}
		byJoin[i] = map[string][]Tuple{}
		for _, t := range tuples {
			byJoin[i][t.JoinValue] = append(byJoin[i][t.JoinValue], t)
		}
	}
	top := NewNTopKList(q.K)
	var rec func(v string, i int, combo []Tuple)
	rec = func(v string, i int, combo []Tuple) {
		if i == len(q.Relations) {
			scores := make([]float64, len(combo))
			for j, t := range combo {
				scores[j] = t.Score
			}
			top.Add(NJoinResult{Tuples: append([]Tuple(nil), combo...), Score: q.Score.Fn(scores)})
			return
		}
		for _, t := range byJoin[i][v] {
			rec(v, i+1, append(combo, t))
		}
	}
	for v := range byJoin[0] {
		rec(v, 0, nil)
	}
	return &NResult{Results: top.Results(), Cost: c.Metrics().Snapshot().Sub(before)}, nil
}

// ISLNIndex is an n-way ISL index: one column family per relation in a
// shared inverse-score-list table.
type ISLNIndex struct {
	Table    string
	Families []string // one per relation, in query order
}

// BuildISLN builds the n-way ISL index (Algorithm 3 per relation).
func BuildISLN(c *kvstore.Cluster, q MultiQuery) (*ISLNIndex, []*mapreduce.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	idx := &ISLNIndex{Table: "isln_" + q.ID()}
	for i := range q.Relations {
		idx.Families = append(idx.Families, q.Relations[i].Name)
	}
	if _, err := c.CreateTable(idx.Table, idx.Families, scoreKeySplits(c.Nodes())); err != nil {
		return nil, nil, err
	}
	var results []*mapreduce.Result
	for i := range q.Relations {
		res, err := BuildISLRelation(c, q.Relations[i], idx.Table, idx.Families[i])
		if err != nil {
			return nil, nil, err
		}
		results = append(results, res)
	}
	return idx, results, nil
}

// QueryISLN runs the n-way coordinator rank join: one batched scan per
// relation feeding HRJNN, alternating round-robin (Algorithm 4
// generalized).
func QueryISLN(c *kvstore.Cluster, q MultiQuery, idx *ISLNIndex, batch int) (*NResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(idx.Families) != len(q.Relations) {
		return nil, fmt.Errorf("core: index has %d families, query %d relations", len(idx.Families), len(q.Relations))
	}
	if batch < 1 {
		batch = 100
	}
	before := c.Metrics().Snapshot()
	streams := make([]*islStream, len(q.Relations))
	for i := range q.Relations {
		s, err := newISLStream(c, idx.Table, idx.Families[i], batch, false)
		if err != nil {
			return nil, err
		}
		streams[i] = s
	}
	h := NewHRJNN(q.K, len(q.Relations), q.Score)
	for !h.Done() {
		progressed := false
		for i, s := range streams {
			if h.done[i] {
				continue
			}
			for pulled := 0; pulled < batch && !h.Done(); pulled++ {
				t, err := s.Next()
				if err != nil {
					return nil, err
				}
				if t == nil {
					h.Exhaust(i)
					break
				}
				h.Push(i, *t)
				progressed = true
			}
			if h.Done() {
				break
			}
		}
		if !progressed {
			break
		}
	}
	return &NResult{Results: h.Results(), Cost: c.Metrics().Snapshot().Sub(before)}, nil
}

package core

import (
	"fmt"
	"sort"
	"testing"
)

// oracleTopKN computes the exact n-way top-k in memory.
func oracleTopKN(rels [][]Tuple, f NScoreFunc, k int) []NJoinResult {
	byJoin := make([]map[string][]Tuple, len(rels))
	for i, ts := range rels {
		byJoin[i] = map[string][]Tuple{}
		for _, t := range ts {
			byJoin[i][t.JoinValue] = append(byJoin[i][t.JoinValue], t)
		}
	}
	var all []NJoinResult
	var rec func(v string, i int, combo []Tuple)
	rec = func(v string, i int, combo []Tuple) {
		if i == len(rels) {
			scores := make([]float64, len(combo))
			for j, t := range combo {
				scores[j] = t.Score
			}
			all = append(all, NJoinResult{Tuples: append([]Tuple(nil), combo...), Score: f.Fn(scores)})
			return
		}
		for _, t := range byJoin[i][v] {
			rec(v, i+1, append(combo, t))
		}
	}
	for v := range byJoin[0] {
		rec(v, 0, nil)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].less(&all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func nscoresOf(rs []NJoinResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Score
	}
	return out
}

func TestHRJNNThreeWayMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r1 := synthTuples("a", 80, 12, "uniform", seed)
		r2 := synthTuples("b", 80, 12, "uniform", seed+100)
		r3 := synthTuples("c", 80, 12, "uniform", seed+200)
		for _, k := range []int{1, 5, 25} {
			for _, f := range []NScoreFunc{SumN, ProductN} {
				got, err := RunHRJNN(k, f, []TupleSource{
					&SliceSource{Tuples: descending(r1)},
					&SliceSource{Tuples: descending(r2)},
					&SliceSource{Tuples: descending(r3)},
				})
				if err != nil {
					t.Fatal(err)
				}
				want := oracleTopKN([][]Tuple{r1, r2, r3}, f, k)
				assertScoresEqual(t, fmt.Sprintf("hrjnn seed=%d k=%d %s", seed, k, f.Name),
					nscoresOf(got), nscoresOf(want))
			}
		}
	}
}

func TestHRJNNTwoWayAgreesWithHRJN(t *testing.T) {
	left := synthTuples("l", 150, 20, "uniform", 3)
	right := synthTuples("r", 150, 20, "uniform", 4)
	two, err := RunHRJN(10, Sum,
		&SliceSource{Tuples: descending(left)},
		&SliceSource{Tuples: descending(right)})
	if err != nil {
		t.Fatal(err)
	}
	nway, err := RunHRJNN(10, SumN, []TupleSource{
		&SliceSource{Tuples: descending(left)},
		&SliceSource{Tuples: descending(right)},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "hrjnn-vs-hrjn", nscoresOf(nway), scoresOf(two))
}

func TestHRJNNEarlyTermination(t *testing.T) {
	mk := func(prefix string) []Tuple {
		out := []Tuple{{RowKey: prefix + "hot", JoinValue: "hot", Score: 1.0}}
		for i := 0; i < 500; i++ {
			out = append(out, Tuple{RowKey: tkey(prefix, i), JoinValue: "cold", Score: 0.01})
		}
		return out
	}
	srcs := []TupleSource{
		&SliceSource{Tuples: descending(mk("a"))},
		&SliceSource{Tuples: descending(mk("b"))},
		&SliceSource{Tuples: descending(mk("c"))},
	}
	got, err := RunHRJNN(1, SumN, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Score != 3.0 {
		t.Fatalf("results = %v", got)
	}
	pulled := srcs[0].(*SliceSource).pos + srcs[1].(*SliceSource).pos + srcs[2].(*SliceSource).pos
	if pulled > 30 {
		t.Errorf("pulled %d tuples; expected early termination", pulled)
	}
}

func TestMultiQueryValidate(t *testing.T) {
	rel := Relation{Name: "r", Table: "t", Family: "d", JoinQual: "j", ScoreQual: "s"}
	q := MultiQuery{Relations: []Relation{rel, rel, rel}, Score: SumN, K: 5}
	if err := q.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	bad := q
	bad.Relations = bad.Relations[:1]
	if err := bad.Validate(); err == nil {
		t.Error("single relation accepted")
	}
	bad = q
	bad.K = 0
	if err := bad.Validate(); err == nil {
		t.Error("k=0 accepted")
	}
	bad = q
	bad.Score = NScoreFunc{}
	if err := bad.Validate(); err == nil {
		t.Error("nil score accepted")
	}
}

func TestISLNThreeWayEndToEnd(t *testing.T) {
	c := newTestCluster()
	r1 := synthTuples("a", 120, 15, "uniform", 11)
	r2 := synthTuples("b", 120, 15, "uniform", 12)
	r3 := synthTuples("c", 120, 15, "zipfish", 13)
	relA := loadRelation(t, c, "A", r1)
	relB := loadRelation(t, c, "B", r2)
	relC := loadRelation(t, c, "C", r3)
	q := MultiQuery{Relations: []Relation{relA, relB, relC}, Score: SumN, K: 12}

	idx, _, err := BuildISLN(c, q)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopKN([][]Tuple{r1, r2, r3}, SumN, q.K)

	// Store-backed naive agrees with the in-memory oracle.
	naive, err := NaiveTopKN(c, q)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresEqual(t, "naive-n", nscoresOf(naive.Results), nscoresOf(want))

	for _, batch := range []int{1, 10, 100} {
		res, err := QueryISLN(c, q, idx, batch)
		if err != nil {
			t.Fatal(err)
		}
		assertScoresEqual(t, fmt.Sprintf("isln batch=%d", batch), nscoresOf(res.Results), nscoresOf(want))
		// Every result must be a genuine same-join-value combination.
		for _, r := range res.Results {
			for i := 1; i < len(r.Tuples); i++ {
				if r.Tuples[i].JoinValue != r.Tuples[0].JoinValue {
					t.Fatalf("result mixes join values: %v", r.Tuples)
				}
			}
		}
	}
	// ISL must not scan everything for small k at this scale.
	res, err := QueryISLN(c, q, idx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.KVReads >= 360 {
		t.Errorf("ISLN read %d KVs of 360; no early termination", res.Cost.KVReads)
	}
}

func TestISLNFourWay(t *testing.T) {
	c := newTestCluster()
	var rels []Relation
	var data [][]Tuple
	for i := 0; i < 4; i++ {
		ts := synthTuples(fmt.Sprintf("r%d", i), 60, 8, "uniform", int64(40+i))
		data = append(data, ts)
		rels = append(rels, loadRelation(t, c, fmt.Sprintf("W%d", i), ts))
	}
	q := MultiQuery{Relations: rels, Score: ProductN, K: 7}
	idx, _, err := BuildISLN(c, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := QueryISLN(c, q, idx, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopKN(data, ProductN, q.K)
	assertScoresEqual(t, "isln-4way", nscoresOf(res.Results), nscoresOf(want))
}

func TestNTopKList(t *testing.T) {
	top := NewNTopKList(2)
	add := func(score float64, keys ...string) bool {
		var ts []Tuple
		for _, k := range keys {
			ts = append(ts, Tuple{RowKey: k})
		}
		return top.Add(NJoinResult{Tuples: ts, Score: score})
	}
	if !add(0.5, "a", "b") || !add(0.9, "c", "d") {
		t.Fatal("adds rejected")
	}
	if add(0.1, "e", "f") {
		t.Fatal("below-k accepted")
	}
	if top.KthScore() != 0.5 {
		t.Fatalf("KthScore = %g", top.KthScore())
	}
	rs := top.Results()
	if rs[0].Score != 0.9 || rs[1].Score != 0.5 {
		t.Fatalf("order = %v", nscoresOf(rs))
	}
}

package core

import (
	"fmt"

	"repro/internal/kvstore"
)

// NaiveTopK is the Section 1.1 strawman: compute the full join result,
// then rank and keep k. It scans both relations through the metered
// client, hash-joins them at the coordinator, and sorts. It exists as
// the correctness oracle for every other algorithm and as the upper
// bound on shipped data.
func NaiveTopK(c *kvstore.Cluster, q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	before := c.Metrics().Snapshot()

	left, err := scanRelation(c, &q.Left)
	if err != nil {
		return nil, fmt.Errorf("core: naive scan of %s: %w", q.Left.Table, err)
	}
	right, err := scanRelation(c, &q.Right)
	if err != nil {
		return nil, fmt.Errorf("core: naive scan of %s: %w", q.Right.Table, err)
	}

	byJoin := map[string][]Tuple{}
	for _, t := range left {
		byJoin[t.JoinValue] = append(byJoin[t.JoinValue], t)
	}
	top := NewTopKList(q.K)
	for _, rt := range right {
		for _, lt := range byJoin[rt.JoinValue] {
			top.Add(JoinResult{Left: lt, Right: rt, Score: q.Score.Fn(lt.Score, rt.Score)})
		}
	}
	return &Result{
		Results: top.Results(),
		Cost:    c.Metrics().Snapshot().Sub(before),
	}, nil
}

// scanRelation drains a relation through the metered scanner.
func scanRelation(c *kvstore.Cluster, rel *Relation) ([]Tuple, error) {
	rows, err := c.ScanAll(kvstore.Scan{
		Table:    rel.Table,
		Families: []string{rel.Family},
		Caching:  1024,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Tuple, 0, len(rows))
	for i := range rows {
		if t, ok := TupleFromRow(rel, &rows[i]); ok {
			out = append(out, t)
		}
	}
	return out, nil
}

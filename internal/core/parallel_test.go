package core

import (
	"testing"

	"repro/internal/kvstore"
)

// parallelEnv loads a synthetic pair of relations big enough that the
// BFHM reverse-mapping phase needs many multi-get batches and ISL pulls
// many scan batches.
func parallelEnv(t *testing.T) (*kvstore.Cluster, Query, []Tuple, []Tuple) {
	t.Helper()
	c := newTestCluster()
	lt := synthTuples("l", 4000, 400, "uniform", 11)
	rt := synthTuples("r", 4000, 400, "uniform", 23)
	relL := loadRelation(t, c, "pl", lt)
	relR := loadRelation(t, c, "pr", rt)
	return c, Query{Left: relL, Right: relR, Score: Sum, K: 100}, lt, rt
}

func TestBFHMParallelReverseFetch(t *testing.T) {
	c, q, lt, rt := parallelEnv(t)
	idxA, _, err := BuildBFHM(c, q.Left, BFHMOptions{NumBuckets: 100})
	if err != nil {
		t.Fatal(err)
	}
	idxB, _, err := BuildBFHM(c, q.Right, BFHMOptions{NumBuckets: 100, MBits: idxA.MBits})
	if err != nil {
		t.Fatal(err)
	}

	seq, err := QueryBFHM(c, q, idxA, idxB, BFHMQueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := QueryBFHM(c, q, idxA, idxB, BFHMQueryOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	want := scoresOf(oracleTopK(lt, rt, q.Score, q.K))
	assertScoresEqual(t, "bfhm sequential", scoresOf(seq.Results), want)
	assertScoresEqual(t, "bfhm parallel", scoresOf(par.Results), want)
	verifyResultsAreRealJoins(t, "bfhm parallel", par.Results, q.Score)

	// Same rows fetched either way.
	if par.Cost.KVReads != seq.Cost.KVReads {
		t.Errorf("parallel read units %d != sequential %d", par.Cost.KVReads, seq.Cost.KVReads)
	}
	// Fan-out must beat the strictly sequential reverse fetch.
	if par.Cost.SimTime >= seq.Cost.SimTime {
		t.Errorf("parallel BFHM time %v not below sequential %v", par.Cost.SimTime, seq.Cost.SimTime)
	}
}

func TestISLParallelRefill(t *testing.T) {
	c, q, lt, rt := parallelEnv(t)
	idx, _, err := BuildISL(c, q)
	if err != nil {
		t.Fatal(err)
	}

	seq, err := QueryISL(c, q, idx, ISLOptions{BatchLeft: 40, BatchRight: 40})
	if err != nil {
		t.Fatal(err)
	}
	par, err := QueryISL(c, q, idx, ISLOptions{BatchLeft: 40, BatchRight: 40, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	want := scoresOf(oracleTopK(lt, rt, q.Score, q.K))
	assertScoresEqual(t, "isl sequential", scoresOf(seq.Results), want)
	assertScoresEqual(t, "isl parallel", scoresOf(par.Results), want)

	// The two streams' round trips overlap: turnaround drops.
	if par.Cost.SimTime >= seq.Cost.SimTime {
		t.Errorf("parallel ISL time %v not below sequential %v", par.Cost.SimTime, seq.Cost.SimTime)
	}
}

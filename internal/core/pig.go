package core

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/kvstore"
	"repro/internal/mapreduce"
)

// This file implements the Pig baseline (Section 3.1): rank-join as three
// MapReduce jobs with Pig's query-plan optimizations — early projection,
// top-k (STOP AFTER) push-down, and a sampled quantile job to balance the
// ORDER BY partitioner.
//
//	Job 1 computes the join result with early projections.
//	Job 2 samples the join result and computes quantiles for a balanced
//	      range partitioner.
//	Job 3 orders on score: map emits score-keyed records, a combiner
//	      stage produces local top-k lists, and a sole reducer emits the
//	      final top-k (Section 3.1's description, verbatim).

// pigSampleRate is Pig's default ORDER BY sampling probability.
const pigSampleRate = 100 // sample 1 in every pigSampleRate records

// pigTopKMapper is the job-3 mapper: it trims to a local top-k as it
// scans (the combiner effect of Section 3.1) and emits the survivors at
// task end.
type pigTopKMapper struct {
	q   *Query
	top *TopKList
}

// Map implements mapreduce.Mapper.
func (m *pigTopKMapper) Map(row *kvstore.Row, ctx mapreduce.Context) error {
	cell := row.Cell(tmpFamily, "p")
	if cell == nil {
		return nil
	}
	pair, err := DecodeJoinResult(cell.Value)
	if err != nil {
		return err
	}
	pair.Score = m.q.Score.Fn(pair.Left.Score, pair.Right.Score)
	m.top.Add(pair)
	return nil
}

// Finish implements mapreduce.Finisher.
func (m *pigTopKMapper) Finish(ctx mapreduce.Context) error {
	for _, r := range m.top.Results() {
		ctx.Emit("topk", EncodeJoinResult(r))
	}
	return nil
}

// QueryPig runs the Pig baseline.
func QueryPig(c *kvstore.Cluster, q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	before := c.Metrics().Snapshot()
	tmpJoin := fmt.Sprintf("tmp_pig_join_%s_%d", q.ID(), c.Now())
	defer func() { _ = c.DropTable(tmpJoin) }()

	// Job 1: join with early projection (no padding — Pig strips
	// unrelated columns in the mappers).
	if _, err := joinJob(c, &q, "pig-join-"+q.ID(), tmpJoin, 0); err != nil {
		return nil, err
	}

	// Job 2: sample the join result, compute quantiles at the reducer.
	// The quantiles build the balanced partitioner Pig's ORDER BY uses;
	// with the top-k push-down the final job needs only one reducer, but
	// Pig still runs the sampling job as part of its ORDER BY plan.
	if _, err := mapreduce.Run(&mapreduce.Job{
		Name:    "pig-sample-" + q.ID(),
		Cluster: c,
		Input:   kvstore.Scan{Table: tmpJoin},
		Mapper: mapreduce.MapperFunc(func(row *kvstore.Row, ctx mapreduce.Context) error {
			// Deterministic 1-in-N sampling on the row key hash.
			if bloom.Hash64String(row.Key)%pigSampleRate != 0 {
				return nil
			}
			cell := row.Cell(tmpFamily, "p")
			if cell == nil {
				return nil
			}
			pair, err := DecodeJoinResult(cell.Value)
			if err != nil {
				return err
			}
			score := q.Score.Fn(pair.Left.Score, pair.Right.Score)
			ctx.Emit("sample", []byte(kvstore.EncodeScoreDesc(score)))
			return nil
		}),
		Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, ctx mapreduce.Context) error {
			// Quantile split points for a balanced partitioner.
			n := c.Nodes()
			if len(values) == 0 || n < 2 {
				return nil
			}
			step := len(values) / n
			if step == 0 {
				step = 1
			}
			for i := step; i < len(values); i += step {
				ctx.Emit("quantile", values[i])
			}
			return nil
		}),
		NumReducers: 1,
	}); err != nil {
		return nil, err
	}

	// Job 3: score-ordered top-k — local top-k lists at the mappers, a
	// sole reducer merging them.
	res, err := mapreduce.Run(&mapreduce.Job{
		Name:    "pig-topk-" + q.ID(),
		Cluster: c,
		Input:   kvstore.Scan{Table: tmpJoin},
		MapperFactory: func() mapreduce.Mapper {
			return &pigTopKMapper{q: &q, top: NewTopKList(q.K)}
		},
		Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, ctx mapreduce.Context) error {
			top, err := mergeTopK(q.K, values)
			if err != nil {
				return err
			}
			for _, r := range top.Results() {
				ctx.Emit("final", EncodeJoinResult(r))
			}
			return nil
		}),
		NumReducers: 1,
	})
	if err != nil {
		return nil, err
	}
	top := NewTopKList(q.K)
	for _, kv := range res.Output {
		r, err := DecodeJoinResult(kv.Value)
		if err != nil {
			return nil, err
		}
		top.Add(r)
	}
	return &Result{Results: top.Results(), Cost: c.Metrics().Snapshot().Sub(before)}, nil
}

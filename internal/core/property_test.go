package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the core data structures and
// operator invariants.

func TestTopKListMatchesSortReference(t *testing.T) {
	f := func(scores []float64, kRaw uint8) bool {
		k := int(kRaw)%20 + 1
		top := NewTopKList(k)
		var clean []float64
		for i, s := range scores {
			if math.IsNaN(s) {
				continue
			}
			clean = append(clean, s)
			top.Add(JoinResult{
				Left:  Tuple{RowKey: tkey("l", i)},
				Right: Tuple{RowKey: tkey("r", i)},
				Score: s,
			})
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(clean)))
		if len(clean) > k {
			clean = clean[:k]
		}
		got := top.Results()
		if len(got) != len(clean) {
			return false
		}
		for i := range clean {
			if got[i].Score != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopKListKthScoreLowerBoundsContents(t *testing.T) {
	f := func(scores []float64) bool {
		top := NewTopKList(5)
		for i, s := range scores {
			if math.IsNaN(s) {
				continue
			}
			top.Add(JoinResult{Left: Tuple{RowKey: tkey("x", i)}, Score: s})
		}
		kth := top.KthScore()
		for _, r := range top.Results() {
			if r.Score < kth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHRJNThresholdIsUpperBound: at any point during execution, the HRJN
// threshold must upper-bound the score of every join result formed from
// at least one not-yet-seen tuple — the invariant Section 4.2.1's
// termination test rests on.
func TestHRJNThresholdIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		left := descending(synthTuples("l", 60, 10, "uniform", seed))
		right := descending(synthTuples("r", 60, 10, "uniform", seed+999))
		h := NewHRJN(5, Sum)
		la, lb := 0, 0
		for step := 0; step < 40; step++ {
			if step%2 == 0 && la < len(left) {
				h.PushA(left[la])
				la++
			} else if lb < len(right) {
				h.PushB(right[lb])
				lb++
			}
			if la == 0 || lb == 0 {
				continue
			}
			th := h.Threshold()
			// Any future result joins an unseen left tuple (score <=
			// left[la-1].Score) with any right tuple, or vice versa.
			for _, lt := range left[la:] {
				for _, rt := range right[:lb] {
					if lt.JoinValue == rt.JoinValue && Sum.Fn(lt.Score, rt.Score) > th+1e-9 {
						return false
					}
				}
			}
			for _, rt := range right[lb:] {
				for _, lt := range left[:la] {
					if lt.JoinValue == rt.JoinValue && Sum.Fn(lt.Score, rt.Score) > th+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEmptyRelations: every algorithm must return empty results (not
// errors) for empty inputs.
func TestEmptyRelations(t *testing.T) {
	c := newTestCluster()
	relL := loadRelation(t, c, "L", nil)
	relR := loadRelation(t, c, "R", paperR2)
	q := Query{Left: relL, Right: relR, Score: Sum, K: 5}

	if res, err := NaiveTopK(c, q); err != nil || len(res.Results) != 0 {
		t.Errorf("naive on empty: %v, %v", res, err)
	}
	if res, err := QueryHive(c, q); err != nil || len(res.Results) != 0 {
		t.Errorf("hive on empty: %v, %v", res, err)
	}
	if res, err := QueryPig(c, q); err != nil || len(res.Results) != 0 {
		t.Errorf("pig on empty: %v, %v", res, err)
	}
	ij, _, err := BuildIJLMR(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := QueryIJLMR(c, q, ij); err != nil || len(res.Results) != 0 {
		t.Errorf("ijlmr on empty: %v, %v", res, err)
	}
	isl, _, err := BuildISL(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := QueryISL(c, q, isl, ISLOptions{BatchLeft: 4, BatchRight: 4}); err != nil || len(res.Results) != 0 {
		t.Errorf("isl on empty: %v, %v", res, err)
	}
	bfL, _, err := BuildBFHM(c, relL, BFHMOptions{NumBuckets: 5})
	if err != nil {
		t.Fatal(err)
	}
	bfR, _, err := BuildBFHM(c, relR, BFHMOptions{NumBuckets: 5, MBits: bfL.MBits})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := QueryBFHM(c, q, bfL, bfR, BFHMQueryOptions{}); err != nil || len(res.Results) != 0 {
		t.Errorf("bfhm on empty: %v, %v", res, err)
	}
	drL, _, err := BuildDRJN(c, relL, DRJNOptions{NumBuckets: 5, JoinParts: 8})
	if err != nil {
		t.Fatal(err)
	}
	drR, _, err := BuildDRJN(c, relR, DRJNOptions{NumBuckets: 5, JoinParts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := QueryDRJN(c, q, drL, drR); err != nil || len(res.Results) != 0 {
		t.Errorf("drjn on empty: %v, %v", res, err)
	}
}

// TestSingleTupleRelations: one row per side.
func TestSingleTupleRelations(t *testing.T) {
	c := newTestCluster()
	left := []Tuple{{RowKey: "l1", JoinValue: "x", Score: 0.5}}
	right := []Tuple{{RowKey: "r1", JoinValue: "x", Score: 0.7}}
	relL := loadRelation(t, c, "L", left)
	relR := loadRelation(t, c, "R", right)
	q := Query{Left: relL, Right: relR, Score: Product, K: 3}
	runAll(t, c, q, left, right, false)
}

package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/sim"
)

// paperR1 and paperR2 are the running-example relations of Fig. 1.
var paperR1 = []Tuple{
	{RowKey: "r1_1", JoinValue: "d", Score: 0.82},
	{RowKey: "r1_2", JoinValue: "c", Score: 0.93},
	{RowKey: "r1_3", JoinValue: "c", Score: 0.67},
	{RowKey: "r1_4", JoinValue: "d", Score: 0.82},
	{RowKey: "r1_5", JoinValue: "a", Score: 0.73},
	{RowKey: "r1_6", JoinValue: "c", Score: 0.79},
	{RowKey: "r1_7", JoinValue: "b", Score: 0.82},
	{RowKey: "r1_8", JoinValue: "b", Score: 0.70},
	{RowKey: "r1_9", JoinValue: "d", Score: 0.68},
	{RowKey: "r1_10", JoinValue: "a", Score: 1.00},
	{RowKey: "r1_11", JoinValue: "b", Score: 0.64},
}

var paperR2 = []Tuple{
	{RowKey: "r2_1", JoinValue: "a", Score: 0.51},
	{RowKey: "r2_2", JoinValue: "b", Score: 0.91},
	{RowKey: "r2_3", JoinValue: "c", Score: 0.64},
	{RowKey: "r2_4", JoinValue: "d", Score: 0.53},
	{RowKey: "r2_5", JoinValue: "d", Score: 0.41},
	{RowKey: "r2_6", JoinValue: "d", Score: 0.50},
	{RowKey: "r2_7", JoinValue: "a", Score: 0.35},
	{RowKey: "r2_8", JoinValue: "a", Score: 0.38},
	{RowKey: "r2_9", JoinValue: "a", Score: 0.37},
	{RowKey: "r2_10", JoinValue: "c", Score: 0.31},
	{RowKey: "r2_11", JoinValue: "b", Score: 0.92},
}

// oracleTopK computes the exact top-k join from in-memory tuples,
// independent of any store or algorithm code.
func oracleTopK(left, right []Tuple, f ScoreFunc, k int) []JoinResult {
	var all []JoinResult
	for _, lt := range left {
		for _, rt := range right {
			if lt.JoinValue == rt.JoinValue {
				all = append(all, JoinResult{Left: lt, Right: rt, Score: f.Fn(lt.Score, rt.Score)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].less(&all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// scoresOf projects results onto their score list.
func scoresOf(rs []JoinResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Score
	}
	return out
}

// assertScoresEqual compares two score lists within a tolerance (all
// algorithms must return the same top-k SCORES; tie-broken tuples at the
// boundary may differ between algorithms, which is correct behaviour).
func assertScoresEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		d := got[i] - want[i]
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s: score[%d] = %.6f, want %.6f\n got: %v\nwant: %v", label, i, got[i], want[i], got, want)
		}
	}
}

// verifyResultsAreRealJoins checks every returned pair actually joins and
// carries the right aggregate score (guards against algorithms inventing
// results that happen to have plausible scores).
func verifyResultsAreRealJoins(t *testing.T, label string, rs []JoinResult, f ScoreFunc) {
	t.Helper()
	for i, r := range rs {
		if r.Left.JoinValue != r.Right.JoinValue {
			t.Fatalf("%s: result %d joins %q with %q", label, i, r.Left.JoinValue, r.Right.JoinValue)
		}
		want := f.Fn(r.Left.Score, r.Right.Score)
		if d := r.Score - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s: result %d score %.6f, want %.6f", label, i, r.Score, want)
		}
	}
}

// newTestCluster builds a 4-node LC-profile cluster.
func newTestCluster() *kvstore.Cluster {
	p := sim.LC()
	p.Nodes = 4
	c, err := kvstore.NewCluster(p, nil)
	if err != nil {
		panic(err)
	}
	return c
}

// mustCluster builds a cluster with the given profile, failing the test
// on setup errors (disk-mode scratch dir creation).
func mustCluster(t testing.TB, p sim.Profile) *kvstore.Cluster {
	t.Helper()
	c, err := kvstore.NewCluster(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// loadRelation creates a table and loads tuples as base rows.
func loadRelation(t testing.TB, c *kvstore.Cluster, name string, tuples []Tuple) Relation {
	t.Helper()
	rel := Relation{Name: name, Table: "tbl_" + name, Family: "d", JoinQual: "join", ScoreQual: "score"}
	if _, err := c.CreateTable(rel.Table, []string{rel.Family}, nil); err != nil {
		t.Fatal(err)
	}
	var cells []kvstore.Cell
	for _, tp := range tuples {
		cells = append(cells,
			kvstore.Cell{Row: tp.RowKey, Family: rel.Family, Qualifier: rel.JoinQual, Value: []byte(tp.JoinValue)},
			kvstore.Cell{Row: tp.RowKey, Family: rel.Family, Qualifier: rel.ScoreQual, Value: kvstore.FloatValue(tp.Score)},
		)
	}
	if err := c.BatchPut(rel.Table, cells); err != nil {
		t.Fatal(err)
	}
	return rel
}

// synthTuples generates n random tuples over joinCard join values with
// the given score distribution ("uniform" or "zipfish").
func synthTuples(prefix string, n, joinCard int, dist string, seed int64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		var score float64
		switch dist {
		case "zipfish":
			// Many low scores, few high ones (like the paper's Q2).
			score = 1 - rng.Float64()*rng.Float64()*0.5 - rng.Float64()*0.5
			if score <= 0 {
				score = rng.Float64() * 0.1
			}
			if score > 1 {
				score = 1
			}
		case "squared":
			// Relevance-like: concentrated near 0, sparse near 1.
			score = rng.Float64()
			score *= score
		default:
			score = rng.Float64()
		}
		// Quantize scores so duplicates occur (exercises multi-tuple
		// ISL index rows and histogram bucket edges).
		score = float64(int(score*1000)) / 1000
		out = append(out, Tuple{
			RowKey:    fmt.Sprintf("%s%05d", prefix, i),
			JoinValue: fmt.Sprintf("j%d", rng.Intn(joinCard)),
			Score:     score,
		})
	}
	return out
}

// paperQuery builds the running-example query against a loaded cluster.
func paperQuery(relL, relR Relation, k int) Query {
	return Query{Left: relL, Right: relR, Score: Sum, K: k}
}

// Package core implements the paper's rank-join algorithms over the
// kvstore/mapreduce substrate:
//
//   - Naive / Hive / Pig baselines (Section 3)
//   - IJLMR: Inverse Join List MapReduce rank join (Section 4.1)
//   - ISL: Inverse Score List rank join, an HRJN adaptation (Section 4.2)
//   - BFHM: the Bloom Filter Histogram Matrix rank join (Section 5)
//   - DRJN: the 2-D histogram comparator of Doulkeridis et al. (Section 7.1)
//   - AnyK: any-k ranked enumeration over acyclic join trees
//
// plus online index maintenance for all of them (Section 6).
//
// The general query form is an acyclic join tree (JoinTree): n
// relations as leaves, n-1 equi- or band-predicate edges, and an
// n-ary monotonic aggregate f over the leaf scores:
//
//	SELECT * FROM R1, ..., Rn WHERE <tree edges hold>
//	ORDER BY f(R1.score, ..., Rn.score) STOP AFTER k
//
// The paper's binary equi-join (Section 1.1) and the star query are
// the two trivial tree shapes (TreeFromQuery, TreeFromMulti). Results
// are returned highest-score first with deterministic tie-breaking on
// row keys in leaf order.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/kvstore"
	"repro/internal/sim"
)

// Relation identifies one rank-join input stored in the NoSQL store: a
// table whose rows each carry a join value and a normalized score.
type Relation struct {
	// Name tags the relation in index table names ("part", "lineitem").
	Name string
	// Table is the base-data table.
	Table string
	// Family is the column family holding the data columns.
	Family string
	// JoinQual / ScoreQual are the qualifiers of the join-attribute and
	// score-attribute columns.
	JoinQual  string
	ScoreQual string
}

// Tuple is the algorithm-facing view of one base row.
type Tuple struct {
	RowKey    string
	JoinValue string
	Score     float64
}

// TupleFromRow extracts a Tuple, reporting ok=false when the row lacks
// the relation's join or score column.
func TupleFromRow(rel *Relation, r *kvstore.Row) (Tuple, bool) {
	jc := r.Cell(rel.Family, rel.JoinQual)
	sc := r.Cell(rel.Family, rel.ScoreQual)
	if jc == nil || sc == nil {
		return Tuple{}, false
	}
	score, ok := kvstore.ParseFloatValue(sc.Value)
	if !ok {
		return Tuple{}, false
	}
	return Tuple{RowKey: r.Key, JoinValue: string(jc.Value), Score: score}, true
}

// JoinResult is one joined result with its aggregate score. Two-way
// joins fill Left and Right only; tree queries over more than two
// leaves carry the third and later leaves' tuples in Rest, in leaf
// order.
type JoinResult struct {
	Left  Tuple
	Right Tuple
	Rest  []Tuple
	Score float64
}

// less orders results descending by score with deterministic tie-breaks
// on the row keys in leaf order.
func (a *JoinResult) less(b *JoinResult) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Left.RowKey != b.Left.RowKey {
		return a.Left.RowKey < b.Left.RowKey
	}
	if a.Right.RowKey != b.Right.RowKey {
		return a.Right.RowKey < b.Right.RowKey
	}
	for i := 0; i < len(a.Rest) && i < len(b.Rest); i++ {
		if a.Rest[i].RowKey != b.Rest[i].RowKey {
			return a.Rest[i].RowKey < b.Rest[i].RowKey
		}
	}
	return false
}

// ScoreFunc is a named monotonic aggregate over two tuple scores.
type ScoreFunc struct {
	Name string
	Fn   func(a, b float64) float64
}

// Sum is the paper's Q2 aggregate (TotalPrice + ExtendedPrice).
var Sum = ScoreFunc{Name: "sum", Fn: func(a, b float64) float64 { return a + b }}

// Product is the paper's Q1 aggregate (RetailPrice * ExtendedPrice).
// Monotonic for non-negative scores, which the [0,1] domain guarantees.
var Product = ScoreFunc{Name: "product", Fn: func(a, b float64) float64 { return a * b }}

// Query is a two-way top-k equi-join.
type Query struct {
	Left  Relation
	Right Relation
	Score ScoreFunc
	K     int
}

// ID derives a short deterministic identifier used in temp/index table
// names.
func (q *Query) ID() string {
	return fmt.Sprintf("%s_%s_%s", q.Left.Name, q.Right.Name, q.Score.Name)
}

// Validate rejects malformed queries.
func (q *Query) Validate() error {
	if q.K < 1 {
		return fmt.Errorf("core: k = %d, want >= 1", q.K)
	}
	if q.Score.Fn == nil {
		return fmt.Errorf("core: query needs a score function")
	}
	for _, r := range []*Relation{&q.Left, &q.Right} {
		if r.Table == "" || r.Family == "" || r.JoinQual == "" || r.ScoreQual == "" {
			return fmt.Errorf("core: relation %q underspecified", r.Name)
		}
	}
	return nil
}

// Result is an executed query: the top-k list plus the resources it
// consumed (the paper's three metrics are all in Cost).
type Result struct {
	Results []JoinResult
	// Cost is the metrics delta attributable to this execution.
	Cost sim.Snapshot
	// Algorithm names the executor that produced the result.
	Algorithm string
	// Estimate is the planner's predicted cost when the execution was
	// planned (AlgoAuto); nil for hand-picked algorithms. Comparing it
	// against Cost gives the per-query estimated-vs-actual error.
	Estimate *CostEstimate
	// PlannerCost is the statistics-gathering overhead the planner
	// spent choosing this execution (already included in Cost).
	PlannerCost sim.Snapshot
	// NextPageToken, when non-empty, resumes this query where it
	// stopped: passing it back (QueryOptions.PageToken at the public
	// layer) continues the underlying cursor instead of re-running, so
	// "next k" pays marginal cost. Empty means the result set is
	// complete.
	NextPageToken string
}

// TopKList maintains the k best join results seen so far, ordered
// descending by score (ties broken on row keys for determinism).
type TopKList struct {
	k    int
	list []JoinResult
}

// NewTopKList returns an empty list with capacity k.
func NewTopKList(k int) *TopKList {
	return &TopKList{k: k}
}

// Add inserts a result, keeping only the top k. It reports whether the
// result made the list.
func (t *TopKList) Add(r JoinResult) bool {
	pos := sort.Search(len(t.list), func(i int) bool { return r.less(&t.list[i]) })
	if pos >= t.k {
		return false
	}
	t.list = append(t.list, JoinResult{})
	copy(t.list[pos+1:], t.list[pos:])
	t.list[pos] = r
	if len(t.list) > t.k {
		t.list = t.list[:t.k]
	}
	return true
}

// Len returns the current size.
func (t *TopKList) Len() int { return len(t.list) }

// Full reports whether k results are held.
func (t *TopKList) Full() bool { return len(t.list) >= t.k }

// KthScore returns the k'th (lowest retained) score, or -Inf while the
// list is not yet full. HRJN-style termination tests compare thresholds
// against this.
func (t *TopKList) KthScore() float64 {
	if !t.Full() {
		return math.Inf(-1)
	}
	return t.list[len(t.list)-1].Score
}

// MinScore returns the lowest score currently held, or -Inf when empty.
func (t *TopKList) MinScore() float64 {
	if len(t.list) == 0 {
		return math.Inf(-1)
	}
	return t.list[len(t.list)-1].Score
}

// Results returns the held results, best first.
func (t *TopKList) Results() []JoinResult {
	return append([]JoinResult(nil), t.list...)
}

// ---- Wire encoding of tuples and join pairs (MR values, temp tables) ----

func putString(buf []byte, s string) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(s)))
	buf = append(buf, l[:]...)
	return append(buf, s...)
}

func getString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("core: truncated string field")
	}
	n := int(binary.BigEndian.Uint32(buf[:4]))
	if len(buf) < 4+n {
		return "", nil, fmt.Errorf("core: truncated string payload")
	}
	return string(buf[4 : 4+n]), buf[4+n:], nil
}

func putFloat(buf []byte, f float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	return append(buf, b[:]...)
}

func getFloat(buf []byte) (float64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("core: truncated float field")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(buf[:8])), buf[8:], nil
}

// EncodeTuple serializes a Tuple.
func EncodeTuple(t Tuple) []byte {
	buf := putString(nil, t.RowKey)
	buf = putString(buf, t.JoinValue)
	return putFloat(buf, t.Score)
}

// DecodeTuple reverses EncodeTuple.
func DecodeTuple(b []byte) (Tuple, error) {
	var t Tuple
	var err error
	t.RowKey, b, err = getString(b)
	if err != nil {
		return t, err
	}
	t.JoinValue, b, err = getString(b)
	if err != nil {
		return t, err
	}
	t.Score, _, err = getFloat(b)
	return t, err
}

// EncodeJoinResult serializes a JoinResult. The codec is the MR temp
// value format of the two-way executors, so it carries Left/Right only;
// tree results (Rest) never flow through MapReduce temp tables.
func EncodeJoinResult(r JoinResult) []byte {
	buf := EncodeTuple(r.Left)
	buf = append(buf, EncodeTuple(r.Right)...)
	return putFloat(buf, r.Score)
}

// DecodeJoinResult reverses EncodeJoinResult.
func DecodeJoinResult(b []byte) (JoinResult, error) {
	var r JoinResult
	var err error
	r.Left.RowKey, b, err = getString(b)
	if err != nil {
		return r, err
	}
	r.Left.JoinValue, b, err = getString(b)
	if err != nil {
		return r, err
	}
	r.Left.Score, b, err = getFloat(b)
	if err != nil {
		return r, err
	}
	r.Right.RowKey, b, err = getString(b)
	if err != nil {
		return r, err
	}
	r.Right.JoinValue, b, err = getString(b)
	if err != nil {
		return r, err
	}
	r.Right.Score, b, err = getFloat(b)
	if err != nil {
		return r, err
	}
	r.Score, _, err = getFloat(b)
	return r, err
}

// mergeTopK folds many encoded top-k lists into one TopKList (the single
// reducer of Algorithm 2 and Pig's final stage).
func mergeTopK(k int, values [][]byte) (*TopKList, error) {
	top := NewTopKList(k)
	for _, v := range values {
		r, err := DecodeJoinResult(v)
		if err != nil {
			return nil, err
		}
		top.Add(r)
	}
	return top, nil
}

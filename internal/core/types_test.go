package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTopKListOrderingAndTrim(t *testing.T) {
	top := NewTopKList(3)
	add := func(score float64, l, r string) bool {
		return top.Add(JoinResult{
			Left:  Tuple{RowKey: l},
			Right: Tuple{RowKey: r},
			Score: score,
		})
	}
	if top.Full() {
		t.Fatal("empty list reports full")
	}
	if !math.IsInf(top.KthScore(), -1) {
		t.Fatal("KthScore of non-full list must be -Inf")
	}
	if !add(0.5, "a", "x") || !add(0.9, "b", "y") || !add(0.1, "c", "z") {
		t.Fatal("adds into non-full list must succeed")
	}
	if !top.Full() {
		t.Fatal("list should be full")
	}
	if top.KthScore() != 0.1 {
		t.Fatalf("KthScore = %g", top.KthScore())
	}
	if add(0.05, "d", "w") {
		t.Fatal("below-k add accepted")
	}
	if !add(0.7, "e", "v") {
		t.Fatal("above-k add rejected")
	}
	rs := top.Results()
	if len(rs) != 3 || rs[0].Score != 0.9 || rs[1].Score != 0.7 || rs[2].Score != 0.5 {
		t.Fatalf("results = %v", scoresOf(rs))
	}
}

func TestTopKListDeterministicTies(t *testing.T) {
	a := NewTopKList(2)
	b := NewTopKList(2)
	r1 := JoinResult{Left: Tuple{RowKey: "a"}, Right: Tuple{RowKey: "x"}, Score: 0.5}
	r2 := JoinResult{Left: Tuple{RowKey: "b"}, Right: Tuple{RowKey: "y"}, Score: 0.5}
	r3 := JoinResult{Left: Tuple{RowKey: "c"}, Right: Tuple{RowKey: "z"}, Score: 0.5}
	a.Add(r1)
	a.Add(r2)
	a.Add(r3)
	b.Add(r3)
	b.Add(r2)
	b.Add(r1)
	ra, rb := a.Results(), b.Results()
	for i := range ra {
		if ra[i].Left.RowKey != rb[i].Left.RowKey {
			t.Fatalf("tie-break not insertion-order independent: %v vs %v", ra, rb)
		}
	}
	// Ties keep the lexicographically smallest row keys.
	if ra[0].Left.RowKey != "a" || ra[1].Left.RowKey != "b" {
		t.Fatalf("tie order = %s, %s", ra[0].Left.RowKey, ra[1].Left.RowKey)
	}
}

func TestTupleCodecRoundTrip(t *testing.T) {
	f := func(rowKey, joinValue string, score float64) bool {
		if math.IsNaN(score) {
			return true
		}
		in := Tuple{RowKey: rowKey, JoinValue: joinValue, Score: score}
		out, err := DecodeTuple(EncodeTuple(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if _, err := DecodeTuple([]byte{1, 2}); err == nil {
		t.Error("truncated tuple accepted")
	}
}

func TestJoinResultCodecRoundTrip(t *testing.T) {
	in := JoinResult{
		Left:  Tuple{RowKey: "l1", JoinValue: "j", Score: 0.25},
		Right: Tuple{RowKey: "r1", JoinValue: "j", Score: 0.75},
		Score: 1.0,
	}
	out, err := DecodeJoinResult(EncodeJoinResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Left != in.Left || out.Right != in.Right || out.Score != in.Score || len(out.Rest) != 0 {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	buf := EncodeJoinResult(in)
	for _, cut := range []int{0, 3, 10, len(buf) - 1} {
		if _, err := DecodeJoinResult(buf[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	rel := Relation{Name: "r", Table: "t", Family: "d", JoinQual: "j", ScoreQual: "s"}
	q := Query{Left: rel, Right: rel, Score: Sum, K: 5}
	if err := q.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	bad := q
	bad.K = 0
	if err := bad.Validate(); err == nil {
		t.Error("k=0 accepted")
	}
	bad = q
	bad.Score = ScoreFunc{}
	if err := bad.Validate(); err == nil {
		t.Error("nil score fn accepted")
	}
	bad = q
	bad.Left.Table = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty table accepted")
	}
	if q.ID() != "r_r_sum" {
		t.Errorf("ID = %q", q.ID())
	}
}

func TestScoreFuncs(t *testing.T) {
	if Sum.Fn(0.3, 0.4) != 0.7 {
		t.Error("Sum broken")
	}
	if Product.Fn(0.5, 0.5) != 0.25 {
		t.Error("Product broken")
	}
	// Monotonicity spot checks (required by the rank-join framework).
	for _, f := range []ScoreFunc{Sum, Product} {
		if f.Fn(0.5, 0.5) > f.Fn(0.6, 0.5) || f.Fn(0.5, 0.5) > f.Fn(0.5, 0.6) {
			t.Errorf("%s not monotone", f.Name)
		}
	}
}

func TestMergeTopK(t *testing.T) {
	var values [][]byte
	for i := 0; i < 10; i++ {
		values = append(values, EncodeJoinResult(JoinResult{
			Left:  Tuple{RowKey: string(rune('a' + i))},
			Right: Tuple{RowKey: "x"},
			Score: float64(i) / 10,
		}))
	}
	top, err := mergeTopK(3, values)
	if err != nil {
		t.Fatal(err)
	}
	got := scoresOf(top.Results())
	want := []float64{0.9, 0.8, 0.7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v", got)
		}
	}
	if _, err := mergeTopK(3, [][]byte{{1}}); err == nil {
		t.Error("corrupt value accepted")
	}
}

// Package faultfs wraps a kvstore.VFS with deterministic, seedable
// fault schedules, so every failure path in the storage engine can be
// driven on purpose instead of waiting for hardware to misbehave.
//
// A schedule is a list of Rules. Each rule matches operations by path
// substring and operation kind, counts its matches, and — once its
// trigger point is reached — injects one of the classic storage
// failure modes:
//
//   - ModeErr: the operation fails outright (EIO unless Err overrides).
//   - ModeShortWrite: only a prefix of the buffer is written and the
//     short count is reported, as a full disk or signal-interrupted
//     write would.
//   - ModeTornWrite: a prefix of the buffer reaches the file but the
//     operation reports failure — the bytes-half-down state a power cut
//     mid-write leaves behind.
//   - ModeBitRot: reads succeed but one deterministically chosen bit of
//     the returned data is flipped — at-rest media corruption that only
//     checksums can catch.
//   - ModeLyingSync: Sync reports success without durability; a later
//     Crash() rolls the file back to its last honestly-synced length,
//     the way a volatile write cache loses data on power loss.
//   - ModeLatency: the operation sleeps Latency first, then proceeds —
//     for deadline and cancellation tests.
//
// All scheduling state is mutex-guarded and counter-based: the same
// rules against the same workload inject the same faults, every run.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/kvstore"
)

// Op identifies which VFS/file operation a rule matches.
type Op string

const (
	OpOpen     Op = "open"     // VFS.Open and VFS.OpenFile
	OpCreate   Op = "create"   // VFS.Create
	OpRead     Op = "read"     // File.Read and File.ReadAt
	OpWrite    Op = "write"    // File.Write
	OpSync     Op = "sync"     // File.Sync
	OpTruncate Op = "truncate" // File.Truncate
	OpRename   Op = "rename"   // VFS.Rename
	OpRemove   Op = "remove"   // VFS.Remove
	OpSyncDir  Op = "syncdir"  // VFS.SyncDir
)

// Mode selects the failure injected when a rule fires.
type Mode int

const (
	ModeErr Mode = iota
	ModeShortWrite
	ModeTornWrite
	ModeBitRot
	ModeLyingSync
	ModeLatency
)

// Rule is one entry of a fault schedule.
type Rule struct {
	// PathContains restricts the rule to paths containing the substring
	// ("" matches every path).
	PathContains string
	// Op is the operation kind the rule matches.
	Op Op
	// Nth arms the rule on the Nth matching operation (1-based; 0 arms
	// it immediately).
	Nth int
	// Count caps how many times the rule fires once armed (0 = every
	// match from the trigger on).
	Count int
	// Mode is the injected failure.
	Mode Mode
	// Err overrides the injected error for ModeErr/ModeShortWrite/
	// ModeTornWrite (nil = EIO).
	Err error
	// Latency is the sleep for ModeLatency.
	Latency time.Duration
	// Seed varies which bit ModeBitRot flips.
	Seed int64
}

// ruleState pairs a Rule with its deterministic counters. The counters
// are written only under the owning FS's mu (ruleState has no mutex of
// its own — every *ruleState lives inside exactly one FS.rules slice).
type ruleState struct {
	Rule
	matches int // operations matched so far, under the owning FS's mu
	fired   int // injections performed, under the owning FS's mu
}

// FS is a kvstore.VFS that injects the schedule's faults into the VFS
// it wraps.
type FS struct {
	base kvstore.VFS

	mu    sync.Mutex
	rules []*ruleState // guarded by: mu
	// durable tracks, per path opened through this FS, the byte length
	// known to have truly reached stable storage (set at open, advanced
	// by honest syncs). guarded by: mu
	durable map[string]int64
	// lied marks paths whose most recent Sync was answered by a
	// ModeLyingSync rule; Crash() rolls exactly these back.
	// guarded by: mu
	lied map[string]bool
}

// New wraps base (nil = the real filesystem) with the given schedule.
func New(base kvstore.VFS, rules ...Rule) *FS {
	if base == nil {
		base = kvstore.DefaultVFS()
	}
	f := &FS{base: base, durable: map[string]int64{}, lied: map[string]bool{}}
	for _, r := range rules {
		f.rules = append(f.rules, &ruleState{Rule: r})
	}
	return f
}

// AddRule appends a rule to the schedule at runtime.
func (f *FS) AddRule(r Rule) {
	f.mu.Lock()
	f.rules = append(f.rules, &ruleState{Rule: r})
	f.mu.Unlock()
}

// fire finds the first armed rule matching (op, path), advances its
// counters, and returns it. Latency rules sleep here (outside the
// lock) and keep scanning, so a latency rule can coexist with an error
// rule on the same op.
func (f *FS) fire(op Op, path string) *ruleState {
	f.mu.Lock()
	var hit *ruleState
	var sleep time.Duration
	for _, r := range f.rules {
		if r.Op != op || !strings.Contains(path, r.PathContains) {
			continue
		}
		r.matches++
		if r.Nth > 0 && r.matches < r.Nth {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		if r.Mode == ModeLatency {
			sleep += r.Latency
			continue
		}
		if hit == nil {
			hit = r
		}
	}
	f.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return hit
}

// injectedErr returns the rule's error, defaulting to EIO.
func (r *ruleState) injectedErr() error {
	if r.Err != nil {
		return r.Err
	}
	return syscall.EIO
}

// rot flips one deterministically chosen bit of p, keyed by the rule's
// seed and firing count so repeated reads rot reproducibly.
func (r *ruleState) rot(p []byte, off int64) {
	if len(p) == 0 {
		return
	}
	h := uint64(r.Seed)*2654435761 + uint64(r.fired)*1000003 + uint64(off)
	p[h%uint64(len(p))] ^= 1 << (h / 7 % 8)
}

// track records a path's currently-durable length at open time.
func (f *FS) track(path string) {
	f.mu.Lock()
	if _, ok := f.durable[path]; !ok {
		size := int64(0)
		if fi, err := os.Stat(path); err == nil {
			size = fi.Size()
		}
		f.durable[path] = size
	}
	f.mu.Unlock()
}

// Crash simulates power loss with a volatile write cache: every file
// whose last Sync was answered by a lying-sync rule is truncated back
// to its last honestly-durable length. Honest files are untouched —
// their synced bytes survived. The FS remains usable afterwards,
// modelling the post-reboot filesystem.
func (f *FS) Crash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for path, lied := range f.lied {
		if !lied {
			continue
		}
		fh, err := f.base.OpenFile(path, os.O_RDWR, 0o644)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return err
		}
		terr := fh.Truncate(f.durable[path])
		cerr := fh.Close()
		if terr != nil {
			return terr
		}
		if cerr != nil {
			return cerr
		}
		f.lied[path] = false
	}
	return nil
}

// VFS interface.

func (f *FS) OpenFile(path string, flag int, perm os.FileMode) (kvstore.File, error) {
	if r := f.fire(OpOpen, path); r != nil && r.Mode == ModeErr {
		return nil, r.injectedErr()
	}
	fh, err := f.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	f.track(path)
	return &faultFile{fs: f, f: fh, path: path}, nil
}

func (f *FS) Open(path string) (kvstore.File, error) {
	if r := f.fire(OpOpen, path); r != nil && r.Mode == ModeErr {
		return nil, r.injectedErr()
	}
	fh, err := f.base.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: fh, path: path}, nil
}

func (f *FS) Create(path string) (kvstore.File, error) {
	if r := f.fire(OpCreate, path); r != nil && r.Mode == ModeErr {
		return nil, r.injectedErr()
	}
	fh, err := f.base.Create(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.durable[path] = 0
	f.mu.Unlock()
	return &faultFile{fs: f, f: fh, path: path}, nil
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.base.MkdirAll(path, perm) }

func (f *FS) ReadDir(path string) ([]fs.DirEntry, error) { return f.base.ReadDir(path) }

func (f *FS) Rename(oldpath, newpath string) error {
	if r := f.fire(OpRename, oldpath); r != nil && r.Mode == ModeErr {
		return r.injectedErr()
	}
	if err := f.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if d, ok := f.durable[oldpath]; ok {
		f.durable[newpath] = d
		delete(f.durable, oldpath)
	}
	if l, ok := f.lied[oldpath]; ok {
		f.lied[newpath] = l
		delete(f.lied, oldpath)
	}
	f.mu.Unlock()
	return nil
}

func (f *FS) Remove(path string) error {
	if r := f.fire(OpRemove, path); r != nil && r.Mode == ModeErr {
		return r.injectedErr()
	}
	if err := f.base.Remove(path); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.durable, path)
	delete(f.lied, path)
	f.mu.Unlock()
	return nil
}

func (f *FS) SyncDir(path string) error {
	if r := f.fire(OpSyncDir, path); r != nil {
		switch r.Mode {
		case ModeErr:
			return r.injectedErr()
		case ModeLyingSync:
			return nil
		}
	}
	return f.base.SyncDir(path)
}

// faultFile wraps one open handle, injecting the schedule's read,
// write, and sync faults.
type faultFile struct {
	fs   *FS
	f    kvstore.File
	path string
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if r := ff.fs.fire(OpRead, ff.path); r != nil {
		switch r.Mode {
		case ModeErr:
			return 0, r.injectedErr()
		case ModeBitRot:
			n, err := ff.f.Read(p)
			r.rot(p[:n], -1)
			return n, err
		}
	}
	return ff.f.Read(p)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if r := ff.fs.fire(OpRead, ff.path); r != nil {
		switch r.Mode {
		case ModeErr:
			return 0, r.injectedErr()
		case ModeBitRot:
			n, err := ff.f.ReadAt(p, off)
			r.rot(p[:n], off)
			return n, err
		}
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if r := ff.fs.fire(OpWrite, ff.path); r != nil {
		switch r.Mode {
		case ModeErr:
			return 0, r.injectedErr()
		case ModeShortWrite:
			n, err := ff.f.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, io.ErrShortWrite
		case ModeTornWrite:
			// A prefix lands; the caller is told nothing did.
			ff.f.Write(p[:len(p)/2]) //nolint:errcheck
			return 0, r.injectedErr()
		}
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) { return ff.f.Seek(offset, whence) }

func (ff *faultFile) Close() error { return ff.f.Close() }

func (ff *faultFile) Truncate(size int64) error {
	if r := ff.fs.fire(OpTruncate, ff.path); r != nil && r.Mode == ModeErr {
		return r.injectedErr()
	}
	if err := ff.f.Truncate(size); err != nil {
		return err
	}
	ff.fs.mu.Lock()
	if d, ok := ff.fs.durable[ff.path]; ok && size < d {
		ff.fs.durable[ff.path] = size
	}
	ff.fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Sync() error {
	if r := ff.fs.fire(OpSync, ff.path); r != nil {
		switch r.Mode {
		case ModeErr:
			return r.injectedErr()
		case ModeLyingSync:
			ff.fs.mu.Lock()
			ff.fs.lied[ff.path] = true
			ff.fs.mu.Unlock()
			return nil
		}
	}
	if err := ff.f.Sync(); err != nil {
		return err
	}
	ff.fs.mu.Lock()
	if fi, err := ff.f.Stat(); err == nil {
		ff.fs.durable[ff.path] = fi.Size()
	}
	ff.fs.lied[ff.path] = false
	ff.fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Stat() (fs.FileInfo, error) { return ff.f.Stat() }

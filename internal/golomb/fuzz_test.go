package golomb

import "testing"

// FuzzGolombRoundTrip checks EncodeAll/DecodeAll identity across
// parameters. Values and m are bounded: the unary quotient grows as
// v/m, so an unbounded v with a tiny m would make the encoder itself
// the bottleneck, not the property under test.
func FuzzGolombRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(2), uint64(3), uint64(10))
	f.Add(uint64(1000), uint64(0), uint64(999), uint64(500), uint64(1))
	f.Add(uint64(7), uint64(7), uint64(7), uint64(7), uint64(64))
	f.Fuzz(func(t *testing.T, a, b, c, d, m uint64) {
		m = m%4096 + 1
		vals := []uint64{a % (1 << 20), b % (1 << 20), c % (1 << 20), d % (1 << 20)}
		buf := EncodeAll(vals, m)
		got, err := DecodeAll(buf, m, len(vals))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v (m=%d vals=%v)", err, m, vals)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("round trip mismatch at %d: %v -> %v (m=%d)", i, vals, got, m)
			}
		}
	})
}

// FuzzSortedSetRoundTrip checks the Golomb Compressed Set delta codec
// on strictly increasing positions built from bounded gaps.
func FuzzSortedSetRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(10))
	f.Add(uint64(5), uint64(100), uint64(1), uint64(30), uint64(3))
	f.Fuzz(func(t *testing.T, start, g1, g2, g3, m uint64) {
		m = m%4096 + 1
		pos := []uint64{start % (1 << 20)}
		for _, g := range []uint64{g1, g2, g3} {
			pos = append(pos, pos[len(pos)-1]+g%(1<<16)+1)
		}
		buf, err := EncodeSortedSet(pos, m)
		if err != nil {
			t.Fatalf("encode of strictly increasing positions failed: %v (%v)", err, pos)
		}
		got, err := DecodeSortedSet(buf, m, len(pos))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v (m=%d pos=%v)", err, m, pos)
		}
		for i := range pos {
			if got[i] != pos[i] {
				t.Fatalf("round trip mismatch at %d: %v -> %v (m=%d)", i, pos, got, m)
			}
		}
	})
}

// FuzzDecodeNoPanic feeds arbitrary bytes to both decoders: corrupt
// streams must produce errors (or bogus values), never panics or
// unbounded loops.
func FuzzDecodeNoPanic(f *testing.F) {
	f.Add([]byte{}, uint64(0), byte(1))
	f.Add([]byte{0xff, 0xff, 0xff}, uint64(3), byte(8))
	f.Add([]byte{0x00, 0x80, 0x01}, uint64(1), byte(4))
	f.Fuzz(func(t *testing.T, buf []byte, m uint64, n byte) {
		m = m % 5000 // 0 included: decoders must clamp like NewEncoder
		count := int(n % 64)
		if _, err := DecodeAll(buf, m, count); err != nil {
			_ = err
		}
		if _, err := DecodeSortedSet(buf, m, count); err != nil {
			_ = err
		}
	})
}

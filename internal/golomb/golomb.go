// Package golomb implements Golomb and Golomb-Rice run-length coding of
// non-negative integers over bit streams.
//
// The BFHM index (Section 5.1 of the paper) stores each histogram bucket's
// Bloom filter bitmap and counter table Golomb-compressed. A Golomb code
// with parameter M encodes a value v as a unary quotient q = v/M followed
// by a truncated-binary remainder r = v%M. When M is a power of two the
// code degenerates to a Rice code and the remainder is a plain binary
// field. Golomb codes are optimal for geometrically distributed values,
// which is exactly the distribution of gaps between set bits in a sparse
// Bloom filter.
package golomb

import (
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is returned when a decoder runs off the end of its input or
// encounters an impossible code word.
var ErrCorrupt = errors.New("golomb: corrupt or truncated stream")

// OptimalM returns the Golomb parameter that minimizes the expected code
// length for geometrically distributed values with success probability p
// (i.e. values are gaps between events that each occur with probability p).
// The classical result is M = ceil(-1 / log2(1-p)), clamped to at least 1.
func OptimalM(p float64) uint64 {
	if p <= 0 {
		return 1 << 30 // effectively fixed-width; callers should avoid p=0
	}
	if p >= 1 {
		return 1
	}
	m := math.Ceil(-1 / math.Log2(1-p))
	if m < 1 || math.IsNaN(m) || math.IsInf(m, 0) {
		return 1
	}
	return uint64(m)
}

// OptimalRiceK returns the Rice parameter k (M = 2^k) closest to the
// optimal Golomb parameter for gap probability p.
func OptimalRiceK(p float64) uint {
	m := OptimalM(p)
	k := uint(0)
	for (uint64(1) << (k + 1)) <= m {
		k++
	}
	return k
}

// BitWriter accumulates bits most-significant-first into a byte slice.
// The zero value is ready to use.
type BitWriter struct {
	buf  []byte
	nbit uint8 // bits used in the final byte, 0..7 (0 means byte is full/absent)
}

// WriteBit appends a single bit (0 or 1).
func (w *BitWriter) WriteBit(b uint) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
		w.nbit = 8
	}
	w.nbit--
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << w.nbit
	}
	if w.nbit == 0 {
		// next WriteBit will allocate a fresh byte
	}
}

// WriteBits appends the low n bits of v, most significant first.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint((v >> uint(i)) & 1))
	}
}

// WriteUnary appends q one-bits followed by a zero bit.
func (w *BitWriter) WriteUnary(q uint64) {
	for i := uint64(0); i < q; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// Len returns the number of whole bytes needed to hold the written bits.
func (w *BitWriter) Len() int { return len(w.buf) }

// Bits returns the total number of bits written so far.
func (w *BitWriter) Bits() int {
	if len(w.buf) == 0 {
		return 0
	}
	return len(w.buf)*8 - int(w.nbit)
}

// Bytes returns the encoded bytes. The final byte is zero-padded.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes bits most-significant-first from a byte slice.
type BitReader struct {
	buf []byte
	pos int   // byte position
	bit uint8 // next bit within buf[pos], 7..0 counting down
}

// NewBitReader returns a reader over b.
func NewBitReader(b []byte) *BitReader {
	return &BitReader{buf: b, bit: 7}
}

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrCorrupt
	}
	v := uint(r.buf[r.pos]>>r.bit) & 1
	if r.bit == 0 {
		r.bit = 7
		r.pos++
	} else {
		r.bit--
	}
	return v, nil
}

// ReadBits reads n bits MSB-first.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUnary reads a unary-coded quotient (count of 1 bits before a 0).
func (r *BitReader) ReadUnary() (uint64, error) {
	var q uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return q, nil
		}
		q++
		if q > 1<<40 {
			return 0, fmt.Errorf("golomb: unary run too long: %w", ErrCorrupt)
		}
	}
}

// Encoder writes Golomb-coded values with a fixed parameter M.
type Encoder struct {
	w BitWriter
	m uint64
	b uint // bits in truncated binary remainder: ceil(log2 m)
	t uint64
}

// NewEncoder returns an encoder with parameter m (m >= 1).
func NewEncoder(m uint64) *Encoder {
	if m < 1 {
		m = 1
	}
	b := uint(0)
	for (uint64(1) << b) < m {
		b++
	}
	// t = 2^b - m values get the short (b-1 bit) remainder form.
	t := (uint64(1) << b) - m
	return &Encoder{m: m, b: b, t: t}
}

// M returns the Golomb parameter.
func (e *Encoder) M() uint64 { return e.m }

// Put encodes one value.
func (e *Encoder) Put(v uint64) {
	q := v / e.m
	rem := v % e.m
	e.w.WriteUnary(q)
	if e.m == 1 {
		return
	}
	if rem < e.t {
		e.w.WriteBits(rem, e.b-1)
	} else {
		e.w.WriteBits(rem+e.t, e.b)
	}
}

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.w.Bytes() }

// Bits returns the number of bits written.
func (e *Encoder) Bits() int { return e.w.Bits() }

// Decoder reads Golomb-coded values with a fixed parameter M.
type Decoder struct {
	r *BitReader
	m uint64
	b uint
	t uint64
}

// NewDecoder returns a decoder for stream buf with parameter m.
func NewDecoder(buf []byte, m uint64) *Decoder {
	if m < 1 {
		m = 1
	}
	b := uint(0)
	for (uint64(1) << b) < m {
		b++
	}
	t := (uint64(1) << b) - m
	return &Decoder{r: NewBitReader(buf), m: m, b: b, t: t}
}

// Get decodes one value.
func (d *Decoder) Get() (uint64, error) {
	q, err := d.r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if d.m == 1 {
		return q, nil
	}
	var rem uint64
	if d.b > 0 {
		rem, err = d.r.ReadBits(d.b - 1)
		if err != nil {
			return 0, err
		}
		if rem >= d.t {
			bit, err := d.r.ReadBit()
			if err != nil {
				return 0, err
			}
			rem = rem<<1 | uint64(bit)
			rem -= d.t
		}
	}
	if rem >= d.m {
		return 0, ErrCorrupt
	}
	return q*d.m + rem, nil
}

// EncodeAll Golomb-encodes values with parameter m and returns the stream.
func EncodeAll(values []uint64, m uint64) []byte {
	e := NewEncoder(m)
	for _, v := range values {
		e.Put(v)
	}
	return e.Bytes()
}

// DecodeAll decodes exactly n values from buf with parameter m.
func DecodeAll(buf []byte, m uint64, n int) ([]uint64, error) {
	d := NewDecoder(buf, m)
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		v, err := d.Get()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// EncodeSortedSet delta-encodes a strictly increasing sequence of set
// positions (a Golomb Compressed Set). The first value is stored as-is and
// each subsequent value as the gap minus one from its predecessor.
func EncodeSortedSet(positions []uint64, m uint64) ([]byte, error) {
	e := NewEncoder(m)
	prev := uint64(0)
	for i, p := range positions {
		if i == 0 {
			e.Put(p)
		} else {
			if p <= prev {
				return nil, fmt.Errorf("golomb: positions not strictly increasing at %d (%d after %d)", i, p, prev)
			}
			e.Put(p - prev - 1)
		}
		prev = p
	}
	return e.Bytes(), nil
}

// DecodeSortedSet reverses EncodeSortedSet for n positions.
func DecodeSortedSet(buf []byte, m uint64, n int) ([]uint64, error) {
	d := NewDecoder(buf, m)
	out := make([]uint64, 0, n)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v, err := d.Get()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			prev = v
		} else {
			prev = prev + v + 1
		}
		out = append(out, prev)
	}
	return out, nil
}

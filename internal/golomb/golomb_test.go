package golomb

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	var w BitWriter
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	if got := w.Bits(); got != len(bits) {
		t.Fatalf("Bits() = %d, want %d", got, len(bits))
	}
	r := NewBitReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestBitWriterWriteBits(t *testing.T) {
	var w BitWriter
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 3)
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Errorf("first field = %b, want 1011", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Errorf("second field = %x, want ff", v)
	}
	if v, _ := r.ReadBits(3); v != 0 {
		t.Errorf("third field = %b, want 0", v)
	}
}

func TestUnary(t *testing.T) {
	var w BitWriter
	for q := uint64(0); q < 20; q++ {
		w.WriteUnary(q)
	}
	r := NewBitReader(w.Bytes())
	for q := uint64(0); q < 20; q++ {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("ReadUnary(%d): %v", q, err)
		}
		if got != q {
			t.Fatalf("ReadUnary = %d, want %d", got, q)
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewBitReader(nil)
	if _, err := r.ReadBit(); err == nil {
		t.Error("ReadBit on empty stream should error")
	}
	r = NewBitReader([]byte{0xFF})
	if _, err := r.ReadUnary(); err == nil {
		t.Error("ReadUnary on all-ones stream should error (no terminator)")
	}
}

func TestEncoderDecoderExhaustiveSmall(t *testing.T) {
	for m := uint64(1); m <= 17; m++ {
		var vals []uint64
		for v := uint64(0); v < 50; v++ {
			vals = append(vals, v)
		}
		buf := EncodeAll(vals, m)
		got, err := DecodeAll(buf, m, len(vals))
		if err != nil {
			t.Fatalf("m=%d: decode: %v", m, err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("m=%d: round trip mismatch\n got %v\nwant %v", m, got, vals)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32, mseed uint16) bool {
		m := uint64(mseed)%1000 + 1
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = uint64(v) % 100000
		}
		buf := EncodeAll(vals, m)
		got, err := DecodeAll(buf, m, len(vals))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, vals) || (len(got) == 0 && len(vals) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortedSetRoundTrip(t *testing.T) {
	positions := []uint64{0, 1, 5, 6, 100, 10000, 10001}
	buf, err := EncodeSortedSet(positions, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSortedSet(buf, 64, len(positions))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, positions) {
		t.Fatalf("round trip mismatch: got %v want %v", got, positions)
	}
}

func TestSortedSetRejectsNonIncreasing(t *testing.T) {
	if _, err := EncodeSortedSet([]uint64{3, 3}, 4); err == nil {
		t.Error("duplicate positions should be rejected")
	}
	if _, err := EncodeSortedSet([]uint64{5, 2}, 4); err == nil {
		t.Error("decreasing positions should be rejected")
	}
}

func TestSortedSetProperty(t *testing.T) {
	f := func(raw []uint16, mseed uint8) bool {
		m := uint64(mseed)%255 + 1
		seen := map[uint64]bool{}
		var pos []uint64
		for _, v := range raw {
			seen[uint64(v)] = true
		}
		for v := uint64(0); v < 1<<16; v++ {
			if seen[v] {
				pos = append(pos, v)
			}
		}
		buf, err := EncodeSortedSet(pos, m)
		if err != nil {
			return false
		}
		got, err := DecodeSortedSet(buf, m, len(pos))
		if err != nil {
			return false
		}
		if len(pos) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, pos)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOptimalM(t *testing.T) {
	cases := []struct {
		p    float64
		want uint64
	}{
		{0.5, 1},
		{0.2, 4}, // -1/log2(0.8) = 3.1 -> ceil 4
		{0.01, 69},
	}
	for _, c := range cases {
		if got := OptimalM(c.p); got != c.want {
			t.Errorf("OptimalM(%g) = %d, want %d", c.p, got, c.want)
		}
	}
	if OptimalM(0) == 0 {
		t.Error("OptimalM(0) must be positive")
	}
	if OptimalM(1.5) != 1 {
		t.Error("OptimalM(>=1) should clamp to 1")
	}
}

func TestOptimalRiceK(t *testing.T) {
	if k := OptimalRiceK(0.5); k != 0 {
		t.Errorf("OptimalRiceK(0.5) = %d, want 0", k)
	}
	if k := OptimalRiceK(0.01); k < 5 || k > 7 {
		t.Errorf("OptimalRiceK(0.01) = %d, want around 6", k)
	}
}

func TestCompressionBeatsRawForSparseSets(t *testing.T) {
	// A sparse set of 100 positions in a 100k universe should compress to
	// far fewer bytes than the 12.5 kB raw bitmap.
	rng := rand.New(rand.NewSource(42))
	seen := map[uint64]bool{}
	for len(seen) < 100 {
		seen[uint64(rng.Intn(100000))] = true
	}
	var pos []uint64
	for v := uint64(0); v < 100000; v++ {
		if seen[v] {
			pos = append(pos, v)
		}
	}
	m := OptimalM(float64(len(pos)) / 100000.0)
	buf, err := EncodeSortedSet(pos, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > 400 {
		t.Errorf("compressed size %d bytes; expected ~150 bytes for 100 gaps", len(buf))
	}
	got, err := DecodeSortedSet(buf, m, len(pos))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pos) {
		t.Error("round trip mismatch")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// A stream of all ones never terminates its unary part.
	if _, err := DecodeAll([]byte{0xFF, 0xFF}, 3, 5); err == nil {
		t.Error("expected corrupt-stream error")
	}
}

func BenchmarkEncode1k(b *testing.B) {
	vals := make([]uint64, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = uint64(rng.Intn(500))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeAll(vals, 64)
	}
}

func BenchmarkDecode1k(b *testing.B) {
	vals := make([]uint64, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = uint64(rng.Intn(500))
	}
	buf := EncodeAll(vals, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAll(buf, 64, len(vals)); err != nil {
			b.Fatal(err)
		}
	}
}

package histogram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bloom"
)

// DRJNMatrix is the 2-D equi-width histogram of Doulkeridis et al. [8] as
// adapted in Section 7.1: join values are hashed into JoinParts partitions
// (the x-axis) and scores into the Layout's buckets (the y-axis). Each
// cell counts tuples whose join value hashes to that partition and whose
// score falls in that band. The paper stores all cells of one score band
// as columns of a single row so the coordinator fetches a full band with
// one Get.
type DRJNMatrix struct {
	Layout    Layout
	JoinParts int
	cells     [][]uint64 // [scoreBand][joinPartition] -> count
	mins      []float64  // observed min score per band
	maxs      []float64  // observed max score per band
	nonEmpty  []bool
}

// NewDRJNMatrix returns an empty matrix.
func NewDRJNMatrix(l Layout, joinParts int) (*DRJNMatrix, error) {
	if joinParts < 1 {
		return nil, fmt.Errorf("histogram: join partitions %d < 1", joinParts)
	}
	m := &DRJNMatrix{
		Layout:    l,
		JoinParts: joinParts,
		cells:     make([][]uint64, l.Buckets),
		mins:      make([]float64, l.Buckets),
		maxs:      make([]float64, l.Buckets),
		nonEmpty:  make([]bool, l.Buckets),
	}
	for i := range m.cells {
		m.cells[i] = make([]uint64, joinParts)
	}
	return m, nil
}

// Partition maps a join value to its x-axis partition.
func (m *DRJNMatrix) Partition(joinValue string) int {
	return int(bloom.Hash64String(joinValue) % uint64(m.JoinParts))
}

// Add records a tuple.
func (m *DRJNMatrix) Add(joinValue string, score float64) {
	band := m.Layout.BucketOf(score)
	part := m.Partition(joinValue)
	m.cells[band][part]++
	if !m.nonEmpty[band] {
		m.mins[band], m.maxs[band] = score, score
		m.nonEmpty[band] = true
	} else {
		if score < m.mins[band] {
			m.mins[band] = score
		}
		if score > m.maxs[band] {
			m.maxs[band] = score
		}
	}
}

// Remove decrements the cell for a tuple previously added. Observed
// min/max are left untouched (they stay conservative bounds).
func (m *DRJNMatrix) Remove(joinValue string, score float64) {
	band := m.Layout.BucketOf(score)
	part := m.Partition(joinValue)
	if m.cells[band][part] > 0 {
		m.cells[band][part]--
	}
}

// Band returns the counts of one score band (shared slice; do not mutate).
func (m *DRJNMatrix) Band(band int) []uint64 { return m.cells[band] }

// BandBounds returns the observed [min,max] scores of a band; ok=false if
// the band is empty (bounds then fall back to bucket boundaries).
func (m *DRJNMatrix) BandBounds(band int) (lo, hi float64, ok bool) {
	if !m.nonEmpty[band] {
		lo, hi = m.Layout.Range(band)
		return lo, hi, false
	}
	return m.mins[band], m.maxs[band], true
}

// JoinBands estimates the number of join results between band a of this
// matrix and band b of other: the dot product of the two bands' partition
// vectors (tuples join only if they hash to the same partition; within a
// partition the estimate assumes full cross-product, which can only
// overestimate for equi-joins under the uniform assumption).
func (m *DRJNMatrix) JoinBands(a int, other *DRJNMatrix, b int) (uint64, error) {
	if m.JoinParts != other.JoinParts {
		return 0, errors.New("histogram: DRJN matrices have different partition counts")
	}
	var est uint64
	va, vb := m.cells[a], other.cells[b]
	for i := range va {
		est += va[i] * vb[i]
	}
	return est, nil
}

// MarshalBand encodes one band's cells plus bounds for storage as an
// index row value.
func (m *DRJNMatrix) MarshalBand(band int) []byte {
	lo, hi, ok := m.BandBounds(band)
	return MarshalBandData(m.cells[band], lo, hi, ok)
}

// MarshalBandData encodes a raw band (the DRJN index builder's reducers
// assemble bands without a full matrix).
func MarshalBandData(cells []uint64, lo, hi float64, nonEmpty bool) []byte {
	buf := make([]byte, 0, 25+8*len(cells))
	var f [8]byte
	binary.BigEndian.PutUint64(f[:], uint64(len(cells)))
	buf = append(buf, f[:]...)
	binary.BigEndian.PutUint64(f[:], math.Float64bits(lo))
	buf = append(buf, f[:]...)
	binary.BigEndian.PutUint64(f[:], math.Float64bits(hi))
	buf = append(buf, f[:]...)
	if nonEmpty {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, c := range cells {
		binary.BigEndian.PutUint64(f[:], c)
		buf = append(buf, f[:]...)
	}
	return buf
}

// PartitionOf maps a join value to its x-axis partition for a given
// partition count (standalone version of DRJNMatrix.Partition).
func PartitionOf(joinValue string, parts int) int {
	return int(bloom.Hash64String(joinValue) % uint64(parts))
}

// BandData is a decoded DRJN band row.
type BandData struct {
	Cells    []uint64
	Lo, Hi   float64
	NonEmpty bool
}

// UnmarshalBand decodes a band row written by MarshalBand.
func UnmarshalBand(data []byte) (*BandData, error) {
	if len(data) < 25 {
		return nil, errors.New("histogram: truncated DRJN band")
	}
	parts := int(binary.BigEndian.Uint64(data[0:8]))
	lo := math.Float64frombits(binary.BigEndian.Uint64(data[8:16]))
	hi := math.Float64frombits(binary.BigEndian.Uint64(data[16:24]))
	ok := data[24] == 1
	if len(data) < 25+8*parts {
		return nil, errors.New("histogram: truncated DRJN band cells")
	}
	cells := make([]uint64, parts)
	for i := 0; i < parts; i++ {
		cells[i] = binary.BigEndian.Uint64(data[25+8*i : 33+8*i])
	}
	return &BandData{Cells: cells, Lo: lo, Hi: hi, NonEmpty: ok}, nil
}

// DotProduct estimates the join size between two decoded bands.
func DotProduct(a, b *BandData) (uint64, error) {
	if len(a.Cells) != len(b.Cells) {
		return 0, errors.New("histogram: band partition mismatch")
	}
	var est uint64
	for i := range a.Cells {
		est += a.Cells[i] * b.Cells[i]
	}
	return est, nil
}

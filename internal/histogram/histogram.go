// Package histogram provides the equi-width score histograms underlying
// the BFHM index (Section 5.1) and the 2-D join-value x score matrix of
// the DRJN comparator (Section 7.1, after Doulkeridis et al.).
//
// Bucket numbering follows the paper: scores lie in [lo, hi] and bucket 0
// covers the TOP of the range. For scores in [0,1] with 10 buckets, bucket
// 0 is [0.9, 1.0], bucket 1 is [0.8, 0.9), ..., bucket 9 is [0.0, 0.1).
// (The paper's prose writes the ranges as (0.9, 1.0] but its worked
// figures — Fig. 5 and Fig. 6, where 0.70 lands in the 0.7–0.8 bucket and
// 0.50 in the 0.5–0.6 bucket — use bottom-inclusive ranges; we follow the
// figures so the running example reproduces exactly.)
// Scanning bucket keys in increasing order is a descending-score scan,
// matching the NoSQL store's ascending-key-only scanners.
package histogram

import (
	"fmt"
	"math"
)

// Layout captures an equi-width bucketing of a closed score range.
type Layout struct {
	Lo, Hi  float64 // score domain [Lo, Hi]
	Buckets int     // number of equi-width buckets
}

// NewLayout validates and returns a Layout.
func NewLayout(lo, hi float64, buckets int) (Layout, error) {
	if buckets < 1 {
		return Layout{}, fmt.Errorf("histogram: bucket count %d < 1", buckets)
	}
	if !(lo < hi) {
		return Layout{}, fmt.Errorf("histogram: empty score domain [%g, %g]", lo, hi)
	}
	return Layout{Lo: lo, Hi: hi, Buckets: buckets}, nil
}

// Width returns the spread of one bucket.
func (l Layout) Width() float64 {
	return (l.Hi - l.Lo) / float64(l.Buckets)
}

// BucketOf maps a score to its bucket number (0 = highest scores).
// Scores outside the domain are clamped to the extreme buckets. A score
// within 1e-9 bucket-widths of a boundary is treated as sitting exactly on
// it and assigned to the higher-score bucket (bottom-inclusive ranges).
func (l Layout) BucketOf(score float64) int {
	if score >= l.Hi {
		return 0
	}
	if score <= l.Lo {
		return l.Buckets - 1
	}
	d := (score - l.Lo) * float64(l.Buckets) / (l.Hi - l.Lo)
	idx := int(math.Floor(d + 1e-9))
	b := l.Buckets - 1 - idx
	if b < 0 {
		b = 0
	}
	if b >= l.Buckets {
		b = l.Buckets - 1
	}
	return b
}

// Range returns the score interval [lo, hi) covered by bucket b (bucket 0
// is closed at the top: [lo, Hi]). Adjacent buckets share boundary values
// exactly (lo of bucket b equals hi of bucket b+1) so the buckets tile the
// domain with no floating-point gaps.
func (l Layout) Range(b int) (lo, hi float64) {
	w := l.Width()
	hi = l.Hi - float64(b)*w
	lo = l.Hi - float64(b+1)*w
	if b == 0 {
		hi = l.Hi
	}
	if b == l.Buckets-1 {
		lo = l.Lo
	}
	return lo, hi
}

// MaxScore returns the largest score representable in bucket b.
func (l Layout) MaxScore(b int) float64 {
	_, hi := l.Range(b)
	return hi
}

// MinScore returns the smallest score representable in bucket b.
func (l Layout) MinScore(b int) float64 {
	lo, _ := l.Range(b)
	return lo
}

// Bucket is one row of a simple counting histogram: the tuple count plus
// the actual min and max scores observed in the bucket (the BFHM stores
// observed extremes, not bucket boundaries, for tighter bounds).
type Bucket struct {
	Count    uint64
	MinSeen  float64
	MaxSeen  float64
	nonEmpty bool
}

// Add records a score in the bucket.
func (b *Bucket) Add(score float64) {
	if !b.nonEmpty {
		b.MinSeen, b.MaxSeen = score, score
		b.nonEmpty = true
	} else {
		if score < b.MinSeen {
			b.MinSeen = score
		}
		if score > b.MaxSeen {
			b.MaxSeen = score
		}
	}
	b.Count++
}

// Empty reports whether the bucket holds no tuples.
func (b *Bucket) Empty() bool { return !b.nonEmpty }

// Histogram is an equi-width counting histogram over scores.
type Histogram struct {
	Layout  Layout
	buckets []Bucket
}

// New returns an empty histogram with the given layout.
func New(l Layout) *Histogram {
	return &Histogram{Layout: l, buckets: make([]Bucket, l.Buckets)}
}

// Add records a score.
func (h *Histogram) Add(score float64) int {
	b := h.Layout.BucketOf(score)
	h.buckets[b].Add(score)
	return b
}

// Bucket returns bucket b (read-only view).
func (h *Histogram) Bucket(b int) Bucket { return h.buckets[b] }

// Total returns the number of recorded scores.
func (h *Histogram) Total() uint64 {
	var t uint64
	for i := range h.buckets {
		t += h.buckets[i].Count
	}
	return t
}

// HeaviestBucket returns the index and count of the most populated bucket;
// the paper sizes every bucket's Bloom filter for this count.
func (h *Histogram) HeaviestBucket() (idx int, count uint64) {
	for i := range h.buckets {
		if h.buckets[i].Count > count {
			idx, count = i, h.buckets[i].Count
		}
	}
	return idx, count
}

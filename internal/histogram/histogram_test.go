package histogram

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustLayout(t *testing.T, lo, hi float64, n int) Layout {
	t.Helper()
	l, err := NewLayout(lo, hi, n)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(0, 1, 0); err == nil {
		t.Error("zero buckets must be rejected")
	}
	if _, err := NewLayout(1, 1, 10); err == nil {
		t.Error("empty domain must be rejected")
	}
	if _, err := NewLayout(2, 1, 10); err == nil {
		t.Error("inverted domain must be rejected")
	}
}

func TestBucketOfPaperExample(t *testing.T) {
	// Paper Section 5.1 / Figs. 5-6: scores in [0,1], 10 buckets; bucket
	// 0 covers [0.9, 1.0], bucket 1 covers [0.8, 0.9), etc. (bottom-
	// inclusive, as the worked figures use: 0.70 lands in 0.7-0.8).
	l := mustLayout(t, 0, 1, 10)
	cases := []struct {
		score float64
		want  int
	}{
		{1.00, 0},
		{0.95, 0},
		{0.91, 0},
		{0.90, 0}, // boundary belongs to the higher bucket: [0.9, 1.0]
		{0.82, 1},
		{0.80, 1},
		{0.70, 2},
		{0.67, 3},
		{0.64, 3},
		{0.50, 4},
		{0.35, 6},
		{0.31, 6},
		{0.05, 9},
		{0.0, 9},
	}
	for _, c := range cases {
		if got := l.BucketOf(c.score); got != c.want {
			t.Errorf("BucketOf(%g) = %d, want %d", c.score, got, c.want)
		}
	}
}

func TestBucketOfRunningExampleTuples(t *testing.T) {
	// Fig. 5 assigns: bucket 0 holds 0.91..1.00, bucket 1 holds 0.82,
	// bucket 2 holds 0.70..0.79, bucket 3 holds 0.64..0.68, bucket 4
	// holds 0.50..0.53, bucket 5 holds 0.41, bucket 6 holds 0.31..0.38.
	l := mustLayout(t, 0, 1, 10)
	byBucket := map[int][]float64{
		0: {1.00, 0.93, 0.92, 0.91},
		1: {0.82, 0.82, 0.82},
		2: {0.73, 0.70, 0.79},
		3: {0.64, 0.67, 0.68, 0.64},
		4: {0.51, 0.53, 0.50},
		5: {0.41},
		6: {0.35, 0.38, 0.37, 0.31},
	}
	for want, scores := range byBucket {
		for _, s := range scores {
			if got := l.BucketOf(s); got != want {
				t.Errorf("BucketOf(%g) = %d, want %d", s, got, want)
			}
		}
	}
}

func TestRangeInverseOfBucketOf(t *testing.T) {
	l := mustLayout(t, 0, 1, 100)
	f := func(raw uint32) bool {
		s := float64(raw%100001) / 100000.0
		b := l.BucketOf(s)
		lo, hi := l.Range(b)
		// s must lie in [lo, hi) except for s == Hi which belongs to
		// bucket 0 inclusively.
		if s == l.Hi {
			return b == 0
		}
		return s >= lo-1e-9 && s < hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRangeCoversDomain(t *testing.T) {
	l := mustLayout(t, 0.25, 0.75, 7)
	prevLo := l.Hi
	for b := 0; b < l.Buckets; b++ {
		lo, hi := l.Range(b)
		if hi != prevLo {
			t.Errorf("bucket %d hi = %g, want %g (contiguous)", b, hi, prevLo)
		}
		if lo >= hi {
			t.Errorf("bucket %d empty range [%g, %g]", b, lo, hi)
		}
		prevLo = lo
	}
	if prevLo != l.Lo {
		t.Errorf("last bucket lo = %g, want %g", prevLo, l.Lo)
	}
}

func TestHistogramAddAndBounds(t *testing.T) {
	l := mustLayout(t, 0, 1, 10)
	h := New(l)
	h.Add(0.67)
	h.Add(0.68)
	h.Add(0.64)
	b := h.Bucket(3)
	if b.Count != 3 {
		t.Fatalf("bucket 3 count = %d, want 3", b.Count)
	}
	if b.MinSeen != 0.64 || b.MaxSeen != 0.68 {
		t.Fatalf("bucket 3 bounds = [%g, %g], want [0.64, 0.68]", b.MinSeen, b.MaxSeen)
	}
	if h.Total() != 3 {
		t.Fatalf("total = %d, want 3", h.Total())
	}
}

func TestHeaviestBucket(t *testing.T) {
	l := mustLayout(t, 0, 1, 4)
	h := New(l)
	for i := 0; i < 10; i++ {
		h.Add(0.95)
	}
	for i := 0; i < 3; i++ {
		h.Add(0.1)
	}
	idx, count := h.HeaviestBucket()
	if idx != 0 || count != 10 {
		t.Fatalf("heaviest = (%d, %d), want (0, 10)", idx, count)
	}
}

func TestDRJNMatrixAddRemove(t *testing.T) {
	l := mustLayout(t, 0, 1, 10)
	m, err := NewDRJNMatrix(l, 16)
	if err != nil {
		t.Fatal(err)
	}
	m.Add("alpha", 0.95)
	m.Add("alpha", 0.93)
	m.Add("beta", 0.91)
	band := m.Band(0)
	var total uint64
	for _, c := range band {
		total += c
	}
	if total != 3 {
		t.Fatalf("band 0 total = %d, want 3", total)
	}
	lo, hi, ok := m.BandBounds(0)
	if !ok || lo != 0.91 || hi != 0.95 {
		t.Fatalf("band bounds = (%g, %g, %v), want (0.91, 0.95, true)", lo, hi, ok)
	}
	m.Remove("alpha", 0.95)
	total = 0
	for _, c := range m.Band(0) {
		total += c
	}
	if total != 2 {
		t.Fatalf("band 0 total after remove = %d, want 2", total)
	}
}

func TestDRJNJoinBandsOverestimates(t *testing.T) {
	// The dot-product estimate must never undercount true join results
	// between two bands (uniform-assumption overestimate).
	rng := rand.New(rand.NewSource(99))
	l := mustLayout(t, 0, 1, 1)
	for trial := 0; trial < 25; trial++ {
		a, _ := NewDRJNMatrix(l, 8)
		b, _ := NewDRJNMatrix(l, 8)
		countA := map[string]int{}
		countB := map[string]int{}
		for i := 0; i < 100; i++ {
			v := fmt.Sprintf("v%d", rng.Intn(30))
			a.Add(v, rng.Float64())
			countA[v]++
		}
		for i := 0; i < 100; i++ {
			v := fmt.Sprintf("v%d", rng.Intn(30))
			b.Add(v, rng.Float64())
			countB[v]++
		}
		var trueJoin uint64
		for v, ca := range countA {
			trueJoin += uint64(ca * countB[v])
		}
		est, err := a.JoinBands(0, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if est < trueJoin {
			t.Fatalf("trial %d: estimate %d < true join %d", trial, est, trueJoin)
		}
	}
}

func TestDRJNBandMarshalRoundTrip(t *testing.T) {
	l := mustLayout(t, 0, 1, 5)
	m, _ := NewDRJNMatrix(l, 4)
	m.Add("x", 0.85)
	m.Add("y", 0.88)
	m.Add("x", 0.83)
	buf := m.MarshalBand(0)
	bd, err := UnmarshalBand(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(bd.Cells))
	}
	var total uint64
	for _, c := range bd.Cells {
		total += c
	}
	if total != 3 {
		t.Fatalf("band total = %d, want 3", total)
	}
	if bd.Lo != 0.83 || bd.Hi != 0.88 || !bd.NonEmpty {
		t.Fatalf("bounds = (%g, %g, %v), want (0.83, 0.88, true)", bd.Lo, bd.Hi, bd.NonEmpty)
	}
	// Empty band round trip.
	bd2, err := UnmarshalBand(m.MarshalBand(3))
	if err != nil {
		t.Fatal(err)
	}
	if bd2.NonEmpty {
		t.Error("band 3 should be empty")
	}
	if _, err := UnmarshalBand(buf[:10]); err == nil {
		t.Error("truncated band must fail to decode")
	}
}

func TestDotProduct(t *testing.T) {
	a := &BandData{Cells: []uint64{1, 2, 3}}
	b := &BandData{Cells: []uint64{4, 5, 6}}
	got, err := DotProduct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1*4+2*5+3*6 {
		t.Fatalf("dot product = %d, want 32", got)
	}
	c := &BandData{Cells: []uint64{1}}
	if _, err := DotProduct(a, c); err == nil {
		t.Error("mismatched lengths must error")
	}
}

func TestDRJNMatrixValidation(t *testing.T) {
	l := mustLayout(t, 0, 1, 2)
	if _, err := NewDRJNMatrix(l, 0); err == nil {
		t.Error("zero partitions must be rejected")
	}
	a, _ := NewDRJNMatrix(l, 4)
	b, _ := NewDRJNMatrix(l, 8)
	if _, err := a.JoinBands(0, b, 0); err == nil {
		t.Error("partition mismatch must error")
	}
}

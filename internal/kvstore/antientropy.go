package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Replica anti-entropy primitives. A replicated topology keeps N
// clusters convergent by replaying identical pre-stamped mutations on
// each; when a replica misses writes (downtime) or damages them at rest
// (bit rot), the router diffs per-table Merkle trees and re-ships the
// divergent rows through the two functions below. The primitives live
// inside kvstore because they mutate tables directly — repair moves
// already-maintained replicated state, so routing it through the query
// layer's Maintainer would double-apply index maintenance.

// TableCells snapshots every live cell of a table: the newest version
// of each column, tombstones and shadowed versions excluded — exactly
// the state a Merkle digest or repair payload should cover, because two
// replicas that answer every read identically may still differ in dead
// versions (local flush/compaction timing). The snapshot is charged as
// one scan-shaped RPC per region: anti-entropy reads are real reads.
func (c *Cluster) TableCells(name string) ([]Cell, error) {
	if err := c.CheckInterrupt(); err != nil {
		return nil, err
	}
	t, err := c.table(name)
	if err != nil {
		return nil, err
	}
	var out []Cell
	for _, r := range t.Regions() {
		cells, err := r.allCells()
		if err != nil {
			return nil, err
		}
		var stats OpStats
		for i := range cells {
			stats.CellsExamined++
			sz := cells[i].StoredSize()
			stats.BytesRead += sz
			stats.BytesReturned += sz
		}
		c.chargeRPC(stats)
		out = append(out, cells...)
	}
	return out, nil
}

// TableFamilies returns a table's declared column families.
func (c *Cluster) TableFamilies(name string) ([]string, error) {
	t, err := c.table(name)
	if err != nil {
		return nil, err
	}
	return t.Families(), nil
}

// HasTable reports whether the table exists.
func (c *Cluster) HasTable(name string) bool {
	_, err := c.table(name)
	return err == nil
}

// ObserveClock advances the logical clock to at least ts. Replicas call
// it when applying router-stamped mutations so a later locally-stamped
// write (repair tombstones, index builds) cannot sort below replicated
// cells it is meant to shadow.
func (c *Cluster) ObserveClock(ts int64) {
	s := c.state
	s.mu.Lock()
	if ts > s.clock {
		s.clock = ts
	}
	s.mu.Unlock()
}

// Clock reads the logical clock without advancing it. The router polls
// it so router-assigned group timestamps always dominate node-local
// stamps (index builds, repair tombstones).
func (c *Cluster) Clock() int64 {
	s := c.state
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// maxCellTS returns the largest timestamp in a repair payload.
func maxCellTS(cells []Cell) int64 {
	var ts int64
	for i := range cells {
		if cells[i].Timestamp > ts {
			ts = cells[i].Timestamp
		}
	}
	return ts
}

// RepairApply applies a replica-repair payload to a table: the shipped
// cells land with their ORIGINAL timestamps (so the repaired replica
// becomes byte-identical to the source for those rows), and each listed
// row the source does not have is deleted — every live cell tombstoned
// under a fresh local timestamp, which the prior ObserveClock guarantees
// sorts above anything replicated. The table is created on the fly when
// the replica never saw it. Returns rows deleted and cells applied.
func (c *Cluster) RepairApply(table string, families []string, cells []Cell, deleteRows []string) (deleted, applied int, err error) {
	t, err := c.table(table)
	if err != nil {
		if t, err = c.CreateTable(table, families, nil); err != nil {
			return 0, 0, err
		}
	}
	c.ObserveClock(maxCellTS(cells))
	var bytes uint64
	var cellCount int
	for _, row := range deleteRows {
		got, stats, gerr := t.getRetry(row, nil)
		c.chargeRPC(stats)
		if gerr != nil {
			return deleted, applied, gerr
		}
		if got == nil {
			continue
		}
		ts := c.Now()
		dead := make([]Cell, 0, len(got.Cells))
		for i := range got.Cells {
			dc := got.Cells[i]
			dead = append(dead, Cell{Row: dc.Row, Family: dc.Family, Qualifier: dc.Qualifier, Timestamp: ts, Tombstone: true})
		}
		if err := t.mutateRetry(dead); err != nil {
			return deleted, applied, err
		}
		for i := range dead {
			bytes += dead[i].StoredSize()
		}
		cellCount += len(dead)
		deleted++
	}
	// Group shipped cells into per-row atomic mutations, sorted for
	// deterministic apply order.
	byRow := map[string][]Cell{}
	var order []string
	for i := range cells {
		if !t.HasFamily(cells[i].Family) {
			return deleted, applied, fmt.Errorf("kvstore: repair cell for %q names unknown family %q", table, cells[i].Family)
		}
		if _, ok := byRow[cells[i].Row]; !ok {
			order = append(order, cells[i].Row)
		}
		byRow[cells[i].Row] = append(byRow[cells[i].Row], cells[i])
		bytes += cells[i].StoredSize()
	}
	sort.Strings(order)
	for _, row := range order {
		if err := t.mutateRetry(byRow[row]); err != nil {
			return deleted, applied, err
		}
		applied += len(byRow[row])
	}
	cellCount += applied
	// One group-write RPC for the whole payload — charged even when it
	// shipped nothing, since the repair call itself still crossed the wire.
	c.chargeWrite(bytes, cellCount)
	return deleted, applied, nil
}

// RepairReplace rebuilds a table wholesale from a source replica's
// snapshot: drop (quarantined or corrupt SSTables go with it), recreate
// with the source's families, and re-ingest the shipped cells at their
// original timestamps. This is the corruption path — when a replica's
// own Merkle build fails its checksums there is no trustworthy local
// state to diff against, so the whole table is replaced.
func (c *Cluster) RepairReplace(table string, families []string, cells []Cell) (int, error) {
	if c.HasTable(table) {
		if err := c.DropTable(table); err != nil {
			return 0, err
		}
	}
	if _, err := c.CreateTable(table, families, nil); err != nil {
		return 0, err
	}
	_, applied, err := c.RepairApply(table, families, cells, nil)
	return applied, err
}

// MerkleScanStats reports the work of one table digest pass.
type MerkleScanStats struct {
	Rows  int
	Cells int
}

// ChargeMerkleScan meters the digest pass that backed a Merkle tree
// build: the rows were already charged as reads by TableCells; the
// hashing itself costs CPU time proportional to the cells digested.
func (c *Cluster) ChargeMerkleScan(st MerkleScanStats) {
	c.metrics.Advance(c.profile.CPUTime(uint64(st.Cells)))
}

// RowDigestParts flattens a row's cells into the byte parts a Merkle
// row digest covers: family, qualifier, timestamp, and value of every
// live cell, in storage order. Kept next to the repair primitives so
// the digest definition and the repair payload can never drift apart.
func RowDigestParts(cells []Cell) [][]byte {
	parts := make([][]byte, 0, 4*len(cells))
	for i := range cells {
		tsBuf := make([]byte, 8)
		binary.BigEndian.PutUint64(tsBuf, uint64(cells[i].Timestamp))
		parts = append(parts, []byte(cells[i].Family), []byte(cells[i].Qualifier), tsBuf, cells[i].Value)
	}
	return parts
}

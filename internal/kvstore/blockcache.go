package kvstore

import "sync"

// DefaultBlockCacheBytes is the store-wide block cache capacity, shared
// by every region's disk segments — the same role HBase's BlockCache
// plays across all HFiles of a region server.
const DefaultBlockCacheBytes = 32 << 20

// bcKey names one block: the SSTable's file number plus the block's
// file offset. File numbers are never reused (the manifest's NextFile
// only grows), so stale entries for deleted files simply age out.
type bcKey struct {
	segID uint64
	off   uint64
}

// bcEntry is one cached decoded block (*decodedBlock or []indexEntry).
// Cached values are shared across readers and must never be mutated.
type bcEntry struct {
	key        bcKey
	block      any
	size       uint64
	prev, next *bcEntry
}

// blockCache is a byte-bounded LRU over decoded SSTable blocks. It is
// shared across regions, so it has its own mutex; it is a leaf lock —
// no other lock is ever acquired while mu is held.
type blockCache struct {
	mu         sync.Mutex
	capacity   uint64             // guarded by: mu
	bytes      uint64             // guarded by: mu
	entries    map[bcKey]*bcEntry // guarded by: mu
	head, tail *bcEntry           // head = most recently used; guarded by: mu
	hits       uint64             // guarded by: mu
	misses     uint64             // guarded by: mu
}

// bcEntryOverhead approximates per-entry bookkeeping bytes.
const bcEntryOverhead = 80

func newBlockCache(capacity uint64) *blockCache {
	return &blockCache{capacity: capacity, entries: map[bcKey]*bcEntry{}}
}

// lookup returns the cached decoded block for (segID, off), if present.
func (c *blockCache) lookup(segID, off uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity == 0 {
		return nil, false
	}
	e, ok := c.entries[bcKey{segID, off}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFrontLocked(e)
	return e.block, true
}

// insert caches a decoded block with its estimated memory footprint.
func (c *blockCache) insert(segID, off uint64, block any, size uint64) {
	size += bcEntryOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity == 0 || size > c.capacity {
		return // disabled, or the block is larger than the whole cache
	}
	k := bcKey{segID, off}
	if e, ok := c.entries[k]; ok {
		c.bytes -= e.size
		e.block, e.size = block, size
		c.bytes += size
		c.moveToFrontLocked(e)
	} else {
		e := &bcEntry{key: k, block: block, size: size}
		c.entries[k] = e
		c.bytes += size
		c.pushFrontLocked(e)
	}
	for c.bytes > c.capacity && c.tail != nil {
		c.removeLocked(c.tail)
	}
}

// setCapacity resizes the cache, evicting down to the new bound.
// Capacity 0 disables caching and drops everything.
func (c *blockCache) setCapacity(capacity uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	if capacity == 0 {
		c.entries = map[bcKey]*bcEntry{}
		c.head, c.tail, c.bytes = nil, nil, 0
		return
	}
	for c.bytes > c.capacity && c.tail != nil {
		c.removeLocked(c.tail)
	}
}

// stats returns cumulative hit/miss counts.
func (c *blockCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *blockCache) removeLocked(e *bcEntry) {
	delete(c.entries, e.key)
	c.bytes -= e.size
	c.unlinkLocked(e)
}

func (c *blockCache) unlinkLocked(e *bcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *blockCache) pushFrontLocked(e *bcEntry) {
	e.next = c.head
	e.prev = nil
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *blockCache) moveToFrontLocked(e *bcEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

package kvstore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"repro/internal/golomb"
)

// On-disk block encoding. Every block in an SSTable — data, index,
// summary, bloom, meta — is stored as one checksummed frame:
//
//	[4B BE stored length][1B codec][stored bytes][4B BE CRC32(codec || stored)]
//
// codec 0 stores the payload raw; codec 1 DEFLATE-compresses it. The
// CRC covers the codec byte too, so a flipped compression flag is caught
// before an expensive (and possibly wrong) inflate.
//
// A DATA block payload is a restart-point prefix-compressed entry region
// followed by a Golomb-coded restart offset array and a fixed tail:
//
//	entries:  per cell:  uvarint shared     — coordinate prefix reuse
//	                     uvarint unshared
//	                     coordinate[shared:]  (row \x00 family \x00 qualifier)
//	                     1B flags             (bit 0 = tombstone)
//	                     uvarint timestamp    (logical clock, integer column)
//	                     uvarint seq          (region sequence, integer column)
//	                     uvarint value length, value bytes
//	restarts: golomb.EncodeSortedSet of the entry offsets where prefix
//	          compression resets (every blockRestartInterval entries)
//	tail:     u32 restart bytes | u32 restart count | u32 golomb M |
//	          u32 entry count
//
// The high-entropy timestamp/sequence suffix of the internal cell key is
// NOT prefix-compressed with the coordinate: it is split out into the
// two varint integer columns, which compress far better and reconstruct
// the exact internal key on decode.
const (
	blockCodecRaw   = 0
	blockCodecFlate = 1

	// blockFrameOverhead is the framing bytes around each payload.
	blockFrameOverhead = 9

	// blockRestartInterval is how many entries share one prefix
	// compression run before it resets.
	blockRestartInterval = 16

	// blockTailLen is the fixed data-block trailer.
	blockTailLen = 16

	// maxBlockPayload caps a decoded payload so a corrupt length field
	// or a crafted DEFLATE stream cannot balloon memory.
	maxBlockPayload = 16 << 20
)

// errCorruptBlock reports an SSTable frame or payload that failed
// validation. Every decode error wraps it; decoding never panics.
var errCorruptBlock = errors.New("kvstore: corrupt sstable block")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCorruptBlock, fmt.Sprintf(format, args...))
}

// encodeFrame wraps payload in the block frame, DEFLATE-compressing it
// when that saves at least 1/8th of the bytes.
func encodeFrame(payload []byte) []byte {
	stored := payload
	codec := byte(blockCodecRaw)
	if len(payload) >= 128 {
		var buf bytes.Buffer
		fw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err == nil {
			if _, err := fw.Write(payload); err == nil && fw.Close() == nil {
				if buf.Len() < len(payload)-len(payload)/8 {
					stored = buf.Bytes()
					codec = blockCodecFlate
				}
			}
		}
	}
	out := make([]byte, 0, blockFrameOverhead+len(stored))
	out = binary.BigEndian.AppendUint32(out, uint32(len(stored)))
	out = append(out, codec)
	out = append(out, stored...)
	crc := crc32.NewIEEE()
	crc.Write(out[4:]) // codec byte + stored bytes
	out = binary.BigEndian.AppendUint32(out, crc.Sum32())
	return out
}

// decodeFrame verifies and unwraps one frame, returning the payload.
func decodeFrame(frame []byte) ([]byte, error) {
	if len(frame) < blockFrameOverhead {
		return nil, corruptf("frame of %d bytes is shorter than the %d-byte framing", len(frame), blockFrameOverhead)
	}
	n := int(binary.BigEndian.Uint32(frame[:4]))
	if n != len(frame)-blockFrameOverhead {
		return nil, corruptf("frame length %d does not match %d stored bytes", n, len(frame)-blockFrameOverhead)
	}
	crc := crc32.NewIEEE()
	crc.Write(frame[4 : 5+n])
	if got, want := crc.Sum32(), binary.BigEndian.Uint32(frame[5+n:]); got != want {
		return nil, corruptf("CRC mismatch: computed %08x, stored %08x", got, want)
	}
	stored := frame[5 : 5+n]
	switch frame[4] {
	case blockCodecRaw:
		out := make([]byte, n)
		copy(out, stored)
		return out, nil
	case blockCodecFlate:
		fr := flate.NewReader(bytes.NewReader(stored))
		out, err := io.ReadAll(io.LimitReader(fr, maxBlockPayload+1))
		if err != nil {
			return nil, corruptf("inflate: %v", err)
		}
		if len(out) > maxBlockPayload {
			return nil, corruptf("inflated payload exceeds %d bytes", maxBlockPayload)
		}
		return out, nil
	default:
		return nil, corruptf("unknown block codec %d", frame[4])
	}
}

// blockWriter accumulates one data block's entries.
type blockWriter struct {
	buf          []byte
	restarts     []uint64
	count        int
	sinceRestart int
	prevCoord    string
}

// coordOf renders a cell's coordinate (the internal key minus the binary
// timestamp/sequence suffix).
func coordOf(c *Cell) string {
	var b strings.Builder
	b.Grow(len(c.Row) + len(c.Family) + len(c.Qualifier) + 2)
	b.WriteString(c.Row)
	b.WriteByte(0)
	b.WriteString(c.Family)
	b.WriteByte(0)
	b.WriteString(c.Qualifier)
	return b.String()
}

// add appends one cell version. seq is the region sequence number parsed
// from the cell's internal key.
func (b *blockWriter) add(c *Cell, seq uint64) {
	coord := coordOf(c)
	shared := 0
	if b.sinceRestart >= blockRestartInterval || b.count == 0 {
		b.restarts = append(b.restarts, uint64(len(b.buf)))
		b.sinceRestart = 0
	} else {
		max := len(coord)
		if len(b.prevCoord) < max {
			max = len(b.prevCoord)
		}
		for shared < max && coord[shared] == b.prevCoord[shared] {
			shared++
		}
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(coord)-shared))
	b.buf = append(b.buf, coord[shared:]...)
	flags := byte(0)
	if c.Tombstone {
		flags = 1
	}
	b.buf = append(b.buf, flags)
	b.buf = binary.AppendUvarint(b.buf, uint64(c.Timestamp))
	b.buf = binary.AppendUvarint(b.buf, seq)
	b.buf = binary.AppendUvarint(b.buf, uint64(len(c.Value)))
	b.buf = append(b.buf, c.Value...)
	b.prevCoord = coord
	b.count++
	b.sinceRestart++
}

func (b *blockWriter) empty() bool { return b.count == 0 }
func (b *blockWriter) size() int   { return len(b.buf) }

// finish renders the block payload (entries + restart array + tail) and
// resets the writer for the next block.
func (b *blockWriter) finish() ([]byte, error) {
	// Golomb parameter: restart offsets are roughly evenly spaced, so
	// the mean gap is a near-optimal divisor.
	m := uint64(len(b.buf)) / uint64(len(b.restarts))
	if m == 0 {
		m = 1
	}
	enc, err := golomb.EncodeSortedSet(b.restarts, m)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 0, len(b.buf)+len(enc)+blockTailLen)
	payload = append(payload, b.buf...)
	payload = append(payload, enc...)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(enc)))
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(b.restarts)))
	payload = binary.BigEndian.AppendUint32(payload, uint32(m))
	payload = binary.BigEndian.AppendUint32(payload, uint32(b.count))
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.count = 0
	b.sinceRestart = 0
	b.prevCoord = ""
	return payload, nil
}

// decodedBlock is a data block parsed back into the segment's in-memory
// shape: parallel sorted internal-key / cell slices. Cached blocks are
// shared across iterators and must never be mutated.
type decodedBlock struct {
	keys  []string
	cells []*Cell
	bytes uint64 // decoded memory estimate, for cache accounting
}

// decodeDataBlock parses one data block payload. It validates framing
// invariants — bounds, restart array round-trip, entry count, key order —
// and returns errCorruptBlock-wrapped errors instead of panicking or
// yielding misordered cells.
func decodeDataBlock(payload []byte) (*decodedBlock, error) {
	if len(payload) < blockTailLen {
		return nil, corruptf("data block of %d bytes is shorter than its %d-byte tail", len(payload), blockTailLen)
	}
	tail := payload[len(payload)-blockTailLen:]
	restartBytes := int(binary.BigEndian.Uint32(tail[0:4]))
	restartCount := int(binary.BigEndian.Uint32(tail[4:8]))
	m := uint64(binary.BigEndian.Uint32(tail[8:12]))
	count := int(binary.BigEndian.Uint32(tail[12:16]))
	entriesEnd := len(payload) - blockTailLen - restartBytes
	if restartBytes < 0 || entriesEnd < 0 {
		return nil, corruptf("restart array of %d bytes overflows the %d-byte payload", restartBytes, len(payload))
	}
	if count <= 0 || count > entriesEnd || restartCount <= 0 || restartCount > count || m == 0 {
		return nil, corruptf("implausible tail: %d entries, %d restarts, M=%d in %d entry bytes", count, restartCount, m, entriesEnd)
	}
	restarts, err := golomb.DecodeSortedSet(payload[entriesEnd:len(payload)-blockTailLen], m, restartCount)
	if err != nil {
		return nil, corruptf("restart array: %v", err)
	}
	if restarts[0] != 0 || restarts[restartCount-1] >= uint64(entriesEnd) {
		return nil, corruptf("restart offsets [%d, %d] outside entry region of %d bytes", restarts[0], restarts[restartCount-1], entriesEnd)
	}

	db := &decodedBlock{
		keys:  make([]string, 0, count),
		cells: make([]*Cell, 0, count),
	}
	buf := payload[:entriesEnd]
	off := 0
	prevCoord := ""
	prevKey := ""
	nextRestart := 0
	for i := 0; i < count; i++ {
		atRestart := nextRestart < restartCount && uint64(off) == restarts[nextRestart]
		if atRestart {
			nextRestart++
		}
		shared, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, corruptf("entry %d: bad shared-length varint at %d", i, off)
		}
		off += n
		unshared, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, corruptf("entry %d: bad unshared-length varint at %d", i, off)
		}
		off += n
		if atRestart && shared != 0 {
			return nil, corruptf("entry %d: restart point with %d shared bytes", i, shared)
		}
		if shared > uint64(len(prevCoord)) || unshared > uint64(len(buf)-off) {
			return nil, corruptf("entry %d: coordinate lengths %d+%d exceed bounds", i, shared, unshared)
		}
		coord := prevCoord[:shared] + string(buf[off:off+int(unshared)])
		off += int(unshared)
		if off >= len(buf) {
			return nil, corruptf("entry %d: truncated before flags", i)
		}
		flags := buf[off]
		off++
		if flags&^byte(1) != 0 {
			return nil, corruptf("entry %d: unknown flags %#x", i, flags)
		}
		ts, n := binary.Uvarint(buf[off:])
		if n <= 0 || ts > 1<<62 {
			return nil, corruptf("entry %d: bad timestamp varint at %d", i, off)
		}
		off += n
		seq, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, corruptf("entry %d: bad sequence varint at %d", i, off)
		}
		off += n
		vlen, n := binary.Uvarint(buf[off:])
		if n <= 0 || vlen > uint64(len(buf)-off-n) {
			return nil, corruptf("entry %d: bad value length at %d", i, off)
		}
		off += n
		var value []byte
		if vlen > 0 {
			value = make([]byte, vlen)
			copy(value, buf[off:off+int(vlen)])
			off += int(vlen)
		}

		sep1 := strings.IndexByte(coord, 0)
		if sep1 < 0 {
			return nil, corruptf("entry %d: coordinate lacks family separator", i)
		}
		sep2 := strings.IndexByte(coord[sep1+1:], 0)
		if sep2 < 0 {
			return nil, corruptf("entry %d: coordinate lacks qualifier separator", i)
		}
		sep2 += sep1 + 1
		c := &Cell{
			Row:       coord[:sep1],
			Family:    coord[sep1+1 : sep2],
			Qualifier: coord[sep2+1:],
			Value:     value,
			Timestamp: int64(ts),
			Tombstone: flags&1 == 1,
		}
		key := cellKey(c.Row, c.Family, c.Qualifier, c.Timestamp, seq)
		if i > 0 && key < prevKey {
			return nil, corruptf("entry %d: key order violation", i)
		}
		db.keys = append(db.keys, key)
		db.cells = append(db.cells, c)
		db.bytes += uint64(len(key)) + c.StoredSize() + 48
		prevCoord = coord
		prevKey = key
	}
	if off != len(buf) {
		return nil, corruptf("%d trailing bytes after last entry", len(buf)-off)
	}
	return db, nil
}

// indexEntry locates one framed block: the internal key of its first
// entry, its file offset, and its framed length. The same shape serves
// the index blocks (first data-block keys) and the summary (first
// index-block keys).
type indexEntry struct {
	firstKey string
	off      uint64
	length   uint64
}

// encodeIndexBlock renders index/summary entries.
func encodeIndexBlock(entries []indexEntry) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(entries)))
	for _, e := range entries {
		out = binary.AppendUvarint(out, uint64(len(e.firstKey)))
		out = append(out, e.firstKey...)
		out = binary.AppendUvarint(out, e.off)
		out = binary.AppendUvarint(out, e.length)
	}
	return out
}

// decodeIndexBlock parses index/summary entries.
func decodeIndexBlock(payload []byte) ([]indexEntry, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 || count > uint64(len(payload)) {
		return nil, corruptf("bad index entry count")
	}
	off := n
	out := make([]indexEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(payload[off:])
		if n <= 0 || klen > uint64(len(payload)-off-n) {
			return nil, corruptf("index entry %d: bad key length", i)
		}
		off += n
		key := string(payload[off : off+int(klen)])
		off += int(klen)
		bo, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return nil, corruptf("index entry %d: bad offset", i)
		}
		off += n
		bl, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return nil, corruptf("index entry %d: bad length", i)
		}
		off += n
		if i > 0 && key < out[i-1].firstKey {
			return nil, corruptf("index entry %d: key order violation", i)
		}
		out = append(out, indexEntry{firstKey: key, off: bo, length: bl})
	}
	if off != len(payload) {
		return nil, corruptf("%d trailing bytes after index entries", len(payload)-off)
	}
	return out, nil
}

// sstMeta is the statistics block: key range, counts, and the logical
// (uncompressed StoredSize) byte total the cost model and compaction
// tiers operate on.
type sstMeta struct {
	minRow  string
	maxRow  string
	count   uint64
	logical uint64
	maxTs   int64
}

func encodeMetaBlock(m sstMeta) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(m.minRow)))
	out = append(out, m.minRow...)
	out = binary.AppendUvarint(out, uint64(len(m.maxRow)))
	out = append(out, m.maxRow...)
	out = binary.AppendUvarint(out, m.count)
	out = binary.AppendUvarint(out, m.logical)
	out = binary.AppendUvarint(out, uint64(m.maxTs))
	return out
}

func decodeMetaBlock(payload []byte) (sstMeta, error) {
	var m sstMeta
	off := 0
	readStr := func() (string, bool) {
		l, n := binary.Uvarint(payload[off:])
		if n <= 0 || l > uint64(len(payload)-off-n) {
			return "", false
		}
		off += n
		s := string(payload[off : off+int(l)])
		off += int(l)
		return s, true
	}
	readInt := func() (uint64, bool) {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	var ok bool
	if m.minRow, ok = readStr(); !ok {
		return m, corruptf("meta: bad min row")
	}
	if m.maxRow, ok = readStr(); !ok {
		return m, corruptf("meta: bad max row")
	}
	if m.count, ok = readInt(); !ok {
		return m, corruptf("meta: bad cell count")
	}
	if m.logical, ok = readInt(); !ok {
		return m, corruptf("meta: bad logical size")
	}
	maxTs, ok := readInt()
	if !ok || maxTs > 1<<62 {
		return m, corruptf("meta: bad max timestamp")
	}
	m.maxTs = int64(maxTs)
	return m, nil
}

package kvstore

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Cell is one key-value pair: the paper's quadruplet {key, column name,
// column value, timestamp}. Column names are split into family and
// qualifier as in BigTable/HBase.
type Cell struct {
	Row       string
	Family    string
	Qualifier string
	Value     []byte
	Timestamp int64
	// Tombstone marks a deletion of the column as of Timestamp.
	Tombstone bool
}

// cellOverhead approximates per-cell storage overhead (key lengths,
// timestamp, flags) used for size accounting, mirroring HBase's KeyValue
// framing.
const cellOverhead = 24

// StoredSize returns the bytes this cell occupies on disk / on the wire.
func (c *Cell) StoredSize() uint64 {
	return uint64(len(c.Row) + len(c.Family) + len(c.Qualifier) + len(c.Value) + cellOverhead)
}

// Column returns the printable column name "family:qualifier".
func (c *Cell) Column() string { return c.Family + ":" + c.Qualifier }

func (c *Cell) String() string {
	if c.Tombstone {
		return fmt.Sprintf("%s/%s:%s@%d <tombstone>", c.Row, c.Family, c.Qualifier, c.Timestamp)
	}
	return fmt.Sprintf("%s/%s:%s@%d=%q", c.Row, c.Family, c.Qualifier, c.Timestamp, c.Value)
}

// Row is a materialized row: all live cells sharing a row key, sorted by
// (family, qualifier).
type Row struct {
	Key   string
	Cells []Cell
}

// Size returns the stored size of all cells in the row.
func (r *Row) Size() uint64 {
	var s uint64
	for i := range r.Cells {
		s += r.Cells[i].StoredSize()
	}
	return s
}

// Cell returns the cell for family:qualifier, or nil.
func (r *Row) Cell(family, qualifier string) *Cell {
	for i := range r.Cells {
		if r.Cells[i].Family == family && r.Cells[i].Qualifier == qualifier {
			return &r.Cells[i]
		}
	}
	return nil
}

// FamilyCells returns the cells of one column family, preserving order.
func (r *Row) FamilyCells(family string) []Cell {
	var out []Cell
	for i := range r.Cells {
		if r.Cells[i].Family == family {
			out = append(out, r.Cells[i])
		}
	}
	return out
}

// cellKey builds the internal sort key for a cell version. Layout:
//
//	row \x00 family \x00 qualifier \x00 ^timestamp ^seq
//
// Timestamps and sequence numbers are bit-inverted big-endian so newer
// versions sort FIRST within a column, making "latest version" the first
// cell encountered during an ascending scan.
func cellKey(row, family, qualifier string, ts int64, seq uint64) string {
	var sb strings.Builder
	sb.Grow(len(row) + len(family) + len(qualifier) + 3 + 16)
	sb.WriteString(row)
	sb.WriteByte(0)
	sb.WriteString(family)
	sb.WriteByte(0)
	sb.WriteString(qualifier)
	sb.WriteByte(0)
	var n [16]byte
	binary.BigEndian.PutUint64(n[0:8], ^uint64(ts))
	binary.BigEndian.PutUint64(n[8:16], ^seq)
	sb.Write(n[:])
	return sb.String()
}

// rowPrefix returns the cellKey prefix shared by all cells of a row.
func rowPrefix(row string) string { return row + "\x00" }

// parseCellKey splits an internal key back into coordinates without
// allocating (the old implementation forced a []byte copy of the 16
// binary suffix bytes on every WAL replay record).
func parseCellKey(k string) (row, family, qualifier string, ts int64, seq uint64, err error) {
	// Find the three NUL separators from the left.
	i1 := strings.IndexByte(k, 0)
	if i1 < 0 {
		return "", "", "", 0, 0, fmt.Errorf("kvstore: malformed cell key")
	}
	i2 := strings.IndexByte(k[i1+1:], 0)
	if i2 < 0 {
		return "", "", "", 0, 0, fmt.Errorf("kvstore: malformed cell key")
	}
	i2 += i1 + 1
	i3 := strings.IndexByte(k[i2+1:], 0)
	if i3 < 0 {
		return "", "", "", 0, 0, fmt.Errorf("kvstore: malformed cell key")
	}
	i3 += i2 + 1
	if len(k)-i3-1 != 16 {
		return "", "", "", 0, 0, fmt.Errorf("kvstore: malformed cell key")
	}
	row, family, qualifier = k[:i1], k[i1+1:i2], k[i2+1:i3]
	ts = int64(^be64(k[i3+1:]))
	seq = ^be64(k[i3+9:])
	return row, family, qualifier, ts, seq, nil
}

// be64 decodes a big-endian uint64 straight from a string.
func be64(s string) uint64 {
	_ = s[7]
	return uint64(s[0])<<56 | uint64(s[1])<<48 | uint64(s[2])<<40 | uint64(s[3])<<32 |
		uint64(s[4])<<24 | uint64(s[5])<<16 | uint64(s[6])<<8 | uint64(s[7])
}

package kvstore

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Cluster is a simulated NoSQL deployment: a set of nodes hosting the
// regions of any number of tables, fronted by a metered client API. All
// client operations charge the cluster's sim.Metrics according to its
// hardware Profile; region-local access for MapReduce goes through
// TableRegions and is charged by the job runner instead.
//
// A Cluster value is a *view*: the table/region state lives in a shared
// clusterState, while the metric collector is per-view. WithMetrics
// derives a view over the same store that charges a different collector —
// the mechanism behind per-query cost isolation (concurrent queries each
// meter their own lane) and parallel-lane time accounting.
type Cluster struct {
	state   *clusterState
	profile sim.Profile
	metrics *sim.Metrics
	// guard, when set, is consulted before every metered read RPC; a
	// non-nil return aborts the operation with that error. Query-layer
	// budgets (deadlines, context cancellation, read-unit caps) install
	// one via WithGuard so cancellation reaches into scans, multi-gets,
	// and MapReduce tasks mid-flight.
	guard func() error
}

// clusterState is the store shared by every view of one deployment.
type clusterState struct {
	mu             sync.RWMutex
	tables         map[string]*Table // guarded by: mu
	nextID         int               // guarded by: mu
	clock          int64             // guarded by: mu
	seed           int64             // guarded by: mu
	rowCacheBytes  uint64            // per-region row cache capacity for new regions; guarded by: mu
	flushThreshold uint64            // override for new regions (0 = default); guarded by: mu
	// store is the durable backing (nil = memory-only). Set once at
	// construction, read-only afterwards.
	store *diskStore
	// memMeta backs SetMeta/Meta for memory-only clusters so the
	// catalog API is uniform across modes.
	memMeta map[string]string // guarded by: mu
}

// Table is a named collection of regions with a declared column-family
// set. The region list is guarded by its own lock: splits swap the list
// while concurrent clients route reads and writes through it, so every
// access — point lookup or snapshot — synchronizes on mu.
type Table struct {
	Name     string
	families map[string]bool

	// mutSeq counts applied client mutations (Put/Delete/MutateRow/
	// BatchPut/GroupWrite batches). Consumers key cached derivations of
	// the table's contents — planner statistics, plan choices — on it:
	// any write moves the sequence, so a matching sequence proves the
	// cache entry still describes the live table.
	mutSeq atomic.Uint64

	mu      sync.RWMutex
	regions []*Region // sorted by StartKey; guarded by: mu
}

// MutationSeq returns the table's mutation sequence number: it starts at
// zero and advances on every applied client write batch.
func (t *Table) MutationSeq() uint64 { return t.mutSeq.Load() }

// NewCluster creates a cluster with the given hardware profile. Metrics
// may be shared across clusters (e.g. to total a multi-stage workload).
//
// When the KVSTORE_DISK=1 environment variable is set the cluster is
// transparently backed by a fresh on-disk store in a temp directory —
// the CI tier-2 hook that runs the whole suite over real SSTables. A
// store setup failure (now reachable through fault injection, not just
// exotic tempdir states) is returned, never panicked.
func NewCluster(profile sim.Profile, metrics *sim.Metrics) (*Cluster, error) {
	if metrics == nil {
		metrics = &sim.Metrics{}
	}
	c := &Cluster{
		state: &clusterState{
			tables:        make(map[string]*Table),
			seed:          1,
			rowCacheBytes: DefaultRowCacheBytes,
			memMeta:       make(map[string]string),
		},
		profile: profile,
		metrics: metrics,
	}
	if os.Getenv("KVSTORE_DISK") == "1" {
		dir, err := os.MkdirTemp("", "kvstore-disk-")
		if err != nil {
			return nil, fmt.Errorf("kvstore: KVSTORE_DISK temp dir: %w", err)
		}
		store, err := openDiskStore(dir, DefaultBlockCacheBytes, nil)
		if err != nil {
			return nil, fmt.Errorf("kvstore: KVSTORE_DISK store: %w", err)
		}
		c.state.store = store
	}
	return c, nil
}

// OpenCluster opens (or initializes) a disk-backed cluster rooted at
// dir: it loads the manifest, re-creates every table and region, opens
// their SSTables newest-first, replays each region's WAL into a fresh
// memtable, and restores the logical clock and ID/sequence counters to
// values past everything durably stored — the cold-start recovery
// protocol (see the package documentation).
func OpenCluster(profile sim.Profile, metrics *sim.Metrics, dir string) (*Cluster, error) {
	return OpenClusterFS(profile, metrics, dir, nil)
}

// OpenClusterFS is OpenCluster over an explicit filesystem seam: every
// byte of the WALs, SSTables, and MANIFEST flows through fsys (nil =
// the real filesystem). Fault-injection tests mount internal/faultfs
// here to prove out the failure paths.
func OpenClusterFS(profile sim.Profile, metrics *sim.Metrics, dir string, fsys VFS) (*Cluster, error) {
	if metrics == nil {
		metrics = &sim.Metrics{}
	}
	store, err := openDiskStore(dir, DefaultBlockCacheBytes, fsys)
	if err != nil {
		return nil, err
	}
	s := &clusterState{
		tables:        make(map[string]*Table),
		seed:          1,
		rowCacheBytes: DefaultRowCacheBytes,
		memMeta:       make(map[string]string),
		store:         store,
	}
	c := &Cluster{state: s, profile: profile, metrics: metrics}
	man := store.snapshotManifest()
	s.nextID = man.NextID
	s.clock = man.Clock
	s.seed = man.Seed

	byID := make(map[int]*manifestRegion, len(man.Regions))
	for _, rec := range man.Regions {
		byID[rec.ID] = rec
	}
	for _, mt := range man.Tables {
		t := &Table{Name: mt.Name, families: make(map[string]bool)}
		for _, f := range mt.Families {
			t.families[f] = true
		}
		ids := append([]int(nil), mt.RegionIDs...)
		sortRegionIDs(ids, byID)
		for _, id := range ids {
			rec, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("kvstore: manifest table %q references unknown region %d", mt.Name, id)
			}
			r, err := c.openRegion(rec)
			if err != nil {
				return nil, err
			}
			t.regions = append(t.regions, r)
		}
		s.tables[mt.Name] = t
	}
	return c, nil
}

// openRegion rebuilds one region from its manifest record: SSTables
// opened newest-first, WAL replayed into the memtable, sequence and
// clock floors advanced past everything recovered.
func (c *Cluster) openRegion(rec *manifestRegion) (*Region, error) {
	s := c.state
	s.mu.RLock()
	cacheBytes, flushThreshold := s.rowCacheBytes, s.flushThreshold
	s.mu.RUnlock()
	r := newRegion(rec.ID, rec.Table, rec.Start, rec.End, rec.Node, int64(rec.ID)<<32|int64(rec.Seq), cacheBytes)
	if flushThreshold > 0 {
		r.flushThreshold = flushThreshold
	}
	if err := r.attachStore(s.store); err != nil {
		return nil, err
	}
	var maxTs int64
	for _, f := range rec.Files {
		seg, err := openSSTable(s.store.fs, s.store.dir, f, s.store.cache)
		if err != nil {
			r.shutdown()
			return nil, err
		}
		r.segments = append(r.segments, seg)
		if seg.meta.maxTs > maxTs {
			maxTs = seg.meta.maxTs
		}
	}
	r.mu.Lock()
	r.seq = rec.Seq
	if _, err := r.replayWALLocked(r.log); err != nil {
		r.mu.Unlock()
		r.shutdown()
		return nil, err
	}
	walTs, err := r.maxWALTimestampLocked()
	r.mu.Unlock()
	if err != nil {
		r.shutdown()
		return nil, err
	}
	if walTs > maxTs {
		maxTs = walTs
	}
	s.mu.Lock()
	if maxTs > s.clock {
		s.clock = maxTs
	}
	s.mu.Unlock()
	return r, nil
}

// Close releases every region's file handles and persists the logical
// clock and ID counters. Memory-only clusters close trivially.
func (c *Cluster) Close() error {
	var first error
	for _, t := range c.allTables() {
		for _, r := range t.Regions() {
			if err := r.shutdown(); err != nil && first == nil {
				first = err
			}
		}
	}
	s := c.state
	if s.store != nil {
		s.mu.RLock()
		clock, nextID, seed := s.clock, s.nextID, s.seed
		s.mu.RUnlock()
		if err := s.store.mutate(func(m *manifest) {
			if clock > m.Clock {
				m.Clock = clock
			}
			m.NextID = nextID
			m.Seed = seed
		}); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DiskBacked reports whether the cluster persists to disk.
func (c *Cluster) DiskBacked() bool { return c.state.store != nil }

// Dir returns the store directory ("" for memory-only clusters).
func (c *Cluster) Dir() string {
	if c.state.store == nil {
		return ""
	}
	return c.state.store.dir
}

// SetMeta durably stores an opaque key/value in the cluster manifest
// (memory-only clusters keep it in memory). The rankjoin layer persists
// its relation/index catalog here.
func (c *Cluster) SetMeta(key, value string) error {
	s := c.state
	if s.store != nil {
		return s.store.setMeta(key, value)
	}
	s.mu.Lock()
	s.memMeta[key] = value
	s.mu.Unlock()
	return nil
}

// Meta returns the value stored under key ("" when absent).
func (c *Cluster) Meta(key string) string {
	s := c.state
	if s.store != nil {
		return s.store.meta(key)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.memMeta[key]
}

// SetFlushThreshold overrides every region's memstore flush threshold
// and the value future regions start with (tests force small SSTables).
func (c *Cluster) SetFlushThreshold(n uint64) {
	s := c.state
	s.mu.Lock()
	s.flushThreshold = n
	s.mu.Unlock()
	for _, t := range c.allTables() {
		for _, r := range t.Regions() {
			r.setFlushThreshold(n)
		}
	}
}

// SetBlockCacheBytes resizes the shared block cache (0 disables it);
// no-op on memory-only clusters.
func (c *Cluster) SetBlockCacheBytes(n uint64) {
	if s := c.state; s.store != nil {
		s.store.cache.setCapacity(n)
	}
}

// BlockCacheStats returns the shared block cache's cumulative hit/miss
// counts (zero on memory-only clusters).
func (c *Cluster) BlockCacheStats() (hits, misses uint64) {
	if s := c.state; s.store != nil {
		return s.store.cache.stats()
	}
	return 0, 0
}

// allTables snapshots the table list. Region lists are then read via
// Table.Regions (its own lock), never while holding the state lock —
// SplitRegion acquires t.mu before s.mu, so nesting them the other way
// here would invert the lock order.
func (c *Cluster) allTables() []*Table {
	s := c.state
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t)
	}
	return out
}

// FlushAll flushes every region of every table to durable storage. In
// memory mode it seals memtables into sorted segments; in disk mode it
// writes SSTables, so subsequent reads pay measured block I/O. Useful in
// tests and benchmarks that want storage-resident data regardless of the
// flush threshold.
func (c *Cluster) FlushAll() error {
	for _, t := range c.allTables() {
		for _, r := range t.Regions() {
			if err := r.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetRowCacheBytes resizes every region's row cache (0 disables caching)
// and sets the capacity future regions start with.
func (c *Cluster) SetRowCacheBytes(n uint64) {
	s := c.state
	s.mu.Lock()
	s.rowCacheBytes = n
	s.mu.Unlock()
	for _, t := range c.allTables() {
		for _, r := range t.Regions() {
			r.setRowCacheBytes(n)
		}
	}
}

// RowCacheStats aggregates row-cache hit/miss counts across all regions.
func (c *Cluster) RowCacheStats() (hits, misses uint64) {
	for _, t := range c.allTables() {
		for _, r := range t.Regions() {
			h, m := r.RowCacheStats()
			hits += h
			misses += m
		}
	}
	return hits, misses
}

// CompactionBytes aggregates compaction write amplification across all
// regions.
func (c *Cluster) CompactionBytes() uint64 {
	var n uint64
	for _, t := range c.allTables() {
		for _, r := range t.Regions() {
			n += r.CompactionBytes()
		}
	}
	return n
}

// WithMetrics returns a view of the same cluster (shared tables, regions,
// and logical clock) whose operations charge m instead of this view's
// collector. Views are cheap and safe for concurrent use.
func (c *Cluster) WithMetrics(m *sim.Metrics) *Cluster {
	if m == nil {
		m = &sim.Metrics{}
	}
	return &Cluster{state: c.state, profile: c.profile, metrics: m, guard: c.guard}
}

// WithGuard returns a view whose read operations call g before touching
// storage and abort with its error when non-nil. The query layer
// installs its budget check here, making cancellation cooperative all
// the way down: a deadline fires inside a long scan or index build, not
// just between results.
func (c *Cluster) WithGuard(g func() error) *Cluster {
	return &Cluster{state: c.state, profile: c.profile, metrics: c.metrics, guard: g}
}

// CheckInterrupt runs the view's guard, if any. Exposed for job runners
// (MapReduce) that read regions locally and need the same cooperative
// cancellation points as the metered client paths.
func (c *Cluster) CheckInterrupt() error {
	if c.guard == nil {
		return nil
	}
	return c.guard()
}

// Metrics returns the cluster's metric collector.
func (c *Cluster) Metrics() *sim.Metrics { return c.metrics }

// Profile returns the cluster's hardware profile.
func (c *Cluster) Profile() sim.Profile { return c.profile }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.profile.Nodes }

// Now returns a fresh, strictly increasing logical timestamp. The paper's
// update protocol (Section 6) stamps base-data and index mutations with
// the same timestamp; callers obtain one here and reuse it.
func (c *Cluster) Now() int64 {
	s := c.state
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	return s.clock
}

// CreateTable declares a table with column families and optional split
// keys. With n split keys the table starts with n+1 regions, assigned
// round-robin to nodes (HBase pre-splitting).
func (c *Cluster) CreateTable(name string, families []string, splitKeys []string) (*Table, error) {
	if err := ValidateKeyComponent(name); err != nil {
		return nil, err
	}
	if len(families) == 0 {
		return nil, fmt.Errorf("kvstore: table %q needs at least one column family", name)
	}
	for _, k := range splitKeys {
		if k == "" {
			return nil, fmt.Errorf("kvstore: table %q has an empty split key", name)
		}
	}
	s := c.state
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("kvstore: table %q already exists", name)
	}
	t := &Table{Name: name, families: make(map[string]bool)}
	for _, f := range families {
		if err := ValidateKeyComponent(f); err != nil {
			return nil, fmt.Errorf("kvstore: bad family: %w", err)
		}
		t.families[f] = true
	}
	keys := append([]string(nil), splitKeys...)
	sort.Strings(keys)
	// Deduplicate: a repeated split key would create a degenerate,
	// unreachable region ["m", "m") that wastes one MapReduce mapper and
	// skews task-startup costs.
	uniq := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			uniq = append(uniq, k)
		}
	}
	keys = uniq
	bounds := append([]string{""}, keys...)
	for i, start := range bounds {
		end := ""
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		s.nextID++
		s.seed++
		r := newRegion(s.nextID, name, start, end, (s.nextID-1)%c.profile.Nodes, s.seed, s.rowCacheBytes)
		if s.flushThreshold > 0 {
			r.flushThreshold = s.flushThreshold
		}
		if err := r.attachStore(s.store); err != nil {
			return nil, err
		}
		t.regions = append(t.regions, r)
	}
	if s.store != nil {
		ids := make([]int, len(t.regions))
		for i, r := range t.regions {
			ids[i] = r.id
		}
		nextID, seed := s.nextID, s.seed
		if err := s.store.mutate(func(m *manifest) {
			m.NextID = nextID
			m.Seed = seed
			m.Tables = append(m.Tables, manifestTable{Name: name, Families: t.Families(), RegionIDs: ids})
			for _, r := range t.regions {
				s.store.regionRecordLocked(r.manifestTemplateLocked())
			}
		}); err != nil {
			return nil, err
		}
	}
	s.tables[name] = t
	return t, nil
}

// DropTable removes a table. On a disk-backed cluster the manifest
// forgets the table first; its files are unlinked only after that save,
// so a crash mid-drop leaves orphans, never dangling references.
func (c *Cluster) DropTable(name string) error {
	s := c.state
	s.mu.Lock()
	t, ok := s.tables[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("kvstore: no table %q", name)
	}
	delete(s.tables, name)
	s.mu.Unlock()
	if s.store == nil {
		return nil
	}
	var dropped []*manifestRegion
	if err := s.store.mutate(func(m *manifest) {
		for i, mt := range m.Tables {
			if mt.Name == name {
				m.Tables = append(m.Tables[:i], m.Tables[i+1:]...)
				break
			}
		}
		kept := m.Regions[:0]
		for _, rec := range m.Regions {
			if rec.Table == name {
				dropped = append(dropped, rec)
			} else {
				kept = append(kept, rec)
			}
		}
		m.Regions = kept
	}); err != nil {
		return err
	}
	for _, r := range t.Regions() {
		r.shutdown()
	}
	for _, rec := range dropped {
		if err := s.store.dropRegionFiles(rec); err != nil {
			return err
		}
	}
	return nil
}

// TableNames lists tables in sorted order.
func (c *Cluster) TableNames() []string {
	s := c.state
	s.mu.RLock()
	defer s.mu.RUnlock()
	var names []string
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// table fetches a table or errors.
func (c *Cluster) table(name string) (*Table, error) {
	s := c.state
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("kvstore: no table %q", name)
	}
	return t, nil
}

// HasFamily reports whether the table declares the family.
func (t *Table) HasFamily(f string) bool { return t.families[f] }

// Families returns the table's column families, sorted.
func (t *Table) Families() []string {
	var out []string
	for f := range t.families {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// regionFor locates the region containing row.
func (t *Table) regionFor(row string) *Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.regionForLocked(row)
}

// regionForLocked is regionFor with t.mu already held.
func (t *Table) regionForLocked(row string) *Region {
	// Regions are sorted by StartKey; find the last region whose start
	// is <= row.
	idx := sort.Search(len(t.regions), func(i int) bool {
		return t.regions[i].StartKey() > row
	}) - 1
	if idx < 0 {
		idx = 0
	}
	return t.regions[idx]
}

// mutateRetry routes one row's atomic mutation batch, retrying when the
// target region was concurrently split out from under it.
func (t *Table) mutateRetry(cells []Cell) error {
	for {
		r := t.regionFor(cells[0].Row)
		err := r.mutateRow(cells)
		if err != errRegionSplit {
			if err == nil {
				t.mutSeq.Add(1)
			}
			return err
		}
	}
}

// getRetry routes one keyed read, retrying across concurrent splits.
func (t *Table) getRetry(row string, families []string) (*Row, OpStats, error) {
	for {
		r := t.regionFor(row)
		got, stats, err := r.get(row, families)
		if err != errRegionSplit {
			return got, stats, err
		}
	}
}

// Regions returns the table's regions in key order (read-only use).
func (t *Table) Regions() []*Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Region(nil), t.regions...)
}

// DiskSize totals the table's stored bytes.
func (t *Table) DiskSize() uint64 {
	var s uint64
	for _, r := range t.Regions() {
		s += r.DiskSize()
	}
	return s
}

// TableRegions exposes a table's regions for locality-aware consumers
// (the MapReduce runner schedules one mapper per region, on its node).
func (c *Cluster) TableRegions(name string) ([]*Region, error) {
	t, err := c.table(name)
	if err != nil {
		return nil, err
	}
	return t.Regions(), nil
}

// TableStats summarizes a table for the query planner: region count,
// stored cell versions, live cells, and stored bytes. Like
// TableDiskSize it is free introspection — cluster metadata a client
// caches — and charges no metrics.
type TableStats struct {
	Regions int
	// Cells counts stored cell VERSIONS (every update adds one until a
	// major compaction); LiveCells counts distinct live columns — the
	// version-churn-free figure cardinality estimates should use.
	Cells     uint64
	LiveCells uint64
	Bytes     uint64
	// MutSeq is the table's mutation sequence (see Table.MutationSeq):
	// the freshness key caches of table-derived state validate against.
	MutSeq uint64
}

// TableStats returns planner statistics for a table.
func (c *Cluster) TableStats(name string) (TableStats, error) {
	t, err := c.table(name)
	if err != nil {
		return TableStats{}, err
	}
	regions := t.Regions()
	st := TableStats{Regions: len(regions), MutSeq: t.MutationSeq()}
	for _, r := range regions {
		st.Cells += uint64(r.CellCount())
		st.LiveCells += r.LiveCellCount()
		st.Bytes += r.DiskSize()
	}
	return st, nil
}

// TableDiskSize returns the table's total stored bytes.
func (c *Cluster) TableDiskSize(name string) (uint64, error) {
	t, err := c.table(name)
	if err != nil {
		return 0, err
	}
	return t.DiskSize(), nil
}

// requestOverhead approximates the fixed wire size of one RPC request.
const requestOverhead = 64

// rpcCost returns the simulated duration of one client round trip with
// the given server-side work, without charging anything.
func (c *Cluster) rpcCost(stats OpStats) time.Duration {
	return c.profile.RPCLatency +
		c.profile.ScanTime(stats.BytesRead) +
		c.profile.TransferTime(requestOverhead+stats.BytesReturned) +
		c.profile.CPUTime(stats.CellsExamined)
}

// chargeRPCCounters meters the resource counters of one round trip
// (bytes, read units, RPC count) without advancing the clock — callers
// doing parallel-lane accounting advance it themselves.
func (c *Cluster) chargeRPCCounters(stats OpStats) {
	c.metrics.AddReadRPC(requestOverhead+stats.BytesReturned, stats.CellsExamined, stats.BytesRead)
}

// chargeRPC meters one client round trip: latency, request+response
// bytes, and the server-side disk work.
func (c *Cluster) chargeRPC(stats OpStats) {
	c.chargeRPCCounters(stats)
	c.metrics.Advance(c.rpcCost(stats))
}

// chargeWrite meters a mutation RPC.
func (c *Cluster) chargeWrite(bytes uint64, cells int) {
	c.metrics.AddRPC()
	c.metrics.AddNetwork(requestOverhead + bytes)
	c.metrics.AddKVWrites(uint64(cells))
	c.metrics.Advance(c.profile.RPCLatency + c.profile.TransferTime(requestOverhead+bytes))
}

// Put writes one cell (timestamp 0 means "stamp with Now()").
func (c *Cluster) Put(table string, cell Cell) error {
	t, err := c.table(table)
	if err != nil {
		return err
	}
	if !t.HasFamily(cell.Family) {
		return fmt.Errorf("kvstore: table %q has no family %q", table, cell.Family)
	}
	if cell.Timestamp == 0 {
		cell.Timestamp = c.Now()
	}
	cell.Tombstone = false
	if err := t.mutateRetry([]Cell{cell}); err != nil {
		return err
	}
	c.chargeWrite(cell.StoredSize(), 1)
	return nil
}

// Delete writes a tombstone for one column.
func (c *Cluster) Delete(table, row, family, qualifier string, ts int64) error {
	t, err := c.table(table)
	if err != nil {
		return err
	}
	if ts == 0 {
		ts = c.Now()
	}
	cell := Cell{Row: row, Family: family, Qualifier: qualifier, Timestamp: ts, Tombstone: true}
	if err := t.mutateRetry([]Cell{cell}); err != nil {
		return err
	}
	c.chargeWrite(cell.StoredSize(), 1)
	return nil
}

// MutateRow applies several cells of one row atomically (one RPC, one
// WAL append batch, one region lock), the primitive Section 6's index
// maintenance builds on.
func (c *Cluster) MutateRow(table string, cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	t, err := c.table(table)
	if err != nil {
		return err
	}
	var bytes uint64
	for i := range cells {
		if !t.HasFamily(cells[i].Family) {
			return fmt.Errorf("kvstore: table %q has no family %q", table, cells[i].Family)
		}
		if cells[i].Timestamp == 0 {
			cells[i].Timestamp = c.Now()
		}
		bytes += cells[i].StoredSize()
	}
	if err := t.mutateRetry(cells); err != nil {
		return err
	}
	c.chargeWrite(bytes, len(cells))
	return nil
}

// Get fetches one row (nil if absent). families==nil fetches all.
func (c *Cluster) Get(table, row string, families ...string) (*Row, error) {
	if err := c.CheckInterrupt(); err != nil {
		return nil, err
	}
	t, err := c.table(table)
	if err != nil {
		return nil, err
	}
	got, stats, err := t.getRetry(row, families)
	if err != nil {
		return nil, err
	}
	// A keyed read costs one seek rather than a scan of the region —
	// and a row-cache hit not even that: no disk bytes (get reports
	// BytesRead accordingly), no seek. The RPC, transfer, and per-KV
	// CPU costs always apply, and the read units are always billed
	// (DynamoDB charges per request, not per disk access). On a
	// disk-backed cluster the seek charge is MEASURED: one seek per
	// SSTable block actually fetched (block-cache hits and
	// memtable-only reads fetch none), replacing the memory mode's
	// flat one-seek formula.
	c.chargeRPC(stats)
	if stats.CacheHits == 0 {
		if c.state.store != nil {
			c.metrics.Advance(time.Duration(stats.BlockReads) * c.profile.SeekLatency)
		} else {
			c.metrics.Advance(c.profile.SeekLatency)
		}
	}
	return got, nil
}

// BatchPut loads many cells efficiently (one logical bulk RPC per region
// batch), used by data generators and index builders. It bypasses
// per-cell RPC latency but still meters bytes and write counts.
func (c *Cluster) BatchPut(table string, cells []Cell) error {
	t, err := c.table(table)
	if err != nil {
		return err
	}
	var bytes uint64
	// Group into per-row atomic mutations; routing happens per row at
	// apply time (with split retry), so a concurrent region split cannot
	// strand a batch on a retired region.
	byRow := map[string][]Cell{}
	var order []string
	for i := range cells {
		if !t.HasFamily(cells[i].Family) {
			return fmt.Errorf("kvstore: table %q has no family %q", table, cells[i].Family)
		}
		if cells[i].Timestamp == 0 {
			cells[i].Timestamp = c.Now()
		}
		bytes += cells[i].StoredSize()
		if _, ok := byRow[cells[i].Row]; !ok {
			order = append(order, cells[i].Row)
		}
		byRow[cells[i].Row] = append(byRow[cells[i].Row], cells[i])
	}
	sort.Strings(order)
	for _, row := range order {
		if err := t.mutateRetry(byRow[row]); err != nil {
			return err
		}
	}
	c.metrics.AddRPC()
	c.metrics.AddNetwork(requestOverhead + bytes)
	c.metrics.AddKVWrites(uint64(len(cells)))
	c.metrics.Advance(c.profile.RPCLatency + c.profile.TransferTime(requestOverhead+bytes))
	return nil
}

// TableMutation is one table's share of a multi-table group write.
type TableMutation struct {
	Table string
	Cells []Cell
}

// GroupWriteError reports a group write that failed part-way: the listed
// Applied tables received all their mutations, Table's did not (its rows
// before the failing one may have landed — row batches stay atomic, the
// cross-table group does not). Callers that must keep several tables in
// lockstep (index maintenance) surface this so the divergence is
// re-appliable instead of silent.
type GroupWriteError struct {
	// Table is the table whose mutations failed.
	Table string
	// Applied lists tables whose mutations fully landed before the
	// failure, in apply order.
	Applied []string
	// Err is the underlying mutation error.
	Err error
}

func (e *GroupWriteError) Error() string {
	return fmt.Sprintf("kvstore: group write to %q failed (applied: %v): %v", e.Table, e.Applied, e.Err)
}

func (e *GroupWriteError) Unwrap() error { return e.Err }

// GroupWrite applies cell mutations spanning several tables as ONE
// batched client write: each row's cells apply atomically (one region
// lock cycle, one WAL append batch per row), and the whole group is
// charged a single mutation RPC — latency once, bytes summed — instead
// of one round trip per cell. This is the transport Section 6's
// write-through index maintenance rides: a tuple insert augments into
// base + IJLMR + ISL + BFHM + DRJN mutations and ships as one batch.
//
// Zero timestamps are stamped with one shared fresh Now() for the whole
// group (the paper's same-timestamp treatment); pre-stamped cells keep
// their timestamps, which makes re-applying an identical group after a
// partial failure idempotent — same cell coordinates, same timestamps,
// same values.
//
// On a mid-group failure the returned *GroupWriteError names the failed
// table and the tables already applied; nothing is charged.
func (c *Cluster) GroupWrite(muts []TableMutation) error {
	var ts int64
	var bytes uint64
	cellCount := 0
	var applied []string
	for mi := range muts {
		m := &muts[mi]
		if len(m.Cells) == 0 {
			continue
		}
		t, err := c.table(m.Table)
		if err != nil {
			return &GroupWriteError{Table: m.Table, Applied: applied, Err: err}
		}
		// Group this table's cells into per-row atomic mutations, routed
		// at apply time (mutateRetry) so concurrent splits re-route.
		byRow := map[string][]Cell{}
		var order []string
		for i := range m.Cells {
			if !t.HasFamily(m.Cells[i].Family) {
				return &GroupWriteError{
					Table: m.Table, Applied: applied,
					Err: fmt.Errorf("kvstore: table %q has no family %q", m.Table, m.Cells[i].Family),
				}
			}
			if m.Cells[i].Timestamp == 0 {
				if ts == 0 {
					ts = c.Now()
				}
				m.Cells[i].Timestamp = ts
			}
			bytes += m.Cells[i].StoredSize()
			if _, ok := byRow[m.Cells[i].Row]; !ok {
				order = append(order, m.Cells[i].Row)
			}
			byRow[m.Cells[i].Row] = append(byRow[m.Cells[i].Row], m.Cells[i])
		}
		sort.Strings(order)
		for _, row := range order {
			if err := t.mutateRetry(byRow[row]); err != nil {
				return &GroupWriteError{Table: m.Table, Applied: applied, Err: err}
			}
		}
		cellCount += len(m.Cells)
		applied = append(applied, m.Table)
	}
	if cellCount == 0 {
		//lint:allow chargecheck an empty group applied no mutations, so there is nothing to bill
		return nil
	}
	c.chargeWrite(bytes, cellCount)
	return nil
}

// SplitRegion splits the region containing row at its middle key. The
// table's region lock is held exclusively for the duration: no client
// can route to the retiring parent mid-split, and the parent itself is
// closed atomically with the cell snapshot, so a write that raced the
// split either landed before the snapshot (and is carried into a child)
// or retries against the children — never lost.
//
//lint:allow chargecheck region splits are server-side admin work, free in the client cost model
func (c *Cluster) SplitRegion(table, row string) error {
	t, err := c.table(table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.regionForLocked(row)
	mid := r.splitPoint()
	if mid == "" || mid == r.StartKey() {
		return fmt.Errorf("kvstore: region %d too small to split", r.ID())
	}

	s := c.state
	s.mu.Lock()
	s.nextID++
	s.seed++
	leftID, leftSeed := s.nextID, s.seed
	s.nextID++
	s.seed++
	rightID, rightSeed := s.nextID, s.seed
	cacheBytes := s.rowCacheBytes
	s.mu.Unlock()

	cells, err := r.closeAndSnapshot()
	if err != nil {
		r.reopen()
		return err
	}
	left := newRegion(leftID, table, r.StartKey(), mid, r.Node(), leftSeed, cacheBytes)
	right := newRegion(rightID, table, mid, r.EndKey(), rightID%c.profile.Nodes, rightSeed, cacheBytes)
	s.mu.RLock()
	if s.flushThreshold > 0 {
		left.flushThreshold = s.flushThreshold
		right.flushThreshold = s.flushThreshold
	}
	s.mu.RUnlock()
	if err := left.attachStore(s.store); err != nil {
		r.reopen()
		return err
	}
	if err := right.attachStore(s.store); err != nil {
		r.reopen()
		return err
	}
	// Carry the split region's cumulative counters onto the left child
	// so cluster-wide CompactionBytes/RowCacheStats aggregates stay
	// monotonic across splits.
	left.compactionBytes = r.CompactionBytes()
	h, m := r.cache.stats()
	left.cache.seedStats(h, m)

	// Seed each child with one batched load (single lock cycle) whose
	// trailing flush materializes a segment and truncates the seed WAL.
	// On disk the flushes upsert the children's manifest records while
	// they are still DETACHED — no table references them yet, so a
	// crash here leaves orphan records/files that cleanOrphans removes,
	// with the parent (and all data) intact.
	split := sort.Search(len(cells), func(i int) bool { return cells[i].Row >= mid })
	if err := left.seedCells(cells[:split]); err != nil {
		r.reopen()
		return err
	}
	if err := right.seedCells(cells[split:]); err != nil {
		r.reopen()
		return err
	}

	// Replace r in the table's sorted region list.
	replaced := false
	for i, reg := range t.regions {
		if reg == r {
			t.regions = append(t.regions[:i], append([]*Region{left, right}, t.regions[i+1:]...)...)
			replaced = true
			break
		}
	}
	if !replaced {
		r.reopen()
		return fmt.Errorf("kvstore: region %d not found in table %q", r.ID(), table)
	}
	if s.store == nil {
		return nil
	}

	// One atomic manifest save performs the routing swap: the children
	// enter the table's membership, the parent's record leaves. Only
	// after that save are the parent's files unlinked (open descriptors
	// of locality-pinned scans keep the unlinked data readable).
	var parentRec *manifestRegion
	s.mu.RLock()
	nextID, seed := s.nextID, s.seed
	s.mu.RUnlock()
	if err := s.store.mutate(func(m *manifest) {
		m.NextID = nextID
		m.Seed = seed
		s.store.regionRecordLocked(left.manifestTemplateLocked())
		s.store.regionRecordLocked(right.manifestTemplateLocked())
		for ti := range m.Tables {
			if m.Tables[ti].Name != table {
				continue
			}
			ids := make([]int, 0, len(m.Tables[ti].RegionIDs)+1)
			for _, id := range m.Tables[ti].RegionIDs {
				if id == r.ID() {
					ids = append(ids, leftID, rightID)
				} else {
					ids = append(ids, id)
				}
			}
			m.Tables[ti].RegionIDs = ids
		}
		kept := m.Regions[:0]
		for _, rec := range m.Regions {
			if rec.ID == r.ID() {
				parentRec = rec
			} else {
				kept = append(kept, rec)
			}
		}
		m.Regions = kept
	}); err != nil {
		return err
	}
	if parentRec != nil {
		if err := s.store.dropRegionFiles(parentRec); err != nil {
			return err
		}
	}
	return nil
}

// MoveRegion reassigns the region containing row to another node
// (failure-injection and balance tests).
func (c *Cluster) MoveRegion(table, row string, node int) error {
	t, err := c.table(table)
	if err != nil {
		return err
	}
	if node < 0 || node >= c.profile.Nodes {
		return fmt.Errorf("kvstore: node %d out of range", node)
	}
	for {
		r := t.regionFor(row)
		r.mu.Lock()
		if r.closed {
			// Lost a race with a split: the move must land on the
			// child now serving the row, not the retired parent.
			r.mu.Unlock()
			continue
		}
		r.node = node
		r.mu.Unlock()
		if s := c.state; s.store != nil {
			return s.store.mutate(func(m *manifest) {
				for _, rec := range m.Regions {
					if rec.ID == r.ID() {
						rec.Node = node
					}
				}
			})
		}
		return nil
	}
}

package kvstore

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// KeySep separates logical components inside composite row keys (e.g. the
// BFHM's "bucketNo|bitPos" reverse-mapping keys).
const KeySep = "|"

// EncodeFloat encodes a float64 as a 16-character lowercase-hex string
// whose lexicographic order equals the numeric order of the input.
// The standard trick: flip the sign bit of non-negative values, flip all
// bits of negative values.
func EncodeFloat(f float64) string {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], bits)
	return hex.EncodeToString(b[:])
}

// DecodeFloat reverses EncodeFloat.
func DecodeFloat(s string) (float64, error) {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != 8 {
		return 0, fmt.Errorf("kvstore: bad float key %q", s)
	}
	bits := binary.BigEndian.Uint64(raw)
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits), nil
}

// EncodeScoreDesc encodes a score so that HIGHER scores sort FIRST under
// the store's ascending-only scans. Like the paper's ISL index ("we have
// used the negated score values as the index keys", Section 4.2.2) this
// is EncodeFloat of the negated score.
func EncodeScoreDesc(score float64) string {
	return EncodeFloat(-score)
}

// DecodeScoreDesc reverses EncodeScoreDesc.
func DecodeScoreDesc(s string) (float64, error) {
	f, err := DecodeFloat(s)
	if err != nil {
		return 0, err
	}
	return -f, nil
}

// EncodeUint encodes n as fixed-width zero-padded decimal so that
// lexicographic order equals numeric order for values below 10^width.
// Hand-rolled padding instead of fmt.Sprintf: this runs once per
// reverse-mapping key on the BFHM hot path.
func EncodeUint(n uint64, width int) string {
	var digits [20]byte
	s := strconv.AppendUint(digits[:0], n, 10)
	if len(s) >= width {
		return string(s)
	}
	var buf [32]byte
	out := buf[:]
	if width > len(buf) {
		out = make([]byte, width)
	}
	out = out[:width]
	pad := width - len(s)
	for i := 0; i < pad; i++ {
		out[i] = '0'
	}
	copy(out[pad:], s)
	return string(out)
}

// BucketKey builds a BFHM/DRJN bucket row key: zero-padded bucket number.
func BucketKey(bucket int) string { return EncodeUint(uint64(bucket), 6) }

// ReverseMapKey builds the BFHM reverse-mapping row key "bucket|bitpos"
// (Section 5.1: "the key consists of the concatenation of the bucket
// number and bit position").
func ReverseMapKey(bucket int, bitPos uint64) string {
	return BucketKey(bucket) + KeySep + EncodeUint(bitPos, 12)
}

// ValidateKeyComponent rejects strings that would break composite-key
// parsing or the store's internal cell encoding.
func ValidateKeyComponent(s string) error {
	if s == "" {
		return fmt.Errorf("kvstore: empty key component")
	}
	if strings.ContainsRune(s, 0) {
		return fmt.Errorf("kvstore: key component %q contains NUL", s)
	}
	return nil
}

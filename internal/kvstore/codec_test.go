package kvstore

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeFloatOrderPreserving(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := EncodeFloat(a), EncodeFloat(b)
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			return ea == eb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeFloatRoundTrip(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) {
			return true
		}
		got, err := DecodeFloat(EncodeFloat(a))
		return err == nil && got == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	for _, v := range []float64{0, 1, -1, 0.5, -0.5, math.Inf(1), math.Inf(-1), math.MaxFloat64, -math.MaxFloat64} {
		got, err := DecodeFloat(EncodeFloat(v))
		if err != nil || got != v {
			t.Errorf("round trip %g -> %g (%v)", v, got, err)
		}
	}
}

func TestDecodeFloatErrors(t *testing.T) {
	if _, err := DecodeFloat("zz"); err == nil {
		t.Error("bad hex must fail")
	}
	if _, err := DecodeFloat("00ff"); err == nil {
		t.Error("short key must fail")
	}
}

func TestEncodeScoreDescOrdering(t *testing.T) {
	// Higher scores must sort lexicographically FIRST.
	scores := []float64{1.0, 0.93, 0.92, 0.91, 0.82, 0.79, 0.35, 0.31, 0.0}
	for i := 1; i < len(scores); i++ {
		hi, lo := EncodeScoreDesc(scores[i-1]), EncodeScoreDesc(scores[i])
		if hi >= lo {
			t.Errorf("EncodeScoreDesc(%g)=%s not before EncodeScoreDesc(%g)=%s",
				scores[i-1], hi, scores[i], lo)
		}
	}
	got, err := DecodeScoreDesc(EncodeScoreDesc(0.73))
	if err != nil || got != 0.73 {
		t.Errorf("DecodeScoreDesc round trip = %g, %v", got, err)
	}
}

func TestEncodeUintOrdering(t *testing.T) {
	prev := ""
	for n := uint64(0); n < 1000; n += 7 {
		s := EncodeUint(n, 6)
		if len(s) != 6 {
			t.Fatalf("EncodeUint(%d, 6) = %q, want width 6", n, s)
		}
		if s <= prev && prev != "" {
			t.Fatalf("ordering broken at %d: %q <= %q", n, s, prev)
		}
		prev = s
	}
}

func TestBucketAndReverseMapKeys(t *testing.T) {
	if BucketKey(3) >= BucketKey(10) {
		t.Error("bucket keys must sort numerically")
	}
	k := ReverseMapKey(2, 12345)
	if k != "000002|000000012345" {
		t.Errorf("ReverseMapKey = %q", k)
	}
	// All reverse-mapping keys of bucket b sort after the bucket row key
	// and before bucket b+1's row key.
	if !(BucketKey(2) < k && k < BucketKey(3)) {
		t.Error("reverse map keys must nest between bucket keys")
	}
}

func TestValidateKeyComponent(t *testing.T) {
	if err := ValidateKeyComponent("ok-key"); err != nil {
		t.Errorf("valid key rejected: %v", err)
	}
	if err := ValidateKeyComponent(""); err == nil {
		t.Error("empty key accepted")
	}
	if err := ValidateKeyComponent("a\x00b"); err == nil {
		t.Error("NUL key accepted")
	}
}

func TestCellKeyRoundTrip(t *testing.T) {
	key := cellKey("row1", "cf", "col", 42, 7)
	row, fam, qual, ts, seq, err := parseCellKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if row != "row1" || fam != "cf" || qual != "col" || ts != 42 || seq != 7 {
		t.Fatalf("parsed (%q,%q,%q,%d,%d)", row, fam, qual, ts, seq)
	}
	if _, _, _, _, _, err := parseCellKey("garbage"); err == nil {
		t.Error("malformed key accepted")
	}
}

func TestCellKeyNewestFirst(t *testing.T) {
	older := cellKey("r", "f", "q", 1, 1)
	newer := cellKey("r", "f", "q", 2, 2)
	if newer >= older {
		t.Error("newer version must sort before older")
	}
	// Same timestamp: higher seq sorts first.
	a := cellKey("r", "f", "q", 5, 10)
	b := cellKey("r", "f", "q", 5, 11)
	if b >= a {
		t.Error("higher seq must sort before lower at equal ts")
	}
}

func TestCellStoredSizeAndColumn(t *testing.T) {
	c := Cell{Row: "r", Family: "f", Qualifier: "q", Value: []byte("hello")}
	if c.StoredSize() != uint64(1+1+1+5+cellOverhead) {
		t.Errorf("StoredSize = %d", c.StoredSize())
	}
	if c.Column() != "f:q" {
		t.Errorf("Column = %q", c.Column())
	}
	if c.String() == "" {
		t.Error("String empty")
	}
	c.Tombstone = true
	if c.String() == "" {
		t.Error("tombstone String empty")
	}
}

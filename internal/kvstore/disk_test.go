package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// openDiskCluster opens a disk-backed cluster rooted at dir, failing the
// test on error.
func openDiskCluster(t *testing.T, dir string) *Cluster {
	t.Helper()
	c, err := OpenCluster(sim.LC(), nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// snapshotRows scans the whole table, failing the test on error.
func snapshotRows(t *testing.T, c *Cluster, table string) []Row {
	t.Helper()
	rows, err := c.ScanAll(Scan{Table: table})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// sstFilesOnDisk lists the .sst files present in dir.
func sstFilesOnDisk(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), sstFileSuffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestColdStartRecovery runs a randomized workload — multi-version puts,
// deletes, forced flushes, compactions, a split — closes the cluster,
// reopens the directory, and requires the recovered table to match the
// pre-close snapshot exactly. New writes after reopen must keep working
// (sequence and clock floors advanced past everything recovered).
func TestColdStartRecovery(t *testing.T) {
	dir := t.TempDir()
	c := openDiskCluster(t, dir)
	c.SetFlushThreshold(2 << 10) // force real SSTables early
	mustCreate(t, c, "t", []string{"a", "b"}, []string{"row40"})

	rng := rand.New(rand.NewSource(7))
	live := map[string]bool{}
	for i := 0; i < 600; i++ {
		row := fmt.Sprintf("row%02d", rng.Intn(80))
		switch rng.Intn(10) {
		case 0:
			if err := c.Delete("t", row, "a", "q", 0); err != nil {
				t.Fatal(err)
			}
			live[row] = false
		default:
			cell := Cell{Row: row, Family: "a", Qualifier: "q",
				Value: []byte(fmt.Sprintf("v%d", i))}
			if rng.Intn(3) == 0 {
				cell.Family, cell.Qualifier = "b", fmt.Sprintf("q%d", rng.Intn(4))
			}
			if err := c.Put("t", cell); err != nil {
				t.Fatal(err)
			}
			live[row] = true
		}
		switch i {
		case 200:
			if err := c.FlushAll(); err != nil {
				t.Fatal(err)
			}
		case 350:
			if err := c.SplitRegion("t", "row60"); err != nil {
				t.Fatal(err)
			}
		case 450:
			regs, err := c.TableRegions("t")
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range regs {
				if err := r.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	want := snapshotRows(t, c, "t")
	if len(want) == 0 {
		t.Fatal("workload produced no rows")
	}
	clockBefore := c.Now()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := openDiskCluster(t, dir)
	got := snapshotRows(t, c2, "t")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered scan differs: %d rows vs %d before close", len(got), len(want))
	}

	// The recovered cluster must keep absorbing writes: timestamps stay
	// monotonic and a fresh put is immediately visible.
	if now := c2.Now(); now < clockBefore {
		t.Fatalf("recovered clock %d regressed below %d", now, clockBefore)
	}
	if err := c2.Put("t", Cell{Row: "row00", Family: "a", Qualifier: "q", Value: []byte("post")}); err != nil {
		t.Fatal(err)
	}
	row, err := c2.Get("t", "row00")
	if err != nil || row == nil {
		t.Fatalf("post-recovery read: %v %v", row, err)
	}
	found := false
	for _, cell := range row.Cells {
		if cell.Family == "a" && cell.Qualifier == "q" && string(cell.Value) == "post" {
			found = true
		}
	}
	if !found {
		t.Error("post-recovery write not visible")
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestColdStartReplaysWAL covers the unflushed path: rows that only ever
// reached the WAL + memtable must survive an abrupt stop (no Close, file
// handles simply abandoned) because every mutation hit the log first.
func TestColdStartReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	c := openDiskCluster(t, dir)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	for i := 0; i < 50; i++ {
		cell := Cell{Row: fmt.Sprintf("r%03d", i), Family: "cf", Qualifier: "q",
			Value: []byte(fmt.Sprintf("v%d", i))}
		if err := c.Put("t", cell); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotRows(t, c, "t")
	// No Close: simulate a crash with everything still in the memtable.

	c2 := openDiskCluster(t, dir)
	got := snapshotRows(t, c2, "t")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WAL replay lost data: %d rows vs %d written", len(got), len(want))
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionCrashLosesNothing exercises the compaction GC protocol:
// a simulated crash between the manifest save and the obsolete-file
// unlink must lose no data, and the next open must remove the orphaned
// input files the crash left behind.
func TestCompactionCrashLosesNothing(t *testing.T) {
	dir := t.TempDir()
	c := openDiskCluster(t, dir)
	c.SetFlushThreshold(1 << 10)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	for i := 0; i < 300; i++ {
		cell := Cell{Row: fmt.Sprintf("r%03d", i%60), Family: "cf", Qualifier: "q",
			Value: []byte(fmt.Sprintf("value-%04d", i))}
		if err := c.Put("t", cell); err != nil {
			t.Fatal(err)
		}
	}
	regs, err := c.TableRegions("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	regs[0].mu.RLock()
	nSegs := len(regs[0].segments)
	regs[0].mu.RUnlock()
	if nSegs < 2 {
		t.Fatalf("workload built %d segments, want >= 2 so compaction has real inputs", nSegs)
	}
	want := snapshotRows(t, c, "t")

	store := c.state.store
	store.mu.Lock()
	store.crashAfterRegister = true
	store.mu.Unlock()
	if err := regs[0].Compact(); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("Compact under crash hook: %v, want errSimulatedCrash", err)
	}
	// The crash window leaves the replaced inputs on disk as orphans:
	// the saved manifest references only the merged output.
	onDisk := sstFilesOnDisk(t, dir)
	man := store.snapshotManifest()
	referenced := map[string]bool{}
	for _, rec := range man.Regions {
		for _, f := range rec.Files {
			referenced[f] = true
		}
	}
	orphans := 0
	for _, f := range onDisk {
		if !referenced[f] {
			orphans++
		}
	}
	if orphans == 0 {
		t.Fatal("crash hook left no orphan files; the simulated window is empty")
	}
	// Abandon c without Close: the process died mid-compaction.

	c2 := openDiskCluster(t, dir)
	got := snapshotRows(t, c2, "t")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("compaction crash lost data: %d rows vs %d before crash", len(got), len(want))
	}
	// Recovery GC: every .sst still on disk is referenced by the
	// recovered manifest.
	man2 := c2.state.store.snapshotManifest()
	referenced = map[string]bool{}
	for _, rec := range man2.Regions {
		for _, f := range rec.Files {
			referenced[f] = true
		}
	}
	for _, f := range sstFilesOnDisk(t, dir) {
		if !referenced[f] {
			t.Errorf("orphan %s survived recovery", f)
		}
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBlockCacheServesRepeatReads checks the measured-I/O plumbing: a
// cold read pays block fetches, a repeat of the same read (row cache
// off) is served by the block cache.
func TestBlockCacheServesRepeatReads(t *testing.T) {
	dir := t.TempDir()
	c := openDiskCluster(t, dir)
	c.SetRowCacheBytes(0)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	for i := 0; i < 100; i++ {
		cell := Cell{Row: fmt.Sprintf("r%03d", i), Family: "cf", Qualifier: "q",
			Value: []byte(fmt.Sprintf("v%d", i))}
		if err := c.Put("t", cell); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("t", "r050"); err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := c.BlockCacheStats()
	if misses0 == 0 {
		t.Fatal("cold read measured no block fetches")
	}
	if _, err := c.Get("t", "r050"); err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := c.BlockCacheStats()
	if misses1 != misses0 {
		t.Errorf("repeat read missed the block cache: %d misses, was %d", misses1, misses0)
	}
	if hits1 <= hits0 {
		t.Errorf("repeat read recorded no block-cache hits (%d -> %d)", hits0, hits1)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

package kvstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// diskStore is the durable side of a cluster: a directory holding one
// MANIFEST, the SSTable files of every region, and one WAL file per
// region, plus the process-wide block cache. A nil *diskStore means the
// cluster is memory-only (the pre-existing behaviour).
//
// Durability protocol:
//
//   - The MANIFEST is the single source of truth. It is replaced
//     atomically (write tmp, fsync, rename, fsync dir), so it is always
//     either the old or the new state, never a torn mix.
//   - A new SSTable file is fsynced BEFORE it is referenced by a saved
//     manifest; a crash in between leaves an unreferenced file that
//     cleanOrphansLocked unlinks at the next open.
//   - Obsolete files (compaction inputs, dropped tables, split parents)
//     are unlinked only AFTER the manifest that stops referencing them
//     is durably saved; a crash in between leaves orphans, never a
//     manifest pointing at missing data.
type diskStore struct {
	dir   string
	cache *blockCache
	// fs is the filesystem seam every durable byte flows through. Set
	// once at open, read-only afterwards; DefaultVFS in production,
	// a faultfs wrapper under fault injection.
	fs VFS

	mu  sync.Mutex // leaf lock: region/table/state locks may be held when acquiring it
	man manifest   // guarded by: mu

	// crashAfterRegister simulates a crash between the manifest save and
	// the obsolete-file unlink in registerSegments (test hook): the save
	// happens, the unlink does not, and errSimulatedCrash is returned.
	crashAfterRegister bool // guarded by: mu
}

// errSimulatedCrash is returned by registerSegments under the
// crashAfterRegister test hook.
var errSimulatedCrash = errors.New("kvstore: simulated crash after manifest register")

const manifestName = "MANIFEST"

// manifestRegion is one region's durable record. Records live in a flat
// list; a table's manifestTable.RegionIDs names which of them serve the
// table. The indirection is what makes splits crash-safe: children are
// upserted here while still detached, and one atomic manifest save swaps
// the membership from parent to children.
type manifestRegion struct {
	ID    int
	Table string
	Start string
	End   string
	Node  int
	Seq   uint64
	Files []string // SSTables, newest first
}

// manifestTable records a table's schema and region membership in key
// order.
type manifestTable struct {
	Name      string
	Families  []string
	RegionIDs []int
}

// manifest is the serialized cluster state.
type manifest struct {
	NextID   int
	Clock    int64
	Seed     int64
	NextFile uint64
	Tables   []manifestTable
	Regions  []*manifestRegion
	Meta     map[string]string `json:",omitempty"`
}

// openDiskStore opens (or initializes) a store directory, loads the
// manifest, and removes orphaned files left by crashes.
func openDiskStore(dir string, cacheBytes uint64, fsys VFS) (*diskStore, error) {
	if fsys == nil {
		fsys = DefaultVFS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &diskStore{dir: dir, cache: newBlockCache(cacheBytes), fs: fsys}
	raw, err := readFileVFS(fsys, filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &s.man); err != nil {
			return nil, corruptionAt(manifestName, -1, fmt.Errorf("corrupt manifest: %v", err))
		}
	case errors.Is(err, fs.ErrNotExist):
		// Fresh store.
	default:
		return nil, err
	}
	if err := s.cleanOrphansLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// cleanOrphansLocked removes region records no table references (aborted
// splits) and files no surviving record references (crashes between
// file creation and registration, or between deregistration and unlink).
// It also advances NextFile past every file on disk so numbers are never
// reused while an orphan still exists. Called from openDiskStore before
// the store is shared, which is stronger than holding s.mu.
func (s *diskStore) cleanOrphansLocked() error {
	referenced := map[int]bool{}
	for _, t := range s.man.Tables {
		for _, id := range t.RegionIDs {
			referenced[id] = true
		}
	}
	kept := s.man.Regions[:0]
	for _, r := range s.man.Regions {
		if referenced[r.ID] {
			kept = append(kept, r)
		}
	}
	changed := len(kept) != len(s.man.Regions)
	s.man.Regions = kept

	liveFiles := map[string]bool{}
	for _, r := range s.man.Regions {
		liveFiles[walName(r.ID)] = true
		for _, f := range r.Files {
			liveFiles[f] = true
		}
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == manifestName:
			continue
		case strings.HasSuffix(name, sstFileSuffix):
			if n := sstFileNum(name) + 1; n > s.man.NextFile {
				s.man.NextFile = n
			}
		case strings.HasSuffix(name, ".wal"), strings.HasSuffix(name, ".tmp"):
		default:
			continue
		}
		if !liveFiles[name] {
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
		}
	}
	if changed {
		return s.saveLocked()
	}
	return nil
}

func walName(regionID int) string { return fmt.Sprintf("r%06d.wal", regionID) }

func (s *diskStore) walPath(regionID int) string {
	return filepath.Join(s.dir, walName(regionID))
}

// allocFile reserves the next SSTable file name. The counter is made
// durable by the registerSegments (or mutate) call that references the
// file; a crash before that leaves an orphan the next open removes, so
// reusing the number after restart is safe.
func (s *diskStore) allocFile() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.man.NextFile
	s.man.NextFile++
	return fmt.Sprintf("%06d%s", n, sstFileSuffix)
}

// saveLocked atomically replaces the manifest. Caller holds s.mu.
func (s *diskStore) saveLocked() error {
	raw, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := s.fs.OpenFile(tmp, osWriteTrunc, 0o644)
	if err != nil {
		return &IOError{Path: tmp, Op: "open", Err: err}
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return &IOError{Path: tmp, Op: "write", Err: err}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return &IOError{Path: tmp, Op: "sync", Err: err}
	}
	if err := f.Close(); err != nil {
		return &IOError{Path: tmp, Op: "close", Err: err}
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return &IOError{Path: tmp, Op: "rename", Err: err}
	}
	_ = s.fs.SyncDir(s.dir)
	return nil
}

// mutate applies fn to the manifest under the store lock and saves it
// atomically.
func (s *diskStore) mutate(fn func(*manifest)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(&s.man)
	return s.saveLocked()
}

// regionRecordLocked finds (or appends) the record for region id.
func (s *diskStore) regionRecordLocked(tmpl manifestRegion) *manifestRegion {
	for _, r := range s.man.Regions {
		if r.ID == tmpl.ID {
			return r
		}
	}
	r := &tmpl
	s.man.Regions = append(s.man.Regions, r)
	return r
}

// registerSegments durably records a region's new SSTable file list
// (newest first) and sequence number, then — only after the manifest is
// safely on disk — unlinks the files the new set replaces. The region
// record is upserted, so detached split children register themselves
// before any table references them. maxTs advances the manifest clock
// floor, keeping recovered timestamps monotonic.
func (s *diskStore) registerSegments(tmpl manifestRegion, files []string, seq uint64, maxTs int64, obsolete []string) error {
	s.mu.Lock()
	rec := s.regionRecordLocked(tmpl)
	rec.Files = append([]string(nil), files...)
	rec.Seq = seq
	if maxTs > s.man.Clock {
		s.man.Clock = maxTs
	}
	err := s.saveLocked()
	crash := s.crashAfterRegister
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if crash {
		return errSimulatedCrash
	}
	for _, f := range obsolete {
		if err := s.fs.Remove(filepath.Join(s.dir, f)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	return nil
}

// dropRegionFiles removes a region's record and unlinks its files and
// WAL; callers must have saved a manifest that no longer references the
// region (DropTable, split completion) before calling.
func (s *diskStore) dropRegionFiles(rec *manifestRegion) error {
	for _, f := range rec.Files {
		if err := s.fs.Remove(filepath.Join(s.dir, f)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	if err := s.fs.Remove(s.walPath(rec.ID)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// meta returns the value stored under key in the manifest Meta map.
func (s *diskStore) meta(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Meta[key]
}

// setMeta durably stores an opaque key/value (the rankjoin layer keeps
// its relation/index catalog here).
func (s *diskStore) setMeta(key, value string) error {
	return s.mutate(func(m *manifest) {
		if m.Meta == nil {
			m.Meta = map[string]string{}
		}
		m.Meta[key] = value
	})
}

// snapshotManifest returns a deep copy of the current manifest, for
// cold-start reconstruction.
func (s *diskStore) snapshotManifest() manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := s.man
	cp.Tables = append([]manifestTable(nil), s.man.Tables...)
	cp.Regions = make([]*manifestRegion, len(s.man.Regions))
	for i, r := range s.man.Regions {
		rc := *r
		rc.Files = append([]string(nil), r.Files...)
		cp.Regions[i] = &rc
	}
	return cp
}

// sortRegionIDs orders a table's region IDs by their records' start keys
// (the manifest's canonical region order).
func sortRegionIDs(ids []int, byID map[int]*manifestRegion) {
	sort.Slice(ids, func(i, j int) bool {
		return byID[ids[i]].Start < byID[ids[j]].Start
	})
}

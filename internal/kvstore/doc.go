// Package kvstore implements the NoSQL substrate the paper's algorithms
// run on: an embedded, deterministic, HBase-like distributed sorted
// key-value store.
//
// The data model follows Section 1 of the paper: a key-value pair is the
// quadruplet {row key, column name, column value, timestamp}; a table is
// an ordered collection of key-value pairs; a row is the set of pairs
// sharing a key; column families partition a table vertically. Tables are
// horizontally sharded into key-range regions, each hosted by one node of
// a simulated cluster. The store supports efficient point gets, ascending
// keyed scans (with client-side batching, like HBase scanner caching),
// server-side filters, and row-level atomic mutations — and nothing more,
// which is exactly the contract the paper's algorithms are designed for.
//
// # Storage engine
//
// Each region is a miniature LSM tree. Writes append to a WAL and a
// skip-list memtable; when the memtable exceeds its flush threshold it
// becomes an immutable sorted segment (the in-memory analogue of an
// HBase HFile). Internal cell keys embed bit-inverted timestamps and
// sequence numbers so the newest version of a column sorts first, which
// lets every reader take the first version it encounters.
//
// The read path is tiered, cheapest first:
//
//   - Row cache. A byte-bounded LRU per region caches fully
//     materialized rows — including negative entries for absent rows —
//     and is invalidated per row on every mutation. A hit performs zero
//     segment work. Only full-row gets are cached and served;
//     family-restricted gets always read the LSM.
//   - Segment pruning. Each segment carries its row-key range and a
//     bloom filter over its row keys (~1% false positives); a point get
//     consults both and binary-searches only the segments that may
//     contain the row.
//   - Merge. Scans (and multi-segment gets) merge the memtable and
//     surviving segments through a heap-based k-way merge: O(1) access
//     to the current winner, O(log k) advance.
//
// Compaction is size-tiered: when a flush leaves more than
// compactThreshold segments, runs of similar size (~4x-wide tiers) are
// merged together, rather than rewriting the whole region on every
// trigger. A merge covering every run drops tombstones and dead
// versions like an HBase major compaction; a subset merge retains
// every version — it only reduces run count — so snapshot (ReadTs)
// reads against untouched runs stay correct. Region.Compact still
// forces a full major compaction.
//
// # Cost accounting
//
// Every operation returns OpStats so the metered client (or the
// MapReduce runner) charges the simulator faithfully. A keyed read that
// misses the row cache costs one RPC round trip, one disk seek, the
// returned bytes, and one read unit per cell examined. A row-cache hit
// skips the seek and the disk bytes — the row is served from region
// server memory — but still pays the RPC, transfer, and CPU costs, and
// bills exactly the read units of the cold read that populated it,
// mirroring DynamoDB's per-request pricing (the paper's footnote 1).
// Scans bypass the row cache entirely and charge for every version
// they sweep.
package kvstore

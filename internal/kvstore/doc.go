// Package kvstore implements the NoSQL substrate the paper's algorithms
// run on: an embedded, deterministic, HBase-like distributed sorted
// key-value store.
//
// The data model follows Section 1 of the paper: a key-value pair is the
// quadruplet {row key, column name, column value, timestamp}; a table is
// an ordered collection of key-value pairs; a row is the set of pairs
// sharing a key; column families partition a table vertically. Tables are
// horizontally sharded into key-range regions, each hosted by one node of
// a simulated cluster. The store supports efficient point gets, ascending
// keyed scans (with client-side batching, like HBase scanner caching),
// server-side filters, and row-level atomic mutations — and nothing more,
// which is exactly the contract the paper's algorithms are designed for.
//
// # Storage engine
//
// Each region is a miniature LSM tree. Writes append to a WAL and a
// skip-list memtable; when the memtable exceeds its flush threshold it
// becomes an immutable sorted segment (the in-memory analogue of an
// HBase HFile). Internal cell keys embed bit-inverted timestamps and
// sequence numbers so the newest version of a column sorts first, which
// lets every reader take the first version it encounters.
//
// The read path is tiered, cheapest first:
//
//   - Row cache. A byte-bounded LRU per region caches fully
//     materialized rows — including negative entries for absent rows —
//     and is invalidated per row on every mutation. A hit performs zero
//     segment work. Only full-row gets are cached and served;
//     family-restricted gets always read the LSM.
//   - Segment pruning. Each segment carries its row-key range and a
//     bloom filter over its row keys (~1% false positives); a point get
//     consults both and binary-searches only the segments that may
//     contain the row.
//   - Merge. Scans (and multi-segment gets) merge the memtable and
//     surviving segments through a heap-based k-way merge: O(1) access
//     to the current winner, O(log k) advance.
//
// Compaction is size-tiered: when a flush leaves more than
// compactThreshold segments, runs of similar size (~4x-wide tiers) are
// merged together, rather than rewriting the whole region on every
// trigger. A merge covering every run drops tombstones and dead
// versions like an HBase major compaction; a subset merge retains
// every version — it only reduces run count — so snapshot (ReadTs)
// reads against untouched runs stay correct. Region.Compact still
// forces a full major compaction.
//
// # Durable storage
//
// The store runs in one of two modes, fixed at construction and never
// mixed within a region. NewCluster keeps flushed segments in memory
// (the original simulator behavior); OpenCluster roots the cluster in
// a directory and makes every layer real: per-region write-ahead logs
// (rNNNNNN.wal), binary SSTables (NNNNNN.sst), and a MANIFEST naming
// them. The test suites run in disk mode under KVSTORE_DISK=1.
//
// An SSTable is a sequence of framed blocks — data blocks, then index
// blocks, then a summary, bloom, and meta block, then a fixed 60-byte
// footer holding the tail-block offsets, the format version, and the
// magic. Every frame is [4B length][1B codec: raw|flate][payload]
// [4B CRC32], so corruption is detected per block, not per file. Data
// blocks prefix-compress cell keys against restart points (one full
// key every 16 cells) and append their restart-offset array
// Golomb-coded; ~4 KiB of payload cuts a block. One index entry run
// covers up to 64 data blocks, and the summary samples the index the
// same way, so a point get touches at most two blocks (one index, one
// data) beyond the in-memory summary/bloom/meta. Block fetches go
// through a store-wide byte-bounded LRU block cache
// (Cluster.SetBlockCacheBytes, default 32 MiB); in disk mode the
// simulator charges seeks from the *measured* block reads — cache hits
// are counted but cost no seek — replacing the memory mode's
// per-operation seek formula.
//
// # Recovery protocol
//
// All durable-state transitions funnel through two rules: data files
// are immutable once registered, and the MANIFEST is replaced
// atomically (write temp, fsync, rename, fsync directory). Ordering
// does the rest:
//
//   - Flush/compaction writes and fsyncs new SSTables, registers them
//     in the MANIFEST, and only then unlinks obsolete files (replaced
//     runs, the drained WAL). A crash before registration leaves the
//     old manifest pointing at the old, still-present files; a crash
//     after registration but before the unlinks leaves orphans.
//   - Open reads the MANIFEST, deletes any file it does not reference
//     (the orphans of a mid-compaction crash), advances the file
//     allocator past everything on disk, opens each region's segments
//     (footer, then summary/bloom/meta), and replays the region's WAL
//     into a fresh memtable. The cluster clock resumes past the
//     largest recovered timestamp, so recovered writes never collide
//     with new ones.
//
// Region splits reuse the same machinery: child regions are prepared
// detached, registered in one manifest mutation, and only then exposed
// — a crash either sees the parent or both children, never a half
// split.
//
// # Failure taxonomy
//
// Every file operation flows through a pluggable VFS (OpenClusterFS;
// internal/faultfs wraps any VFS with deterministic fault schedules
// for the tests), and failures surface typed, never stringly:
//
//   - IOError names the file and operation of an I/O failure.
//     Transient read errors are retried with bounded backoff
//     (readRetryAttempts) before one surfaces.
//   - CorruptionError (matching ErrCorruption) names the file and byte
//     offset of a failed checksum. A WAL whose FINAL record is torn —
//     incomplete, or complete with a failing CRC — is trimmed at open
//     and recovery proceeds, because a torn tail is a crash mid-append
//     and that record was never acknowledged. A CRC failure with valid
//     records after it can only be at-rest damage and fails the open.
//
// Cluster.Scrub walks every on-disk frame verifying checksums,
// bypassing the block cache so the verification reads the media, and
// quarantines tables that fail: a quarantined table leaves the read
// path (reads that could touch its key range return a typed
// CorruptionError instead of silently missing rows) and its file is
// never deleted. Cluster.Quarantined lists them; the scrub's reads are
// measured I/O, charged like any client-visible work.
//
// Long operations degrade cooperatively: a view wrapped by WithGuard
// checks its interrupt (deadline, context, budget — see core's Budget)
// at every RPC boundary and inside scans and MapReduce tasks.
//
// # Cost accounting
//
// Every operation returns OpStats so the metered client (or the
// MapReduce runner) charges the simulator faithfully. A keyed read that
// misses the row cache costs one RPC round trip, one disk seek, the
// returned bytes, and one read unit per cell examined. A row-cache hit
// skips the seek and the disk bytes — the row is served from region
// server memory — but still pays the RPC, transfer, and CPU costs, and
// bills exactly the read units of the cold read that populated it,
// mirroring DynamoDB's per-request pricing (the paper's footnote 1).
// Scans bypass the row cache entirely and charge for every version
// they sweep. In disk mode the seek charge is measured rather than
// modeled: each operation bills one seek per actual block read
// (OpStats.BlockReads), so a warm block cache genuinely cheapens
// repeat reads.
//
// # The transport seam
//
// This package is strictly node-local: one Cluster is one region
// server's storage, and nothing in it knows about peers, replication,
// or the network. The multi-node layers sit above — internal/transport
// defines the RegionService RPC surface (loopback and TCP), and
// internal/topology routes, replicates, and repairs across Clusters it
// can only reach through that seam. Three primitives here exist for
// those layers and keep replication deterministic:
//
//   - ObserveClock folds a peer's timestamp into the local logical
//     clock, so a router-stamped write applied everywhere lands with
//     the SAME timestamp on every replica and later local stamps sort
//     above it.
//   - TableCells flattens a table's live cells in storage order — the
//     payload of a Merkle row digest (RowDigestParts fixes the exact
//     byte layout) and of a repair shipment.
//   - RepairApply and RepairReplace land a repair payload at its
//     ORIGINAL timestamps (scoped leaf overwrite + source-absent row
//     deletion, or whole-table drop/recreate/re-ingest for corruption),
//     charging the group write like any client mutation;
//     ChargeMerkleScan meters the digest pass.
//
// Because every replica applies the identical resolved operation
// sequence through the same deterministic clock, replicas of a table
// are byte-identical — cell for cell, timestamp for timestamp — which
// is what lets the layers above diff replicas with Merkle trees and
// serve any query from any replica with the exact single-node answer.
package kvstore

package kvstore

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"time"
)

// This file is the typed failure taxonomy of the storage layer. Every
// durable-path error surfaces as one of two kinds:
//
//   - CorruptionError: the bytes came back, but they are wrong — a CRC
//     mismatch, an impossible frame length, a WAL record that fails its
//     checksum mid-log. Retrying cannot help; the error names the file
//     and offset so an operator (or Scrub) can find the damage.
//   - IOError: the operation itself failed — EIO, a short read, a
//     failed fsync. Transient read failures are retried with bounded
//     backoff before one of these escapes.
//
// Both unwrap cleanly: errors.Is(err, ErrCorruption) matches any
// corruption (including the package's older errCorruptBlock sentinel),
// and errors.As extracts the struct for the file/offset detail.

// ErrCorruption is the sentinel every CorruptionError matches via
// errors.Is. It aliases the block codec's internal sentinel so existing
// errCorruptBlock wrapping participates in the same taxonomy.
var ErrCorruption = errCorruptBlock

// CorruptionError reports durably-stored bytes that failed
// verification, naming the file and byte offset of the damage.
type CorruptionError struct {
	// Path is the offending file (name within the store directory, or
	// a full path for WALs).
	Path string
	// Offset is the byte offset of the corrupt frame or record; -1 when
	// unknown.
	Offset int64
	// Err is the underlying detail (wraps errCorruptBlock).
	Err error
}

func (e *CorruptionError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("kvstore: corruption in %s at offset %d: %v", e.Path, e.Offset, e.Err)
	}
	return fmt.Sprintf("kvstore: corruption in %s: %v", e.Path, e.Err)
}

func (e *CorruptionError) Unwrap() error { return e.Err }

// corruptionAt wraps err (which should already wrap errCorruptBlock)
// with the file and offset it was detected at. Errors already carrying
// a location keep the innermost one — the first detection is the most
// precise.
func corruptionAt(path string, offset int64, err error) error {
	var ce *CorruptionError
	if errors.As(err, &ce) {
		return err
	}
	if !errors.Is(err, errCorruptBlock) {
		err = fmt.Errorf("%w: %v", errCorruptBlock, err)
	}
	return &CorruptionError{Path: path, Offset: offset, Err: err}
}

// IOError reports a failed filesystem operation on the durable path,
// after any applicable retries were exhausted.
type IOError struct {
	Path string // offending file
	Op   string // "read", "write", "sync", "open", ...
	Err  error
}

func (e *IOError) Error() string {
	return fmt.Sprintf("kvstore: %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *IOError) Unwrap() error { return e.Err }

// Read-retry policy: transient read errors (EIO from a flaky disk, not
// corruption — the bytes never arrived) are retried a bounded number of
// times with linear backoff before an IOError escapes. Package-level so
// fault-injection tests can tighten the schedule; the defaults add at
// most ~3 ms to a doomed read.
var (
	// readRetryAttempts is the total number of tries per read.
	readRetryAttempts = 3
	// readRetryBackoff is the base delay between tries (doubled each
	// retry).
	readRetryBackoff = time.Millisecond
)

// retryableRead reports whether a read error is worth retrying:
// anything except EOF-family errors (stable short files) and path
// errors (the file is gone — retrying cannot restore it).
func retryableRead(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, fs.ErrNotExist) {
		return false
	}
	return true
}

// readFullAt fills p from offset off of f, retrying transient errors
// with bounded backoff. A stable short read returns a corruption error
// (the file ends where data should be); exhausted retries return an
// IOError naming the file.
func readFullAt(f File, path string, p []byte, off int64) error {
	var lastErr error
	for attempt := 0; attempt < readRetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(readRetryBackoff << (attempt - 1))
		}
		n, err := f.ReadAt(p, off)
		if err == nil || (err == io.EOF && n == len(p)) {
			if n != len(p) {
				return corruptionAt(path, off, corruptf("short read: %d of %d bytes at %d", n, len(p), off))
			}
			return nil
		}
		if !retryableRead(err) {
			if n < len(p) {
				// The file stably ends mid-frame: truncation damage.
				return corruptionAt(path, off, corruptf("short read: %d of %d bytes at %d: %v", n, len(p), off, err))
			}
			return &IOError{Path: path, Op: "read", Err: err}
		}
		lastErr = err
	}
	return &IOError{Path: path, Op: "read", Err: lastErr}
}

// Fault-schedule tests: drive the storage engine through deterministic
// injected failures (EIO, torn writes, lying fsync, bit-rot) via
// internal/faultfs and require the hardened contract everywhere —
// recover with zero acknowledged-write loss, or fail with a typed
// CorruptionError/IOError naming the damage. Panics and silent
// truncation are always bugs.
//
// The tests live in an external package because faultfs imports
// kvstore; they run against the exported API only, like a client would.
// Each test is gated on a named schedule so CI's fault matrix
// (KVSTORE_FAULT_SCHEDULE ∈ {eio-read, torn-write, bit-rot}) can run
// the groups separately under -race; with the variable unset a plain
// `go test` runs all of them.
package kvstore_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// gateSchedule skips the test unless its schedule is selected (or none
// is, in which case every schedule runs).
func gateSchedule(t *testing.T, name string) {
	t.Helper()
	if env := os.Getenv("KVSTORE_FAULT_SCHEDULE"); env != "" && env != name {
		t.Skipf("schedule %q not selected (KVSTORE_FAULT_SCHEDULE=%s)", name, env)
	}
}

// openFaultCluster opens dir through the given (possibly fault-laden)
// filesystem.
func openFaultCluster(t *testing.T, dir string, fsys kvstore.VFS) (*kvstore.Cluster, error) {
	t.Helper()
	return kvstore.OpenClusterFS(sim.LC(), nil, dir, fsys)
}

// seedDiskTable creates table "t" with n flushed rows and closes the
// cluster, leaving a recoverable directory with real SSTables on disk.
func seedDiskTable(t *testing.T, dir string, n int) {
	t.Helper()
	c, err := openFaultCluster(t, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustPutRows(t, c, 0, n)
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// mustPutRows writes rows [from, to) into table "t", creating it if
// needed.
func mustPutRows(t *testing.T, c *kvstore.Cluster, from, to int) {
	t.Helper()
	if from == 0 {
		if _, err := c.CreateTable("t", []string{"cf"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := from; i < to; i++ {
		cell := kvstore.Cell{Row: fmt.Sprintf("row%03d", i), Family: "cf", Qualifier: "v",
			Value: []byte(fmt.Sprintf("val%d", i))}
		if err := c.Put("t", cell); err != nil {
			t.Fatal(err)
		}
	}
}

// scanRowKeys returns the table's row keys, failing on scan error.
func scanRowKeys(t *testing.T, c *kvstore.Cluster) []string {
	t.Helper()
	rows, err := c.ScanAll(kvstore.Scan{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(rows))
	for _, r := range rows {
		keys = append(keys, r.Key)
	}
	return keys
}

// TestFaultScheduleEIOReadRetried: two consecutive EIOs on the same
// SSTable read are transient — the bounded retry loop absorbs them and
// the open plus a full scan succeed with every row intact.
func TestFaultScheduleEIOReadRetried(t *testing.T) {
	gateSchedule(t, "eio-read")
	dir := t.TempDir()
	seedDiskTable(t, dir, 40)

	ffs := faultfs.New(nil, faultfs.Rule{
		PathContains: ".sst", Op: faultfs.OpRead, Nth: 1, Count: 2, Mode: faultfs.ModeErr,
	})
	c, err := openFaultCluster(t, dir, ffs)
	if err != nil {
		t.Fatalf("open under transient EIO failed: %v", err)
	}
	defer c.Close()
	if keys := scanRowKeys(t, c); len(keys) != 40 {
		t.Fatalf("recovered %d rows under transient EIO, want 40", len(keys))
	}
}

// TestFaultScheduleEIOReadExhaustedTyped: a persistent EIO outlives the
// retry budget and must surface as a typed *IOError naming the file and
// operation — with no partial rows pretending to be a result.
func TestFaultScheduleEIOReadExhaustedTyped(t *testing.T) {
	gateSchedule(t, "eio-read")
	dir := t.TempDir()
	seedDiskTable(t, dir, 40)

	ffs := faultfs.New(nil)
	c, err := openFaultCluster(t, dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ffs.AddRule(faultfs.Rule{PathContains: ".sst", Op: faultfs.OpRead, Mode: faultfs.ModeErr})

	rows, err := c.ScanAll(kvstore.Scan{Table: "t"})
	if err == nil {
		t.Fatalf("scan under persistent EIO returned %d rows and no error", len(rows))
	}
	var ioe *kvstore.IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("scan error is %T (%v), want *kvstore.IOError", err, err)
	}
	if !strings.HasSuffix(ioe.Path, ".sst") || ioe.Op != "read" {
		t.Errorf("IOError names %q op %q, want an .sst read", ioe.Path, ioe.Op)
	}
	if len(rows) != 0 {
		t.Errorf("scan returned %d rows alongside its error — silent truncation risk", len(rows))
	}
	if _, err := c.Get("t", "row005"); err == nil {
		t.Error("point get under persistent EIO succeeded")
	}
}

// TestFaultScheduleTornWriteOnFlush: the first SSTable write during a
// flush tears. The flush must fail typed, the memtable must keep every
// acknowledged row readable, and a crash-reopen of the directory must
// recover all of them from the WAL.
func TestFaultScheduleTornWriteOnFlush(t *testing.T) {
	gateSchedule(t, "torn-write")
	dir := t.TempDir()
	ffs := faultfs.New(nil, faultfs.Rule{
		PathContains: ".sst", Op: faultfs.OpWrite, Nth: 1, Count: 1, Mode: faultfs.ModeTornWrite,
	})
	c, err := openFaultCluster(t, dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	mustPutRows(t, c, 0, 30)

	err = c.FlushAll()
	if err == nil {
		t.Fatal("flush with torn SSTable write reported success")
	}
	var ioe *kvstore.IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("flush error is %T (%v), want *kvstore.IOError", err, err)
	}
	// The failed flush must not have lost the memtable.
	if keys := scanRowKeys(t, c); len(keys) != 30 {
		t.Fatalf("%d rows readable after failed flush, want 30", len(keys))
	}

	// Crash: abandon the handle, reopen the directory with a clean fs.
	c2, err := openFaultCluster(t, dir, nil)
	if err != nil {
		t.Fatalf("reopen after torn flush failed: %v", err)
	}
	defer c2.Close()
	if keys := scanRowKeys(t, c2); len(keys) != 30 {
		t.Fatalf("recovered %d rows after torn flush, want 30 — acknowledged-write loss", len(keys))
	}
}

// TestFaultScheduleTornWALAppend: one WAL append tears mid-record. The
// put must fail typed, later puts must keep working (the torn fragment
// is rolled out of the file, not left for a record to land after), and
// a crash-reopen must recover exactly the acknowledged rows.
func TestFaultScheduleTornWALAppend(t *testing.T) {
	gateSchedule(t, "torn-write")
	dir := t.TempDir()
	ffs := faultfs.New(nil, faultfs.Rule{
		PathContains: ".wal", Op: faultfs.OpWrite, Nth: 6, Count: 1, Mode: faultfs.ModeTornWrite,
	})
	c, err := openFaultCluster(t, dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", []string{"cf"}, nil); err != nil {
		t.Fatal(err)
	}
	acked := map[string]bool{}
	var tornRow string
	failures := 0
	for i := 0; i < 12; i++ {
		row := fmt.Sprintf("row%03d", i)
		err := c.Put("t", kvstore.Cell{Row: row, Family: "cf", Qualifier: "v", Value: []byte("x")})
		if err != nil {
			failures++
			tornRow = row
			var ioe *kvstore.IOError
			if !errors.As(err, &ioe) {
				t.Fatalf("torn append error is %T (%v), want *kvstore.IOError", err, err)
			}
			continue
		}
		acked[row] = true
	}
	if failures != 1 {
		t.Fatalf("%d puts failed, want exactly 1 (the torn append)", failures)
	}

	// Crash-reopen: every acknowledged row, and only those, recover.
	c2, err := openFaultCluster(t, dir, nil)
	if err != nil {
		t.Fatalf("reopen after torn WAL append failed: %v", err)
	}
	defer c2.Close()
	keys := scanRowKeys(t, c2)
	if len(keys) != len(acked) {
		t.Fatalf("recovered %d rows, want %d acknowledged", len(keys), len(acked))
	}
	for _, k := range keys {
		if !acked[k] {
			t.Errorf("recovered unacknowledged row %q", k)
		}
		if k == tornRow {
			t.Errorf("torn row %q resurfaced after crash", k)
		}
	}
}

// TestFaultScheduleLyingSyncCrash: every fsync lies, then the machine
// loses power. Whatever the store can still prove intact it may serve;
// what it cannot, it must refuse loudly — a typed error, never a
// cluster that silently opens over rolled-back files.
func TestFaultScheduleLyingSyncCrash(t *testing.T) {
	gateSchedule(t, "torn-write")
	dir := t.TempDir()
	ffs := faultfs.New(nil,
		faultfs.Rule{Op: faultfs.OpSync, Mode: faultfs.ModeLyingSync},
		faultfs.Rule{Op: faultfs.OpSyncDir, Mode: faultfs.ModeLyingSync},
	)
	c, err := openFaultCluster(t, dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	mustPutRows(t, c, 0, 25)
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}

	c2, err := openFaultCluster(t, dir, nil)
	if err != nil {
		if !errors.Is(err, kvstore.ErrCorruption) {
			var ioe *kvstore.IOError
			if !errors.As(err, &ioe) {
				t.Fatalf("post-crash open error is %T (%v), want typed corruption or IO error", err, err)
			}
		}
		return // loud refusal: acceptable
	}
	defer c2.Close()
	// The open succeeded, so it vouches for the data: every
	// acknowledged row must be present and readable.
	if keys := scanRowKeys(t, c2); len(keys) != 25 {
		t.Fatalf("post-crash open succeeded but served %d rows of 25 — silent loss", len(keys))
	}
}

// TestFaultScheduleBitRotReadTyped: media rot flips one bit in a block
// read back from disk. The checksum must catch it and the read must
// fail with a CorruptionError naming file and offset — no partial rows,
// no panic.
func TestFaultScheduleBitRotReadTyped(t *testing.T) {
	gateSchedule(t, "bit-rot")
	dir := t.TempDir()
	seedDiskTable(t, dir, 60)

	ffs := faultfs.New(nil)
	c, err := openFaultCluster(t, dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ffs.AddRule(faultfs.Rule{PathContains: ".sst", Op: faultfs.OpRead, Mode: faultfs.ModeBitRot, Seed: 42})

	rows, err := c.ScanAll(kvstore.Scan{Table: "t"})
	if err == nil {
		t.Fatalf("scan under bit-rot returned %d rows and no error", len(rows))
	}
	if !errors.Is(err, kvstore.ErrCorruption) {
		t.Fatalf("scan error %v does not match ErrCorruption", err)
	}
	var ce *kvstore.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("scan error is %T, want *kvstore.CorruptionError", err)
	}
	if !strings.HasSuffix(ce.Path, ".sst") || ce.Offset < 0 {
		t.Errorf("CorruptionError names %q offset %d, want an .sst file and offset", ce.Path, ce.Offset)
	}
}

// TestScrubDetectsQuarantinesAndCharges: at-rest rot in one SSTable.
// Scrub must (1) report the file with a typed CorruptionError naming
// the offset while passing clean files, (2) quarantine the damaged
// table so reads fail loudly instead of missing rows, (3) leave the
// file on disk for repair, (4) keep clean tables fully readable, and
// (5) charge its verification I/O to the metrics like any client work.
func TestScrubDetectsQuarantinesAndCharges(t *testing.T) {
	gateSchedule(t, "bit-rot")
	dir := t.TempDir()
	c, err := openFaultCluster(t, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"good", "bad"} {
		if _, err := c.CreateTable(tbl, []string{"cf"}, nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			cell := kvstore.Cell{Row: fmt.Sprintf("row%03d", i), Family: "cf", Qualifier: "v",
				Value: []byte(fmt.Sprintf("%s-%d", tbl, i))}
			if err := c.Put(tbl, cell); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// A clean scrub: no corruption, real verified blocks, charged work.
	before := c.Metrics().Snapshot()
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	delta := c.Metrics().Snapshot().Sub(before)
	if rep.Corrupt != 0 {
		t.Fatalf("clean store scrubbed corrupt: %+v", rep)
	}
	if len(rep.Files) < 2 {
		t.Fatalf("scrub saw %d files, want >= 2", len(rep.Files))
	}
	totalBlocks := 0
	var badFile string
	for _, f := range rep.Files {
		totalBlocks += f.Blocks
		if f.Table == "bad" && badFile == "" {
			badFile = f.Name
		}
	}
	if totalBlocks == 0 {
		t.Fatal("scrub verified zero blocks")
	}
	if delta.SimTime <= 0 && delta.RPCCalls == 0 {
		t.Errorf("scrub charged nothing: %+v", delta)
	}
	if badFile == "" {
		t.Fatal("no SSTable recorded for table bad")
	}

	// Rot one byte of table bad's SSTable, at rest, behind the engine's
	// back.
	path := filepath.Join(dir, badFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 {
		t.Fatalf("scrub found %d corrupt files, want 1", rep.Corrupt)
	}
	for _, f := range rep.Files {
		if f.Name == badFile {
			if !errors.Is(f.Err, kvstore.ErrCorruption) {
				t.Fatalf("rotted file error %v does not match ErrCorruption", f.Err)
			}
			var ce *kvstore.CorruptionError
			if !errors.As(f.Err, &ce) || ce.Offset < 0 {
				t.Fatalf("rotted file error %v lacks a frame offset", f.Err)
			}
		} else if f.Err != nil {
			t.Errorf("clean file %s reported %v", f.Name, f.Err)
		}
	}

	// Quarantined: listed, read path refuses loudly, file left on disk.
	if q := c.Quarantined(); len(q) != 1 || q[0] != badFile {
		t.Fatalf("Quarantined() = %v, want [%s]", q, badFile)
	}
	if _, err := c.ScanAll(kvstore.Scan{Table: "bad"}); !errors.Is(err, kvstore.ErrCorruption) {
		t.Fatalf("scan of quarantined table: %v, want ErrCorruption", err)
	}
	if _, err := c.Get("bad", "row010"); !errors.Is(err, kvstore.ErrCorruption) {
		t.Fatalf("get from quarantined table: %v, want ErrCorruption", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("quarantined file was deleted: %v", err)
	}

	// The clean table is untouched by its neighbor's quarantine.
	rows, err := c.ScanAll(kvstore.Scan{Table: "good"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("clean table serves %d rows, want 50", len(rows))
	}
}

package kvstore

import (
	"encoding/binary"
	"math"
	"strings"
)

// Filter is a server-side row predicate, the store's analogue of HBase
// filters. Filters run inside the region server, so rejected rows are
// still read from disk (and still cost read units) but are never shipped
// across the network — exactly the trade-off the paper's DRJN adaptation
// exploits ("we further augmented HBase with custom server-side filters",
// Section 7.1).
type Filter interface {
	// FilterRow reports whether the row should be returned.
	FilterRow(r *Row) bool
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(r *Row) bool

// FilterRow implements Filter.
func (f FilterFunc) FilterRow(r *Row) bool { return f(r) }

// PrefixFilter keeps rows whose key starts with Prefix.
type PrefixFilter struct{ Prefix string }

// FilterRow implements Filter.
func (f PrefixFilter) FilterRow(r *Row) bool { return strings.HasPrefix(r.Key, f.Prefix) }

// FloatColumnMinFilter keeps rows whose Family:Qualifier column decodes
// (as a big-endian float64) to a value >= Min. Rows missing the column
// are dropped. This is the DRJN "score above threshold" pull filter.
type FloatColumnMinFilter struct {
	Family    string
	Qualifier string
	Min       float64
}

// FilterRow implements Filter.
func (f FloatColumnMinFilter) FilterRow(r *Row) bool {
	c := r.Cell(f.Family, f.Qualifier)
	if c == nil || len(c.Value) != 8 {
		return false
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(c.Value))
	return v >= f.Min
}

// FloatValue encodes a float64 column value (big-endian bits).
func FloatValue(f float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	return b[:]
}

// ParseFloatValue decodes a value written by FloatValue.
func ParseFloatValue(b []byte) (float64, bool) {
	if len(b) != 8 {
		return 0, false
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), true
}

package kvstore

import (
	"strings"
	"testing"
)

// FuzzParseCellKey checks the parse→encode identity: any key
// parseCellKey accepts must re-encode byte-for-byte, so WAL replay and
// segment iteration can never silently rewrite a key.
func FuzzParseCellKey(f *testing.F) {
	f.Add(cellKey("row", "fam", "qual", 5, 7))
	f.Add(cellKey("", "", "", 0, 0))
	f.Add(cellKey("r", "f", "", -1, ^uint64(0)))
	f.Add("")
	f.Add("no separators at all")
	f.Add("row\x00fam\x00qual\x00short")
	f.Add(string(make([]byte, 19)))
	f.Fuzz(func(t *testing.T, k string) {
		row, family, qualifier, ts, seq, err := parseCellKey(k)
		if err != nil {
			return // malformed input rejected: fine
		}
		if re := cellKey(row, family, qualifier, ts, seq); re != k {
			t.Fatalf("parse/encode not identity:\n in %q\nout %q", k, re)
		}
	})
}

// FuzzCellKeyRoundTrip checks the encode→parse identity for NUL-free
// components (NUL is excluded by ValidateKeyComponent at the API edge).
func FuzzCellKeyRoundTrip(f *testing.F) {
	f.Add("row", "fam", "qual", int64(42), uint64(7))
	f.Add("", "", "", int64(0), uint64(0))
	f.Add("a|b", "f1", "", int64(-5), ^uint64(0))
	f.Fuzz(func(t *testing.T, row, family, qualifier string, ts int64, seq uint64) {
		if strings.IndexByte(row, 0) >= 0 || strings.IndexByte(family, 0) >= 0 || strings.IndexByte(qualifier, 0) >= 0 {
			t.Skip("NUL bytes are rejected before keys are built")
		}
		k := cellKey(row, family, qualifier, ts, seq)
		gr, gf, gq, gts, gseq, err := parseCellKey(k)
		if err != nil {
			t.Fatalf("parse of own encoding failed: %v (key %q)", err, k)
		}
		if gr != row || gf != family || gq != qualifier || gts != ts || gseq != seq {
			t.Fatalf("round trip mismatch: (%q,%q,%q,%d,%d) -> (%q,%q,%q,%d,%d)",
				row, family, qualifier, ts, seq, gr, gf, gq, gts, gseq)
		}
	})
}

package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// FuzzParseCellKey checks the parse→encode identity: any key
// parseCellKey accepts must re-encode byte-for-byte, so WAL replay and
// segment iteration can never silently rewrite a key.
func FuzzParseCellKey(f *testing.F) {
	f.Add(cellKey("row", "fam", "qual", 5, 7))
	f.Add(cellKey("", "", "", 0, 0))
	f.Add(cellKey("r", "f", "", -1, ^uint64(0)))
	f.Add("")
	f.Add("no separators at all")
	f.Add("row\x00fam\x00qual\x00short")
	f.Add(string(make([]byte, 19)))
	f.Fuzz(func(t *testing.T, k string) {
		row, family, qualifier, ts, seq, err := parseCellKey(k)
		if err != nil {
			return // malformed input rejected: fine
		}
		if re := cellKey(row, family, qualifier, ts, seq); re != k {
			t.Fatalf("parse/encode not identity:\n in %q\nout %q", k, re)
		}
	})
}

// fuzzBlockCells derives a deterministic, coordinate-sorted cell batch
// from raw fuzz bytes, mimicking what a flush feeds blockWriter.
func fuzzBlockCells(data []byte) []*Cell {
	byCoord := map[string]*Cell{}
	for i := 0; i+4 <= len(data); i += 4 {
		b := data[i : i+4]
		c := &Cell{
			Row:       fmt.Sprintf("r%02x", b[0]),
			Family:    "f",
			Qualifier: fmt.Sprintf("q%d", b[1]%8),
			Timestamp: int64(b[2]),
			Tombstone: b[3]&1 == 1,
		}
		if n := int(b[3] % 64); n > 0 {
			c.Value = bytes.Repeat([]byte{b[3]}, n)
		}
		coord := coordOf(c)
		if _, ok := byCoord[coord]; !ok {
			byCoord[coord] = c
		}
	}
	coords := make([]string, 0, len(byCoord))
	for k := range byCoord {
		coords = append(coords, k)
	}
	sort.Strings(coords)
	cells := make([]*Cell, len(coords))
	for i, k := range coords {
		cells[i] = byCoord[k]
	}
	return cells
}

// FuzzBlockCodec exercises the SSTable block codec from both ends. The
// input doubles as a hostile frame — decoding arbitrary, corrupted, or
// truncated bytes must return an error (or a well-formed block), never
// panic — and as a recipe for a valid block, whose cells must survive
// blockWriter → encodeFrame → decodeFrame → decodeDataBlock unchanged.
func FuzzBlockCodec(f *testing.F) {
	// Seed the corpus with a genuine frame plus truncated and bit-flipped
	// variants so the fuzzer starts near the format.
	var bw blockWriter
	for i := 0; i < 64; i++ {
		bw.add(&Cell{
			Row:       fmt.Sprintf("row%03d", i/4),
			Family:    "f",
			Qualifier: fmt.Sprintf("q%d", i%4),
			Timestamp: int64(i),
			Value:     bytes.Repeat([]byte{'v'}, i%32),
		}, uint64(i))
	}
	payload, err := bw.finish()
	if err != nil {
		f.Fatal(err)
	}
	frame := encodeFrame(payload)
	f.Add(frame)
	f.Add(frame[:len(frame)/2])
	mangled := append([]byte(nil), frame...)
	mangled[len(mangled)/2] ^= 0x40
	f.Add(mangled)
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Hostile path: every decoder must reject garbage gracefully. A
		// frame that happens to verify must still yield ordered cells.
		if p, err := decodeFrame(data); err == nil {
			if blk, derr := decodeDataBlock(p); derr == nil {
				if len(blk.keys) != len(blk.cells) {
					t.Fatalf("decoded block has %d keys but %d cells", len(blk.keys), len(blk.cells))
				}
				if !sort.StringsAreSorted(blk.keys) {
					t.Fatal("decoded block keys out of order")
				}
			}
			_, _ = decodeIndexBlock(p)
			_, _ = decodeMetaBlock(p)
		}
		if len(data) > 0 {
			if p, err := decodeFrame(data[:len(data)-1]); err == nil {
				_, _ = decodeDataBlock(p)
			}
		}

		// Round trip: cells derived from the same bytes must come back
		// byte-for-byte after a write/encode/decode cycle.
		cells := fuzzBlockCells(data)
		if len(cells) == 0 {
			return
		}
		var w blockWriter
		for i, c := range cells {
			w.add(c, uint64(i))
		}
		pay, err := w.finish()
		if err != nil {
			t.Fatalf("finish: %v", err)
		}
		decoded, err := decodeFrame(encodeFrame(pay))
		if err != nil {
			t.Fatalf("frame round trip: %v", err)
		}
		blk, err := decodeDataBlock(decoded)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if len(blk.cells) != len(cells) {
			t.Fatalf("round trip returned %d cells, want %d", len(blk.cells), len(cells))
		}
		for i, want := range cells {
			got := blk.cells[i]
			if wk := cellKey(want.Row, want.Family, want.Qualifier, want.Timestamp, uint64(i)); blk.keys[i] != wk {
				t.Fatalf("cell %d: key %q, want %q", i, blk.keys[i], wk)
			}
			if got.Row != want.Row || got.Family != want.Family || got.Qualifier != want.Qualifier ||
				got.Timestamp != want.Timestamp || got.Tombstone != want.Tombstone ||
				!bytes.Equal(got.Value, want.Value) {
				t.Fatalf("cell %d mutated in round trip:\n got %+v\nwant %+v", i, got, want)
			}
		}
	})
}

// FuzzCellKeyRoundTrip checks the encode→parse identity for NUL-free
// components (NUL is excluded by ValidateKeyComponent at the API edge).
func FuzzCellKeyRoundTrip(f *testing.F) {
	f.Add("row", "fam", "qual", int64(42), uint64(7))
	f.Add("", "", "", int64(0), uint64(0))
	f.Add("a|b", "f1", "", int64(-5), ^uint64(0))
	f.Fuzz(func(t *testing.T, row, family, qualifier string, ts int64, seq uint64) {
		if strings.IndexByte(row, 0) >= 0 || strings.IndexByte(family, 0) >= 0 || strings.IndexByte(qualifier, 0) >= 0 {
			t.Skip("NUL bytes are rejected before keys are built")
		}
		k := cellKey(row, family, qualifier, ts, seq)
		gr, gf, gq, gts, gseq, err := parseCellKey(k)
		if err != nil {
			t.Fatalf("parse of own encoding failed: %v (key %q)", err, k)
		}
		if gr != row || gf != family || gq != qualifier || gts != ts || gseq != seq {
			t.Fatalf("round trip mismatch: (%q,%q,%q,%d,%d) -> (%q,%q,%q,%d,%d)",
				row, family, qualifier, ts, seq, gr, gf, gq, gts, gseq)
		}
	})
}

// FuzzWALReplay opens a WAL over hostile bytes — truncations, bit
// flips, adversarial length fields — and requires recover-or-typed-
// error: either the valid prefix loads and replays cleanly, or the open
// fails with a CorruptionError/IOError. Panics and silent acceptance of
// checksum-failing records are both bugs.
func FuzzWALReplay(f *testing.F) {
	// Seed with real logs: empty, a few records, a torn tail, a mid-log
	// bit flip, and garbage.
	mkLog := func(n int) []byte {
		w := &wal{}
		for i := 0; i < n; i++ {
			c := &Cell{Value: []byte{byte(i), 0xab}, Tombstone: i%3 == 0}
			if err := w.append(cellKey("row", "cf", "q", int64(i+1), uint64(i+1)), c); err != nil {
				f.Fatal(err)
			}
		}
		return w.buf
	}
	f.Add([]byte{})
	f.Add(mkLog(3))
	f.Add(mkLog(5)[:mkLog(5)[0]+40])
	rotted := mkLog(4)
	rotted[walRecordOverhead/2] ^= 0x10
	f.Add(rotted)
	f.Add([]byte("not a log at all, just prose long enough to look like a header"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := openWAL(DefaultVFS(), path)
		if err != nil {
			var ce *CorruptionError
			var ioe *IOError
			if !errors.As(err, &ce) && !errors.As(err, &ioe) {
				t.Fatalf("untyped open error: %T %v", err, err)
			}
			return
		}
		defer w.close()
		// The accepted prefix must replay without error, record counts
		// must agree, and every record must pass its checksum — openWAL
		// accepting a rotted record would be silent corruption.
		n := 0
		if err := w.replay(func(string, []byte, bool) error { n++; return nil }); err != nil {
			t.Fatalf("replay of accepted prefix failed: %v", err)
		}
		if n != w.records {
			t.Fatalf("replayed %d records, openWAL counted %d", n, w.records)
		}
		if valid, _, err := walValidPrefix(w.buf); err != nil || valid != len(w.buf) {
			t.Fatalf("accepted buf is not a fully valid prefix: valid=%d len=%d err=%v", valid, len(w.buf), err)
		}
	})
}

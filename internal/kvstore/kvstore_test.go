package kvstore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/sim"
)

func testCluster(t testing.TB) *Cluster {
	t.Helper()
	c, err := NewCluster(sim.LC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustCreate(t *testing.T, c *Cluster, name string, families []string, splits []string) *Table {
	t.Helper()
	tab, err := c.CreateTable(name, families, splits)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestCreateTableValidation(t *testing.T) {
	c := testCluster(t)
	if _, err := c.CreateTable("t", nil, nil); err == nil {
		t.Error("no families accepted")
	}
	mustCreate(t, c, "t", []string{"cf"}, nil)
	if _, err := c.CreateTable("t", []string{"cf"}, nil); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := c.CreateTable("", []string{"cf"}, nil); err == nil {
		t.Error("empty name accepted")
	}
	names := c.TableNames()
	if len(names) != 1 || names[0] != "t" {
		t.Errorf("TableNames = %v", names)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestPutGetDelete(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	if err := c.Put("t", Cell{Row: "r1", Family: "cf", Qualifier: "a", Value: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	row, err := c.Get("t", "r1")
	if err != nil {
		t.Fatal(err)
	}
	if row == nil || len(row.Cells) != 1 || string(row.Cells[0].Value) != "v1" {
		t.Fatalf("Get = %+v", row)
	}
	// Overwrite with a newer version.
	if err := c.Put("t", Cell{Row: "r1", Family: "cf", Qualifier: "a", Value: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	row, _ = c.Get("t", "r1")
	if string(row.Cells[0].Value) != "v2" {
		t.Fatalf("latest version not returned: %+v", row)
	}
	// Delete hides the column.
	if err := c.Delete("t", "r1", "cf", "a", 0); err != nil {
		t.Fatal(err)
	}
	row, _ = c.Get("t", "r1")
	if row != nil {
		t.Fatalf("row visible after delete: %+v", row)
	}
	// Re-insert after delete becomes visible again.
	if err := c.Put("t", Cell{Row: "r1", Family: "cf", Qualifier: "a", Value: []byte("v3")}); err != nil {
		t.Fatal(err)
	}
	row, _ = c.Get("t", "r1")
	if row == nil || string(row.Cells[0].Value) != "v3" {
		t.Fatalf("reinsert not visible: %+v", row)
	}
}

func TestGetMissingRowAndBadFamily(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	row, err := c.Get("t", "nope")
	if err != nil || row != nil {
		t.Errorf("missing row = %+v, %v", row, err)
	}
	if err := c.Put("t", Cell{Row: "r", Family: "wrong", Qualifier: "q"}); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := c.Get("missing", "r"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestMultipleFamiliesAndSelection(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"a", "b"}, nil)
	c.Put("t", Cell{Row: "r", Family: "a", Qualifier: "x", Value: []byte("1")})
	c.Put("t", Cell{Row: "r", Family: "b", Qualifier: "y", Value: []byte("2")})
	row, _ := c.Get("t", "r")
	if len(row.Cells) != 2 {
		t.Fatalf("want 2 cells, got %+v", row)
	}
	row, _ = c.Get("t", "r", "b")
	if len(row.Cells) != 1 || row.Cells[0].Family != "b" {
		t.Fatalf("family selection failed: %+v", row)
	}
	if got := row.Cell("b", "y"); got == nil || string(got.Value) != "2" {
		t.Errorf("Row.Cell = %+v", got)
	}
	if got := row.FamilyCells("b"); len(got) != 1 {
		t.Errorf("FamilyCells = %+v", got)
	}
}

func TestScanOrderingAcrossRegions(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, []string{"m", "s"})
	keys := []string{"zz", "a", "m", "r", "s", "b", "q", "x", "mm"}
	for _, k := range keys {
		if err := c.Put("t", Cell{Row: k, Family: "cf", Qualifier: "v", Value: []byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := c.ScanAll(Scan{Table: "t", Caching: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range rows {
		got = append(got, r.Key)
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan order = %v, want %v", got, want)
	}
}

func TestScanRangeAndLimitViaStop(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("row-%03d", i)
		c.Put("t", Cell{Row: k, Family: "cf", Qualifier: "v", Value: []byte{byte(i)}})
	}
	rows, err := c.ScanAll(Scan{Table: "t", StartRow: "row-010", StopRow: "row-020", Caching: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	if rows[0].Key != "row-010" || rows[9].Key != "row-019" {
		t.Fatalf("range wrong: %s..%s", rows[0].Key, rows[9].Key)
	}
}

func TestScannerBatchingChargesPerRPC(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	for i := 0; i < 50; i++ {
		c.Put("t", Cell{Row: fmt.Sprintf("r%03d", i), Family: "cf", Qualifier: "v", Value: []byte("x")})
	}
	before := c.Metrics().Snapshot()
	if _, err := c.ScanAll(Scan{Table: "t", Caching: 10}); err != nil {
		t.Fatal(err)
	}
	delta := c.Metrics().Snapshot().Sub(before)
	// 50 rows at caching 10 = 5 full batches + 1 final short batch.
	if delta.RPCCalls < 5 || delta.RPCCalls > 7 {
		t.Errorf("RPCs = %d, want ~6", delta.RPCCalls)
	}
	before = c.Metrics().Snapshot()
	if _, err := c.ScanAll(Scan{Table: "t", Caching: 1}); err != nil {
		t.Fatal(err)
	}
	delta = c.Metrics().Snapshot().Sub(before)
	if delta.RPCCalls < 50 {
		t.Errorf("RPCs with caching 1 = %d, want >= 50", delta.RPCCalls)
	}
}

func TestScanWithFilterCostsReadsButNotBandwidth(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	for i := 0; i < 100; i++ {
		c.Put("t", Cell{
			Row: fmt.Sprintf("r%03d", i), Family: "cf", Qualifier: "score",
			Value: FloatValue(float64(i) / 100),
		})
	}
	// Unfiltered baseline.
	before := c.Metrics().Snapshot()
	all, err := c.ScanAll(Scan{Table: "t", Caching: 1000})
	if err != nil {
		t.Fatal(err)
	}
	unfiltered := c.Metrics().Snapshot().Sub(before)
	if len(all) != 100 {
		t.Fatalf("unfiltered rows = %d", len(all))
	}
	// Filtered: only scores >= 0.9 ship.
	before = c.Metrics().Snapshot()
	rows, err := c.ScanAll(Scan{
		Table: "t", Caching: 1000,
		Filter: FloatColumnMinFilter{Family: "cf", Qualifier: "score", Min: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	filtered := c.Metrics().Snapshot().Sub(before)
	if len(rows) != 10 {
		t.Fatalf("filtered rows = %d, want 10", len(rows))
	}
	if filtered.KVReads != unfiltered.KVReads {
		t.Errorf("filtered scan reads %d KVs, unfiltered %d — server still examines all",
			filtered.KVReads, unfiltered.KVReads)
	}
	if filtered.NetworkBytes >= unfiltered.NetworkBytes {
		t.Errorf("filter did not reduce network: %d vs %d",
			filtered.NetworkBytes, unfiltered.NetworkBytes)
	}
}

func TestFilterFuncAndPrefixFilter(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	c.Put("t", Cell{Row: "abc", Family: "cf", Qualifier: "v", Value: []byte("1")})
	c.Put("t", Cell{Row: "abd", Family: "cf", Qualifier: "v", Value: []byte("2")})
	c.Put("t", Cell{Row: "xyz", Family: "cf", Qualifier: "v", Value: []byte("3")})
	rows, err := c.ScanAll(Scan{Table: "t", Caching: 10, Filter: PrefixFilter{Prefix: "ab"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("prefix filter rows = %d", len(rows))
	}
	rows, err = c.ScanAll(Scan{Table: "t", Caching: 10, Filter: FilterFunc(func(r *Row) bool {
		return r.Key == "xyz"
	})})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Key != "xyz" {
		t.Fatalf("FilterFunc rows = %+v", rows)
	}
}

func TestFloatValueRoundTrip(t *testing.T) {
	v, ok := ParseFloatValue(FloatValue(0.125))
	if !ok || v != 0.125 {
		t.Errorf("ParseFloatValue = %g, %v", v, ok)
	}
	if _, ok := ParseFloatValue([]byte{1, 2}); ok {
		t.Error("short value accepted")
	}
}

func TestMutateRowAtomicAndSpanCheck(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf", "idx"}, nil)
	cells := []Cell{
		{Row: "r", Family: "cf", Qualifier: "a", Value: []byte("1")},
		{Row: "r", Family: "idx", Qualifier: "b", Value: []byte("2")},
	}
	if err := c.MutateRow("t", cells); err != nil {
		t.Fatal(err)
	}
	row, _ := c.Get("t", "r")
	if len(row.Cells) != 2 {
		t.Fatalf("MutateRow wrote %d cells", len(row.Cells))
	}
	bad := []Cell{
		{Row: "r1", Family: "cf", Qualifier: "a"},
		{Row: "r2", Family: "cf", Qualifier: "a"},
	}
	if err := c.MutateRow("t", bad); err == nil {
		t.Error("cross-row mutate accepted")
	}
}

func TestFlushCompactPreserveData(t *testing.T) {
	c := testCluster(t)
	tab := mustCreate(t, c, "t", []string{"cf"}, nil)
	for i := 0; i < 200; i++ {
		c.Put("t", Cell{Row: fmt.Sprintf("r%04d", i), Family: "cf", Qualifier: "v", Value: []byte("x")})
	}
	// Delete half, then force flush+compaction.
	for i := 0; i < 200; i += 2 {
		c.Delete("t", fmt.Sprintf("r%04d", i), "cf", "v", 0)
	}
	for _, r := range tab.Regions() {
		r.Compact()
	}
	rows, err := c.ScanAll(Scan{Table: "t", Caching: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("rows after compaction = %d, want 100", len(rows))
	}
	// Compaction must have purged tombstones and dead versions.
	for _, r := range tab.Regions() {
		if r.CellCount() != 100 {
			t.Errorf("region holds %d cell versions, want 100", r.CellCount())
		}
	}
}

func TestVersionsAcrossFlush(t *testing.T) {
	c := testCluster(t)
	tab := mustCreate(t, c, "t", []string{"cf"}, nil)
	c.Put("t", Cell{Row: "r", Family: "cf", Qualifier: "v", Value: []byte("old")})
	tab.Regions()[0].Flush()
	c.Put("t", Cell{Row: "r", Family: "cf", Qualifier: "v", Value: []byte("new")})
	row, _ := c.Get("t", "r")
	if string(row.Cells[0].Value) != "new" {
		t.Fatalf("memtable version must shadow flushed: %+v", row)
	}
	tab.Regions()[0].Flush()
	row, _ = c.Get("t", "r")
	if string(row.Cells[0].Value) != "new" {
		t.Fatalf("newest segment must shadow older: %+v", row)
	}
}

func TestDeleteShadowsAcrossFlush(t *testing.T) {
	c := testCluster(t)
	tab := mustCreate(t, c, "t", []string{"cf"}, nil)
	c.Put("t", Cell{Row: "r", Family: "cf", Qualifier: "v", Value: []byte("x")})
	tab.Regions()[0].Flush()
	c.Delete("t", "r", "cf", "v", 0)
	row, _ := c.Get("t", "r")
	if row != nil {
		t.Fatalf("tombstone in memtable must hide flushed cell: %+v", row)
	}
}

func TestSnapshotReadTs(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	c.Put("t", Cell{Row: "r", Family: "cf", Qualifier: "v", Value: []byte("v1"), Timestamp: 10})
	c.Put("t", Cell{Row: "r", Family: "cf", Qualifier: "v", Value: []byte("v2"), Timestamp: 20})
	rows, err := c.ScanAll(Scan{Table: "t", Caching: 10, ReadTs: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || string(rows[0].Cells[0].Value) != "v1" {
		t.Fatalf("snapshot read = %+v, want v1", rows)
	}
}

func TestWALRecovery(t *testing.T) {
	c := testCluster(t)
	tab := mustCreate(t, c, "t", []string{"cf"}, nil)
	for i := 0; i < 50; i++ {
		c.Put("t", Cell{Row: fmt.Sprintf("r%02d", i), Family: "cf", Qualifier: "v", Value: []byte(fmt.Sprint(i))})
	}
	c.Delete("t", "r10", "cf", "v", 0)
	region := tab.Regions()[0]
	n, err := region.recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 51 {
		t.Errorf("replayed %d records, want 51", n)
	}
	rows, err := c.ScanAll(Scan{Table: "t", Caching: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 49 {
		t.Fatalf("rows after recovery = %d, want 49", len(rows))
	}
	for _, r := range rows {
		if r.Key == "r10" {
			t.Error("deleted row resurrected by recovery")
		}
	}
}

func TestSplitRegionPreservesScan(t *testing.T) {
	c := testCluster(t)
	tab := mustCreate(t, c, "t", []string{"cf"}, nil)
	for i := 0; i < 100; i++ {
		c.Put("t", Cell{Row: fmt.Sprintf("r%03d", i), Family: "cf", Qualifier: "v", Value: []byte("x")})
	}
	if err := c.SplitRegion("t", "r050"); err != nil {
		t.Fatal(err)
	}
	if got := len(tab.Regions()); got != 2 {
		t.Fatalf("regions after split = %d", got)
	}
	rows, err := c.ScanAll(Scan{Table: "t", Caching: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("rows after split = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Key <= rows[i-1].Key {
			t.Fatal("scan order broken after split")
		}
	}
	// Split an already-split region again.
	if err := c.SplitRegion("t", "r010"); err != nil {
		t.Fatal(err)
	}
	rows, _ = c.ScanAll(Scan{Table: "t", Caching: 1000})
	if len(rows) != 100 {
		t.Fatalf("rows after second split = %d", len(rows))
	}
}

func TestMoveRegion(t *testing.T) {
	c := testCluster(t)
	tab := mustCreate(t, c, "t", []string{"cf"}, nil)
	c.Put("t", Cell{Row: "r", Family: "cf", Qualifier: "v", Value: []byte("x")})
	if err := c.MoveRegion("t", "r", 3); err != nil {
		t.Fatal(err)
	}
	if tab.Regions()[0].Node() != 3 {
		t.Error("region did not move")
	}
	if err := c.MoveRegion("t", "r", 99); err == nil {
		t.Error("bogus node accepted")
	}
	row, _ := c.Get("t", "r")
	if row == nil {
		t.Error("data lost after move")
	}
}

func TestBatchPut(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, []string{"m"})
	var cells []Cell
	for i := 0; i < 500; i++ {
		cells = append(cells, Cell{
			Row: fmt.Sprintf("key-%04d", i), Family: "cf", Qualifier: "v",
			Value: []byte(fmt.Sprint(i)),
		})
	}
	before := c.Metrics().Snapshot()
	if err := c.BatchPut("t", cells); err != nil {
		t.Fatal(err)
	}
	delta := c.Metrics().Snapshot().Sub(before)
	if delta.KVWrites != 500 {
		t.Errorf("KVWrites = %d, want 500", delta.KVWrites)
	}
	if delta.RPCCalls != 1 {
		t.Errorf("BatchPut RPCs = %d, want 1", delta.RPCCalls)
	}
	rows, _ := c.ScanAll(Scan{Table: "t", Caching: 1000})
	if len(rows) != 500 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestScanModelEquivalence(t *testing.T) {
	// Randomized operations against a model map; final scans must agree.
	rng := rand.New(rand.NewSource(123))
	c := testCluster(t)
	tab := mustCreate(t, c, "t", []string{"cf"}, []string{"g", "p"})
	model := map[string]string{}
	for op := 0; op < 3000; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		switch rng.Intn(10) {
		case 0, 1:
			if err := c.Delete("t", k, "cf", "v", 0); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 2:
			if rng.Intn(4) == 0 {
				tab.Regions()[rng.Intn(len(tab.Regions()))].Flush()
			}
		default:
			v := fmt.Sprintf("v%d", op)
			if err := c.Put("t", Cell{Row: k, Family: "cf", Qualifier: "v", Value: []byte(v)}); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	rows, err := c.ScanAll(Scan{Table: "t", Caching: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(model) {
		t.Fatalf("scan rows = %d, model = %d", len(rows), len(model))
	}
	for _, r := range rows {
		want, ok := model[r.Key]
		if !ok {
			t.Fatalf("phantom row %q", r.Key)
		}
		if string(r.Cells[0].Value) != want {
			t.Fatalf("row %q = %q, want %q", r.Key, r.Cells[0].Value, want)
		}
	}
}

func TestConcurrentWritesAndScans(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, []string{"k050"})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("k%03d", (w*100+i)%100)
				if err := c.Put("t", Cell{Row: k, Family: "cf", Qualifier: "v", Value: []byte{byte(w)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := c.ScanAll(Scan{Table: "t", Caching: 13}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rows, err := c.ScanAll(Scan{Table: "t", Caching: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("rows = %d, want 100", len(rows))
	}
}

func TestDiskSizeAccounting(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	if sz, _ := c.TableDiskSize("t"); sz != 0 {
		t.Errorf("empty table size = %d", sz)
	}
	c.Put("t", Cell{Row: "r", Family: "cf", Qualifier: "q", Value: make([]byte, 100)})
	sz, err := c.TableDiskSize("t")
	if err != nil {
		t.Fatal(err)
	}
	wc := Cell{Row: "r", Family: "cf", Qualifier: "q", Value: make([]byte, 100)}
	want := wc.StoredSize()
	if sz != want {
		t.Errorf("table size = %d, want %d", sz, want)
	}
	if _, err := c.TableDiskSize("none"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestGetRows(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	c.Put("t", Cell{Row: "a", Family: "cf", Qualifier: "v", Value: []byte("1")})
	c.Put("t", Cell{Row: "c", Family: "cf", Qualifier: "v", Value: []byte("3")})
	rows, err := c.GetRows("t", []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0] == nil || rows[1] != nil || rows[2] == nil {
		t.Fatalf("GetRows = %+v", rows)
	}
}

func TestClockMonotonic(t *testing.T) {
	c := testCluster(t)
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		now := c.Now()
		if now <= prev {
			t.Fatal("clock not strictly increasing")
		}
		prev = now
	}
}

func BenchmarkPut(b *testing.B) {
	c := testCluster(b)
	c.CreateTable("t", []string{"cf"}, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put("t", Cell{Row: fmt.Sprintf("r%09d", i), Family: "cf", Qualifier: "v", Value: []byte("x")})
	}
}

func BenchmarkGet(b *testing.B) {
	c := testCluster(b)
	c.CreateTable("t", []string{"cf"}, nil)
	for i := 0; i < 10000; i++ {
		c.Put("t", Cell{Row: fmt.Sprintf("r%09d", i), Family: "cf", Qualifier: "v", Value: []byte("x")})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get("t", fmt.Sprintf("r%09d", i%10000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan10k(b *testing.B) {
	c := testCluster(b)
	c.CreateTable("t", []string{"cf"}, nil)
	for i := 0; i < 10000; i++ {
		c.Put("t", Cell{Row: fmt.Sprintf("r%09d", i), Family: "cf", Qualifier: "v", Value: []byte("x")})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := c.ScanAll(Scan{Table: "t", Caching: 1000})
		if err != nil || len(rows) != 10000 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

func TestGroupWriteMultiTableOneRPC(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "base", []string{"d"}, nil)
	mustCreate(t, c, "idx1", []string{"d"}, nil)
	mustCreate(t, c, "idx2", []string{"d"}, nil)

	before := c.Metrics().Snapshot()
	err := c.GroupWrite([]TableMutation{
		{Table: "base", Cells: []Cell{
			{Row: "r1", Family: "d", Qualifier: "join", Value: []byte("j1")},
			{Row: "r1", Family: "d", Qualifier: "score", Value: []byte("0.5")},
		}},
		{Table: "idx1", Cells: []Cell{
			{Row: "j1", Family: "d", Qualifier: "r1", Value: []byte("0.5")},
		}},
		{Table: "idx2", Cells: []Cell{
			{Row: "s0.5", Family: "d", Qualifier: "r1", Value: []byte("j1")},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Metrics().Snapshot().Sub(before)
	if d.RPCCalls != 1 {
		t.Errorf("group write cost %d RPCs, want 1", d.RPCCalls)
	}
	if d.KVWrites != 4 {
		t.Errorf("group write counted %d KV writes, want 4", d.KVWrites)
	}

	// Every cell landed, and all share one timestamp.
	var ts int64
	for _, probe := range []struct{ table, row, qual string }{
		{"base", "r1", "join"}, {"base", "r1", "score"},
		{"idx1", "j1", "r1"}, {"idx2", "s0.5", "r1"},
	} {
		row, err := c.Get(probe.table, probe.row)
		if err != nil || row == nil {
			t.Fatalf("%s/%s: %v %v", probe.table, probe.row, row, err)
		}
		cell := row.Cell("d", probe.qual)
		if cell == nil {
			t.Fatalf("%s/%s/%s missing", probe.table, probe.row, probe.qual)
		}
		if ts == 0 {
			ts = cell.Timestamp
		} else if cell.Timestamp != ts {
			t.Errorf("%s/%s/%s ts %d != shared ts %d", probe.table, probe.row, probe.qual, cell.Timestamp, ts)
		}
	}
}

func TestGroupWritePartialFailureTyped(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "base", []string{"d"}, nil)
	err := c.GroupWrite([]TableMutation{
		{Table: "base", Cells: []Cell{{Row: "r1", Family: "d", Qualifier: "a", Value: []byte("x")}}},
		{Table: "gone", Cells: []Cell{{Row: "r1", Family: "d", Qualifier: "a", Value: []byte("x")}}},
	})
	gwe, ok := err.(*GroupWriteError)
	if !ok {
		t.Fatalf("error %v (%T), want *GroupWriteError", err, err)
	}
	if gwe.Table != "gone" {
		t.Errorf("failed table %q, want gone", gwe.Table)
	}
	if len(gwe.Applied) != 1 || gwe.Applied[0] != "base" {
		t.Errorf("applied %v, want [base]", gwe.Applied)
	}
	// The divergence is real: base got the cell.
	row, err2 := c.Get("base", "r1")
	if err2 != nil || row == nil || row.Cell("d", "a") == nil {
		t.Fatalf("base cell missing after partial failure: %v %v", row, err2)
	}

	// Re-applying the identical group with the same timestamp converges
	// without duplicating versions' visible state.
	mustCreate(t, c, "gone", []string{"d"}, nil)
	ts := row.Cell("d", "a").Timestamp
	if err := c.GroupWrite([]TableMutation{
		{Table: "base", Cells: []Cell{{Row: "r1", Family: "d", Qualifier: "a", Value: []byte("x"), Timestamp: ts}}},
		{Table: "gone", Cells: []Cell{{Row: "r1", Family: "d", Qualifier: "a", Value: []byte("x"), Timestamp: ts}}},
	}); err != nil {
		t.Fatalf("re-apply: %v", err)
	}
	got, err := c.Get("gone", "r1")
	if err != nil || got == nil || got.Cell("d", "a") == nil {
		t.Fatalf("gone cell missing after re-apply: %v %v", got, err)
	}
	if got.Cell("d", "a").Timestamp != ts {
		t.Errorf("re-applied ts %d != original %d", got.Cell("d", "a").Timestamp, ts)
	}
}

func TestGroupWriteEmptyAndBadFamily(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "base", []string{"d"}, nil)
	before := c.Metrics().Snapshot()
	if err := c.GroupWrite(nil); err != nil {
		t.Fatalf("empty group: %v", err)
	}
	if err := c.GroupWrite([]TableMutation{{Table: "base"}}); err != nil {
		t.Fatalf("empty table mutation: %v", err)
	}
	if d := c.Metrics().Snapshot().Sub(before); d.RPCCalls != 0 {
		t.Errorf("empty group charged %d RPCs", d.RPCCalls)
	}
	err := c.GroupWrite([]TableMutation{
		{Table: "base", Cells: []Cell{{Row: "r", Family: "nope", Qualifier: "a"}}},
	})
	gwe, ok := err.(*GroupWriteError)
	if !ok || gwe.Table != "base" || len(gwe.Applied) != 0 {
		t.Fatalf("bad family error = %v", err)
	}
}

func TestMutationSeqAdvancesOnWrites(t *testing.T) {
	c := testCluster(t)
	tab := mustCreate(t, c, "t", []string{"cf"}, nil)
	if tab.MutationSeq() != 0 {
		t.Fatalf("fresh table seq %d", tab.MutationSeq())
	}
	if err := c.Put("t", Cell{Row: "r", Family: "cf", Qualifier: "a", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	s1 := tab.MutationSeq()
	if s1 == 0 {
		t.Fatal("Put did not advance mutation seq")
	}
	st, err := c.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.MutSeq != s1 {
		t.Errorf("TableStats.MutSeq %d != table seq %d", st.MutSeq, s1)
	}
	if err := c.Delete("t", "r", "cf", "a", 0); err != nil {
		t.Fatal(err)
	}
	if tab.MutationSeq() <= s1 {
		t.Error("Delete did not advance mutation seq")
	}
}

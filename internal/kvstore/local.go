package kvstore

import "fmt"

// This file exposes the unmetered, locality-aware access paths used by
// the MapReduce runner. Hadoop tasks read their region's data from the
// local disk and write results directly into the store; the job runner —
// not the client RPC layer — is responsible for charging time, network,
// and read units for that work. Everything here returns OpStats so the
// caller can do exactly that.

// LocalScan reads rows straight from this region (no RPC, no metering).
// limit 0 means no limit. Unlike client scans it tolerates a region
// retired by a concurrent split: MapReduce tasks pin the region list at
// job start, and the retired parent still holds its range's complete
// pre-split data, so the task's scan stays correct (and never overlaps
// the children, which the job does not know about).
func (r *Region) LocalScan(startRow, stopRow string, limit int, families []string, readTs int64, f Filter) ([]Row, OpStats, error) {
	return r.scanAt(startRow, stopRow, limit, families, readTs, f, true)
}

// LocalWrite applies cells grouped into per-row atomic mutations without
// client-side metering, returning the payload bytes written. Timestamps
// of zero are stamped from the cluster clock.
func (c *Cluster) LocalWrite(table string, cells []Cell) (uint64, error) {
	t, err := c.table(table)
	if err != nil {
		return 0, err
	}
	var bytes uint64
	var pending []Cell
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		// Route at apply time with split retry, so a concurrent region
		// split never strands a task's writes on a retired region.
		if err := t.mutateRetry(pending); err != nil {
			return err
		}
		pending = pending[:0]
		return nil
	}
	for i := range cells {
		if !t.HasFamily(cells[i].Family) {
			return bytes, fmt.Errorf("kvstore: table %q has no family %q", table, cells[i].Family)
		}
		if cells[i].Timestamp == 0 {
			cells[i].Timestamp = c.Now()
		}
		bytes += cells[i].StoredSize()
		if len(pending) > 0 && pending[0].Row != cells[i].Row {
			if err := flush(); err != nil {
				return bytes, err
			}
		}
		pending = append(pending, cells[i])
	}
	if err := flush(); err != nil {
		return bytes, err
	}
	return bytes, nil
}

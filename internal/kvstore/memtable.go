package kvstore

import "math/rand"

// memtable is the mutable, sorted in-memory write buffer of a region: a
// skip list keyed by the internal cell key, mirroring HBase's memstore.
// Entries are never updated in place — every Put/Delete appends a new
// version keyed by (timestamp, sequence), and flush materializes the
// list into an immutable segment.
type memtable struct {
	head     *skipNode
	level    int
	size     uint64 // accumulated StoredSize of entries
	count    int
	rng      *rand.Rand
	maxLevel int
	// scratch is the predecessor buffer reused across puts; safe because
	// puts are serialized by the region write lock.
	scratch []*skipNode
}

type skipNode struct {
	key  string
	cell *Cell // the full cell (Value may be nil for tombstones)
	next []*skipNode
}

const memtableMaxLevel = 20

// newMemtable returns an empty memtable. The skip list uses a seeded
// PRNG so region behaviour is deterministic run to run.
func newMemtable(seed int64) *memtable {
	return &memtable{
		head:     &skipNode{next: make([]*skipNode, memtableMaxLevel)},
		level:    1,
		rng:      rand.New(rand.NewSource(seed)),
		maxLevel: memtableMaxLevel,
		scratch:  make([]*skipNode, memtableMaxLevel),
	}
}

func (m *memtable) randomLevel() int {
	lvl := 1
	for lvl < m.maxLevel && m.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// put inserts a cell version. Keys are unique because every mutation
// carries a fresh sequence number; equal keys overwrite (idempotent WAL
// replay).
func (m *memtable) put(key string, c *Cell) {
	update := m.scratch
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && n.key == key {
		m.size -= n.cell.StoredSize()
		n.cell = c
		m.size += c.StoredSize()
		return
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level = lvl
	}
	n := &skipNode{key: key, cell: c, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	m.size += c.StoredSize()
	m.count++
}

// seek returns the first node with key >= k.
func (m *memtable) seek(k string) *skipNode {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < k {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// iterator walks entries in ascending key order starting at >= start.
func (m *memtable) iterator(start string) *memtableIter {
	return &memtableIter{node: m.seek(start)}
}

type memtableIter struct {
	node *skipNode
}

func (it *memtableIter) valid() bool { return it.node != nil }
func (it *memtableIter) key() string { return it.node.key }
func (it *memtableIter) cell() *Cell { return it.node.cell }
func (it *memtableIter) next()       { it.node = it.node.next[0] }
func (it *memtableIter) fail() error { return nil }

// entries returns all cells in key order (used by flush).
func (m *memtable) entries() []*Cell {
	out := make([]*Cell, 0, m.count)
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.cell)
	}
	return out
}

// keys returns all internal keys in order (used by flush).
func (m *memtable) keys() []string {
	out := make([]string, 0, m.count)
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.key)
	}
	return out
}

package kvstore

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// loadSplitTable creates a table pre-split across nodes and loads n rows
// spread evenly over the key space.
func loadSplitTable(t *testing.T, c *Cluster, name string, n int) []string {
	t.Helper()
	splits := []string{"r2", "r4", "r6", "r8"}
	mustCreate(t, c, name, []string{"cf"}, splits)
	var cells []Cell
	rows := make([]string, 0, n)
	for i := 0; i < n; i++ {
		row := fmt.Sprintf("r%d", i%10) + fmt.Sprintf("x%04d", i)
		rows = append(rows, row)
		cells = append(cells, Cell{Row: row, Family: "cf", Qualifier: "q", Value: []byte("v")})
	}
	if err := c.BatchPut(name, cells); err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestCreateTableDedupsSplitKeys(t *testing.T) {
	c := testCluster(t)
	tab, err := c.CreateTable("t", []string{"cf"}, []string{"m", "m", "d", "m"})
	if err != nil {
		t.Fatal(err)
	}
	regions := tab.Regions()
	// Splits {d, m} -> 3 regions, not the 5 a duplicate-preserving split
	// list would produce (with two degenerate ["m","m") shards).
	if len(regions) != 3 {
		t.Fatalf("got %d regions, want 3", len(regions))
	}
	for _, r := range regions {
		if r.StartKey() != "" && r.StartKey() == r.EndKey() {
			t.Errorf("degenerate region [%q, %q)", r.StartKey(), r.EndKey())
		}
	}
	if _, err := c.CreateTable("t2", []string{"cf"}, []string{"a", ""}); err == nil {
		t.Error("empty split key accepted")
	}
}

func TestParallelMultiGetMatchesSequential(t *testing.T) {
	seq := testCluster(t)
	par := testCluster(t)
	rows := loadSplitTable(t, seq, "t", 200)
	loadSplitTable(t, par, "t", 200)
	// In disk mode, flush so gets pay measured per-block seeks, and
	// disable the shared block cache so those seeks stay per-row (the
	// premise of the seek-amortization assertions below) instead of
	// collapsing onto a handful of cold block fetches. Both are no-ops
	// in memory mode.
	for _, c := range []*Cluster{seq, par} {
		regs, _ := c.TableRegions("t")
		for _, r := range regs {
			if err := r.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		c.SetBlockCacheBytes(0)
	}

	seqBefore := seq.Metrics().Snapshot()
	want, err := seq.MultiGet("t", rows)
	if err != nil {
		t.Fatal(err)
	}
	seqDelta := seq.Metrics().Snapshot().Sub(seqBefore)
	seqTime := seqDelta.SimTime

	before := par.Metrics().Snapshot()
	got, err := par.ParallelMultiGet("t", rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	delta := par.Metrics().Snapshot().Sub(before)

	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		switch {
		case (want[i] == nil) != (got[i] == nil):
			t.Fatalf("row %d presence mismatch", i)
		case want[i] != nil && got[i].Key != want[i].Key:
			t.Fatalf("row %d: got key %q, want %q", i, got[i].Key, want[i].Key)
		}
	}

	// Same data read: identical read units and returned rows.
	if delta.KVReads != seqDelta.KVReads {
		t.Errorf("parallel read units %d != sequential %d", delta.KVReads, seqDelta.KVReads)
	}
	// One RPC per region touched (5 regions) instead of 1; the clock
	// advances by the slowest lane, well under the sequential total.
	if delta.RPCCalls != 5 {
		t.Errorf("got %d RPCs, want 5 (one per region)", delta.RPCCalls)
	}
	parTime := delta.SimTime
	if parTime >= seqTime {
		t.Errorf("parallel multi-get time %v not below sequential %v", parTime, seqTime)
	}
	// 200 seeks over 4 lanes should cut the seek-dominated cost roughly
	// in proportion; insist on at least a 2x improvement.
	if parTime > seqTime/2 {
		t.Errorf("parallel multi-get time %v, want <= half of sequential %v", parTime, seqTime)
	}
}

func TestParallelMultiGetMissingRowsAndFallback(t *testing.T) {
	c := testCluster(t)
	rows := loadSplitTable(t, c, "t", 20)
	keys := append([]string{"absent0"}, rows[:5]...)
	keys = append(keys, "r9zzz")
	got, err := c.ParallelMultiGet("t", keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != nil || got[len(got)-1] != nil {
		t.Error("missing rows should yield nil entries")
	}
	for i := 1; i < 6; i++ {
		if got[i] == nil || got[i].Key != keys[i] {
			t.Errorf("row %d missing or wrong key", i)
		}
	}
	// parallelism <= 1 must behave exactly like MultiGet (one RPC).
	before := c.Metrics().Snapshot()
	if _, err := c.ParallelMultiGet("t", rows[:10], 1); err != nil {
		t.Fatal(err)
	}
	if d := c.Metrics().Snapshot().Sub(before); d.RPCCalls != 1 {
		t.Errorf("parallelism=1 made %d RPCs, want 1", d.RPCCalls)
	}
}

func TestScannerPrefetchSameRowsLessTime(t *testing.T) {
	seq := testCluster(t)
	pre := testCluster(t)
	loadSplitTable(t, seq, "t", 300)
	loadSplitTable(t, pre, "t", 300)

	want, err := seq.ScanAll(Scan{Table: "t", Caching: 25})
	if err != nil {
		t.Fatal(err)
	}
	seqSnap := seq.Metrics().Snapshot()

	got, err := pre.ScanAll(Scan{Table: "t", Caching: 25, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	preSnap := pre.Metrics().Snapshot()

	if len(got) != len(want) {
		t.Fatalf("prefetch scan returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Fatalf("row %d: got %q, want %q", i, got[i].Key, want[i].Key)
		}
	}
	// Identical resource consumption...
	if preSnap.KVReads != seqSnap.KVReads || preSnap.NetworkBytes != seqSnap.NetworkBytes {
		t.Errorf("prefetch resources differ: reads %d vs %d, net %d vs %d",
			preSnap.KVReads, seqSnap.KVReads, preSnap.NetworkBytes, seqSnap.NetworkBytes)
	}
	// ...and no extra simulated time: a lone prefetching scanner has no
	// concurrent work to hide behind, so its clock matches sequential.
	if preSnap.SimTime > seqSnap.SimTime {
		t.Errorf("prefetch scan time %v exceeds sequential %v", preSnap.SimTime, seqSnap.SimTime)
	}
}

func TestScannerPrefetchHidesBehindConcurrentWork(t *testing.T) {
	c := testCluster(t)
	loadSplitTable(t, c, "t", 100)

	// Two prefetching scanners consumed alternately against the same
	// collector: each one's fetches overlap the other's charged time, so
	// the total is below the sum of two sequential scans.
	seqC := testCluster(t)
	loadSplitTable(t, seqC, "t", 100)
	for i := 0; i < 2; i++ {
		if _, err := seqC.ScanAll(Scan{Table: "t", Caching: 10}); err != nil {
			t.Fatal(err)
		}
	}
	seqTime := seqC.Metrics().SimTime()

	open := func() *Scanner {
		sc, err := c.OpenScanner(Scan{Table: "t", Caching: 10, Prefetch: true})
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	a, b := open(), open()
	for rows := 0; ; {
		ra, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ra == nil && rb == nil {
			break
		}
		rows++
		if rows > 1000 {
			t.Fatal("runaway scan")
		}
	}
	if got := c.Metrics().SimTime(); got >= seqTime {
		t.Errorf("interleaved prefetch scans took %v, want below sequential %v", got, seqTime)
	}
}

func TestWithMetricsSharesStateChargesSeparately(t *testing.T) {
	c := testCluster(t)
	loadSplitTable(t, c, "t", 50)

	m2 := &sim.Metrics{}
	v := c.WithMetrics(m2)
	if _, err := v.Get("t", "r1x0001"); err != nil {
		t.Fatal(err)
	}
	if m2.RPCCalls() != 1 {
		t.Errorf("view charged %d RPCs, want 1", m2.RPCCalls())
	}
	base := c.Metrics().RPCCalls()
	if _, err := c.Get("t", "r1x0001"); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().RPCCalls() != base+1 {
		t.Error("base collector not charged by base view")
	}
	if m2.RPCCalls() != 1 {
		t.Error("view collector charged by base view's operation")
	}
	// Writes through the view are visible through the base view.
	if err := v.Put("t", Cell{Row: "r5new", Family: "cf", Qualifier: "q", Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	row, err := c.Get("t", "r5new")
	if err != nil || row == nil {
		t.Fatalf("row written through view not visible: %v %v", row, err)
	}
}

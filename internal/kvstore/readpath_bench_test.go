package kvstore

import (
	"fmt"
	"testing"
)

// buildMultiSegmentRegion loads a single-region table whose rows are
// dealt round-robin across nSegs flushed segments plus one live memtable
// batch, so every segment overlaps the whole key range but each row
// lives in exactly one source — the shape BFHM reverse-mapping lookups
// and ISL random gets hit in practice.
func buildMultiSegmentRegion(tb testing.TB, nSegs, rowsPerSeg int) (*Cluster, int) {
	tb.Helper()
	c := testCluster(tb)
	if _, err := c.CreateTable("t", []string{"cf"}, nil); err != nil {
		tb.Fatal(err)
	}
	total := (nSegs + 1) * rowsPerSeg
	r := mustRegion(tb, c, "t")
	for s := 0; s <= nSegs; s++ {
		for i := 0; i < rowsPerSeg; i++ {
			row := benchRowKey(i*(nSegs+1) + s)
			if err := c.Put("t", Cell{Row: row, Family: "cf", Qualifier: "v", Value: []byte("0123456789abcdef")}); err != nil {
				tb.Fatal(err)
			}
		}
		if s < nSegs {
			r.Flush()
		}
	}
	return c, total
}

func mustRegion(tb testing.TB, c *Cluster, table string) *Region {
	tb.Helper()
	regs, err := c.TableRegions(table)
	if err != nil {
		tb.Fatal(err)
	}
	return regs[0]
}

func benchRowKey(i int) string { return fmt.Sprintf("row-%08d", i) }

// benchKeys pre-renders row keys so the loop measures the store, not
// fmt.Sprintf.
func benchKeys(total int) []string {
	keys := make([]string, total)
	for i := range keys {
		keys[i] = benchRowKey(i)
	}
	return keys
}

// BenchmarkPointGet measures keyed reads of present rows against a
// region with four segments plus a live memtable.
func BenchmarkPointGet(b *testing.B) {
	c, total := buildMultiSegmentRegion(b, 4, 5000)
	keys := benchKeys(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := c.Get("t", keys[i%total])
		if err != nil || row == nil {
			b.Fatalf("get: %v %v", row, err)
		}
	}
}

// BenchmarkPointGetNoCache isolates the structural fast path — bloom
// pruning + binary search + first-live-version cutoff — with the row
// cache disabled.
func BenchmarkPointGetNoCache(b *testing.B) {
	c, total := buildMultiSegmentRegion(b, 4, 5000)
	c.SetRowCacheBytes(0)
	keys := benchKeys(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := c.Get("t", keys[i%total])
		if err != nil || row == nil {
			b.Fatalf("get: %v %v", row, err)
		}
	}
}

// BenchmarkPointGetMiss measures keyed reads of absent rows (every key
// distinct, so no cache can help); segment pruning is the only defense.
func BenchmarkPointGetMiss(b *testing.B) {
	c, _ := buildMultiSegmentRegion(b, 4, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := c.Get("t", fmt.Sprintf("zz-miss-%09d", i))
		if err != nil || row != nil {
			b.Fatalf("get: %v %v", row, err)
		}
	}
}

// BenchmarkScanMultiSegment measures a full batched scan over the same
// multi-segment region (merge + row assembly costs).
func BenchmarkScanMultiSegment(b *testing.B) {
	c, total := buildMultiSegmentRegion(b, 4, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := c.ScanAll(Scan{Table: "t", Caching: 1000})
		if err != nil || len(rows) != total {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkMergedIterDrain drains a k-way merge across eight segment
// iterators — the raw cost of the LSM merge machinery.
func BenchmarkMergedIterDrain(b *testing.B) {
	const nSegs, perSeg = 8, 4000
	segs := make([]*segment, nSegs)
	for s := 0; s < nSegs; s++ {
		var keys []string
		var cells []*Cell
		for i := 0; i < perSeg; i++ {
			c := &Cell{Row: benchRowKey(i*nSegs + s), Family: "cf", Qualifier: "v", Value: []byte("x"), Timestamp: 1}
			keys = append(keys, cellKey(c.Row, c.Family, c.Qualifier, c.Timestamp, uint64(i*nSegs+s)))
			cells = append(cells, c)
		}
		segs[s] = newSegment(keys, cells)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iters := make([]cellIter, nSegs)
		for j, s := range segs {
			iters[j] = s.iterator("")
		}
		m := newMergedIter(iters...)
		n := 0
		for m.valid() {
			_ = m.key()
			_ = m.cell()
			m.next()
			n++
		}
		if n != nSegs*perSeg {
			b.Fatalf("drained %d", n)
		}
	}
}

// BenchmarkSustainedLoad measures write throughput under frequent
// flushes — the compaction policy dominates: merging everything on every
// flush is quadratic in data size, tiered merges are not.
func BenchmarkSustainedLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := testCluster(b)
		if _, err := c.CreateTable("t", []string{"cf"}, nil); err != nil {
			b.Fatal(err)
		}
		r := mustRegion(b, c, "t")
		r.mu.Lock()
		r.flushThreshold = 32 << 10 // force frequent flushes
		r.mu.Unlock()
		b.StartTimer()
		for j := 0; j < 20000; j++ {
			if err := c.Put("t", Cell{Row: benchRowKey(j), Family: "cf", Qualifier: "v", Value: []byte("0123456789abcdef")}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

package kvstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestSegmentBloomFPR is a regression bound on the per-segment row bloom
// filter: absent rows must be pruned with a false-positive rate near the
// configured target (1%, asserted with slack at 3%), and present rows
// must never be pruned.
func TestSegmentBloomFPR(t *testing.T) {
	const n = 20000
	var keys []string
	var cells []*Cell
	for i := 0; i < n; i++ {
		c := &Cell{Row: fmt.Sprintf("present-%06d", i), Family: "cf", Qualifier: "v", Value: []byte("x"), Timestamp: 1}
		keys = append(keys, cellKey(c.Row, c.Family, c.Qualifier, c.Timestamp, uint64(i)))
		cells = append(cells, c)
	}
	seg := newSegment(keys, cells)
	for i := 0; i < n; i++ {
		if !seg.mayContainRow(fmt.Sprintf("present-%06d", i)) {
			t.Fatalf("false negative for present row %d", i)
		}
	}
	// Absent rows inside the [min,max] range, so only the filter prunes.
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if seg.mayContainRow(fmt.Sprintf("present-%06d-absent-%d", i%n, i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("bloom false-positive rate %.4f exceeds 0.03", rate)
	}
	// Rows outside the key range are pruned without consulting the filter.
	if seg.mayContainRow("aaa") || seg.mayContainRow("zzz") {
		t.Error("out-of-range row not pruned")
	}
}

// TestMergedIterEquivalence drives the heap merge against a model: the
// merged stream must equal the sorted union of all source entries.
func TestMergedIterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nSegs := 1 + rng.Intn(6)
		var model []string
		var iters []cellIter
		for s := 0; s < nSegs; s++ {
			n := rng.Intn(40)
			keySet := map[string]bool{}
			for i := 0; i < n; i++ {
				keySet[fmt.Sprintf("k%04d-s%d", rng.Intn(500), s)] = true
			}
			var keys []string
			for k := range keySet {
				keys = append(keys, k)
			}
			sortStrings(keys)
			var cells []*Cell
			for _, k := range keys {
				cells = append(cells, &Cell{Row: k, Family: "cf", Qualifier: "v", Timestamp: 1})
			}
			model = append(model, keys...)
			iters = append(iters, newSegment(keys, cells).iterator(""))
		}
		sortStrings(model)
		m := newMergedIter(iters...)
		var got []string
		for m.valid() {
			got = append(got, m.key())
			if m.cell() == nil {
				t.Fatal("nil cell")
			}
			m.next()
		}
		if fmt.Sprint(got) != fmt.Sprint(model) {
			t.Fatalf("trial %d: merged stream diverges from model\ngot  %v\nwant %v", trial, got, model)
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestGetMatchesScan cross-checks the dedicated point-get fast path
// against the generic scan path on randomized multi-segment state,
// including tombstones, overwrites, and family restrictions.
func TestGetMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := testCluster(t)
	c.SetRowCacheBytes(0) // exercise the segment path, not the cache
	mustCreate(t, c, "t", []string{"a", "b"}, nil)
	regs, _ := c.TableRegions("t")
	r := regs[0]
	for op := 0; op < 4000; op++ {
		row := fmt.Sprintf("k%03d", rng.Intn(200))
		fam := "a"
		if rng.Intn(2) == 0 {
			fam = "b"
		}
		switch rng.Intn(10) {
		case 0:
			if err := c.Delete("t", row, fam, "v", 0); err != nil {
				t.Fatal(err)
			}
		case 1:
			if rng.Intn(3) == 0 {
				r.Flush()
			}
		default:
			if err := c.Put("t", Cell{Row: row, Family: fam, Qualifier: "v", Value: []byte(fmt.Sprint(op))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	famSets := [][]string{nil, {"a"}, {"b"}, {"a", "b"}}
	for i := 0; i < 200; i++ {
		row := fmt.Sprintf("k%03d", i)
		for _, fams := range famSets {
			got, _, err := r.get(row, fams)
			if err != nil {
				t.Fatal(err)
			}
			rows, _, err := r.scan(row, row+"\x01", 1, fams, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			var want *Row
			if len(rows) > 0 && rows[0].Key == row {
				want = &rows[0]
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("row %q fams %v: get=%+v scan=%+v", row, fams, got, want)
			}
		}
	}
}

// TestRowCacheServesAndInvalidates exercises the sequential cache
// contract: a repeated get hits, a mutation invalidates, deletes are
// cached negatively, and family-restricted reads are served from the
// full cached row.
func TestRowCacheServesAndInvalidates(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"a", "b"}, nil)
	put := func(fam, val string) {
		t.Helper()
		if err := c.Put("t", Cell{Row: "r", Family: fam, Qualifier: "v", Value: []byte(val)}); err != nil {
			t.Fatal(err)
		}
	}
	put("a", "1")
	put("b", "2")
	if _, err := c.Get("t", "r"); err != nil { // populate
		t.Fatal(err)
	}
	hits0, _ := c.RowCacheStats()
	row, err := c.Get("t", "r")
	if err != nil || row == nil || len(row.Cells) != 2 {
		t.Fatalf("cached get = %+v, %v", row, err)
	}
	hits1, _ := c.RowCacheStats()
	if hits1 != hits0+1 {
		t.Fatalf("expected a cache hit, hits %d -> %d", hits0, hits1)
	}
	// Family-restricted gets bypass the cache (so their billed work is
	// identical on every repetition) but must still be correct.
	row, _ = c.Get("t", "r", "b")
	if row == nil || len(row.Cells) != 1 || string(row.Cells[0].Value) != "2" {
		t.Fatalf("family-restricted get = %+v", row)
	}
	if h, _ := c.RowCacheStats(); h != hits1 {
		t.Fatalf("family-restricted get touched the cache: hits %d -> %d", hits1, h)
	}
	// Mutation invalidates: the next get must see the new value.
	put("a", "updated")
	row, _ = c.Get("t", "r")
	if string(row.Cell("a", "v").Value) != "updated" {
		t.Fatalf("stale cache after put: %+v", row)
	}
	// Delete both columns; absence is observed and cached.
	c.Delete("t", "r", "a", "v", 0)
	c.Delete("t", "r", "b", "v", 0)
	if row, _ = c.Get("t", "r"); row != nil {
		t.Fatalf("row visible after delete: %+v", row)
	}
	if row, _ = c.Get("t", "r"); row != nil {
		t.Fatalf("negative cache returned a row: %+v", row)
	}
	// Reinsert after a cached miss must be visible again.
	put("a", "back")
	if row, _ = c.Get("t", "r"); row == nil || string(row.Cells[0].Value) != "back" {
		t.Fatalf("reinsert after negative cache = %+v", row)
	}
}

// TestRowCacheBillsWarmLikeCold pins the cost contract: a warm (cached)
// get of a row bills exactly the read units and network bytes of the
// cold get that populated it — including tombstoned columns, which are
// examined but not returned — while its simulated time drops because
// the seek and disk bytes are skipped.
func TestRowCacheBillsWarmLikeCold(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"a"}, nil)
	c.Put("t", Cell{Row: "r", Family: "a", Qualifier: "x", Value: []byte("1")})
	c.Put("t", Cell{Row: "r", Family: "a", Qualifier: "y", Value: []byte("2")})
	c.Delete("t", "r", "a", "x", 0)
	// Flush so the cold read pays real storage costs in disk mode too
	// (a memtable-only read measures zero block fetches there; in
	// memory mode the flush changes nothing).
	regs, _ := c.TableRegions("t")
	for _, r := range regs {
		if err := r.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	measure := func() sim.Snapshot {
		t.Helper()
		before := c.Metrics().Snapshot()
		if _, err := c.Get("t", "r"); err != nil {
			t.Fatal(err)
		}
		return c.Metrics().Snapshot().Sub(before)
	}
	cold := measure()
	warm := measure()
	if warm.KVReads != cold.KVReads {
		t.Errorf("warm KVReads %d != cold %d", warm.KVReads, cold.KVReads)
	}
	if warm.NetworkBytes != cold.NetworkBytes {
		t.Errorf("warm network %d != cold %d", warm.NetworkBytes, cold.NetworkBytes)
	}
	if warm.SimTime >= cold.SimTime {
		t.Errorf("warm time %v not below cold %v", warm.SimTime, cold.SimTime)
	}
	if warm.DiskBytesRead != 0 {
		t.Errorf("warm read %d disk bytes", warm.DiskBytesRead)
	}
	// Same contract for a negative entry (row with only tombstones).
	c.Delete("t", "r", "a", "y", 0)
	cold = measure()
	warm = measure()
	if warm.KVReads != cold.KVReads {
		t.Errorf("negative: warm KVReads %d != cold %d", warm.KVReads, cold.KVReads)
	}
}

// TestRowCacheConcurrent hammers one table with concurrent writers,
// point readers, and scanners (run under -race), then verifies every
// row's final value against a per-row model.
func TestRowCacheConcurrent(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, []string{"k050"})
	const rows = 100
	var mu sync.Mutex
	model := map[string]string{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("k%03d", rng.Intn(rows))
				v := fmt.Sprintf("w%d-%d", w, i)
				mu.Lock()
				if err := c.Put("t", Cell{Row: k, Family: "cf", Qualifier: "v", Value: []byte(v)}); err != nil {
					mu.Unlock()
					t.Error(err)
					return
				}
				model[k] = v
				mu.Unlock()
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%03d", rng.Intn(rows))
				if _, err := c.Get("t", k); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := c.ScanAll(Scan{Table: "t", Caching: 17}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k, want := range model {
		row, err := c.Get("t", k)
		if err != nil {
			t.Fatal(err)
		}
		if row == nil || string(row.Cells[0].Value) != want {
			t.Fatalf("row %q = %+v, want %q", k, row, want)
		}
	}
}

// TestTieredCompactionEquivalence is the compaction property test: a
// region compacted by the online tiered policy must expose exactly the
// same rows as a twin region that never auto-compacts, at every probe
// point and after a final major compaction — tombstones included.
func TestTieredCompactionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tiered := testCluster(t)
	naive := testCluster(t)
	mustCreate(t, tiered, "t", []string{"cf"}, nil)
	mustCreate(t, naive, "t", []string{"cf"}, nil)
	tr := mustRegion(t, tiered, "t")
	nr := mustRegion(t, naive, "t")
	// Tiny flush threshold so the tiered policy runs constantly; the
	// naive twin flushes at the same points but never merges.
	tr.mu.Lock()
	tr.flushThreshold = 2 << 10
	tr.mu.Unlock()
	nr.mu.Lock()
	nr.flushThreshold = 2 << 10
	nr.compactThreshold = 1 << 30
	nr.mu.Unlock()

	check := func(stage string) {
		t.Helper()
		a, err := tiered.ScanAll(Scan{Table: "t", Caching: 1000})
		if err != nil {
			t.Fatal(err)
		}
		b, err := naive.ScanAll(Scan{Table: "t", Caching: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("%s: tiered(%d rows) != uncompacted(%d rows)", stage, len(a), len(b))
		}
	}

	for op := 0; op < 6000; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(250))
		if rng.Intn(5) == 0 {
			// Tombstone half the deletes against rows that may only
			// exist in older runs, so retained tombstones must keep
			// shadowing them.
			ts := tiered.Now()
			if err := tiered.Delete("t", k, "cf", "v", ts); err != nil {
				t.Fatal(err)
			}
			if err := naive.Delete("t", k, "cf", "v", ts); err != nil {
				t.Fatal(err)
			}
		} else {
			ts := tiered.Now()
			v := []byte(fmt.Sprintf("v%d-%032d", op, op)) // pad to force flushes
			if err := tiered.Put("t", Cell{Row: k, Family: "cf", Qualifier: "v", Value: v, Timestamp: ts}); err != nil {
				t.Fatal(err)
			}
			if err := naive.Put("t", Cell{Row: k, Family: "cf", Qualifier: "v", Value: v, Timestamp: ts}); err != nil {
				t.Fatal(err)
			}
		}
		if op%1500 == 1499 {
			check(fmt.Sprintf("op %d", op))
		}
	}
	check("final")
	tr.mu.RLock()
	nseg := len(tr.segments)
	tr.mu.RUnlock()
	if nseg > tr.maxSegmentsLocked() {
		t.Errorf("tiered policy left %d segments, cap %d", nseg, tr.maxSegmentsLocked())
	}
	// After a major compaction both must still agree, and the tiered
	// region must have purged tombstones.
	tr.Compact()
	nr.Compact()
	check("after major compaction")
}

// TestSubsetMergeKeepsShadowedTombstones pins the snapshot-read safety
// of subset merges: a tombstone that is NOT the newest version of its
// column inside the merged runs must survive the merge, because it may
// still shadow an older live version in a run outside the merge. Layout
// before the merge: seg C (outside) holds ts=30 live, seg B ts=50
// tombstone, seg A ts=100 live; merging A+B must not let a ReadTs=60
// snapshot resurrect the deleted ts=30 value.
func TestSubsetMergeKeepsShadowedTombstones(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	r := mustRegion(t, c, "t")
	put := func(ts int64, tomb bool) {
		t.Helper()
		cell := Cell{Row: "r", Family: "cf", Qualifier: "v", Timestamp: ts, Tombstone: tomb}
		if !tomb {
			cell.Value = []byte(fmt.Sprintf("v@%d", ts))
		}
		if err := r.mutateRow([]Cell{cell}); err != nil {
			t.Fatal(err)
		}
		r.Flush()
	}
	put(30, false) // oldest segment, stays outside the merge
	put(50, true)
	put(100, false)
	snapshot := func() []Row {
		t.Helper()
		rows, _, err := r.scan("", "", 0, nil, 60, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	if rows := snapshot(); len(rows) != 0 {
		t.Fatalf("pre-merge snapshot at ts=60 sees %+v, want deleted", rows)
	}
	r.mu.Lock()
	r.mergeSegmentsLocked([]int{0, 1}) // segments are newest first: A, B
	nseg := len(r.segments)
	r.mu.Unlock()
	if nseg != 2 {
		t.Fatalf("expected 2 segments after subset merge, got %d", nseg)
	}
	if rows := snapshot(); len(rows) != 0 {
		t.Fatalf("subset merge resurrected deleted value for snapshot read: %+v", rows)
	}
	// The latest view still sees ts=100.
	row, err := c.Get("t", "r")
	if err != nil || row == nil || string(row.Cells[0].Value) != "v@100" {
		t.Fatalf("latest read after subset merge = %+v, %v", row, err)
	}
}

// TestSubsetMergeKeepsShadowedVersions is the overwrite twin of the
// tombstone test: a live version shadowed by a newer one inside the
// merged runs must survive a subset merge, or a ReadTs snapshot read
// would resolve to an even older value from a run outside the merge.
func TestSubsetMergeKeepsShadowedVersions(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	r := mustRegion(t, c, "t")
	for _, ts := range []int64{30, 50, 100} {
		cell := Cell{Row: "r", Family: "cf", Qualifier: "v", Timestamp: ts, Value: []byte(fmt.Sprintf("v@%d", ts))}
		if err := r.mutateRow([]Cell{cell}); err != nil {
			t.Fatal(err)
		}
		r.Flush()
	}
	r.mu.Lock()
	r.mergeSegmentsLocked([]int{0, 1}) // merge ts=100 and ts=50 runs; ts=30 stays outside
	r.mu.Unlock()
	rows, _, err := r.scan("", "", 0, nil, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || string(rows[0].Cells[0].Value) != "v@50" {
		t.Fatalf("snapshot at ts=60 after subset merge = %+v, want v@50", rows)
	}
}

// TestTieredCompactionGarbageCollects pins the steady-state GC
// property: under a sustained overwrite workload (the online
// index-maintenance shape), the periodic full-merge fallback must
// reclaim dead versions, keeping the region's disk footprint a small
// fraction of the total bytes ever written. Without it, subset merges
// (which retain every version) would let DiskSize grow to the write
// volume.
func TestTieredCompactionGarbageCollects(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	r := mustRegion(t, c, "t")
	r.mu.Lock()
	r.flushThreshold = 8 << 10
	r.mu.Unlock()
	const rows = 50
	var written uint64
	for i := 0; i < 20000; i++ {
		cell := Cell{Row: fmt.Sprintf("k%02d", i%rows), Family: "cf", Qualifier: "v", Value: []byte(fmt.Sprintf("v%06d-%032d", i, i))}
		written += cell.StoredSize()
		if err := c.Put("t", cell); err != nil {
			t.Fatal(err)
		}
	}
	ds := r.DiskSize()
	if ds > written/3 {
		t.Errorf("disk size %d after %d bytes written — dead versions not collected", ds, written)
	}
}

// TestTieredCompactionCutsWriteAmplification asserts the point of the
// policy: under sustained load with frequent flushes, tiered compaction
// must write far fewer bytes than rewriting the whole region per flush
// (which would be ~sum over flushes of the data size so far).
func TestTieredCompactionCutsWriteAmplification(t *testing.T) {
	c := testCluster(t)
	mustCreate(t, c, "t", []string{"cf"}, nil)
	r := mustRegion(t, c, "t")
	r.mu.Lock()
	r.flushThreshold = 16 << 10
	r.mu.Unlock()
	for i := 0; i < 20000; i++ {
		if err := c.Put("t", Cell{Row: fmt.Sprintf("r%06d", i), Family: "cf", Qualifier: "v", Value: []byte("0123456789abcdef")}); err != nil {
			t.Fatal(err)
		}
	}
	data := r.DiskSize()
	written := r.CompactionBytes()
	if written == 0 {
		t.Fatal("no compactions ran — flush threshold too large for the workload")
	}
	// Major-on-every-flush would rewrite ~half the dataset per flush:
	// with ~70 flushes that is >30x the data size. Tiered stays within
	// a small multiple (log-ish in the number of tiers).
	if written > 8*data {
		t.Errorf("compaction wrote %d bytes for %d live bytes (amplification %.1fx)", written, data, float64(written)/float64(data))
	}
}

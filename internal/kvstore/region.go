package kvstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// errRegionSplit is returned by region reads and writes that raced a
// split: the region was closed and its data now lives in two children.
// The client paths in cluster.go catch it and re-route through the
// table's (synchronized) region list, mirroring how HBase clients retry
// a NotServingRegionException after a split.
var errRegionSplit = errors.New("kvstore: region closed by split")

// Region is one horizontal shard of a table: the half-open row-key range
// [StartKey, EndKey), hosted by a single node. Each region owns an LSM
// pipeline — WAL, memtable, immutable runs — and a mutex providing
// the row-level atomicity HBase guarantees (Section 6 relies on it).
// With a diskStore attached the runs are on-disk SSTables and the WAL is
// file-backed; without one everything lives in memory (the original
// simulated mode). The two modes never mix within a region.
type Region struct {
	mu       sync.RWMutex
	id       int
	table    string
	startKey string // inclusive; "" = unbounded low
	endKey   string // exclusive; "" = unbounded high
	node     int    // guarded by: mu

	mem      *memtable // guarded by: mu
	segments []run     // newest first; guarded by: mu
	log      *wal      // guarded by: mu
	seq      uint64    // guarded by: mu
	cache    *rowCache
	store    *diskStore // nil = memory-only
	// closed marks a region retired by a split: every read or write
	// returns errRegionSplit so the caller re-routes to the children.
	// guarded by: mu
	closed bool

	// quarantined holds on-disk runs that failed checksum verification
	// in a Scrub pass. They are off the read path — any read whose key
	// range may touch one fails with a typed CorruptionError rather
	// than silently missing rows — and their files are never unlinked,
	// so the damaged bytes remain available for repair.
	// guarded by: mu
	quarantined []*diskSegment

	// liveCells caches LiveCellCount's merge walk, keyed by the seq that
	// produced it. Flushes and compactions never change the live set, so
	// the cache only invalidates on mutation (seq advance). The cache
	// has its own lock, liveMu: the walk itself runs under the region
	// READ lock so planner statistics never stall concurrent reads.
	liveMu         sync.Mutex
	liveCells      uint64 // guarded by: liveMu
	liveCellsSeq   uint64 // guarded by: liveMu
	liveCellsValid bool   // guarded by: liveMu

	flushThreshold   uint64 // guarded by: mu
	compactThreshold int
	// compactionBytes counts bytes written by compactions — the write
	// amplification the tiered policy exists to bound.
	// guarded by: mu
	compactionBytes uint64
}

const (
	defaultFlushThreshold   = 4 << 20 // 4 MB memstore, scaled-down HBase default
	defaultCompactThreshold = 4
)

func newRegion(id int, table, startKey, endKey string, node int, seed int64, cacheBytes uint64) *Region {
	return &Region{
		id:               id,
		table:            table,
		startKey:         startKey,
		endKey:           endKey,
		node:             node,
		mem:              newMemtable(seed),
		log:              &wal{},
		cache:            newRowCache(cacheBytes),
		flushThreshold:   defaultFlushThreshold,
		compactThreshold: defaultCompactThreshold,
	}
}

// attachStore switches a fresh region to disk-backed mode: its WAL
// becomes a file in the store directory and every flush writes an
// SSTable. Must be called before the region receives any mutation.
func (r *Region) attachStore(store *diskStore) error {
	if store == nil {
		return nil
	}
	w, err := openWAL(store.fs, store.walPath(r.id))
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.store = store
	r.log = w
	r.mu.Unlock()
	return nil
}

// manifestTemplateLocked renders the region's identity for manifest
// upserts. Callers either hold r.mu (flush, compaction) or own a region
// no other goroutine can reach yet (table creation, detached split
// children).
func (r *Region) manifestTemplateLocked() manifestRegion {
	return manifestRegion{ID: r.id, Table: r.table, Start: r.startKey, End: r.endKey, Node: r.node}
}

// diskFilesLocked lists the region's SSTable file names, newest first.
// Caller holds r.mu; all runs are disk segments in disk mode.
func (r *Region) diskFilesLocked() []string {
	files := make([]string, 0, len(r.segments))
	for _, s := range r.segments {
		if d, ok := s.(*diskSegment); ok {
			files = append(files, d.name)
		}
	}
	return files
}

// shutdown releases the region's file handles (disk mode). The region
// must not be used afterwards.
func (r *Region) shutdown() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, s := range r.segments {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range r.quarantined {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	if err := r.log.close(); err != nil && first == nil {
		first = err
	}
	return first
}

// setFlushThreshold overrides the memstore flush threshold (tests force
// small SSTables with it).
func (r *Region) setFlushThreshold(n uint64) {
	r.mu.Lock()
	r.flushThreshold = n
	r.mu.Unlock()
}

// ID returns the region's identifier.
func (r *Region) ID() int { return r.id }

// Node returns the hosting node index.
func (r *Region) Node() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.node
}

// StartKey returns the inclusive low bound ("" = unbounded).
func (r *Region) StartKey() string { return r.startKey }

// EndKey returns the exclusive high bound ("" = unbounded).
func (r *Region) EndKey() string { return r.endKey }

// contains reports whether row falls in this region's range.
func (r *Region) contains(row string) bool {
	if r.startKey != "" && row < r.startKey {
		return false
	}
	if r.endKey != "" && row >= r.endKey {
		return false
	}
	return true
}

// OpStats reports the physical work one operation performed, so callers
// (the metered client, the MapReduce runner) can charge the right costs
// in the right places.
type OpStats struct {
	CellsExamined uint64 // logical KV pairs touched (read units)
	BytesRead     uint64 // bytes read from disk (measured block bytes in disk mode)
	BytesReturned uint64 // payload bytes leaving the region server
	CellsReturned uint64
	// CacheHits counts keyed reads served from the row cache: no disk
	// bytes, no seek — callers charge RPC/transfer/CPU but skip the
	// storage costs for these.
	CacheHits uint64
	// BlockReads counts SSTable blocks fetched from disk (block-cache
	// misses); disk-mode callers charge one seek per block read instead
	// of the memory mode's flat per-operation seek. BlockCacheHits
	// counts blocks served from the shared block cache.
	BlockReads     uint64
	BlockCacheHits uint64
}

func (s *OpStats) add(o OpStats) {
	s.CellsExamined += o.CellsExamined
	s.BytesRead += o.BytesRead
	s.BytesReturned += o.BytesReturned
	s.CellsReturned += o.CellsReturned
	s.CacheHits += o.CacheHits
	s.BlockReads += o.BlockReads
	s.BlockCacheHits += o.BlockCacheHits
}

// applyMutation validates, logs, and inserts one cell version.
// locked: r.mu
func (r *Region) applyMutation(c Cell) error {
	if err := ValidateKeyComponent(c.Row); err != nil {
		return err
	}
	if err := ValidateKeyComponent(c.Family); err != nil {
		return fmt.Errorf("kvstore: bad family: %w", err)
	}
	if c.Qualifier != "" {
		if err := ValidateKeyComponent(c.Qualifier); err != nil {
			return fmt.Errorf("kvstore: bad qualifier: %w", err)
		}
	}
	if !r.contains(c.Row) {
		return fmt.Errorf("kvstore: row %q outside region [%q, %q)", c.Row, r.startKey, r.endKey)
	}
	r.seq++
	cp := c // private copy
	key := cellKey(cp.Row, cp.Family, cp.Qualifier, cp.Timestamp, r.seq)
	if err := r.log.append(key, &cp); err != nil {
		return err
	}
	r.mem.put(key, &cp)
	r.cache.invalidate(cp.Row)
	if r.mem.size > r.flushThreshold {
		return r.flushLocked()
	}
	return nil
}

// mutateRow applies several cells of ONE row atomically.
func (r *Region) mutateRow(cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	row := cells[0].Row
	for i := range cells {
		if cells[i].Row != row {
			return fmt.Errorf("kvstore: mutateRow spans rows %q and %q", row, cells[i].Row)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errRegionSplit
	}
	for i := range cells {
		if err := r.applyMutation(cells[i]); err != nil {
			return err
		}
	}
	return nil
}

// seedCells loads a split child with its share of the parent's cells:
// one lock cycle for the whole batch instead of one per cell, and a
// final flush that materializes the seed into a segment and truncates
// the WAL — the child never holds the region's full contents as log
// records (HBase daughters open on reference files, not WAL replays).
func (r *Region) seedCells(cells []Cell) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range cells {
		if err := r.applyMutation(cells[i]); err != nil {
			return err
		}
	}
	return r.flushLocked()
}

// closeAndSnapshot retires the region for a split: it atomically marks
// the region closed (subsequent reads/writes get errRegionSplit and
// re-route) and snapshots every live cell, so no mutation can slip in
// between the snapshot and the routing swap.
func (r *Region) closeAndSnapshot() ([]Cell, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	return r.allCellsLocked()
}

// reopen undoes closeAndSnapshot when a split aborts.
func (r *Region) reopen() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = false
}

// flushLocked materializes the memtable into a new run — an in-memory
// segment, or a registered SSTable in disk mode — and truncates the WAL.
// Caller holds r.mu.
//
//lint:allow chargecheck flushes are server-side background work, free in the client cost model (writes were already billed when applied)
func (r *Region) flushLocked() error {
	if r.mem.count == 0 {
		return nil
	}
	if r.store == nil {
		seg := newSegment(r.mem.keys(), r.mem.entries())
		r.segments = append([]run{seg}, r.segments...)
	} else {
		name := r.store.allocFile()
		seg, err := writeSSTable(r.store.fs, r.store.dir, name, r.store.cache, r.mem.iterator(""))
		if err != nil {
			return err
		}
		files := append([]string{name}, r.diskFilesLocked()...)
		if err := r.store.registerSegments(r.manifestTemplateLocked(), files, r.seq, seg.meta.maxTs, nil); err != nil {
			seg.close()
			return err
		}
		r.segments = append([]run{seg}, r.segments...)
	}
	r.mem = newMemtable(int64(r.id)<<32 | int64(r.seq))
	if err := r.log.truncate(); err != nil {
		return err
	}
	if len(r.segments) > r.compactThreshold {
		return r.compactTieredLocked()
	}
	return nil
}

// Flush forces a memtable flush (tests and admin use).
func (r *Region) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

// gcIter filters a merged stream down to the survivors of a major
// compaction: only the newest version of each column, and only when that
// version is not a tombstone. Versions shadowed inside the merge are
// dropped — callers must only apply it to a merge covering EVERY run
// plus an empty memtable (see compactTieredLocked).
type gcIter struct {
	src                        cellIter
	lastRow, lastFam, lastQual string
	started                    bool
}

func newGCIter(src cellIter) *gcIter {
	g := &gcIter{src: src}
	g.settle()
	return g
}

// settle advances src to the next surviving cell (possibly the current
// one).
func (g *gcIter) settle() {
	for g.src.valid() {
		c := g.src.cell()
		if !g.started || c.Row != g.lastRow || c.Family != g.lastFam || c.Qualifier != g.lastQual {
			g.started = true
			g.lastRow, g.lastFam, g.lastQual = c.Row, c.Family, c.Qualifier
			if !c.Tombstone {
				return
			}
		}
		g.src.next()
	}
}

func (g *gcIter) valid() bool { return g.src.valid() }
func (g *gcIter) key() string { return g.src.key() }
func (g *gcIter) cell() *Cell { return g.src.cell() }
func (g *gcIter) fail() error { return g.src.fail() }
func (g *gcIter) next() {
	g.src.next()
	g.settle()
}

// mergeSegments merges sorted in-memory runs into one. With gc (a full
// merge of every run, i.e. a major compaction), only the newest version
// of each column survives and columns whose newest version is a
// tombstone are dropped entirely. Without gc (a subset merge), EVERY
// version is retained: a version shadowed inside the merge — a tombstone
// or an overwritten value — may still be the version a ReadTs snapshot
// read resolves to against runs outside the merge, so subset merges only
// reduce run count, never reclaim history.
func mergeSegments(segs []*segment, gc bool) *segment {
	total := 0
	iters := make([]cellIter, 0, len(segs))
	for _, s := range segs {
		total += s.len()
		iters = append(iters, s.iterator(""))
	}
	var it cellIter = newMergedIter(iters...)
	if gc {
		it = newGCIter(it)
	}
	keys := make([]string, 0, total)
	cells := make([]*Cell, 0, total)
	for ; it.valid(); it.next() {
		keys = append(keys, it.key())
		cells = append(cells, it.cell())
	}
	return newSegment(keys, cells)
}

// sizeTier buckets a segment size into ~4x-wide classes; size-tiered
// compaction only merges runs from the same class. The tier count is
// capped so base*4 can never overflow into an endless loop.
func sizeTier(size uint64) int {
	t := 0
	for base := uint64(64 << 10); size >= base && t < 24; base *= 4 {
		t++
	}
	return t
}

// maxSegmentsLocked bounds the read fan-out: past this count the policy
// falls back to a full merge even when no tier is full.
func (r *Region) maxSegmentsLocked() int { return 3 * r.compactThreshold }

// compactTieredLocked runs size-tiered compaction: merge only runs of
// similar size (the smallest qualifying tier first), instead of
// rewriting the whole region on every trigger. A merge of a strict
// subset retains every version (it only reduces run count; see
// mergeSegments), while a merge that happens to cover every run
// garbage-collects like a major compaction. Caller holds r.mu.
func (r *Region) compactTieredLocked() error {
	for len(r.segments) > r.compactThreshold {
		tiers := map[int][]int{}
		maxTier := 0
		for i, s := range r.segments {
			t := sizeTier(s.dataSize())
			tiers[t] = append(tiers[t], i)
			if t > maxTier {
				maxTier = t
			}
		}
		picked := []int(nil)
		for t := 0; t <= maxTier; t++ {
			if len(tiers[t]) >= r.compactThreshold {
				picked = tiers[t]
				break
			}
		}
		if picked == nil {
			if len(r.segments) <= r.maxSegmentsLocked() {
				return nil
			}
			// Fan-out cap exceeded with no full tier: fall back to a
			// full merge. Besides restoring the bound, this is the
			// steady-state garbage collector — subset merges retain
			// every version, so without periodic full merges an
			// update-heavy workload would accumulate dead versions and
			// tombstones forever. The memtable is always empty here
			// (the only caller is flushLocked, right after a flush), so
			// dropping tombstones cannot resurrect memtable versions.
			picked = make([]int, len(r.segments))
			for i := range picked {
				picked[i] = i
			}
		}
		if err := r.mergeSegmentsLocked(picked); err != nil {
			return err
		}
	}
	return nil
}

// mergeSegmentsLocked replaces the runs at the given (ascending) indices
// with their merge, placed at the newest picked position. In disk mode
// the merge streams block-by-block into a new SSTable, the replacement
// is durably registered in the manifest, and ONLY THEN are the input
// files unlinked — a crash between the write and the register leaves an
// orphan new file (cleaned at next open); a crash between the register
// and the unlink leaves orphan old files; neither loses data.
//
//lint:allow chargecheck compactions are server-side background work, free in the client cost model; write amplification is tracked in CompactionBytes instead
func (r *Region) mergeSegmentsLocked(picked []int) error {
	runs := make([]run, 0, len(picked))
	for _, i := range picked {
		runs = append(runs, r.segments[i])
	}
	full := len(picked) == len(r.segments)

	var merged run // nil = merge produced no cells (disk mode only)
	var obsolete []string
	if r.store == nil {
		segs := make([]*segment, 0, len(runs))
		for _, s := range runs {
			segs = append(segs, s.(*segment))
		}
		m := mergeSegments(segs, full)
		r.compactionBytes += m.size
		merged = m
	} else {
		iters := make([]cellIter, 0, len(runs))
		for _, s := range runs {
			iters = append(iters, s.iterAt("", nil))
			obsolete = append(obsolete, s.(*diskSegment).name)
		}
		var src cellIter = newMergedIter(iters...)
		if full {
			src = newGCIter(src)
		}
		name := r.store.allocFile()
		seg, err := writeSSTable(r.store.fs, r.store.dir, name, r.store.cache, src)
		if err != nil {
			return err
		}
		if seg != nil {
			merged = seg
			r.compactionBytes += seg.meta.logical
		}
	}

	out := make([]run, 0, len(r.segments)-len(picked)+1)
	pi := 0
	for i, s := range r.segments {
		if pi < len(picked) && picked[pi] == i {
			if pi == 0 && merged != nil {
				out = append(out, merged)
			}
			pi++
			continue
		}
		out = append(out, s)
	}

	if r.store != nil {
		files := make([]string, 0, len(out))
		var maxTs int64
		for _, s := range out {
			d := s.(*diskSegment)
			files = append(files, d.name)
			if d.meta.maxTs > maxTs {
				maxTs = d.meta.maxTs
			}
		}
		if err := r.store.registerSegments(r.manifestTemplateLocked(), files, r.seq, maxTs, obsolete); err != nil {
			if merged != nil {
				merged.close()
			}
			return err
		}
		// The inputs are deregistered and unlinked; close their readers.
		// No concurrent reader exists — compaction holds the region
		// write lock — and open descriptors elsewhere (none today) would
		// keep the unlinked data readable anyway.
		for _, s := range runs {
			s.close()
		}
	}
	r.segments = out
	return nil
}

// compactLocked performs a major compaction: merge all runs into one,
// keeping only the newest version of each column and dropping columns
// whose newest version is a tombstone. Caller holds r.mu.
func (r *Region) compactLocked() error {
	if len(r.segments) == 0 {
		return nil
	}
	picked := make([]int, len(r.segments))
	for i := range picked {
		picked[i] = i
	}
	return r.mergeSegmentsLocked(picked)
}

// Compact forces a major compaction.
func (r *Region) Compact() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.flushLocked(); err != nil {
		return err
	}
	return r.compactLocked()
}

// CompactionBytes returns the cumulative bytes written by compactions
// (write amplification accounting).
func (r *Region) CompactionBytes() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.compactionBytes
}

// iteratorsLocked returns merged read sources, newest first, charging
// block I/O to io (nil = uncharged introspection). Caller holds a read
// lock.
func (r *Region) iteratorsLocked(start string, io *OpStats) *mergedIter {
	its := make([]cellIter, 0, len(r.segments)+1)
	its = append(its, r.mem.iterator(start))
	for _, s := range r.segments {
		its = append(its, s.iterAt(start, io))
	}
	return newMergedIter(its...)
}

// famMatch reports whether family f passes the (possibly empty) family
// restriction without building a set.
func famMatch(families []string, f string) bool {
	if len(families) == 0 {
		return true
	}
	for _, x := range families {
		if x == f {
			return true
		}
	}
	return false
}

// scan reads rows in [startRow, endRow) (endRow "" = region end), at most
// limit rows (0 = unlimited), visible at readTs (0 = latest), restricted
// to the given families (nil = all), filtered by f (nil = none). A
// region retired by a concurrent split returns errRegionSplit so the
// client re-routes to the children.
func (r *Region) scan(startRow, endRow string, limit int, families []string, readTs int64, f Filter) ([]Row, OpStats, error) {
	return r.scanAt(startRow, endRow, limit, families, readTs, f, false)
}

// scanAt is scan with an explicit closed-region policy. allowClosed
// lets locality-pinned readers (MapReduce tasks that snapshotted their
// region list at job start) keep scanning a split-retired parent: its
// segments still hold the complete pre-split data for the range, and
// the job never sees the children, so no row is lost or read twice.
//
// Cost accounting: in memory mode BytesRead is charged per examined
// cell from the stored-size formula; in disk mode it accumulates the
// MEASURED framed bytes of every block the scan faults in (block-cache
// hits read nothing), via the OpStats threaded through the iterators.
func (r *Region) scanAt(startRow, endRow string, limit int, families []string, readTs int64, f Filter, allowClosed bool) ([]Row, OpStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed && !allowClosed {
		return nil, OpStats{}, errRegionSplit
	}
	for _, q := range r.quarantined {
		if q.overlapsRows(startRow, endRow) {
			return nil, OpStats{}, errQuarantined(q.name)
		}
	}
	diskBacked := r.store != nil

	start := startRow
	if start == "" || (r.startKey != "" && start < r.startKey) {
		start = r.startKey
	}
	seekKey := ""
	if start != "" {
		seekKey = rowPrefix(start)
	}
	var stats OpStats
	var rows []Row
	it := r.iteratorsLocked(seekKey, &stats)

	var cur *Row
	lastFam, lastQual := "", ""
	sawCol := false
	flushRow := func() {
		if cur == nil {
			return
		}
		if len(cur.Cells) > 0 && (f == nil || f.FilterRow(cur)) {
			stats.CellsReturned += uint64(len(cur.Cells))
			stats.BytesReturned += cur.Size()
			rows = append(rows, *cur)
		}
		cur = nil
	}

	for it.valid() {
		c := it.cell()
		// Region bound / request bound checks.
		if r.endKey != "" && c.Row >= r.endKey {
			break
		}
		if endRow != "" && c.Row >= endRow {
			break
		}
		if !famMatch(families, c.Family) {
			// Column families are physically separate stores (HBase
			// HFiles): a family-restricted scan never touches — or
			// pays for — other families' cells.
			it.next()
			continue
		}
		if !diskBacked {
			stats.BytesRead += c.StoredSize()
		}
		if cur == nil || cur.Key != c.Row {
			flushRow()
			if limit > 0 && len(rows) >= limit {
				return rows, stats, nil
			}
			cur = &Row{Key: c.Row}
			sawCol = false
		}
		visible := readTs == 0 || c.Timestamp <= readTs
		if visible && (!sawCol || c.Family != lastFam || c.Qualifier != lastQual) {
			sawCol = true
			lastFam, lastQual = c.Family, c.Qualifier
			stats.CellsExamined++
			if !c.Tombstone {
				cur.Cells = append(cur.Cells, *c)
			}
		}
		it.next()
	}
	if err := it.fail(); err != nil {
		return nil, stats, err
	}
	flushRow()
	return rows, stats, nil
}

// get reads a single row (all families, latest versions) through the
// dedicated point-get fast path: a row-cache lookup first, then only the
// sources that may contain the row — the memtable plus the runs
// surviving the min/max-range and bloom-filter checks — each positioned
// by binary search, merged, and cut off at the first (newest) live
// version of every column. In disk mode the positioning walks summary →
// one index block → one data block per surviving SSTable, so a warm get
// touches no disk at all.
//
// Cost convention: a keyed read bills one seek plus the returned bytes,
// never a range scan, so in memory mode BytesRead is the returned
// payload on a miss and zero on a cache hit (the row came from
// region-server memory). In disk mode BytesRead/BlockReads are the
// measured block fetches the get actually performed. The cache serves
// and stores only full-row reads: a family-restricted get always reads
// the LSM, keeping its billed work identical on every repetition.
func (r *Region) get(row string, families []string) (*Row, OpStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, OpStats{}, errRegionSplit
	}
	for _, q := range r.quarantined {
		if q.mayContainRow(row) {
			return nil, OpStats{}, errQuarantined(q.name)
		}
	}
	var stats OpStats
	diskBacked := r.store != nil

	full := len(families) == 0
	if full {
		if cached, examined, ok := r.cache.lookup(row); ok {
			stats.CacheHits = 1
			stats.CellsExamined = examined
			if cached == nil {
				return nil, stats, nil
			}
			res := &Row{Key: cached.Key, Cells: append([]Cell(nil), cached.Cells...)}
			stats.CellsReturned = uint64(len(res.Cells))
			stats.BytesReturned = res.Size()
			return res, stats, nil
		}
	}
	prefix := rowPrefix(row)

	// Collect only the sources that may hold the row.
	var arr [8]cellIter
	sources := arr[:0]
	if mit := r.mem.iterator(prefix); mit.valid() && strings.HasPrefix(mit.key(), prefix) {
		sources = append(sources, mit)
	}
	for _, s := range r.segments {
		if !s.mayContainRow(row) {
			continue
		}
		sit := s.iterAt(prefix, &stats)
		if sit.valid() && strings.HasPrefix(sit.key(), prefix) {
			sources = append(sources, sit)
		} else if err := sit.fail(); err != nil {
			return nil, stats, err
		}
	}

	var out Row
	out.Key = row
	if len(sources) > 0 {
		var it cellIter = sources[0]
		if len(sources) > 1 {
			it = newMergedIter(sources...)
		}
		lastFam, lastQual := "", ""
		sawCol := false
		for it.valid() {
			if !strings.HasPrefix(it.key(), prefix) {
				break
			}
			c := it.cell()
			if !full && !famMatch(families, c.Family) {
				it.next()
				continue
			}
			if !sawCol || c.Family != lastFam || c.Qualifier != lastQual {
				// First (newest) version of this column decides it.
				sawCol = true
				lastFam, lastQual = c.Family, c.Qualifier
				stats.CellsExamined++
				if !c.Tombstone {
					out.Cells = append(out.Cells, *c)
				}
			}
			it.next()
		}
		if err := it.fail(); err != nil {
			return nil, stats, err
		}
	}

	if full {
		// Cache the materialized row — including its absence — while
		// still under the region read lock, so no writer can have
		// invalidated between read and insert.
		if len(out.Cells) == 0 {
			r.cache.insert(row, nil, stats.CellsExamined)
		} else {
			cached := Row{Key: row, Cells: append([]Cell(nil), out.Cells...)}
			r.cache.insert(row, &cached, stats.CellsExamined)
		}
	}
	if len(out.Cells) == 0 {
		return nil, stats, nil
	}
	stats.CellsReturned = uint64(len(out.Cells))
	stats.BytesReturned = out.Size()
	if !diskBacked {
		stats.BytesRead = stats.BytesReturned
	}
	return &out, stats, nil
}

// DiskSize returns the logical bytes held by this region (memtable +
// runs); in disk mode this is the uncompressed StoredSize total, not the
// (compressed) file size, so planner statistics are mode-independent.
func (r *Region) DiskSize() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	size := r.mem.size
	for _, s := range r.segments {
		size += s.dataSize()
	}
	return size
}

// CellCount returns the number of stored cell versions.
func (r *Region) CellCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := r.mem.count
	for _, s := range r.segments {
		n += s.numCells()
	}
	return n
}

// LiveCellCount returns the number of LIVE cells: distinct columns whose
// newest stored version is not a tombstone. Unlike CellCount it is
// insensitive to version churn, so planner cardinalities derived from it
// do not inflate on update-heavy tables between compactions. The merge
// walk is cached per mutation seq — flushes and compactions preserve the
// live set, so only writes invalidate — and runs under the region READ
// lock, so planning a write-active table never blocks concurrent reads.
func (r *Region) LiveCellCount() uint64 {
	r.mu.RLock()
	seq := r.seq
	r.mu.RUnlock()
	r.liveMu.Lock()
	if r.liveCellsValid && r.liveCellsSeq == seq {
		n := r.liveCells
		r.liveMu.Unlock()
		return n
	}
	r.liveMu.Unlock()

	r.mu.RLock()
	seq = r.seq // walk counts exactly this mutation state
	var n uint64
	lastRow, lastFam, lastQual := "", "", ""
	first := true
	it := r.iteratorsLocked("", nil)
	for it.valid() {
		c := it.cell()
		if first || c.Row != lastRow || c.Family != lastFam || c.Qualifier != lastQual {
			first = false
			lastRow, lastFam, lastQual = c.Row, c.Family, c.Qualifier
			if !c.Tombstone {
				n++
			}
		}
		it.next()
	}
	r.mu.RUnlock()

	r.liveMu.Lock()
	r.liveCells = n
	r.liveCellsSeq = seq
	r.liveCellsValid = true
	r.liveMu.Unlock()
	return n
}

// WALSize returns the write-ahead log's current byte length (zero right
// after a flush; split children start at zero because their seed load
// flushes, it does not linger in the log).
func (r *Region) WALSize() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.log.size()
}

// RowCacheStats returns the region's cumulative row-cache hit/miss
// counts.
func (r *Region) RowCacheStats() (hits, misses uint64) {
	return r.cache.stats()
}

// setRowCacheBytes resizes (0 = disables) the region's row cache.
func (r *Region) setRowCacheBytes(n uint64) {
	r.cache.setCapacity(n)
}

// recover rebuilds the memtable from the WAL, simulating a region server
// crash after segments were persisted but before the memstore was
// flushed. It returns the number of replayed records.
func (r *Region) recover() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	replayLog := r.log
	r.mem = newMemtable(int64(r.id) << 16)
	r.log = &wal{}
	n, err := r.replayWALLocked(replayLog)
	if err != nil {
		return n, err
	}
	// Re-log the recovered state so a second crash still recovers.
	r.log = replayLog
	return n, nil
}

// replayWALLocked replays w's records into the memtable, advancing the
// region sequence past every replayed record's. Caller holds r.mu.
func (r *Region) replayWALLocked(w *wal) (int, error) {
	n := 0
	err := w.replay(func(key string, value []byte, tombstone bool) error {
		row, family, qualifier, ts, seq, err := parseCellKey(key)
		if err != nil {
			return err
		}
		c := &Cell{Row: row, Family: family, Qualifier: qualifier, Value: value, Timestamp: ts, Tombstone: tombstone}
		r.mem.put(key, c)
		if seq > r.seq {
			r.seq = seq
		}
		n++
		return nil
	})
	return n, err
}

// maxWALTimestampLocked returns the largest cell timestamp in the WAL
// (cold start uses it to restore the logical clock). Caller holds r.mu.
func (r *Region) maxWALTimestampLocked() (int64, error) {
	var maxTs int64
	err := r.log.replay(func(key string, _ []byte, _ bool) error {
		_, _, _, ts, _, err := parseCellKey(key)
		if err != nil {
			return err
		}
		if ts > maxTs {
			maxTs = ts
		}
		return nil
	})
	return maxTs, err
}

// splitPoint picks the middle row key, or "" if the region is too small
// to split.
func (r *Region) splitPoint() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var rows []string
	last := ""
	it := r.iteratorsLocked("", nil)
	for it.valid() {
		c := it.cell()
		if c.Row != last {
			rows = append(rows, c.Row)
			last = c.Row
		}
		it.next()
	}
	if it.fail() != nil || len(rows) < 2 {
		return ""
	}
	return rows[len(rows)/2]
}

// allCells snapshots every live (latest-version, non-tombstone) cell, for
// region splits.
func (r *Region) allCells() ([]Cell, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.allCellsLocked()
}

// allCellsLocked is allCells with r.mu already held.
func (r *Region) allCellsLocked() ([]Cell, error) {
	var out []Cell
	lastRow, lastFam, lastQual := "", "", ""
	first := true
	it := r.iteratorsLocked("", nil)
	for it.valid() {
		c := it.cell()
		if first || c.Row != lastRow || c.Family != lastFam || c.Qualifier != lastQual {
			first = false
			lastRow, lastFam, lastQual = c.Row, c.Family, c.Qualifier
			if !c.Tombstone {
				out = append(out, *c)
			}
		}
		it.next()
	}
	if err := it.fail(); err != nil {
		return nil, err
	}
	return out, nil
}

package kvstore

import (
	"fmt"
	"sync"
)

// Region is one horizontal shard of a table: the half-open row-key range
// [StartKey, EndKey), hosted by a single node. Each region owns an LSM
// pipeline — WAL, memtable, immutable segments — and a mutex providing
// the row-level atomicity HBase guarantees (Section 6 relies on it).
type Region struct {
	mu       sync.RWMutex
	id       int
	table    string
	startKey string // inclusive; "" = unbounded low
	endKey   string // exclusive; "" = unbounded high
	node     int

	mem      *memtable
	segments []*segment // newest first
	log      *wal
	seq      uint64

	flushThreshold   uint64
	compactThreshold int
}

const (
	defaultFlushThreshold   = 4 << 20 // 4 MB memstore, scaled-down HBase default
	defaultCompactThreshold = 4
)

func newRegion(id int, table, startKey, endKey string, node int, seed int64) *Region {
	return &Region{
		id:               id,
		table:            table,
		startKey:         startKey,
		endKey:           endKey,
		node:             node,
		mem:              newMemtable(seed),
		log:              &wal{},
		flushThreshold:   defaultFlushThreshold,
		compactThreshold: defaultCompactThreshold,
	}
}

// ID returns the region's identifier.
func (r *Region) ID() int { return r.id }

// Node returns the hosting node index.
func (r *Region) Node() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.node
}

// StartKey returns the inclusive low bound ("" = unbounded).
func (r *Region) StartKey() string { return r.startKey }

// EndKey returns the exclusive high bound ("" = unbounded).
func (r *Region) EndKey() string { return r.endKey }

// contains reports whether row falls in this region's range.
func (r *Region) contains(row string) bool {
	if r.startKey != "" && row < r.startKey {
		return false
	}
	if r.endKey != "" && row >= r.endKey {
		return false
	}
	return true
}

// OpStats reports the physical work one operation performed, so callers
// (the metered client, the MapReduce runner) can charge the right costs
// in the right places.
type OpStats struct {
	CellsExamined uint64 // logical KV pairs touched (read units)
	BytesRead     uint64 // bytes read from disk (all versions scanned)
	BytesReturned uint64 // payload bytes leaving the region server
	CellsReturned uint64
}

func (s *OpStats) add(o OpStats) {
	s.CellsExamined += o.CellsExamined
	s.BytesRead += o.BytesRead
	s.BytesReturned += o.BytesReturned
	s.CellsReturned += o.CellsReturned
}

// applyMutation validates, logs, and inserts one cell version.
// Caller holds r.mu.
func (r *Region) applyMutation(c Cell) error {
	if err := ValidateKeyComponent(c.Row); err != nil {
		return err
	}
	if err := ValidateKeyComponent(c.Family); err != nil {
		return fmt.Errorf("kvstore: bad family: %w", err)
	}
	if c.Qualifier != "" {
		if err := ValidateKeyComponent(c.Qualifier); err != nil {
			return fmt.Errorf("kvstore: bad qualifier: %w", err)
		}
	}
	if !r.contains(c.Row) {
		return fmt.Errorf("kvstore: row %q outside region [%q, %q)", c.Row, r.startKey, r.endKey)
	}
	r.seq++
	cp := c // private copy
	key := cellKey(cp.Row, cp.Family, cp.Qualifier, cp.Timestamp, r.seq)
	r.log.append(key, &cp)
	r.mem.put(key, &cp)
	if r.mem.size > r.flushThreshold {
		r.flushLocked()
	}
	return nil
}

// mutateRow applies several cells of ONE row atomically.
func (r *Region) mutateRow(cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	row := cells[0].Row
	for i := range cells {
		if cells[i].Row != row {
			return fmt.Errorf("kvstore: mutateRow spans rows %q and %q", row, cells[i].Row)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range cells {
		if err := r.applyMutation(cells[i]); err != nil {
			return err
		}
	}
	return nil
}

// flushLocked materializes the memtable into a new segment and truncates
// the WAL. Caller holds r.mu.
func (r *Region) flushLocked() {
	if r.mem.count == 0 {
		return
	}
	seg := newSegment(r.mem.keys(), r.mem.entries())
	r.segments = append([]*segment{seg}, r.segments...)
	r.mem = newMemtable(int64(r.id)<<32 | int64(r.seq))
	r.log.truncate()
	if len(r.segments) > r.compactThreshold {
		r.compactLocked()
	}
}

// Flush forces a memtable flush (tests and admin use).
func (r *Region) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
}

// compactLocked merges all segments into one, keeping only the newest
// version of each column and dropping columns whose newest version is a
// tombstone. Caller holds r.mu.
func (r *Region) compactLocked() {
	iters := make([]cellIter, 0, len(r.segments))
	for _, s := range r.segments {
		iters = append(iters, s.iterator(""))
	}
	merged := newMergedIter(iters...)
	var keys []string
	var cells []*Cell
	lastCol := ""
	for merged.valid() {
		k := merged.key()
		c := merged.cell()
		col := columnPrefix(c.Row, c.Family, c.Qualifier)
		if col != lastCol {
			lastCol = col
			if !c.Tombstone {
				keys = append(keys, k)
				cells = append(cells, c)
			}
		}
		merged.next()
	}
	r.segments = []*segment{newSegment(keys, cells)}
}

// Compact forces a major compaction.
func (r *Region) Compact() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	r.compactLocked()
}

// iterators returns merged read sources, newest first. Caller holds a
// read lock.
func (r *Region) iteratorsLocked(start string) *mergedIter {
	its := make([]cellIter, 0, len(r.segments)+1)
	its = append(its, r.mem.iterator(start))
	for _, s := range r.segments {
		its = append(its, s.iterator(start))
	}
	return newMergedIter(its...)
}

// scan reads rows in [startRow, endRow) (endRow "" = region end), at most
// limit rows (0 = unlimited), visible at readTs (0 = latest), restricted
// to the given families (nil = all), filtered by f (nil = none).
func (r *Region) scan(startRow, endRow string, limit int, families []string, readTs int64, f Filter) ([]Row, OpStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()

	famSet := map[string]bool{}
	for _, fam := range families {
		famSet[fam] = true
	}

	start := startRow
	if start == "" || (r.startKey != "" && start < r.startKey) {
		start = r.startKey
	}
	var stats OpStats
	var rows []Row
	it := r.iteratorsLocked(rowPrefix(start))
	if start == "" {
		it = r.iteratorsLocked("")
	}

	var cur *Row
	lastCol := ""
	flushRow := func() {
		if cur == nil {
			return
		}
		if len(cur.Cells) > 0 && (f == nil || f.FilterRow(cur)) {
			stats.CellsReturned += uint64(len(cur.Cells))
			stats.BytesReturned += cur.Size()
			rows = append(rows, *cur)
		}
		cur = nil
	}

	for it.valid() {
		c := it.cell()
		// Region bound / request bound checks.
		if r.endKey != "" && c.Row >= r.endKey {
			break
		}
		if endRow != "" && c.Row >= endRow {
			break
		}
		if len(famSet) > 0 && !famSet[c.Family] {
			// Column families are physically separate stores (HBase
			// HFiles): a family-restricted scan never touches — or
			// pays for — other families' cells.
			it.next()
			continue
		}
		stats.BytesRead += c.StoredSize()
		if cur == nil || cur.Key != c.Row {
			flushRow()
			if limit > 0 && len(rows) >= limit {
				return rows, stats, nil
			}
			cur = &Row{Key: c.Row}
			lastCol = ""
		}
		col := columnPrefix(c.Row, c.Family, c.Qualifier)
		visible := readTs == 0 || c.Timestamp <= readTs
		if col != lastCol && visible {
			lastCol = col
			stats.CellsExamined++
			if !c.Tombstone {
				cur.Cells = append(cur.Cells, *c)
			}
		}
		it.next()
	}
	flushRow()
	return rows, stats, nil
}

// get reads a single row (all families, latest versions).
func (r *Region) get(row string, families []string) (*Row, OpStats, error) {
	rows, stats, err := r.scan(row, row+"\x01", 1, families, 0, nil)
	if err != nil {
		return nil, stats, err
	}
	if len(rows) == 0 || rows[0].Key != row {
		return nil, stats, nil
	}
	return &rows[0], stats, nil
}

// DiskSize returns the bytes held by this region (memtable + segments).
func (r *Region) DiskSize() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	size := r.mem.size
	for _, s := range r.segments {
		size += s.size
	}
	return size
}

// CellCount returns the number of stored cell versions.
func (r *Region) CellCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := r.mem.count
	for _, s := range r.segments {
		n += s.len()
	}
	return n
}

// recover rebuilds the memtable from the WAL, simulating a region server
// crash after segments were persisted but before the memstore was
// flushed. It returns the number of replayed records.
func (r *Region) recover() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	replayLog := r.log
	r.mem = newMemtable(int64(r.id) << 16)
	r.log = &wal{}
	n := 0
	err := replayLog.replay(func(key string, value []byte, tombstone bool) error {
		row, family, qualifier, ts, _, err := parseCellKey(key)
		if err != nil {
			return err
		}
		c := &Cell{Row: row, Family: family, Qualifier: qualifier, Value: value, Timestamp: ts, Tombstone: tombstone}
		r.mem.put(key, c)
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	// Re-log the recovered state so a second crash still recovers.
	r.log = replayLog
	return n, nil
}

// splitPoint picks the middle row key, or "" if the region is too small
// to split.
func (r *Region) splitPoint() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var rows []string
	last := ""
	it := r.iteratorsLocked("")
	for it.valid() {
		c := it.cell()
		if c.Row != last {
			rows = append(rows, c.Row)
			last = c.Row
		}
		it.next()
	}
	if len(rows) < 2 {
		return ""
	}
	return rows[len(rows)/2]
}

// allCells snapshots every live (latest-version, non-tombstone) cell, for
// region splits.
func (r *Region) allCells() []Cell {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Cell
	lastCol := ""
	it := r.iteratorsLocked("")
	for it.valid() {
		c := it.cell()
		col := columnPrefix(c.Row, c.Family, c.Qualifier)
		if col != lastCol {
			lastCol = col
			if !c.Tombstone {
				out = append(out, *c)
			}
		}
		it.next()
	}
	return out
}

package kvstore

import "sync"

// DefaultRowCacheBytes is the per-region row cache capacity. The cache
// plays the role of HBase's block cache for the point-get path: a hit
// serves the materialized row with zero segment work.
const DefaultRowCacheBytes = 4 << 20

// rcEntry is one cached row. r == nil caches a MISS (the row has no live
// cells), which is as valuable as a positive entry under BFHM's
// false-positive reverse-mapping lookups. examined preserves the
// CellsExamined the populating read reported (live columns plus
// tombstoned ones), so a warm hit bills exactly the read units a cold
// read of the same row would.
type rcEntry struct {
	row        string
	r          *Row // nil = negative entry
	examined   uint64
	size       uint64
	prev, next *rcEntry
}

// rowCache is a byte-bounded LRU over fully materialized rows (all
// families, latest live versions). It has its own mutex because lookups
// mutate LRU order while the region holds only a read lock; the region
// mutex is always acquired first, so lock order is region -> cache. All
// fields, including capacity, are guarded by mu — SetRowCacheBytes may
// run concurrently with reads.
//
// Coherence: entries are inserted only while the region read lock is
// held (writers take the region write lock, excluding concurrent
// insertion of stale rows) and invalidated per-row under the write lock
// on every mutation.
type rowCache struct {
	mu         sync.Mutex
	capacity   uint64              // guarded by: mu
	bytes      uint64              // guarded by: mu
	entries    map[string]*rcEntry // guarded by: mu
	head, tail *rcEntry            // head = most recently used; guarded by: mu
	hits       uint64              // guarded by: mu
	misses     uint64              // guarded by: mu
}

// rcEntryOverhead approximates per-entry bookkeeping bytes.
const rcEntryOverhead = 64

func newRowCache(capacity uint64) *rowCache {
	return &rowCache{capacity: capacity, entries: map[string]*rcEntry{}}
}

// lookup returns the cached row, its billed examined count, and whether
// the row is cached at all (the row may be cached as absent: ok=true,
// r=nil). The returned *Row is shared — callers must copy before
// exposing it to mutation.
func (c *rowCache) lookup(row string) (r *Row, examined uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity == 0 {
		return nil, 0, false
	}
	e, ok := c.entries[row]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	c.moveToFrontLocked(e)
	return e.r, e.examined, true
}

// insert caches a row (r may be nil to cache absence) with the examined
// count its read reported. Existing entries are replaced.
func (c *rowCache) insert(row string, r *Row, examined uint64) {
	size := uint64(len(row)) + rcEntryOverhead
	if r != nil {
		size += r.Size()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity == 0 || size > c.capacity {
		return // disabled, or the row is larger than the whole cache
	}
	if e, ok := c.entries[row]; ok {
		c.bytes -= e.size
		e.r, e.examined, e.size = r, examined, size
		c.bytes += size
		c.moveToFrontLocked(e)
	} else {
		e := &rcEntry{row: row, r: r, examined: examined, size: size}
		c.entries[row] = e
		c.bytes += size
		c.pushFrontLocked(e)
	}
	for c.bytes > c.capacity && c.tail != nil {
		c.removeLocked(c.tail)
	}
}

// invalidate drops the entry for row, if any. Called under the region
// write lock on every mutation of the row. It runs even when the cache
// is disabled, so a resize racing a mutation can never leave a stale
// entry behind.
func (c *rowCache) invalidate(row string) {
	c.mu.Lock()
	if e, ok := c.entries[row]; ok {
		c.removeLocked(e)
	}
	c.mu.Unlock()
}

// setCapacity resizes the cache, evicting down to the new bound.
// Capacity 0 disables caching and drops everything.
func (c *rowCache) setCapacity(capacity uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	if capacity == 0 {
		c.entries = map[string]*rcEntry{}
		c.head, c.tail, c.bytes = nil, nil, 0
		return
	}
	for c.bytes > c.capacity && c.tail != nil {
		c.removeLocked(c.tail)
	}
}

// stats returns cumulative hit/miss counts.
func (c *rowCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// seedStats pre-loads hit/miss counts, used to carry a split region's
// history onto its successor.
func (c *rowCache) seedStats(hits, misses uint64) {
	c.mu.Lock()
	c.hits += hits
	c.misses += misses
	c.mu.Unlock()
}

func (c *rowCache) removeLocked(e *rcEntry) {
	delete(c.entries, e.row)
	c.bytes -= e.size
	c.unlinkLocked(e)
}

func (c *rowCache) unlinkLocked(e *rcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *rowCache) pushFrontLocked(e *rcEntry) {
	e.next = c.head
	e.prev = nil
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *rowCache) moveToFrontLocked(e *rcEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

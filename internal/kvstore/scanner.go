package kvstore

import (
	"fmt"
	"sync"
	"time"
)

// Scan describes a client scan request.
type Scan struct {
	Table    string
	StartRow string // inclusive; "" = table start
	StopRow  string // exclusive; "" = table end
	Families []string
	Filter   Filter
	// Caching is the scanner batch size: rows fetched per RPC, HBase's
	// scanner-caching knob. The paper's ISL batching (Section 4.2.3:
	// "batched scans ... with a non-zero rowcache size") maps here.
	Caching int
	// ReadTs, when non-zero, hides cells newer than this timestamp
	// (snapshot reads used by index maintenance tests).
	ReadTs int64
	// Prefetch enables asynchronous read-ahead: after a batch is
	// delivered the scanner immediately issues the next batch's RPC in
	// the background, overlapping it with the caller's consumption. The
	// cost model charges the full resource counters for every CONSUMED
	// batch but advances the clock only by the portion of the fetch NOT
	// hidden behind other work charged to the same collector since the
	// RPC was issued (so two prefetching streams feeding one coordinator
	// overlap each other's round trips). A speculative batch still in
	// flight when the caller abandons the scanner is never billed — the
	// client cancels the scanner lease, as with HBase scanner close.
	Prefetch bool
}

// fetchResult is one batch pulled by fetchOnce.
type fetchResult struct {
	rows    []Row
	stats   OpStats
	nextRow string
	done    bool
	err     error
}

// Scanner streams rows of a table in ascending key order across region
// boundaries, fetching Caching rows per RPC and charging the client
// metrics accordingly.
type Scanner struct {
	c       *Cluster
	scan    Scan
	buf     []Row
	bufPos  int
	nextRow string
	done    bool
	err     error

	// Prefetch state: at most one background fetch is in flight.
	pfCh       chan fetchResult
	pfInflight bool
	pfIssuedAt time.Duration // collector clock when the RPC was issued
}

// OpenScanner starts a scan.
func (c *Cluster) OpenScanner(s Scan) (*Scanner, error) {
	if _, err := c.table(s.Table); err != nil {
		return nil, err
	}
	if s.Caching < 1 {
		s.Caching = 1
	}
	sc := &Scanner{c: c, scan: s, nextRow: s.StartRow}
	if s.Prefetch {
		sc.pfCh = make(chan fetchResult, 1)
		// Read ahead eagerly: the first batch's round trip overlaps
		// whatever the caller does between opening and consuming (e.g.
		// the other stream of a rank-join coordinator fetching ITS first
		// batch). Nothing is billed unless the batch is consumed.
		sc.prefetch()
	}
	return sc, nil
}

// Next returns the next row, or nil when the scan is exhausted.
func (sc *Scanner) Next() (*Row, error) {
	if sc.err != nil {
		return nil, sc.err
	}
	for sc.bufPos >= len(sc.buf) {
		if sc.done {
			return nil, nil
		}
		if err := sc.Fill(); err != nil {
			return nil, err
		}
	}
	r := &sc.buf[sc.bufPos]
	sc.bufPos++
	return r, nil
}

// Buffered reports how many fetched rows await consumption.
func (sc *Scanner) Buffered() int { return len(sc.buf) - sc.bufPos }

// Done reports whether the scan is exhausted (no buffered rows and no
// further batches).
func (sc *Scanner) Done() bool { return sc.err != nil || (sc.done && sc.Buffered() == 0) }

// Fill fetches the next batch if the buffer is drained, charging the
// scanner's metrics. It is a no-op while buffered rows remain.
func (sc *Scanner) Fill() error {
	if sc.err != nil {
		return sc.err
	}
	if sc.Buffered() > 0 || sc.done {
		return nil
	}
	if err := sc.c.CheckInterrupt(); err != nil {
		sc.err = err
		return err
	}
	var res fetchResult
	hidden := time.Duration(0)
	if sc.pfInflight {
		res = <-sc.pfCh
		sc.pfInflight = false
		// Clock progress since the RPC was issued is work the fetch
		// overlapped with; only the remainder extends the turnaround.
		hidden = sc.c.metrics.SimTime() - sc.pfIssuedAt
	} else {
		res = sc.fetchOnce(sc.nextRow)
	}
	if res.err != nil {
		sc.err = res.err
		return res.err
	}
	sc.buf = res.rows
	sc.bufPos = 0
	sc.nextRow = res.nextRow
	sc.done = res.done
	sc.c.chargeRPCCounters(res.stats)
	cost := sc.c.rpcCost(res.stats)
	if cost > hidden {
		sc.c.metrics.Advance(cost - hidden)
	}
	if sc.scan.Prefetch && !sc.done {
		sc.prefetch()
	}
	return nil
}

// prefetch issues the next batch's RPC in the background.
func (sc *Scanner) prefetch() {
	sc.pfInflight = true
	sc.pfIssuedAt = sc.c.metrics.SimTime()
	start := sc.nextRow
	go func() {
		sc.pfCh <- sc.fetchOnce(start)
	}()
}

// fetchOnce performs one batch read of up to Caching rows starting at
// start, possibly spanning multiple regions server-side. It touches no
// scanner state and charges no metrics, so it is safe to run from the
// prefetch goroutine. A region split observed mid-batch restarts the
// fetch against the fresh region list (split children hold identical
// data, so a restart re-reads the same rows).
func (sc *Scanner) fetchOnce(start string) fetchResult {
	t, err := sc.c.table(sc.scan.Table)
	if err != nil {
		return fetchResult{err: err}
	}
	want := sc.scan.Caching

retry:
	var out fetchResult
	var stats OpStats
	for _, r := range t.Regions() {
		if r.EndKey() != "" && start != "" && start >= r.EndKey() {
			continue // region entirely before the cursor
		}
		if sc.scan.StopRow != "" && r.StartKey() != "" && r.StartKey() >= sc.scan.StopRow {
			break // region entirely after the stop row
		}
		rows, st, err := r.scan(start, sc.scan.StopRow, want-len(out.rows), sc.scan.Families, sc.scan.ReadTs, sc.scan.Filter)
		if err == errRegionSplit {
			goto retry
		}
		if err != nil {
			return fetchResult{err: err}
		}
		stats.add(st)
		out.rows = append(out.rows, rows...)
		if len(out.rows) >= want {
			break
		}
	}

	out.stats = stats
	out.nextRow = start
	if len(out.rows) < want {
		out.done = true
	}
	if len(out.rows) > 0 {
		last := out.rows[len(out.rows)-1].Key
		out.nextRow = last + "\x01" // resume strictly after the last row
	} else {
		out.done = true
	}
	return out
}

// ScanAll is a convenience that drains a scan into memory.
func (c *Cluster) ScanAll(s Scan) ([]Row, error) {
	sc, err := c.OpenScanner(s)
	if err != nil {
		return nil, err
	}
	var out []Row
	for {
		r, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, *r)
	}
}

// GetRows is a batched multi-get, charging one RPC per row (as HBase
// multi-gets are billed per row read).
func (c *Cluster) GetRows(table string, rows []string, families ...string) ([]*Row, error) {
	out := make([]*Row, 0, len(rows))
	for _, row := range rows {
		r, err := c.Get(table, row, families...)
		if err != nil {
			return nil, fmt.Errorf("kvstore: multi-get %q: %w", row, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// multiGetCost returns the simulated duration of one batched-get RPC of
// nrows keyed reads with the given server-side work. Rows served from
// the row cache (stats.CacheHits) skip their disk seek. On a
// disk-backed cluster the seek count is MEASURED — one per SSTable
// block actually fetched — rather than assumed one per uncached row.
func (c *Cluster) multiGetCost(nrows int, stats OpStats) time.Duration {
	var seeks int
	if c.state.store != nil {
		seeks = int(stats.BlockReads)
	} else {
		seeks = nrows - int(stats.CacheHits)
	}
	if seeks < 0 {
		seeks = 0
	}
	return c.profile.RPCLatency +
		time.Duration(seeks)*c.profile.SeekLatency +
		c.profile.TransferTime(requestOverhead+stats.BytesReturned) +
		c.profile.CPUTime(stats.CellsExamined)
}

// chargeMultiGetCounters meters the resource counters of one batched-get
// RPC (the 16 bytes per requested key model the row keys on the wire).
func (c *Cluster) chargeMultiGetCounters(nrows int, stats OpStats) {
	c.metrics.AddReadRPC(requestOverhead+uint64(nrows)*16+stats.BytesReturned, stats.CellsExamined, stats.BytesRead)
}

// MultiGet fetches several rows in ONE client RPC (HBase's batched Get).
// Read units and server-side seeks are still paid per row, but the RPC
// round-trip latency is amortized across the batch — the cost profile
// BFHM's reverse-mapping phase relies on. Missing rows yield nil entries.
func (c *Cluster) MultiGet(table string, rows []string, families ...string) ([]*Row, error) {
	if err := c.CheckInterrupt(); err != nil {
		return nil, err
	}
	t, err := c.table(table)
	if err != nil {
		return nil, err
	}
	out := make([]*Row, len(rows))
	var stats OpStats
	for i, row := range rows {
		got, st, err := t.getRetry(row, families)
		if err != nil {
			return nil, fmt.Errorf("kvstore: multi-get %q: %w", row, err)
		}
		stats.add(st)
		out[i] = got
	}
	c.chargeMultiGetCounters(len(rows), stats)
	c.metrics.Advance(c.multiGetCost(len(rows), stats))
	return out, nil
}

// multiGetBatch is the per-region slice of one ParallelMultiGet fan-out.
type multiGetBatch struct {
	region *Region
	idxs   []int
	stats  OpStats
	cost   time.Duration
	err    error
}

// ParallelMultiGet fans a batched get out over up to parallelism
// concurrent lanes. Rows are grouped by the region that holds them (each
// group is one RPC, as HBase clients batch per region server); groups
// larger than an even 1/parallelism share are further chunked into
// multiple RPCs, modelling the server-side handler pool and multi-disk
// parallelism that lets one region serve concurrent point reads. The
// clock advances by the slowest lane's total time while read units,
// bytes, and RPC counts sum over every RPC — the parallel-lane convention
// of sim.Metrics.AdvanceParallel. With parallelism <= 1 it degrades to
// the single-RPC sequential MultiGet.
func (c *Cluster) ParallelMultiGet(table string, rows []string, parallelism int, families ...string) ([]*Row, error) {
	if parallelism <= 1 || len(rows) <= 1 {
		return c.MultiGet(table, rows, families...)
	}
	if err := c.CheckInterrupt(); err != nil {
		return nil, err
	}
	t, err := c.table(table)
	if err != nil {
		return nil, err
	}

	// Group row indexes by region, preserving request order per region.
	byRegion := map[*Region]*multiGetBatch{}
	var groups []*multiGetBatch
	for i, row := range rows {
		r := t.regionFor(row)
		b := byRegion[r]
		if b == nil {
			b = &multiGetBatch{region: r}
			byRegion[r] = b
			groups = append(groups, b)
		}
		b.idxs = append(b.idxs, i)
	}

	// Chunk oversized region groups so the fan-out can reach the lane
	// budget even when the key range is region-skewed (BFHM's reverse
	// mappings cluster in the high-score buckets of one region).
	chunk := (len(rows) + parallelism - 1) / parallelism
	if chunk < 1 {
		chunk = 1
	}
	var batches []*multiGetBatch
	for _, g := range groups {
		for s := 0; s < len(g.idxs); s += chunk {
			e := s + chunk
			if e > len(g.idxs) {
				e = len(g.idxs)
			}
			batches = append(batches, &multiGetBatch{region: g.region, idxs: g.idxs[s:e]})
		}
	}

	// Deal batches round-robin onto lanes (deterministic: batches follow
	// the request order of their first row).
	lanes := parallelism
	if lanes > len(batches) {
		lanes = len(batches)
	}
	laneBatches := make([][]*multiGetBatch, lanes)
	for i, b := range batches {
		laneBatches[i%lanes] = append(laneBatches[i%lanes], b)
	}

	out := make([]*Row, len(rows))
	laneDur := make([]time.Duration, lanes)
	var wg sync.WaitGroup
	for l := range laneBatches {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for _, b := range laneBatches[l] {
				for _, i := range b.idxs {
					got, st, err := b.region.get(rows[i], families)
					if err == errRegionSplit {
						// The batch's region split mid-flight: re-route
						// this row through the fresh region list.
						got, st, err = t.getRetry(rows[i], families)
					}
					if err != nil {
						b.err = fmt.Errorf("kvstore: multi-get %q: %w", rows[i], err)
						return
					}
					b.stats.add(st)
					out[i] = got
				}
				b.cost = c.multiGetCost(len(b.idxs), b.stats)
				laneDur[l] += b.cost
			}
		}(l)
	}
	wg.Wait()

	for _, b := range batches {
		if b.err != nil {
			return nil, b.err
		}
		c.chargeMultiGetCounters(len(b.idxs), b.stats)
	}
	c.metrics.AdvanceParallel(laneDur...)
	return out, nil
}

package kvstore

import (
	"fmt"
	"time"
)

// Scan describes a client scan request.
type Scan struct {
	Table    string
	StartRow string // inclusive; "" = table start
	StopRow  string // exclusive; "" = table end
	Families []string
	Filter   Filter
	// Caching is the scanner batch size: rows fetched per RPC, HBase's
	// scanner-caching knob. The paper's ISL batching (Section 4.2.3:
	// "batched scans ... with a non-zero rowcache size") maps here.
	Caching int
	// ReadTs, when non-zero, hides cells newer than this timestamp
	// (snapshot reads used by index maintenance tests).
	ReadTs int64
}

// Scanner streams rows of a table in ascending key order across region
// boundaries, fetching Caching rows per RPC and charging the client
// metrics accordingly.
type Scanner struct {
	c       *Cluster
	scan    Scan
	buf     []Row
	bufPos  int
	nextRow string
	done    bool
	err     error
}

// OpenScanner starts a scan.
func (c *Cluster) OpenScanner(s Scan) (*Scanner, error) {
	if _, err := c.table(s.Table); err != nil {
		return nil, err
	}
	if s.Caching < 1 {
		s.Caching = 1
	}
	return &Scanner{c: c, scan: s, nextRow: s.StartRow}, nil
}

// Next returns the next row, or nil when the scan is exhausted.
func (sc *Scanner) Next() (*Row, error) {
	if sc.err != nil {
		return nil, sc.err
	}
	for sc.bufPos >= len(sc.buf) {
		if sc.done {
			return nil, nil
		}
		if err := sc.fetchBatch(); err != nil {
			sc.err = err
			return nil, err
		}
	}
	r := &sc.buf[sc.bufPos]
	sc.bufPos++
	return r, nil
}

// fetchBatch issues one RPC pulling up to Caching rows starting at
// nextRow, possibly spanning multiple regions server-side.
func (sc *Scanner) fetchBatch() error {
	t, err := sc.c.table(sc.scan.Table)
	if err != nil {
		return err
	}
	sc.buf = sc.buf[:0]
	sc.bufPos = 0
	var stats OpStats
	want := sc.scan.Caching

	sc.c.mu.RLock()
	regions := append([]*Region(nil), t.regions...)
	sc.c.mu.RUnlock()

	start := sc.nextRow
	for _, r := range regions {
		if r.EndKey() != "" && start != "" && start >= r.EndKey() {
			continue // region entirely before the cursor
		}
		if sc.scan.StopRow != "" && r.StartKey() != "" && r.StartKey() >= sc.scan.StopRow {
			break // region entirely after the stop row
		}
		rows, st, err := r.scan(start, sc.scan.StopRow, want-len(sc.buf), sc.scan.Families, sc.scan.ReadTs, sc.scan.Filter)
		if err != nil {
			return err
		}
		stats.add(st)
		sc.buf = append(sc.buf, rows...)
		if len(sc.buf) >= want {
			break
		}
	}

	sc.c.chargeRPC(stats)
	if len(sc.buf) < want {
		sc.done = true
	}
	if len(sc.buf) > 0 {
		last := sc.buf[len(sc.buf)-1].Key
		sc.nextRow = last + "\x01" // resume strictly after the last row
	}
	if len(sc.buf) == 0 {
		sc.done = true
	}
	return nil
}

// ScanAll is a convenience that drains a scan into memory.
func (c *Cluster) ScanAll(s Scan) ([]Row, error) {
	sc, err := c.OpenScanner(s)
	if err != nil {
		return nil, err
	}
	var out []Row
	for {
		r, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, *r)
	}
}

// GetRows is a batched multi-get, charging one RPC per row (as HBase
// multi-gets are billed per row read).
func (c *Cluster) GetRows(table string, rows []string, families ...string) ([]*Row, error) {
	out := make([]*Row, 0, len(rows))
	for _, row := range rows {
		r, err := c.Get(table, row, families...)
		if err != nil {
			return nil, fmt.Errorf("kvstore: multi-get %q: %w", row, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// MultiGet fetches several rows in ONE client RPC (HBase's batched Get).
// Read units and server-side seeks are still paid per row, but the RPC
// round-trip latency is amortized across the batch — the cost profile
// BFHM's reverse-mapping phase relies on. Missing rows yield nil entries.
func (c *Cluster) MultiGet(table string, rows []string, families ...string) ([]*Row, error) {
	t, err := c.table(table)
	if err != nil {
		return nil, err
	}
	out := make([]*Row, len(rows))
	var stats OpStats
	for i, row := range rows {
		r := t.regionFor(row)
		got, st, err := r.get(row, families)
		if err != nil {
			return nil, fmt.Errorf("kvstore: multi-get %q: %w", row, err)
		}
		st.BytesRead = st.BytesReturned // keyed read, not a range scan
		stats.add(st)
		out[i] = got
	}
	c.metrics.AddRPC()
	c.metrics.AddNetwork(requestOverhead + uint64(len(rows))*16 + stats.BytesReturned)
	c.metrics.AddKVReads(stats.CellsExamined)
	c.metrics.AddDiskRead(stats.BytesRead)
	c.metrics.Advance(c.profile.RPCLatency +
		time.Duration(len(rows))*c.profile.SeekLatency +
		c.profile.TransferTime(requestOverhead+stats.BytesReturned) +
		c.profile.CPUTime(stats.CellsExamined))
	return out, nil
}

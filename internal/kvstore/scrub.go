package kvstore

import (
	"encoding/binary"
	"sort"
)

// FileScrubReport is one SSTable's verification outcome.
type FileScrubReport struct {
	Table  string
	Region int
	Name   string // file name within the store directory
	Blocks int    // frames whose checksums were verified
	Bytes  uint64 // bytes read and checksummed
	// Err is nil for a clean file. Non-nil means the file failed
	// verification — a CorruptionError naming the frame offset, or an
	// IOError if the bytes could not be read at all — and the table has
	// been quarantined.
	Err error
}

// ScrubReport summarizes one Cluster.Scrub pass over every on-disk run.
type ScrubReport struct {
	Files   []FileScrubReport
	Corrupt int // files with a non-nil Err
}

// Scrub walks every SSTable of every region, frame by frame, verifying
// each block's CRC against the bytes actually on disk (the block cache
// is bypassed — a scrub that reported cached decodes would certify
// nothing about the media). Tables that fail verification are
// QUARANTINED: moved off the read path so subsequent reads that could
// touch their key range fail with a typed CorruptionError instead of
// silently missing rows, while the file itself is never deleted — the
// bytes stay on disk for offline repair. The pass is reported per file
// and never stops early on corruption; only the view's guard (deadline,
// cancellation) interrupts it.
//
// The verification reads are real, measured I/O and are charged to the
// view's metrics like any client-visible work.
func (c *Cluster) Scrub() (*ScrubReport, error) {
	rep := &ScrubReport{}
	s := c.state
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)

	for _, tn := range names {
		t, err := c.table(tn)
		if err != nil {
			continue // table dropped since the snapshot
		}
		for _, r := range t.Regions() {
			if err := c.CheckInterrupt(); err != nil {
				return rep, err
			}
			reports, stats := r.scrubRuns()
			c.chargeRPC(stats)
			rep.Files = append(rep.Files, reports...)
		}
	}
	for _, f := range rep.Files {
		if f.Err != nil {
			rep.Corrupt++
		}
	}
	//lint:allow chargecheck every region's verification I/O is charged via chargeRPC as its scrubRuns OpStats come back; a cluster with no tables had nothing to bill
	return rep, nil
}

// Quarantined lists the file names currently quarantined across the
// cluster, sorted.
func (c *Cluster) Quarantined() []string {
	var out []string
	s := c.state
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	for _, t := range tables {
		for _, r := range t.Regions() {
			out = append(out, r.quarantinedNames()...)
		}
	}
	sort.Strings(out)
	return out
}

// scrubRuns verifies every on-disk run of the region, quarantining the
// ones that fail, and returns per-file reports plus the measured
// verification I/O (the OpStats convention: this function is a metering
// primitive, the caller charges). It holds the region write lock for
// the duration so no compaction can unlink a file mid-verification and
// masquerade as bit-rot.
func (r *Region) scrubRuns() ([]FileScrubReport, OpStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var stats OpStats
	var reports []FileScrubReport
	keep := make([]run, 0, len(r.segments))
	for _, s := range r.segments {
		d, ok := s.(*diskSegment)
		if !ok {
			keep = append(keep, s)
			continue
		}
		blocks, st, err := scrubSegment(d)
		stats.add(st)
		reports = append(reports, FileScrubReport{
			Table:  r.table,
			Region: r.id,
			Name:   d.name,
			Blocks: blocks,
			Bytes:  st.BytesRead,
			Err:    err,
		})
		if err != nil {
			r.quarantined = append(r.quarantined, d)
		} else {
			keep = append(keep, s)
		}
	}
	r.segments = keep
	return reports, stats
}

// scrubSegment reads every frame of one SSTable sequentially from the
// file — bypassing the block cache — and verifies its checksum,
// returning the frame count and the measured I/O. The first failure
// stops the walk: a bad length field makes every later offset
// untrustworthy anyway.
func scrubSegment(d *diskSegment) (int, OpStats, error) {
	var stats OpStats
	if d.fileLen < sstFooterLen {
		return 0, stats, corruptionAt(d.name, 0, corruptf("file of %d bytes is shorter than the footer", d.fileLen))
	}
	end := d.fileLen - sstFooterLen
	blocks := 0
	for off := uint64(0); off < end; {
		var hdr [4]byte
		if err := d.br.readAt(hdr[:], int64(off)); err != nil {
			return blocks, stats, err
		}
		n := uint64(binary.BigEndian.Uint32(hdr[:]))
		flen := n + blockFrameOverhead
		if n > maxBlockPayload || off+flen > end {
			return blocks, stats, corruptionAt(d.name, int64(off), corruptf("frame of %d payload bytes at offset %d overruns the block region ending at %d", n, off, end))
		}
		frame := make([]byte, flen)
		if err := d.br.readAt(frame, int64(off)); err != nil {
			return blocks, stats, err
		}
		if _, err := decodeFrame(frame); err != nil {
			return blocks, stats, corruptionAt(d.name, int64(off), err)
		}
		stats.BytesRead += flen
		stats.BlockReads++
		blocks++
		off += flen
	}
	var footer [sstFooterLen]byte
	if err := d.br.readAt(footer[:], int64(end)); err != nil {
		return blocks, stats, err
	}
	stats.BytesRead += sstFooterLen
	if got := binary.BigEndian.Uint64(footer[52:60]); got != sstMagic {
		return blocks, stats, corruptionAt(d.name, int64(end), corruptf("bad magic %016x", got))
	}
	return blocks, stats, nil
}

// quarantinedNames returns the region's quarantined file names.
func (r *Region) quarantinedNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.quarantined))
	for _, d := range r.quarantined {
		names = append(names, d.name)
	}
	return names
}

// errQuarantined is the typed error a read returns when its key range
// may intersect a quarantined table: the data might exist but cannot be
// proven intact, and pretending the rows are absent would be silent
// data loss.
func errQuarantined(name string) error {
	return &CorruptionError{Path: name, Offset: -1, Err: corruptf("table is quarantined: checksum verification failed in a prior scrub")}
}

// overlapsRows reports whether the segment's [minRow, maxRow] span
// intersects the scan range [start, end) ("" = unbounded).
func (d *diskSegment) overlapsRows(start, end string) bool {
	if d.meta.count == 0 {
		return false
	}
	if end != "" && d.meta.minRow >= end {
		return false
	}
	if start != "" && d.meta.maxRow < start {
		return false
	}
	return true
}

package kvstore

import (
	"sort"

	"repro/internal/bloom"
)

// segmentBloomFPP is the false-positive target of the per-segment row
// bloom filter. 1% keeps the filter at ~10 bits per row while pruning
// nearly every segment that does not hold the requested row — the same
// role HBase's per-HFile ROW bloom filters play.
const segmentBloomFPP = 0.01

// segment is an immutable sorted run of cell versions, the in-memory
// analogue of an HBase HFile: produced by flushing a memtable or by
// compaction, searched by binary search, scanned sequentially. Each
// segment carries its row-key range and a bloom filter over row keys so
// point gets can skip segments that cannot contain the row.
type segment struct {
	keys   []string
	cells  []*Cell
	size   uint64
	minRow string
	maxRow string
	filter *bloom.Filter
}

// newSegment builds a segment from parallel sorted key/cell slices.
func newSegment(keys []string, cells []*Cell) *segment {
	var size uint64
	for _, c := range cells {
		size += c.StoredSize()
	}
	s := &segment{keys: keys, cells: cells, size: size}
	if len(cells) > 0 {
		s.minRow = cells[0].Row
		s.maxRow = cells[len(cells)-1].Row
		// len(cells) over-counts distinct rows (versions share a row),
		// which only makes the filter larger and the FPP lower.
		m, k := bloom.OptimalParams(uint64(len(cells)), segmentBloomFPP)
		s.filter = bloom.NewFilter(m, k)
		lastRow := ""
		for _, c := range cells {
			if c.Row != lastRow {
				s.filter.AddString(c.Row)
				lastRow = c.Row
			}
		}
	}
	return s
}

// run is a read source in a region's LSM pipeline below the memtable:
// either an in-memory *segment or an on-disk *diskSegment. iterAt
// accumulates measured block I/O into io (nil for uncharged admin and
// introspection walks); in-memory runs perform no I/O and ignore it.
// dataSize is the LOGICAL byte size (summed Cell.StoredSize), identical
// for the same cells in either representation, so compaction tiering and
// planner statistics are storage-mode-independent.
type run interface {
	mayContainRow(row string) bool
	iterAt(start string, io *OpStats) cellIter
	numCells() int
	dataSize() uint64
	close() error
}

// mayContainRow reports whether a point get for row needs to search this
// segment: the row must fall inside the segment's key range and pass the
// bloom filter. No false negatives.
func (s *segment) mayContainRow(row string) bool {
	if len(s.keys) == 0 || row < s.minRow || row > s.maxRow {
		return false
	}
	return s.filter.ContainsString(row)
}

func (s *segment) iterAt(start string, io *OpStats) cellIter { return s.iterator(start) }
func (s *segment) numCells() int                             { return len(s.keys) }
func (s *segment) dataSize() uint64                          { return s.size }
func (s *segment) close() error                              { return nil }

// seek returns the index of the first entry with key >= k.
func (s *segment) seek(k string) int {
	return sort.SearchStrings(s.keys, k)
}

func (s *segment) len() int { return len(s.keys) }

// iterator walks entries in ascending key order from >= start.
func (s *segment) iterator(start string) *segmentIter {
	idx := 0
	if start != "" {
		idx = s.seek(start)
	}
	return &segmentIter{seg: s, idx: idx}
}

type segmentIter struct {
	seg *segment
	idx int
}

func (it *segmentIter) valid() bool { return it.idx < len(it.seg.keys) }
func (it *segmentIter) key() string { return it.seg.keys[it.idx] }
func (it *segmentIter) cell() *Cell { return it.seg.cells[it.idx] }
func (it *segmentIter) next()       { it.idx++ }
func (it *segmentIter) fail() error { return nil }

// cellIter is the common interface of memtable, segment, and disk
// segment iterators. In-memory iterators cannot fail; a disk iterator
// that hits an I/O or corruption error becomes invalid and reports the
// error through fail(), which callers must check once iteration stops.
type cellIter interface {
	valid() bool
	key() string
	cell() *Cell
	next()
	fail() error
}

// mergedIter merges several sorted iterators into one ascending stream
// using a binary min-heap over the sources' current keys (a tournament
// merge): key()/cell() read the winner in O(1) and next() restores the
// heap in O(log k), replacing the old linear scan of every source for
// every one of the three per-element accessor calls. On equal keys the
// source added FIRST wins (callers order sources newest-first), though
// equal internal keys cannot occur across sources because sequence
// numbers are globally unique per region.
type mergedIter struct {
	its  []cellIter // heap, ordered by keys (ties: ord)
	keys []string   // cached current key of each heap entry
	ord  []int      // insertion order, the tie-break priority
	err  error      // first source failure; stops iteration
}

func newMergedIter(sources ...cellIter) *mergedIter {
	m := &mergedIter{
		its:  make([]cellIter, 0, len(sources)),
		keys: make([]string, 0, len(sources)),
		ord:  make([]int, 0, len(sources)),
	}
	for i, s := range sources {
		if s.valid() {
			m.its = append(m.its, s)
			m.keys = append(m.keys, s.key())
			m.ord = append(m.ord, i)
		} else if err := s.fail(); err != nil && m.err == nil {
			m.err = err
		}
	}
	for i := len(m.its)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
	return m
}

func (m *mergedIter) less(i, j int) bool {
	if m.keys[i] != m.keys[j] {
		return m.keys[i] < m.keys[j]
	}
	return m.ord[i] < m.ord[j]
}

func (m *mergedIter) swap(i, j int) {
	m.its[i], m.its[j] = m.its[j], m.its[i]
	m.keys[i], m.keys[j] = m.keys[j], m.keys[i]
	m.ord[i], m.ord[j] = m.ord[j], m.ord[i]
}

// down restores the heap property from index i.
func (m *mergedIter) down(i int) {
	n := len(m.its)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && m.less(r, l) {
			least = r
		}
		if !m.less(least, i) {
			return
		}
		m.swap(i, least)
		i = least
	}
}

func (m *mergedIter) valid() bool { return m.err == nil && len(m.its) > 0 }
func (m *mergedIter) key() string { return m.keys[0] }
func (m *mergedIter) cell() *Cell { return m.its[0].cell() }
func (m *mergedIter) fail() error { return m.err }

func (m *mergedIter) next() {
	it := m.its[0]
	it.next()
	if it.valid() {
		m.keys[0] = it.key()
	} else {
		if err := it.fail(); err != nil && m.err == nil {
			m.err = err
		}
		n := len(m.its) - 1
		m.swap(0, n)
		m.its = m.its[:n]
		m.keys = m.keys[:n]
		m.ord = m.ord[:n]
	}
	m.down(0)
}

package kvstore

import "sort"

// segment is an immutable sorted run of cell versions, the in-memory
// analogue of an HBase HFile: produced by flushing a memtable or by
// compaction, searched by binary search, scanned sequentially.
type segment struct {
	keys  []string
	cells []*Cell
	size  uint64
}

// newSegment builds a segment from parallel sorted key/cell slices.
func newSegment(keys []string, cells []*Cell) *segment {
	var size uint64
	for _, c := range cells {
		size += c.StoredSize()
	}
	return &segment{keys: keys, cells: cells, size: size}
}

// seek returns the index of the first entry with key >= k.
func (s *segment) seek(k string) int {
	return sort.SearchStrings(s.keys, k)
}

func (s *segment) len() int { return len(s.keys) }

// iterator walks entries in ascending key order from >= start.
func (s *segment) iterator(start string) *segmentIter {
	return &segmentIter{seg: s, idx: s.seek(start)}
}

type segmentIter struct {
	seg *segment
	idx int
}

func (it *segmentIter) valid() bool { return it.idx < len(it.seg.keys) }
func (it *segmentIter) key() string { return it.seg.keys[it.idx] }
func (it *segmentIter) cell() *Cell { return it.seg.cells[it.idx] }
func (it *segmentIter) next()       { it.idx++ }

// cellIter is the common interface of memtable and segment iterators.
type cellIter interface {
	valid() bool
	key() string
	cell() *Cell
	next()
}

// mergedIter merges several sorted iterators into one ascending stream.
// On equal keys the iterator added FIRST wins (callers order sources
// newest-first), though equal internal keys cannot occur across sources
// because sequence numbers are globally unique per region.
type mergedIter struct {
	sources []cellIter
}

func newMergedIter(sources ...cellIter) *mergedIter {
	live := make([]cellIter, 0, len(sources))
	for _, s := range sources {
		if s.valid() {
			live = append(live, s)
		}
	}
	return &mergedIter{sources: live}
}

func (m *mergedIter) valid() bool { return len(m.sources) > 0 }

func (m *mergedIter) pick() int {
	best := 0
	for i := 1; i < len(m.sources); i++ {
		if m.sources[i].key() < m.sources[best].key() {
			best = i
		}
	}
	return best
}

func (m *mergedIter) key() string { return m.sources[m.pick()].key() }
func (m *mergedIter) cell() *Cell { return m.sources[m.pick()].cell() }

func (m *mergedIter) next() {
	i := m.pick()
	m.sources[i].next()
	if !m.sources[i].valid() {
		m.sources = append(m.sources[:i], m.sources[i+1:]...)
	}
}
